// Incremental re-testing evaluation: for each gateway rule-set family
// (set-1..set-4 = gw-1..gw-4), run a baseline generation, apply one
// single-table rule update, and compare the incremental update's cost
// against a from-scratch regeneration of the updated program — backend
// SMT checks and wall time, with the byte-identity soundness bar checked
// on every row. Backs the "Change-impact analysis & incremental
// re-testing" section in DESIGN.md and the EXPERIMENTS.md delta table.
#include "bench_common.hpp"
#include "driver/incremental.hpp"

namespace meissa::bench {
namespace {

// Removes the target table's last remaining entry; false when none left.
bool remove_last_entry(p4::RuleSet& rules, const std::string& table) {
  for (auto it = rules.entries.rbegin(); it != rules.entries.rend(); ++it) {
    if (it->table == table) {
      rules.entries.erase(std::next(it).base());
      return true;
    }
  }
  return false;
}

void incremental_retest(int threads) {
  std::printf("== Incremental re-testing: single-table update vs full "
              "regeneration (threads=%d) ==\n", threads);
  std::printf("%-8s %-14s %6s %6s %8s %10s %10s %8s %10s %10s %6s\n",
              "program", "table", "dirty", "clean", "reused", "inc.checks",
              "inc.time", "hits", "full.chks", "full.time", "ratio");
  for (const char* name : {"gw-1", "gw-2", "gw-3", "gw-4"}) {
    ir::Context ctx;
    apps::AppBundle app = make_program(ctx, name);
    driver::IncrementalOptions iopts;
    iopts.gen.threads = threads;
    driver::IncrementalSession session(ctx, app.dp, iopts);
    p4::RuleSet rules = app.rules;
    session.run(rules);

    // The last installed rule sits in a late-pipeline table — the churn
    // shape the paper motivates with (rule updates, not program edits).
    const std::string table = rules.entries.back().table;
    remove_last_entry(rules, table);
    Timer inc_timer;
    driver::UpdateReport up = session.run(rules);
    const double inc_seconds = inc_timer.elapsed();

    // From-scratch regeneration of the updated program, fresh context.
    ir::Context ctx2;
    apps::AppBundle app2 = make_program(ctx2, name);
    p4::RuleSet rules2 = app2.rules;
    remove_last_entry(rules2, table);
    driver::GenOptions gopts;
    gopts.threads = threads;
    Timer full_timer;
    driver::Generator gen(ctx2, app2.dp, rules2, gopts);
    std::vector<sym::TestCaseTemplate> full = gen.generate();
    const double full_seconds = full_timer.elapsed();
    std::vector<std::string> full_sigs;
    for (const sym::TestCaseTemplate& t : full) {
      full_sigs.push_back(
          driver::IncrementalSession::full_signature(ctx2, gen.graph(), t));
    }
    std::sort(full_sigs.begin(), full_sigs.end());

    const uint64_t full_checks = gen.stats().smt_checks;
    const double ratio =
        double(full_checks) / double(up.smt_checks > 0 ? up.smt_checks : 1);
    std::printf("%-8s %-14s %6zu %6zu %8llu %10llu %9.3fs %8llu %10llu "
                "%9.3fs %5.1fx%s\n",
                name, table.c_str(), up.impact.dirty.size(),
                up.impact.clean.size(),
                static_cast<unsigned long long>(up.summaries_reused),
                static_cast<unsigned long long>(up.smt_checks), inc_seconds,
                static_cast<unsigned long long>(up.pc_cache_hits),
                static_cast<unsigned long long>(full_checks), full_seconds,
                ratio,
                up.full_sigs == full_sigs ? "" : "  BYTE-MISMATCH");
  }
  std::printf(
      "expect: every row byte-identical (no BYTE-MISMATCH); the update\n"
      "expect: pays several-fold fewer backend checks than regeneration —\n"
      "expect: clean-region summary replay plus shared verdict-cache hits.\n");
}

}  // namespace
}  // namespace meissa::bench

int main(int argc, char** argv) {
  meissa::bench::ObsSession obs_session(argc, argv);
  int threads = meissa::bench::parse_threads(argc, argv, 4);
  meissa::bench::incremental_retest(threads);
  return 0;
}
