// Gauntlet-style survival analysis over the generated ground-truth bug
// corpus (DESIGN.md "Bug injection & survival analysis"): for each
// evaluation program, mutate every live injection site, then run the full
// detection stack (lint, summary validation, symbolic engine, greybox
// fuzz) over the variants and report which lane caught each one first.
// The last row is the legacy corpus — the 16 hand-written Table-2
// scenarios converted to the same manifest format.
//
// One JSON line per program:
//
//   {"program":..,"variants":N,"confirmed":N,"detected":N,"survived":N,
//    "detection_rate":F,"first_by":{"lint":..,"verify":..,"engine":..,
//    "fuzz":..},"corpus_seconds":F,"survival_seconds":F}
//
// By default the corpus is capped at --max-variants per program and the
// engine lane at --engine-templates generated templates (that lane
// re-concretizes its whole case set against every buggy device, which
// dominates at evaluation sizes — uncapped, switch.p4 and gw-4 run for
// tens of minutes). Pass 0 to either flag for the uncapped sweep.
//
// Usage: bug_survival [--execs N] [--seed N] [--threads N] [--scale N]
//                     [--max-variants N] [--engine-templates N]
//                     [--metrics FILE] [--trace FILE]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/corpus.hpp"
#include "apps/survival.hpp"
#include "bench_common.hpp"

namespace {

using namespace meissa;

uint64_t parse_u64(int argc, char** argv, const std::string& name,
                   uint64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == name) return std::strtoull(argv[i + 1], nullptr, 10);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession obs(argc, argv);

  apps::corpus::CorpusOptions copts;
  apps::survival::SurvivalOptions sopts;
  copts.seed = parse_u64(argc, argv, "--seed", 1);
  sopts.seed = copts.seed;
  copts.threads = bench::parse_threads(argc, argv, /*fallback=*/0);
  sopts.threads = copts.threads;
  sopts.fuzz_execs = parse_u64(argc, argv, "--execs", 4096);
  copts.max_variants =
      static_cast<size_t>(parse_u64(argc, argv, "--max-variants", 24));
  sopts.engine_max_templates =
      static_cast<size_t>(parse_u64(argc, argv, "--engine-templates", 192));
  const int scale =
      static_cast<int>(parse_u64(argc, argv, "--scale", 1));

  std::printf("Bug injection survival analysis (seed %llu, fuzz budget "
              "%llu execs)\n",
              static_cast<unsigned long long>(copts.seed),
              static_cast<unsigned long long>(sopts.fuzz_execs));
  std::printf("%-10s %9s %9s %9s %9s   %s\n", "program", "variants",
              "confirmed", "detected", "survived", "first detector");

  uint64_t grand_total = 0, grand_detected = 0;
  std::vector<std::string> rows = bench::program_names();
  rows.push_back("legacy");
  for (const std::string& name : rows) {
    ir::Context ctx;
    apps::AppBundle bundle;
    const apps::AppBundle* ref = nullptr;

    bench::Timer corpus_timer;
    apps::corpus::BugCorpus corpus;
    if (name == "legacy") {
      corpus = apps::corpus::build_legacy_corpus(copts);
    } else {
      bundle = bench::make_program(ctx, name, scale);
      corpus = apps::corpus::build_corpus(ctx, bundle, copts);
      ref = &bundle;
    }
    const double corpus_seconds = corpus_timer.elapsed();

    bench::Timer survival_timer;
    apps::survival::SurvivalReport rep =
        apps::survival::run_survival(corpus, ref, sopts);
    const double survival_seconds = survival_timer.elapsed();

    grand_total += rep.total;
    grand_detected += rep.detected;
    std::printf(
        "%-10s %9llu %9llu %9llu %9llu   lint %llu / verify %llu / "
        "engine %llu / fuzz %llu\n",
        name.c_str(), static_cast<unsigned long long>(rep.total),
        static_cast<unsigned long long>(corpus.confirmed),
        static_cast<unsigned long long>(rep.detected),
        static_cast<unsigned long long>(rep.survived),
        static_cast<unsigned long long>(rep.first_by[0]),
        static_cast<unsigned long long>(rep.first_by[1]),
        static_cast<unsigned long long>(rep.first_by[2]),
        static_cast<unsigned long long>(rep.first_by[3]));
    std::printf(
        "{\"program\":\"%s\",\"variants\":%llu,\"confirmed\":%llu,"
        "\"detected\":%llu,\"survived\":%llu,\"detection_rate\":%.4f,"
        "\"first_by\":{\"lint\":%llu,\"verify\":%llu,\"engine\":%llu,"
        "\"fuzz\":%llu},\"corpus_seconds\":%.3f,\"survival_seconds\":%.3f}\n",
        util::json_escape(name).c_str(),
        static_cast<unsigned long long>(rep.total),
        static_cast<unsigned long long>(corpus.confirmed),
        static_cast<unsigned long long>(rep.detected),
        static_cast<unsigned long long>(rep.survived),
        rep.detection_rate(),
        static_cast<unsigned long long>(rep.first_by[0]),
        static_cast<unsigned long long>(rep.first_by[1]),
        static_cast<unsigned long long>(rep.first_by[2]),
        static_cast<unsigned long long>(rep.first_by[3]), corpus_seconds,
        survival_seconds);
  }
  std::printf("aggregate: %llu/%llu detected (%.1f%%)\n",
              static_cast<unsigned long long>(grand_detected),
              static_cast<unsigned long long>(grand_total),
              grand_total ? 100.0 * static_cast<double>(grand_detected) /
                                static_cast<double>(grand_total)
                          : 0.0);
  return 0;
}
