// Figure 9: test-case generation time across the eight programs for
// Meissa and the three comparable tools (p4pktgen, Gauntlet model-based,
// Aquila). PTA is excluded as in the paper (handwritten tests only).
//
// Expected shape: Meissa completes everywhere; p4pktgen/Gauntlet are
// slower on the open-source programs (and p4pktgen covers far fewer
// behaviours) and unsupported on gw-*; Aquila falls behind on gw-1/gw-2
// and times out on gw-3/gw-4 under the budget.
//
// `--threads N` runs Meissa's generator with N workers (0 = hardware
// concurrency); a JSON line with per-phase wall times follows each row.
#include "bench_common.hpp"

namespace {
constexpr double kBudget = 60;  // seconds; the paper used one hour
}

int main(int argc, char** argv) {
  meissa::bench::ObsSession obs_session(argc, argv);
  using namespace meissa;
  const int threads = bench::parse_threads(argc, argv);
  std::printf(
      "== Figure 9: generation time per program (budget %.0fs, %d threads) "
      "==\n\n",
      kBudget, threads);
  std::printf("%-10s | %-12s %-9s | %-16s %-16s %-16s\n", "program",
              "Meissa", "#tmpl", "Aquila", "p4pktgen", "Gauntlet");
  std::printf("-----------+------------------------+-------------------------"
              "-----------------------\n");

  for (const std::string& name : bench::program_names()) {
    // Meissa.
    ir::Context ctx;
    apps::AppBundle app = bench::make_program(ctx, name);
    driver::GenOptions gen;
    gen.time_budget_seconds = kBudget;
    gen.threads = threads;
    driver::Generator meissa(ctx, app.dp, app.rules, gen);
    bench::Timer t;
    auto templates = meissa.generate();
    double meissa_s = t.elapsed();

    // Aquila (its own context: separate interned universe).
    ir::Context actx;
    apps::AppBundle aapp = bench::make_program(actx, name);
    baselines::AquilaOptions aopts;
    aopts.time_budget_seconds = kBudget;
    baselines::BaselineResult aq = baselines::run_aquila(
        actx, aapp.dp, aapp.rules, aapp.intents, aopts);

    // p4pktgen / Gauntlet (skip production programs like the paper; the
    // gates also reject them, but skipping avoids burning their budget).
    baselines::BaselineResult pg, gl;
    if (!bench::is_production(name)) {
      ir::Context pctx;
      apps::AppBundle papp = bench::make_program(pctx, name);
      baselines::P4pktgenOptions popts;
      popts.time_budget_seconds = kBudget;
      popts.action_cover = true;  // its generation algorithm
      pg = baselines::run_p4pktgen(pctx, papp.dp, papp.rules, nullptr, popts);

      ir::Context gctx;
      apps::AppBundle gapp = bench::make_program(gctx, name);
      baselines::GauntletOptions gopts;
      gopts.time_budget_seconds = kBudget;
      gl = baselines::run_gauntlet(gctx, gapp.dp, gapp.rules, nullptr, gopts);
    } else {
      pg.supported = false;
      pg.unsupported_reason = "production program";
      gl.supported = false;
      gl.unsupported_reason = "production program";
    }

    char mcol[32];
    std::snprintf(mcol, sizeof mcol, "%.2fs", meissa_s);
    std::printf("%-10s | %-12s %-9zu | %-16s %-16s %-16s\n", name.c_str(),
                meissa.stats().timed_out ? "o (timeout)" : mcol,
                templates.size(), bench::outcome(aq).c_str(),
                bench::outcome(pg).c_str(), bench::outcome(gl).c_str());
    bench::print_phase_json(name, "meissa", threads, meissa.stats());
  }
  std::printf(
      "\nShape checks: Meissa finishes on every program including gw-3/gw-4;\n"
      "Aquila degrades with program size (paper: 22.9x/26.5x slower on\n"
      "gw-1/gw-2, timeout on gw-3/gw-4); p4pktgen explores default behaviour\n"
      "only (rule-blind) and Gauntlet's model-based mode enumerates complete\n"
      "paths without early termination.\n");
  return 0;
}
