// Robustness evaluation: (a) coverage vs. per-check solver budget — how
// exact/degraded coverage trades off as checks are starved, and (b)
// verdict stability vs. link loss rate — the retry/dedup layer must keep
// the end-to-end verdicts of a lossy run identical to the fault-free run.
// Backs the tables in EXPERIMENTS.md ("Resource governance & fault
// tolerance").
#include "bench_common.hpp"
#include "driver/tester.hpp"

namespace meissa::bench {
namespace {

void coverage_vs_budget() {
  std::printf("== Coverage vs. per-check solver budget ==\n");
  std::printf("%-10s %-12s %10s %10s %10s %10s %8s\n", "program", "budget",
              "templates", "exact", "degraded", "unknowns", "time");
  const uint64_t kBudgets[] = {0, 256, 64, 16, 4, 1};  // conflicts; 0 = inf
  for (const char* name : {"Router", "gw-2", "gw-4"}) {
    for (uint64_t conflicts : kBudgets) {
      ir::Context ctx;
      apps::AppBundle app = make_program(ctx, name);
      driver::GenOptions opts;
      opts.threads = 1;
      opts.smt_budget.max_conflicts = conflicts;
      if (conflicts != 0) opts.smt_budget.max_propagations = 256 * conflicts;
      Timer timer;
      driver::Generator gen(ctx, app.dp, app.rules, opts);
      (void)gen.generate();
      const driver::GenStats& s = gen.stats();
      char budget[32];
      if (conflicts == 0) {
        std::snprintf(budget, sizeof budget, "unlimited");
      } else {
        std::snprintf(budget, sizeof budget, "%lluc",
                      static_cast<unsigned long long>(conflicts));
      }
      std::printf("%-10s %-12s %10llu %10llu %10llu %10llu %7.2fs\n", name,
                  budget, static_cast<unsigned long long>(s.templates),
                  static_cast<unsigned long long>(s.exact_paths),
                  static_cast<unsigned long long>(s.degraded_paths),
                  static_cast<unsigned long long>(s.smt_unknowns),
                  timer.elapsed());
    }
  }
  std::printf(
      "expect: unlimited row has degraded == unknowns == 0; tighter budgets\n"
      "expect: trade exact for degraded coverage, never crash or hang.\n\n");
}

void stability_vs_loss() {
  std::printf("== Verdict stability vs. link loss rate ==\n");
  std::printf("%-10s %8s %8s %8s %8s %10s %8s %10s\n", "program", "loss",
              "cases", "passed", "failed", "retries", "quarant", "stable");
  const double kLoss[] = {0.0, 0.01, 0.05, 0.10, 0.20};
  for (const char* name : {"Router", "gw-2"}) {
    // Fault-free ground truth for the verdict-stability column.
    uint64_t base_passed = 0, base_failed = 0;
    for (double loss : kLoss) {
      uint64_t passed = 0, failed = 0, cases = 0, retries = 0, quarant = 0;
      bool stable = true;
      for (uint64_t seed : {3u, 17u, 99u}) {
        ir::Context ctx;
        apps::AppBundle app = make_program(ctx, name);
        sim::Device device(sim::compile(app.dp, app.rules, ctx), ctx);
        driver::TestRunOptions opts;
        opts.gen.threads = 1;
        opts.link.drop_rate = loss;
        opts.link.duplicate_rate = loss > 0 ? 0.02 : 0.0;
        opts.link.reorder_rate = loss > 0 ? 0.05 : 0.0;
        opts.link.seed = seed;
        driver::Meissa meissa(ctx, app.dp, app.rules, opts);
        driver::TestReport r = meissa.test(device, app.intents);
        passed += r.passed;
        failed += r.failed;
        cases += r.cases;
        retries += r.send_retries;
        quarant += r.quarantined.size();
        if (loss == 0.0) {
          base_passed += r.passed;
          base_failed += r.failed;
        } else {
          stable = stable && r.passed * 3 == base_passed &&
                   r.failed * 3 == base_failed;
        }
      }
      std::printf("%-10s %7.0f%% %8llu %8llu %8llu %10llu %8llu %10s\n", name,
                  loss * 100, static_cast<unsigned long long>(cases),
                  static_cast<unsigned long long>(passed),
                  static_cast<unsigned long long>(failed),
                  static_cast<unsigned long long>(retries),
                  static_cast<unsigned long long>(quarant),
                  loss == 0.0 ? "(base)" : (stable ? "yes" : "NO"));
    }
  }
  std::printf(
      "expect: every lossy row reproduces the base verdicts (stable=yes)\n"
      "expect: with zero quarantined cases; retries grow with the loss "
      "rate.\n");
}

}  // namespace
}  // namespace meissa::bench

int main(int argc, char** argv) {
  meissa::bench::ObsSession obs_session(argc, argv);
  meissa::bench::coverage_vs_budget();
  meissa::bench::stability_vs_loss();
  return 0;
}
