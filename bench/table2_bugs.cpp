// Table 2: the bug-detection matrix — 16 scenarios x 5 tools — printed
// next to the paper's verdicts.
#include "apps/table2.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  meissa::bench::ObsSession obs_session(argc, argv);
  using namespace meissa;
  std::printf("== Table 2: bug-finding capability (this repro vs paper) ==\n\n");
  std::printf("%-3s %-46s | %-7s %-9s %-4s %-9s %-7s | %s\n", "#", "bug",
              "Meissa", "p4pktgen", "PTA", "Gauntlet", "Aquila", "paper?");
  auto mark = [](bool b) { return b ? "Y" : "-"; };
  int agree = 0;
  for (int i = 1; i <= apps::kNumBugs; ++i) {
    ir::Context ctx;
    apps::BugScenario bug = apps::make_bug(ctx, i);
    apps::Table2Row row = apps::evaluate_bug(ctx, bug, /*budget=*/60);
    std::array<bool, 5> want = apps::paper_matrix(i);
    bool match = row.meissa == want[0] && row.p4pktgen == want[1] &&
                 row.pta == want[2] && row.gauntlet == want[3] &&
                 row.aquila == want[4];
    agree += match;
    std::printf("%-3d %-46s | %-7s %-9s %-4s %-9s %-7s | %s\n", i,
                bug.name.c_str(), mark(row.meissa), mark(row.p4pktgen),
                mark(row.pta), mark(row.gauntlet), mark(row.aquila),
                match ? "match" : "MISMATCH");
  }
  std::printf("\n%d/%d rows match the paper's Table 2 verdicts.\n", agree,
              apps::kNumBugs);
  std::printf("(code bugs: 1-6; non-code/toolchain bugs: 7-16)\n");
  return agree == apps::kNumBugs ? 0 : 1;
}
