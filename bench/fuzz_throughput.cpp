// Throughput of the batched execution core vs the legacy per-packet path,
// on the programs the fuzz lane actually hammers (gw-1 and gw-4). One JSON
// line per (program, variant):
//
//   per_packet         the pre-refactor execution model (ported verbatim
//                      from the seed's src/sim/device.cpp): map-backed
//                      ExecState rebuilt per packet, per-packet field
//                      interning, eager string traces, bit-at-a-time wire
//                      I/O — the baseline the ISSUE's >=5x criterion is
//                      measured against
//   per_packet_arena   inject() + render_trace — the refactored core run
//                      one packet at a time (fresh arena per call) with
//                      traces still rendered to strings
//   per_packet_events  inject() only — typed events, rendering deferred
//   batched_trace      run_batch, trace collection on
//   batched_no_trace   run_batch, trace collection off (fuzz hot loop)
//   batched_coverage   run_batch, trace off + coverage map on (greybox)
//
// Before timing anything, the bench cross-checks the legacy interpreter
// against Device::inject on a prefix of the inputs (verdict, port, bytes,
// and rendered trace lines must all agree), so the baseline provably runs
// the same semantics, just with the old cost structure.
//
// Usage: fuzz_throughput [--inputs N] [--seconds S] [--metrics FILE]
//                        [--trace FILE]
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fuzz/mutator.hpp"
#include "ir/expr.hpp"
#include "sim/coverage.hpp"
#include "sim/device.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

namespace {

using namespace meissa;

constexpr size_t kBatch = 64;

// Sink so outputs are observably consumed in every variant.
uint64_t g_sink = 0;

void consume(const sim::DeviceOutput& out) {
  g_sink += out.port + out.bytes.size() + (out.dropped ? 1 : 0) +
            out.trace.size();
}

std::vector<sim::DeviceInput> make_inputs(const p4::DataPlane& dp,
                                          const p4::RuleSet& rules,
                                          size_t n) {
  fuzz::Mutator mut(dp, rules);
  util::Rng rng(0xf00du);
  std::vector<sim::DeviceInput> ins;
  ins.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    sim::DeviceInput in = mut.random_packet(rng);
    if (i % 2 == 1) mut.mutate(in, rng);
    ins.push_back(std::move(in));
  }
  return ins;
}

// ---------------------------------------------------------------------------
// The legacy per-packet interpreter: the pre-refactor Device::inject, ported
// from the seed revision of src/sim/device.cpp (and packet/wire.cpp) against
// the same public DeviceProgram structures. Everything that made it slow is
// kept on purpose — std::unordered_map field state, ctx.fields.intern() name
// building on the hot path, std::string trace lines, bit-at-a-time wire I/O,
// full-scan table matching ranked at lookup time — because that cost model
// is what "per-packet baseline" means here.
namespace legacy {

constexpr uint64_t kGarbage = 0xdeadbeefcafef00dull;

class BitWriter {
 public:
  void put(uint64_t v, int width) {
    util::check_width(width);
    v = util::truncate(v, width);
    for (int i = width - 1; i >= 0; --i) {
      if (bit_pos_ == 0) data_.push_back(0);
      if (util::bit_at(v, i)) {
        data_.back() |= static_cast<uint8_t>(1u << (7 - bit_pos_));
      }
      bit_pos_ = (bit_pos_ + 1) % 8;
    }
  }
  void put_bytes(const std::vector<uint8_t>& bytes) {
    util::check(bit_pos_ == 0, "put_bytes: not byte aligned");
    data_.insert(data_.end(), bytes.begin(), bytes.end());
  }
  std::vector<uint8_t> take() && { return std::move(data_); }

 private:
  std::vector<uint8_t> data_;
  int bit_pos_ = 0;
};

class BitReader {
 public:
  explicit BitReader(const std::vector<uint8_t>& data) : data_(data) {}
  std::optional<uint64_t> get(int width) {
    util::check_width(width);
    if (pos_ + static_cast<size_t>(width) > data_.size() * 8) {
      return std::nullopt;
    }
    uint64_t v = 0;
    for (int i = 0; i < width; ++i) {
      size_t byte = pos_ / 8;
      int bit = static_cast<int>(pos_ % 8);
      v = (v << 1) | ((data_[byte] >> (7 - bit)) & 1u);
      ++pos_;
    }
    return v;
  }
  size_t bit_position() const { return pos_; }

 private:
  const std::vector<uint8_t>& data_;
  size_t pos_ = 0;
};

struct ExecState {
  ir::ConcreteState fields;
  std::vector<uint8_t> wire;
  std::vector<uint8_t> payload;
  bool dropped = false;
  std::vector<std::string> trace;
};

struct Output {
  bool accepted = true;
  bool dropped = false;
  uint64_t port = 0;
  std::vector<uint8_t> bytes;
  std::vector<std::string> trace;
};

class Device {
 public:
  Device(sim::DeviceProgram prog, ir::Context& ctx)
      : prog_(std::move(prog)), ctx_(ctx) {}

  Output inject(const sim::DeviceInput& in);

 private:
  uint64_t eval_or_zero(ir::ExprRef e, const ir::ConcreteState& s) const {
    return ir::eval(e, s).value_or(0);
  }

  void store(ir::FieldId f, uint64_t v, ExecState& st) const {
    v = util::truncate(v, ctx_.fields.width(f));
    st.fields[f] = v;
    if (f == prog_.overlap_writer &&
        prog_.overlap_victim != ir::kInvalidField) {
      st.fields[prog_.overlap_victim] =
          util::truncate(v, ctx_.fields.width(prog_.overlap_victim));
    }
  }

  bool parse(const sim::DevInstance& inst, ExecState& st) const;
  void run_op(const sim::DevOp& op, ExecState& st) const;
  void apply_table(const sim::DevInstance& inst, const sim::DevTable& t,
                   ExecState& st) const;
  void run_block(const sim::DevInstance& inst, const sim::DevControlBlock& b,
                 ExecState& st) const;
  void deparse(const sim::DevInstance& inst, ExecState& st) const;
  void run_instance(const sim::DevInstance& inst, ExecState& st) const;

  sim::DeviceProgram prog_;
  ir::Context& ctx_;
  ir::ConcreteState registers_;
};

bool Device::parse(const sim::DevInstance& inst, ExecState& st) const {
  BitReader r(st.wire);
  int state = inst.start_state;
  while (state >= 0) {
    const sim::DevParserState& s = inst.parser[static_cast<size_t>(state)];
    for (size_t hidx : s.extracts) {
      const p4::HeaderDef& def = prog_.program.headers[hidx];
      for (const p4::FieldDef& f : def.fields) {
        auto v = r.get(f.width);
        if (!v) {
          st.trace.push_back(inst.name + ": parser ran out of packet in " +
                             s.name);
          return false;
        }
        ir::FieldId fid =
            ctx_.fields.intern(p4::content_field(def.name, f.name), f.width);
        st.fields[fid] = *v;
      }
      ir::FieldId vf = ctx_.fields.intern(p4::validity_field(def.name), 1);
      st.fields[vf] = 1;
      st.trace.push_back(inst.name + ": parsed " + def.name);
    }
    int next = s.default_next;
    if (s.select != ir::kInvalidField) {
      auto sel = st.fields.find(s.select);
      uint64_t sval = sel == st.fields.end() ? 0 : sel->second;
      for (const sim::DevTransition& t : s.cases) {
        if ((sval & t.mask) == (t.value & t.mask)) {
          next = t.next;
          break;
        }
      }
    }
    if (next == sim::kReject) {
      st.trace.push_back(inst.name + ": parser reject");
      return false;
    }
    state = next;
  }
  size_t consumed_bits = r.bit_position();
  util::check(consumed_bits % 8 == 0, "parser left unaligned position");
  st.payload.assign(st.wire.begin() + static_cast<long>(consumed_bits / 8),
                    st.wire.end());
  return true;
}

void Device::run_op(const sim::DevOp& op, ExecState& st) const {
  switch (op.kind) {
    case sim::DevOp::Kind::kAssign: {
      uint64_t v = eval_or_zero(op.value, st.fields);
      if (prog_.carry_victim != ir::kInvalidField && op.value != nullptr &&
          op.value->kind == ir::ExprKind::kArith &&
          op.value->arith_op() == ir::ArithOp::kAdd) {
        uint64_t a = eval_or_zero(op.value->lhs, st.fields);
        uint64_t b = eval_or_zero(op.value->rhs, st.fields);
        int w = op.value->width;
        if (w < 64 && ((a + b) >> w) != 0) {
          ir::FieldId victim = prog_.carry_victim;
          uint64_t old = st.fields.count(victim) ? st.fields[victim] : 0;
          st.fields[victim] = old ^ 1u;
        }
      }
      store(op.dest, v, st);
      break;
    }
    case sim::DevOp::Kind::kHash: {
      std::vector<uint64_t> kv;
      std::vector<int> kw;
      for (ir::FieldId k : op.keys) {
        kv.push_back(st.fields.count(k) ? st.fields.at(k) : 0);
        kw.push_back(ctx_.fields.width(k));
      }
      store(op.dest,
            p4::compute_hash(op.algo, kv, kw, ctx_.fields.width(op.dest)),
            st);
      break;
    }
  }
}

void Device::apply_table(const sim::DevInstance& inst, const sim::DevTable& t,
                         ExecState& st) const {
  std::vector<p4::MatchKind> kinds;
  kinds.reserve(t.keys.size());
  for (const sim::DevKey& k : t.keys) kinds.push_back(k.kind);

  const sim::DevEntry* best = nullptr;
  for (const sim::DevEntry& e : t.entries) {
    bool hit = true;
    for (size_t i = 0; i < t.keys.size() && hit; ++i) {
      const sim::DevKey& k = t.keys[i];
      uint64_t v = st.fields.count(k.field) ? st.fields.at(k.field) : 0;
      const p4::KeyMatch& m = e.matches[i];
      switch (k.kind) {
        case p4::MatchKind::kExact:
          hit = v == m.value;
          break;
        case p4::MatchKind::kTernary:
          hit = (v & m.mask) == (m.value & m.mask);
          break;
        case p4::MatchKind::kLpm: {
          uint64_t mask =
              m.prefix_len <= 0
                  ? 0
                  : util::mask_bits(k.width) ^
                        util::mask_bits(std::max(0, k.width - m.prefix_len));
          hit = (v & mask) == (m.value & mask);
          break;
        }
        case p4::MatchKind::kRange:
          hit = v >= m.lo && v <= m.hi;
          break;
      }
    }
    if (hit && (best == nullptr ||
                p4::entry_rank(kinds, e.source, best->source) < 0)) {
      best = &e;
    }
  }
  if (best != nullptr) {
    st.trace.push_back(inst.name + ": table " + t.name + " hit -> " +
                       best->source.action);
    for (const sim::DevOp& op : best->ops) run_op(op, st);
    return;
  }
  st.trace.push_back(inst.name + ": table " + t.name + " miss -> " +
                     t.default_action);
  for (const sim::DevOp& op : t.default_ops) run_op(op, st);
}

void Device::run_block(const sim::DevInstance& inst,
                       const sim::DevControlBlock& b, ExecState& st) const {
  for (const sim::DevControlStmt& s : b.stmts) {
    switch (s.kind) {
      case sim::DevControlStmt::Kind::kApply:
        apply_table(inst, inst.tables[s.table], st);
        break;
      case sim::DevControlStmt::Kind::kIf:
        if (eval_or_zero(s.cond, st.fields) != 0) {
          run_block(inst, s.then_block, st);
        } else {
          run_block(inst, s.else_block, st);
        }
        break;
      case sim::DevControlStmt::Kind::kOp:
        run_op(s.op, st);
        break;
    }
  }
}

void Device::deparse(const sim::DevInstance& inst, ExecState& st) const {
  for (const sim::DevChecksum& c : inst.checksums) {
    ir::FieldId guard =
        ctx_.fields.intern(p4::validity_field(c.guard_header), 1);
    if (!st.fields.count(guard) || st.fields.at(guard) == 0) continue;
    std::vector<uint64_t> kv;
    std::vector<int> kw;
    for (ir::FieldId f : c.sources) {
      kv.push_back(st.fields.count(f) ? st.fields.at(f) : 0);
      kw.push_back(ctx_.fields.width(f));
    }
    store(c.dest, p4::compute_hash(c.algo, kv, kw, ctx_.fields.width(c.dest)),
          st);
    st.trace.push_back(inst.name + ": checksum update into " +
                       ctx_.fields.name(c.dest));
  }
  BitWriter w;
  for (const std::string& hname : inst.emit_order) {
    ir::FieldId vf = ctx_.fields.intern(p4::validity_field(hname), 1);
    if (!st.fields.count(vf) || st.fields.at(vf) == 0) continue;
    const p4::HeaderDef* def = prog_.program.find_header(hname);
    for (const p4::FieldDef& f : def->fields) {
      ir::FieldId fid =
          ctx_.fields.intern(p4::content_field(hname, f.name), f.width);
      w.put(st.fields.count(fid) ? st.fields.at(fid) : 0, f.width);
    }
    st.trace.push_back(inst.name + ": emitted " + hname);
  }
  w.put_bytes(st.payload);
  st.wire = std::move(w).take();
}

void Device::run_instance(const sim::DevInstance& inst, ExecState& st) const {
  for (const p4::HeaderDef& h : prog_.program.headers) {
    st.fields[ctx_.fields.intern(p4::validity_field(h.name), 1)] = 0;
  }
  if (!parse(inst, st)) {
    st.dropped = true;
    return;
  }
  run_block(inst, inst.control, st);
  ir::FieldId drop = ctx_.fields.intern(std::string(p4::kDropFlag), 1);
  if (st.fields.count(drop) && st.fields.at(drop) != 0) {
    st.trace.push_back(inst.name + ": dropped");
    st.dropped = true;
    return;
  }
  deparse(inst, st);
}

Output Device::inject(const sim::DeviceInput& in) {
  ExecState st;
  st.wire = in.bytes;
  st.fields = registers_;

  st.fields[ctx_.fields.intern(std::string(p4::kIngressPort),
                               p4::kPortWidth)] =
      util::truncate(in.port, p4::kPortWidth);
  for (const p4::FieldDef& m : prog_.program.metadata) {
    uint64_t v = prog_.zero_metadata ? 0 : util::truncate(kGarbage, m.width);
    st.fields[ctx_.fields.intern(m.name, m.width)] = v;
  }
  st.fields[ctx_.fields.intern(std::string(p4::kDropFlag), 1)] = 0;
  st.fields[ctx_.fields.intern(std::string(p4::kEgressSpec),
                               p4::kPortWidth)] = 0;

  Output out;
  int cur = -1;
  for (const sim::DevEntryPoint& e : prog_.entries) {
    if (e.guard == nullptr || eval_or_zero(e.guard, st.fields) != 0) {
      cur = e.instance;
      break;
    }
  }
  if (cur < 0) {
    out.accepted = false;
    return out;
  }

  size_t hops = 0;
  while (cur >= 0) {
    util::check(++hops <= prog_.instances.size() + 1,
                "legacy device: pipeline loop");
    const sim::DevInstance& inst = prog_.instances[static_cast<size_t>(cur)];
    run_instance(inst, st);
    if (st.dropped) {
      out.dropped = true;
      out.trace = std::move(st.trace);
      return out;
    }
    int next = -1;
    for (const sim::DevEdge& e : prog_.edges) {
      if (e.from != cur) continue;
      if (e.guard == nullptr || eval_or_zero(e.guard, st.fields) != 0) {
        next = e.to;
        break;
      }
    }
    cur = next;
  }
  out.dropped = false;
  out.port = st.fields.at(
      ctx_.fields.intern(std::string(p4::kEgressSpec), p4::kPortWidth));
  out.bytes = std::move(st.wire);
  out.trace = std::move(st.trace);
  return out;
}

}  // namespace legacy

// Asserts the ported legacy interpreter and the refactored core agree on
// verdict, egress, bytes, and trace lines for the first packets — the
// baseline must be a different cost model of the *same* semantics, or the
// speedup number is meaningless. kEvalFallback events are excluded from
// the comparison: they are new-core diagnostics with no legacy line.
void cross_check(legacy::Device& old, sim::Device& device,
                 const std::vector<sim::DeviceInput>& ins, size_t limit) {
  for (size_t i = 0; i < std::min(limit, ins.size()); ++i) {
    legacy::Output a = old.inject(ins[i]);
    sim::DeviceOutput b = device.inject(ins[i]);
    util::check(a.accepted == b.accepted && a.dropped == b.dropped,
                "legacy cross-check: verdict mismatch");
    if (!a.dropped && a.accepted) {
      util::check(a.port == b.port, "legacy cross-check: port mismatch");
      util::check(a.bytes == b.bytes, "legacy cross-check: bytes mismatch");
    }
    std::vector<sim::TraceEvent> ev;
    for (const sim::TraceEvent& e : b.trace) {
      if (e.kind != sim::TraceEventKind::kEvalFallback) ev.push_back(e);
    }
    util::check(a.trace == device.render_trace(ev),
                "legacy cross-check: trace mismatch");
  }
}

struct Row {
  std::string variant;
  uint64_t execs = 0;
  double seconds = 0;
  double execs_per_sec = 0;
};

// Runs `pass` (one full sweep over the inputs, returning executions done)
// once for warm-up, then repeatedly until `min_seconds` of timed work.
template <typename Pass>
Row measure(const char* variant, double min_seconds, Pass&& pass) {
  pass();  // warm-up (and arena right-sizing)
  Row row;
  row.variant = variant;
  bench::Timer t;
  do {
    row.execs += pass();
    row.seconds = t.elapsed();
  } while (row.seconds < min_seconds);
  row.execs_per_sec = static_cast<double>(row.execs) / row.seconds;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession obs(argc, argv);
  size_t n_inputs = 512;
  double min_seconds = 0.5;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--inputs") n_inputs = std::atoi(argv[i + 1]);
    if (std::string(argv[i]) == "--seconds") {
      min_seconds = std::atof(argv[i + 1]);
    }
  }

  for (const std::string& name : {std::string("gw-1"), std::string("gw-4")}) {
    ir::Context ctx;
    apps::AppBundle app = bench::make_program(ctx, name);
    sim::DeviceProgram prog = sim::compile(app.dp, app.rules, ctx);
    legacy::Device old(prog, ctx);  // copies; device takes the original
    sim::Device device(std::move(prog), ctx);
    std::vector<sim::DeviceInput> ins =
        make_inputs(app.dp, app.rules, n_inputs);
    cross_check(old, device, ins, 64);

    std::vector<Row> rows;
    rows.push_back(measure("per_packet", min_seconds, [&] {
      for (const sim::DeviceInput& in : ins) {
        legacy::Output out = old.inject(in);
        g_sink += out.port + out.bytes.size() + (out.dropped ? 1 : 0);
        for (const std::string& line : out.trace) g_sink += line.size();
      }
      return ins.size();
    }));
    rows.push_back(measure("per_packet_arena", min_seconds, [&] {
      for (const sim::DeviceInput& in : ins) {
        sim::DeviceOutput out = device.inject(in);
        for (const std::string& line : device.render_trace(out.trace)) {
          g_sink += line.size();
        }
        consume(out);
      }
      return ins.size();
    }));
    rows.push_back(measure("per_packet_events", min_seconds, [&] {
      for (const sim::DeviceInput& in : ins) consume(device.inject(in));
      return ins.size();
    }));

    std::vector<sim::DeviceOutput> outs(kBatch);
    auto batched_pass = [&](sim::ExecArena& arena) {
      for (size_t base = 0; base < ins.size(); base += kBatch) {
        size_t n = std::min(kBatch, ins.size() - base);
        device.run_batch({ins.data() + base, n}, {outs.data(), n}, arena);
        for (size_t i = 0; i < n; ++i) consume(outs[i]);
      }
      return ins.size();
    };
    {
      sim::ExecArena arena;
      rows.push_back(measure("batched_trace", min_seconds,
                             [&] { return batched_pass(arena); }));
    }
    {
      sim::ExecArena arena;
      arena.collect_trace = false;
      rows.push_back(measure("batched_no_trace", min_seconds,
                             [&] { return batched_pass(arena); }));
    }
    {
      sim::ExecArena arena;
      arena.collect_trace = false;
      sim::CoverageMap cov;
      arena.coverage = &cov;
      rows.push_back(measure("batched_coverage", min_seconds,
                             [&] { return batched_pass(arena); }));
    }

    const double baseline = rows[0].execs_per_sec;
    for (const Row& r : rows) {
      std::printf(
          "{\"program\":\"%s\",\"variant\":\"%s\",\"execs\":%llu,"
          "\"seconds\":%.4f,\"execs_per_sec\":%.0f,"
          "\"speedup_vs_per_packet\":%.2f}\n",
          name.c_str(), r.variant.c_str(),
          static_cast<unsigned long long>(r.execs), r.seconds,
          r.execs_per_sec, r.execs_per_sec / baseline);
    }
  }
  if (g_sink == 0x5eed) std::fprintf(stderr, "sink\n");
  return 0;
}
