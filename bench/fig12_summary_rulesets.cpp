// Figure 12: effectiveness of code summary on gw-4 across the rule-set
// family set-1..set-4 — (a) running time, (b) SMT calls, (c) possible
// paths, with code summary on vs off.
//
// Expected shape: the gap persists (paper: 2.2-4.5x time, up to 14.9x SMT
// calls) and the static path count explodes while the summarized count
// grows only linearly with the rule set.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  meissa::bench::ObsSession obs_session(argc, argv);
  using namespace meissa;
  std::printf("== Figure 12: code summary on gw-4 vs table rule sets ==\n\n");
  std::printf("%-7s %8s | %10s %10s %7s | %9s %9s %7s | %12s %12s\n", "set",
              "rules", "time w/", "time w/o", "ratio", "SMT w/", "SMT w/o",
              "ratio", "paths w/", "paths w/o");
  for (int set = 1; set <= 4; ++set) {
    apps::GwConfig cfg;
    cfg.level = 4;
    // Base 4 keeps the largest (set-4, paper-faithful-mode) run tractable
    // on one core while preserving the 2x-per-step scaling.
    cfg.elastic_ips = apps::elastic_ips_for_set(set, /*base=*/4);

    ir::Context ctx;
    apps::AppBundle app = apps::make_gateway(ctx, cfg);
    driver::GenOptions with;
    with.check_every_predicate = true;  // the paper's Algorithm 1/2
    with.build.elide_disjoint_negations = false;
    driver::Generator gw(ctx, app.dp, app.rules, with);
    bench::Timer t1;
    gw.generate();
    double with_s = t1.elapsed();

    ir::Context ctx2;
    apps::AppBundle app2 = apps::make_gateway(ctx2, cfg);
    driver::GenOptions without;
    without.code_summary = false;
    without.check_every_predicate = true;
    without.build.elide_disjoint_negations = false;
    driver::Generator go(ctx2, app2.dp, app2.rules, without);
    bench::Timer t2;
    go.generate();
    double without_s = t2.elapsed();

    std::printf(
        "%-7s %8zu | %9.3fs %9.3fs %6.1fx | %9llu %9llu %6.1fx | %12s %12s\n",
        ("set-" + std::to_string(set)).c_str(), app.rules.loc(), with_s,
        without_s, without_s / with_s,
        static_cast<unsigned long long>(gw.stats().smt_checks),
        static_cast<unsigned long long>(go.stats().smt_checks),
        static_cast<double>(go.stats().smt_checks) /
            static_cast<double>(std::max<uint64_t>(1, gw.stats().smt_checks)),
        gw.stats().paths_summarized.str().c_str(),
        go.stats().paths_original.str().c_str());
  }
  std::printf("\nShape checks: every ratio > 1 at every rule-set size; the\n"
              "static path count grows multiplicatively without summary and\n"
              "additively with it.\n");
  return 0;
}
