// Figure 10: generation time on gw-1 and gw-2 as the table rule set
// scales (set-1..set-4: elastic IPs double per step), Meissa vs Aquila.
//
// Expected shape: both grow with the rule set; Meissa stays well below
// Aquila at every point (paper: 6.7-41.2x).
#include "bench_common.hpp"

namespace {
constexpr double kBudget = 120;
}

int main(int argc, char** argv) {
  meissa::bench::ObsSession obs_session(argc, argv);
  using namespace meissa;
  std::printf("== Figure 10: running time vs table rule set (Meissa / "
              "Aquila) ==\n");
  for (int level = 1; level <= 2; ++level) {
    std::printf("\n-- gw-%d --\n", level);
    std::printf("%-7s %10s %12s %12s %9s\n", "set", "rules", "Meissa",
                "Aquila", "speedup");
    for (int set = 1; set <= 4; ++set) {
      ir::Context ctx;
      apps::GwConfig cfg;
      cfg.level = level;
      cfg.elastic_ips = apps::elastic_ips_for_set(set);
      apps::AppBundle app = apps::make_gateway(ctx, cfg);

      driver::GenOptions gen;
      gen.time_budget_seconds = kBudget;
      driver::Generator meissa(ctx, app.dp, app.rules, gen);
      bench::Timer t;
      meissa.generate();
      double ms = t.elapsed();

      ir::Context actx;
      apps::AppBundle aapp = apps::make_gateway(actx, cfg);
      baselines::AquilaOptions aopts;
      aopts.time_budget_seconds = kBudget;
      baselines::BaselineResult aq = baselines::run_aquila(
          actx, aapp.dp, aapp.rules, aapp.intents, aopts);

      char speedup[32];
      if (aq.timed_out) {
        std::snprintf(speedup, sizeof speedup, ">%.0fx", kBudget / ms);
      } else {
        std::snprintf(speedup, sizeof speedup, "%.1fx", aq.seconds / ms);
      }
      std::printf("%-7s %10zu %11.2fs %-12s %9s\n",
                  ("set-" + std::to_string(set)).c_str(), app.rules.loc(), ms,
                  bench::outcome(aq).c_str(), speedup);
    }
  }
  std::printf("\nShape check: Meissa < Aquila on every rule set; the gap\n"
              "persists as the set doubles (paper: 6.7-41.2x).\n");
  return 0;
}
