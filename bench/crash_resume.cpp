// Crash-safety evaluation: (a) checkpoint overhead — generation wall time
// and template counts at different checkpoint cadences, which must
// reproduce the clean run's output exactly while making the wall-time
// cost of each cadence visible, and (b) resume correctness & cost —
// resuming from a full checkpoint must restore every pipeline and
// reproduce the template count exactly. Backs the "Crash safety &
// supervision" section in DESIGN.md.
#include <filesystem>

#include "bench_common.hpp"
#include "driver/generator.hpp"

namespace meissa::bench {
namespace {

namespace fs = std::filesystem;

struct RunResult {
  double seconds = 0;
  uint64_t templates = 0;
  uint64_t writes = 0;
  uint64_t failures = 0;
  bool resumed = false;
  uint64_t resumed_pipelines = 0;
};

RunResult run_once(const std::string& name, int threads,
                   const std::string& checkpoint_dir, uint64_t cadence,
                   bool resume) {
  ir::Context ctx;
  apps::AppBundle app = make_program(ctx, name);
  driver::GenOptions opts;
  opts.threads = threads;
  opts.checkpoint_dir = checkpoint_dir;
  opts.checkpoint_every = cadence;
  opts.resume = resume;
  Timer timer;
  driver::Generator gen(ctx, app.dp, app.rules, opts);
  (void)gen.generate();
  const driver::GenStats& s = gen.stats();
  RunResult r;
  r.seconds = timer.elapsed();
  r.templates = s.templates;
  r.writes = s.checkpoint_writes;
  r.failures = s.checkpoint_failures;
  r.resumed = s.resumed;
  r.resumed_pipelines = s.resumed_pipelines;
  return r;
}

void checkpoint_overhead(int threads) {
  std::printf("== Checkpoint overhead (threads=%d) ==\n", threads);
  std::printf("%-10s %-14s %10s %10s %10s %10s\n", "program", "cadence",
              "templates", "writes", "time", "overhead");
  fs::path root = fs::temp_directory_path() / "meissa-crash-resume-bench";
  // Each checkpoint write persists the full work-unit state, so the cost
  // scales with both cadence and program size; the every-result cadence on
  // the big gateways is the kill/resume stress suite's domain, not a bench
  // smoke's.
  for (const char* name : {"Router", "gw-2"}) {
    RunResult clean = run_once(name, threads, "", 8, false);
    std::printf("%-10s %-14s %10llu %10llu %9.3fs %10s\n", name, "off",
                static_cast<unsigned long long>(clean.templates),
                static_cast<unsigned long long>(clean.writes), clean.seconds,
                "(base)");
    struct Cadence {
      const char* label;
      uint64_t every;
    };
    for (Cadence c : {Cadence{"every-64", 64}, Cadence{"every-8", 8}}) {
      fs::path dir = root / (std::string(name) + "-" + c.label);
      fs::remove_all(dir);
      RunResult r = run_once(name, threads, dir.string(), c.every, false);
      std::printf("%-10s %-14s %10llu %10llu %9.3fs %9.2fx%s\n", name,
                  c.label, static_cast<unsigned long long>(r.templates),
                  static_cast<unsigned long long>(r.writes), r.seconds,
                  clean.seconds > 0 ? r.seconds / clean.seconds : 0.0,
                  r.templates == clean.templates ? "" : "  TEMPLATE-MISMATCH");
      if (r.failures != 0) std::printf("  !! %llu checkpoint write failure(s)\n",
                  static_cast<unsigned long long>(r.failures));
    }
  }
  fs::remove_all(root);
  std::printf(
      "expect: every cadence reproduces the base template count; tighter\n"
      "expect: cadences cost more wall time, never correctness.\n\n");
}

void resume_cost(int threads) {
  std::printf("== Resume correctness & cost (threads=%d) ==\n", threads);
  std::printf("%-10s %-14s %10s %10s %10s %10s\n", "program", "variant",
              "templates", "res.pipes", "time", "vs-first");
  fs::path root = fs::temp_directory_path() / "meissa-crash-resume-bench";
  for (const char* name : {"Router", "gw-2"}) {
    fs::path dir = root / (std::string(name) + "-resume");
    fs::remove_all(dir);
    RunResult first = run_once(name, threads, dir.string(), 64, false);
    std::printf("%-10s %-14s %10llu %10s %9.3fs %10s\n", name, "checkpointed",
                static_cast<unsigned long long>(first.templates), "-",
                first.seconds, "(base)");
    RunResult resumed = run_once(name, threads, dir.string(), 64, true);
    std::printf("%-10s %-14s %10llu %10llu %9.3fs %9.2fx%s%s\n", name,
                "resumed",
                static_cast<unsigned long long>(resumed.templates),
                static_cast<unsigned long long>(resumed.resumed_pipelines),
                resumed.seconds,
                resumed.seconds > 0 ? first.seconds / resumed.seconds : 0.0,
                resumed.resumed ? "" : "  NOT-RESUMED",
                resumed.templates == first.templates ? ""
                                                     : "  TEMPLATE-MISMATCH");
  }
  fs::remove_all(root);
  std::printf(
      "expect: resumed runs restore every pipeline from the checkpoint and\n"
      "expect: reproduce the checkpointed run's template count exactly.\n"
      "expect: (resumed runs keep checkpointing, so wall time stays in the\n"
      "expect: same band as the first checkpointed run, not the clean one.)\n");
}

}  // namespace
}  // namespace meissa::bench

int main(int argc, char** argv) {
  meissa::bench::ObsSession obs_session(argc, argv);
  int threads = meissa::bench::parse_threads(argc, argv, 4);
  meissa::bench::checkpoint_overhead(threads);
  meissa::bench::resume_cost(threads);
  return 0;
}
