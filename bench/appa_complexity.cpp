// Appendix A: the complexity analysis — test-case generation cost for a
// synthetic k-pipeline chain, basic framework vs code summary. Each pipe
// has n possible paths of which m are valid under the previous pipe's
// output (a Fig. 7-style chained-table pipe), so the basic framework's
// explored tree grows with k while the summarized cost stays ~linear.
#include "apps/protocols.hpp"
#include "bench_common.hpp"

namespace {

using namespace meissa;

// Builds a chain of `k` pipes. Each pipe has a table matching on the tag
// written by the previous pipe (n entries; only the chained one is valid)
// plus a fan table on a fresh symbolic field (f entries, all valid).
apps::AppBundle make_chain(ir::Context& ctx, int k, int n, int f) {
  p4::ProgramBuilder b(ctx, "chain");
  std::vector<p4::FieldDef> fields = {{"tag", 16}};
  for (int i = 0; i < k; ++i) {
    fields.push_back({"sel" + std::to_string(i), 16});
  }
  b.header("hop", fields);
  b.header("eth", apps::eth_header().fields);

  p4::RuleSet rules;
  for (int i = 0; i < k; ++i) {
    std::string suffix = std::to_string(i);
    p4::ActionDef set_tag;
    set_tag.name = "set_tag" + suffix;
    set_tag.params = {{"t", 16}};
    set_tag.ops = {p4::ActionOp::assign("hdr.hop.tag",
                                        b.arg(set_tag.name, "t", 16))};
    b.action(set_tag);
    p4::ActionDef nop;
    nop.name = "nop" + suffix;
    b.action(nop);

    p4::TableDef chain_tbl;
    chain_tbl.name = "chain" + suffix;
    chain_tbl.keys = {{"hdr.hop.tag", p4::MatchKind::kExact}};
    chain_tbl.actions = {set_tag.name, nop.name};
    chain_tbl.default_action = nop.name;
    b.table(chain_tbl);

    p4::TableDef fan_tbl;
    fan_tbl.name = "fan" + suffix;
    fan_tbl.keys = {{"hdr.hop.sel" + suffix, p4::MatchKind::kExact}};
    fan_tbl.actions = {nop.name};
    fan_tbl.default_action = nop.name;
    b.table(fan_tbl);

    p4::PipelineDef p;
    p.name = "pipe" + suffix;
    p4::ParserState start;
    start.name = "start";
    start.extracts = {"eth", "hop"};
    start.default_next = "accept";
    p.parser.states = {start};
    p.control.stmts = {p4::ControlStmt::apply(chain_tbl.name),
                       p4::ControlStmt::apply(fan_tbl.name)};
    p.deparser.emit_order = {"eth", "hop"};
    b.pipeline(p);

    // Chain entries: only tags i*1000+{0,1} are reachable (the entry
    // point pins tag 0; each hop maps back into {0,1}), so n-2 entries
    // per pipe are invalid — the redundancy the basic framework re-checks
    // under every prefix and code summary eliminates once.
    for (int j = 0; j < n; ++j) {
      p4::TableEntry e;
      e.table = chain_tbl.name;
      e.matches = {p4::KeyMatch::exact(
          static_cast<uint64_t>(i * 1000 + j))};
      e.action = set_tag.name;
      e.args = {static_cast<uint64_t>((i + 1) * 1000 + (j % 2))};
      rules.add(e);
    }
    for (int j = 0; j < f; ++j) {
      p4::TableEntry e;
      e.table = fan_tbl.name;
      e.matches = {p4::KeyMatch::exact(static_cast<uint64_t>(j))};
      e.action = nop.name;
      rules.add(e);
    }
  }

  apps::AppBundle app;
  app.name = "chain" + std::to_string(k);
  app.dp.program = b.build();
  for (int i = 0; i < k; ++i) {
    app.dp.topology.instances.push_back(
        {"p" + std::to_string(i), "pipe" + std::to_string(i), 0});
    if (i > 0) {
      app.dp.topology.edges.push_back(
          {"p" + std::to_string(i - 1), "p" + std::to_string(i), nullptr});
    }
  }
  // Packets enter with tag 0 (the "one packet type at a time" guard).
  app.dp.topology.entries = {
      {"p0", ctx.arena.cmp(ir::CmpOp::kEq, ctx.field_var("hdr.hop.tag", 16),
                           ctx.arena.constant(0, 16))}};
  app.rules = std::move(rules);
  return app;
}

}  // namespace

int main(int argc, char** argv) {
  meissa::bench::ObsSession obs_session(argc, argv);
  std::printf("== Appendix A: k-pipeline chain, basic vs code summary ==\n");
  std::printf("   (16 chained entries per pipe, 2 reachable; fan of 2)\n\n");
  std::printf("%-3s | %12s %10s | %12s %10s | %s\n", "k", "basic time",
              "basic SMT", "summ. time", "summ. SMT", "templates");
  for (int k = 1; k <= 8; ++k) {
    ir::Context c1;
    apps::AppBundle a1 = make_chain(c1, k, 16, 2);
    driver::GenOptions basic;
    basic.code_summary = false;
    basic.check_every_predicate = true;
    basic.build.elide_disjoint_negations = false;
    driver::Generator g1(c1, a1.dp, a1.rules, basic);
    bench::Timer t1;
    size_t n1 = g1.generate().size();
    double s1 = t1.elapsed();

    ir::Context c2;
    apps::AppBundle a2 = make_chain(c2, k, 16, 2);
    driver::GenOptions summ;
    summ.check_every_predicate = true;
    summ.build.elide_disjoint_negations = false;
    driver::Generator g2(c2, a2.dp, a2.rules, summ);
    bench::Timer t2;
    size_t n2 = g2.generate().size();
    double s2 = t2.elapsed();

    std::printf("%-3d | %11.3fs %10llu | %11.3fs %10llu | %zu / %zu\n", k, s1,
                static_cast<unsigned long long>(g1.stats().smt_checks), s2,
                static_cast<unsigned long long>(g2.stats().smt_checks), n1,
                n2);
  }
  std::printf("\nShape check: the basic framework's SMT calls grow faster\n"
              "with k than code summary's (O(n^k)-flavored vs O(k*n),\n"
              "Appendix A), while both report the same template count.\n");
  return 0;
}
