// Summary translation validation cost: across the eight evaluation
// programs, what does proving each run's code summary sound cost next to
// computing the summary itself?
//
// Expected shape: every program fully proven (all obligations unsat, zero
// refuted), validation wall time of the same order as summarization (both
// are per-pipeline solver sweeps over the same regions), and the
// structural fast path visible as obligations-per-SMT-check > 1.
//
// A JSON line per program follows the table for scripted sweeps.
#include "analysis/validate.hpp"
#include "bench_common.hpp"
#include "cfg/build.hpp"
#include "summary/summary.hpp"

int main(int argc, char** argv) {
  meissa::bench::ObsSession obs_session(argc, argv);
  using namespace meissa;
  std::printf("== Summary translation validation cost (8 programs) ==\n\n");
  std::printf("%-9s | %9s %9s | %6s %6s %6s %6s | %9s %9s\n", "prog",
              "summ", "validate", "oblig", "unsat", "unpro", "refut",
              "smt", "edges");
  std::printf("----------+---------------------+-----------------------------"
              "+--------------------\n");
  bool all_proven = true;
  for (const std::string& name : bench::program_names()) {
    ir::Context ctx;
    apps::AppBundle app = bench::make_program(ctx, name);
    cfg::Cfg original = cfg::build_cfg(app.dp, app.rules, ctx);

    bench::Timer ts;
    summary::SummaryResult sr = summary::summarize(ctx, original, {});
    const double summ_s = ts.elapsed();

    bench::Timer tv;
    analysis::ValidationResult r =
        analysis::validate_summary(ctx, original, sr.graph, {});
    const double validate_s = tv.elapsed();
    all_proven = all_proven && r.proven();

    uint64_t edges = 0;
    for (const analysis::PipelineValidation& p : r.pipelines) {
      edges += p.ledger.size();
    }
    std::printf("%-9s | %8.3fs %8.3fs | %6llu %6llu %6llu %6llu | %9llu %9llu\n",
                app.name.c_str(), summ_s, validate_s,
                static_cast<unsigned long long>(r.obligations),
                static_cast<unsigned long long>(r.unsat),
                static_cast<unsigned long long>(r.unproven),
                static_cast<unsigned long long>(r.refuted),
                static_cast<unsigned long long>(r.smt_checks),
                static_cast<unsigned long long>(edges));
    std::printf(
        "{\"program\":\"%s\",\"summary_seconds\":%.6f,"
        "\"validate_seconds\":%.6f,\"obligations\":%llu,\"unsat\":%llu,"
        "\"unproven\":%llu,\"refuted\":%llu,\"smt_checks\":%llu,"
        "\"proven\":%s}\n",
        util::json_escape(app.name).c_str(), summ_s, validate_s,
        static_cast<unsigned long long>(r.obligations),
        static_cast<unsigned long long>(r.unsat),
        static_cast<unsigned long long>(r.unproven),
        static_cast<unsigned long long>(r.refuted),
        static_cast<unsigned long long>(r.smt_checks),
        r.proven() ? "true" : "false");
  }
  std::printf("\nShape checks: every row fully proven (unsat == oblig,\n"
              "refut == 0); validation time comparable to summarization.\n");
  if (!all_proven) {
    std::fprintf(stderr, "FAIL: a summary did not prove\n");
    return 1;
  }
  return 0;
}
