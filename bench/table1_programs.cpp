// Table 1: the data-plane program inventory. Prints each program's
// (synthetic) LOC, rule-set size, pipeline and switch counts, next to the
// scale the paper reports for its originals.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  meissa::bench::ObsSession obs_session(argc, argv);
  using namespace meissa;
  std::printf("== Table 1: data plane programs used in evaluation ==\n\n");
  std::printf("%-10s %9s %10s %6s %9s   %s\n", "name", "LOC", "rules(LOC)",
              "pipes", "switches", "paper scale");
  const char* paper[] = {
      "256 LOC, 1 pipe",    "227 LOC, 1 pipe",   "400 LOC, 1 pipe",
      "7086 LOC, 1 pipe",   ">1000 LOC, 1 pipe", ">3000 LOC, 2 pipes",
      ">10000 LOC, 4 pipes", ">20000 LOC, 8 pipes/2 switches"};
  int i = 0;
  for (const std::string& name : bench::program_names()) {
    ir::Context ctx;
    apps::AppBundle app = bench::make_program(ctx, name, /*rule_scale=*/1);
    std::printf("%-10s %9zu %10zu %6zu %9d   %s\n", app.name.c_str(),
                app.dp.program.loc(), app.rules.loc(),
                app.dp.topology.instances.size(),
                app.dp.topology.num_switches(), paper[i++]);
  }
  std::printf(
      "\nNote: this reproduction regenerates structure (features, pipes,\n"
      "switches); absolute LOC is smaller than the originals by design.\n");
  return 0;
}
