// Micro benchmarks (google-benchmark): the solver fast path vs SAT core,
// incremental vs fresh solving, early termination on/off, and the
// engine-level ablations DESIGN.md lists (predicate folding, disjoint-
// negation elision).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "apps/demos.hpp"
#include "smt/bv_solver.hpp"

namespace {

using namespace meissa;

// --- solver micro ----------------------------------------------------------

void BM_FastPathExactMatch(benchmark::State& state) {
  ir::Context ctx;
  ir::ExprRef f = ctx.field_var("f", 32);
  for (auto _ : state) {
    smt::BvSolver s(ctx);
    s.add(ctx.arena.cmp(ir::CmpOp::kEq, f, ctx.arena.constant(42, 32)));
    s.add(ctx.arena.cmp(ir::CmpOp::kNe, f, ctx.arena.constant(7, 32)));
    benchmark::DoNotOptimize(s.check());
  }
}
BENCHMARK(BM_FastPathExactMatch);

void BM_SatCoreArithmetic(benchmark::State& state) {
  ir::Context ctx;
  ir::ExprRef a = ctx.field_var("a", 16);
  ir::ExprRef b = ctx.field_var("b", 16);
  for (auto _ : state) {
    smt::BvSolver s(ctx);
    s.add(ctx.arena.cmp(ir::CmpOp::kEq,
                        ctx.arena.arith(ir::ArithOp::kAdd, a, b),
                        ctx.arena.constant(12345, 16)));
    s.add(ctx.arena.cmp(ir::CmpOp::kGt, a, ctx.arena.constant(60000, 16)));
    benchmark::DoNotOptimize(s.check());
  }
}
BENCHMARK(BM_SatCoreArithmetic);

void BM_IncrementalPushPop(benchmark::State& state) {
  ir::Context ctx;
  ir::ExprRef f = ctx.field_var("f", 32);
  smt::BvSolver s(ctx);
  s.add(ctx.arena.cmp(ir::CmpOp::kGt, f, ctx.arena.constant(100, 32)));
  uint64_t v = 101;
  for (auto _ : state) {
    s.push();
    s.add(ctx.arena.cmp(ir::CmpOp::kEq, f, ctx.arena.constant(v++, 32)));
    benchmark::DoNotOptimize(s.check());
    s.pop();
  }
}
BENCHMARK(BM_IncrementalPushPop);

// --- engine ablations -------------------------------------------------------

template <bool kEarlyTermination, bool kIncremental>
void BM_GenerateFig8(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    ir::Context ctx;
    p4::DataPlane dp = apps::demos::make_fig8_plane(ctx);
    p4::RuleSet rules = apps::demos::fig8_rules();
    cfg::Cfg g = cfg::build_cfg(dp, rules, ctx);
    state.ResumeTiming();
    sym::EngineOptions opts;
    opts.early_termination = kEarlyTermination;
    opts.incremental = kIncremental;
    sym::Engine eng(ctx, g, opts);
    size_t n = 0;
    eng.run([&](const sym::PathResult&) { ++n; });
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_GenerateFig8<true, true>)->Name("BM_Engine/early+incremental");
BENCHMARK(BM_GenerateFig8<true, false>)->Name("BM_Engine/early+fresh");
BENCHMARK(BM_GenerateFig8<false, true>)->Name("BM_Engine/leafcheck+incremental");

// Predicate folding (this implementation's optimization over Algorithm 1).
template <bool kFold>
void BM_SwitchP4Folding(benchmark::State& state) {
  for (auto _ : state) {
    ir::Context ctx;
    apps::SwitchP4Config cfg;
    cfg.routes = 6;
    apps::AppBundle app = apps::make_switchp4(ctx, cfg);
    driver::GenOptions gen;
    gen.code_summary = false;
    gen.check_every_predicate = !kFold;
    driver::Generator g(ctx, app.dp, app.rules, gen);
    benchmark::DoNotOptimize(g.generate().size());
  }
}
BENCHMARK(BM_SwitchP4Folding<true>)->Name("BM_SwitchP4/folded-predicates");
BENCHMARK(BM_SwitchP4Folding<false>)->Name("BM_SwitchP4/check-every-predicate");

// Disjoint-negation elision in the table encoding.
template <bool kElide>
void BM_RouterNegations(benchmark::State& state) {
  for (auto _ : state) {
    ir::Context ctx;
    apps::AppBundle app = apps::make_router(ctx, 24);
    driver::GenOptions gen;
    gen.code_summary = false;
    gen.check_every_predicate = true;
    gen.build.elide_disjoint_negations = kElide;
    driver::Generator g(ctx, app.dp, app.rules, gen);
    benchmark::DoNotOptimize(g.generate().size());
  }
}
BENCHMARK(BM_RouterNegations<false>)->Name("BM_Router/standard-negations");
BENCHMARK(BM_RouterNegations<true>)->Name("BM_Router/elided-negations");

}  // namespace

// Expanded BENCHMARK_MAIN with the shared observability session: --metrics
// and --trace work here like on every other bench (the benchmark library
// ignores flags it does not own, so no pre-stripping is needed).
int main(int argc, char** argv) {
  meissa::bench::ObsSession obs_session(argc, argv);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
