// Shared helpers for the evaluation benches (one binary per paper
// table/figure). Each binary prints a plain-text table mirroring the
// paper's rows/series plus the shape expectations being reproduced.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "baselines/baseline.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/toolchain.hpp"
#include "util/strings.hpp"

namespace meissa::bench {

// The eight evaluation programs (paper Table 1), sized for a single-core
// reproduction: structure (pipes/switches/features) matches the paper;
// absolute rule counts are scaled down.
inline apps::AppBundle make_program(ir::Context& ctx, const std::string& name,
                                    int rule_scale = 1) {
  if (name == "Router") return apps::make_router(ctx, 16 * rule_scale);
  if (name == "mTag") return apps::make_mtag(ctx, 12 * rule_scale);
  if (name == "ACL") return apps::make_acl(ctx, 12 * rule_scale, 10);
  if (name == "switch.p4") {
    apps::SwitchP4Config cfg;
    cfg.routes = 12 * rule_scale;
    return apps::make_switchp4(ctx, cfg);
  }
  apps::GwConfig cfg;
  if (name == "gw-1") cfg.level = 1;
  if (name == "gw-2") cfg.level = 2;
  if (name == "gw-3") cfg.level = 3;
  if (name == "gw-4") cfg.level = 4;
  // Like the paper: gw-1..gw-3 use parts of the rule sets, gw-4 the full
  // set family (base 4 keeps the single-core run bounded; rule_scale is
  // the Figure 10/12 sweep knob).
  cfg.elastic_ips = apps::elastic_ips_for_set(cfg.level, /*base=*/4) * rule_scale;
  return apps::make_gateway(ctx, cfg);
}

inline const std::vector<std::string>& program_names() {
  static const std::vector<std::string> names = {
      "Router", "mTag", "ACL", "switch.p4", "gw-1", "gw-2", "gw-3", "gw-4"};
  return names;
}

inline bool is_production(const std::string& name) {
  return name.rfind("gw-", 0) == 0;
}

// Formats a baseline outcome like the paper's Figure 9 marks:
// a time, "timeout" (◦), or "no-support" (×).
inline std::string outcome(const baselines::BaselineResult& r) {
  if (!r.supported) return "x (no-support)";
  if (r.timed_out) return "o (timeout)";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fs", r.seconds);
  return buf;
}

// Parses `--threads N` (0 = hardware concurrency) from the bench binary's
// command line; any other argument is ignored.
inline int parse_threads(int argc, char** argv, int fallback = 1) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--threads") return std::atoi(argv[i + 1]);
  }
  return fallback;
}

// Parses `<name> FILE` from the command line; empty when absent.
inline std::string parse_path_arg(int argc, char** argv,
                                  const std::string& name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == name) return argv[i + 1];
  }
  return {};
}

// Observability session for a bench binary: `--metrics FILE` turns the
// metrics registry on, `--trace FILE` starts span collection; both files
// are written when the session object leaves scope (end of main). Declare
// one of these first thing in main() — with neither flag it is inert and
// the bench's output is unchanged.
struct ObsSession {
  std::string metrics_file;
  std::string trace_file;

  ObsSession(int argc, char** argv)
      : metrics_file(parse_path_arg(argc, argv, "--metrics")),
        trace_file(parse_path_arg(argc, argv, "--trace")) {
    if (!metrics_file.empty()) obs::MetricsRegistry::set_enabled(true);
    if (!trace_file.empty()) obs::trace_start();
  }
  ~ObsSession() {
    if (!trace_file.empty()) {
      obs::trace_stop();
      if (!obs::write_trace_file(trace_file)) {
        std::fprintf(stderr, "bench: cannot write trace to '%s'\n",
                     trace_file.c_str());
      }
    }
    if (!metrics_file.empty() && !obs::write_metrics_file(metrics_file)) {
      std::fprintf(stderr, "bench: cannot write metrics to '%s'\n",
                   metrics_file.c_str());
    }
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;
};

// One machine-readable line per run: per-phase wall times and headline
// counters, for scripted scaling sweeps over --threads.
inline void print_phase_json(const std::string& program, const char* variant,
                             int threads, const driver::GenStats& s) {
  std::printf(
      "{\"program\":\"%s\",\"variant\":\"%s\",\"threads\":%d,"
      "\"build_seconds\":%.6f,\"summary_seconds\":%.6f,"
      "\"dfs_seconds\":%.6f,\"total_seconds\":%.6f,"
      "\"templates\":%llu,\"smt_checks\":%llu,\"smt_calls_skipped\":%llu,"
      "\"pc_cache_hits\":%llu,\"pc_cache_misses\":%llu,"
      "\"pc_model_reuse\":%llu,\"fast_path_skipped\":%llu,"
      "\"timed_out\":%s}\n",
      util::json_escape(program).c_str(), util::json_escape(variant).c_str(),
      threads, s.build_seconds, s.summary_seconds,
      s.dfs_seconds, s.total_seconds,
      static_cast<unsigned long long>(s.templates),
      static_cast<unsigned long long>(s.smt_checks),
      static_cast<unsigned long long>(s.smt_calls_skipped),
      static_cast<unsigned long long>(s.pc_cache_hits),
      static_cast<unsigned long long>(s.pc_cache_misses),
      static_cast<unsigned long long>(s.pc_model_reuse),
      static_cast<unsigned long long>(s.fast_path_skipped),
      s.timed_out ? "true" : "false");
}

inline double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Timer {
  double t0 = now_seconds();
  double elapsed() const { return now_seconds() - t0; }
};

}  // namespace meissa::bench
