// Figure 11: effectiveness of code summary across the production
// programs gw-1..gw-4 — (a) running time, (b) number of SMT calls,
// (c) number of possible paths in the generation CFG (log scale), each
// with code summary on vs off, plus the pre-condition-filtering ablation.
//
// Expected shape: summary reduces time (paper: 1.2-5.0x), SMT calls
// (paper: 1.8-14.9x) and paths (paper: 10^60-10^390x).
//
// `--threads N` runs the generator with N workers (0 = hardware
// concurrency); a JSON line with per-phase wall times follows each row.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  meissa::bench::ObsSession obs_session(argc, argv);
  using namespace meissa;
  const int threads = bench::parse_threads(argc, argv);
  std::printf("== Figure 11: code summary effectiveness (gw-1..gw-4, "
              "%d threads) ==\n\n", threads);
  std::printf("%-7s | %10s %10s %7s | %9s %9s %7s | %12s %12s\n", "prog",
              "time w/", "time w/o", "ratio", "SMT w/", "SMT w/o", "ratio",
              "paths w/", "paths w/o");
  std::printf("--------+-------------------------------+--------------------"
              "---------+---------------------------\n");
  for (int level = 1; level <= 4; ++level) {
    ir::Context ctx;
    apps::GwConfig cfg;
    cfg.level = level;
    cfg.elastic_ips = apps::elastic_ips_for_set(2);
    apps::AppBundle app = apps::make_gateway(ctx, cfg);

    driver::GenOptions with;
    with.check_every_predicate = true;  // the paper's Algorithm 1/2
    with.build.elide_disjoint_negations = false;
    with.threads = threads;
    driver::Generator gw(ctx, app.dp, app.rules, with);
    bench::Timer t1;
    gw.generate();
    double with_s = t1.elapsed();

    ir::Context ctx2;
    apps::AppBundle app2 = apps::make_gateway(ctx2, cfg);
    driver::GenOptions without;
    without.code_summary = false;
    without.check_every_predicate = true;
    without.build.elide_disjoint_negations = false;
    without.threads = threads;
    driver::Generator go(ctx2, app2.dp, app2.rules, without);
    bench::Timer t2;
    go.generate();
    double without_s = t2.elapsed();

    std::printf("%-7s | %9.3fs %9.3fs %6.1fx | %9llu %9llu %6.1fx | %12s %12s\n",
                app.name.c_str(), with_s, without_s, without_s / with_s,
                static_cast<unsigned long long>(gw.stats().smt_checks),
                static_cast<unsigned long long>(go.stats().smt_checks),
                static_cast<double>(go.stats().smt_checks) /
                    static_cast<double>(std::max<uint64_t>(
                        1, gw.stats().smt_checks)),
                gw.stats().paths_summarized.str().c_str(),
                go.stats().paths_original.str().c_str());
    bench::print_phase_json(app.name, "summary", threads, gw.stats());
    bench::print_phase_json(app.name, "no-summary", threads, go.stats());
  }

  // Ablation: intra-pipeline elimination only (pre-condition filtering off).
  std::printf("\n-- ablation: inter-pipeline pre-condition filtering --\n");
  std::printf("%-7s %16s %18s\n", "prog", "paths (full)", "paths (no filter)");
  for (int level = 2; level <= 4; ++level) {
    ir::Context ctx;
    apps::GwConfig cfg;
    cfg.level = level;
    cfg.elastic_ips = apps::elastic_ips_for_set(2);
    apps::AppBundle app = apps::make_gateway(ctx, cfg);
    driver::GenOptions full;
    driver::Generator g1(ctx, app.dp, app.rules, full);
    g1.generate();
    ir::Context ctx2;
    apps::AppBundle app2 = apps::make_gateway(ctx2, cfg);
    driver::GenOptions nofilter;
    nofilter.summary.precondition_filtering = false;
    driver::Generator g2(ctx2, app2.dp, app2.rules, nofilter);
    g2.generate();
    std::printf("%-7s %16s %18s\n", app.name.c_str(),
                g1.stats().paths_summarized.str().c_str(),
                g2.stats().paths_summarized.str().c_str());
  }
  std::printf("\nShape checks: time and SMT ratios > 1 and growing with the\n"
              "pipe count; the path-count gap is astronomic for gw-3/gw-4;\n"
              "filtering off leaves more summarized paths.\n");
  return 0;
}
