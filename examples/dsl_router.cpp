// The textual workflow end-to-end: a data plane written in the M4 DSL,
// intents written in textual LPI, tested against the device — no C++
// program construction at all.
//
//   $ ./dsl_router
#include <cstdio>

#include "driver/tester.hpp"
#include "p4/dsl.hpp"
#include "sim/toolchain.hpp"
#include "spec/lpi.hpp"

namespace {

constexpr const char* kProgram = R"m4(
program edge_router;

header eth  { dst:48; src:48; type:16; }
header ipv4 { ver_ihl:8; tos:8; len:16; id:16; frag:16;
              ttl:8; proto:8; csum:16; src:32; dst:32; }
metadata meta.nexthop:16;

action route(nh:16, port:9) {
  meta.nexthop = nh;
  ig.eg_spec = port;
  hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
}
action rewrite(dmac:48, smac:48) {
  hdr.eth.dst = dmac;
  hdr.eth.src = smac;
}
action discard() { ig.drop = 1; }
action pass() { }

table routes {
  key hdr.ipv4.dst : lpm;
  actions route, discard;
  default discard();
}
table adjacency {
  key meta.nexthop : exact;
  actions rewrite, pass;
  default pass();
}

pipeline ingress {
  parser {
    state start {
      extract eth;
      select hdr.eth.type { 0x0800 -> parse_ipv4; default -> reject; }
    }
    state parse_ipv4 { extract ipv4; goto accept; }
  }
  control {
    if (hdr.ipv4.ttl > 1) {
      apply routes;
      apply adjacency;
    } else {
      ig.drop = 1;
    }
  }
  deparser { emit eth, ipv4; }
}

topology {
  instance edge = ingress @ switch 0;
  entry edge;
}

rules {
  routes:    lpm 0xc0a80000/16 -> route(7, 42);
  adjacency: exact 7 -> rewrite(0x02aabbcc0001, 0x02aabbcc0002);
}
)m4";

constexpr const char* kIntents = R"lpi(
intent lan_is_routed {
  assume in.hdr.eth.type == 0x0800;
  assume (in.hdr.ipv4.dst & 0xffff0000) == 0xc0a80000;
  assume in.hdr.ipv4.ttl > 1;
  expect delivered;
  expect out.$port == 42;
  expect out.hdr.eth.dst == 0x02aabbcc0001;
  expect out.hdr.ipv4.ttl == in.hdr.ipv4.ttl - 1;
}
intent everything_else_dropped {
  assume in.hdr.eth.type == 0x0800;
  assume (in.hdr.ipv4.dst & 0xffff0000) != 0xc0a80000;
  expect dropped;
}
)lpi";

}  // namespace

int main() {
  using namespace meissa;
  ir::Context ctx;
  p4::ParsedUnit unit = p4::parse_m4(kProgram, ctx);
  std::vector<spec::Intent> intents =
      spec::parse_lpi(kIntents, ctx, unit.dp.program);
  std::printf("parsed '%s': %zu tables, %zu rules, %zu intents\n",
              unit.dp.program.name.c_str(), unit.dp.program.tables.size(),
              unit.rules.entries.size(), intents.size());

  sim::Device device(sim::compile(unit.dp, unit.rules, ctx), ctx);
  driver::Meissa meissa(ctx, unit.dp, unit.rules, {});
  driver::TestReport report = meissa.test(device, intents);
  std::printf("%s\n", report.str().c_str());
  return report.all_passed() ? 0 : 1;
}
