// Non-code bug hunting: the program is correct, the toolchain is not.
// Reproduces the paper's issue #14 (bf-p4c setValid bug, §6): the compiled
// gateway silently drops the setValid(vxlan) of the encap action. Meissa's
// tests diverge from the model, and the failure report carries both the
// symbolic trace and the device's physical trace for localization (§7).
//
//   $ ./bug_hunt
#include <cstdio>

#include "apps/apps.hpp"
#include "sim/toolchain.hpp"

int main() {
  using namespace meissa;

  ir::Context ctx;
  apps::GwConfig cfg;
  cfg.level = 1;
  cfg.elastic_ips = 4;
  apps::AppBundle app = apps::make_gateway(ctx, cfg);

  // The vendor toolchain miscompiles setValid on this program version.
  sim::FaultSpec fault;
  fault.kind = sim::FaultKind::kDropSetValid;
  fault.header = "vxlan";
  std::printf("compiling with injected toolchain fault: %s\n\n",
              sim::fault_kind_name(fault.kind));
  sim::DeviceProgram buggy = sim::compile(app.dp, app.rules, ctx, fault);
  sim::Device device(buggy, ctx);

  driver::TestRunOptions opts;
  opts.max_recorded_failures = 1;
  driver::Meissa meissa(ctx, app.dp, app.rules, opts);
  driver::TestReport report = meissa.test(device, app.intents);
  std::printf("%s\n", report.str().c_str());

  if (!report.failures.empty()) {
    const driver::CaseRecord& f = report.failures.front();
    std::printf("--- symbolic trace (model) ---\n%s\n",
                f.symbolic_trace.c_str());
    std::printf("--- physical trace (device) ---\n");
    for (const std::string& line : f.physical_trace) {
      std::printf("  %s\n", line.c_str());
    }
    std::printf("\nThe model emits vxlan; the device never does: the bug is "
                "not in the P4 code.\n");
  }
  // A bug hunt succeeds when it finds the bug.
  return report.failed > 0 ? 0 : 1;
}
