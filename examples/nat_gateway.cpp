// The paper's §6 deployment workflow: testing a NAT/elastic-IP gateway by
// sub-case. Engineers break the data-plane behaviour down (direction x
// protocol), give each sub-case base constraints plus test-case-specific
// constraints, and let Meissa generate and check packets per sub-case —
// including the layer-4 checksum expectation that caught issue #6.
//
//   $ ./nat_gateway
#include <cstdio>

#include "apps/apps.hpp"
#include "sim/toolchain.hpp"

int main() {
  using namespace meissa;

  ir::Context ctx;
  apps::GwConfig cfg;
  cfg.level = 2;  // ingress + egress pipelines, like the production gateway
  cfg.elastic_ips = 8;
  apps::AppBundle app = apps::make_gateway(ctx, cfg);

  sim::DeviceProgram compiled = sim::compile(app.dp, app.rules, ctx);
  sim::Device device(compiled, ctx);

  // Sub-case 1: outbound TCP from the first tenant VM. Base constraints
  // (valid IPv4, TCP) plus sub-case constraints (the VM's private source).
  spec::IntentBuilder out_tcp(ctx, app.dp.program, "outbound-tcp-vm0");
  out_tcp.assume(ctx.arena.cmp(ir::CmpOp::kLt, out_tcp.in_port(),
                               out_tcp.num(32, 9)));
  out_tcp.assume(ctx.arena.cmp(ir::CmpOp::kEq, out_tcp.in("hdr.eth.type"),
                               out_tcp.num(0x0800, 16)));
  out_tcp.assume(ctx.arena.cmp(ir::CmpOp::kEq, out_tcp.in("hdr.ipv4.proto"),
                               out_tcp.num(6, 8)));
  out_tcp.assume(ctx.arena.cmp(ir::CmpOp::kEq, out_tcp.in("hdr.ipv4.src"),
                               out_tcp.num(0x0a000000, 32)));
  out_tcp.expect_delivered();
  out_tcp.expect_header("vxlan", true);
  // End-to-end NAT behaviour: the inner packet carries the elastic IP and
  // preserves the TCP fields.
  out_tcp.expect(ctx.arena.cmp(ir::CmpOp::kEq,
                               out_tcp.out("hdr.inner_ipv4.src"),
                               out_tcp.num(0xcb007100, 32)));
  out_tcp.expect(ctx.arena.cmp(ir::CmpOp::kEq,
                               out_tcp.out("hdr.inner_tcp.ackno"),
                               out_tcp.in("hdr.tcp.ackno")));
  // The checksum intent from issue #6: inner TCP checksum must verify.
  out_tcp.expect_checksum("hdr.inner_tcp.csum",
                          {"hdr.inner_ipv4.src", "hdr.inner_ipv4.dst",
                           "hdr.inner_ipv4.proto", "hdr.inner_tcp.sport",
                           "hdr.inner_tcp.dport"});

  // Sub-case 2: inbound tunnel traffic for the same tenant.
  spec::IntentBuilder in_tcp(ctx, app.dp.program, "inbound-tcp-vm0");
  in_tcp.assume(ctx.arena.cmp(ir::CmpOp::kGe, in_tcp.in_port(),
                              in_tcp.num(32, 9)));
  in_tcp.assume(ctx.arena.cmp(ir::CmpOp::kEq, in_tcp.in("hdr.vxlan.vni"),
                              in_tcp.num(100000, 24)));
  in_tcp.assume(ctx.arena.cmp(ir::CmpOp::kEq,
                              in_tcp.in("hdr.inner_ipv4.proto"),
                              in_tcp.num(6, 8)));
  in_tcp.assume(ctx.arena.cmp(ir::CmpOp::kLt, in_tcp.in("hdr.ipv4.src"),
                              in_tcp.num(0xe0000000u, 32)));
  in_tcp.expect_delivered();
  in_tcp.expect_header("vxlan", false);  // decapsulated
  in_tcp.expect(ctx.arena.cmp(ir::CmpOp::kEq, in_tcp.out("hdr.ipv4.dst"),
                              in_tcp.num(0x0a000000, 32)));

  // Run each sub-case: its assumes become the generation base constraints,
  // so Meissa covers every path the sub-case's packets can take.
  int failures = 0;
  for (spec::Intent intent : {out_tcp.build(), in_tcp.build()}) {
    driver::TestRunOptions opts;
    opts.gen.assumes = intent.assumes;
    driver::Meissa meissa(ctx, app.dp, app.rules, opts);
    driver::TestReport report = meissa.test(device, {intent});
    std::printf("[%s]\n%s\n", intent.name.c_str(), report.str().c_str());
    failures += static_cast<int>(report.failed);
  }
  return failures == 0 ? 0 : 1;
}
