// Multi-switch multi-pipeline testing (the paper's Fig. 1): gw-4 spreads
// a gateway across two 4-pipe switches; flow A stays inside switch 0 and
// flow B crosses to switch 1. This example shows full-coverage generation
// over the composed topology and how code summary keeps it tractable.
//
//   $ ./multi_switch
#include <cstdio>

#include "apps/apps.hpp"
#include "sim/toolchain.hpp"

int main() {
  using namespace meissa;

  ir::Context ctx;
  apps::GwConfig cfg;
  cfg.level = 4;
  cfg.elastic_ips = 8;
  apps::AppBundle app = apps::make_gateway(ctx, cfg);
  std::printf("topology: %zu pipeline instances across %d switches\n",
              app.dp.topology.instances.size(),
              app.dp.topology.num_switches());

  driver::Meissa meissa(ctx, app.dp, app.rules, {});
  auto templates = meissa.generate();
  const driver::GenStats& st = meissa.gen_stats();
  std::printf("possible paths:   %s (original CFG)\n",
              st.paths_original.str().c_str());
  std::printf("after summary:    %s\n", st.paths_summarized.str().c_str());
  std::printf("valid templates:  %zu  (%.3fs, %llu SMT calls)\n\n",
              templates.size(), st.total_seconds,
              static_cast<unsigned long long>(st.smt_checks));

  // Where does traffic leave the data plane? Count per exit instance.
  std::printf("%-10s %8s\n", "exit", "#paths");
  for (size_t i = 0; i < meissa.graph().instances().size(); ++i) {
    size_t n = 0;
    for (const auto& t : templates) {
      n += t.exit == cfg::ExitKind::kEmit &&
           t.emit_instance == static_cast<int>(i);
    }
    if (n > 0) {
      std::printf("%-10s %8zu\n",
                  meissa.graph().instances()[i].name.c_str(), n);
    }
  }
  size_t drops = 0;
  for (const auto& t : templates) drops += t.exit == cfg::ExitKind::kDrop;
  std::printf("%-10s %8zu\n\n", "(dropped)", drops);

  // And the packets really do take those paths on the device.
  sim::DeviceProgram compiled = sim::compile(app.dp, app.rules, ctx);
  sim::Device device(compiled, ctx);
  driver::TestReport report = meissa.test(device, app.intents);
  std::printf("%s\n", report.str().c_str());
  return report.all_passed() ? 0 : 1;
}
