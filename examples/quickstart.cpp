// Quickstart: build a small data plane with the programmatic API, generate
// full-path-coverage test cases with Meissa, and run them end-to-end
// against the behavioral device.
//
//   $ ./quickstart
#include <cstdio>

#include "apps/demos.hpp"
#include "driver/tester.hpp"
#include "sim/toolchain.hpp"
#include "sym/template.hpp"

int main() {
  using namespace meissa;

  // 1. A program under test: the paper's Fig. 7 workload — an ipv4_host
  //    table chained into a mac_agent table — plus its rule set.
  ir::Context ctx;
  p4::DataPlane dp = apps::demos::make_fig7_plane(ctx);
  p4::RuleSet rules = apps::demos::fig7_rules(/*n_hosts=*/4);

  // 2. The target: compile the program for the behavioral device (this is
  //    where a real deployment would program the switch).
  sim::DeviceProgram compiled = sim::compile(dp, rules, ctx);
  sim::Device device(compiled, ctx);

  // 3. An operator intent: packets to host 0 must come back out with the
  //    MAC that the control plane installed.
  spec::IntentBuilder ib(ctx, dp.program, "host0-forwarded");
  ib.assume(ctx.arena.cmp(ir::CmpOp::kEq, ib.in("hdr.ipv4.dst"),
                          ib.num(0x0a000000, 32)));
  ib.assume(ctx.arena.cmp(ir::CmpOp::kEq, ib.in("hdr.eth.type"),
                          ib.num(0x0800, 16)));
  ib.expect_delivered();
  ib.expect(ctx.arena.cmp(ir::CmpOp::kEq, ib.out("hdr.eth.dst"),
                          ib.num(0xaa0000000000ull, 48)));

  // 4. Run Meissa: CFG construction, code summary, DFS test generation,
  //    packet injection, checking.
  driver::Meissa meissa(ctx, dp, rules, {});
  auto templates = meissa.generate();
  std::printf("generated %zu test case templates "
              "(full path coverage):\n", templates.size());
  for (const auto& t : templates) {
    std::printf("%s\n", sym::describe(t, ctx, meissa.graph()).c_str());
  }

  driver::TestReport report = meissa.test(device, {ib.build()});
  std::printf("\n%s\n", report.str().c_str());
  return report.all_passed() ? 0 : 1;
}
