# Empty compiler generated dependencies file for meissa_tests.
# This may be replaced when dependencies are built.
