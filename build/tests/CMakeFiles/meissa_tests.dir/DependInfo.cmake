
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps_test.cpp" "tests/CMakeFiles/meissa_tests.dir/apps_test.cpp.o" "gcc" "tests/CMakeFiles/meissa_tests.dir/apps_test.cpp.o.d"
  "/root/repo/tests/baseline_test.cpp" "tests/CMakeFiles/meissa_tests.dir/baseline_test.cpp.o" "gcc" "tests/CMakeFiles/meissa_tests.dir/baseline_test.cpp.o.d"
  "/root/repo/tests/cfg_test.cpp" "tests/CMakeFiles/meissa_tests.dir/cfg_test.cpp.o" "gcc" "tests/CMakeFiles/meissa_tests.dir/cfg_test.cpp.o.d"
  "/root/repo/tests/device_test.cpp" "tests/CMakeFiles/meissa_tests.dir/device_test.cpp.o" "gcc" "tests/CMakeFiles/meissa_tests.dir/device_test.cpp.o.d"
  "/root/repo/tests/driver_test.cpp" "tests/CMakeFiles/meissa_tests.dir/driver_test.cpp.o" "gcc" "tests/CMakeFiles/meissa_tests.dir/driver_test.cpp.o.d"
  "/root/repo/tests/dsl_test.cpp" "tests/CMakeFiles/meissa_tests.dir/dsl_test.cpp.o" "gcc" "tests/CMakeFiles/meissa_tests.dir/dsl_test.cpp.o.d"
  "/root/repo/tests/e2e_test.cpp" "tests/CMakeFiles/meissa_tests.dir/e2e_test.cpp.o" "gcc" "tests/CMakeFiles/meissa_tests.dir/e2e_test.cpp.o.d"
  "/root/repo/tests/engine_extra_test.cpp" "tests/CMakeFiles/meissa_tests.dir/engine_extra_test.cpp.o" "gcc" "tests/CMakeFiles/meissa_tests.dir/engine_extra_test.cpp.o.d"
  "/root/repo/tests/engine_test.cpp" "tests/CMakeFiles/meissa_tests.dir/engine_test.cpp.o" "gcc" "tests/CMakeFiles/meissa_tests.dir/engine_test.cpp.o.d"
  "/root/repo/tests/ir_expr_test.cpp" "tests/CMakeFiles/meissa_tests.dir/ir_expr_test.cpp.o" "gcc" "tests/CMakeFiles/meissa_tests.dir/ir_expr_test.cpp.o.d"
  "/root/repo/tests/packet_test.cpp" "tests/CMakeFiles/meissa_tests.dir/packet_test.cpp.o" "gcc" "tests/CMakeFiles/meissa_tests.dir/packet_test.cpp.o.d"
  "/root/repo/tests/smt_solver_test.cpp" "tests/CMakeFiles/meissa_tests.dir/smt_solver_test.cpp.o" "gcc" "tests/CMakeFiles/meissa_tests.dir/smt_solver_test.cpp.o.d"
  "/root/repo/tests/spec_test.cpp" "tests/CMakeFiles/meissa_tests.dir/spec_test.cpp.o" "gcc" "tests/CMakeFiles/meissa_tests.dir/spec_test.cpp.o.d"
  "/root/repo/tests/summary_test.cpp" "tests/CMakeFiles/meissa_tests.dir/summary_test.cpp.o" "gcc" "tests/CMakeFiles/meissa_tests.dir/summary_test.cpp.o.d"
  "/root/repo/tests/table2_test.cpp" "tests/CMakeFiles/meissa_tests.dir/table2_test.cpp.o" "gcc" "tests/CMakeFiles/meissa_tests.dir/table2_test.cpp.o.d"
  "/root/repo/tests/testlib.cpp" "tests/CMakeFiles/meissa_tests.dir/testlib.cpp.o" "gcc" "tests/CMakeFiles/meissa_tests.dir/testlib.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/meissa_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/meissa_tests.dir/util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/meissa_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_summary.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_sym.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_p4.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
