file(REMOVE_RECURSE
  "CMakeFiles/multi_switch.dir/multi_switch.cpp.o"
  "CMakeFiles/multi_switch.dir/multi_switch.cpp.o.d"
  "multi_switch"
  "multi_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
