# Empty compiler generated dependencies file for multi_switch.
# This may be replaced when dependencies are built.
