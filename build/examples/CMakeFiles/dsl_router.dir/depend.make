# Empty dependencies file for dsl_router.
# This may be replaced when dependencies are built.
