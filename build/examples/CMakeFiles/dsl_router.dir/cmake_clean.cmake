file(REMOVE_RECURSE
  "CMakeFiles/dsl_router.dir/dsl_router.cpp.o"
  "CMakeFiles/dsl_router.dir/dsl_router.cpp.o.d"
  "dsl_router"
  "dsl_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsl_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
