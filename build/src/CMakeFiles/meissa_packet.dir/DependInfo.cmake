
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/packet/checksum.cpp" "src/CMakeFiles/meissa_packet.dir/packet/checksum.cpp.o" "gcc" "src/CMakeFiles/meissa_packet.dir/packet/checksum.cpp.o.d"
  "/root/repo/src/packet/packet.cpp" "src/CMakeFiles/meissa_packet.dir/packet/packet.cpp.o" "gcc" "src/CMakeFiles/meissa_packet.dir/packet/packet.cpp.o.d"
  "/root/repo/src/packet/wire.cpp" "src/CMakeFiles/meissa_packet.dir/packet/wire.cpp.o" "gcc" "src/CMakeFiles/meissa_packet.dir/packet/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/meissa_p4.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
