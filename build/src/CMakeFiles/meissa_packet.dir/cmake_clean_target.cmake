file(REMOVE_RECURSE
  "libmeissa_packet.a"
)
