# Empty compiler generated dependencies file for meissa_packet.
# This may be replaced when dependencies are built.
