file(REMOVE_RECURSE
  "CMakeFiles/meissa_packet.dir/packet/checksum.cpp.o"
  "CMakeFiles/meissa_packet.dir/packet/checksum.cpp.o.d"
  "CMakeFiles/meissa_packet.dir/packet/packet.cpp.o"
  "CMakeFiles/meissa_packet.dir/packet/packet.cpp.o.d"
  "CMakeFiles/meissa_packet.dir/packet/wire.cpp.o"
  "CMakeFiles/meissa_packet.dir/packet/wire.cpp.o.d"
  "libmeissa_packet.a"
  "libmeissa_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meissa_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
