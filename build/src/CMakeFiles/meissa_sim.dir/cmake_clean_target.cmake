file(REMOVE_RECURSE
  "libmeissa_sim.a"
)
