# Empty dependencies file for meissa_sim.
# This may be replaced when dependencies are built.
