
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/device.cpp" "src/CMakeFiles/meissa_sim.dir/sim/device.cpp.o" "gcc" "src/CMakeFiles/meissa_sim.dir/sim/device.cpp.o.d"
  "/root/repo/src/sim/fault.cpp" "src/CMakeFiles/meissa_sim.dir/sim/fault.cpp.o" "gcc" "src/CMakeFiles/meissa_sim.dir/sim/fault.cpp.o.d"
  "/root/repo/src/sim/toolchain.cpp" "src/CMakeFiles/meissa_sim.dir/sim/toolchain.cpp.o" "gcc" "src/CMakeFiles/meissa_sim.dir/sim/toolchain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/meissa_p4.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
