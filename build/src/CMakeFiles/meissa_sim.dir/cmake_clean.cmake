file(REMOVE_RECURSE
  "CMakeFiles/meissa_sim.dir/sim/device.cpp.o"
  "CMakeFiles/meissa_sim.dir/sim/device.cpp.o.d"
  "CMakeFiles/meissa_sim.dir/sim/fault.cpp.o"
  "CMakeFiles/meissa_sim.dir/sim/fault.cpp.o.d"
  "CMakeFiles/meissa_sim.dir/sim/toolchain.cpp.o"
  "CMakeFiles/meissa_sim.dir/sim/toolchain.cpp.o.d"
  "libmeissa_sim.a"
  "libmeissa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meissa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
