file(REMOVE_RECURSE
  "CMakeFiles/meissa_driver.dir/driver/checker.cpp.o"
  "CMakeFiles/meissa_driver.dir/driver/checker.cpp.o.d"
  "CMakeFiles/meissa_driver.dir/driver/generator.cpp.o"
  "CMakeFiles/meissa_driver.dir/driver/generator.cpp.o.d"
  "CMakeFiles/meissa_driver.dir/driver/report.cpp.o"
  "CMakeFiles/meissa_driver.dir/driver/report.cpp.o.d"
  "CMakeFiles/meissa_driver.dir/driver/sender.cpp.o"
  "CMakeFiles/meissa_driver.dir/driver/sender.cpp.o.d"
  "CMakeFiles/meissa_driver.dir/driver/tester.cpp.o"
  "CMakeFiles/meissa_driver.dir/driver/tester.cpp.o.d"
  "libmeissa_driver.a"
  "libmeissa_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meissa_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
