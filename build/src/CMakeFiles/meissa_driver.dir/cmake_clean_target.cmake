file(REMOVE_RECURSE
  "libmeissa_driver.a"
)
