# Empty dependencies file for meissa_driver.
# This may be replaced when dependencies are built.
