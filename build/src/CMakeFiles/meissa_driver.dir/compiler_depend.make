# Empty compiler generated dependencies file for meissa_driver.
# This may be replaced when dependencies are built.
