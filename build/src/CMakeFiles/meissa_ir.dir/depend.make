# Empty dependencies file for meissa_ir.
# This may be replaced when dependencies are built.
