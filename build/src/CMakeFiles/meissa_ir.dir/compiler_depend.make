# Empty compiler generated dependencies file for meissa_ir.
# This may be replaced when dependencies are built.
