file(REMOVE_RECURSE
  "CMakeFiles/meissa_ir.dir/ir/expr.cpp.o"
  "CMakeFiles/meissa_ir.dir/ir/expr.cpp.o.d"
  "CMakeFiles/meissa_ir.dir/ir/field.cpp.o"
  "CMakeFiles/meissa_ir.dir/ir/field.cpp.o.d"
  "libmeissa_ir.a"
  "libmeissa_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meissa_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
