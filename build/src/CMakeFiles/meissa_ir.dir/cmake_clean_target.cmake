file(REMOVE_RECURSE
  "libmeissa_ir.a"
)
