file(REMOVE_RECURSE
  "CMakeFiles/meissa_smt.dir/smt/bitblast.cpp.o"
  "CMakeFiles/meissa_smt.dir/smt/bitblast.cpp.o.d"
  "CMakeFiles/meissa_smt.dir/smt/bv_solver.cpp.o"
  "CMakeFiles/meissa_smt.dir/smt/bv_solver.cpp.o.d"
  "CMakeFiles/meissa_smt.dir/smt/domain.cpp.o"
  "CMakeFiles/meissa_smt.dir/smt/domain.cpp.o.d"
  "CMakeFiles/meissa_smt.dir/smt/sat.cpp.o"
  "CMakeFiles/meissa_smt.dir/smt/sat.cpp.o.d"
  "CMakeFiles/meissa_smt.dir/smt/z3_solver.cpp.o"
  "CMakeFiles/meissa_smt.dir/smt/z3_solver.cpp.o.d"
  "libmeissa_smt.a"
  "libmeissa_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meissa_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
