file(REMOVE_RECURSE
  "libmeissa_smt.a"
)
