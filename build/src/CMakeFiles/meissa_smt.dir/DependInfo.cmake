
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smt/bitblast.cpp" "src/CMakeFiles/meissa_smt.dir/smt/bitblast.cpp.o" "gcc" "src/CMakeFiles/meissa_smt.dir/smt/bitblast.cpp.o.d"
  "/root/repo/src/smt/bv_solver.cpp" "src/CMakeFiles/meissa_smt.dir/smt/bv_solver.cpp.o" "gcc" "src/CMakeFiles/meissa_smt.dir/smt/bv_solver.cpp.o.d"
  "/root/repo/src/smt/domain.cpp" "src/CMakeFiles/meissa_smt.dir/smt/domain.cpp.o" "gcc" "src/CMakeFiles/meissa_smt.dir/smt/domain.cpp.o.d"
  "/root/repo/src/smt/sat.cpp" "src/CMakeFiles/meissa_smt.dir/smt/sat.cpp.o" "gcc" "src/CMakeFiles/meissa_smt.dir/smt/sat.cpp.o.d"
  "/root/repo/src/smt/z3_solver.cpp" "src/CMakeFiles/meissa_smt.dir/smt/z3_solver.cpp.o" "gcc" "src/CMakeFiles/meissa_smt.dir/smt/z3_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/meissa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
