# Empty compiler generated dependencies file for meissa_smt.
# This may be replaced when dependencies are built.
