# Empty dependencies file for meissa_baselines.
# This may be replaced when dependencies are built.
