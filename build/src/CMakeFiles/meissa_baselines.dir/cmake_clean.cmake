file(REMOVE_RECURSE
  "CMakeFiles/meissa_baselines.dir/baselines/aquila.cpp.o"
  "CMakeFiles/meissa_baselines.dir/baselines/aquila.cpp.o.d"
  "CMakeFiles/meissa_baselines.dir/baselines/gauntlet.cpp.o"
  "CMakeFiles/meissa_baselines.dir/baselines/gauntlet.cpp.o.d"
  "CMakeFiles/meissa_baselines.dir/baselines/p4pktgen.cpp.o"
  "CMakeFiles/meissa_baselines.dir/baselines/p4pktgen.cpp.o.d"
  "CMakeFiles/meissa_baselines.dir/baselines/pta.cpp.o"
  "CMakeFiles/meissa_baselines.dir/baselines/pta.cpp.o.d"
  "libmeissa_baselines.a"
  "libmeissa_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meissa_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
