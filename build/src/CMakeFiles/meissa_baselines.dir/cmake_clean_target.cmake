file(REMOVE_RECURSE
  "libmeissa_baselines.a"
)
