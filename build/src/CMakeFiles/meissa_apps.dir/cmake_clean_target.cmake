file(REMOVE_RECURSE
  "libmeissa_apps.a"
)
