# Empty compiler generated dependencies file for meissa_apps.
# This may be replaced when dependencies are built.
