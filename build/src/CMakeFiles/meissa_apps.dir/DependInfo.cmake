
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/acl.cpp" "src/CMakeFiles/meissa_apps.dir/apps/acl.cpp.o" "gcc" "src/CMakeFiles/meissa_apps.dir/apps/acl.cpp.o.d"
  "/root/repo/src/apps/bugs.cpp" "src/CMakeFiles/meissa_apps.dir/apps/bugs.cpp.o" "gcc" "src/CMakeFiles/meissa_apps.dir/apps/bugs.cpp.o.d"
  "/root/repo/src/apps/demos.cpp" "src/CMakeFiles/meissa_apps.dir/apps/demos.cpp.o" "gcc" "src/CMakeFiles/meissa_apps.dir/apps/demos.cpp.o.d"
  "/root/repo/src/apps/gateways.cpp" "src/CMakeFiles/meissa_apps.dir/apps/gateways.cpp.o" "gcc" "src/CMakeFiles/meissa_apps.dir/apps/gateways.cpp.o.d"
  "/root/repo/src/apps/mtag.cpp" "src/CMakeFiles/meissa_apps.dir/apps/mtag.cpp.o" "gcc" "src/CMakeFiles/meissa_apps.dir/apps/mtag.cpp.o.d"
  "/root/repo/src/apps/protocols.cpp" "src/CMakeFiles/meissa_apps.dir/apps/protocols.cpp.o" "gcc" "src/CMakeFiles/meissa_apps.dir/apps/protocols.cpp.o.d"
  "/root/repo/src/apps/router.cpp" "src/CMakeFiles/meissa_apps.dir/apps/router.cpp.o" "gcc" "src/CMakeFiles/meissa_apps.dir/apps/router.cpp.o.d"
  "/root/repo/src/apps/rulegen.cpp" "src/CMakeFiles/meissa_apps.dir/apps/rulegen.cpp.o" "gcc" "src/CMakeFiles/meissa_apps.dir/apps/rulegen.cpp.o.d"
  "/root/repo/src/apps/switchp4.cpp" "src/CMakeFiles/meissa_apps.dir/apps/switchp4.cpp.o" "gcc" "src/CMakeFiles/meissa_apps.dir/apps/switchp4.cpp.o.d"
  "/root/repo/src/apps/table2.cpp" "src/CMakeFiles/meissa_apps.dir/apps/table2.cpp.o" "gcc" "src/CMakeFiles/meissa_apps.dir/apps/table2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/meissa_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_summary.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_sym.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_p4.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
