file(REMOVE_RECURSE
  "CMakeFiles/meissa_apps.dir/apps/acl.cpp.o"
  "CMakeFiles/meissa_apps.dir/apps/acl.cpp.o.d"
  "CMakeFiles/meissa_apps.dir/apps/bugs.cpp.o"
  "CMakeFiles/meissa_apps.dir/apps/bugs.cpp.o.d"
  "CMakeFiles/meissa_apps.dir/apps/demos.cpp.o"
  "CMakeFiles/meissa_apps.dir/apps/demos.cpp.o.d"
  "CMakeFiles/meissa_apps.dir/apps/gateways.cpp.o"
  "CMakeFiles/meissa_apps.dir/apps/gateways.cpp.o.d"
  "CMakeFiles/meissa_apps.dir/apps/mtag.cpp.o"
  "CMakeFiles/meissa_apps.dir/apps/mtag.cpp.o.d"
  "CMakeFiles/meissa_apps.dir/apps/protocols.cpp.o"
  "CMakeFiles/meissa_apps.dir/apps/protocols.cpp.o.d"
  "CMakeFiles/meissa_apps.dir/apps/router.cpp.o"
  "CMakeFiles/meissa_apps.dir/apps/router.cpp.o.d"
  "CMakeFiles/meissa_apps.dir/apps/rulegen.cpp.o"
  "CMakeFiles/meissa_apps.dir/apps/rulegen.cpp.o.d"
  "CMakeFiles/meissa_apps.dir/apps/switchp4.cpp.o"
  "CMakeFiles/meissa_apps.dir/apps/switchp4.cpp.o.d"
  "CMakeFiles/meissa_apps.dir/apps/table2.cpp.o"
  "CMakeFiles/meissa_apps.dir/apps/table2.cpp.o.d"
  "libmeissa_apps.a"
  "libmeissa_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meissa_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
