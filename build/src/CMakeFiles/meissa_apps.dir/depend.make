# Empty dependencies file for meissa_apps.
# This may be replaced when dependencies are built.
