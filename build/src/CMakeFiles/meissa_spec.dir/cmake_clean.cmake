file(REMOVE_RECURSE
  "CMakeFiles/meissa_spec.dir/spec/intent.cpp.o"
  "CMakeFiles/meissa_spec.dir/spec/intent.cpp.o.d"
  "CMakeFiles/meissa_spec.dir/spec/lpi.cpp.o"
  "CMakeFiles/meissa_spec.dir/spec/lpi.cpp.o.d"
  "libmeissa_spec.a"
  "libmeissa_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meissa_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
