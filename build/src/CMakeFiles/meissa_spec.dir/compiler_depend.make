# Empty compiler generated dependencies file for meissa_spec.
# This may be replaced when dependencies are built.
