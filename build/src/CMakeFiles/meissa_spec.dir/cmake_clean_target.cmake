file(REMOVE_RECURSE
  "libmeissa_spec.a"
)
