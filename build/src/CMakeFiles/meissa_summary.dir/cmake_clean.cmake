file(REMOVE_RECURSE
  "CMakeFiles/meissa_summary.dir/summary/summary.cpp.o"
  "CMakeFiles/meissa_summary.dir/summary/summary.cpp.o.d"
  "libmeissa_summary.a"
  "libmeissa_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meissa_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
