# Empty dependencies file for meissa_summary.
# This may be replaced when dependencies are built.
