file(REMOVE_RECURSE
  "libmeissa_summary.a"
)
