# Empty compiler generated dependencies file for meissa_util.
# This may be replaced when dependencies are built.
