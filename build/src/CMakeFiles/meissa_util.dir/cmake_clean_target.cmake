file(REMOVE_RECURSE
  "libmeissa_util.a"
)
