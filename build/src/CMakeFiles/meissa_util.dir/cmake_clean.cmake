file(REMOVE_RECURSE
  "CMakeFiles/meissa_util.dir/util/big_count.cpp.o"
  "CMakeFiles/meissa_util.dir/util/big_count.cpp.o.d"
  "CMakeFiles/meissa_util.dir/util/strings.cpp.o"
  "CMakeFiles/meissa_util.dir/util/strings.cpp.o.d"
  "libmeissa_util.a"
  "libmeissa_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meissa_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
