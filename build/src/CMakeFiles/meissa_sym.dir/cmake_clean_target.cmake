file(REMOVE_RECURSE
  "libmeissa_sym.a"
)
