
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sym/engine.cpp" "src/CMakeFiles/meissa_sym.dir/sym/engine.cpp.o" "gcc" "src/CMakeFiles/meissa_sym.dir/sym/engine.cpp.o.d"
  "/root/repo/src/sym/template.cpp" "src/CMakeFiles/meissa_sym.dir/sym/template.cpp.o" "gcc" "src/CMakeFiles/meissa_sym.dir/sym/template.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/meissa_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_p4.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
