file(REMOVE_RECURSE
  "CMakeFiles/meissa_sym.dir/sym/engine.cpp.o"
  "CMakeFiles/meissa_sym.dir/sym/engine.cpp.o.d"
  "CMakeFiles/meissa_sym.dir/sym/template.cpp.o"
  "CMakeFiles/meissa_sym.dir/sym/template.cpp.o.d"
  "libmeissa_sym.a"
  "libmeissa_sym.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meissa_sym.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
