# Empty dependencies file for meissa_sym.
# This may be replaced when dependencies are built.
