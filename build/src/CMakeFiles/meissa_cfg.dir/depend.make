# Empty dependencies file for meissa_cfg.
# This may be replaced when dependencies are built.
