file(REMOVE_RECURSE
  "CMakeFiles/meissa_cfg.dir/cfg/build.cpp.o"
  "CMakeFiles/meissa_cfg.dir/cfg/build.cpp.o.d"
  "CMakeFiles/meissa_cfg.dir/cfg/cfg.cpp.o"
  "CMakeFiles/meissa_cfg.dir/cfg/cfg.cpp.o.d"
  "CMakeFiles/meissa_cfg.dir/cfg/eval.cpp.o"
  "CMakeFiles/meissa_cfg.dir/cfg/eval.cpp.o.d"
  "libmeissa_cfg.a"
  "libmeissa_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meissa_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
