file(REMOVE_RECURSE
  "libmeissa_cfg.a"
)
