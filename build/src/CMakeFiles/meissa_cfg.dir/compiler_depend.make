# Empty compiler generated dependencies file for meissa_cfg.
# This may be replaced when dependencies are built.
