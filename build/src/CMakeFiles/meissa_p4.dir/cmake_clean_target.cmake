file(REMOVE_RECURSE
  "libmeissa_p4.a"
)
