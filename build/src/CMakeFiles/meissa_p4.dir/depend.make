# Empty dependencies file for meissa_p4.
# This may be replaced when dependencies are built.
