
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/p4/dsl.cpp" "src/CMakeFiles/meissa_p4.dir/p4/dsl.cpp.o" "gcc" "src/CMakeFiles/meissa_p4.dir/p4/dsl.cpp.o.d"
  "/root/repo/src/p4/program.cpp" "src/CMakeFiles/meissa_p4.dir/p4/program.cpp.o" "gcc" "src/CMakeFiles/meissa_p4.dir/p4/program.cpp.o.d"
  "/root/repo/src/p4/rules.cpp" "src/CMakeFiles/meissa_p4.dir/p4/rules.cpp.o" "gcc" "src/CMakeFiles/meissa_p4.dir/p4/rules.cpp.o.d"
  "/root/repo/src/p4/validate.cpp" "src/CMakeFiles/meissa_p4.dir/p4/validate.cpp.o" "gcc" "src/CMakeFiles/meissa_p4.dir/p4/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/meissa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/meissa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
