file(REMOVE_RECURSE
  "CMakeFiles/meissa_p4.dir/p4/dsl.cpp.o"
  "CMakeFiles/meissa_p4.dir/p4/dsl.cpp.o.d"
  "CMakeFiles/meissa_p4.dir/p4/program.cpp.o"
  "CMakeFiles/meissa_p4.dir/p4/program.cpp.o.d"
  "CMakeFiles/meissa_p4.dir/p4/rules.cpp.o"
  "CMakeFiles/meissa_p4.dir/p4/rules.cpp.o.d"
  "CMakeFiles/meissa_p4.dir/p4/validate.cpp.o"
  "CMakeFiles/meissa_p4.dir/p4/validate.cpp.o.d"
  "libmeissa_p4.a"
  "libmeissa_p4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meissa_p4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
