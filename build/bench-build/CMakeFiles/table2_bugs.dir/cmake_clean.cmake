file(REMOVE_RECURSE
  "../bench/table2_bugs"
  "../bench/table2_bugs.pdb"
  "CMakeFiles/table2_bugs.dir/table2_bugs.cpp.o"
  "CMakeFiles/table2_bugs.dir/table2_bugs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_bugs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
