# Empty compiler generated dependencies file for fig11_summary_programs.
# This may be replaced when dependencies are built.
