file(REMOVE_RECURSE
  "../bench/fig11_summary_programs"
  "../bench/fig11_summary_programs.pdb"
  "CMakeFiles/fig11_summary_programs.dir/fig11_summary_programs.cpp.o"
  "CMakeFiles/fig11_summary_programs.dir/fig11_summary_programs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_summary_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
