# Empty dependencies file for fig10_rulesets.
# This may be replaced when dependencies are built.
