file(REMOVE_RECURSE
  "../bench/fig10_rulesets"
  "../bench/fig10_rulesets.pdb"
  "CMakeFiles/fig10_rulesets.dir/fig10_rulesets.cpp.o"
  "CMakeFiles/fig10_rulesets.dir/fig10_rulesets.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_rulesets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
