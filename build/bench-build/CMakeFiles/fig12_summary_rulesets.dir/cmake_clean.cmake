file(REMOVE_RECURSE
  "../bench/fig12_summary_rulesets"
  "../bench/fig12_summary_rulesets.pdb"
  "CMakeFiles/fig12_summary_rulesets.dir/fig12_summary_rulesets.cpp.o"
  "CMakeFiles/fig12_summary_rulesets.dir/fig12_summary_rulesets.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_summary_rulesets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
