# Empty compiler generated dependencies file for fig12_summary_rulesets.
# This may be replaced when dependencies are built.
