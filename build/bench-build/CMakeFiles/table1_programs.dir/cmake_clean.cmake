file(REMOVE_RECURSE
  "../bench/table1_programs"
  "../bench/table1_programs.pdb"
  "CMakeFiles/table1_programs.dir/table1_programs.cpp.o"
  "CMakeFiles/table1_programs.dir/table1_programs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
