file(REMOVE_RECURSE
  "../bench/appa_complexity"
  "../bench/appa_complexity.pdb"
  "CMakeFiles/appa_complexity.dir/appa_complexity.cpp.o"
  "CMakeFiles/appa_complexity.dir/appa_complexity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appa_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
