# Empty dependencies file for appa_complexity.
# This may be replaced when dependencies are built.
