file(REMOVE_RECURSE
  "../bench/micro_smt"
  "../bench/micro_smt.pdb"
  "CMakeFiles/micro_smt.dir/micro_smt.cpp.o"
  "CMakeFiles/micro_smt.dir/micro_smt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
