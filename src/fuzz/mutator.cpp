#include "fuzz/mutator.hpp"

#include <unordered_map>

#include "packet/wire.hpp"
#include "util/bits.hpp"

namespace meissa::fuzz {

namespace {
constexpr int kMaxWalkDepth = 32;   // parser FSM walk bound (loops guard)
constexpr size_t kMaxLayouts = 64;  // enumerated wire layouts bound
constexpr uint8_t kInteresting[] = {0x00, 0x01, 0x7f, 0x80, 0xff};
}  // namespace

Mutator::Mutator(const p4::DataPlane& dp, const p4::RuleSet& rules)
    : prog_(dp.program) {
  if (!dp.topology.entries.empty()) {
    const p4::PipeInstance* pi =
        dp.topology.find_instance(dp.topology.entries[0].instance);
    if (pi != nullptr) {
      const p4::PipelineDef* pl = prog_.find_pipeline(pi->pipeline);
      if (pl != nullptr) parser_ = &pl->parser;
    }
  }

  // Dictionary: parser select constants (every pipeline — inner pipes gate
  // on tunnel types the entry parser never sees) and installed-rule match
  // values, each tagged with its field width so splices stay in range.
  for (const p4::PipelineDef& pl : prog_.pipelines) {
    for (const p4::ParserState& s : pl.parser.states) {
      if (s.select_field.empty()) continue;
      int w = prog_.field_width(s.select_field).value_or(16);
      for (const p4::ParserTransition& t : s.cases) {
        dict_.push_back({t.value, w});
      }
    }
  }
  for (const p4::TableEntry& e : rules.entries) {
    const p4::TableDef* t = prog_.find_table(e.table);
    if (t == nullptr) continue;
    for (size_t i = 0; i < e.matches.size() && i < t->keys.size(); ++i) {
      int w = prog_.field_width(t->keys[i].field).value_or(32);
      const p4::KeyMatch& m = e.matches[i];
      switch (t->keys[i].kind) {
        case p4::MatchKind::kRange:
          dict_.push_back({m.lo, w});
          dict_.push_back({m.hi, w});
          break;
        default:
          dict_.push_back({m.value, w});
          break;
      }
    }
  }

  if (parser_ != nullptr) {
    const p4::ParserState* start = parser_->find_state(parser_->start);
    if (start != nullptr) enumerate_layouts(*parser_, start, {}, 0);
  }
}

void Mutator::enumerate_layouts(const p4::Parser& parser,
                                const p4::ParserState* s, PathLayout cur,
                                int depth) {
  if (s == nullptr || depth >= kMaxWalkDepth || layouts_.size() >= kMaxLayouts)
    return;
  for (const std::string& h : s->extracts) {
    const p4::HeaderDef* def = prog_.find_header(h);
    if (def == nullptr) continue;
    for (const p4::FieldDef& f : def->fields) {
      cur.slots.push_back({cur.total_bits, f.width});
      cur.total_bits += static_cast<size_t>(f.width);
    }
  }
  // Every walk prefix is a usable layout: a mutated frame need not reach
  // the deepest accept to sit on these field boundaries.
  if (cur.total_bits > 0) layouts_.push_back(cur);
  for (const p4::ParserTransition& t : s->cases) {
    if (layouts_.size() >= kMaxLayouts) return;
    if (t.next == "accept" || t.next == "reject") continue;
    enumerate_layouts(parser, parser.find_state(t.next), cur, depth + 1);
  }
  if (s->default_next != "accept" && s->default_next != "reject") {
    enumerate_layouts(parser, parser.find_state(s->default_next), cur,
                      depth + 1);
  }
}

sim::DeviceInput Mutator::random_packet(util::Rng& rng) const {
  sim::DeviceInput in;
  in.port = rng.chance(3, 4) ? rng.below(8) : rng.bits(p4::kPortWidth);
  if (parser_ == nullptr) {
    size_t n = 16 + rng.below(48);
    for (size_t i = 0; i < n; ++i) {
      in.bytes.push_back(static_cast<uint8_t>(rng.bits(8)));
    }
    return in;
  }

  // Walk the FSM; pin each visited select to a random case's value 3/4 of
  // the time (the remainder exercises default/reject arms). Pinned fields
  // may live in headers extracted earlier, so serialization happens after
  // the walk completes.
  std::unordered_map<std::string, uint64_t> pinned;
  std::vector<const p4::HeaderDef*> seq;
  const p4::ParserState* s = parser_->find_state(parser_->start);
  int depth = 0;
  while (s != nullptr && depth++ < kMaxWalkDepth) {
    for (const std::string& h : s->extracts) {
      const p4::HeaderDef* def = prog_.find_header(h);
      if (def != nullptr) seq.push_back(def);
    }
    std::string next = s->default_next;
    if (!s->select_field.empty() && !s->cases.empty() && rng.chance(3, 4)) {
      const p4::ParserTransition& t = s->cases[rng.below(s->cases.size())];
      int w = prog_.field_width(s->select_field).value_or(16);
      pinned[s->select_field] =
          (t.value & t.mask) | (rng.bits(w) & ~t.mask);
      next = t.next;
    }
    if (next == "accept" || next == "reject") break;
    s = parser_->find_state(next);
  }

  packet::BitWriter w;
  for (const p4::HeaderDef* def : seq) {
    for (const p4::FieldDef& f : def->fields) {
      auto it = pinned.find(p4::content_field(def->name, f.name));
      uint64_t v = it != pinned.end() ? util::truncate(it->second, f.width)
                                      : rng.bits(f.width);
      w.put(v, f.width);
    }
  }
  if (w.byte_aligned()) {
    size_t n = rng.below(17);
    std::vector<uint8_t> payload;
    payload.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      payload.push_back(static_cast<uint8_t>(rng.bits(8)));
    }
    w.put_bytes(payload);
  }
  in.bytes = std::move(w).take();
  return in;
}

void Mutator::overwrite_slot(std::vector<uint8_t>& bytes, const Slot& slot,
                             uint64_t value) const {
  for (int i = 0; i < slot.width; ++i) {
    size_t bit = slot.bit_off + static_cast<size_t>(i);
    size_t byte = bit / 8;
    int sh = 7 - static_cast<int>(bit % 8);
    uint8_t b = static_cast<uint8_t>((value >> (slot.width - 1 - i)) & 1);
    bytes[byte] = static_cast<uint8_t>(
        (bytes[byte] & ~(1u << sh)) | (static_cast<unsigned>(b) << sh));
  }
}

void Mutator::mutate(sim::DeviceInput& in, util::Rng& rng) const {
  uint64_t reps = 1 + rng.below(6);
  for (uint64_t r = 0; r < reps; ++r) {
    switch (rng.below(8)) {
      case 0: {  // flip one bit
        if (in.bytes.empty()) break;
        size_t i = rng.below(in.bytes.size());
        in.bytes[i] ^= static_cast<uint8_t>(1u << rng.below(8));
        break;
      }
      case 1: {  // random byte
        if (in.bytes.empty()) break;
        in.bytes[rng.below(in.bytes.size())] =
            static_cast<uint8_t>(rng.bits(8));
        break;
      }
      case 2: {  // small +/- delta
        if (in.bytes.empty()) break;
        size_t i = rng.below(in.bytes.size());
        uint8_t d = static_cast<uint8_t>(1 + rng.below(16));
        in.bytes[i] =
            static_cast<uint8_t>(rng.chance(1, 2) ? in.bytes[i] + d
                                                  : in.bytes[i] - d);
        break;
      }
      case 3: {  // interesting byte
        if (in.bytes.empty()) break;
        in.bytes[rng.below(in.bytes.size())] =
            kInteresting[rng.below(std::size(kInteresting))];
        break;
      }
      case 4: {  // dictionary splice (big-endian at a random offset)
        if (dict_.empty() || in.bytes.empty()) break;
        const DictEntry& d = dict_[rng.below(dict_.size())];
        size_t n = static_cast<size_t>((d.width + 7) / 8);
        if (n == 0 || n > in.bytes.size()) break;
        size_t off = rng.below(in.bytes.size() - n + 1);
        for (size_t i = 0; i < n; ++i) {
          in.bytes[off + i] =
              static_cast<uint8_t>(d.value >> (8 * (n - 1 - i)));
        }
        break;
      }
      case 5: {  // tail grow / trim
        if (!in.bytes.empty() && rng.chance(1, 2)) {
          in.bytes.pop_back();
        } else {
          in.bytes.push_back(static_cast<uint8_t>(rng.bits(8)));
        }
        break;
      }
      case 6:  // ingress port
        in.port = rng.chance(3, 4) ? rng.below(8) : rng.bits(p4::kPortWidth);
        break;
      case 7: {  // field-aware overwrite on a known wire layout
        if (layouts_.empty()) break;
        const PathLayout* lay = nullptr;
        for (int tries = 0; tries < 4 && lay == nullptr; ++tries) {
          const PathLayout& c = layouts_[rng.below(layouts_.size())];
          if (c.total_bits <= in.bytes.size() * 8) lay = &c;
        }
        if (lay == nullptr || lay->slots.empty()) break;
        const Slot& slot = lay->slots[rng.below(lay->slots.size())];
        uint64_t v = (!dict_.empty() && rng.chance(1, 2))
                         ? dict_[rng.below(dict_.size())].value
                         : rng.next();
        overwrite_slot(in.bytes, slot, util::truncate(v, slot.width));
        break;
      }
    }
  }
}

}  // namespace meissa::fuzz
