#include "fuzz/fuzz.hpp"

#include <chrono>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/strings.hpp"

namespace meissa::fuzz {

namespace {

std::string bytes_hex(const std::vector<uint8_t>& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string s;
  s.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    s.push_back(kDigits[b >> 4]);
    s.push_back(kDigits[b & 0xf]);
  }
  return s;
}

void append_trace(std::ostringstream& os,
                  const std::vector<std::string>& trace) {
  os << "[";
  for (size_t i = 0; i < trace.size(); ++i) {
    if (i) os << ",";
    os << "\"" << util::json_escape(trace[i]) << "\"";
  }
  os << "]";
}

}  // namespace

std::string FuzzResult::to_json() const {
  std::ostringstream os;
  os << "{\"execs\":" << execs << ",\"seeds\":" << seeds
     << ",\"corpus\":" << corpus << ",\"coverage_edges\":" << coverage_edges
     << ",\"corpus_adds\":" << corpus_adds
     << ",\"max_corpus\":" << max_corpus
     << ",\"dictionary_entries\":" << dictionary_entries
     << ",\"wire_layouts\":" << wire_layouts
     << ",\"coverage_map_bytes\":" << coverage_map_bytes
     << ",\"divergences\":" << divergences
     << ",\"cancelled\":" << (cancelled ? "true" : "false")
     << ",\"seconds\":" << seconds
     << ",\"execs_per_sec\":" << execs_per_sec << ",\"samples\":[";
  for (size_t i = 0; i < samples.size(); ++i) {
    const Divergence& d = samples[i];
    if (i) os << ",";
    os << "{\"exec\":" << d.exec << ",\"kind\":\"" << d.kind
       << "\",\"port\":" << d.input.port << ",\"bytes\":\""
       << bytes_hex(d.input.bytes) << "\",\"target_trace\":";
    append_trace(os, d.target_trace);
    os << ",\"reference_trace\":";
    append_trace(os, d.reference_trace);
    os << "}";
  }
  os << "]}";
  return os.str();
}

Fuzzer::Fuzzer(sim::Device& target, sim::Device& reference,
               const p4::DataPlane& dp, const p4::RuleSet& rules,
               FuzzOptions opts)
    : target_(target),
      reference_(reference),
      mutator_(dp, rules),
      opts_(opts) {
  if (opts_.batch == 0) opts_.batch = 1;
  // Hot loop: coverage on, localization off. Traces are re-rendered only
  // for the sampled divergences, through fresh trace-on arenas.
  tgt_arena_.collect_trace = false;
  tgt_arena_.coverage = &cov_;
  ref_arena_.collect_trace = false;
}

void Fuzzer::add_seed(sim::DeviceInput in, const ir::ConcreteState& regs) {
  if (!regs.empty()) {
    target_.set_registers(regs);
    reference_.set_registers(regs);
  }
  corpus_.push_back(std::move(in));
}

void Fuzzer::record_divergence(uint64_t exec, const char* kind,
                               const sim::DeviceInput& in) {
  ++result_.divergences;
  obs::instant("fuzz divergence", "fuzz");
  if (result_.samples.size() >= opts_.max_divergences) return;
  Divergence d;
  d.exec = exec;
  d.kind = kind;
  d.input = in;
  sim::ExecArena ta, ra;  // trace-on replays for localization
  sim::DeviceOutput to, ro;
  target_.run_batch({&d.input, 1}, {&to, 1}, ta);
  reference_.run_batch({&d.input, 1}, {&ro, 1}, ra);
  d.target_trace = target_.render_trace(to.trace);
  d.reference_trace = reference_.render_trace(ro.trace);
  result_.samples.push_back(std::move(d));
}

void Fuzzer::execute(std::vector<sim::DeviceInput>& ins, bool from_corpus,
                     uint64_t exec_base) {
  cov_.reset();
  tgt_out_.resize(ins.size());
  ref_out_.resize(ins.size());
  target_.run_batch(ins, tgt_out_, tgt_arena_);
  reference_.run_batch(ins, ref_out_, ref_arena_);

  for (size_t i = 0; i < ins.size(); ++i) {
    const sim::DeviceOutput& t = tgt_out_[i];
    const sim::DeviceOutput& r = ref_out_[i];
    uint64_t exec = exec_base + i;
    if (t.accepted != r.accepted) {
      record_divergence(exec, "accepted", ins[i]);
    } else if (t.dropped != r.dropped) {
      record_divergence(exec, "dropped", ins[i]);
    } else if (!t.dropped && t.accepted && t.port != r.port) {
      record_divergence(exec, "port", ins[i]);
    } else if (!t.dropped && t.accepted && t.bytes != r.bytes) {
      record_divergence(exec, "bytes", ins[i]);
    }
  }

  // Coverage scoring. One cheap probe over the whole batch first; only a
  // batch that actually saw something new pays for per-input attribution.
  if (!sim::merge_new_coverage(cov_, virgin_, /*commit=*/false)) return;
  if (from_corpus) {
    // Seed replay: the corpus is already admitted, just absorb its edges.
    sim::merge_new_coverage(cov_, virgin_, /*commit=*/true);
    return;
  }
  for (sim::DeviceInput& in : ins) {
    if (corpus_.size() >= opts_.max_corpus) break;
    cov_.reset();
    sim::DeviceOutput out;
    target_.run_batch({&in, 1}, {&out, 1}, tgt_arena_);
    if (sim::merge_new_coverage(cov_, virgin_, /*commit=*/true)) {
      ++result_.corpus_adds;
      corpus_.push_back(in);
    }
  }
}

FuzzResult Fuzzer::run() {
  obs::Span span("fuzz/run", "fuzz");
  util::Rng rng(opts_.seed);
  result_ = {};
  virgin_.assign(sim::CoverageMap::kSize, 0);

  if (corpus_.empty()) {
    for (size_t i = 0; i < opts_.random_seeds; ++i) {
      corpus_.push_back(mutator_.random_packet(rng));
    }
  }
  result_.seeds = corpus_.size();
  span.arg("seeds", result_.seeds);

  auto start = std::chrono::steady_clock::now();
  std::vector<sim::DeviceInput> batch;
  auto stop_requested = [&] {
    if (opts_.cancel == nullptr || !opts_.cancel->cancelled()) return false;
    result_.cancelled = true;
    return true;
  };

  // Phase 1: replay the seeds (counted against the exec budget).
  {
    obs::Span sp("fuzz/seed-replay", "fuzz");
    for (size_t i = 0; i < corpus_.size() && result_.execs < opts_.execs &&
                       !stop_requested();) {
      batch.clear();
      while (i < corpus_.size() && batch.size() < opts_.batch &&
             result_.execs + batch.size() < opts_.execs) {
        batch.push_back(corpus_[i++]);
      }
      if (batch.empty()) break;
      execute(batch, /*from_corpus=*/true, result_.execs);
      result_.execs += batch.size();
    }
  }

  // Phase 2: mutate until the budget runs out.
  {
    obs::Span sp("fuzz/mutate", "fuzz");
    while (result_.execs < opts_.execs && !stop_requested()) {
      batch.clear();
      while (batch.size() < opts_.batch &&
             result_.execs + batch.size() < opts_.execs) {
        sim::DeviceInput in = corpus_[rng.below(corpus_.size())];
        mutator_.mutate(in, rng);
        batch.push_back(std::move(in));
      }
      execute(batch, /*from_corpus=*/false, result_.execs);
      result_.execs += batch.size();
    }
  }

  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  result_.seconds = secs;
  result_.execs_per_sec =
      secs > 0 ? static_cast<double>(result_.execs) / secs : 0;
  result_.corpus = corpus_.size();
  result_.max_corpus = opts_.max_corpus;
  result_.dictionary_entries = mutator_.dictionary_size();
  result_.wire_layouts = mutator_.layouts();
  result_.coverage_map_bytes = sim::CoverageMap::kSize;

  size_t edges = 0;
  for (uint8_t b : virgin_) edges += b != 0;
  result_.coverage_edges = edges;

  if (obs::metrics_enabled()) {
    obs::metrics().counter("fuzz.execs").add(result_.execs);
    obs::metrics().counter("fuzz.divergences").add(result_.divergences);
    obs::metrics().counter("fuzz.corpus_adds").add(result_.corpus_adds);
    obs::metrics().counter("fuzz.new_edges").add(result_.coverage_edges);
  }
  span.arg("execs", result_.execs);
  span.arg("divergences", result_.divergences);
  return result_;
}

}  // namespace meissa::fuzz
