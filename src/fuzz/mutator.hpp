// Input generation and mutation for the greybox lane.
//
// The mutator is program-aware without being path-precise: at construction
// it walks the entry pipeline's parser FSM to learn (a) which header
// sequences are parseable and where each field sits on the wire, and (b) a
// dictionary of "magic" constants — parser select values and table-key
// match values from the installed rule set — that gate interesting
// branches. random_packet() synthesizes structurally-valid frames by
// replaying a random FSM walk with select fields pinned to a case's value;
// mutate() applies AFL-style havoc stacks (bit flips, interesting bytes,
// dictionary splices, tail resizing) plus field-aware overwrites that land
// whole values on field boundaries of a known wire layout.
//
// All randomness flows through the caller's util::Rng, so a (seed, corpus)
// pair replays the identical mutation sequence.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "p4/program.hpp"
#include "p4/rules.hpp"
#include "sim/device.hpp"
#include "util/rng.hpp"

namespace meissa::fuzz {

class Mutator {
 public:
  Mutator(const p4::DataPlane& dp, const p4::RuleSet& rules);

  // Synthesizes a structurally-valid random frame by walking the entry
  // parser (select fields pinned to a random case 3/4 of the time).
  sim::DeviceInput random_packet(util::Rng& rng) const;

  // Applies a havoc stack of 1..6 mutations in place.
  void mutate(sim::DeviceInput& in, util::Rng& rng) const;

  size_t dictionary_size() const noexcept { return dict_.size(); }
  size_t layouts() const noexcept { return layouts_.size(); }

 private:
  struct DictEntry {
    uint64_t value = 0;
    int width = 0;  // bits
  };
  // One field slot of a parseable header sequence.
  struct Slot {
    size_t bit_off = 0;
    int width = 0;
  };
  struct PathLayout {
    std::vector<Slot> slots;
    size_t total_bits = 0;
  };

  void enumerate_layouts(const p4::Parser& parser, const p4::ParserState* s,
                         PathLayout cur, int depth);
  void overwrite_slot(std::vector<uint8_t>& bytes, const Slot& slot,
                      uint64_t value) const;

  const p4::Program& prog_;
  const p4::Parser* parser_ = nullptr;  // entry pipeline's parser
  std::vector<DictEntry> dict_;
  std::vector<PathLayout> layouts_;
};

}  // namespace meissa::fuzz
