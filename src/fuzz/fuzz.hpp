// The greybox fuzzing lane (FP4-style, PAPERS.md): coverage-guided
// mutation of concrete DeviceInputs over the batched execution core, with
// a differential oracle.
//
// Two devices run every input: the *target* (the compiled-with-faults or
// misprogrammed data plane under test) and the *reference* (the intended
// program, compiled cleanly). Any observable disagreement — accept/drop
// verdict, egress port, or emitted bytes — is a divergence, i.e. a bug
// manifestation Meissa's symbolic lane would have had to enumerate a path
// for. Coverage (sim/coverage.hpp) is measured on the target only and
// steers the corpus: inputs reaching a new edge bucket are kept and
// mutated further.
//
// The loop is deterministic for a fixed (seed, corpus): all randomness is
// one util::Rng, execution order is fixed, and wall-clock time is used
// only for the execs/sec report, never for decisions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/mutator.hpp"
#include "sim/coverage.hpp"
#include "sim/device.hpp"
#include "util/cancel.hpp"

namespace meissa::fuzz {

struct FuzzOptions {
  uint64_t execs = 20000;     // total target executions (incl. seed runs)
  uint64_t seed = 1;
  size_t batch = 64;          // inputs per run_batch submission
  size_t max_corpus = 4096;   // corpus growth cap
  size_t max_divergences = 64;  // divergence samples kept (with traces)
  size_t random_seeds = 16;   // synthesized seeds when none were added
  // Cooperative stop, polled between batches: a fired token ends the run
  // cleanly with the divergences found so far (FuzzResult::cancelled).
  // Must outlive run().
  const util::CancelToken* cancel = nullptr;
};

// One disagreement between target and reference, with traces re-rendered
// for localization (the hot loop runs trace-off; the divergent input is
// replayed trace-on).
struct Divergence {
  uint64_t exec = 0;     // execution index where it surfaced
  std::string kind;      // "accepted" | "dropped" | "port" | "bytes"
  sim::DeviceInput input;
  std::vector<std::string> target_trace;
  std::vector<std::string> reference_trace;
};

struct FuzzResult {
  uint64_t execs = 0;
  size_t seeds = 0;           // corpus size before the mutation loop
  size_t corpus = 0;          // final corpus size
  size_t coverage_edges = 0;  // distinct map bytes with any bucket seen
  uint64_t corpus_adds = 0;   // inputs admitted by new coverage
  size_t max_corpus = 0;          // corpus growth cap in force
  size_t dictionary_entries = 0;  // mutator dictionary (rule constants)
  size_t wire_layouts = 0;        // parseable header layouts enumerated
  size_t coverage_map_bytes = 0;  // coverage map size (CoverageMap::kSize)
  uint64_t divergences = 0;   // total divergent executions
  // FuzzOptions::cancel fired: execs stops short of the requested budget.
  bool cancelled = false;
  std::vector<Divergence> samples;
  double seconds = 0;
  double execs_per_sec = 0;

  bool found() const noexcept { return divergences > 0; }
  std::string to_json() const;
};

class Fuzzer {
 public:
  // Both devices must outlive the fuzzer and be compiled against the same
  // ir::Context as `dp` (field ids are shared).
  Fuzzer(sim::Device& target, sim::Device& reference, const p4::DataPlane& dp,
         const p4::RuleSet& rules, FuzzOptions opts = {});

  // Adds a corpus seed; `registers` (e.g. a test template's model) are
  // installed on BOTH devices immediately, merging over earlier installs —
  // with conflicting cells across seeds, the last install wins.
  void add_seed(sim::DeviceInput in, const ir::ConcreteState& registers = {});

  FuzzResult run();

 private:
  // Runs one batch through both devices, compares, and scores coverage.
  void execute(std::vector<sim::DeviceInput>& ins, bool from_corpus,
               uint64_t exec_base);
  void record_divergence(uint64_t exec, const char* kind,
                         const sim::DeviceInput& in);

  sim::Device& target_;
  sim::Device& reference_;
  Mutator mutator_;
  FuzzOptions opts_;

  std::vector<sim::DeviceInput> corpus_;
  sim::CoverageMap cov_;
  std::vector<uint8_t> virgin_;
  sim::ExecArena tgt_arena_;
  sim::ExecArena ref_arena_;
  std::vector<sim::DeviceOutput> tgt_out_;
  std::vector<sim::DeviceOutput> ref_out_;
  FuzzResult result_;
};

}  // namespace meissa::fuzz
