#include "packet/wire.hpp"

#include "util/error.hpp"

namespace meissa::packet {

void BitWriter::put(uint64_t v, int width) {
  util::check_width(width);
  v = util::truncate(v, width);
  for (int i = width - 1; i >= 0; --i) {
    if (bit_pos_ == 0) data_.push_back(0);
    if (util::bit_at(v, i)) {
      data_.back() |= static_cast<uint8_t>(1u << (7 - bit_pos_));
    }
    bit_pos_ = (bit_pos_ + 1) % 8;
  }
}

void BitWriter::put_bytes(const std::vector<uint8_t>& bytes) {
  util::check(byte_aligned(), "put_bytes: not byte aligned");
  data_.insert(data_.end(), bytes.begin(), bytes.end());
}

std::optional<uint64_t> BitReader::get(int width) {
  util::check_width(width);
  if (pos_ + static_cast<size_t>(width) > data_.size() * 8) {
    return std::nullopt;
  }
  uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    size_t byte = pos_ / 8;
    int bit = static_cast<int>(pos_ % 8);
    v = (v << 1) | ((data_[byte] >> (7 - bit)) & 1u);
    ++pos_;
  }
  return v;
}

std::vector<uint8_t> BitReader::rest() const {
  util::check(byte_aligned(), "rest: not byte aligned");
  return std::vector<uint8_t>(data_.begin() + static_cast<long>(pos_ / 8),
                              data_.end());
}

}  // namespace meissa::packet
