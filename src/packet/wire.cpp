#include "packet/wire.hpp"

#include "util/error.hpp"

namespace meissa::packet {

void BitWriter::put_bytes(const std::vector<uint8_t>& bytes) {
  put_bytes(bytes.data(), bytes.size());
}

void BitWriter::put_bytes(const uint8_t* data, size_t n) {
  util::check(byte_aligned(), "put_bytes: not byte aligned");
  data_.insert(data_.end(), data, data + n);
}

std::vector<uint8_t> BitReader::rest() const {
  util::check(byte_aligned(), "rest: not byte aligned");
  return std::vector<uint8_t>(data_.begin() + static_cast<long>(pos_ / 8),
                              data_.end());
}

}  // namespace meissa::packet
