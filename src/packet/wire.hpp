// Bit-granular wire serialization. Header fields are packed MSB-first in
// declaration order, as P4 deparsers emit them.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/bits.hpp"

namespace meissa::packet {

class BitWriter {
 public:
  // Appends the low `width` bits of `v`, MSB first.
  void put(uint64_t v, int width);
  // Appends raw bytes (requires byte alignment).
  void put_bytes(const std::vector<uint8_t>& bytes);

  bool byte_aligned() const noexcept { return bit_pos_ == 0; }
  const std::vector<uint8_t>& bytes() const noexcept { return data_; }
  std::vector<uint8_t> take() && { return std::move(data_); }

 private:
  std::vector<uint8_t> data_;
  int bit_pos_ = 0;  // bits already used in the last byte (0..7)
};

class BitReader {
 public:
  explicit BitReader(const std::vector<uint8_t>& data) : data_(data) {}

  // Reads `width` bits MSB-first; nullopt when the buffer is exhausted.
  std::optional<uint64_t> get(int width);

  // Remaining bytes from the current (byte-aligned) position.
  std::vector<uint8_t> rest() const;

  size_t bit_position() const noexcept { return pos_; }
  bool byte_aligned() const noexcept { return pos_ % 8 == 0; }

 private:
  const std::vector<uint8_t>& data_;
  size_t pos_ = 0;  // in bits
};

}  // namespace meissa::packet
