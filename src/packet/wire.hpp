// Bit-granular wire serialization. Header fields are packed MSB-first in
// declaration order, as P4 deparsers emit them.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/bits.hpp"

namespace meissa::packet {

class BitWriter {
 public:
  // Appends the low `width` bits of `v`, MSB first. Inline: this sits on
  // the deparser's per-field hot path.
  void put(uint64_t v, int width) {
    util::check_width(width);
    v = util::truncate(v, width);
    int left = width;
    // Finish the partially-filled last byte first.
    if (bit_pos_ != 0) {
      int take = 8 - bit_pos_ < left ? 8 - bit_pos_ : left;
      left -= take;
      uint64_t chunk = (v >> left) & util::mask_bits(take);
      data_.back() |= static_cast<uint8_t>(chunk << (8 - bit_pos_ - take));
      bit_pos_ = (bit_pos_ + take) % 8;
    }
    // Then whole bytes, MSB first.
    while (left >= 8) {
      left -= 8;
      data_.push_back(static_cast<uint8_t>(v >> left));
    }
    // And a new partial byte for the tail bits.
    if (left > 0) {
      uint64_t chunk = v & util::mask_bits(left);
      data_.push_back(static_cast<uint8_t>(chunk << (8 - left)));
      bit_pos_ = left;
    }
  }
  // Appends raw bytes (requires byte alignment).
  void put_bytes(const std::vector<uint8_t>& bytes);
  void put_bytes(const uint8_t* data, size_t n);

  // Recycles `buf`'s capacity as the output buffer and starts a fresh
  // write (allocation-free steady state for the batched deparser).
  void reset(std::vector<uint8_t> buf) {
    data_ = std::move(buf);
    data_.clear();
    bit_pos_ = 0;
  }

  bool byte_aligned() const noexcept { return bit_pos_ == 0; }
  const std::vector<uint8_t>& bytes() const noexcept { return data_; }
  std::vector<uint8_t> take() && { return std::move(data_); }

 private:
  std::vector<uint8_t> data_;
  int bit_pos_ = 0;  // bits already used in the last byte (0..7)
};

class BitReader {
 public:
  explicit BitReader(const std::vector<uint8_t>& data) : data_(data) {}

  // Reads `width` bits MSB-first; nullopt when the buffer is exhausted.
  // Inline: this is the parser's per-field hot path.
  std::optional<uint64_t> get(int width) {
    util::check_width(width);
    if (pos_ + static_cast<size_t>(width) > data_.size() * 8) {
      return std::nullopt;
    }
    uint64_t v = 0;
    int left = width;
    // Tail of the current byte first.
    int bit = static_cast<int>(pos_ % 8);
    if (bit != 0) {
      int take = 8 - bit < left ? 8 - bit : left;
      v = (data_[pos_ / 8] >> (8 - bit - take)) & util::mask_bits(take);
      pos_ += static_cast<size_t>(take);
      left -= take;
    }
    // Then whole bytes, MSB first.
    while (left >= 8) {
      v = (v << 8) | data_[pos_ / 8];
      pos_ += 8;
      left -= 8;
    }
    // And the leading bits of the final byte.
    if (left > 0) {
      v = (v << left) | (data_[pos_ / 8] >> (8 - left));
      pos_ += static_cast<size_t>(left);
    }
    return v;
  }

  // Remaining bytes from the current (byte-aligned) position.
  std::vector<uint8_t> rest() const;

  size_t bit_position() const noexcept { return pos_; }
  bool byte_aligned() const noexcept { return pos_ % 8 == 0; }

 private:
  const std::vector<uint8_t>& data_;
  size_t pos_ = 0;  // in bits
};

}  // namespace meissa::packet
