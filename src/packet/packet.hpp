// Concrete packets over program-defined headers.
//
// A Packet is an ordered stack of header instances (field values parallel
// to the HeaderDef declaration) plus an opaque payload. Serialization and
// parsing use the program's header definitions, so the same machinery
// covers standard protocols and proprietary gateway headers alike.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "p4/program.hpp"

namespace meissa::packet {

struct HeaderValues {
  std::string header;            // HeaderDef name
  std::vector<uint64_t> values;  // one per HeaderDef field, in order

  uint64_t field(const p4::HeaderDef& def, std::string_view name) const;
  void set_field(const p4::HeaderDef& def, std::string_view name, uint64_t v);
};

struct Packet {
  std::vector<HeaderValues> headers;  // wire order
  std::vector<uint8_t> payload;

  const HeaderValues* find(std::string_view header) const;
  HeaderValues* find(std::string_view header);
};

// Serializes headers (in order) followed by the payload.
std::vector<uint8_t> serialize(const p4::Program& prog, const Packet& pkt);

// Parses `bytes` as the given header sequence; nullopt when too short.
// Trailing bytes become the payload.
std::optional<Packet> parse_as(const p4::Program& prog,
                               const std::vector<std::string>& header_seq,
                               const std::vector<uint8_t>& bytes);

// Structural + content equality with a field-level diff for reports.
struct PacketDiff {
  bool equal = true;
  std::vector<std::string> differences;  // human-readable per-field diffs
};
PacketDiff diff_packets(const p4::Program& prog, const Packet& expected,
                        const Packet& actual);

// Human-readable rendering.
std::string to_string(const p4::Program& prog, const Packet& pkt);

}  // namespace meissa::packet
