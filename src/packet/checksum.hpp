// Internet (RFC 1071) ones-complement checksum primitives, used by the
// test driver's checker to validate checksum fields of captured packets.
#pragma once

#include <cstdint>
#include <vector>

namespace meissa::packet {

// Ones-complement sum of 16-bit big-endian words of `bytes` (odd tail
// padded with zero), folded to 16 bits — NOT complemented.
uint16_t ones_complement_sum(const std::vector<uint8_t>& bytes);

// Full internet checksum: complement of the folded sum.
uint16_t internet_checksum(const std::vector<uint8_t>& bytes);

// True when `bytes` (which embed their checksum field) verify: the folded
// sum over the whole range equals 0xffff.
bool checksum_ok(const std::vector<uint8_t>& bytes);

}  // namespace meissa::packet
