#include "packet/packet.hpp"

#include <sstream>

#include "packet/wire.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace meissa::packet {

uint64_t HeaderValues::field(const p4::HeaderDef& def,
                             std::string_view name) const {
  for (size_t i = 0; i < def.fields.size(); ++i) {
    if (def.fields[i].name == name) return values.at(i);
  }
  throw util::ValidationError("no field '" + std::string(name) +
                              "' in header '" + def.name + "'");
}

void HeaderValues::set_field(const p4::HeaderDef& def, std::string_view name,
                             uint64_t v) {
  for (size_t i = 0; i < def.fields.size(); ++i) {
    if (def.fields[i].name == name) {
      values.at(i) = util::truncate(v, def.fields[i].width);
      return;
    }
  }
  throw util::ValidationError("no field '" + std::string(name) +
                              "' in header '" + def.name + "'");
}

const HeaderValues* Packet::find(std::string_view header) const {
  for (const HeaderValues& h : headers) {
    if (h.header == header) return &h;
  }
  return nullptr;
}

HeaderValues* Packet::find(std::string_view header) {
  for (HeaderValues& h : headers) {
    if (h.header == header) return &h;
  }
  return nullptr;
}

std::vector<uint8_t> serialize(const p4::Program& prog, const Packet& pkt) {
  BitWriter w;
  for (const HeaderValues& h : pkt.headers) {
    const p4::HeaderDef* def = prog.find_header(h.header);
    util::check(def != nullptr, "serialize: unknown header");
    util::check(h.values.size() == def->fields.size(),
                "serialize: field count mismatch");
    for (size_t i = 0; i < def->fields.size(); ++i) {
      w.put(h.values[i], def->fields[i].width);
    }
    util::check(w.byte_aligned(), "serialize: header not byte aligned");
  }
  w.put_bytes(pkt.payload);
  return std::move(w).take();
}

std::optional<Packet> parse_as(const p4::Program& prog,
                               const std::vector<std::string>& header_seq,
                               const std::vector<uint8_t>& bytes) {
  BitReader r(bytes);
  Packet pkt;
  for (const std::string& name : header_seq) {
    const p4::HeaderDef* def = prog.find_header(name);
    util::check(def != nullptr, "parse_as: unknown header");
    HeaderValues h;
    h.header = name;
    for (const p4::FieldDef& f : def->fields) {
      auto v = r.get(f.width);
      if (!v) return std::nullopt;
      h.values.push_back(*v);
    }
    pkt.headers.push_back(std::move(h));
  }
  pkt.payload = r.rest();
  return pkt;
}

PacketDiff diff_packets(const p4::Program& prog, const Packet& expected,
                        const Packet& actual) {
  PacketDiff d;
  size_t n = std::min(expected.headers.size(), actual.headers.size());
  for (size_t i = 0; i < n; ++i) {
    const HeaderValues& e = expected.headers[i];
    const HeaderValues& a = actual.headers[i];
    if (e.header != a.header) {
      d.equal = false;
      d.differences.push_back("header #" + std::to_string(i) + ": expected " +
                              e.header + ", got " + a.header);
      continue;
    }
    const p4::HeaderDef* def = prog.find_header(e.header);
    for (size_t f = 0; f < def->fields.size(); ++f) {
      if (e.values[f] != a.values[f]) {
        d.equal = false;
        d.differences.push_back(
            e.header + "." + def->fields[f].name + ": expected " +
            util::hex(e.values[f]) + ", got " + util::hex(a.values[f]));
      }
    }
  }
  if (expected.headers.size() != actual.headers.size()) {
    d.equal = false;
    d.differences.push_back(
        "header count: expected " + std::to_string(expected.headers.size()) +
        ", got " + std::to_string(actual.headers.size()));
  }
  if (expected.payload != actual.payload) {
    d.equal = false;
    d.differences.push_back("payload differs");
  }
  return d;
}

std::string to_string(const p4::Program& prog, const Packet& pkt) {
  std::ostringstream os;
  for (const HeaderValues& h : pkt.headers) {
    const p4::HeaderDef* def = prog.find_header(h.header);
    os << h.header << "{";
    for (size_t i = 0; i < def->fields.size(); ++i) {
      if (i) os << ", ";
      os << def->fields[i].name << "=" << util::hex(h.values[i]);
    }
    os << "} ";
  }
  os << "payload[" << pkt.payload.size() << "]";
  return os.str();
}

}  // namespace meissa::packet
