#include "packet/checksum.hpp"

#include <cstddef>

namespace meissa::packet {

uint16_t ones_complement_sum(const std::vector<uint8_t>& bytes) {
  uint64_t sum = 0;
  for (size_t i = 0; i < bytes.size(); i += 2) {
    uint16_t word = static_cast<uint16_t>(bytes[i]) << 8;
    if (i + 1 < bytes.size()) word |= bytes[i + 1];
    sum += word;
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<uint16_t>(sum);
}

uint16_t internet_checksum(const std::vector<uint8_t>& bytes) {
  return static_cast<uint16_t>(~ones_complement_sum(bytes));
}

bool checksum_ok(const std::vector<uint8_t>& bytes) {
  return ones_complement_sum(bytes) == 0xffff;
}

}  // namespace meissa::packet
