#include "summary/summary.hpp"

#include <algorithm>
#include <chrono>

#include "analysis/dataflow.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace meissa::summary {

namespace {

// Sorts fields by name. FieldIds are assigned in interning order, which is
// scheduling-dependent when explorations run concurrently; names are not,
// so every ordering decision that shapes the summarized graph uses names.
void sort_fields_by_name(std::vector<ir::FieldId>& fs,
                         const ir::FieldTable& fields) {
  std::sort(fs.begin(), fs.end(), [&](ir::FieldId a, ir::FieldId b) {
    return fields.name(a) < fields.name(b);
  });
}

// Dataflow state: C as a set for O(1) intersection, V/tops as in
// PreCondition. `reached` distinguishes "no path reaches this node yet"
// (bottom) from "reachable with empty knowledge".
struct FlowState {
  bool reached = false;
  std::unordered_set<ir::ExprRef> conds;
  std::unordered_map<ir::FieldId, ir::ExprRef> values;
  std::unordered_set<ir::FieldId> tops;
};

// Symbolic value of `f` in a flow state: explicit binding, TOP, or the
// input symbol itself.
ir::ExprRef flow_value(const FlowState& s, ir::Context& ctx, ir::FieldId f) {
  auto it = s.values.find(f);
  if (it != s.values.end()) return it->second;
  if (s.tops.count(f)) return nullptr;  // TOP
  return ctx.var(f);
}

void meet_into(FlowState& a, const FlowState& b, ir::Context& ctx) {
  if (!b.reached) return;
  if (!a.reached) {
    a = b;
    return;
  }
  // C: intersection.
  for (auto it = a.conds.begin(); it != a.conds.end();) {
    it = b.conds.count(*it) ? std::next(it) : a.conds.erase(it);
  }
  // V: fields known to either side must agree, else TOP.
  std::vector<ir::FieldId> interesting;
  for (const auto& [f, v] : a.values) interesting.push_back(f);
  for (ir::FieldId f : a.tops) interesting.push_back(f);
  for (const auto& [f, v] : b.values) interesting.push_back(f);
  for (ir::FieldId f : b.tops) interesting.push_back(f);
  std::unordered_map<ir::FieldId, ir::ExprRef> values;
  std::unordered_set<ir::FieldId> tops;
  for (ir::FieldId f : interesting) {
    if (tops.count(f) || values.count(f)) continue;
    ir::ExprRef va = flow_value(a, ctx, f);
    ir::ExprRef vb = flow_value(b, ctx, f);
    if (va == nullptr || vb == nullptr || va != vb) {
      tops.insert(f);
    } else if (va != ctx.var(f)) {
      values.emplace(f, va);
    }
  }
  a.values = std::move(values);
  a.tops = std::move(tops);
}

// Transfer function for one node.
void transfer(FlowState& s, const cfg::Node& n, ir::Context& ctx) {
  auto subst_known = [&](ir::ExprRef e) -> ir::ExprRef {
    // Substitute V; nullptr result when any referenced field is TOP.
    std::unordered_set<ir::FieldId> fs;
    ir::collect_fields(e, fs);
    for (ir::FieldId f : fs) {
      if (s.tops.count(f)) return nullptr;
    }
    return ir::substitute(e, ctx.arena, [&](ir::FieldId f, int) {
      auto it = s.values.find(f);
      return it != s.values.end() ? it->second : nullptr;
    });
  };
  if (n.is_hash) {
    s.values.erase(n.hash.dest);
    s.tops.insert(n.hash.dest);
    return;
  }
  switch (n.stmt.kind) {
    case ir::StmtKind::kNop:
      return;
    case ir::StmtKind::kAssign: {
      ir::ExprRef v = subst_known(n.stmt.expr);
      if (v == nullptr) {
        s.values.erase(n.stmt.target);
        s.tops.insert(n.stmt.target);
      } else {
        s.tops.erase(n.stmt.target);
        if (v == ctx.var(n.stmt.target)) {
          s.values.erase(n.stmt.target);
        } else {
          s.values[n.stmt.target] = v;
        }
      }
      return;
    }
    case ir::StmtKind::kAssume: {
      ir::ExprRef c = subst_known(n.stmt.expr);
      if (c != nullptr && c->is_false()) {
        // Constant-infeasible branch: no valid path continues through it,
        // so it must not weaken the meet (Algorithm 2 intersects over
        // *valid* paths only).
        s.reached = false;
        return;
      }
      if (c != nullptr && !c->is_true()) s.conds.insert(c);
      return;
    }
  }
}

// Nodes from which `target` is reachable, and their predecessors within
// that set.
struct Region {
  std::unordered_set<cfg::NodeId> nodes;
  std::unordered_map<cfg::NodeId, std::vector<cfg::NodeId>> preds;
  std::vector<cfg::NodeId> topo;  // topological order, entry first
};

Region region_reaching(const cfg::Cfg& g, cfg::NodeId target) {
  // Reverse reachability over the predecessor relation.
  std::unordered_map<cfg::NodeId, std::vector<cfg::NodeId>> all_preds;
  for (cfg::NodeId id = 0; id < g.size(); ++id) {
    for (cfg::NodeId s : g.node(id).succ) all_preds[s].push_back(id);
  }
  Region r;
  std::vector<cfg::NodeId> work{target};
  r.nodes.insert(target);
  while (!work.empty()) {
    cfg::NodeId cur = work.back();
    work.pop_back();
    for (cfg::NodeId p : all_preds[cur]) {
      if (r.nodes.insert(p).second) work.push_back(p);
    }
  }
  for (cfg::NodeId id : r.nodes) {
    for (cfg::NodeId p : all_preds[id]) {
      if (r.nodes.count(p)) r.preds[id].push_back(p);
    }
  }
  // Kahn topological order within the region (edges restricted to region,
  // and not leaving `target`).
  std::unordered_map<cfg::NodeId, size_t> indeg;
  for (cfg::NodeId id : r.nodes) indeg[id] = r.preds[id].size();
  std::vector<cfg::NodeId> ready;
  for (auto& [id, d] : indeg) {
    if (d == 0) ready.push_back(id);
  }
  while (!ready.empty()) {
    cfg::NodeId cur = ready.back();
    ready.pop_back();
    r.topo.push_back(cur);
    if (cur == target) continue;
    for (cfg::NodeId s : g.node(cur).succ) {
      if (!r.nodes.count(s)) continue;
      if (--indeg[s] == 0) ready.push_back(s);
    }
  }
  util::check(r.topo.size() == r.nodes.size(),
              "region_reaching: cyclic region");
  return r;
}

}  // namespace

PreCondition compute_precondition(ir::Context& ctx, const cfg::Cfg& g,
                                  cfg::NodeId target) {
  Region region = region_reaching(g, target);
  std::unordered_map<cfg::NodeId, FlowState> in;
  for (cfg::NodeId id : region.topo) {
    FlowState state;
    if (id == g.entry()) {
      state.reached = true;
    }
    for (cfg::NodeId p : region.preds[id]) {
      // OUT(p) = transfer(p, IN(p)); compute lazily per edge.
      FlowState out = in[p];
      if (out.reached) transfer(out, g.node(p), ctx);
      meet_into(state, out, ctx);
    }
    in[id] = std::move(state);
  }
  FlowState& t = in[target];
  PreCondition pc;
  if (!t.reached) {
    // Unreachable pipeline: an impossible pre-condition prunes everything.
    pc.conds.push_back(ctx.arena.bool_const(false));
    return pc;
  }
  pc.conds.assign(t.conds.begin(), t.conds.end());
  // The set iterates in pointer order, which varies with interning order;
  // sort by rendering for a scheduling-independent result.
  std::sort(pc.conds.begin(), pc.conds.end(),
            [&](ir::ExprRef a, ir::ExprRef b) {
              return ir::to_string(a, ctx.fields) < ir::to_string(b, ctx.fields);
            });
  pc.values = std::move(t.values);
  pc.tops = std::move(t.tops);
  return pc;
}

std::optional<PreCondition> compute_precondition_by_enumeration(
    ir::Context& ctx, const cfg::Cfg& g, cfg::NodeId target,
    size_t path_limit, uint64_t* smt_checks, const std::string& fresh_ns,
    bool static_pruning, uint64_t* smt_skipped,
    const util::CancelToken* cancel, smt::PathCondCache* shared_pc_cache) {
  sym::EngineOptions opts;
  opts.stop = target;
  opts.max_results = path_limit + 1;
  opts.fresh_ns = fresh_ns;
  opts.static_pruning = static_pruning;
  opts.cancel = cancel;
  if (shared_pc_cache != nullptr) {
    opts.pc_cache = true;
    opts.shared_pc_cache = shared_pc_cache;
  }
  sym::Engine eng(ctx, g, opts);
  bool first = true;
  std::vector<ir::ExprRef> cond_order;  // first path's conds, in path order
  std::unordered_set<ir::ExprRef> conds;
  std::unordered_map<ir::FieldId, ir::ExprRef> values;  // agreeing values
  std::unordered_set<ir::FieldId> tops;
  // Per-field constant sets across paths (for value-set pre-conditions);
  // a field leaves the map when any path gives it a non-constant value or
  // the set grows beyond the merge limit.
  constexpr size_t kMaxValueSet = 96;
  std::unordered_map<ir::FieldId, std::unordered_set<uint64_t>> const_sets;
  size_t count = 0;
  eng.run([&](const sym::PathResult& r) {
    if (++count > path_limit) return;
    std::unordered_set<ir::ExprRef> rc(r.conds.begin(), r.conds.end());
    if (first) {
      conds = std::move(rc);
      for (ir::ExprRef c : r.conds) {
        if (cond_order.empty() || std::find(cond_order.begin(),
                                            cond_order.end(),
                                            c) == cond_order.end()) {
          cond_order.push_back(c);
        }
      }
      values = r.values;
      first = false;
      for (auto& [f, v] : r.values) {
        if (v->is_const()) const_sets[f].insert(v->value);
      }
      return;
    }
    for (auto it = conds.begin(); it != conds.end();) {
      it = rc.count(*it) ? std::next(it) : conds.erase(it);
    }
    std::vector<ir::FieldId> interesting;
    for (auto& [f, v] : values) interesting.push_back(f);
    for (auto& [f, v] : r.values) interesting.push_back(f);
    for (ir::FieldId f : interesting) {
      if (tops.count(f)) continue;
      auto a = values.find(f);
      ir::ExprRef va = a != values.end() ? a->second : ctx.var(f);
      auto b = r.values.find(f);
      ir::ExprRef vb = b != r.values.end() ? b->second : ctx.var(f);
      if (va != vb) {
        tops.insert(f);
        values.erase(f);
      }
    }
    for (auto it = const_sets.begin(); it != const_sets.end();) {
      auto b = r.values.find(it->first);
      if (b == r.values.end() || !b->second->is_const() ||
          it->second.size() > kMaxValueSet) {
        it = const_sets.erase(it);
      } else {
        it->second.insert(b->second->value);
        ++it;
      }
    }
  });
  if (smt_checks != nullptr) *smt_checks += eng.stats().solver.checks;
  if (smt_skipped != nullptr) {
    *smt_skipped += eng.stats().static_prunes + eng.stats().skipped_checks;
  }
  if (count > path_limit) return std::nullopt;
  PreCondition pc;
  if (first) {
    pc.conds.push_back(ctx.arena.bool_const(false));
    return pc;
  }
  // Surviving conjuncts in first-path order: deterministic because the
  // enumeration itself is a sequential DFS.
  for (ir::ExprRef c : cond_order) {
    if (conds.count(c)) pc.conds.push_back(c);
  }
  for (auto& [f, v] : values) {
    if (v != ctx.var(f)) pc.values.emplace(f, v);
  }
  for (ir::FieldId f : tops) {
    auto it = const_sets.find(f);
    if (it != const_sets.end() && !it->second.empty()) {
      std::vector<uint64_t> vals(it->second.begin(), it->second.end());
      std::sort(vals.begin(), vals.end());
      pc.value_sets.emplace(f, std::move(vals));
    }
  }
  pc.tops = std::move(tops);
  return pc;
}

namespace {

// Encodes one internal valid path as a compact branch (Algorithm 2 lines
// 12–25) and splices it between `entry` and `exit`.
class PathEncoder {
 public:
  PathEncoder(ir::Context& ctx, cfg::Cfg& g, int instance,
              const std::string& inst_name,
              const std::unordered_map<ir::FieldId, ir::ExprRef>& seeds)
      : ctx_(ctx), g_(g), instance_(instance), inst_name_(inst_name),
        seeds_(seeds) {}

  void encode(const sym::PathResult& r, cfg::NodeId entry, cfg::NodeId exit) {
    // Changed fields: assigned inside the pipeline to something other than
    // their seed. Skip snapshot fields themselves.
    std::vector<std::pair<ir::FieldId, ir::ExprRef>> changed;
    for (const auto& [f, v] : r.values) {
      auto s = seeds_.find(f);
      if (s != seeds_.end() && s->second == v) continue;  // still the seed
      if (s == seeds_.end() && v == ctx_.var(f)) continue;  // identity
      changed.push_back({f, v});
    }
    std::sort(changed.begin(), changed.end(),
              [&](const auto& a, const auto& b) {
                return ctx_.fields.name(a.first) < ctx_.fields.name(b.first);
              });  // deterministic (name-based) order

    // Substitution for raw reads of fields this path changes: a raw field
    // occurrence means "value at pipeline entry", which Phase A snapshots.
    std::unordered_set<ir::FieldId> changed_unseeded;
    for (const auto& [f, v] : changed) {
      if (!seeds_.count(f)) changed_unseeded.insert(f);
    }
    auto at_entry = [&](ir::ExprRef e) {
      return ir::substitute(e, ctx_.arena, [&](ir::FieldId f, int w) -> ir::ExprRef {
        if (changed_unseeded.count(f)) {
          return ctx_.arena.field(snapshot_fid(f), w);
        }
        return nullptr;
      });
    };

    std::vector<ir::ExprRef> conds;
    conds.reserve(r.conds.size());
    for (ir::ExprRef c : r.conds) conds.push_back(at_entry(c));
    std::vector<std::pair<ir::FieldId, ir::ExprRef>> assigns;
    for (const auto& [f, v] : changed) assigns.push_back({f, at_entry(v)});
    std::vector<sym::HashObligation> obligations = r.obligations;
    for (sym::HashObligation& o : obligations) {
      for (ir::ExprRef& k : o.key_exprs) k = at_entry(k);
    }

    // Phase A: snapshot every @field the encoded expressions mention.
    std::unordered_set<ir::FieldId> mentioned;
    for (ir::ExprRef c : conds) ir::collect_fields(c, mentioned);
    for (auto& [f, v] : assigns) ir::collect_fields(v, mentioned);
    for (auto& o : obligations) {
      for (ir::ExprRef k : o.key_exprs) ir::collect_fields(k, mentioned);
    }
    cfg::NodeId cur = entry;
    auto link_next = [&](cfg::NodeId n) {
      g_.node(n).instance = instance_;
      g_.link(cur, n);
      cur = n;
    };
    std::vector<ir::FieldId> snaps;
    for (ir::FieldId f : mentioned) {
      auto it = snapshot_of_.find(f);
      if (it != snapshot_of_.end()) snaps.push_back(f);
    }
    sort_fields_by_name(snaps, ctx_.fields);
    for (ir::FieldId at : snaps) {
      ir::FieldId orig = snapshot_of_.at(at);
      link_next(g_.add(ir::Stmt::assign(at, ctx_.var(orig))));
    }

    // Phase B: hash definitions (into their fresh placeholders).
    for (const sym::HashObligation& o : obligations) {
      cfg::HashStmt h;
      h.dest = o.placeholder;
      h.algo = o.algo;
      h.key_exprs = o.key_exprs;
      link_next(g_.add_hash(std::move(h)));
    }

    // Guard: one predicate node with the whole path condition.
    link_next(g_.add(ir::Stmt::assume(ctx_.arena.all_of(conds))));

    // Phase C: the path's overall effects (order-independent: right-hand
    // sides only mention snapshots, placeholders and untouched inputs).
    for (const auto& [f, v] : assigns) {
      link_next(g_.add(ir::Stmt::assign(f, v)));
    }
    g_.link(cur, exit);
  }

  // Snapshot field ("@<name>@<inst>") for `f`, record reverse mapping.
  ir::FieldId snapshot_fid(ir::FieldId f) {
    auto it = snapshot_for_.find(f);
    if (it != snapshot_for_.end()) return it->second;
    int w = ctx_.fields.width(f);
    ir::FieldId at =
        ctx_.fields.intern("@" + ctx_.fields.name(f) + "@" + inst_name_, w);
    snapshot_for_.emplace(f, at);
    snapshot_of_.emplace(at, f);
    return at;
  }

  // Registers seed snapshots (fields seeded to @f by the summarizer).
  void note_seed_snapshot(ir::FieldId at_field, ir::FieldId orig) {
    snapshot_of_.emplace(at_field, orig);
    snapshot_for_.emplace(orig, at_field);
  }

 private:
  ir::Context& ctx_;
  cfg::Cfg& g_;
  int instance_;
  const std::string& inst_name_;
  const std::unordered_map<ir::FieldId, ir::ExprRef>& seeds_;
  std::unordered_map<ir::FieldId, ir::FieldId> snapshot_for_;  // f -> @f
  std::unordered_map<ir::FieldId, ir::FieldId> snapshot_of_;   // @f -> f
};

}  // namespace

namespace {

// Everything the explore phase of one pipeline produces, kept until the
// (sequential) encode phase splices it into the graph.
struct InstanceWork {
  PipelineSummary ps;
  std::vector<sym::PathResult> internal;
  std::unordered_map<ir::FieldId, ir::ExprRef> seeds;
  // (@field, field) pairs, in seeding order, replayed into the encoder.
  std::vector<std::pair<ir::FieldId, ir::FieldId>> seed_snaps;
  bool resumed = false;  // restored from SummaryHooks::resume
};

// Pipeline dependency: k depends on j when j's exit reaches k's entry in
// the original graph (then j's summarized branches lie inside k's
// pre-condition region and must exist before k's explore phase).
std::vector<std::vector<size_t>> instance_deps(const cfg::Cfg& g) {
  const size_t n = g.instances().size();
  std::vector<std::vector<size_t>> deps(n);
  for (size_t j = 0; j < n; ++j) {
    // Forward reachability from j's exit.
    std::vector<bool> seen(g.size(), false);
    std::vector<cfg::NodeId> work{g.instances()[j].exit};
    seen[g.instances()[j].exit] = true;
    while (!work.empty()) {
      cfg::NodeId cur = work.back();
      work.pop_back();
      for (cfg::NodeId s : g.node(cur).succ) {
        if (!seen[s]) {
          seen[s] = true;
          work.push_back(s);
        }
      }
    }
    for (size_t k = 0; k < n; ++k) {
      if (k != j && seen[g.instances()[k].entry]) deps[k].push_back(j);
    }
  }
  return deps;
}

}  // namespace

SummaryResult summarize(ir::Context& ctx, const cfg::Cfg& original,
                        const SummaryOptions& opts) {
  SummaryResult result;
  result.graph = original;  // working copy
  cfg::Cfg& g = result.graph;
  const size_t n = g.instances().size();
  if (n == 0) return result;

  // Explore one pipeline: pre-condition, seeding, body exploration. Reads
  // the graph and interns fields/expressions, but never mutates the graph —
  // safe to run concurrently for independent pipelines.
  auto explore = [&](size_t k, InstanceWork& w) {
    const cfg::InstanceInfo& info = g.instances()[k];
    obs::Span span("summary " + info.name, "summary");
    auto t0 = std::chrono::steady_clock::now();
    w.ps.instance = info.name;
    w.ps.paths_before = g.count_instance_paths(static_cast<int>(k));

    // Checkpoint resume: a prior run already explored this pipeline under
    // an identical graph (content-key guarded by the checkpoint layer);
    // restore its paths and seeds and let the sequential encode phase
    // splice them as usual. paths_before is recomputed — it is a pure
    // function of the graph and cheaper than serializing a BigCount.
    if (opts.hooks != nullptr && opts.hooks->resume != nullptr) {
      auto it = opts.hooks->resume->find(info.name);
      if (it != opts.hooks->resume->end()) {
        const SummaryUnit& u = it->second;
        w.resumed = true;
        w.ps.paths_after = u.paths_after;
        w.ps.smt_checks = u.smt_checks;
        w.ps.smt_skipped = u.smt_skipped;
        w.ps.seconds = u.seconds;
        w.internal = u.internal;
        for (const SummaryUnit::SeedSnap& s : u.seed_snaps) {
          ir::FieldId at = ctx.fields.intern(s.at, s.width);
          ir::FieldId orig = ctx.fields.intern(s.orig, s.width);
          w.seed_snaps.emplace_back(at, orig);
          w.seeds.emplace(orig, ctx.arena.field(at, s.width));
        }
        span.arg("resumed", uint64_t{1});
        return;
      }
    }

    // 1. Public pre-condition (Algorithm 2 lines 4–7): exact path
    // enumeration, falling back to the dataflow meet on explosion.
    PreCondition pc;
    if (opts.precondition_filtering) {
      if (opts.precondition_mode == SummaryOptions::PreconditionMode::kDataflow) {
        pc = compute_precondition(ctx, g, info.entry);
      } else {
        std::optional<PreCondition> exact = compute_precondition_by_enumeration(
            ctx, g, info.entry, opts.max_precondition_paths, &w.ps.smt_checks,
            "pre." + info.name, opts.static_pruning, &w.ps.smt_skipped,
            opts.cancel, opts.shared_pc_cache);
        pc = exact ? std::move(*exact)
                   : compute_precondition(ctx, g, info.entry);
      }
    }

    // 2. Symbolic execution within the pipeline (line 9), seeded so that
    // every expression it produces is in pipeline-entry terms.
    sym::EngineOptions eopts;
    eopts.start = info.entry;
    eopts.stop = info.exit;
    eopts.use_z3 = opts.use_z3;
    eopts.check_every_predicate = opts.check_every_predicate;
    eopts.fresh_ns = info.name;
    eopts.static_pruning = opts.static_pruning;
    eopts.cancel = opts.cancel;
    if (opts.shared_pc_cache != nullptr) {
      eopts.pc_cache = true;
      eopts.shared_pc_cache = opts.shared_pc_cache;
    }
    // Per-instance dataflow facts, computed from the pipeline's entry with a
    // TOP boundary — valid for any seeds/pre-conditions rooted there.
    analysis::Facts facts;
    if (opts.static_pruning && !opts.check_every_predicate) {
      facts = analysis::compute_facts(ctx, g, info.entry);
      eopts.facts = &facts;
    }
    sym::Engine eng(ctx, g, eopts);
    for (ir::ExprRef c : pc.conds) eng.add_precondition(c);
    auto seed_snapshot = [&](ir::FieldId f) {
      int width = ctx.fields.width(f);
      ir::FieldId at =
          ctx.fields.intern("@" + ctx.fields.name(f) + "@" + info.name, width);
      w.seed_snaps.emplace_back(at, f);
      ir::ExprRef at_var = ctx.arena.field(at, width);
      w.seeds.emplace(f, at_var);
      eng.seed_value(f, at_var);
      return at_var;
    };
    // Seed in field-name order: FieldId numbering is interning order,
    // which is scheduling-dependent under concurrent exploration.
    std::vector<ir::FieldId> tops(pc.tops.begin(), pc.tops.end());
    sort_fields_by_name(tops, ctx.fields);
    for (ir::FieldId f : tops) {
      ir::ExprRef at_var = seed_snapshot(f);
      auto vs = pc.value_sets.find(f);
      if (vs != pc.value_sets.end()) {
        // Merged per-packet-type pre-condition: the entry value is one of
        // the constants the predecessor paths produce (paper §7).
        std::vector<ir::ExprRef> eqs;
        for (uint64_t v : vs->second) {
          eqs.push_back(ctx.arena.cmp(
              ir::CmpOp::kEq, at_var,
              ctx.arena.constant(v, ctx.fields.width(f))));
        }
        eng.add_precondition(ctx.arena.any_of(eqs));
      }
    }
    std::vector<ir::FieldId> known;
    known.reserve(pc.values.size());
    for (const auto& [f, v] : pc.values) known.push_back(f);
    sort_fields_by_name(known, ctx.fields);
    for (ir::FieldId f : known) {
      // Known entry value: seed the snapshot and teach the solver the
      // binding @f == V_pub(f).
      ir::ExprRef at_var = seed_snapshot(f);
      eng.add_precondition(
          ctx.arena.cmp(ir::CmpOp::kEq, at_var, pc.values.at(f)));
    }

    eng.run([&](const sym::PathResult& r) { w.internal.push_back(r); });

    w.ps.paths_after = w.internal.size();
    w.ps.smt_checks += eng.stats().solver.checks;
    w.ps.smt_skipped += eng.stats().static_prunes + eng.stats().skipped_checks;
    w.ps.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    span.arg("paths_after", w.ps.paths_after);
    span.arg("smt_checks", w.ps.smt_checks);
    if (obs::metrics_enabled()) {
      obs::metrics().counter("summary.pipelines").add();
      obs::metrics().counter("summary.smt_checks").add(w.ps.smt_checks);
      obs::metrics()
          .histogram("summary.pipeline_us")
          .observe(static_cast<uint64_t>(w.ps.seconds * 1e6));
      // "Paths eliminated" per pipeline: original subgraph paths minus the
      // surviving summarized branches. The original count can exceed any
      // fixed-width integer (that is the point of summarization), so clamp
      // the eliminated count into a saturating uint64.
      if (w.ps.paths_before.is_exact() &&
          w.ps.paths_before.exact() >= w.ps.paths_after) {
        obs::metrics()
            .counter("summary.paths_eliminated")
            .add(w.ps.paths_before.exact() - w.ps.paths_after);
      } else {
        obs::metrics().counter("summary.paths_eliminated_saturated").add();
      }
    }
  };

  // Encode one explored pipeline: replace the subgraph with the summarized
  // branches (lines 11–25). Mutates the graph — runs sequentially, in
  // instance order, so node ids are thread-count-independent.
  auto encode = [&](size_t k, InstanceWork& w) {
    const cfg::InstanceInfo& info = g.instances()[k];
    PathEncoder encoder(ctx, g, static_cast<int>(k), info.name, w.seeds);
    for (const auto& [at, f] : w.seed_snaps) encoder.note_seed_snapshot(at, f);
    g.node(info.entry).succ.clear();
    if (w.internal.empty()) {
      // No packet can traverse this pipeline: a false guard keeps the
      // subgraph single-entry single-exit while pruning all paths.
      cfg::NodeId dead = g.add(ir::Stmt::assume(ctx.arena.bool_const(false)));
      g.node(dead).instance = static_cast<int>(k);
      g.link(info.entry, dead);
      g.link(dead, info.exit);
    }
    for (const sym::PathResult& r : w.internal) {
      encoder.encode(r, info.entry, info.exit);
    }
  };

  // Builds the checkpointable form of one explored pipeline (names, not
  // FieldIds — numbering is scheduling-dependent).
  auto to_unit = [&](const InstanceWork& w) {
    SummaryUnit u;
    u.instance = w.ps.instance;
    u.paths_after = w.ps.paths_after;
    u.smt_checks = w.ps.smt_checks;
    u.smt_skipped = w.ps.smt_skipped;
    u.seconds = w.ps.seconds;
    u.internal = w.internal;
    for (const auto& [at, f] : w.seed_snaps) {
      SummaryUnit::SeedSnap s;
      s.at = ctx.fields.name(at);
      s.orig = ctx.fields.name(f);
      s.width = ctx.fields.width(at);
      u.seed_snaps.push_back(std::move(s));
    }
    return u;
  };

  // Process in dependency waves: explore a wave's pipelines concurrently
  // (read-only on the graph), then splice their summaries sequentially.
  const std::vector<std::vector<size_t>> deps = instance_deps(g);
  std::vector<InstanceWork> work(n);
  std::vector<bool> done(n, false);
  util::ThreadPool pool(util::resolve_threads(opts.threads));
  size_t completed = 0;
  auto cancelled = [&] {
    return opts.cancel != nullptr && opts.cancel->cancelled();
  };
  while (completed < n && !result.cancelled) {
    std::vector<size_t> wave;
    for (size_t k = 0; k < n; ++k) {
      if (done[k]) continue;
      bool ready = true;
      for (size_t j : deps[k]) ready &= done[j];
      if (ready) wave.push_back(k);
    }
    util::check(!wave.empty(), "summarize: cyclic pipeline dependencies");
    if (cancelled()) {
      result.cancelled = true;
      break;
    }
    pool.run(wave.size(), [&](size_t i) { explore(wave[i], work[wave[i]]); });
    // A cancel during the wave leaves *partial* explorations; splicing one
    // would silently shrink the summarized graph, so the whole wave is
    // discarded and the result marked cancelled.
    if (cancelled()) {
      result.cancelled = true;
      break;
    }
    for (size_t k : wave) {
      encode(k, work[k]);
      done[k] = true;
      ++completed;
      if (work[k].resumed) ++result.resumed_pipelines;
      if (opts.hooks != nullptr && opts.hooks->on_unit) {
        opts.hooks->on_unit(k, to_unit(work[k]));
      }
    }
  }
  for (size_t k = 0; k < n; ++k) {
    if (!done[k]) continue;  // cancelled before completion
    result.total_smt_checks += work[k].ps.smt_checks;
    result.total_smt_skipped += work[k].ps.smt_skipped;
    result.per_pipeline.push_back(std::move(work[k].ps));
  }
  return result;
}

}  // namespace meissa::summary
