// Code summary — the paper's core contribution (§3.3, Algorithm 2).
//
// Processes pipeline instances in topological order. For each pipeline it
//   1. computes the *public pre-condition* (C_pub, V_pub): constraints and
//      value bindings shared by every valid path from the CFG entry to the
//      pipeline's entry (inter-pipeline public pre-condition filtering),
//   2. symbolically executes the pipeline body under that pre-condition,
//      collecting its valid internal paths (intra-pipeline redundancy
//      elimination), and
//   3. replaces the pipeline subgraph with one compact branch per valid
//      path: entry-value snapshots (`@field@inst <- field`), hash
//      definitions, a single predicate node carrying the path's guard
//      conjunction, and the path's overall assignment effects — the
//      auxiliary-variable encoding of §3.3 that preserves simultaneous-
//      update atomicity.
//
// The pass preserves the set of valid paths and their path conditions
// (paper §3.4); tests/summary_test.cpp checks this property on randomized
// multi-pipeline programs.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <optional>

#include "sym/engine.hpp"

namespace meissa::summary {

// One pipeline's explore-phase output in checkpointable form: everything
// the sequential encode phase needs to splice the pipeline without
// re-exploring it. Field references are by *name* (FieldId numbering is
// interning-order — i.e. scheduling — dependent), expressions are live
// ExprRefs in the owning context; the driver's checkpoint layer turns
// those into bytes and back.
struct SummaryUnit {
  std::string instance;
  uint64_t paths_after = 0;
  uint64_t smt_checks = 0;
  uint64_t smt_skipped = 0;
  double seconds = 0.0;  // the original explore's cost (kept over resumes)
  std::vector<sym::PathResult> internal;
  // (@snapshot name, original name, width), in seeding order.
  struct SeedSnap {
    std::string at;
    std::string orig;
    int width = 0;
  };
  std::vector<SeedSnap> seed_snaps;
};

struct SummaryHooks {
  // Fired from the sequential encode loop — a wave-boundary point, so the
  // unit is complete and every earlier unit has been spliced — with the
  // pipeline's index (instance order) and its checkpointable work.
  std::function<void(size_t, const SummaryUnit&)> on_unit;
  // Prior units by instance name; their pipelines skip the explore phase
  // entirely and splice the restored paths.
  const std::unordered_map<std::string, SummaryUnit>* resume = nullptr;
};

struct SummaryOptions {
  // Inter-pipeline public pre-condition filtering (ablatable; intra-
  // pipeline redundancy elimination always runs).
  bool precondition_filtering = true;
  bool use_z3 = false;
  bool check_every_predicate = false;  // paper-faithful Algorithm 1/2 mode
  // Pre-condition computation: the default dataflow meet costs O(graph)
  // and no solver calls; exact per-path enumeration (Algorithm 2 lines
  // 4-7 verbatim) costs O(k * m^k) and is available for cross-checking.
  enum class PreconditionMode { kDataflow, kEnumeration };
  PreconditionMode precondition_mode = PreconditionMode::kEnumeration;
  // Enumeration mode: beyond this many prefix paths, fall back to the
  // dataflow meet.
  size_t max_precondition_paths = 4096;
  // Worker threads for the per-pipeline explore phase (1 = sequential).
  // Pipelines are grouped into dependency waves (instance k depends on j
  // when j's exit reaches k's entry); each wave's pre-condition + body
  // explorations run concurrently, then the graph splices are applied
  // sequentially in instance order — so the summarized graph (node ids
  // included) is identical for every thread count.
  int threads = 1;
  // Static pruning for the body/enumeration engines: per-instance dataflow
  // facts (validity lattice and value ranges from the instance entry) plus
  // the per-path abstract environment decide predicates before the solver.
  // Solver-equivalent, so the summarized graph is identical on/off.
  bool static_pruning = true;
  // Cooperative cancellation, polled by every explore engine and between
  // waves. A cancelled wave is never spliced (a partial exploration would
  // silently change the graph); SummaryResult::cancelled reports it and
  // the partially-summarized graph must not be used. Must outlive the run.
  const util::CancelToken* cancel = nullptr;
  // Checkpoint/resume hooks (may be null). Must outlive the run.
  const SummaryHooks* hooks = nullptr;
  // Externally-owned path-condition verdict cache, handed to every
  // pre-condition and body engine (see sym::EngineOptions::shared_pc_cache
  // for the cross-engine soundness argument). The incremental re-testing
  // session warms it on the baseline run so updates re-pay only the checks
  // a change actually altered. Must outlive the run.
  smt::PathCondCache* shared_pc_cache = nullptr;
};

// The public pre-condition of one pipeline: constraints over program
// inputs, plus per-field knowledge of the value every valid path assigns
// (absent + not top = the field is untouched, i.e. still the input symbol).
struct PreCondition {
  std::vector<ir::ExprRef> conds;
  std::unordered_map<ir::FieldId, ir::ExprRef> values;
  std::unordered_set<ir::FieldId> tops;  // paths disagree: value unknown
  // For tops whose per-path values are all constants: the merged value set
  // (the paper's §7 "group pre-conditions by packet type ... merge them
  // into a full summary", kept as one disjunctive pre-condition).
  std::unordered_map<ir::FieldId, std::vector<uint64_t>> value_sets;
};

// Computes the pre-condition at `target` as a forward dataflow meet over
// the DAG (equivalent to intersecting over all entry→target paths as in
// Algorithm 2 lines 4–7, without enumerating them; the meet is the same
// intersection, computed at join points).
PreCondition compute_precondition(ir::Context& ctx, const cfg::Cfg& g,
                                  cfg::NodeId target);

// Primary implementation (Algorithm 2 verbatim): enumerates all valid
// entry→target paths and intersects their constraints and value stacks.
// Returns nullopt when more than `path_limit` prefix paths exist, in which
// case callers fall back to the dataflow meet above. `smt_checks`, when
// non-null, accumulates the solver checks spent on the enumeration.
// `fresh_ns`, when non-empty, namespaces the enumeration's fresh symbols
// (deterministic names under concurrent summarization). `smt_skipped`,
// when non-null, accumulates the checks static pruning avoided.
std::optional<PreCondition> compute_precondition_by_enumeration(
    ir::Context& ctx, const cfg::Cfg& g, cfg::NodeId target,
    size_t path_limit, uint64_t* smt_checks = nullptr,
    const std::string& fresh_ns = {}, bool static_pruning = true,
    uint64_t* smt_skipped = nullptr,
    const util::CancelToken* cancel = nullptr,
    smt::PathCondCache* shared_pc_cache = nullptr);

struct PipelineSummary {
  std::string instance;
  util::BigCount paths_before;  // possible paths in the original subgraph
  uint64_t paths_after = 0;     // summarized (valid) paths
  uint64_t smt_checks = 0;      // solver checks spent summarizing
  double seconds = 0.0;
  uint64_t smt_skipped = 0;     // checks avoided by static pruning
};

struct SummaryResult {
  cfg::Cfg graph;  // the summarized CFG
  std::vector<PipelineSummary> per_pipeline;
  uint64_t total_smt_checks = 0;
  uint64_t total_smt_skipped = 0;
  // SummaryOptions::cancel fired: the graph is partially summarized and
  // must not be explored; per_pipeline covers completed pipelines only.
  bool cancelled = false;
  // Pipelines restored from SummaryHooks::resume (explore skipped).
  uint64_t resumed_pipelines = 0;
};

// Runs code summary over `g` (which must have instance metadata).
SummaryResult summarize(ir::Context& ctx, const cfg::Cfg& g,
                        const SummaryOptions& opts = {});

}  // namespace meissa::summary
