#include "util/faultinject.hpp"

#include <chrono>
#include <new>
#include <thread>

namespace meissa::util {

const char* fault_kind_name(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kAbort:
      return "abort";
    case FaultKind::kAllocFail:
      return "alloc-fail";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kCorrupt:
      return "corrupt";
  }
  return "?";
}

namespace {

bool site_matches(const std::string& pattern, std::string_view site) {
  if (!pattern.empty() && pattern.back() == '*') {
    std::string_view prefix(pattern.data(), pattern.size() - 1);
    return site.substr(0, prefix.size()) == prefix;
  }
  return site == pattern;
}

bool is_data_kind(FaultKind k) {
  return k == FaultKind::kTruncate || k == FaultKind::kCorrupt;
}

uint64_t parse_u64(std::string_view s, std::string_view whole) {
  uint64_t v = 0;
  if (s.empty()) {
    throw ValidationError("fault spec '" + std::string(whole) +
                          "': empty numeric part");
  }
  for (char c : s) {
    if (c < '0' || c > '9') {
      throw ValidationError("fault spec '" + std::string(whole) +
                            "': bad number '" + std::string(s) + "'");
    }
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  return v;
}

}  // namespace

FaultSpec parse_fault_spec(std::string_view text) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == ':') {
      parts.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  if (parts.size() < 2 || parts.size() > 5) {
    throw ValidationError(
        "fault spec '" + std::string(text) +
        "': expected site:kind[:after[:param[:times]]]");
  }
  FaultSpec spec;
  spec.site = std::string(parts[0]);
  if (spec.site.empty()) {
    throw ValidationError("fault spec '" + std::string(text) +
                          "': empty site");
  }
  std::string_view kind = parts[1];
  if (kind == "stall") {
    spec.kind = FaultKind::kStall;
  } else if (kind == "abort") {
    spec.kind = FaultKind::kAbort;
  } else if (kind == "alloc-fail") {
    spec.kind = FaultKind::kAllocFail;
  } else if (kind == "truncate") {
    spec.kind = FaultKind::kTruncate;
  } else if (kind == "corrupt") {
    spec.kind = FaultKind::kCorrupt;
  } else {
    throw ValidationError(
        "fault spec '" + std::string(text) + "': unknown kind '" +
        std::string(kind) +
        "' (stall|abort|alloc-fail|truncate|corrupt)");
  }
  if (parts.size() > 2) spec.after = parse_u64(parts[2], text);
  if (parts.size() > 3) spec.param = parse_u64(parts[3], text);
  if (parts.size() > 4) spec.times = parse_u64(parts[4], text);
  return spec;
}

void FaultInjector::add(FaultSpec spec) {
  std::lock_guard<std::mutex> lk(mu_);
  armed_.push_back(Armed{std::move(spec), 0, 0});
}

bool FaultInjector::empty() const {
  std::lock_guard<std::mutex> lk(mu_);
  return armed_.empty();
}

uint64_t FaultInjector::fired() const {
  std::lock_guard<std::mutex> lk(mu_);
  return fired_;
}

std::vector<FaultInjector::Armed*> FaultInjector::due(std::string_view site,
                                                      bool data_site) {
  // Caller holds mu_.
  std::vector<Armed*> out;
  for (Armed& a : armed_) {
    if (is_data_kind(a.spec.kind) != data_site) continue;
    if (!site_matches(a.spec.site, site)) continue;
    ++a.hits;
    if (a.hits <= a.spec.after) continue;
    if (a.spec.times != 0 && a.fired >= a.spec.times) continue;
    ++a.fired;
    ++fired_;
    out.push_back(&a);
  }
  return out;
}

bool FaultInjector::hit(std::string_view site, const CancelToken* cancel) {
  std::vector<Armed*> fire;
  {
    std::lock_guard<std::mutex> lk(mu_);
    fire = due(site, /*data_site=*/false);
  }
  bool any = false;
  for (Armed* a : fire) {
    any = true;
    switch (a->spec.kind) {
      case FaultKind::kStall: {
        // Sleep in short slices so a watchdog-tripped CancelToken breaks
        // the stall promptly (a stalled-for-real shard cannot do that —
        // that is exactly the hang the supervisor's deadline covers).
        auto end = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(a->spec.param);
        while (std::chrono::steady_clock::now() < end) {
          if (cancel != nullptr && cancel->cancelled()) break;
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        break;
      }
      case FaultKind::kAbort:
        throw InjectedFaultError(std::string(site));
      case FaultKind::kAllocFail:
        throw std::bad_alloc();
      case FaultKind::kTruncate:
      case FaultKind::kCorrupt:
        break;  // data kinds never reach here
    }
  }
  return any;
}

bool FaultInjector::mutate(std::string_view site,
                           std::vector<uint8_t>& bytes) {
  std::vector<Armed*> fire;
  {
    std::lock_guard<std::mutex> lk(mu_);
    fire = due(site, /*data_site=*/true);
  }
  bool any = false;
  for (Armed* a : fire) {
    any = true;
    if (a->spec.kind == FaultKind::kTruncate) {
      size_t drop = a->spec.param == 0 ? 1 : static_cast<size_t>(a->spec.param);
      if (drop > bytes.size()) drop = bytes.size();
      bytes.resize(bytes.size() - drop);
    } else {  // kCorrupt
      if (!bytes.empty()) {
        bytes[static_cast<size_t>(a->spec.param) % bytes.size()] ^= 0x40;
      }
    }
  }
  return any;
}

}  // namespace meissa::util
