#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace meissa::util {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

std::string hex(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default: {
        // Unsigned before the width test: a signed char >= 0x80 must not be
        // mistaken for (or sign-extended into) a control escape.
        const auto u = static_cast<unsigned char>(c);
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", u);
          out += buf;
        } else {
          out += c;
        }
      }
    }
  }
  return out;
}

}  // namespace meissa::util
