// Small string helpers used by the DSL parsers and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace meissa::util {

// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string_view> split(std::string_view s, char sep);

// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

// True when `s` starts with / ends with the given prefix/suffix.
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Renders v as 0x-prefixed hex.
std::string hex(uint64_t v);

}  // namespace meissa::util
