// Small string helpers used by the DSL parsers and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace meissa::util {

// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string_view> split(std::string_view s, char sep);

// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

// True when `s` starts with / ends with the given prefix/suffix.
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Renders v as 0x-prefixed hex.
std::string hex(uint64_t v);

// Escapes `s` for embedding inside a JSON string literal: quotes,
// backslashes, and every control character below 0x20 (\n, \t, \r, \b, \f
// named; the rest as \u00XX). The one escaping routine behind all JSON the
// tools emit (reports, m4lint --json, metrics, traces) — emitting a raw
// string field anywhere else is a bug.
std::string json_escape(std::string_view s);

}  // namespace meissa::util
