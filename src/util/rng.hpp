// Deterministic pseudo-random number generation.
//
// All randomized components (rule-set generators, property tests, workload
// synthesis) take an explicit Rng so runs are reproducible from a seed.
#pragma once

#include <cstdint>
#include "util/bits.hpp"

namespace meissa::util {

// splitmix64: tiny, fast, and statistically solid for test-data generation.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept
      : state_(seed) {}

  uint64_t next() noexcept {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform value in [0, bound). bound must be > 0.
  uint64_t below(uint64_t bound) noexcept { return next() % bound; }

  // Uniform value in [lo, hi] inclusive.
  uint64_t range(uint64_t lo, uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  // Uniform `width`-bit value.
  uint64_t bits(int width) noexcept { return truncate(next(), width); }

  // Bernoulli trial with probability num/den.
  bool chance(uint64_t num, uint64_t den) noexcept {
    return below(den) < num;
  }

 private:
  uint64_t state_;
};

}  // namespace meissa::util
