#include "util/big_count.hpp"

#include <cstdio>

namespace meissa::util {

std::string BigCount::str() const {
  if (is_zero()) return "0";
  if (has_exact_) return std::to_string(exact_);
  char buf[32];
  std::snprintf(buf, sizeof buf, "10^%.1f", log10_);
  return buf;
}

}  // namespace meissa::util
