// A small reusable worker pool for the parallel generation pipeline
// (code-summary passes and the sharded final DFS).
//
// Design constraints, in order: determinism of the *callers* (the pool
// itself never imposes an ordering — callers shard work deterministically
// and merge results in shard order), exception safety (the first exception
// thrown by a task is captured and re-thrown on the submitting thread),
// and zero thread overhead in the single-threaded case (`run` with one
// worker executes inline).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace meissa::util {

// Resolves a thread-count option: n > 0 is taken literally; 0 means
// std::thread::hardware_concurrency() (at least 1).
int resolve_threads(int requested);

class ThreadPool {
 public:
  // Spawns `threads - 1` workers (the submitting thread participates in
  // run()); threads <= 1 spawns none and everything runs inline.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues one task. Tasks may be submitted from task bodies.
  void submit(std::function<void()> fn);

  // Blocks until the queue is empty and every worker is idle, helping to
  // drain the queue from the calling thread. Re-throws the first task
  // exception (subsequent tasks still ran; their exceptions are dropped).
  void wait_idle();

  // Convenience: submit fn(0..n-1) and wait_idle(). With <= 1 total
  // threads this runs the loop inline on the calling thread, in order.
  // Exception contract matches the pooled path at every thread count:
  // all n tasks run, and the first exception is rethrown afterwards.
  void run(size_t n, const std::function<void(size_t)>& fn);

  // Total parallelism (workers + the submitting thread).
  int size() const noexcept { return static_cast<int>(workers_.size()) + 1; }

 private:
  void worker_loop();
  // Pops and runs one task; returns false when the queue was empty.
  bool run_one(std::unique_lock<std::mutex>& lk);

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for tasks
  std::condition_variable idle_cv_;  // wait_idle waits for quiescence
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t running_ = 0;  // tasks currently executing
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace meissa::util
