#include "util/supervise.hpp"

namespace meissa::util {

Supervisor::Supervisor(SuperviseOptions opts) : opts_(opts) {
  if (opts_.enabled()) {
    if (opts_.poll_interval_ms == 0) opts_.poll_interval_ms = 1;
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

Supervisor::~Supervisor() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

Supervisor::Task* Supervisor::begin(std::string name) {
  std::lock_guard<std::mutex> lk(mu_);
  Task* slot = nullptr;
  for (Task& t : tasks_) {
    if (!t.active_.load(std::memory_order_relaxed)) {
      slot = &t;
      break;
    }
  }
  if (slot == nullptr) slot = &tasks_.emplace_back();
  slot->name_ = std::move(name);
  slot->beats_.store(0, std::memory_order_relaxed);
  slot->tripped_.store(false, std::memory_order_relaxed);
  slot->token_.reset();
  slot->seen_beats_ = 0;
  slot->started_ = std::chrono::steady_clock::now();
  slot->last_change_ = slot->started_;
  slot->active_.store(true, std::memory_order_release);
  ++stats_.tasks;
  return slot;
}

bool Supervisor::end(Task* t) {
  if (t == nullptr) return false;
  std::lock_guard<std::mutex> lk(mu_);
  const bool tripped = t->tripped();
  t->active_.store(false, std::memory_order_release);
  ++stats_.completed;
  return tripped;
}

SuperviseStats Supervisor::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void Supervisor::watchdog_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    cv_.wait_for(lk, std::chrono::milliseconds(opts_.poll_interval_ms),
                 [this] { return stop_; });
    if (stop_) return;
    const auto now = std::chrono::steady_clock::now();
    for (Task& t : tasks_) {
      if (!t.active_.load(std::memory_order_acquire)) continue;
      if (t.tripped()) continue;
      const uint64_t beats = t.beats_.load(std::memory_order_relaxed);
      if (beats != t.seen_beats_) {
        t.seen_beats_ = beats;
        t.last_change_ = now;
      }
      const auto ms = [](auto d) {
        return std::chrono::duration_cast<std::chrono::milliseconds>(d)
            .count();
      };
      if (opts_.deadline_ms != 0 &&
          ms(now - t.started_) >= static_cast<int64_t>(opts_.deadline_ms)) {
        t.tripped_.store(true, std::memory_order_relaxed);
        t.token_.cancel();
        ++stats_.deadline_trips;
      } else if (opts_.stall_timeout_ms != 0 &&
                 ms(now - t.last_change_) >=
                     static_cast<int64_t>(opts_.stall_timeout_ms)) {
        t.tripped_.store(true, std::memory_order_relaxed);
        t.token_.cancel();
        ++stats_.stalls;
      }
    }
  }
}

}  // namespace meissa::util
