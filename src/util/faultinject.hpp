// Runtime fault injection for the crash-safety test surface (mirrors the
// validator fault injector of analysis/validate: faults are *requested*
// by tests/CLI flags, never ambient).
//
// A FaultInjector is an instance (not a global): the owner of a run wires
// it into GenOptions, so concurrent tests are isolated. Instrumented code
// calls hit(site) at execution points and mutate(site, bytes) where data
// is about to be persisted; each armed FaultSpec matches a site by name
// (exact, or prefix with a trailing '*') and fires a bounded number of
// times, so a retried work unit sees the world heal deterministically.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/cancel.hpp"
#include "util/error.hpp"

namespace meissa::util {

enum class FaultKind : uint8_t {
  kStall,      // sleep `param` ms at the site (polls a CancelToken)
  kAbort,      // throw InjectedFaultError at the site
  kAllocFail,  // throw std::bad_alloc at the site
  kTruncate,   // drop the last `param` bytes of the site's buffer (min 1)
  kCorrupt,    // flip a bit in the byte at offset `param` (mod size)
};

const char* fault_kind_name(FaultKind k) noexcept;

// Thrown by kAbort faults; callers that supervise work units catch exactly
// this type (anything else is a real bug and must propagate).
class InjectedFaultError : public Error {
 public:
  explicit InjectedFaultError(const std::string& site)
      : Error("injected fault at " + site) {}
};

struct FaultSpec {
  std::string site;  // exact site name, or prefix ending in '*'
  FaultKind kind = FaultKind::kAbort;
  uint64_t after = 0;  // matching hits to let pass before firing
  uint64_t param = 0;  // stall ms / truncate bytes / corrupt offset
  uint64_t times = 1;  // firings before the spec disarms (0 = unlimited)
};

// Parses "site:kind[:after[:param[:times]]]" (the --inject flag syntax);
// throws ValidationError on malformed input.
FaultSpec parse_fault_spec(std::string_view text);

class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void add(FaultSpec spec);
  bool empty() const;

  // Execution-point hook. kStall sleeps in short slices, re-checking
  // `cancel` so a watchdog can break the stall; kAbort / kAllocFail throw.
  // Returns true when any fault fired at this site.
  bool hit(std::string_view site, const CancelToken* cancel = nullptr);

  // Data hook: applies armed kTruncate / kCorrupt faults for `site` to
  // `bytes`. Returns true when the buffer was damaged.
  bool mutate(std::string_view site, std::vector<uint8_t>& bytes);

  // Total faults fired so far (all sites).
  uint64_t fired() const;

 private:
  mutable std::mutex mu_;
  struct Armed {
    FaultSpec spec;
    uint64_t hits = 0;
    uint64_t fired = 0;
  };
  // Returns the matching spec due to fire now, bumping counters.
  // `data_site` selects buffer faults vs execution faults.
  std::vector<Armed*> due(std::string_view site, bool data_site);
  std::vector<Armed> armed_;
  uint64_t fired_ = 0;
};

}  // namespace meissa::util
