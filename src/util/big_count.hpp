// Arbitrary-magnitude path counters.
//
// Static path counts of production data planes overflow every integer type
// (the paper reports programs with 10^197 possible paths). BigCount tracks
// counts exactly while they fit in a uint64_t and as a base-10 logarithm
// beyond that, which is all Figures 11c/12c need.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace meissa::util {

class BigCount {
 public:
  BigCount() noexcept = default;
  static BigCount zero() noexcept { return BigCount(); }
  static BigCount one() noexcept { return of(1); }

  static BigCount of(uint64_t v) noexcept {
    BigCount c;
    c.exact_ = v;
    c.has_exact_ = true;
    c.log10_ = v == 0 ? -std::numeric_limits<double>::infinity()
                      : std::log10(static_cast<double>(v));
    return c;
  }

  bool is_zero() const noexcept { return has_exact_ && exact_ == 0; }

  // True while the count still fits in a uint64_t.
  bool is_exact() const noexcept { return has_exact_; }
  uint64_t exact() const noexcept { return exact_; }

  // log10 of the count; -inf for zero.
  double log10() const noexcept { return log10_; }

  // The count as a double; exact when small, +inf beyond double range.
  double value() const noexcept {
    if (has_exact_) return static_cast<double>(exact_);
    return std::pow(10.0, log10_);
  }

  BigCount operator*(const BigCount& o) const noexcept {
    if (is_zero() || o.is_zero()) return zero();
    BigCount c;
    if (has_exact_ && o.has_exact_ &&
        exact_ <= std::numeric_limits<uint64_t>::max() / o.exact_) {
      return of(exact_ * o.exact_);
    }
    c.has_exact_ = false;
    c.log10_ = log10_ + o.log10_;
    return c;
  }

  BigCount& operator*=(const BigCount& o) noexcept { return *this = *this * o; }

  BigCount operator+(const BigCount& o) const noexcept {
    if (is_zero()) return o;
    if (o.is_zero()) return *this;
    if (has_exact_ && o.has_exact_ &&
        exact_ <= std::numeric_limits<uint64_t>::max() - o.exact_) {
      return of(exact_ + o.exact_);
    }
    // log10(a + b) = max + log10(1 + 10^(min - max))
    double hi = log10_ > o.log10_ ? log10_ : o.log10_;
    double lo = log10_ > o.log10_ ? o.log10_ : log10_;
    BigCount c;
    c.has_exact_ = false;
    c.log10_ = hi + std::log10(1.0 + std::pow(10.0, lo - hi));
    return c;
  }

  BigCount& operator+=(const BigCount& o) noexcept { return *this = *this + o; }

  // Human-readable form: exact when small, "10^k" when astronomical.
  std::string str() const;

 private:
  uint64_t exact_ = 0;
  bool has_exact_ = true;
  double log10_ = -std::numeric_limits<double>::infinity();
};

}  // namespace meissa::util
