// Bit-manipulation helpers for fixed-width (1..64 bit) values.
#pragma once

#include <cstdint>
#include "util/error.hpp"

namespace meissa::util {

// Maximum bit-vector width supported throughout Meissa. Wider protocol
// fields (e.g. IPv6 addresses) are modeled as multiple adjacent fields.
inline constexpr int kMaxWidth = 64;

// All-ones mask for a `width`-bit value. width must be in [1, 64].
constexpr uint64_t mask_bits(int width) noexcept {
  return width >= 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
}

// Truncates `v` to `width` bits.
constexpr uint64_t truncate(uint64_t v, int width) noexcept {
  return v & mask_bits(width);
}

// True when `v` fits in `width` bits without truncation.
constexpr bool fits(uint64_t v, int width) noexcept {
  return truncate(v, width) == v;
}

// Extracts the bit at position `i` (0 = least significant).
constexpr bool bit_at(uint64_t v, int i) noexcept { return (v >> i) & 1u; }

// Validates a field/constant width, throwing on out-of-range values.
inline void check_width(int width) {
  if (width < 1 || width > kMaxWidth) {
    throw InternalError("bit width out of range [1,64]: " +
                        std::to_string(width));
  }
}

}  // namespace meissa::util
