// Shard supervision: per-task heartbeats, wall-clock deadlines, and a
// watchdog thread that cancels stuck or overdue work via its CancelToken.
//
// Protocol: a worker wraps each work unit in begin()/end(). The unit polls
// task->token() at its safe points (the engine already polls per node) and
// bumps task->heartbeat() as it makes progress. The watchdog polls every
// active task: no heartbeat movement for `stall_timeout_ms` → the task is
// *stalled*; total runtime past `deadline_ms` → *overdue*. Either way the
// watchdog fires the task's token and records the trip; the owner decides
// what a tripped unit means (the engine re-queues it once, then degrades).
//
// The supervisor never kills threads — cancellation is cooperative, which
// is what keeps partial state (arenas, solvers, stats) consistent enough
// to retry the unit on a fresh context.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

#include "util/cancel.hpp"

namespace meissa::util {

struct SuperviseOptions {
  // No heartbeat movement for this long marks a task stalled (0 = off).
  uint64_t stall_timeout_ms = 0;
  // Total per-task wall-clock cap (0 = off).
  uint64_t deadline_ms = 0;
  // Watchdog poll period.
  uint64_t poll_interval_ms = 5;

  bool enabled() const noexcept {
    return stall_timeout_ms != 0 || deadline_ms != 0;
  }
};

struct SuperviseStats {
  uint64_t tasks = 0;
  uint64_t stalls = 0;          // watchdog trips: heartbeat went quiet
  uint64_t deadline_trips = 0;  // watchdog trips: wall-clock cap hit
  uint64_t completed = 0;       // end() calls

  uint64_t trips() const noexcept { return stalls + deadline_trips; }
};

class Supervisor {
 public:
  class Task {
   public:
    // Progress tick; relaxed atomic add, safe from the hot path.
    void heartbeat() noexcept { beats_.fetch_add(1, std::memory_order_relaxed); }
    // The token the supervised unit must poll (and pass to stall sites).
    CancelToken& token() noexcept { return token_; }
    const CancelToken& token() const noexcept { return token_; }
    // True once the watchdog cancelled this task.
    bool tripped() const noexcept {
      return tripped_.load(std::memory_order_relaxed);
    }

   private:
    friend class Supervisor;
    std::string name_;
    std::atomic<uint64_t> beats_{0};
    std::atomic<bool> tripped_{false};
    std::atomic<bool> active_{false};
    CancelToken token_;
    // Watchdog bookkeeping (watchdog thread only).
    uint64_t seen_beats_ = 0;
    std::chrono::steady_clock::time_point started_{};
    std::chrono::steady_clock::time_point last_change_{};
  };

  explicit Supervisor(SuperviseOptions opts = {});
  ~Supervisor();
  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  // Registers a work unit under watch. The returned handle stays valid for
  // the supervisor's lifetime (slots are recycled only after end()).
  Task* begin(std::string name);
  // Unregisters the unit; returns true when the watchdog had tripped it.
  bool end(Task* t);

  SuperviseStats stats() const;
  const SuperviseOptions& options() const noexcept { return opts_; }

 private:
  void watchdog_loop();

  SuperviseOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;  // wakes the watchdog for shutdown
  std::deque<Task> tasks_;      // stable addresses
  SuperviseStats stats_;
  bool stop_ = false;
  std::thread watchdog_;
};

}  // namespace meissa::util
