// Error handling primitives shared by all Meissa modules.
//
// Meissa uses exceptions for genuinely exceptional conditions (malformed
// inputs, internal invariant violations) and plain return values for
// expected outcomes (UNSAT queries, failed test cases).
#pragma once

#include <stdexcept>
#include <string>

namespace meissa::util {

// Base class for all errors thrown by Meissa.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Input that does not conform to the expected language/format.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line)
      : Error("parse error (line " + std::to_string(line) + "): " + what),
        line_(line) {}
  // Column-aware form: `context` is the offending source line, rendered
  // beneath the message with a caret under `column` (1-based).
  ParseError(const std::string& what, int line, int column,
             const std::string& context)
      : Error(annotate(what, line, column, context)),
        line_(line),
        column_(column) {}
  int line() const noexcept { return line_; }
  // 1-based column of the offending token; 0 when unknown.
  int column() const noexcept { return column_; }

 private:
  static std::string annotate(const std::string& what, int line, int column,
                              const std::string& context) {
    std::string msg = "parse error (line " + std::to_string(line) + ", col " +
                      std::to_string(column) + "): " + what;
    if (!context.empty()) {
      msg += "\n  " + context + "\n  ";
      // Tabs in the snippet keep their width-1 rendering here, so the
      // caret stays aligned with how the snippet itself is printed.
      msg.append(column > 1 ? static_cast<size_t>(column - 1) : 0, ' ');
      msg += '^';
    }
    return msg;
  }

  int line_;
  int column_ = 0;
};

// A semantic problem in an otherwise well-formed program (e.g. a table
// matching on an undeclared field).
class ValidationError : public Error {
 public:
  explicit ValidationError(const std::string& what)
      : Error("validation error: " + what) {}
};

// An internal invariant was violated; indicates a bug in Meissa itself.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what)
      : Error("internal error: " + what) {}
};

// Throws InternalError when `cond` is false. Used for invariants that must
// hold regardless of user input; never for validating external data.
inline void check(bool cond, const char* msg) {
  if (!cond) throw InternalError(msg);
}

}  // namespace meissa::util
