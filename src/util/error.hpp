// Error handling primitives shared by all Meissa modules.
//
// Meissa uses exceptions for genuinely exceptional conditions (malformed
// inputs, internal invariant violations) and plain return values for
// expected outcomes (UNSAT queries, failed test cases).
#pragma once

#include <stdexcept>
#include <string>

namespace meissa::util {

// Base class for all errors thrown by Meissa.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Input that does not conform to the expected language/format.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line)
      : Error("parse error (line " + std::to_string(line) + "): " + what),
        line_(line) {}
  int line() const noexcept { return line_; }

 private:
  int line_;
};

// A semantic problem in an otherwise well-formed program (e.g. a table
// matching on an undeclared field).
class ValidationError : public Error {
 public:
  explicit ValidationError(const std::string& what)
      : Error("validation error: " + what) {}
};

// An internal invariant was violated; indicates a bug in Meissa itself.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what)
      : Error("internal error: " + what) {}
};

// Throws InternalError when `cond` is false. Used for invariants that must
// hold regardless of user input; never for validating external data.
inline void check(bool cond, const char* msg) {
  if (!cond) throw InternalError(msg);
}

}  // namespace meissa::util
