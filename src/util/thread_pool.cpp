#include "util/thread_pool.hpp"

namespace meissa::util {

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  for (int i = 1; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> fn) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    queue_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
}

bool ThreadPool::run_one(std::unique_lock<std::mutex>& lk) {
  if (queue_.empty()) return false;
  std::function<void()> fn = std::move(queue_.front());
  queue_.pop_front();
  ++running_;
  lk.unlock();
  std::exception_ptr err;
  try {
    fn();
  } catch (...) {
    err = std::current_exception();
  }
  lk.lock();
  if (err && !first_error_) first_error_ = err;
  --running_;
  if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
  return true;
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
    if (stop_ && queue_.empty()) return;
    run_one(lk);
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  // Help drain: the submitting thread is a worker too.
  while (run_one(lk)) {
  }
  idle_cv_.wait(lk, [this] { return queue_.empty() && running_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lk.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::run(size_t n, const std::function<void(size_t)>& fn) {
  if (size() <= 1) {
    // Parity with the pooled path: a throwing task must not abort the
    // batch (the pool runs every submitted task and rethrows the *first*
    // exception at wait_idle), otherwise threads=1 would complete fewer
    // tasks than threads=N for the same workload.
    std::exception_ptr err;
    for (size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!err) err = std::current_exception();
      }
    }
    if (err) std::rethrow_exception(err);
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    submit([i, &fn] { fn(i); });
  }
  wait_idle();
}

}  // namespace meissa::util
