// Monotonic-deadline arithmetic. All wall-clock budgets in Meissa are
// enforced against std::chrono::steady_clock (never system_clock, which
// can jump backwards under NTP); this helper centralizes the *saturating*
// "now + budget" so enormous budgets clamp to time_point::max() instead of
// overflowing the clock's representation into a deadline in the past.
#pragma once

#include <chrono>

namespace meissa::util {

// now + seconds, saturated. `seconds` <= 0 returns `now` (callers gate on
// "budget > 0" before arming a deadline).
inline std::chrono::steady_clock::time_point steady_deadline_after(
    std::chrono::steady_clock::time_point now, double seconds) noexcept {
  using clock = std::chrono::steady_clock;
  if (seconds <= 0) return now;
  const std::chrono::duration<double> headroom = clock::time_point::max() - now;
  if (seconds >= headroom.count()) return clock::time_point::max();
  return now + std::chrono::duration_cast<clock::duration>(
                   std::chrono::duration<double>(seconds));
}

}  // namespace meissa::util
