// Cooperative cancellation for long-running explorations.
//
// A CancelToken is a shared flag the owner of a run (a CLI handler, a test
// harness watchdog, an RPC deadline) sets once; workers poll it at safe
// points (DFS node entry, solver check boundaries) and unwind cleanly,
// leaving partial results and statistics intact. Polling uses relaxed
// atomics: a worker may run a few more nodes after cancel() — that is the
// contract ("stop soon and cleanly"), not a bug.
#pragma once

#include <atomic>

namespace meissa::util {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }
  // Re-arms the token for a fresh run (single-owner setup code only).
  void reset() noexcept { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace meissa::util
