#include "analysis/dataflow.hpp"

#include <iterator>

#include "p4/program.hpp"

namespace meissa::analysis {

namespace {

// Decomposed predicate of one assume node (empty for other nodes).
std::vector<Atom> node_atoms(const cfg::Cfg& g, cfg::NodeId id) {
  std::vector<Atom> atoms;
  const cfg::Node& n = g.node(id);
  if (!n.is_hash && n.stmt.kind == ir::StmtKind::kAssume) {
    std::vector<ir::ExprRef> opaque;
    decompose_conjunction(n.stmt.expr, atoms, opaque);
  }
  return atoms;
}

}  // namespace

ValueDomain::ValueDomain(const ir::Context& ctx, const cfg::Cfg& g)
    : ctx_(ctx), g_(g) {
  vfields_.resize(g.instances().size());
  for (size_t i = 0; i < g.instances().size(); ++i) {
    const cfg::InstanceInfo& inst = g.instances()[i];
    if (inst.validity.size() > kMaxValidityBits) continue;
    std::vector<std::pair<std::string, ir::FieldId>> named(
        inst.validity.begin(), inst.validity.end());
    std::sort(named.begin(), named.end());
    for (const auto& [h, f] : named) {
      vbit_.emplace(f, std::make_pair(static_cast<int>(i),
                                      static_cast<int>(vfields_[i].size())));
      vfields_[i].push_back(f);
    }
  }
}

// Switches the combo refinement to `instance` once every one of its
// validity bits is a per-field constant (true right after the instance's
// validity-reset prologue). The single resulting combo is exact for every
// concrete state the per-field constants represent, so this strengthens
// the state soundly; if some bit is not constant yet, the previous combos
// (about a different instance's bits, which this instance never writes)
// remain valid and are kept.
void ValueDomain::maybe_activate(State& s, int instance) const {
  if (s.vcfg.active && s.vcfg.instance == instance) return;
  const std::vector<ir::FieldId>& fields =
      vfields_[static_cast<size_t>(instance)];
  if (fields.empty()) return;
  uint32_t combo = 0;
  for (size_t b = 0; b < fields.size(); ++b) {
    auto it = s.values.find(fields[b]);
    uint64_t v = 0;
    if (it == s.values.end() || !it->second.is_constant(v)) return;
    if (v != 0) combo |= uint32_t{1} << b;
  }
  s.vcfg.active = true;
  s.vcfg.instance = instance;
  s.vcfg.combos = {combo};
}

std::unordered_map<ir::FieldId, int> ValueDomain::compute_relevant(
    const ir::Context& ctx, const cfg::Cfg& g) {
  std::unordered_map<ir::FieldId, int> relevant;
  std::vector<std::pair<ir::FieldId, ir::FieldId>> copies;  // target <- src
  for (cfg::NodeId id = 0; id < g.size(); ++id) {
    const cfg::Node& n = g.node(id);
    if (n.is_hash) continue;
    if (n.stmt.kind == ir::StmtKind::kAssume) {
      for (const Atom& a : node_atoms(g, id)) {
        if (a.field != ir::kInvalidField) relevant.emplace(a.field, a.width);
      }
    } else if (n.stmt.kind == ir::StmtKind::kAssign &&
               n.stmt.expr->kind == ir::ExprKind::kField) {
      copies.emplace_back(n.stmt.target, n.stmt.expr->field);
    }
  }
  for (const cfg::InstanceInfo& inst : g.instances()) {
    for (const auto& [h, f] : inst.validity) relevant.emplace(f, 1);
  }
  // Transitive copy sources: `t <- s` makes s relevant whenever t is.
  bool grew = true;
  while (grew) {
    grew = false;
    for (const auto& [t, s] : copies) {
      if (relevant.count(t) != 0 && relevant.count(s) == 0) {
        relevant.emplace(s, ctx.fields.width(s));
        grew = true;
      }
    }
  }
  return relevant;
}

std::unordered_map<ir::FieldId, int> ValueDomain::compute_meta(
    const ir::Context& ctx, const cfg::Cfg& g) {
  std::unordered_map<ir::FieldId, int> meta;
  for (cfg::NodeId id = 0; id < g.size(); ++id) {
    const cfg::Node& n = g.node(id);
    if (n.is_hash || n.instance != -1 ||
        n.stmt.kind != ir::StmtKind::kAssign) {
      continue;
    }
    const std::string& name = ctx.fields.name(n.stmt.target);
    if (name == p4::kDropFlag || name == p4::kEgressSpec) continue;
    meta.emplace(n.stmt.target, ctx.fields.width(n.stmt.target));
  }
  return meta;
}

Ternary ValueDomain::validity_of(const State& in, int instance,
                                 ir::FieldId vf) const {
  auto it = in.values.find(vf);
  uint64_t v = 0;
  if (it != in.values.end() && it->second.is_constant(v)) {
    return v != 0 ? Ternary::kTrue : Ternary::kFalse;
  }
  if (in.vcfg.active && in.vcfg.instance == instance) {
    auto bit = vbit_.find(vf);
    if (bit != vbit_.end() && bit->second.first == instance) {
      bool any0 = false, any1 = false;
      for (uint32_t c : in.vcfg.combos) {
        ((c >> bit->second.second) & 1u) != 0 ? any1 = true : any0 = true;
      }
      if (any1 && !any0) return Ternary::kTrue;
      if (any0 && !any1) return Ternary::kFalse;
    }
  }
  return Ternary::kUnknown;
}

Ternary ValueDomain::eval_assume(cfg::NodeId n, const State& in) const {
  const cfg::Node& node = g_.node(n);
  if (node.is_hash || node.stmt.kind != ir::StmtKind::kAssume) {
    return Ternary::kTrue;
  }
  Ternary result = Ternary::kTrue;
  std::vector<ir::ExprRef> opaque;
  std::vector<Atom> atoms;
  decompose_conjunction(node.stmt.expr, atoms, opaque);
  if (!opaque.empty()) result = Ternary::kUnknown;
  for (const Atom& a : atoms) {
    if (a.field == ir::kInvalidField) return Ternary::kFalse;
    auto it = in.values.find(a.field);
    if (it == in.values.end()) {
      result = Ternary::kUnknown;
      continue;
    }
    switch (it->second.eval(a)) {
      case Ternary::kFalse:
        return Ternary::kFalse;  // one false conjunct refutes the node
      case Ternary::kUnknown:
        result = Ternary::kUnknown;
        break;
      case Ternary::kTrue:
        break;
    }
  }
  return result;
}

std::optional<AbsState> ValueDomain::transfer(cfg::NodeId id,
                                              const State& in) const {
  const cfg::Node& n = g_.node(id);
  State out = in;
  if (n.instance >= 0 &&
      static_cast<size_t>(n.instance) < vfields_.size()) {
    maybe_activate(out, n.instance);
  }
  // Writes to a validity bit tracked by the active combo set: constants
  // update every combo in place, anything else drops the refinement.
  auto write_validity = [&](ir::FieldId target,
                            const std::optional<uint64_t>& cval) {
    if (!out.vcfg.active) return;
    auto bit = vbit_.find(target);
    if (bit == vbit_.end() || bit->second.first != out.vcfg.instance) return;
    if (!cval) {
      out.vcfg = ValidityCombos{};
      return;
    }
    const uint32_t m = uint32_t{1} << bit->second.second;
    for (uint32_t& c : out.vcfg.combos) c = *cval != 0 ? c | m : c & ~m;
    std::sort(out.vcfg.combos.begin(), out.vcfg.combos.end());
    out.vcfg.combos.erase(
        std::unique(out.vcfg.combos.begin(), out.vcfg.combos.end()),
        out.vcfg.combos.end());
  };
  if (n.is_hash) {
    out.values.erase(n.hash.dest);
    if (meta_.count(n.hash.dest) != 0) {
      out.defs[n.hash.dest] = DefKind::kWritten;
    }
    write_validity(n.hash.dest, std::nullopt);
    return out;
  }
  switch (n.stmt.kind) {
    case ir::StmtKind::kNop:
      return out;
    case ir::StmtKind::kAssign: {
      const ir::FieldId target = n.stmt.target;
      std::optional<uint64_t> cval;
      auto rit = relevant_.find(target);
      if (rit != relevant_.end()) {
        ir::ExprRef e = n.stmt.expr;
        bool tracked = false;
        if (e->kind == ir::ExprKind::kConst) {
          out.values.insert_or_assign(
              target, ValueRange::constant(e->value, rit->second));
          cval = e->value;
          tracked = true;
        } else if (e->kind == ir::ExprKind::kField &&
                   e->width == rit->second) {
          auto sit = in.values.find(e->field);
          if (sit != in.values.end()) {
            out.values.insert_or_assign(target, sit->second);
            uint64_t v = 0;
            if (sit->second.is_constant(v)) cval = v;
            tracked = true;
          }
        }
        if (!tracked) out.values.erase(target);
      }
      write_validity(target, cval);
      if (meta_.count(target) != 0) {
        out.defs[target] =
            n.instance >= 0 ? DefKind::kWritten : DefKind::kImplicit;
      }
      return out;
    }
    case ir::StmtKind::kAssume: {
      if (eval_assume(id, in) == Ternary::kFalse) return std::nullopt;
      std::vector<Atom> atoms;
      std::vector<ir::ExprRef> opaque;
      decompose_conjunction(n.stmt.expr, atoms, opaque);
      for (const Atom& a : atoms) {
        if (a.field == ir::kInvalidField) return std::nullopt;
        auto rit = relevant_.find(a.field);
        if (rit == relevant_.end()) continue;
        auto it = out.values.find(a.field);
        ValueRange r =
            it != out.values.end() ? it->second : ValueRange(rit->second);
        r.refine(a);
        if (r.is_bottom()) return std::nullopt;  // jointly contradictory
        if (r.is_top()) {
          if (it != out.values.end()) out.values.erase(it);
        } else if (it != out.values.end()) {
          it->second = std::move(r);
        } else {
          out.values.emplace(a.field, std::move(r));
        }
      }
      // Combo filtering: drop combos whose bit value falsifies an atom on a
      // tracked validity field. An emptied set refutes the whole predicate
      // (no reachable validity assignment satisfies it).
      if (out.vcfg.active) {
        for (const Atom& a : atoms) {
          auto bit = vbit_.find(a.field);
          if (bit == vbit_.end() || bit->second.first != out.vcfg.instance) {
            continue;
          }
          const int shift = bit->second.second;
          auto& combos = out.vcfg.combos;
          combos.erase(std::remove_if(combos.begin(), combos.end(),
                                      [&](uint32_t c) {
                                        return !atom_holds((c >> shift) & 1u,
                                                           a);
                                      }),
                       combos.end());
        }
        if (out.vcfg.combos.empty()) return std::nullopt;
      }
      return out;
    }
  }
  return out;
}

bool ValueDomain::join(State& into, const State& from) const {
  bool changed = false;
  for (auto it = into.values.begin(); it != into.values.end();) {
    auto fit = from.values.find(it->first);
    if (fit == from.values.end()) {
      it = into.values.erase(it);  // absent = top
      changed = true;
      continue;
    }
    if (it->second.join(fit->second)) changed = true;
    if (it->second.is_top()) {
      it = into.values.erase(it);
      continue;
    }
    ++it;
  }
  for (const auto& [f, kind] : from.defs) {
    auto it = into.defs.find(f);
    if (it == into.defs.end()) {
      into.defs.emplace(f, kind);
      changed = true;
    } else if (it->second != kind && it->second != DefKind::kMixed) {
      it->second = DefKind::kMixed;
      changed = true;
    }
  }
  if (into.vcfg.active) {
    if (!from.vcfg.active || from.vcfg.instance != into.vcfg.instance) {
      into.vcfg = ValidityCombos{};  // inactive = top
      changed = true;
    } else {
      std::vector<uint32_t> merged;
      merged.reserve(into.vcfg.combos.size() + from.vcfg.combos.size());
      std::set_union(into.vcfg.combos.begin(), into.vcfg.combos.end(),
                     from.vcfg.combos.begin(), from.vcfg.combos.end(),
                     std::back_inserter(merged));
      if (merged.size() > kMaxCombos) {
        into.vcfg = ValidityCombos{};
        changed = true;
      } else if (merged != into.vcfg.combos) {
        into.vcfg.combos = std::move(merged);
        changed = true;
      }
    }
  }
  return changed;
}

Facts compute_facts(const ir::Context& ctx, const cfg::Cfg& g,
                    cfg::NodeId start, const FactsOptions& opts) {
  Facts f;
  f.refuted.assign(g.size(), 0);
  f.unreachable.assign(g.size(), 0);

  std::unordered_map<ir::FieldId, int> relevant =
      ValueDomain::compute_relevant(ctx, g);
  if (g.size() * relevant.size() > opts.state_budget) {
    // Degrade to validity bits only (each instance re-parses, so validity
    // refutations alone still carry most of the signal).
    relevant.clear();
    for (const cfg::InstanceInfo& inst : g.instances()) {
      for (const auto& [h, vf] : inst.validity) relevant.emplace(vf, 1);
    }
    if (g.size() * relevant.size() > opts.state_budget) return f;
  }
  if (relevant.empty()) return f;

  ValueDomain dom(ctx, g);
  dom.set_relevant(std::move(relevant));
  ForwardResult<ValueDomain> r = run_forward(g, start, dom);
  for (cfg::NodeId id = 0; id < g.size(); ++id) {
    if (!r.reachable[id]) continue;
    if (!r.in[id]) {
      f.unreachable[id] = 1;
      ++f.unreachable_count;
      continue;
    }
    const cfg::Node& n = g.node(id);
    if (!n.is_hash && n.stmt.kind == ir::StmtKind::kAssume &&
        !dom.transfer(id, *r.in[id])) {
      f.refuted[id] = 1;
      ++f.refuted_count;
    }
  }
  return f;
}

}  // namespace meissa::analysis
