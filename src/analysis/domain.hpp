// Abstract value domains for the static-analysis pass (no solver).
//
// Data-plane predicates are overwhelmingly conjunctions of single-field
// atoms — exact/ternary matches, range checks, validity guards, and
// negations of higher-priority entries. `decompose_conjunction` lowers a
// boolean expression into that normal form (atoms + opaque residue), and
// `ValueRange` is the per-field abstract value the dataflow pass joins and
// refines: an unsigned interval plus known bits plus a small exclusion
// list, or an exact value bitmap for narrow fields (<= 6 bits).
#pragma once

#include <cstdint>
#include <vector>

#include "ir/expr.hpp"

namespace meissa::analysis {

enum class Ternary : uint8_t { kFalse, kTrue, kUnknown };

// One single-field atomic constraint: cmp((field & mask), value), or a
// value-set membership f IN `set` (the any-of shape of merged
// pre-conditions). A full-width mask means a plain compare. A constraint
// that is constantly false decomposes to an atom with field ==
// ir::kInvalidField.
struct Atom {
  ir::FieldId field = ir::kInvalidField;
  int width = 0;
  ir::CmpOp op = ir::CmpOp::kEq;
  uint64_t mask = ~uint64_t{0};
  uint64_t value = 0;
  std::vector<uint64_t> set;  // non-empty: membership atom; op/mask unused

  bool is_exact_mask() const noexcept;
};

// Lowers `e` into a conjunction: every conjunct that is a single-field
// atom lands in `atoms`, everything else (disjunctions over several
// fields, multi-field compares, arithmetic the domains cannot track) in
// `opaque`. Handles compares in both operand orders, ternary-match masks,
// De Morgan over negated disjunctions, negation chains, and the value-set
// (any-of-equalities) pattern.
void decompose_conjunction(ir::ExprRef e, std::vector<Atom>& atoms,
                           std::vector<ir::ExprRef>& opaque);

// The negated compare atom (operator flipped). Membership atoms have no
// single-atom negation; callers expand f NOT-IN {s...} into != exclusions
// themselves. Precondition: a.set.empty().
Atom negate_atom(const Atom& a);

// Whether concrete value `v` satisfies the (non-membership) atom.
bool atom_holds(uint64_t v, const Atom& a) noexcept;

// Abstract set of values of one `width`-bit field.
class ValueRange {
 public:
  explicit ValueRange(int width);
  static ValueRange constant(uint64_t v, int width);

  int width() const noexcept { return width_; }
  bool is_bottom() const noexcept;           // provably empty
  bool is_top() const noexcept;              // no information
  bool is_constant(uint64_t& v) const noexcept;

  // Least upper bound; returns true when *this widened.
  bool join(const ValueRange& o);
  // Meet with one atom (greatest lower bound approximation).
  void refine(const Atom& a);
  // Three-valued truth of `a` over every value in this set. Sound in both
  // directions for any over-approximation: kTrue means every concrete
  // value satisfies `a`, kFalse means none does.
  Ternary eval(const Atom& a) const;

 private:
  static constexpr int kSmallWidth = 6;  // exact bitmap up to 64 values
  static constexpr size_t kMaxExcluded = 8;

  bool small() const noexcept { return width_ <= kSmallWidth; }
  uint64_t full_mask() const noexcept;

  int width_;
  // Narrow fields: bit v of `bitmap_` set <=> value v possible.
  uint64_t bitmap_ = 0;
  // Wide fields: interval + known bits + excluded (mask, value) pairs.
  uint64_t lo_ = 0;
  uint64_t hi_ = 0;
  uint64_t known_mask_ = 0;
  uint64_t known_val_ = 0;
  std::vector<std::pair<uint64_t, uint64_t>> excluded_;
};

}  // namespace meissa::analysis
