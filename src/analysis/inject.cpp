#include "analysis/inject.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>
#include <tuple>
#include <unordered_set>
#include <utility>

#include "util/strings.hpp"

namespace meissa::analysis {

namespace {

using cfg::NodeId;
using cfg::OriginKind;

// One dataflow run kept alive for liveness queries (compute_facts discards
// the per-node IN states; the site filter needs them).
struct LiveView {
  const cfg::Cfg* g = nullptr;
  std::optional<ValueDomain> dom;
  std::optional<ForwardResult<ValueDomain>> flow;

  bool reachable(NodeId n) const { return flow->reachable[n] != 0; }

  // Live = structurally reachable, some feasible dataflow state reaches the
  // node, and (for assumes) the predicate is not statically refuted there.
  bool live(NodeId n) const {
    if (!flow->reachable[n] || !flow->in[n]) return false;
    return dom->transfer(n, *flow->in[n]).has_value();
  }

  Ternary verdict(NodeId n) const {
    if (!flow->in[n]) return Ternary::kFalse;
    return dom->eval_assume(n, *flow->in[n]);
  }
};

LiveView analyze(const ir::Context& ctx, const cfg::Cfg& g,
                 size_t state_budget) {
  std::unordered_map<ir::FieldId, int> relevant =
      ValueDomain::compute_relevant(ctx, g);
  if (g.size() * relevant.size() > state_budget) {
    // Same degradation ladder as compute_facts: validity bits only, then
    // structural reachability only (empty relevant set — every transfer is
    // trivially feasible, so liveness degrades soundly to reachability).
    relevant.clear();
    for (const cfg::InstanceInfo& inst : g.instances()) {
      for (const auto& [h, vf] : inst.validity) relevant.emplace(vf, 1);
    }
    if (g.size() * relevant.size() > state_budget) relevant.clear();
  }
  LiveView v;
  v.g = &g;
  v.dom.emplace(ctx, g);
  v.dom->set_relevant(std::move(relevant));
  v.flow = run_forward(g, g.entry(), *v.dom);
  return v;
}

const char* fault_slug(sim::FaultKind k) noexcept {
  switch (k) {
    case sim::FaultKind::kNone: return "none";
    case sim::FaultKind::kParserSkipSelect: return "parser-skip-select";
    case sim::FaultKind::kMaskFoldBug: return "mask-fold";
    case sim::FaultKind::kDropAssignment: return "drop-assignment";
    case sim::FaultKind::kWrongDefaultAction: return "wrong-default-action";
    case sim::FaultKind::kAddCarryLeak: return "add-carry-leak";
    case sim::FaultKind::kWrongCompareWidth: return "wrong-compare-width";
    case sim::FaultKind::kSwappedAssignments: return "swapped-assignments";
    case sim::FaultKind::kDropSetValid: return "drop-setvalid";
    case sim::FaultKind::kFieldOverlap: return "field-overlap";
    case sim::FaultKind::kSkipMetadataZero: return "skip-metadata-zero";
  }
  return "?";
}

// A candidate anchor: the lowest-id node carrying the canonical origin,
// preferring live nodes (a construct expanded into several subtrees — a
// parser state reached from two cases — is live iff any expansion is).
struct Cand {
  NodeId any = cfg::kNoNode;
  NodeId live = cfg::kNoNode;

  void offer(NodeId n, bool is_live) {
    if (any == cfg::kNoNode) any = n;
    if (is_live && live == cfg::kNoNode) live = n;
  }
};

std::string liveness_proof(const cfg::Cfg& g, NodeId anchor) {
  std::string s = "anchor node " + std::to_string(anchor);
  const std::string& label = g.label(anchor);
  if (!label.empty()) s += " [" + label + "]";
  const cfg::Node& n = g.node(anchor);
  s += ": reachable, feasible dataflow state";
  if (!n.is_hash && n.stmt.kind == ir::StmtKind::kAssume) {
    s += ", predicate not refuted";
  }
  return s;
}

struct Enumerator {
  const ir::Context& ctx;
  const p4::DataPlane& dp;
  const p4::RuleSet& rules;
  const cfg::Cfg& g;
  const InjectOptions& opts;
  const LiveView& view;
  InjectResult& out;

  Enumerator(const ir::Context& ctx_in, const p4::DataPlane& dp_in,
             const p4::RuleSet& rules_in, const cfg::Cfg& g_in,
             const InjectOptions& opts_in, const LiveView& view_in,
             InjectResult& out_in)
      : ctx(ctx_in), dp(dp_in), rules(rules_in), g(g_in), opts(opts_in),
        view(view_in), out(out_in) {}

  const std::string& pipeline_of(int instance) const {
    static const std::string empty;
    if (instance < 0) return empty;
    return g.instances()[static_cast<size_t>(instance)].pipeline;
  }
  const std::string& instance_name(int instance) const {
    static const std::string empty;
    if (instance < 0) return empty;
    return g.instances()[static_cast<size_t>(instance)].name;
  }

  void emit(SiteKind kind, NodeId anchor, std::string ref, int32_t index,
            int32_t sub = -1, int32_t entry_b = -1, std::string field = {},
            sim::FaultSpec fault = {}, std::string pipeline = {}) {
    InjectionSite s;
    s.id = static_cast<uint32_t>(out.sites.size());
    s.kind = kind;
    s.node = anchor;
    s.instance = anchor == cfg::kNoNode ? -1 : g.node(anchor).instance;
    s.instance_name = instance_name(s.instance);
    s.pipeline = pipeline.empty() ? pipeline_of(s.instance)
                                  : std::move(pipeline);
    s.ref = std::move(ref);
    s.index = index;
    s.sub = sub;
    s.entry_b = entry_b;
    s.field = std::move(field);
    s.fault = std::move(fault);
    s.liveness = liveness_proof(g, anchor);
    ++out.by_kind[static_cast<int>(kind)];
    out.sites.push_back(std::move(s));
  }

  // Counts one candidate; returns its live anchor or kNoNode.
  NodeId consider(const Cand& c) {
    ++out.considered;
    if (c.live == cfg::kNoNode) ++out.dead;
    return c.live;
  }

  // ---- origin scan ------------------------------------------------------

  // Canonical-key maps, all ordered so enumeration is deterministic.
  std::map<std::pair<std::string, int32_t>, Cand> guard_sites;  // (pipe, ord)
  std::map<std::tuple<int, int32_t>, std::pair<NodeId, NodeId>>
      guard_arms;  // (instance, ord) -> (then, else) expansion nodes
  std::map<std::tuple<std::string, std::string, int32_t>, Cand>
      parser_cases;  // (pipe, state, case)
  std::map<std::pair<std::string, std::string>, Cand>
      parser_states;  // (pipe, state) — kToolchain parser-skip-select
  std::map<std::pair<std::string, int32_t>, Cand> table_entries;
  std::map<std::string, Cand> table_misses;
  std::map<std::pair<std::string, int32_t>, Cand> action_ops;
  std::map<std::pair<std::string, int32_t>, std::pair<Cand, std::string>>
      checksums;  // (pipe, idx) -> (cand, dest)

  void scan_origins() {
    for (NodeId n = 0; n < g.size(); ++n) {
      const cfg::Origin& o = g.origin(n);
      if (o.kind == OriginKind::kNone) continue;
      const cfg::Node& node = g.node(n);
      const bool is_live = view.live(n);
      const std::string& ref = g.origin_ref(n);
      switch (o.kind) {
        case OriginKind::kIfGuard: {
          guard_sites[{ref, o.index}].offer(n, is_live);
          auto [it, fresh] = guard_arms.try_emplace(
              std::make_tuple(node.instance, o.index),
              std::make_pair(cfg::kNoNode, cfg::kNoNode));
          (o.sub == 0 ? it->second.first : it->second.second) = n;
          break;
        }
        case OriginKind::kParserCase:
          parser_cases[{pipeline_of(node.instance), ref, o.index}].offer(
              n, is_live);
          break;
        case OriginKind::kParserState:
          parser_states[{pipeline_of(node.instance), ref}].offer(n, is_live);
          break;
        case OriginKind::kTableEntry:
          table_entries[{ref, o.index}].offer(n, is_live);
          break;
        case OriginKind::kTableMiss:
          table_misses[ref].offer(n, is_live);
          break;
        case OriginKind::kActionOp:
          action_ops[{ref, o.index}].offer(n, is_live);
          break;
        case OriginKind::kChecksum:
          if (o.sub == 0) {
            auto& slot = checksums[{pipeline_of(node.instance), o.index}];
            slot.first.offer(n, is_live);
            slot.second = ref;
          }
          break;
        default:
          break;
      }
    }
  }

  // ---- per-kind enumeration ---------------------------------------------

  void guards() {
    for (const auto& [key, cand] : guard_sites) {
      NodeId a = consider(cand);
      if (a == cfg::kNoNode) continue;
      emit(SiteKind::kGuard, a, key.first, key.second, g.origin(a).sub, -1,
           {}, {}, key.first);
    }
    // Constancy facts: one per live expanded fork.
    for (const auto& [key, arms] : guard_arms) {
      auto [inst, ord] = key;
      GuardFact f;
      f.then_node = arms.first;
      f.else_node = arms.second;
      f.instance = inst;
      f.instance_name = instance_name(inst);
      f.pipeline = pipeline_of(inst);
      f.ordinal = ord;
      bool any_reachable = false;
      if (f.then_node != cfg::kNoNode && view.reachable(f.then_node)) {
        any_reachable = true;
        f.then_verdict = view.verdict(f.then_node);
      }
      if (f.else_node != cfg::kNoNode && view.reachable(f.else_node)) {
        any_reachable = true;
        f.else_verdict = view.verdict(f.else_node);
      }
      if (any_reachable) out.guards.push_back(std::move(f));
    }
  }

  void parser_transitions() {
    for (const auto& [key, cand] : parser_cases) {
      NodeId a = consider(cand);
      if (a == cfg::kNoNode) continue;
      emit(SiteKind::kParserTransition, a, std::get<1>(key),
           std::get<2>(key), -1, -1, {}, {}, std::get<0>(key));
    }
  }

  void entries_and_ranks() {
    for (const p4::TableDef& t : dp.program.tables) {
      std::vector<const p4::TableEntry*> ordered = rules.ordered_entries(t);
      std::vector<NodeId> anchors(ordered.size(), cfg::kNoNode);
      for (size_t i = 0; i < ordered.size(); ++i) {
        auto it = table_entries.find({t.name, static_cast<int32_t>(i)});
        if (it == table_entries.end()) continue;  // table never applied
        anchors[i] = consider(it->second);
        if (anchors[i] != cfg::kNoNode) {
          emit(SiteKind::kTableEntry, anchors[i], t.name,
               static_cast<int32_t>(i));
        }
      }
      // Rank pairs: adjacent ordered entries that overlap and whose winner
      // is decided by priority or install order — swapping the metadata
      // flips the winner without touching the match space. Prefix-decided
      // pairs are skipped: rank is derived from the match itself there.
      size_t emitted = 0;
      for (size_t i = 0; i + 1 < ordered.size() &&
                         emitted < opts.max_rank_pairs_per_table;
           ++i) {
        const size_t j = i + 1;
        if (!p4::may_overlap(t, *ordered[i], *ordered[j])) continue;
        bool prefix_decided = false;
        for (size_t k = 0; k < t.keys.size(); ++k) {
          if (t.keys[k].kind == p4::MatchKind::kLpm &&
              ordered[i]->matches[k].prefix_len !=
                  ordered[j]->matches[k].prefix_len) {
            prefix_decided = true;
            break;
          }
        }
        if (prefix_decided) continue;
        ++out.considered;
        if (anchors[i] == cfg::kNoNode || anchors[j] == cfg::kNoNode) {
          ++out.dead;
          continue;
        }
        const int32_t decided_by =
            ordered[i]->priority != ordered[j]->priority ? 0 : 1;
        emit(SiteKind::kEntryRank, anchors[i], t.name,
             static_cast<int32_t>(i), decided_by, static_cast<int32_t>(j));
        ++emitted;
      }
    }
  }

  void checksum_sites() {
    for (const auto& [key, slot] : checksums) {
      NodeId a = consider(slot.first);
      if (a == cfg::kNoNode) continue;
      emit(SiteKind::kChecksum, a, slot.second, key.second, -1, -1, {}, {},
           key.first);
    }
  }

  void emit_sites() {
    for (const p4::PipelineDef& def : dp.program.pipelines) {
      if (def.deparser.emit_order.size() < 2) continue;
      // Anchor: entry node of the first live instance of this pipeline.
      NodeId anchor = cfg::kNoNode;
      for (const cfg::InstanceInfo& inst : g.instances()) {
        if (inst.pipeline != def.name) continue;
        if (view.live(inst.entry)) {
          anchor = inst.entry;
          break;
        }
      }
      for (size_t i = 0; i + 1 < def.deparser.emit_order.size(); ++i) {
        ++out.considered;
        if (anchor == cfg::kNoNode) {
          ++out.dead;
          continue;
        }
        emit(SiteKind::kEmit, anchor, def.name, static_cast<int32_t>(i), -1,
             -1, {}, {}, def.name);
      }
    }
  }

  void register_sites() {
    for (const p4::ActionDef& a : dp.program.actions) {
      for (size_t i = 0; i < a.ops.size(); ++i) {
        const p4::ActionOp& op = a.ops[i];
        // Register cells referenced by this op (dest or value operands).
        std::vector<std::string> cells;
        auto add_cell = [&](const std::string& name) {
          if (!util::starts_with(name, "REG:")) return;
          if (std::find(cells.begin(), cells.end(), name) == cells.end()) {
            cells.push_back(name);
          }
        };
        if (op.kind == p4::ActionOp::Kind::kAssign ||
            op.kind == p4::ActionOp::Kind::kHash) {
          add_cell(op.dest);
        }
        if (op.value != nullptr) {
          std::unordered_set<ir::FieldId> fields;
          ir::collect_fields(op.value, fields);
          std::vector<std::string> names;
          for (ir::FieldId f : fields) names.push_back(ctx.fields.name(f));
          std::sort(names.begin(), names.end());
          for (const std::string& n : names) add_cell(n);
        }
        for (const std::string& cell : cells) {
          // Skew target: the neighbouring cell, when declared.
          const size_t pos_at = cell.rfind("-POS:");
          if (pos_at == std::string::npos) continue;
          const uint64_t pos =
              std::strtoull(cell.c_str() + pos_at + 5, nullptr, 10);
          const std::string base = cell.substr(4, pos_at - 4);
          std::string skewed = p4::register_field(base, pos + 1);
          if (!dp.program.field_width(skewed).has_value()) {
            if (pos == 0) continue;  // single-cell register: nothing to skew
            skewed = p4::register_field(base, pos - 1);
            if (!dp.program.field_width(skewed).has_value()) continue;
          }
          ++out.considered;
          auto it = action_ops.find({a.name, static_cast<int32_t>(i)});
          NodeId anchor =
              it == action_ops.end() ? cfg::kNoNode : it->second.live;
          if (anchor == cfg::kNoNode) {
            ++out.dead;
            continue;
          }
          emit(SiteKind::kRegisterIndex, anchor, a.name,
               static_cast<int32_t>(i), -1, -1, cell);
        }
      }
    }
  }

  void toolchain_sites() {
    auto emit_fault = [&](NodeId anchor, sim::FaultSpec spec) {
      emit(SiteKind::kToolchain, anchor, fault_slug(spec.kind), -1, -1, -1,
           {}, std::move(spec));
    };

    // kParserSkipSelect: per live (instance, state) with select cases.
    for (const auto& [key, cand] : parser_states) {
      const p4::PipelineDef* def = dp.program.find_pipeline(key.first);
      if (def == nullptr) continue;
      const p4::ParserState* st = def->parser.find_state(key.second);
      if (st == nullptr || st->cases.empty()) continue;
      ++out.considered;
      if (cand.live == cfg::kNoNode) {
        ++out.dead;
        continue;
      }
      sim::FaultSpec spec;
      spec.kind = sim::FaultKind::kParserSkipSelect;
      spec.instance = instance_name(g.node(cand.live).instance);
      spec.parser_state = key.second;
      emit_fault(cand.live, std::move(spec));
    }

    // Per-action faults, anchored at a live expansion of the first
    // qualifying op.
    for (const p4::ActionDef& a : dp.program.actions) {
      std::vector<int32_t> assigns;
      for (size_t i = 0; i < a.ops.size(); ++i) {
        if (a.ops[i].kind == p4::ActionOp::Kind::kAssign) {
          assigns.push_back(static_cast<int32_t>(i));
        }
      }
      auto live_op = [&](int32_t idx) -> NodeId {
        auto it = action_ops.find({a.name, idx});
        return it == action_ops.end() ? cfg::kNoNode : it->second.live;
      };
      if (!assigns.empty()) {
        ++out.considered;
        NodeId anchor = live_op(assigns[0]);
        if (anchor == cfg::kNoNode) {
          ++out.dead;
        } else {
          sim::FaultSpec spec;
          spec.kind = sim::FaultKind::kDropAssignment;
          spec.action = a.name;
          emit_fault(anchor, std::move(spec));
        }
      }
      if (assigns.size() >= 2 && a.ops[assigns[0]].dest != a.ops[assigns[1]].dest) {
        ++out.considered;
        NodeId anchor = live_op(assigns[0]);
        if (anchor == cfg::kNoNode) {
          ++out.dead;
        } else {
          sim::FaultSpec spec;
          spec.kind = sim::FaultKind::kSwappedAssignments;
          spec.action = a.name;
          emit_fault(anchor, std::move(spec));
        }
      }
      // kDropSetValid: per live setValid op, scoped to its instance.
      for (size_t i = 0; i < a.ops.size(); ++i) {
        if (a.ops[i].kind != p4::ActionOp::Kind::kSetValid) continue;
        ++out.considered;
        NodeId anchor = live_op(static_cast<int32_t>(i));
        if (anchor == cfg::kNoNode) {
          ++out.dead;
          continue;
        }
        sim::FaultSpec spec;
        spec.kind = sim::FaultKind::kDropSetValid;
        spec.instance = instance_name(g.node(anchor).instance);
        spec.header = a.ops[i].header;
        emit_fault(anchor, std::move(spec));
      }
    }

    // kWrongDefaultAction: per table with a live miss path whose default
    // action does something (clearing a no-op default is not a bug).
    for (const p4::TableDef& t : dp.program.tables) {
      std::string def_action = t.default_action;
      auto ov = rules.default_overrides.find(t.name);
      if (ov != rules.default_overrides.end()) def_action = ov->second.action;
      const p4::ActionDef* da = dp.program.find_action(def_action);
      if (da == nullptr || da->ops.empty()) continue;
      ++out.considered;
      auto it = table_misses.find(t.name);
      NodeId anchor = it == table_misses.end() ? cfg::kNoNode : it->second.live;
      if (anchor == cfg::kNoNode) {
        ++out.dead;
        continue;
      }
      sim::FaultSpec spec;
      spec.kind = sim::FaultKind::kWrongDefaultAction;
      spec.table = t.name;
      emit_fault(anchor, std::move(spec));
    }

    // kMaskFoldBug / kWrongCompareWidth: keyed off live table entries.
    std::map<std::string, NodeId> wide_fields;  // field -> anchor
    bool any_ternary = false;
    NodeId ternary_anchor = cfg::kNoNode;
    for (const p4::TableDef& t : dp.program.tables) {
      NodeId anchor = cfg::kNoNode;
      for (size_t i = 0; i < rules.ordered_entries(t).size(); ++i) {
        auto it = table_entries.find({t.name, static_cast<int32_t>(i)});
        if (it != table_entries.end() && it->second.live != cfg::kNoNode) {
          anchor = it->second.live;
          break;
        }
      }
      if (anchor == cfg::kNoNode) continue;
      for (const p4::TableKey& k : t.keys) {
        if (k.kind == p4::MatchKind::kTernary && !any_ternary) {
          any_ternary = true;
          ternary_anchor = anchor;
        }
        std::optional<int> w = dp.program.field_width(k.field);
        if (w.has_value() && *w > 16 && !wide_fields.count(k.field)) {
          wide_fields.emplace(k.field, anchor);
        }
      }
    }
    if (any_ternary) {
      ++out.considered;
      sim::FaultSpec spec;
      spec.kind = sim::FaultKind::kMaskFoldBug;
      emit_fault(ternary_anchor, std::move(spec));
    }
    for (const auto& [field, anchor] : wide_fields) {
      ++out.considered;
      sim::FaultSpec spec;
      spec.kind = sim::FaultKind::kWrongCompareWidth;
      spec.field = field;
      emit_fault(anchor, std::move(spec));
    }

    // kSkipMetadataZero: one program-level site when metadata exists.
    if (!dp.program.metadata.empty()) {
      ++out.considered;
      sim::FaultSpec spec;
      spec.kind = sim::FaultKind::kSkipMetadataZero;
      emit_fault(g.entry(), std::move(spec));
    }
  }

  void summary_sites() {
    static const char* kSlugs[] = {"drop-branch", "widen-guard",
                                   "drop-effect"};
    for (int i = 0; i < 3; ++i) {
      ++out.considered;
      emit(SiteKind::kSummary, g.entry(), kSlugs[i], i);
    }
  }

  void run() {
    scan_origins();
    guards();
    parser_transitions();
    entries_and_ranks();
    checksum_sites();
    emit_sites();
    register_sites();
    toolchain_sites();
    summary_sites();
  }
};

}  // namespace

const char* site_kind_name(SiteKind k) noexcept {
  switch (k) {
    case SiteKind::kGuard: return "guard";
    case SiteKind::kParserTransition: return "parser-transition";
    case SiteKind::kTableEntry: return "table-entry";
    case SiteKind::kEntryRank: return "entry-rank";
    case SiteKind::kChecksum: return "checksum";
    case SiteKind::kEmit: return "emit";
    case SiteKind::kRegisterIndex: return "register-index";
    case SiteKind::kToolchain: return "toolchain";
    case SiteKind::kSummary: return "summary";
  }
  return "?";
}

InjectResult find_injection_sites(const ir::Context& ctx,
                                  const p4::DataPlane& dp,
                                  const p4::RuleSet& rules, const cfg::Cfg& g,
                                  const InjectOptions& opts) {
  InjectResult out;
  LiveView view = analyze(ctx, g, opts.state_budget);
  Enumerator e(ctx, dp, rules, g, opts, view, out);
  e.run();
  return out;
}

std::vector<GuardFact> guard_constancy(const ir::Context& ctx,
                                       const cfg::Cfg& g,
                                       size_t state_budget) {
  LiveView view = analyze(ctx, g, state_budget);
  std::map<std::tuple<int, int32_t>, std::pair<NodeId, NodeId>> arms;
  for (NodeId n = 0; n < g.size(); ++n) {
    const cfg::Origin& o = g.origin(n);
    if (o.kind != OriginKind::kIfGuard) continue;
    auto [it, fresh] = arms.try_emplace(
        std::make_tuple(g.node(n).instance, o.index),
        std::make_pair(cfg::kNoNode, cfg::kNoNode));
    (o.sub == 0 ? it->second.first : it->second.second) = n;
  }
  std::vector<GuardFact> out;
  for (const auto& [key, pair] : arms) {
    GuardFact f;
    f.then_node = pair.first;
    f.else_node = pair.second;
    f.instance = std::get<0>(key);
    if (f.instance >= 0) {
      const cfg::InstanceInfo& inst =
          g.instances()[static_cast<size_t>(f.instance)];
      f.instance_name = inst.name;
      f.pipeline = inst.pipeline;
    }
    f.ordinal = std::get<1>(key);
    bool any = false;
    if (f.then_node != cfg::kNoNode && view.reachable(f.then_node)) {
      any = true;
      f.then_verdict = view.verdict(f.then_node);
    }
    if (f.else_node != cfg::kNoNode && view.reachable(f.else_node)) {
      any = true;
      f.else_verdict = view.verdict(f.else_node);
    }
    if (any) out.push_back(std::move(f));
  }
  return out;
}

}  // namespace meissa::analysis
