#include "analysis/validate.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "p4/program.hpp"
#include "sym/state.hpp"
#include "util/strings.hpp"

namespace meissa::analysis {

const char* obligation_kind_name(ObligationKind k) noexcept {
  switch (k) {
    case ObligationKind::kElimination: return "elimination";
    case ObligationKind::kGuardCover: return "guard-cover";
    case ObligationKind::kGuardPrecision: return "guard-precision";
    case ObligationKind::kEffect: return "effect";
    case ObligationKind::kCoverage: return "coverage";
    case ObligationKind::kStructure: return "structure";
  }
  return "?";
}

const char* obligation_verdict_name(ObligationVerdict v) noexcept {
  switch (v) {
    case ObligationVerdict::kUnsat: return "unsat";
    case ObligationVerdict::kUnproven: return "unproven";
    case ObligationVerdict::kRefuted: return "refuted";
  }
  return "?";
}

const Obligation* ValidationResult::first_refuted() const noexcept {
  for (const PipelineValidation& p : pipelines) {
    for (const Obligation& o : p.obligations) {
      if (o.verdict == ObligationVerdict::kRefuted) return &o;
    }
  }
  return nullptr;
}

namespace {

// `expr == const` conjuncts, as the engine's hash-pinning mines them
// (sym/engine.cpp). The walk must replicate the engine's concrete-hash
// decisions exactly, or hash-carrying paths would spuriously diverge.
void collect_eq_pins(ir::ExprRef c,
                     std::unordered_map<ir::ExprRef, uint64_t>& pins) {
  if (c->kind == ir::ExprKind::kBool && c->bool_op() == ir::BoolOp::kAnd) {
    collect_eq_pins(c->lhs, pins);
    collect_eq_pins(c->rhs, pins);
    return;
  }
  if (c->kind == ir::ExprKind::kCmp && c->cmp_op() == ir::CmpOp::kEq &&
      c->rhs->kind == ir::ExprKind::kConst) {
    pins.emplace(c->lhs, c->rhs->value);
  }
}

// One re-derived valid internal path, in pipeline-entry terms (seeded
// fields appear as their "@field@inst" snapshot variables, exactly the
// summarizer's vocabulary, so sound summaries compare pointer-equal).
struct WalkPath {
  std::vector<cfg::NodeId> nodes;  // entry .. exit, inclusive
  std::vector<ir::ExprRef> conds;
  std::unordered_map<ir::FieldId, ir::ExprRef> values;
  bool tainted = false;  // a budget-exhausted check lies on the prefix
};

// One parsed summarized branch chain, substituted into the same
// vocabulary as the walk.
struct Branch {
  cfg::NodeId head = cfg::kNoNode;
  cfg::NodeId guard_node = cfg::kNoNode;
  ir::ExprRef guard = nullptr;
  std::unordered_map<ir::FieldId, ir::ExprRef> effects;
  std::string structure_error;
};

uint64_t edge_key(cfg::NodeId from, cfg::NodeId to) {
  return (static_cast<uint64_t>(from) << 32) | to;
}

// Validates one pipeline: re-derives its pre-condition and valid internal
// paths on the original subgraph, parses the summarized branch chains, and
// discharges the obligation set described in validate.hpp.
class PipelineValidator {
 public:
  PipelineValidator(ir::Context& ctx, const cfg::Cfg& original,
                    const cfg::Cfg& summarized, size_t k,
                    const ValidateOptions& opts)
      : ctx_(ctx), orig_(original), summ_(summarized),
        info_(summarized.instances()[k]), opts_(opts), state_(ctx) {}

  PipelineValidation run() {
    obs::Span span("validate " + info_.name, "validate");
    const auto t0 = std::chrono::steady_clock::now();
    pv_.instance = info_.name;

    compute_precondition();
    walk();
    std::vector<Branch> branches = parse_branches();
    pv_.surviving_paths = surviving_.size();
    pv_.summary_branches = branches.size();

    bool structure_ok = true;
    for (const Branch& b : branches) {
      if (b.structure_error.empty()) continue;
      structure_ok = false;
      Obligation o;
      o.kind = ObligationKind::kStructure;
      o.verdict = ObligationVerdict::kRefuted;
      o.pipeline = info_.name;
      o.summary_node = b.head;
      o.detail = b.structure_error;
      record(std::move(o));
    }
    if (structure_ok) align(branches);

    build_ledger();

    pv_.smt_checks += walk_solver_ ? walk_solver_->stats().checks : 0;
    pv_.smt_checks += check_solver_ ? check_solver_->stats().checks : 0;
    pv_.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    span.arg("obligations", pv_.obligations.size());
    span.arg("refuted", pv_.refuted);
    span.arg("smt_checks", pv_.smt_checks);
    if (obs::metrics_enabled()) {
      obs::metrics().counter("validate.obligations").add(
          pv_.obligations.size());
      obs::metrics().counter("validate.unsat").add(pv_.unsat);
      obs::metrics().counter("validate.unproven").add(pv_.unproven);
      obs::metrics().counter("validate.refuted").add(pv_.refuted);
      obs::metrics()
          .histogram("validate.pipeline_us")
          .observe(static_cast<uint64_t>(pv_.seconds * 1e6));
    }
    return std::move(pv_);
  }

 private:
  std::unique_ptr<smt::Solver> make_solver() const {
    if (opts_.use_z3) {
      auto s = smt::make_z3_solver(ctx_);
      if (s != nullptr) return s;
    }
    return smt::make_bv_solver(ctx_);
  }

  void record(Obligation o) {
    switch (o.verdict) {
      case ObligationVerdict::kUnsat: ++pv_.unsat; break;
      case ObligationVerdict::kUnproven: ++pv_.unproven; break;
      case ObligationVerdict::kRefuted: ++pv_.refuted; break;
    }
    pv_.obligations.push_back(std::move(o));
  }

  std::string node_desc(const cfg::Cfg& g, cfg::NodeId id) const {
    const std::string& label = g.label(id);
    std::string d = "node " + std::to_string(id);
    if (!label.empty()) d += " (" + label + ")";
    return d;
  }

  // --- Pre-condition (mirrors summary::summarize's explore phase) --------

  void compute_precondition() {
    summary::PreCondition pc;
    if (opts_.summary.precondition_filtering) {
      if (opts_.summary.precondition_mode ==
          summary::SummaryOptions::PreconditionMode::kDataflow) {
        pc = summary::compute_precondition(ctx_, summ_, info_.entry);
      } else {
        // The region reaching this entry consists of earlier-wave pipelines
        // only (instance_deps orders the waves), so the final summarized
        // graph shows exactly what the summarizer's own enumeration saw.
        std::optional<summary::PreCondition> exact =
            summary::compute_precondition_by_enumeration(
                ctx_, summ_, info_.entry, opts_.summary.max_precondition_paths,
                &pv_.smt_checks, "pre." + info_.name,
                opts_.summary.static_pruning, nullptr);
        pc = exact ? std::move(*exact)
                   : summary::compute_precondition(ctx_, summ_, info_.entry);
      }
    }

    auto by_name = [&](ir::FieldId a, ir::FieldId b) {
      return ctx_.fields.name(a) < ctx_.fields.name(b);
    };
    auto seed = [&](ir::FieldId f) {
      const int w = ctx_.fields.width(f);
      const ir::FieldId at = ctx_.fields.intern(
          "@" + ctx_.fields.name(f) + "@" + info_.name, w);
      ir::ExprRef at_var = ctx_.arena.field(at, w);
      seeds_.emplace(f, at_var);
      return at_var;
    };

    for (ir::ExprRef c : pc.conds) base_.push_back(c);
    std::vector<ir::FieldId> tops(pc.tops.begin(), pc.tops.end());
    std::sort(tops.begin(), tops.end(), by_name);
    for (ir::FieldId f : tops) {
      ir::ExprRef at_var = seed(f);
      auto vs = pc.value_sets.find(f);
      if (vs != pc.value_sets.end()) {
        std::vector<ir::ExprRef> eqs;
        for (uint64_t v : vs->second) {
          eqs.push_back(ctx_.arena.cmp(
              ir::CmpOp::kEq, at_var,
              ctx_.arena.constant(v, ctx_.fields.width(f))));
        }
        base_.push_back(ctx_.arena.any_of(eqs));
      }
    }
    std::vector<ir::FieldId> known;
    known.reserve(pc.values.size());
    for (const auto& [f, v] : pc.values) known.push_back(f);
    std::sort(known.begin(), known.end(), by_name);
    for (ir::FieldId f : known) {
      ir::ExprRef at_var = seed(f);
      base_.push_back(ctx_.arena.cmp(ir::CmpOp::kEq, at_var, pc.values.at(f)));
    }
  }

  ir::ExprRef entry_value(ir::FieldId f) const {
    auto it = seeds_.find(f);
    return it != seeds_.end() ? it->second : ctx_.var(f);
  }

  // --- Hash handling shared by walk and branch parse ---------------------

  // Deterministic symbol for an unpinned hash: keyed by (algo, width,
  // substituted key expressions), so the same hash on the walk side and the
  // branch side resolves to the same variable (hash results are functions
  // of their keys).
  ir::FieldId hash_symbol(p4::HashAlgo algo,
                          const std::vector<ir::ExprRef>& keys, int width) {
    auto key = std::make_tuple(static_cast<int>(algo), width, keys);
    auto it = hash_syms_.find(key);
    if (it != hash_syms_.end()) return it->second;
    const ir::FieldId f = ctx_.fields.intern(
        "$vhash." + info_.name + "." + std::to_string(hash_syms_.size()),
        width);
    hash_syms_.emplace(std::move(key), f);
    return f;
  }

  // Engine-equivalent hash evaluation: concrete when every key is pinned
  // (by value or by an equality conjunct), a shared symbol otherwise.
  ir::ExprRef eval_hash(const cfg::Node& n, std::vector<ir::ExprRef> keys,
                        const std::vector<ir::ExprRef>& path_conds) {
    bool all_const = true;
    for (ir::ExprRef k : keys) all_const &= k->is_const();
    if (!all_const) {
      std::unordered_map<ir::ExprRef, uint64_t> pins;
      for (ir::ExprRef c : path_conds) collect_eq_pins(c, pins);
      for (ir::ExprRef c : base_) collect_eq_pins(c, pins);
      all_const = true;
      for (ir::ExprRef& k : keys) {
        if (k->is_const()) continue;
        auto it = pins.find(k);
        if (it != pins.end()) {
          k = ctx_.arena.constant(it->second, k->width);
        } else {
          all_const = false;
        }
      }
    }
    const int dest_w = ctx_.fields.width(n.hash.dest);
    if (all_const) {
      std::vector<uint64_t> kv;
      std::vector<int> kw;
      for (ir::ExprRef e : keys) {
        kv.push_back(e->value);
        kw.push_back(e->width);
      }
      const uint64_t h = p4::compute_hash(n.hash.algo, kv, kw, dest_w);
      return ctx_.arena.constant(h, dest_w);
    }
    return ctx_.var(hash_symbol(n.hash.algo, keys, dest_w));
  }

  // --- Independent re-derivation of the valid internal path set ----------

  void walk() {
    // Region that can still reach the pipeline exit (the engine's
    // reaches_stop_ cut, restricted to what the walk can see).
    reaches_exit_.assign(orig_.size(), false);
    {
      std::unordered_map<cfg::NodeId, std::vector<cfg::NodeId>> preds;
      for (cfg::NodeId id = 0; id < orig_.size(); ++id) {
        for (cfg::NodeId s : orig_.node(id).succ) preds[s].push_back(id);
      }
      std::vector<cfg::NodeId> work{info_.exit};
      reaches_exit_[info_.exit] = true;
      while (!work.empty()) {
        const cfg::NodeId cur = work.back();
        work.pop_back();
        for (cfg::NodeId p : preds[cur]) {
          if (!reaches_exit_[p]) {
            reaches_exit_[p] = true;
            work.push_back(p);
          }
        }
      }
    }

    walk_solver_ = make_solver();
    walk_solver_->set_budget(opts_.budget);
    for (ir::ExprRef c : base_) walk_solver_->add(c);
    bool base_tainted = false;
    if (!base_.empty()) {
      switch (walk_solver_->check()) {
        case smt::CheckResult::kUnsat:
          return;  // unreachable pipeline: no valid internal path at all
        case smt::CheckResult::kUnknown:
          base_tainted = true;
          break;
        case smt::CheckResult::kSat:
          break;
      }
    }
    for (const auto& [f, v] : seeds_) state_.assign(f, v);
    std::vector<cfg::NodeId> path;
    dfs(info_.entry, cfg::kNoNode, base_tainted, path);
  }

  void dfs(cfg::NodeId id, cfg::NodeId from, bool tainted,
           std::vector<cfg::NodeId>& path) {
    if (exploded_ || !reaches_exit_[id]) return;
    const cfg::Node& n = orig_.node(id);

    if (id == info_.exit) {
      if (surviving_.size() >= opts_.max_walk_paths) {
        exploded_ = true;
        return;
      }
      WalkPath p;
      p.nodes = path;
      p.nodes.push_back(id);
      p.conds = state_.conds();
      p.values = state_.values();
      p.tainted = tainted;
      surviving_.push_back(std::move(p));
      return;
    }

    const sym::SymState::Mark mark = state_.mark();
    bool feasible = true;
    bool pushed = false;
    if (n.is_hash) {
      std::vector<ir::ExprRef> keys;
      if (!n.hash.key_exprs.empty()) {
        for (ir::ExprRef e : n.hash.key_exprs) keys.push_back(state_.subst(e));
      } else {
        for (ir::FieldId k : n.hash.keys) keys.push_back(state_.value_of(k));
      }
      state_.assign(n.hash.dest, eval_hash(n, std::move(keys), state_.conds()));
    } else if (n.stmt.kind == ir::StmtKind::kAssign) {
      state_.assign(n.stmt.target, state_.subst(n.stmt.expr));
    } else if (n.stmt.kind == ir::StmtKind::kAssume) {
      ir::ExprRef c = state_.subst(n.stmt.expr);
      if (c->is_true()) {
        // no information
      } else if (c->is_false()) {
        feasible = false;
        eliminate(from, id, ObligationVerdict::kUnsat,
                  "path condition is constant-false at " +
                      node_desc(orig_, id),
                  0);
      } else {
        state_.add_cond(c);
        walk_solver_->push();
        walk_solver_->add(c);
        pushed = true;
        switch (walk_solver_->check()) {
          case smt::CheckResult::kSat:
            break;
          case smt::CheckResult::kUnsat:
            feasible = false;
            eliminate(from, id, ObligationVerdict::kUnsat,
                      "path condition unsatisfiable under the public "
                      "pre-condition at " +
                          node_desc(orig_, id),
                      1);
            break;
          case smt::CheckResult::kUnknown:
            // Budget exhausted: the elimination (if the summarizer made
            // one) stays open, and everything below is explored but marked
            // degraded so a divergence cannot be reported as refuted.
            tainted = true;
            eliminate(from, id, ObligationVerdict::kUnproven,
                      "solver budget exhausted deciding the branch at " +
                          node_desc(orig_, id),
                      1);
            break;
        }
      }
    }

    if (feasible) {
      path.push_back(id);
      for (cfg::NodeId s : n.succ) {
        dfs(s, id, tainted, path);
        if (exploded_) break;
      }
      path.pop_back();
    }
    if (pushed) walk_solver_->pop();
    state_.rollback(mark);
  }

  void eliminate(cfg::NodeId from, cfg::NodeId node, ObligationVerdict v,
                 std::string detail, uint64_t checks) {
    const uint64_t key = edge_key(from, node);
    if (v == ObligationVerdict::kUnproven) any_walk_unknown_ = true;
    Obligation o;
    o.kind = ObligationKind::kElimination;
    o.verdict = v;
    o.pipeline = info_.name;
    o.orig_from = from;
    o.orig_node = node;
    o.detail = std::move(detail);
    o.smt_checks = checks;
    if (v != ObligationVerdict::kUnproven && !eliminated_.count(key)) {
      eliminated_.emplace(key, static_cast<int>(pv_.obligations.size()));
    }
    record(std::move(o));
  }

  // --- Summarized branch chains, substituted into walk vocabulary --------

  std::vector<Branch> parse_branches() {
    std::vector<Branch> out;
    for (cfg::NodeId head : summ_.node(info_.entry).succ) {
      Branch b;
      b.head = head;
      std::unordered_map<ir::FieldId, ir::ExprRef> bind;
      std::unordered_set<ir::FieldId> non_effect;  // snapshots + hash dests
      auto subst_bind = [&](ir::ExprRef e) {
        return ir::substitute(e, ctx_.arena,
                              [&](ir::FieldId f, int) -> ir::ExprRef {
                                auto it = bind.find(f);
                                if (it != bind.end()) return it->second;
                                auto s = seeds_.find(f);
                                if (s != seeds_.end()) return s->second;
                                return nullptr;
                              });
      };
      cfg::NodeId cur = head;
      size_t steps = 0;
      while (cur != info_.exit) {
        if (++steps > summ_.size()) {
          b.structure_error = "branch chain never reaches the pipeline exit";
          break;
        }
        const cfg::Node& n = summ_.node(cur);
        if (n.is_hash) {
          std::vector<ir::ExprRef> keys;
          if (!n.hash.key_exprs.empty()) {
            for (ir::ExprRef e : n.hash.key_exprs) {
              keys.push_back(subst_bind(e));
            }
          } else {
            for (ir::FieldId k : n.hash.keys) {
              keys.push_back(subst_bind(ctx_.var(k)));
            }
          }
          // The chain's guard has not executed yet, so only the public
          // pre-condition can pin keys here — matching the summarizer,
          // whose encoder only emits hash nodes for unpinned hashes.
          bind[n.hash.dest] = eval_hash(n, std::move(keys), {});
          non_effect.insert(n.hash.dest);
        } else if (n.stmt.kind == ir::StmtKind::kAssign) {
          bind[n.stmt.target] = subst_bind(n.stmt.expr);
          const std::string& tname = ctx_.fields.name(n.stmt.target);
          if (!tname.empty() && tname[0] == '@') {
            non_effect.insert(n.stmt.target);
          }
        } else if (n.stmt.kind == ir::StmtKind::kAssume) {
          if (b.guard != nullptr) {
            b.structure_error = "branch chain carries more than one guard";
            break;
          }
          b.guard = subst_bind(n.stmt.expr);
          b.guard_node = cur;
        }
        if (n.succ.size() != 1) {
          b.structure_error =
              "branch chain " + node_desc(summ_, cur) + " has " +
              std::to_string(n.succ.size()) + " successors (expected 1)";
          break;
        }
        cur = n.succ[0];
      }
      if (b.structure_error.empty() && b.guard == nullptr) {
        b.structure_error = "branch chain has no guard node";
      }
      for (const auto& [f, v] : bind) {
        if (!non_effect.count(f)) b.effects.emplace(f, v);
      }
      out.push_back(std::move(b));
    }
    return out;
  }

  // --- Obligation discharge ----------------------------------------------

  ObligationVerdict discharge(const std::vector<ir::ExprRef>& extra,
                              uint64_t& checks) {
    if (check_solver_ == nullptr) {
      check_solver_ = make_solver();
      check_solver_->set_budget(opts_.budget);
      for (ir::ExprRef c : base_) check_solver_->add(c);
    }
    check_solver_->push();
    for (ir::ExprRef e : extra) check_solver_->add(e);
    const smt::CheckResult r = check_solver_->check();
    check_solver_->pop();
    ++checks;
    switch (r) {
      case smt::CheckResult::kUnsat: return ObligationVerdict::kUnsat;
      case smt::CheckResult::kSat: return ObligationVerdict::kRefuted;
      case smt::CheckResult::kUnknown: return ObligationVerdict::kUnproven;
    }
    return ObligationVerdict::kUnproven;
  }

  // A refutation observed through a degraded walk path is not a proof of
  // divergence (the path itself may be infeasible): downgrade it.
  static ObligationVerdict soften(ObligationVerdict v, bool tainted) {
    if (tainted && v == ObligationVerdict::kRefuted) {
      return ObligationVerdict::kUnproven;
    }
    return v;
  }

  void align(const std::vector<Branch>& branches) {
    const size_t n = surviving_.size();
    const size_t m = branches.size();

    if (exploded_) {
      Obligation o;
      o.kind = ObligationKind::kCoverage;
      o.verdict = ObligationVerdict::kUnproven;
      o.pipeline = info_.name;
      o.detail = util::format(
          "walk aborted after %llu paths (max_walk_paths); branch alignment "
          "not established",
          static_cast<unsigned long long>(opts_.max_walk_paths));
      record(std::move(o));
      return;
    }

    const size_t pairs = std::min(n, m);
    for (size_t i = 0; i < pairs; ++i) {
      check_pair(surviving_[i], branches[i]);
    }

    // Unmatched surviving paths: coverage the summary lost.
    for (size_t i = pairs; i < n; ++i) {
      const WalkPath& p = surviving_[i];
      Obligation o;
      o.kind = ObligationKind::kCoverage;
      o.verdict = soften(ObligationVerdict::kRefuted,
                         p.tainted || any_walk_unknown_);
      o.pipeline = info_.name;
      o.orig_from = p.nodes.size() >= 2 ? p.nodes[p.nodes.size() - 2]
                                        : info_.entry;
      o.orig_node = p.nodes.back();
      o.detail = util::format(
          "original pipeline keeps %llu valid paths but the summary has "
          "only %llu branches; eliminated edge %llu->%llu has no proof",
          static_cast<unsigned long long>(n),
          static_cast<unsigned long long>(m),
          static_cast<unsigned long long>(o.orig_from),
          static_cast<unsigned long long>(o.orig_node));
      record(std::move(o));
    }

    // Unmatched branches: must be vacuous (guard unsatisfiable under the
    // pre-condition), as the summarizer's dead-pipeline chain is.
    for (size_t j = pairs; j < m; ++j) {
      const Branch& b = branches[j];
      Obligation o;
      o.kind = ObligationKind::kCoverage;
      o.pipeline = info_.name;
      o.summary_node = b.guard_node;
      if (b.guard->is_false()) {
        o.verdict = ObligationVerdict::kUnsat;
        o.detail = "surplus branch is vacuous (guard is constant false)";
      } else {
        o.verdict = soften(discharge({b.guard}, o.smt_checks),
                           any_walk_unknown_);
        o.detail =
            o.verdict == ObligationVerdict::kUnsat
                ? "surplus branch is vacuous (guard unsatisfiable under the "
                  "pre-condition)"
                : "summary branch admits packets but no original valid path "
                  "remains unmatched";
      }
      record(std::move(o));
    }
  }

  void check_pair(const WalkPath& p, const Branch& b) {
    const ir::ExprRef cond = ctx_.arena.all_of(p.conds);
    const cfg::NodeId tail =
        p.nodes.size() >= 2 ? p.nodes[p.nodes.size() - 2] : info_.entry;

    // Guard equivalence, both directions. The common case is pointer
    // equality (the walk reproduces the summarizer's substitutions on the
    // same hash-consing arena), which is a structural proof.
    Obligation cover;
    cover.kind = ObligationKind::kGuardCover;
    cover.pipeline = info_.name;
    cover.orig_from = tail;
    cover.orig_node = p.nodes.back();
    cover.summary_node = b.guard_node;
    Obligation precision = cover;
    precision.kind = ObligationKind::kGuardPrecision;
    if (cond == b.guard) {
      cover.verdict = ObligationVerdict::kUnsat;
      cover.detail = "guard is structurally identical to the path condition";
      precision.verdict = ObligationVerdict::kUnsat;
      precision.detail = cover.detail;
    } else {
      cover.verdict = soften(
          discharge({cond, ctx_.arena.bnot(b.guard)}, cover.smt_checks),
          p.tainted);
      cover.detail =
          cover.verdict == ObligationVerdict::kRefuted
              ? "an original valid path escapes its summarized guard"
              : "path condition implies the summarized guard";
      precision.verdict = soften(
          discharge({b.guard, ctx_.arena.bnot(cond)}, precision.smt_checks),
          p.tainted);
      precision.detail =
          precision.verdict == ObligationVerdict::kRefuted
              ? "summarized guard admits packets outside the original path "
                "condition"
              : "summarized guard implies the path condition";
    }
    record(std::move(cover));
    record(std::move(precision));

    // Effects: final field values must agree under the shared condition.
    std::vector<ir::FieldId> fields;
    auto changed = [&](ir::FieldId f, ir::ExprRef v) {
      return v != entry_value(f);
    };
    for (const auto& [f, v] : p.values) {
      if (changed(f, v)) fields.push_back(f);
    }
    for (const auto& [f, v] : b.effects) {
      if (changed(f, v) && !p.values.count(f)) fields.push_back(f);
    }
    std::sort(fields.begin(), fields.end(),
              [&](ir::FieldId a, ir::FieldId c) {
                return ctx_.fields.name(a) < ctx_.fields.name(c);
              });
    for (ir::FieldId f : fields) {
      auto wv_it = p.values.find(f);
      const ir::ExprRef wv =
          wv_it != p.values.end() ? wv_it->second : entry_value(f);
      auto bv_it = b.effects.find(f);
      const ir::ExprRef bv =
          bv_it != b.effects.end() ? bv_it->second : entry_value(f);
      if (wv == bv) continue;  // structurally identical effect
      Obligation o;
      o.kind = ObligationKind::kEffect;
      o.pipeline = info_.name;
      o.orig_from = tail;
      o.orig_node = p.nodes.back();
      o.summary_node = b.guard_node;
      o.field = ctx_.fields.name(f);
      if (wv->width != bv->width) {
        o.verdict = ObligationVerdict::kRefuted;
        o.detail = "summarized effect has a different width than the "
                   "original value";
      } else {
        o.verdict = soften(
            discharge({cond, ctx_.arena.cmp(ir::CmpOp::kNe, wv, bv)},
                      o.smt_checks),
            p.tainted);
        o.detail = o.verdict == ObligationVerdict::kRefuted
                       ? "summarized final value diverges from the original"
                       : "summarized and original final values agree";
      }
      record(std::move(o));
    }
  }

  // --- Per-edge elimination ledger ---------------------------------------

  void build_ledger() {
    std::unordered_set<uint64_t> retained;
    for (const WalkPath& p : surviving_) {
      for (size_t i = 0; i + 1 < p.nodes.size(); ++i) {
        retained.insert(edge_key(p.nodes[i], p.nodes[i + 1]));
      }
    }
    // Forward sweep from the entry, restricted to the exit-reaching region.
    std::vector<bool> seen(orig_.size(), false);
    std::vector<cfg::NodeId> order;
    std::vector<cfg::NodeId> work{info_.entry};
    seen[info_.entry] = true;
    while (!work.empty()) {
      const cfg::NodeId cur = work.back();
      work.pop_back();
      order.push_back(cur);
      if (cur == info_.exit) continue;
      for (cfg::NodeId s : orig_.node(cur).succ) {
        if (reaches_exit_[s] && !seen[s]) {
          seen[s] = true;
          work.push_back(s);
        }
      }
    }
    std::sort(order.begin(), order.end());
    for (cfg::NodeId u : order) {
      if (u == info_.exit) continue;
      for (cfg::NodeId v : orig_.node(u).succ) {
        EdgeLedgerEntry e;
        e.from = u;
        e.to = v;
        if (!reaches_exit_[v]) {
          e.status = EdgeStatus::kOfftarget;
        } else if (retained.count(edge_key(u, v))) {
          e.status = EdgeStatus::kRetained;
        } else {
          auto it = eliminated_.find(edge_key(u, v));
          if (it != eliminated_.end()) {
            e.status = EdgeStatus::kEliminated;
            e.obligation = it->second;
          } else {
            e.status = EdgeStatus::kSubsumed;
          }
        }
        pv_.ledger.push_back(e);
      }
    }
  }

  ir::Context& ctx_;
  const cfg::Cfg& orig_;
  const cfg::Cfg& summ_;
  const cfg::InstanceInfo& info_;
  const ValidateOptions& opts_;

  PipelineValidation pv_;
  std::vector<ir::ExprRef> base_;  // pre-condition assertions (walk vocab)
  std::unordered_map<ir::FieldId, ir::ExprRef> seeds_;  // f -> @f@inst
  sym::SymState state_;
  std::unique_ptr<smt::Solver> walk_solver_;
  std::unique_ptr<smt::Solver> check_solver_;
  std::vector<bool> reaches_exit_;
  std::vector<WalkPath> surviving_;
  std::unordered_map<uint64_t, int> eliminated_;  // edge -> obligation idx
  std::map<std::tuple<int, int, std::vector<ir::ExprRef>>, ir::FieldId>
      hash_syms_;
  bool exploded_ = false;
  bool any_walk_unknown_ = false;
};

}  // namespace

ValidationResult validate_summary(ir::Context& ctx, const cfg::Cfg& original,
                                  const cfg::Cfg& summarized,
                                  const ValidateOptions& opts) {
  ValidationResult res;
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t k = 0; k < summarized.instances().size(); ++k) {
    PipelineValidator v(ctx, original, summarized, k, opts);
    PipelineValidation pv = v.run();
    res.obligations += pv.obligations.size();
    res.unsat += pv.unsat;
    res.unproven += pv.unproven;
    res.refuted += pv.refuted;
    res.smt_checks += pv.smt_checks;
    res.pipelines.push_back(std::move(pv));
  }
  res.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return res;
}

// --- Rendering ------------------------------------------------------------

namespace {

std::string obligation_line(const Obligation& o) {
  std::string out = "  ";
  out += obligation_verdict_name(o.verdict);
  out += " [";
  out += obligation_kind_name(o.kind);
  out += "] ";
  if (o.orig_from != cfg::kNoNode || o.orig_node != cfg::kNoNode) {
    out += "edge " + std::to_string(o.orig_from) + "->" +
           std::to_string(o.orig_node) + ": ";
  } else if (o.summary_node != cfg::kNoNode) {
    out += "branch at node " + std::to_string(o.summary_node) + ": ";
  }
  if (!o.field.empty()) out += "field '" + o.field + "': ";
  out += o.detail;
  out += '\n';
  return out;
}

void ledger_counts(const PipelineValidation& p, uint64_t& retained,
                   uint64_t& eliminated, uint64_t& subsumed,
                   uint64_t& offtarget) {
  retained = eliminated = subsumed = offtarget = 0;
  for (const EdgeLedgerEntry& e : p.ledger) {
    switch (e.status) {
      case EdgeStatus::kRetained: ++retained; break;
      case EdgeStatus::kEliminated: ++eliminated; break;
      case EdgeStatus::kSubsumed: ++subsumed; break;
      case EdgeStatus::kOfftarget: ++offtarget; break;
    }
  }
}

std::string json_obligation(const Obligation& o) {
  std::string out = "{\"kind\": \"";
  out += obligation_kind_name(o.kind);
  out += "\", \"verdict\": \"";
  out += obligation_verdict_name(o.verdict);
  out += "\", \"pipeline\": \"";
  out += util::json_escape(o.pipeline);
  out += "\"";
  if (o.orig_from != cfg::kNoNode) {
    out += ", \"from\": " + std::to_string(o.orig_from);
  }
  if (o.orig_node != cfg::kNoNode) {
    out += ", \"node\": " + std::to_string(o.orig_node);
  }
  if (o.summary_node != cfg::kNoNode) {
    out += ", \"summary_node\": " + std::to_string(o.summary_node);
  }
  if (!o.field.empty()) {
    out += ", \"field\": \"" + util::json_escape(o.field) + "\"";
  }
  out += ", \"detail\": \"" + util::json_escape(o.detail) + "\"}";
  return out;
}

}  // namespace

std::string validate_render_text(const ValidationResult& r,
                                 bool obligations_dump) {
  std::string out;
  for (const PipelineValidation& p : r.pipelines) {
    uint64_t ret = 0, elim = 0, sub = 0, off = 0;
    ledger_counts(p, ret, elim, sub, off);
    out += util::format(
        "pipeline %s: %llu paths / %llu branches, %llu obligations "
        "(%llu unsat, %llu unproven, %llu refuted), edges: %llu retained, "
        "%llu eliminated, %llu subsumed\n",
        p.instance.c_str(),
        static_cast<unsigned long long>(p.surviving_paths),
        static_cast<unsigned long long>(p.summary_branches),
        static_cast<unsigned long long>(p.obligations.size()),
        static_cast<unsigned long long>(p.unsat),
        static_cast<unsigned long long>(p.unproven),
        static_cast<unsigned long long>(p.refuted),
        static_cast<unsigned long long>(ret),
        static_cast<unsigned long long>(elim),
        static_cast<unsigned long long>(sub));
    for (const Obligation& o : p.obligations) {
      if (obligations_dump || o.verdict != ObligationVerdict::kUnsat) {
        out += obligation_line(o);
      }
    }
  }
  const char* verdict = r.proven() ? "PROVEN"
                        : r.sound() ? "SOUND (unproven obligations remain)"
                                    : "REFUTED";
  out += util::format(
      "summary validation: %s — %llu obligations (%llu unsat, %llu "
      "unproven, %llu refuted), %llu SMT checks\n",
      verdict, static_cast<unsigned long long>(r.obligations),
      static_cast<unsigned long long>(r.unsat),
      static_cast<unsigned long long>(r.unproven),
      static_cast<unsigned long long>(r.refuted),
      static_cast<unsigned long long>(r.smt_checks));
  return out;
}

std::string validate_render_json(const ValidationResult& r,
                                 bool obligations_dump) {
  std::string out = "{\n  \"pipelines\": [";
  bool first = true;
  for (const PipelineValidation& p : r.pipelines) {
    uint64_t ret = 0, elim = 0, sub = 0, off = 0;
    ledger_counts(p, ret, elim, sub, off);
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"instance\": \"" + util::json_escape(p.instance) + "\"";
    out += ", \"paths\": " + std::to_string(p.surviving_paths);
    out += ", \"branches\": " + std::to_string(p.summary_branches);
    out += ", \"obligations\": " + std::to_string(p.obligations.size());
    out += ", \"unsat\": " + std::to_string(p.unsat);
    out += ", \"unproven\": " + std::to_string(p.unproven);
    out += ", \"refuted\": " + std::to_string(p.refuted);
    out += ", \"smt_checks\": " + std::to_string(p.smt_checks);
    out += ", \"edges\": {\"retained\": " + std::to_string(ret);
    out += ", \"eliminated\": " + std::to_string(elim);
    out += ", \"subsumed\": " + std::to_string(sub);
    out += ", \"offtarget\": " + std::to_string(off) + "}";
    out += ", \"findings\": [";
    bool f1 = true;
    for (const Obligation& o : p.obligations) {
      if (!obligations_dump && o.verdict == ObligationVerdict::kUnsat) {
        continue;
      }
      out += f1 ? "" : ", ";
      f1 = false;
      out += json_obligation(o);
    }
    out += "]}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"obligations\": " + std::to_string(r.obligations) + ",\n";
  out += "  \"unsat\": " + std::to_string(r.unsat) + ",\n";
  out += "  \"unproven\": " + std::to_string(r.unproven) + ",\n";
  out += "  \"refuted\": " + std::to_string(r.refuted) + ",\n";
  out += "  \"smt_checks\": " + std::to_string(r.smt_checks) + ",\n";
  out += std::string("  \"sound\": ") + (r.sound() ? "true" : "false") +
         ",\n";
  out += std::string("  \"proven\": ") + (r.proven() ? "true" : "false") +
         "\n}\n";
  return out;
}

// --- Summary miscompilation injector --------------------------------------

const char* summary_fault_name(SummaryFaultKind k) noexcept {
  switch (k) {
    case SummaryFaultKind::kDropBranch: return "drop-branch";
    case SummaryFaultKind::kWidenGuard: return "widen-guard";
    case SummaryFaultKind::kDropEffect: return "drop-effect";
  }
  return "?";
}

std::optional<SummaryFaultKind> parse_summary_fault(const std::string& name) {
  if (name == "drop-branch") return SummaryFaultKind::kDropBranch;
  if (name == "widen-guard") return SummaryFaultKind::kWidenGuard;
  if (name == "drop-effect") return SummaryFaultKind::kDropEffect;
  return std::nullopt;
}

std::optional<std::string> inject_summary_fault(ir::Context& ctx, cfg::Cfg& g,
                                                SummaryFaultKind kind) {
  for (const cfg::InstanceInfo& info : g.instances()) {
    cfg::Node& entry = g.node(info.entry);
    switch (kind) {
      case SummaryFaultKind::kDropBranch: {
        // Dropping one of several branches loses real coverage; a
        // single-branch pipeline is skipped (dropping it would also kill
        // every downstream pipeline's pre-condition region).
        if (entry.succ.size() < 2) break;
        const cfg::NodeId dropped = entry.succ.front();
        entry.succ.erase(entry.succ.begin());
        return "dropped summarized branch at node " +
               std::to_string(dropped) + " of pipeline '" + info.name + "'";
      }
      case SummaryFaultKind::kWidenGuard: {
        if (entry.succ.size() < 2) break;  // widening needs a sibling branch
        cfg::NodeId cur = entry.succ.front();
        while (cur != info.exit) {
          cfg::Node& n = g.node(cur);
          if (!n.is_hash && n.stmt.kind == ir::StmtKind::kAssume &&
              !n.stmt.expr->is_true()) {
            n.stmt.expr = ctx.arena.bool_const(true);
            return "widened guard to `true` at node " + std::to_string(cur) +
                   " of pipeline '" + info.name + "'";
          }
          if (n.succ.size() != 1) break;
          cur = n.succ[0];
        }
        break;
      }
      case SummaryFaultKind::kDropEffect: {
        for (cfg::NodeId head : entry.succ) {
          cfg::NodeId prev = info.entry;
          cfg::NodeId cur = head;
          bool after_guard = false;
          while (cur != info.exit) {
            cfg::Node& n = g.node(cur);
            if (!n.is_hash && n.stmt.kind == ir::StmtKind::kAssume) {
              after_guard = true;
            } else if (after_guard && !n.is_hash &&
                       n.stmt.kind == ir::StmtKind::kAssign &&
                       n.succ.size() == 1) {
              const cfg::NodeId next = n.succ[0];
              cfg::Node& p = g.node(prev);
              std::replace(p.succ.begin(), p.succ.end(), cur, next);
              return "spliced out effect assign to '" +
                     ctx.fields.name(n.stmt.target) + "' at node " +
                     std::to_string(cur) + " of pipeline '" + info.name + "'";
            }
            if (n.succ.size() != 1) break;
            prev = cur;
            cur = n.succ[0];
          }
        }
        break;
      }
    }
  }
  return std::nullopt;
}

}  // namespace meissa::analysis
