// Summary translation validation (run after summary::summarize): a static
// equivalence checker that re-derives, per pipeline, the set of valid
// internal paths the summarizer is allowed to keep, and discharges one SMT
// obligation per decision the transform made:
//
//   elimination       an eliminated path-fragment's condition is UNSAT
//                     under the pipeline's public pre-condition (every
//                     pruned edge was genuinely infeasible)
//   guard-cover       a surviving original path implies its summarized
//                     branch's guard (the summary simulates the original)
//   guard-precision   a summarized branch's guard implies its original
//                     path condition (the summary admits nothing new)
//   effect            original and summarized final field values agree
//                     under the shared path condition
//   coverage          the summarized branch list and the re-derived valid
//                     path list align one-to-one (nothing dropped, nothing
//                     invented)
//   structure         the summarized subgraph has the encoder's shape
//                     (linear chains, exactly one guard each)
//
// Obligations are discharged through smt::Solver under a per-check Budget;
// an exhausted check is reported as `unproven` — never silently passed —
// and a walk degraded by exhaustion downgrades would-be refutations to
// `unproven` too (an undecided branch must not masquerade as a proof
// either way). `refuted` therefore always names a real, reproducible
// divergence at a specific pipeline and edge.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cfg/cfg.hpp"
#include "smt/solver.hpp"
#include "summary/summary.hpp"

namespace meissa::analysis {

enum class ObligationKind : uint8_t {
  kElimination,
  kGuardCover,
  kGuardPrecision,
  kEffect,
  kCoverage,
  kStructure,
};

enum class ObligationVerdict : uint8_t { kUnsat, kUnproven, kRefuted };

const char* obligation_kind_name(ObligationKind k) noexcept;
const char* obligation_verdict_name(ObligationVerdict v) noexcept;

// One discharged (or undischargeable) proof obligation. Node ids refer to
// the original graph for walk-side facts (`orig_from -> orig_node` is the
// eliminated or diverging edge) and to the summarized graph for
// `summary_node` (the branch's guard node).
struct Obligation {
  ObligationKind kind = ObligationKind::kElimination;
  ObligationVerdict verdict = ObligationVerdict::kUnsat;
  std::string pipeline;
  cfg::NodeId orig_from = cfg::kNoNode;
  cfg::NodeId orig_node = cfg::kNoNode;
  cfg::NodeId summary_node = cfg::kNoNode;
  std::string field;   // effect obligations: the disagreeing field
  std::string detail;  // human-readable context (condition, counts, ...)
  uint64_t smt_checks = 0;
};

// Fate of one original intra-pipeline edge under the transform.
enum class EdgeStatus : uint8_t {
  kRetained,    // lies on a surviving valid path
  kEliminated,  // pruned, with an elimination obligation on record
  kSubsumed,    // unreachable given eliminations elsewhere on its paths
  kOfftarget,   // leaves the entry->exit region (never part of a result)
};

struct EdgeLedgerEntry {
  cfg::NodeId from = cfg::kNoNode;
  cfg::NodeId to = cfg::kNoNode;
  EdgeStatus status = EdgeStatus::kRetained;
  int obligation = -1;  // kEliminated: index into obligations (first proof)
};

struct PipelineValidation {
  std::string instance;
  std::vector<Obligation> obligations;
  std::vector<EdgeLedgerEntry> ledger;
  uint64_t surviving_paths = 0;   // re-derived valid internal paths
  uint64_t summary_branches = 0;  // branch chains found in the summary
  uint64_t unsat = 0;
  uint64_t unproven = 0;
  uint64_t refuted = 0;
  uint64_t smt_checks = 0;
  double seconds = 0;
};

struct ValidationResult {
  std::vector<PipelineValidation> pipelines;
  uint64_t obligations = 0;
  uint64_t unsat = 0;
  uint64_t unproven = 0;
  uint64_t refuted = 0;
  uint64_t smt_checks = 0;
  double seconds = 0;

  // No refuted obligation: the transform is sound as far as we could
  // decide. NOT the same as proven(): unproven obligations remain open.
  bool sound() const noexcept { return refuted == 0; }
  // Every obligation discharged UNSAT: the transform is proved.
  bool proven() const noexcept { return refuted == 0 && unproven == 0; }

  // First refuted obligation across pipelines, or nullptr.
  const Obligation* first_refuted() const noexcept;
};

struct ValidateOptions {
  bool use_z3 = false;
  // Per-obligation solver budget. Exhaustion yields `unproven`.
  smt::Budget budget;
  // Cap on re-derived paths per pipeline; exceeding it aborts that
  // pipeline's walk with an `unproven` coverage obligation (explicitly
  // reported, never silently passed).
  uint64_t max_walk_paths = 1u << 17;
  // Mirrors the SummaryOptions the summarize() call used, so the validator
  // re-derives public pre-conditions the same way (enumeration limit,
  // dataflow fallback, static pruning).
  summary::SummaryOptions summary;
};

// Validates `summarized` (the summarize() output graph) against
// `original` (the graph summarize() was given; node ids are shared).
ValidationResult validate_summary(ir::Context& ctx, const cfg::Cfg& original,
                                  const cfg::Cfg& summarized,
                                  const ValidateOptions& opts = {});

// Deterministic renderings for the m4verify CLI.
std::string validate_render_text(const ValidationResult& r,
                                 bool obligations_dump);
std::string validate_render_json(const ValidationResult& r,
                                 bool obligations_dump);

// --- Summary miscompilation injector (testing the validator) -------------
//
// sim::FaultKind models device-toolchain miscompiles of the *device
// program*; these operate on the summarized CFG itself — the artifact the
// validator guards — so tests and CI can assert that a miscompiled summary
// is flagged at the exact pipeline and edge.
enum class SummaryFaultKind : uint8_t {
  kDropBranch,   // unlink a summarized branch chain (lost coverage)
  kWidenGuard,   // replace a branch guard with `true` (spurious admission)
  kDropEffect,   // splice one post-guard effect assign out of a chain
};

const char* summary_fault_name(SummaryFaultKind k) noexcept;
std::optional<SummaryFaultKind> parse_summary_fault(const std::string& name);

// Applies the fault to the first applicable site (deterministic scan in
// instance order). Returns a description of what was broken, or nullopt if
// no applicable site exists.
std::optional<std::string> inject_summary_fault(ir::Context& ctx, cfg::Cfg& g,
                                                SummaryFaultKind kind);

}  // namespace meissa::analysis
