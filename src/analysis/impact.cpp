#include "analysis/impact.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <unordered_set>

namespace meissa::analysis {

namespace {

// FNV-1a 64 — the same hash discipline as driver/checkpoint's content key
// (kept local: analysis sits below driver in the link order).
constexpr uint64_t kOffset = 1469598103934665603ull;
constexpr uint64_t kPrime = 1099511628211ull;

uint64_t mix_bytes(uint64_t h, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) h = (h ^ p[i]) * kPrime;
  return h;
}

uint64_t mix_u64(uint64_t h, uint64_t v) { return mix_bytes(h, &v, sizeof(v)); }

uint64_t mix_str(uint64_t h, const std::string& s) {
  uint64_t n = s.size();
  h = mix_bytes(h, &n, sizeof(n));
  return mix_bytes(h, s.data(), s.size());
}

// Node content rendered with field *names* and expression strings — never
// FieldIds (interning order) or NodeIds (build order). Labels are
// diagnostics-only and deliberately excluded.
uint64_t mix_node_content(uint64_t h, const ir::Context& ctx,
                          const cfg::Cfg& g, cfg::NodeId id) {
  const cfg::Node& n = g.node(id);
  h = mix_u64(h, static_cast<uint64_t>(n.stmt.kind));
  if (n.stmt.target != ir::kInvalidField) {
    h = mix_str(h, ctx.fields.name(n.stmt.target));
  }
  if (n.stmt.expr != nullptr) {
    h = mix_str(h, ir::to_string(n.stmt.expr, ctx.fields));
  }
  h = mix_u64(h, n.is_hash ? 1 : 0);
  if (n.is_hash) {
    h = mix_str(h, ctx.fields.name(n.hash.dest));
    h = mix_u64(h, static_cast<uint64_t>(n.hash.algo));
    h = mix_u64(h, n.hash.keys.size());
    for (ir::FieldId k : n.hash.keys) h = mix_str(h, ctx.fields.name(k));
    h = mix_u64(h, n.hash.key_exprs.size());
    for (ir::ExprRef k : n.hash.key_exprs) {
      h = mix_str(h, ir::to_string(k, ctx.fields));
    }
  }
  h = mix_u64(h, static_cast<uint64_t>(n.exit));
  h = mix_u64(h, static_cast<uint64_t>(static_cast<int64_t>(n.emit_instance)));
  h = mix_u64(h, n.synthetic ? 1 : 0);
  h = mix_u64(h, static_cast<uint64_t>(n.origin.kind));
  if (n.origin.kind != cfg::OriginKind::kNone) {
    h = mix_str(h, g.origin_ref(id));
    h = mix_u64(h, static_cast<uint64_t>(static_cast<int64_t>(n.origin.index)));
    h = mix_u64(h, static_cast<uint64_t>(static_cast<int64_t>(n.origin.sub)));
  }
  return h;
}

constexpr uint64_t kForeignSucc = ~uint64_t{0};   // edge leaving the region
constexpr uint64_t kRegionBoundary = 0xE0F0ull;   // exit marker

bool is_table_node(const cfg::Node& n) {
  return n.origin.kind == cfg::OriginKind::kTableEntry ||
         n.origin.kind == cfg::OriginKind::kTableMiss;
}

// Discovery-order BFS over one region from the instance entry (successor
// order fixes the discovery order, so local indices are a pure function of
// the subgraph's shape), stopping at the exit. Returns the nodes in
// discovery order and their local indices.
void region_order(const cfg::Cfg& g, size_t k, std::vector<cfg::NodeId>& order,
                  std::unordered_map<cfg::NodeId, uint64_t>& local) {
  const cfg::InstanceInfo& info = g.instances()[k];
  std::deque<cfg::NodeId> queue;
  auto discover = [&](cfg::NodeId id) {
    if (local.emplace(id, order.size()).second) {
      order.push_back(id);
      queue.push_back(id);
    }
  };
  discover(info.entry);
  while (!queue.empty()) {
    const cfg::NodeId cur = queue.front();
    queue.pop_front();
    if (cur == info.exit) continue;  // exit successors belong to the glue
    for (cfg::NodeId s : g.node(cur).succ) {
      const cfg::Node& sn = g.node(s);
      if (s == info.exit || sn.instance == static_cast<int>(k)) discover(s);
    }
  }
}

uint64_t mix_instance_meta(uint64_t h, const ir::Context& ctx,
                           const cfg::InstanceInfo& info) {
  h = mix_str(h, info.name);
  h = mix_str(h, info.pipeline);
  h = mix_u64(h, static_cast<uint64_t>(info.switch_id));
  h = mix_u64(h, info.emit_order.size());
  for (const std::string& e : info.emit_order) h = mix_str(h, e);
  std::vector<std::string> headers;
  headers.reserve(info.validity.size());
  for (const auto& [hname, vf] : info.validity) headers.push_back(hname);
  std::sort(headers.begin(), headers.end());
  for (const std::string& hname : headers) {
    h = mix_str(h, hname);
    h = mix_str(h, ctx.fields.name(info.validity.at(hname)));
  }
  return h;
}

// One region's full content hash.
uint64_t region_fingerprint(const ir::Context& ctx, const cfg::Cfg& g,
                            size_t k) {
  const cfg::InstanceInfo& info = g.instances()[k];
  std::vector<cfg::NodeId> order;
  std::unordered_map<cfg::NodeId, uint64_t> local;
  region_order(g, k, order, local);

  uint64_t h = mix_instance_meta(kOffset, ctx, info);
  h = mix_u64(h, order.size());
  for (cfg::NodeId id : order) {
    h = mix_node_content(h, ctx, g, id);
    if (id == info.exit) {
      h = mix_u64(h, kRegionBoundary);
      continue;
    }
    const std::vector<cfg::NodeId>& succ = g.node(id).succ;
    h = mix_u64(h, succ.size());
    for (cfg::NodeId s : succ) {
      auto it = local.find(s);
      h = mix_u64(h, it != local.end() ? it->second : kForeignSucc);
    }
  }
  return h;
}

// The region with each expanded table collapsed to one opaque super-node.
// Stable under pure table-configuration changes: entry/miss nodes
// contribute only the table's name, successor lists are mapped to units
// and deduplicated (so an N-way entry fan hashes the same for every N).
uint64_t region_code_fingerprint(const ir::Context& ctx, const cfg::Cfg& g,
                                 size_t k) {
  const cfg::InstanceInfo& info = g.instances()[k];
  std::vector<cfg::NodeId> order;
  std::unordered_map<cfg::NodeId, uint64_t> local;
  region_order(g, k, order, local);

  // Unit assignment in discovery order: every node of table t maps to t's
  // single unit; other nodes get their own.
  std::unordered_map<cfg::NodeId, uint64_t> unit_of;
  std::unordered_map<std::string, uint64_t> table_unit;
  struct Unit {
    bool is_table = false;
    std::string table;                 // is_table
    cfg::NodeId node = cfg::kNoNode;   // !is_table
    std::vector<cfg::NodeId> members;  // discovery order
  };
  std::vector<Unit> units;
  for (cfg::NodeId id : order) {
    const cfg::Node& n = g.node(id);
    if (is_table_node(n)) {
      const std::string ref = g.origin_ref(id);
      auto [it, fresh] = table_unit.emplace(ref, units.size());
      if (fresh) {
        units.push_back({true, ref, cfg::kNoNode, {}});
      }
      units[it->second].members.push_back(id);
      unit_of.emplace(id, it->second);
    } else {
      unit_of.emplace(id, units.size());
      units.push_back({false, "", id, {id}});
    }
  }

  uint64_t h = mix_instance_meta(kOffset, ctx, info);
  h = mix_u64(h, units.size());
  for (const Unit& u : units) {
    if (u.is_table) {
      h = mix_u64(h, 1);
      h = mix_str(h, u.table);
    } else {
      h = mix_u64(h, 0);
      h = mix_node_content(h, ctx, g, u.node);
    }
    // Successor units over all members, deduplicated in first-appearance
    // order, self-edges (table-internal) dropped.
    std::vector<uint64_t> succ_units;
    const uint64_t self = unit_of.at(u.members.front());
    for (cfg::NodeId m : u.members) {
      if (m == info.exit) {
        h = mix_u64(h, kRegionBoundary);
        continue;
      }
      for (cfg::NodeId s : g.node(m).succ) {
        auto it = unit_of.find(s);
        const uint64_t su = it != unit_of.end() ? it->second : kForeignSucc;
        if (su == self) continue;
        if (std::find(succ_units.begin(), succ_units.end(), su) ==
            succ_units.end()) {
          succ_units.push_back(su);
        }
      }
    }
    h = mix_u64(h, succ_units.size());
    for (uint64_t su : succ_units) h = mix_u64(h, su);
  }
  return h;
}

// Content hash of one table's expansion inside one region: member node
// content in discovery order, successors as member-local indices (foreign
// = sentinel). A change confined to the expansion flips exactly this hash.
std::unordered_map<std::string, uint64_t> table_expansion_fps(
    const ir::Context& ctx, const cfg::Cfg& g, size_t k) {
  std::vector<cfg::NodeId> order;
  std::unordered_map<cfg::NodeId, uint64_t> local;
  region_order(g, k, order, local);

  std::unordered_map<std::string, std::vector<cfg::NodeId>> members;
  for (cfg::NodeId id : order) {
    if (is_table_node(g.node(id))) members[g.origin_ref(id)].push_back(id);
  }
  std::unordered_map<std::string, uint64_t> out;
  for (const auto& [table, nodes] : members) {
    std::unordered_map<cfg::NodeId, uint64_t> midx;
    for (size_t i = 0; i < nodes.size(); ++i) midx.emplace(nodes[i], i);
    uint64_t h = kOffset;
    h = mix_u64(h, nodes.size());
    for (cfg::NodeId id : nodes) {
      h = mix_node_content(h, ctx, g, id);
      const std::vector<cfg::NodeId>& succ = g.node(id).succ;
      h = mix_u64(h, succ.size());
      for (cfg::NodeId s : succ) {
        auto it = midx.find(s);
        h = mix_u64(h, it != midx.end() ? it->second : kForeignSucc);
      }
    }
    out.emplace(table, h);
  }
  return out;
}

// The inter-pipeline glue with instances collapsed to super-nodes: a
// traversal unit is either one glue node or one whole instance (whose
// outgoing edges are its exit node's successors).
uint64_t glue_fingerprint(const ir::Context& ctx, const cfg::Cfg& g) {
  if (g.size() == 0) return kOffset;
  struct Unit {
    bool is_instance = false;
    uint32_t id = 0;  // NodeId or instance index
  };
  auto unit_of = [&](cfg::NodeId id) -> Unit {
    const cfg::Node& n = g.node(id);
    if (n.instance >= 0) return {true, static_cast<uint32_t>(n.instance)};
    return {false, id};
  };
  auto key_of = [](Unit u) -> uint64_t {
    return (uint64_t{u.is_instance ? 1u : 0u} << 32) | u.id;
  };
  std::unordered_map<uint64_t, uint64_t> local;
  std::vector<Unit> order;
  std::deque<Unit> queue;
  auto discover = [&](Unit u) {
    if (local.emplace(key_of(u), order.size()).second) {
      order.push_back(u);
      queue.push_back(u);
    }
  };
  discover(unit_of(g.entry()));
  auto succ_of = [&](Unit u) -> const std::vector<cfg::NodeId>& {
    if (u.is_instance) return g.node(g.instances()[u.id].exit).succ;
    return g.node(u.id).succ;
  };
  while (!queue.empty()) {
    const Unit cur = queue.front();
    queue.pop_front();
    for (cfg::NodeId s : succ_of(cur)) discover(unit_of(s));
  }

  uint64_t h = kOffset;
  h = mix_u64(h, order.size());
  for (const Unit& u : order) {
    if (u.is_instance) {
      h = mix_u64(h, 1);
      h = mix_str(h, g.instances()[u.id].name);
    } else {
      h = mix_u64(h, 0);
      h = mix_node_content(h, ctx, g, u.id);
    }
    const std::vector<cfg::NodeId>& succ = succ_of(u);
    h = mix_u64(h, succ.size());
    for (cfg::NodeId s : succ) h = mix_u64(h, local.at(key_of(unit_of(s))));
  }
  return h;
}

// j ⇝ k reachability: reach[j][k] is true when j's exit reaches k's entry.
std::vector<std::vector<bool>> instance_reach(const cfg::Cfg& g) {
  const size_t n = g.instances().size();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (size_t j = 0; j < n; ++j) {
    std::vector<bool> seen(g.size(), false);
    std::vector<cfg::NodeId> work{g.instances()[j].exit};
    seen[g.instances()[j].exit] = true;
    while (!work.empty()) {
      const cfg::NodeId cur = work.back();
      work.pop_back();
      for (cfg::NodeId s : g.node(cur).succ) {
        if (!seen[s]) {
          seen[s] = true;
          work.push_back(s);
        }
      }
    }
    for (size_t k = 0; k < n; ++k) {
      if (k != j && seen[g.instances()[k].entry]) reach[j][k] = true;
    }
  }
  return reach;
}

// Fields a node reads (expression operands for assign/assume, keys for
// hash nodes) — the same notion analysis/lint uses.
void node_reads(const cfg::Cfg& g, cfg::NodeId id,
                std::unordered_set<ir::FieldId>& out) {
  const cfg::Node& n = g.node(id);
  if (n.is_hash) {
    for (ir::FieldId k : n.hash.keys) out.insert(k);
    for (ir::ExprRef e : n.hash.key_exprs) ir::collect_fields(e, out);
    return;
  }
  if (n.stmt.kind == ir::StmtKind::kAssign ||
      n.stmt.kind == ir::StmtKind::kAssume) {
    ir::collect_fields(n.stmt.expr, out);
  }
}

std::vector<std::string> sorted_names(const ir::Context& ctx,
                                      const std::unordered_set<ir::FieldId>& s) {
  std::vector<std::string> out;
  out.reserve(s.size());
  for (ir::FieldId f : s) out.push_back(ctx.fields.name(f));
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

uint64_t fingerprint_graph(const ir::Context& ctx, const cfg::Cfg& g) {
  uint64_t h = kOffset;
  h = mix_u64(h, g.size());
  h = mix_u64(h, g.entry());
  for (cfg::NodeId n = 0; n < g.size(); ++n) {
    const cfg::Node& node = g.node(n);
    h = mix_u64(h, static_cast<uint64_t>(node.stmt.kind));
    if (node.stmt.target != ir::kInvalidField) {
      h = mix_str(h, ctx.fields.name(node.stmt.target));
    }
    if (node.stmt.expr != nullptr) {
      h = mix_str(h, ir::to_string(node.stmt.expr, ctx.fields));
    }
    h = mix_u64(h, node.is_hash ? 1 : 0);
    if (node.is_hash) {
      h = mix_str(h, ctx.fields.name(node.hash.dest));
      h = mix_u64(h, static_cast<uint64_t>(node.hash.algo));
      h = mix_u64(h, node.hash.keys.size());
      for (ir::FieldId k : node.hash.keys) h = mix_str(h, ctx.fields.name(k));
      h = mix_u64(h, node.hash.key_exprs.size());
      for (ir::ExprRef k : node.hash.key_exprs) {
        h = mix_str(h, ir::to_string(k, ctx.fields));
      }
    }
    h = mix_u64(h, node.succ.size());
    for (cfg::NodeId s : node.succ) h = mix_u64(h, s);
    h = mix_u64(h, static_cast<uint64_t>(node.exit));
    h = mix_u64(h, static_cast<uint64_t>(node.emit_instance));
    h = mix_u64(h, static_cast<uint64_t>(node.instance));
  }
  h = mix_u64(h, g.instances().size());
  for (const cfg::InstanceInfo& info : g.instances()) {
    h = mix_str(h, info.name);
    h = mix_str(h, info.pipeline);
    h = mix_u64(h, static_cast<uint64_t>(info.switch_id));
    h = mix_u64(h, info.entry);
    h = mix_u64(h, info.exit);
    for (const std::string& e : info.emit_order) h = mix_str(h, e);
  }
  return h;
}

RegionFingerprints fingerprint_regions(const ir::Context& ctx,
                                       const cfg::Cfg& g) {
  RegionFingerprints out;
  const size_t n = g.instances().size();
  out.instances.reserve(n);
  for (const cfg::InstanceInfo& info : g.instances()) {
    out.instances.push_back(info.name);
  }
  for (size_t k = 0; k < n; ++k) {
    const std::string& name = g.instances()[k].name;
    out.region.emplace(name, region_fingerprint(ctx, g, k));
    out.region_code.emplace(name, region_code_fingerprint(ctx, g, k));
    out.table_expansion.emplace(name, table_expansion_fps(ctx, g, k));
  }
  const std::vector<std::vector<bool>> reach = instance_reach(g);
  for (size_t k = 0; k < n; ++k) {
    std::vector<std::string> ups;
    for (size_t j = 0; j < n; ++j) {
      if (reach[j][k]) ups.push_back(g.instances()[j].name);
    }
    out.upstream.emplace(g.instances()[k].name, std::move(ups));
  }
  out.glue = glue_fingerprint(ctx, g);
  out.whole = fingerprint_graph(ctx, g);
  return out;
}

std::unordered_map<std::string, uint64_t> fingerprint_tables(
    const p4::RuleSet& rules) {
  std::unordered_map<std::string, uint64_t> out;
  auto slot = [&](const std::string& t) -> uint64_t& {
    return out.emplace(t, kOffset).first->second;
  };
  // Entries fold in install order — the order is part of the
  // configuration (it breaks full-rank ties in RuleSet::ordered_entries).
  for (const p4::TableEntry& e : rules.entries) {
    uint64_t& h = slot(e.table);
    h = mix_u64(h, 1);  // entry marker
    h = mix_u64(h, e.matches.size());
    for (const p4::KeyMatch& m : e.matches) {
      h = mix_u64(h, m.value);
      h = mix_u64(h, m.mask);
      h = mix_u64(h, static_cast<uint64_t>(m.prefix_len));
      h = mix_u64(h, m.lo);
      h = mix_u64(h, m.hi);
    }
    h = mix_str(h, e.action);
    h = mix_u64(h, e.args.size());
    for (uint64_t a : e.args) h = mix_u64(h, a);
    h = mix_u64(h, static_cast<uint64_t>(static_cast<int64_t>(e.priority)));
  }
  for (const auto& [table, d] : rules.default_overrides) {
    uint64_t& h = slot(table);
    h = mix_u64(h, 2);  // default-override marker
    h = mix_str(h, d.action);
    h = mix_u64(h, d.args.size());
    for (uint64_t a : d.args) h = mix_u64(h, a);
  }
  return out;
}

RegionDeps build_region_deps(const ir::Context& ctx, const cfg::Cfg& g) {
  RegionDeps out;
  const size_t n = g.instances().size();
  std::vector<std::unordered_set<ir::FieldId>> reads(n), writes(n);
  std::vector<std::set<std::string>> tables(n);
  std::vector<std::unordered_map<std::string, std::unordered_set<ir::FieldId>>>
      table_fields(n);
  std::vector<bool> conservative(n, false);
  // Per-node dataflow of each region, for the intra-region flow closure:
  // a predicate couples its operands (assume(a == b) with a suspect makes
  // b's admissible values suspect), an assign flows operands to its
  // target, a hash flows keys to its dest.
  struct NodeIO {
    std::unordered_set<ir::FieldId> reads;
    std::unordered_set<ir::FieldId> writes;
    bool couples = false;
  };
  std::vector<std::vector<NodeIO>> io(n);
  for (cfg::NodeId id = 0; id < g.size(); ++id) {
    const cfg::Node& node = g.node(id);
    if (node.instance < 0) continue;
    const size_t k = static_cast<size_t>(node.instance);
    node_reads(g, id, reads[k]);
    NodeIO nio;
    node_reads(g, id, nio.reads);
    if (node.is_hash) {
      writes[k].insert(node.hash.dest);
      nio.writes.insert(node.hash.dest);
      conservative[k] = true;  // opaque to the solver: unresolved dataflow
    } else if (node.stmt.kind == ir::StmtKind::kAssign) {
      writes[k].insert(node.stmt.target);
      nio.writes.insert(node.stmt.target);
    } else if (node.stmt.kind == ir::StmtKind::kAssume) {
      nio.couples = true;
    }
    if (!nio.reads.empty() || !nio.writes.empty()) {
      io[k].push_back(std::move(nio));
    }
    if (is_table_node(node)) {
      const std::string ref = g.origin_ref(id);
      tables[k].insert(ref);
      // The table's influence surface: its match keys (assume operands)
      // plus its action effects (assign targets + operands, hash dests).
      std::unordered_set<ir::FieldId>& tf = table_fields[k][ref];
      node_reads(g, id, tf);
      if (node.is_hash) {
        tf.insert(node.hash.dest);
      } else if (node.stmt.kind == ir::StmtKind::kAssign) {
        tf.insert(node.stmt.target);
      }
    }
  }

  // Fold the reads of glue nodes (topology guards, hand-off assigns) into
  // every region whose entry they can reach: a glue predicate over a field
  // some upstream region writes decides whether that region's packets
  // reach this one — a def-use edge the region's own nodes never show.
  std::vector<std::vector<cfg::NodeId>> preds(g.size());
  for (cfg::NodeId id = 0; id < g.size(); ++id) {
    for (cfg::NodeId s : g.node(id).succ) preds[s].push_back(id);
  }
  std::vector<std::unordered_set<ir::FieldId>> entry_reads(n);
  for (size_t k = 0; k < n; ++k) {
    std::vector<bool> seen(g.size(), false);
    std::vector<cfg::NodeId> work{g.instances()[k].entry};
    seen[g.instances()[k].entry] = true;
    while (!work.empty()) {
      const cfg::NodeId cur = work.back();
      work.pop_back();
      for (cfg::NodeId p : preds[cur]) {
        if (!seen[p]) {
          seen[p] = true;
          work.push_back(p);
        }
      }
    }
    for (cfg::NodeId id = 0; id < g.size(); ++id) {
      if (seen[id] && g.node(id).instance < 0) {
        node_reads(g, id, entry_reads[k]);
      }
    }
  }

  // Glue-node dataflow, for taint propagation through hand-off assigns and
  // coupling guards that live outside every region.
  for (cfg::NodeId id = 0; id < g.size(); ++id) {
    const cfg::Node& node = g.node(id);
    if (node.instance >= 0) continue;
    std::unordered_set<ir::FieldId> gr, gw;
    node_reads(g, id, gr);
    if (node.is_hash) {
      gw.insert(node.hash.dest);
    } else if (node.stmt.kind == ir::StmtKind::kAssign) {
      gw.insert(node.stmt.target);
    }
    if (gr.empty() && gw.empty()) continue;
    out.glue.push_back({sorted_names(ctx, gr), sorted_names(ctx, gw)});
  }

  const std::vector<std::vector<bool>> reach = instance_reach(g);
  out.regions.resize(n);
  for (size_t k = 0; k < n; ++k) {
    RegionDeps::Region& r = out.regions[k];
    r.name = g.instances()[k].name;
    r.reads = sorted_names(ctx, reads[k]);
    r.writes = sorted_names(ctx, writes[k]);
    r.tables.assign(tables[k].begin(), tables[k].end());
    r.entry_reads = sorted_names(ctx, entry_reads[k]);
    for (const auto& [t, fs] : table_fields[k]) {
      r.table_fields.emplace(t, sorted_names(ctx, fs));
    }
    r.conservative = conservative[k];
    // Flow closure from each read field (only reads can trigger a node).
    // Control-flow order is deliberately ignored — the order-insensitive
    // fixpoint is a superset of every execution-order flow, so it is sound.
    for (ir::FieldId f0 : reads[k]) {
      std::unordered_set<ir::FieldId> s{f0};
      bool grew = true;
      while (grew) {
        grew = false;
        for (const NodeIO& nio : io[k]) {
          bool hit = false;
          for (ir::FieldId f : nio.reads) {
            if (s.count(f) != 0) {
              hit = true;
              break;
            }
          }
          if (!hit) continue;
          for (ir::FieldId f : nio.writes) grew |= s.insert(f).second;
          if (nio.couples) {
            for (ir::FieldId f : nio.reads) grew |= s.insert(f).second;
          }
        }
      }
      if (s.size() > 1) {
        r.flow.emplace(ctx.fields.name(f0), sorted_names(ctx, s));
      }
    }
  }
  for (size_t k = 0; k < n; ++k) {
    std::vector<std::string> deps;
    for (size_t j = 0; j < n; ++j) {
      if (!reach[j][k]) continue;
      bool edge = conservative[k];
      if (!edge) {
        auto overlaps = [&](const std::unordered_set<ir::FieldId>& a) {
          for (ir::FieldId f : a) {
            if (reads[k].count(f) != 0 || entry_reads[k].count(f) != 0) {
              return true;
            }
          }
          return false;
        };
        // writes(j) feeds k's reads; reads(j) matters too — j's predicates
        // shape the public pre-condition k is explored under.
        edge = overlaps(writes[j]) || overlaps(reads[j]);
      }
      if (edge) deps.push_back(g.instances()[j].name);
    }
    out.edges.emplace(g.instances()[k].name, std::move(deps));
  }
  return out;
}

ImpactModel build_impact_model(const ir::Context& ctx, const cfg::Cfg& g,
                               const p4::RuleSet& rules) {
  ImpactModel m;
  m.fps = fingerprint_regions(ctx, g);
  m.deps = build_region_deps(ctx, g);
  m.tables = fingerprint_tables(rules);
  return m;
}

ImpactDiff compute_impact(const ImpactModel& baseline,
                          const ImpactModel& current) {
  ImpactDiff d;
  std::set<std::string> changed;
  {
    std::set<std::string> all;
    for (const auto& [t, fp] : baseline.tables) all.insert(t);
    for (const auto& [t, fp] : current.tables) all.insert(t);
    for (const std::string& t : all) {
      auto b = baseline.tables.find(t);
      auto c = current.tables.find(t);
      if (b == baseline.tables.end() || c == current.tables.end() ||
          b->second != c->second) {
        changed.insert(t);
      }
    }
  }
  d.changed_tables.assign(changed.begin(), changed.end());

  if (baseline.fps.instances != current.fps.instances ||
      baseline.fps.glue != current.fps.glue) {
    // Structural edit: the region decomposition or the inter-pipeline glue
    // itself changed — nothing may be reused.
    d.full = true;
    d.dirty = current.fps.instances;
    return d;
  }

  // Region lookup in both models (regions are few; linear scan is fine).
  auto region_of = [](const RegionDeps& deps,
                      const std::string& name) -> const RegionDeps::Region* {
    for (const RegionDeps::Region& r : deps.regions) {
      if (r.name == name) return &r;
    }
    return nullptr;
  };

  std::unordered_set<std::string> dirty;
  std::unordered_set<std::string> taint;
  auto add_fields = [&](const std::vector<std::string>& fs) {
    for (const std::string& f : fs) taint.insert(f);
  };

  // --- Seeds: fingerprint-mismatched regions and regions expanding a
  // changed table (normally the same set — entries are region nodes).
  // A table-only change (region_code unchanged) seeds taint with just the
  // mismatched tables' affected fields; a code edit seeds the region's
  // whole read+write surface.
  for (const std::string& name : current.fps.instances) {
    const RegionDeps::Region* rb = region_of(baseline.deps, name);
    const RegionDeps::Region* rc = region_of(current.deps, name);
    auto bf = baseline.fps.region.find(name);
    auto cf = current.fps.region.find(name);
    const bool fp_mismatch = bf == baseline.fps.region.end() ||
                             cf == current.fps.region.end() ||
                             bf->second != cf->second;
    bool expands_changed = false;
    for (const RegionDeps::Region* r : {rb, rc}) {
      if (r == nullptr) continue;
      for (const std::string& t : r->tables) {
        if (changed.count(t) != 0) expands_changed = true;
      }
    }
    if (!fp_mismatch && !expands_changed) continue;
    dirty.insert(name);

    auto bc = baseline.fps.region_code.find(name);
    auto cc = current.fps.region_code.find(name);
    const bool code_same = bc != baseline.fps.region_code.end() &&
                           cc != current.fps.region_code.end() &&
                           bc->second == cc->second;
    bool attributed = false;
    if (code_same) {
      // Attribute the mismatch to tables whose expansion hash differs (or
      // whose configuration changed): the change can influence behavior
      // only through those tables' fields.
      std::set<std::string> ts;
      for (const RegionDeps::Region* r : {rb, rc}) {
        if (r != nullptr) ts.insert(r->tables.begin(), r->tables.end());
      }
      auto eb = baseline.fps.table_expansion.find(name);
      auto ec = current.fps.table_expansion.find(name);
      for (const std::string& t : ts) {
        bool differs = changed.count(t) != 0;
        if (!differs) {
          const uint64_t* hb = nullptr;
          const uint64_t* hc = nullptr;
          if (eb != baseline.fps.table_expansion.end()) {
            auto it = eb->second.find(t);
            if (it != eb->second.end()) hb = &it->second;
          }
          if (ec != current.fps.table_expansion.end()) {
            auto it = ec->second.find(t);
            if (it != ec->second.end()) hc = &it->second;
          }
          differs = hb == nullptr || hc == nullptr || *hb != *hc;
        }
        if (!differs) continue;
        attributed = true;
        for (const RegionDeps::Region* r : {rb, rc}) {
          if (r == nullptr) continue;
          auto it = r->table_fields.find(t);
          if (it != r->table_fields.end()) add_fields(it->second);
        }
      }
    }
    if (!attributed) {
      // Code edit, or a mismatch no table expansion explains: the whole
      // region is suspect.
      for (const RegionDeps::Region* r : {rb, rc}) {
        if (r == nullptr) continue;
        add_fields(r->reads);
        add_fields(r->writes);
      }
    }
  }

  // --- Fixpoint over the UNION of both models (an edge or flow only the
  // baseline had still propagates — a removed upstream write changes what
  // reaches the reader just as an added one does).
  std::unordered_map<std::string, std::unordered_set<std::string>> dep;
  for (const RegionDeps* deps : {&baseline.deps, &current.deps}) {
    for (const auto& [k, js] : deps->edges) dep[k].insert(js.begin(), js.end());
  }
  auto intersects = [&](const std::vector<std::string>& fs) {
    for (const std::string& f : fs) {
      if (taint.count(f) != 0) return true;
    }
    return false;
  };
  bool grew = true;
  while (grew) {
    grew = false;
    const size_t before = taint.size();
    // Dirty regions push taint through their intra-region flow closures.
    for (const std::string& name : dirty) {
      for (const RegionDeps* deps : {&baseline.deps, &current.deps}) {
        const RegionDeps::Region* r = region_of(*deps, name);
        if (r == nullptr) continue;
        std::vector<std::string> hits;
        for (const auto& [f, out] : r->flow) {
          if (taint.count(f) != 0) hits.push_back(f);
        }
        for (const std::string& f : hits) add_fields(r->flow.at(f));
      }
    }
    // Glue nodes reading a tainted field couple their other fields in.
    for (const RegionDeps* deps : {&baseline.deps, &current.deps}) {
      for (const RegionDeps::GlueIO& gio : deps->glue) {
        if (!intersects(gio.reads)) continue;
        add_fields(gio.reads);
        add_fields(gio.writes);
      }
    }
    if (taint.size() != before) grew = true;
    // A clean region turns dirty when a dirty upstream region has an edge
    // into it AND the taint reaches its effective reads (or it has
    // unresolved dataflow).
    for (const std::string& name : current.fps.instances) {
      if (dirty.count(name) != 0) continue;
      auto it = dep.find(name);
      if (it == dep.end()) continue;
      bool dirty_upstream = false;
      for (const std::string& j : it->second) {
        if (dirty.count(j) != 0) {
          dirty_upstream = true;
          break;
        }
      }
      if (!dirty_upstream) continue;
      bool affected = false;
      for (const RegionDeps* deps : {&baseline.deps, &current.deps}) {
        const RegionDeps::Region* r = region_of(*deps, name);
        if (r == nullptr) continue;
        if (r->conservative || intersects(r->reads) ||
            intersects(r->entry_reads)) {
          affected = true;
        }
      }
      if (affected) {
        dirty.insert(name);
        grew = true;
      }
    }
  }

  for (const std::string& name : current.fps.instances) {
    if (dirty.count(name) != 0) {
      d.dirty.push_back(name);
    } else {
      d.clean.push_back(name);
    }
  }
  d.tainted_fields.assign(taint.begin(), taint.end());
  std::sort(d.tainted_fields.begin(), d.tainted_fields.end());
  return d;
}

}  // namespace meissa::analysis
