#include "analysis/env.hpp"

#include "util/bits.hpp"

namespace meissa::analysis {

namespace {

void apply_atom(smt::Domain& d, const Atom& a) {
  if (!a.set.empty()) {
    d.require_value_set(a.set);
    return;
  }
  switch (a.op) {
    case ir::CmpOp::kEq: d.require_masked_eq(a.mask, a.value); break;
    case ir::CmpOp::kNe: d.require_masked_ne(a.mask, a.value); break;
    case ir::CmpOp::kLt: d.require_lt(a.value); break;
    case ir::CmpOp::kLe: d.require_le(a.value); break;
    case ir::CmpOp::kGt: d.require_gt(a.value); break;
    case ir::CmpOp::kGe: d.require_ge(a.value); break;
  }
}

void apply_negated(smt::Domain& d, const Atom& a) {
  if (!a.set.empty()) {
    // !(f IN S): exclude every member.
    const uint64_t full = util::mask_bits(d.width());
    for (uint64_t v : a.set) d.require_masked_ne(full, v);
    return;
  }
  apply_atom(d, negate_atom(a));
}

}  // namespace

smt::Domain PathEnv::domain_copy(ir::FieldId f, int width) const {
  auto it = slots_.find(f);
  if (it != slots_.end()) return it->second.dom;
  return smt::Domain(width);
}

void PathEnv::absorb(const std::vector<Atom>& atoms,
                     const std::vector<ir::ExprRef>& opaque, bool undoable) {
  for (const Atom& a : atoms) {
    auto [it, fresh] = slots_.try_emplace(a.field, Slot(a.width));
    if (undoable) {
      undo_.push_back(
          Undo{a.field, false, fresh ? std::nullopt
                                     : std::optional<smt::Domain>(it->second.dom)});
    }
    apply_atom(it->second.dom, a);
  }
  for (ir::ExprRef e : opaque) {
    std::unordered_set<ir::FieldId> fields;
    ir::collect_fields(e, fields);
    for (ir::FieldId f : fields) {
      auto [it, fresh] = slots_.try_emplace(f, Slot(ctx_.fields.width(f)));
      (void)fresh;
      ++it->second.poison;
      if (undoable) undo_.push_back(Undo{f, true, std::nullopt});
    }
  }
}

void PathEnv::add_precondition(ir::ExprRef c) {
  if (c == nullptr) return;
  std::vector<Atom> atoms;
  std::vector<ir::ExprRef> opaque;
  decompose_conjunction(c, atoms, opaque);
  for (const Atom& a : atoms) {
    if (a.field == ir::kInvalidField) {
      base_contradictory_ = true;
      return;
    }
  }
  absorb(atoms, opaque, /*undoable=*/false);
  for (const Atom& a : atoms) {
    if (slots_.at(a.field).dom.contradictory()) base_contradictory_ = true;
  }
}

Verdict PathEnv::assume(ir::ExprRef c) {
  if (base_contradictory_) return Verdict::kRefuted;
  std::vector<Atom> atoms;
  std::vector<ir::ExprRef> opaque;
  decompose_conjunction(c, atoms, opaque);
  for (const Atom& a : atoms) {
    if (a.field == ir::kInvalidField) return Verdict::kRefuted;
  }

  // Refutation: refine copies of the touched domains by all atoms.
  std::unordered_map<ir::FieldId, smt::Domain> refined;
  for (const Atom& a : atoms) {
    auto [it, fresh] = refined.try_emplace(a.field, domain_copy(a.field, a.width));
    (void)fresh;
    apply_atom(it->second, a);
    if (it->second.contradictory()) return Verdict::kRefuted;
  }

  Verdict v = Verdict::kUnknown;
  if (opaque.empty() && !atoms.empty()) {
    bool all_implied = true;
    for (const Atom& a : atoms) {
      smt::Domain neg = domain_copy(a.field, a.width);
      apply_negated(neg, a);
      if (!neg.contradictory()) {
        all_implied = false;
        break;
      }
    }
    if (all_implied) {
      v = Verdict::kImplied;
    } else {
      bool complete = true;  // no involved field ever poisoned
      for (const auto& [f, d] : refined) {
        auto it = slots_.find(f);
        if (it != slots_.end() && it->second.poison > 0) {
          complete = false;
          break;
        }
      }
      if (complete) {
        bool witnessed = true;
        for (const auto& [f, d] : refined) {
          bool decided = true;
          std::optional<uint64_t> w = d.pick_value(decided);
          if (!decided || !w) {
            witnessed = false;
            break;
          }
        }
        if (witnessed) v = Verdict::kSatisfiable;
      }
    }
  } else if (opaque.empty() && atoms.empty()) {
    // Constant-true after decomposition.
    v = Verdict::kImplied;
  }

  absorb(atoms, opaque, /*undoable=*/true);
  return v;
}

void PathEnv::rollback(Mark m) {
  while (undo_.size() > m) {
    Undo& u = undo_.back();
    auto it = slots_.find(u.field);
    if (u.poisoned) {
      --it->second.poison;
    } else if (u.dom) {
      it->second.dom = std::move(*u.dom);
    } else {
      slots_.erase(it);  // the atom created the slot
    }
    undo_.pop_back();
  }
}

}  // namespace meissa::analysis
