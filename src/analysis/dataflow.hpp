// Forward-dataflow framework over the CFG plus the concrete analysis
// domains Meissa ships: per-field value ranges (constants, intervals,
// known bits), header validity (the 1-bit instantiation of the value
// lattice over the per-instance `$valid` fields), and reaching-definition
// kinds for metadata.
//
// `run_forward` is a classic worklist solver, generic over the domain: the
// domain supplies the boundary state, the per-node transfer function
// (returning nullopt for statically infeasible outcomes), and the join.
// Nodes are processed in topological priority, so on Meissa's acyclic
// graphs every node transfers once; the worklist re-queues successors on
// lattice change, which keeps the solver correct on general graphs.
//
// `compute_facts` packages the solver for the hot path: which assume nodes
// are statically refuted and which nodes are unreachable, computed from a
// TOP boundary at `start` so the facts hold for *every* engine exploration
// rooted there (any seeds, any pre-conditions) — the property that keeps
// static pruning solver-equivalent and the template set byte-identical.
#pragma once

#include <algorithm>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "analysis/domain.hpp"
#include "cfg/cfg.hpp"
#include "ir/stmt.hpp"

namespace meissa::analysis {

template <class D>
struct ForwardResult {
  // IN state per node; disengaged = not reachable along any feasible path.
  std::vector<std::optional<typename D::State>> in;
  // Structurally reachable from the start node (edges only, no semantics).
  std::vector<uint8_t> reachable;
};

template <class D>
ForwardResult<D> run_forward(const cfg::Cfg& g, cfg::NodeId start, D& dom) {
  ForwardResult<D> r;
  r.in.resize(g.size());
  r.reachable.assign(g.size(), 0);

  // Structural reachability + iterative post-order for topological indices.
  std::vector<int> topo_index(g.size(), -1);
  std::vector<cfg::NodeId> topo;
  {
    std::vector<std::pair<cfg::NodeId, size_t>> stack{{start, 0}};
    r.reachable[start] = 1;
    while (!stack.empty()) {
      auto& [n, i] = stack.back();
      const auto& succ = g.node(n).succ;
      if (i < succ.size()) {
        cfg::NodeId s = succ[i++];
        if (!r.reachable[s]) {
          r.reachable[s] = 1;
          stack.emplace_back(s, 0);
        }
      } else {
        topo.push_back(n);
        stack.pop_back();
      }
    }
    std::reverse(topo.begin(), topo.end());
    for (size_t i = 0; i < topo.size(); ++i) {
      topo_index[topo[i]] = static_cast<int>(i);
    }
  }

  std::set<int> worklist;
  r.in[start] = dom.boundary();
  worklist.insert(topo_index[start]);
  while (!worklist.empty()) {
    const int ti = *worklist.begin();
    worklist.erase(worklist.begin());
    const cfg::NodeId n = topo[static_cast<size_t>(ti)];
    std::optional<typename D::State> out = dom.transfer(n, *r.in[n]);
    if (!out) continue;  // statically infeasible: no flow to successors
    for (cfg::NodeId s : g.node(n).succ) {
      bool changed = false;
      if (!r.in[s]) {
        r.in[s] = *out;
        changed = true;
      } else {
        changed = dom.join(*r.in[s], *out);
      }
      if (changed) worklist.insert(topo_index[s]);
    }
  }
  return r;
}

// ------------------------------------------------------------ value domain

// How a metadata field got its current value (reaching-definition kind).
enum class DefKind : uint8_t {
  kImplicit,  // only the program-entry zero-initialization reaches here
  kWritten,   // an explicit program write reaches on every path
  kMixed,     // written on some paths, implicit zero on others
};

// Bounded relational refinement over one instance's header-validity bits.
// The per-field lattice loses correlations at joins (after `extract(a);
// extract(b)` on one arm it only knows each bit is 0-or-1, not that they
// move together), so parser-implied facts like "inner_tcp valid => vxlan
// valid" vanish. Tracking the small set of reachable validity bit-vectors
// keeps them. Inactive = no information (top).
struct ValidityCombos {
  bool active = false;
  int instance = -1;
  std::vector<uint32_t> combos;  // sorted + deduped; bit i = i-th validity field

  bool operator==(const ValidityCombos&) const = default;
};

struct AbsState {
  std::unordered_map<ir::FieldId, ValueRange> values;
  std::unordered_map<ir::FieldId, DefKind> defs;
  ValidityCombos vcfg;
};

// The shipped product domain over AbsState. Tracks value ranges for the
// `relevant` fields (fields appearing in predicate atoms, validity bits,
// and their copy sources) and definition kinds for the `meta` fields.
class ValueDomain {
 public:
  using State = AbsState;

  ValueDomain(const ir::Context& ctx, const cfg::Cfg& g);

  // Restricts value tracking (empty = track nothing); `compute_relevant`
  // builds the default set.
  void set_relevant(std::unordered_map<ir::FieldId, int> relevant) {
    relevant_ = std::move(relevant);
  }
  void set_meta(std::unordered_map<ir::FieldId, int> meta) {
    meta_ = std::move(meta);
  }
  const std::unordered_map<ir::FieldId, int>& relevant() const {
    return relevant_;
  }

  // Fields whose abstract values can matter: every field mentioned by a
  // predicate atom, every per-instance validity bit, plus the transitive
  // sources of plain-copy assignments into the set. Values map field -> width.
  static std::unordered_map<ir::FieldId, int> compute_relevant(
      const ir::Context& ctx, const cfg::Cfg& g);

  // Metadata fields: targets of the glue zero-initialization (node
  // instance == -1), minus the drop/egress intrinsics.
  static std::unordered_map<ir::FieldId, int> compute_meta(
      const ir::Context& ctx, const cfg::Cfg& g);

  State boundary() const { return State{}; }
  std::optional<State> transfer(cfg::NodeId n, const State& in) const;
  bool join(State& into, const State& from) const;

  // Three-valued truth of the node's predicate under `in` (kFalse =
  // statically refuted). Non-assume nodes are kTrue.
  Ternary eval_assume(cfg::NodeId n, const State& in) const;

  // Three-valued validity of header bit `vf` for `instance` under `in`,
  // consulting the per-field constant first and the combo refinement for
  // join-lost correlations second.
  Ternary validity_of(const State& in, int instance, ir::FieldId vf) const;

 private:
  // Combo sets larger than this degrade to inactive; instances with more
  // headers than a combo word holds are never tracked.
  static constexpr size_t kMaxCombos = 64;
  static constexpr size_t kMaxValidityBits = 32;

  void maybe_activate(State& s, int instance) const;

  const ir::Context& ctx_;
  const cfg::Cfg& g_;
  std::unordered_map<ir::FieldId, int> relevant_;
  std::unordered_map<ir::FieldId, int> meta_;
  // Per instance: validity fields in header-name order (bit = position);
  // empty when the instance is untracked.
  std::vector<std::vector<ir::FieldId>> vfields_;
  std::unordered_map<ir::FieldId, std::pair<int, int>> vbit_;  // -> (inst, bit)
};

// ------------------------------------------------------------------- facts

// Engine-facing digest of one dataflow run.
struct Facts {
  std::vector<uint8_t> refuted;      // assume node statically infeasible
  std::vector<uint8_t> unreachable;  // structurally reachable, dataflow-dead
  uint64_t refuted_count = 0;
  uint64_t unreachable_count = 0;

  bool empty() const noexcept { return refuted_count == 0; }
};

struct FactsOptions {
  // Cap on (nodes x tracked fields). Above it the value domain degrades to
  // validity bits only, then to nothing (facts stay sound, just weaker).
  size_t state_budget = 4'000'000;
};

// Runs the value domain from `start` with a TOP boundary and collects the
// refuted/unreachable node sets. Valid for any exploration rooted at
// `start` regardless of seeds or pre-conditions.
Facts compute_facts(const ir::Context& ctx, const cfg::Cfg& g,
                    cfg::NodeId start, const FactsOptions& opts = {});

}  // namespace meissa::analysis
