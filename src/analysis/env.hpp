// Per-path abstract environment the symbolic engine consults before the
// solver. Tracks one exact `smt::Domain` per field, refined from every
// atomic conjunct pushed on the path (pre-conditions included), and
// classifies each new predicate:
//
//   kRefuted     — contradicts the recorded per-field constraints. Since
//                  the domains over-approximate the path condition, the
//                  solver would return unsat: prune without a call.
//   kImplied     — every conjunct follows from the recorded constraints
//                  (its negation empties the field's domain), so
//                  sat(C && c) == sat(C): skip the check.
//   kSatisfiable — every conjunct is a single-field atom, every involved
//                  field's constraints are *complete* in its domain (the
//                  field never appeared in an opaque conjunct), and each
//                  refined domain yields a witness. Any model of C can be
//                  patched field-wise into a model of C && c: skip.
//   kUnknown     — none of the above; ask the solver.
//
// All three decided verdicts agree with what a complete solver would
// conclude, which is what keeps pruned and unpruned runs byte-identical.
// Fields mentioned by opaque (multi-field / non-atomic) conjuncts are
// poisoned: their domains stay sound for refutation and implication, but
// are no longer complete, so kSatisfiable is off for them.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "analysis/domain.hpp"
#include "ir/stmt.hpp"
#include "smt/domain.hpp"

namespace meissa::analysis {

enum class Verdict : uint8_t { kUnknown, kRefuted, kImplied, kSatisfiable };

class PathEnv {
 public:
  explicit PathEnv(const ir::Context& ctx) : ctx_(ctx) {}

  // Absorbs a pre-condition (before any mark; never rolled back).
  void add_precondition(ir::ExprRef c);

  // Classifies `c`, then absorbs it (unless refuted, which leaves the
  // state untouched).
  Verdict assume(ir::ExprRef c);

  using Mark = size_t;
  Mark mark() const noexcept { return undo_.size(); }
  void rollback(Mark m);

 private:
  struct Slot {
    smt::Domain dom;
    uint32_t poison = 0;  // opaque conjuncts currently mentioning the field
    explicit Slot(int width) : dom(width) {}
  };
  struct Undo {
    ir::FieldId field;
    bool poisoned;                   // true: undo a poison increment
    std::optional<smt::Domain> dom;  // false: restore this domain
  };

  smt::Domain domain_copy(ir::FieldId f, int width) const;
  void absorb(const std::vector<Atom>& atoms,
              const std::vector<ir::ExprRef>& opaque, bool undoable);

  const ir::Context& ctx_;
  std::unordered_map<ir::FieldId, Slot> slots_;
  std::vector<Undo> undo_;
  // Pre-conditions already contradictory per field: everything refutes.
  bool base_contradictory_ = false;
};

}  // namespace meissa::analysis
