// Static injection-point analysis — the enumeration half of the
// ground-truth bug corpus (LAVA/Gauntlet-style, see DESIGN.md "Bug
// injection & survival analysis").
//
// A mutation is only usable as labeled ground truth when the mutated
// construct is *live*: some feasible execution reaches it, so the mutation
// has an observable trigger. This pass walks the CFG once with the PR 2
// value/validity dataflow domain and enumerates every mutation site the
// facts prove live:
//
//   kGuard             an if-statement guard predicate (both arms feasible
//                      or at least the mutated construct reachable)
//   kParserTransition  a parser select case (value/mask are mutable)
//   kTableEntry        a table entry's match/action/args
//   kEntryRank         a pair of overlapping entries whose winner is
//                      decided by priority or install order (rank metadata
//                      is mutable without touching the match space)
//   kChecksum          a deparser checksum update (source list mutable)
//   kEmit              a deparser emit list with >= 2 headers
//   kRegisterIndex     an action op referencing a register cell that has a
//                      neighbouring cell to skew into
//   kToolchain         a sim::FaultSpec target validated live (the
//                      device-toolchain transform sites of Table 2)
//   kSummary           a summary-transform fault site (analysis/validate's
//                      SummaryFaultKind; detected by m4verify, not devices)
//
// Every retained site records its anchor node and a human-readable
// liveness proof derived from the dataflow facts (reachable, feasible IN
// state, predicate not refuted). Sites that fail the proof are counted,
// never emitted. The companion guard-constancy scan powers the m4lint
// `constant-guard` detector: an if whose ValueRange verdict is kTrue or
// kFalse has a dead or vacuous arm.
//
// Enumeration order is deterministic (node-id scan + declaration order),
// so site ids are stable for a given program — the corpus manifest keys on
// them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/dataflow.hpp"
#include "cfg/cfg.hpp"
#include "p4/rules.hpp"
#include "sim/fault.hpp"

namespace meissa::analysis {

enum class SiteKind : uint8_t {
  kGuard,
  kParserTransition,
  kTableEntry,
  kEntryRank,
  kChecksum,
  kEmit,
  kRegisterIndex,
  kToolchain,
  kSummary,
};
inline constexpr int kNumSiteKinds = 9;

const char* site_kind_name(SiteKind k) noexcept;

struct InjectionSite {
  uint32_t id = 0;
  SiteKind kind = SiteKind::kGuard;
  // Live anchor node in the analyzed graph: the liveness proof holds here,
  // and witness search covers templates whose path visits it.
  cfg::NodeId node = cfg::kNoNode;
  int instance = -1;          // cfg instance index of the anchor, -1 = glue
  std::string instance_name;  // "" for program-level anchors
  std::string pipeline;       // owning PipelineDef name ("" if n/a)
  // What to mutate; interpretation depends on kind:
  //   kGuard             ref = pipeline, index = pre-order if ordinal
  //   kParserTransition  ref = state name, index = case index
  //   kTableEntry        ref = table name, index = ordered-entry position
  //   kEntryRank         ref = table name, index/entry_b = ordered positions
  //   kChecksum          ref = dest field, index = update index
  //   kEmit              ref = pipeline, index = emit position
  //   kRegisterIndex     ref = action name, index = op index,
  //                      field = the register cell name
  //   kToolchain         ref = fault kind slug, fault = full spec
  //   kSummary           ref = summary fault slug ("drop-branch", ...)
  std::string ref;
  int32_t index = -1;
  int32_t sub = -1;
  int32_t entry_b = -1;
  std::string field;      // kRegisterIndex: the referenced register cell
  sim::FaultSpec fault;   // kToolchain only
  std::string liveness;   // human-readable proof the site is live
};

// Constancy verdicts for one expanded if-statement fork (one per live
// pipeline instance). `then_verdict` is the three-valued truth of the
// guard at the fork; `else_verdict` of its negation. kTrue/kFalse on
// either side means a dead or vacuous arm — the `constant-guard` lint.
struct GuardFact {
  cfg::NodeId then_node = cfg::kNoNode;
  cfg::NodeId else_node = cfg::kNoNode;
  int instance = -1;
  std::string instance_name;
  std::string pipeline;
  int32_t ordinal = -1;
  Ternary then_verdict = Ternary::kUnknown;
  Ternary else_verdict = Ternary::kUnknown;

  bool always_true() const noexcept {
    return then_verdict == Ternary::kTrue ||
           else_verdict == Ternary::kFalse;
  }
  bool always_false() const noexcept {
    return then_verdict == Ternary::kFalse ||
           else_verdict == Ternary::kTrue;
  }
};

struct InjectOptions {
  // Mirrors FactsOptions::state_budget: above it the value domain degrades
  // to validity bits, then to structural reachability only (sites stay
  // sound — a structurally dead site is still never emitted).
  size_t state_budget = 4'000'000;
  // Cap on kEntryRank pairs emitted per table (closest-rank pairs first).
  size_t max_rank_pairs_per_table = 8;
};

struct InjectResult {
  std::vector<InjectionSite> sites;
  std::vector<GuardFact> guards;
  uint64_t considered = 0;  // candidate sites enumerated
  uint64_t dead = 0;        // filtered out by the liveness proof
  uint64_t by_kind[kNumSiteKinds] = {};
};

// Enumerates and liveness-filters every mutation site of `dp`/`rules` over
// `g` (the *original* — unsummarized — CFG built from them; template paths
// used for witness replay must come from the same graph).
InjectResult find_injection_sites(const ir::Context& ctx,
                                  const p4::DataPlane& dp,
                                  const p4::RuleSet& rules, const cfg::Cfg& g,
                                  const InjectOptions& opts = {});

// The guard-constancy scan alone (what m4lint's constant-guard detector
// consumes); equivalent to find_injection_sites(...).guards without the
// site enumeration cost.
std::vector<GuardFact> guard_constancy(const ir::Context& ctx,
                                       const cfg::Cfg& g,
                                       size_t state_budget = 4'000'000);

}  // namespace meissa::analysis
