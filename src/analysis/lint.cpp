#include "analysis/lint.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "analysis/inject.hpp"
#include "util/strings.hpp"

namespace meissa::analysis {

namespace {

// Header name of a content field ("hdr.<h>.<f>"); empty for validity
// placeholders, snapshots, metadata and everything else.
std::string content_header(const std::string& name) {
  if (name.rfind("hdr.", 0) != 0) return {};
  const size_t dot = name.find('.', 4);
  if (dot == std::string::npos) return {};
  if (name[dot + 1] == '$') return {};  // "hdr.<h>.$valid[@inst]"
  return name.substr(4, dot - 4);
}

// Fields a node reads (expression fields for assign/assume, keys for hash).
void node_reads(const cfg::Cfg& g, cfg::NodeId id,
                std::unordered_set<ir::FieldId>& out) {
  const cfg::Node& n = g.node(id);
  if (n.is_hash) {
    for (ir::FieldId k : n.hash.keys) out.insert(k);
    for (ir::ExprRef e : n.hash.key_exprs) ir::collect_fields(e, out);
    return;
  }
  if (n.stmt.kind == ir::StmtKind::kAssign ||
      n.stmt.kind == ir::StmtKind::kAssume) {
    ir::collect_fields(n.stmt.expr, out);
  }
}

// Whether the assume node carries its own validity guard for `vf` (the
// `valid(h) && <reads of h>` idiom, or its negation on the else arm): any
// mention of the validity bit in the same predicate counts as the guard
// deliberately correlating the reads with the header's presence.
bool self_guards(const cfg::Cfg& g, cfg::NodeId id, ir::FieldId vf) {
  const cfg::Node& n = g.node(id);
  if (n.is_hash || n.stmt.kind != ir::StmtKind::kAssume) return false;
  std::unordered_set<ir::FieldId> fields;
  ir::collect_fields(n.stmt.expr, fields);
  return fields.count(vf) != 0;
}

// A refuted assume whose atoms all *exclude* the valid state of some
// header is the builder's own "header absent" arm (deparser checksum
// guards and the like) being dead because the header is always present —
// benign, unlike a dead *valid* arm, which means the guarded work never
// runs.
bool is_benign_invalid_arm(const cfg::Cfg& g, cfg::NodeId id,
                           const std::unordered_set<ir::FieldId>& vfields) {
  const cfg::Node& n = g.node(id);
  if (n.is_hash || n.stmt.kind != ir::StmtKind::kAssume) return false;
  std::vector<Atom> atoms;
  std::vector<ir::ExprRef> opaque;
  decompose_conjunction(n.stmt.expr, atoms, opaque);
  if (!opaque.empty() || atoms.empty()) return false;
  for (const Atom& a : atoms) {
    if (vfields.count(a.field) == 0 || atom_holds(1, a)) return false;
  }
  return true;
}

const char* severity_name(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

}  // namespace

LintResult lint_cfg(const ir::Context& ctx, const cfg::Cfg& g) {
  LintResult res;
  if (g.size() == 0) return res;

  ValueDomain dom(ctx, g);
  dom.set_relevant(ValueDomain::compute_relevant(ctx, g));
  dom.set_meta(ValueDomain::compute_meta(ctx, g));
  ForwardResult<ValueDomain> flow = run_forward(g, g.entry(), dom);

  // One finding per (detector, node, field): a diagnostic derivable along
  // several CFG paths (or from several atoms of one predicate) must not
  // repeat in the output.
  std::unordered_set<std::string> emitted;
  auto emit = [&](Severity sev, std::string code, cfg::NodeId id,
                  std::string field, std::string message) {
    if (!emitted.insert(code + '\x1f' + std::to_string(id) + '\x1f' + field)
             .second) {
      return;
    }
    const cfg::Node& n = g.node(id);
    Diagnostic d;
    d.severity = sev;
    d.code = std::move(code);
    d.node = id;
    if (n.instance >= 0) {
      d.instance = g.instances()[static_cast<size_t>(n.instance)].name;
    }
    d.location = g.label(id);
    d.field = std::move(field);
    d.message = std::move(message);
    res.diagnostics.push_back(std::move(d));
  };

  // Predecessor counts (for orphan detection) and per-instance write sets
  // (for the pure-consumer metadata rule).
  std::vector<uint32_t> pred_count(g.size(), 0);
  std::vector<std::unordered_set<ir::FieldId>> writes(g.instances().size());
  for (cfg::NodeId id = 0; id < g.size(); ++id) {
    const cfg::Node& n = g.node(id);
    for (cfg::NodeId s : n.succ) ++pred_count[s];
    if (n.instance < 0) continue;
    auto& w = writes[static_cast<size_t>(n.instance)];
    if (n.is_hash) {
      w.insert(n.hash.dest);
    } else if (n.stmt.kind == ir::StmtKind::kAssign) {
      w.insert(n.stmt.target);
    }
  }

  const auto& meta = ValueDomain::compute_meta(ctx, g);
  std::unordered_set<ir::FieldId> vfields;
  for (const cfg::InstanceInfo& info : g.instances()) {
    for (const auto& [h, vf] : info.validity) vfields.insert(vf);
  }

  // read-before-valid support: per validity field, the nodes lying
  // strictly after a potential setter (an assign of a possibly-nonzero
  // value, or a hash landing in the bit) on some path from anywhere in the
  // graph. Lazily computed — most validity fields never face an unguarded
  // read.
  std::unordered_map<ir::FieldId, std::vector<bool>> set_reach;
  auto validity_set_reaches = [&](ir::FieldId vf, cfg::NodeId at) -> bool {
    auto it = set_reach.find(vf);
    if (it == set_reach.end()) {
      std::vector<bool> reach(g.size(), false);
      std::vector<cfg::NodeId> work;
      for (cfg::NodeId id = 0; id < g.size(); ++id) {
        const cfg::Node& n = g.node(id);
        const bool sets =
            n.is_hash
                ? n.hash.dest == vf
                : n.stmt.kind == ir::StmtKind::kAssign &&
                      n.stmt.target == vf &&
                      !(n.stmt.expr->is_const() && n.stmt.expr->value == 0);
        if (!sets) continue;
        for (cfg::NodeId s : n.succ) {
          if (!reach[s]) {
            reach[s] = true;
            work.push_back(s);
          }
        }
      }
      while (!work.empty()) {
        const cfg::NodeId cur = work.back();
        work.pop_back();
        for (cfg::NodeId s : g.node(cur).succ) {
          if (!reach[s]) {
            reach[s] = true;
            work.push_back(s);
          }
        }
      }
      it = set_reach.emplace(vf, std::move(reach)).first;
    }
    return it->second[at];
  };

  for (cfg::NodeId id = 0; id < g.size(); ++id) {
    const cfg::Node& n = g.node(id);

    // ---- unreachable-code: orphaned labeled subgraph heads (no incoming
    // edges; unlabeled orphans are builder scaffolding), and labeled
    // flow-dead frontier nodes (a feasible predecessor exists but no
    // feasible flow continues into this node).
    if (!flow.reachable[id]) {
      if (pred_count[id] == 0 && id != g.entry() && !g.label(id).empty()) {
        emit(Severity::kWarning, "unreachable-code", id, {},
             "node is disconnected from the program entry");
      }
      continue;
    }
    if (!flow.in[id]) {
      if (!g.label(id).empty()) {
        bool frontier = false;
        for (cfg::NodeId p = 0; p < g.size() && !frontier; ++p) {
          const auto& succ = g.node(p).succ;
          if (flow.in[p] &&
              std::find(succ.begin(), succ.end(), id) != succ.end()) {
            frontier = true;
          }
        }
        if (frontier) {
          emit(Severity::kWarning, "unreachable-code", id, {},
               "no feasible execution reaches this point");
        }
      }
      continue;
    }
    const AbsState& in = *flow.in[id];

    // ---- contradictory-predicate: the assume refutes against the value
    // analysis (transfer yields no feasible outcome).
    if (!n.is_hash && n.stmt.kind == ir::StmtKind::kAssume && !n.synthetic &&
        !dom.transfer(id, in) && !is_benign_invalid_arm(g, id, vfields)) {
      emit(Severity::kWarning, "contradictory-predicate", id, {},
           "predicate is statically contradictory; this branch can never "
           "be taken");
    }

    // ---- read detectors need the fields this node reads.
    std::unordered_set<ir::FieldId> reads;
    node_reads(g, id, reads);
    if (reads.empty() || n.instance < 0) continue;
    const cfg::InstanceInfo& info =
        g.instances()[static_cast<size_t>(n.instance)];

    std::vector<ir::FieldId> ordered(reads.begin(), reads.end());
    std::sort(ordered.begin(), ordered.end(),
              [&](ir::FieldId a, ir::FieldId b) {
                return ctx.fields.name(a) < ctx.fields.name(b);
              });
    for (ir::FieldId f : ordered) {
      const std::string& name = ctx.fields.name(f);

      // ---- invalid-header-read.
      const std::string header = content_header(name);
      if (!header.empty()) {
        auto vit = info.validity.find(header);
        if (vit != info.validity.end() && !self_guards(g, id, vit->second)) {
          switch (dom.validity_of(in, n.instance, vit->second)) {
            case Ternary::kTrue:
              break;
            case Ternary::kFalse:
              emit(Severity::kError, "invalid-header-read", id, name,
                   "reads '" + name + "' but header '" + header +
                       "' is always invalid here");
              break;
            case Ternary::kUnknown:
              emit(Severity::kWarning, "invalid-header-read", id, name,
                   "reads '" + name + "' while header '" + header +
                       "' may be invalid on some path to this point");
              break;
          }
          // ---- read-before-valid: structural — no node that could set
          // this validity bit reaches the read on any path, so whatever
          // the value domain concluded, no parser state or action can
          // have made the header valid here.
          if (!validity_set_reaches(vit->second, id)) {
            emit(Severity::kError, "read-before-valid", id, name,
                 "reads '" + name + "' but no parser state or action "
                 "setting header '" +
                     header + "' valid reaches this point");
          }
        }
      }

      // ---- uninitialized-metadata-read: this pipeline never writes the
      // field, and a path on which only the implicit entry zero reaches
      // the read exists.
      if (meta.count(f) != 0 &&
          writes[static_cast<size_t>(n.instance)].count(f) == 0) {
        auto dit = in.defs.find(f);
        const bool implicit_component =
            dit == in.defs.end() || dit->second == DefKind::kImplicit ||
            dit->second == DefKind::kMixed;
        if (implicit_component) {
          emit(Severity::kWarning, "uninitialized-metadata-read", id, name,
               "reads metadata '" + name + "' that pipeline '" + info.name +
                   "' never writes; the value is the implicit zero");
        }
      }
    }
  }

  // ---- constant-guard: an if-statement whose guard the value analysis
  // proves always-true or always-false (injection-analysis guard-constancy
  // facts): one arm is dead and the test is vacuous. Complements
  // contradictory-predicate — the constancy verdict checks *both* arms, so
  // it fires even where only the negated arm decomposes into atoms.
  for (const GuardFact& gf : guard_constancy(ctx, g)) {
    const cfg::NodeId anchor =
        gf.then_node != cfg::kNoNode ? gf.then_node : gf.else_node;
    if (anchor == cfg::kNoNode) continue;
    const std::string where =
        "if #" + std::to_string(gf.ordinal) + " of pipeline '" +
        gf.pipeline + "'";
    if (gf.always_true()) {
      emit(Severity::kWarning, "constant-guard", anchor, {},
           "guard of " + where +
               " is always true here; the else branch is dead and the "
               "test is vacuous");
    } else if (gf.always_false()) {
      emit(Severity::kWarning, "constant-guard", anchor, {},
           "guard of " + where +
               " is always false here; the then branch is dead and the "
               "test is vacuous");
    }
  }

  // ---- header-never-emitted: a header can be valid when the pipeline
  // exits, yet its deparser never emits it (the content is silently lost).
  for (size_t ii = 0; ii < g.instances().size(); ++ii) {
    const cfg::InstanceInfo& info = g.instances()[ii];
    if (info.exit == cfg::kNoNode || !flow.in[info.exit]) continue;
    const AbsState& at_exit = *flow.in[info.exit];
    std::vector<std::string> headers;
    headers.reserve(info.validity.size());
    for (const auto& [h, vf] : info.validity) headers.push_back(h);
    std::sort(headers.begin(), headers.end());
    for (const std::string& h : headers) {
      if (std::find(info.emit_order.begin(), info.emit_order.end(), h) !=
          info.emit_order.end()) {
        continue;
      }
      const ir::FieldId vf = info.validity.at(h);
      if (dom.validity_of(at_exit, static_cast<int>(ii), vf) ==
          Ternary::kFalse) {
        continue;  // provably invalid at exit: nothing lost
      }
      emit(Severity::kWarning, "header-never-emitted", info.exit, h,
           "header '" + h + "' can leave pipeline '" + info.name +
               "' valid but its deparser never emits it");
    }
  }

  // ---- unused-write: a flow-reachable, non-synthetic pipeline node
  // writes a header/metadata field that no node downstream of it — in any
  // region or the inter-pipeline glue — ever reads, and (for header
  // content) that no downstream deparser emits. Same def-use notion as
  // analysis/impact's dependency graph: a write nothing consumes is
  // either dead code or a missing read. Validity bits, '@' summary
  // snapshots and architecture intrinsics (ports, drop flags — consumed
  // outside the program) are out of scope.
  {
    // Use sites per field: reading nodes, plus each emitting instance's
    // exit for the fields of headers its deparser serializes.
    std::unordered_map<ir::FieldId, std::unordered_set<cfg::NodeId>> uses;
    for (cfg::NodeId id = 0; id < g.size(); ++id) {
      std::unordered_set<ir::FieldId> r;
      node_reads(g, id, r);
      for (ir::FieldId f : r) uses[f].insert(id);
    }
    for (const cfg::InstanceInfo& info : g.instances()) {
      if (info.exit == cfg::kNoNode) continue;
      for (ir::FieldId f = 0; f < ctx.fields.size(); ++f) {
        const std::string h = content_header(ctx.fields.name(f));
        if (h.empty()) continue;
        if (std::find(info.emit_order.begin(), info.emit_order.end(), h) !=
            info.emit_order.end()) {
          uses[f].insert(info.exit);
        }
      }
    }
    const std::unordered_set<std::string> telemetry(g.telemetry().begin(),
                                                    g.telemetry().end());
    auto eligible = [&](ir::FieldId f) {
      if (vfields.count(f) != 0) return false;
      const std::string& name = ctx.fields.name(f);
      if (!name.empty() && name[0] == '@') return false;
      if (name.find(".$") != std::string::npos) return false;
      if (telemetry.count(name) != 0) return false;
      return name.rfind("hdr.", 0) == 0 || name.rfind("meta.", 0) == 0;
    };
    auto used_downstream = [&](cfg::NodeId from, ir::FieldId f) {
      auto it = uses.find(f);
      if (it == uses.end()) return false;
      const std::unordered_set<cfg::NodeId>& sinks = it->second;
      std::vector<bool> seen(g.size(), false);
      std::vector<cfg::NodeId> work(g.node(from).succ.begin(),
                                    g.node(from).succ.end());
      for (cfg::NodeId s : work) seen[s] = true;
      while (!work.empty()) {
        const cfg::NodeId cur = work.back();
        work.pop_back();
        if (sinks.count(cur) != 0) return true;
        for (cfg::NodeId s : g.node(cur).succ) {
          if (!seen[s]) {
            seen[s] = true;
            work.push_back(s);
          }
        }
      }
      return false;
    };
    for (cfg::NodeId id = 0; id < g.size(); ++id) {
      const cfg::Node& n = g.node(id);
      if (n.instance < 0 || n.synthetic || !flow.reachable[id]) continue;
      const ir::FieldId f = n.is_hash ? n.hash.dest
                            : n.stmt.kind == ir::StmtKind::kAssign
                                ? n.stmt.target
                                : ir::kInvalidField;
      if (f == ir::kInvalidField || !eligible(f)) continue;
      if (used_downstream(id, f)) continue;
      emit(Severity::kWarning, "unused-write", id, ctx.fields.name(f),
           "field '" + ctx.fields.name(f) +
               "' is written here but nothing downstream reads it and no "
               "deparser emits it");
    }
  }

  std::sort(res.diagnostics.begin(), res.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.node != b.node) return a.node < b.node;
              if (a.code != b.code) return a.code < b.code;
              if (a.field != b.field) return a.field < b.field;
              return a.message < b.message;
            });
  for (const Diagnostic& d : res.diagnostics) {
    if (d.severity == Severity::kError) {
      ++res.errors;
    } else {
      ++res.warnings;
    }
  }
  return res;
}

std::string render_text(const LintResult& r) {
  std::string out;
  for (const Diagnostic& d : r.diagnostics) {
    out += severity_name(d.severity);
    out += ": [";
    out += d.code;
    out += "] ";
    if (!d.location.empty()) {
      out += d.location;
    } else if (!d.instance.empty()) {
      out += d.instance;
      out += ": node ";
      out += std::to_string(d.node);
    } else {
      out += "node ";
      out += std::to_string(d.node);
    }
    out += ": ";
    out += d.message;
    out += '\n';
  }
  out += util::format("%llu error(s), %llu warning(s)\n",
                      static_cast<unsigned long long>(r.errors),
                      static_cast<unsigned long long>(r.warnings));
  return out;
}

std::string render_json(const LintResult& r) {
  std::string out = "{\n  \"diagnostics\": [";
  bool first = true;
  for (const Diagnostic& d : r.diagnostics) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"severity\": \"";
    out += severity_name(d.severity);
    out += "\", \"code\": \"";
    out += util::json_escape(d.code);
    out += "\", \"node\": ";
    out += std::to_string(d.node);
    out += ", \"instance\": \"";
    out += util::json_escape(d.instance);
    out += "\", \"location\": \"";
    out += util::json_escape(d.location);
    out += "\", \"field\": \"";
    out += util::json_escape(d.field);
    out += "\", \"message\": \"";
    out += util::json_escape(d.message);
    out += "\"}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"errors\": " + std::to_string(r.errors) + ",\n";
  out += "  \"warnings\": " + std::to_string(r.warnings) + "\n}\n";
  return out;
}

}  // namespace meissa::analysis
