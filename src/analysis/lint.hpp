// IR/CFG lint — the diagnostics the dataflow pass can prove without a
// solver (the m4lint CLI front-end renders these):
//
//   invalid-header-read         reading a content field of a header whose
//                               validity bit is statically 0 (error) or
//                               possibly 0 (warning) at the reading node
//   read-before-valid           reading a content field at a node that no
//                               parser state or action setting the header
//                               valid can reach — structural (pure graph
//                               reachability over validity writers), so it
//                               holds even where the value domain loses
//                               the validity bit at a join
//   contradictory-predicate     an assume node statically refuted by the
//                               value analysis (shadowed table entries,
//                               impossible checksum guards, dead branches)
//   unreachable-code            nodes no feasible flow reaches (orphaned
//                               parser states, code behind dead predicates)
//   uninitialized-metadata-read a pipeline reads a metadata field it never
//                               writes, and only the implicit entry
//                               zero-initialization reaches the read —
//                               a cross-pipeline pre-condition violation
//   header-never-emitted        a header can leave a pipeline valid but is
//                               absent from its deparser's emit order
//   constant-guard              an if-statement guard the ValueRange
//                               analysis proves always-true/always-false
//                               (injection-analysis guard-constancy facts:
//                               one arm dead, the test vacuous)
//   unused-write                a header/metadata field written by a
//                               reachable pipeline node that no downstream
//                               node ever reads and no downstream deparser
//                               emits — dead code or a missing read (the
//                               def-use notion shared with analysis/impact)
//
// Diagnostics are deterministic and deduplicated: a finding reachable via
// multiple CFG paths emits once, keyed by (detector, node, field), sorted
// by (node, code, field, message), with locations taken from the CFG's
// interned source labels.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/dataflow.hpp"
#include "cfg/cfg.hpp"

namespace meissa::analysis {

enum class Severity : uint8_t { kWarning, kError };

struct Diagnostic {
  Severity severity = Severity::kWarning;
  std::string code;      // stable slug, e.g. "invalid-header-read"
  cfg::NodeId node = cfg::kNoNode;
  std::string instance;  // owning pipeline instance name; empty for glue
  std::string location;  // the node's source label (may be empty)
  std::string field;     // subject field/header; empty for node-level codes
  std::string message;
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;
  uint64_t errors = 0;
  uint64_t warnings = 0;

  bool clean() const noexcept { return diagnostics.empty(); }
};

// Runs the value/validity/reaching-definition analysis over `g` from its
// entry and collects all diagnostics.
LintResult lint_cfg(const ir::Context& ctx, const cfg::Cfg& g);

// Human-readable rendering, one line per diagnostic plus a summary line.
std::string render_text(const LintResult& r);

// Deterministic JSON rendering (stable key order, sorted diagnostics).
std::string render_json(const LintResult& r);

}  // namespace meissa::analysis
