// Static change-impact analysis (ROADMAP "incremental re-testing").
//
// Production rule sets churn continuously; re-exploring the whole program
// for every update wastes nearly all of its solver work on regions the
// change cannot influence. This module provides the static machinery to
// decide — soundly — which pipeline regions a given rule update or program
// edit can affect:
//
//   1. *Region fingerprints*: a deterministic content hash per pipeline
//      instance subgraph (and one for the inter-pipeline glue), hashed by
//      stable node content and region-local discovery indices — never by
//      NodeId or FieldId, both of which are interning-/build-order
//      artifacts. Two builds of the same program agree on every
//      fingerprint even when their contexts interned fields in different
//      orders.
//   2. A *def-use dependency graph* over regions: which fields each region
//      reads and writes (assign targets, hash dests, predicate and key
//      operands), with the reads of inter-pipeline glue nodes folded into
//      every region they guard. Region k depends on upstream region j when
//      j's exit reaches k's entry AND (writes(j) ∪ reads(j)) overlaps
//      reads(k) — reads(j) is included because j's *predicates* constrain
//      the public pre-condition k is explored under, not only j's
//      assignments. Regions with unresolved dataflow (hash nodes are
//      opaque to the solver) get conservative edges from every upstream
//      region.
//   3. An *invalidation engine*: diff two models (baseline vs. current)
//      and compute the transitively-dirty region set — seeded by
//      fingerprint mismatches, closed over the UNION of both models'
//      edges (an edge that existed only in the baseline still propagates:
//      a *removed* upstream write is as much a change as an added one).
//
// Consumers: the summary pass reuses a clean region's SummaryUnit
// verbatim, the checkpoint layer keys work units by region fingerprint
// instead of a whole-CFG hash, and driver::IncrementalSession reports
// delta coverage per update.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cfg/cfg.hpp"
#include "p4/rules.hpp"

namespace meissa::analysis {

// Content fingerprints of one build of one program. All maps are keyed by
// instance name (the only cross-run-stable region identity).
struct RegionFingerprints {
  // Instance names in graph order (a change in count or order is a
  // structural edit — everything is dirty).
  std::vector<std::string> instances;
  // Per-region content hash: node statements/hashes/origins rendered with
  // field *names*, successors as region-local discovery indices.
  std::unordered_map<std::string, uint64_t> region;
  // Like `region`, but with each expanded table collapsed to one opaque
  // super-node (entry/miss nodes contribute only the table's name). Two
  // builds agree on region_code iff the region differs at most in table
  // *configuration* — the fingerprint that lets the invalidation engine
  // treat a rule update as a table-only change and contaminate downstream
  // regions through the table's affected fields instead of the whole
  // region's write set.
  std::unordered_map<std::string, uint64_t> region_code;
  // Per region, per expanded table: a content hash of just that table's
  // expansion (entry/miss nodes). A region fingerprint mismatch with an
  // unchanged region_code is attributed to the tables whose expansion
  // hashes differ — any change confined to a table's expansion can only
  // influence downstream behavior through those nodes' fields.
  std::unordered_map<std::string, std::unordered_map<std::string, uint64_t>>
      table_expansion;
  // Names of upstream regions (j's exit reaches this region's entry).
  std::unordered_map<std::string, std::vector<std::string>> upstream;
  // The inter-pipeline glue (topology guards, hand-off assigns) with
  // instances collapsed to single super-nodes.
  uint64_t glue = 0;
  // Whole-graph hash over absolute node ids — the strictest key, gating
  // artifacts tied to exact node numbering (final-DFS shard frontiers).
  uint64_t whole = 0;

  bool empty() const noexcept {
    return instances.empty() && glue == 0 && whole == 0;
  }
};

// Fingerprints every region of `g` plus the glue and the whole graph.
RegionFingerprints fingerprint_regions(const ir::Context& ctx,
                                       const cfg::Cfg& g);

// Whole-graph content hash (the `whole` component alone): every node's
// statement, hash, successors (absolute ids) and exits, plus instance
// metadata — rendered with field names so the hash is stable across
// processes.
uint64_t fingerprint_graph(const ir::Context& ctx, const cfg::Cfg& g);

// Per-table configuration hash: entries in install order (matches, action,
// args, priority) plus the table's default override, if any. Tables are
// those mentioned by `rules`; a table absent here and present in the other
// run's map counts as changed.
std::unordered_map<std::string, uint64_t> fingerprint_tables(
    const p4::RuleSet& rules);

// The def-use dependency graph over regions.
struct RegionDeps {
  struct Region {
    std::string name;
    std::vector<std::string> reads;   // sorted field names
    std::vector<std::string> writes;  // sorted field names
    std::vector<std::string> tables;  // tables expanded inside this region
    // Reads of the inter-pipeline glue nodes that can reach this region's
    // entry (topology guards deciding whether packets get here at all) —
    // folded into the effective read set for edge and taint gating.
    std::vector<std::string> entry_reads;
    // Per expanded table: the fields its entry/miss nodes read or write
    // (match keys + action effects). A config change to the table can
    // alter downstream-visible behavior only through these.
    std::unordered_map<std::string, std::vector<std::string>> table_fields;
    // Intra-region taint flow closure: flow[f] = the fields this region's
    // own dataflow contaminates once f is suspect (assign operands flow to
    // targets, hash keys to dests, predicates couple their operands).
    // Only read fields that contaminate beyond themselves get entries.
    std::unordered_map<std::string, std::vector<std::string>> flow;
    // Unresolved dataflow inside the region (hash nodes are opaque): the
    // region conservatively depends on every upstream region.
    bool conservative = false;
  };
  std::vector<Region> regions;  // instance order
  // edges[k] = upstream regions k depends on (def-use gated, see header).
  std::unordered_map<std::string, std::vector<std::string>> edges;
  // Dataflow of each glue node (reads/writes), for taint propagation
  // through hand-off assigns and coupling guards outside any region.
  struct GlueIO {
    std::vector<std::string> reads;
    std::vector<std::string> writes;
  };
  std::vector<GlueIO> glue;
};

RegionDeps build_region_deps(const ir::Context& ctx, const cfg::Cfg& g);

// Everything the invalidation engine needs about one build.
struct ImpactModel {
  RegionFingerprints fps;
  RegionDeps deps;
  std::unordered_map<std::string, uint64_t> tables;
};

ImpactModel build_impact_model(const ir::Context& ctx, const cfg::Cfg& g,
                               const p4::RuleSet& rules);

// The invalidation verdict for one update.
struct ImpactDiff {
  // Structural change (instance inventory or glue differs): every region
  // is dirty and nothing may be reused.
  bool full = false;
  std::vector<std::string> dirty;  // instance order
  std::vector<std::string> clean;  // instance order
  std::vector<std::string> changed_tables;  // sorted
  // The taint set the propagation converged on: fields through which the
  // change can influence downstream regions (sorted; reporting aid).
  std::vector<std::string> tainted_fields;
};

// Diffs two models and computes the minimal transitively-dirty region
// set. Seeds are fingerprint mismatches (a region expanding a changed
// table always mismatches — entries are region nodes). Propagation is
// field-granular: a table-only change (region_code unchanged) injects only
// the changed tables' affected fields into the taint set; a code edit
// injects the region's whole read+write surface. Taint then grows to a
// fixpoint: every dirty region pushes taint through its intra-region flow
// closure, any glue node reading a tainted field couples its other fields
// in (guards correlate fields across regions), and a clean region k turns
// dirty iff some already-dirty region has a dependency edge into k (union
// of both models' edges — a removed upstream write still propagates) AND
// the taint set intersects k's effective reads (or k is conservative).
// Edges are load-bearing: deleting one breaks soundness, which the tests
// exploit.
ImpactDiff compute_impact(const ImpactModel& baseline,
                          const ImpactModel& current);

}  // namespace meissa::analysis
