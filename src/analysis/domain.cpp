#include "analysis/domain.hpp"

#include <algorithm>

#include "util/bits.hpp"

namespace meissa::analysis {

namespace {

using ir::CmpOp;
using ir::ExprKind;
using ir::ExprRef;

CmpOp mirror(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return CmpOp::kGt;
    case CmpOp::kLe: return CmpOp::kGe;
    case CmpOp::kGt: return CmpOp::kLt;
    case CmpOp::kGe: return CmpOp::kLe;
    default: return op;  // kEq/kNe are symmetric
  }
}

CmpOp flipped(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return CmpOp::kNe;
    case CmpOp::kNe: return CmpOp::kEq;
    case CmpOp::kLt: return CmpOp::kGe;
    case CmpOp::kLe: return CmpOp::kGt;
    case CmpOp::kGt: return CmpOp::kLe;
    case CmpOp::kGe: return CmpOp::kLt;
  }
  return op;
}

// cmp(field-or-masked-field, const) in either operand order.
bool classify_cmp(ExprRef e, Atom& a) {
  ExprRef l = e->lhs;
  ExprRef r = e->rhs;
  CmpOp op = e->cmp_op();
  if (l->kind == ExprKind::kConst && r->kind != ExprKind::kConst) {
    std::swap(l, r);
    op = mirror(op);
  }
  if (r->kind != ExprKind::kConst) return false;
  ExprRef base = l;
  uint64_t mask = ~uint64_t{0};
  if (l->kind == ExprKind::kArith && l->arith_op() == ir::ArithOp::kAnd) {
    if (l->rhs->kind == ExprKind::kConst && l->lhs->kind == ExprKind::kField) {
      mask = l->rhs->value;
      base = l->lhs;
    } else if (l->lhs->kind == ExprKind::kConst &&
               l->rhs->kind == ExprKind::kField) {
      mask = l->lhs->value;
      base = l->rhs;
    } else {
      return false;
    }
    if (op != CmpOp::kEq && op != CmpOp::kNe) return false;
  }
  if (base->kind != ExprKind::kField) return false;
  a.field = base->field;
  a.width = base->width;
  a.op = op;
  a.mask = util::truncate(mask, base->width);
  a.value = util::truncate(r->value, base->width);
  if ((op == CmpOp::kEq || op == CmpOp::kNe) && (a.value & ~a.mask) != 0) {
    // The constant has bits outside the mask: (f & m) == c never holds,
    // (f & m) != c always does. Canonicalize to the trivially-false /
    // trivially-true unsigned range atom so negation stays correct.
    a.op = op == CmpOp::kEq ? CmpOp::kLt : CmpOp::kGe;
    a.mask = util::mask_bits(base->width);
    a.value = 0;
  }
  a.set.clear();
  return true;
}

// OR-tree whose leaves are all `field == const` on the same field: the
// merged pre-condition / any-of shape. Produces a membership atom.
bool collect_set_leaves(ExprRef e, ir::FieldId& field, int& width,
                        std::vector<uint64_t>& values) {
  if (e->kind == ExprKind::kBool && e->bool_op() == ir::BoolOp::kOr) {
    return collect_set_leaves(e->lhs, field, width, values) &&
           collect_set_leaves(e->rhs, field, width, values);
  }
  Atom a;
  if (!classify_cmp(e, a) || a.op != CmpOp::kEq || !a.is_exact_mask()) {
    return false;
  }
  if (field != ir::kInvalidField && field != a.field) return false;
  field = a.field;
  width = a.width;
  values.push_back(a.value);
  return true;
}

bool classify_value_set(ExprRef e, Atom& a) {
  ir::FieldId field = ir::kInvalidField;
  int width = 0;
  std::vector<uint64_t> values;
  if (!collect_set_leaves(e, field, width, values)) return false;
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  a.field = field;
  a.width = width;
  a.op = CmpOp::kEq;
  a.mask = util::mask_bits(width);
  a.value = 0;
  a.set = std::move(values);
  return true;
}

void decompose(ExprRef e, bool negated, std::vector<Atom>& atoms,
               std::vector<ir::ExprRef>& opaque) {
  switch (e->kind) {
    case ExprKind::kBoolConst: {
      const bool truth = (e->value == 1) != negated;
      if (!truth) atoms.push_back(Atom{});  // kInvalidField: constant false
      return;
    }
    case ExprKind::kNot:
      decompose(e->lhs, !negated, atoms, opaque);
      return;
    case ExprKind::kBool: {
      const bool conj = (e->bool_op() == ir::BoolOp::kAnd) != negated;
      if (conj) {
        // a && b, or De Morgan'd !(a || b).
        decompose(e->lhs, negated, atoms, opaque);
        decompose(e->rhs, negated, atoms, opaque);
        return;
      }
      // A disjunction: only the single-field value-set shape is tractable.
      Atom a;
      if (!negated && classify_value_set(e, a)) {
        atoms.push_back(std::move(a));
        return;
      }
      if (negated && classify_value_set(e, a)) {
        // !(f IN S): one exclusion atom per member.
        for (uint64_t v : a.set) {
          Atom ne;
          ne.field = a.field;
          ne.width = a.width;
          ne.op = CmpOp::kNe;
          ne.mask = a.mask;
          ne.value = v;
          atoms.push_back(std::move(ne));
        }
        return;
      }
      break;
    }
    case ExprKind::kCmp: {
      Atom a;
      if (classify_cmp(e, a)) {
        if (negated) a = negate_atom(a);
        atoms.push_back(std::move(a));
        return;
      }
      break;
    }
    default:
      break;
  }
  // Opaque conjunct. Record the expression as seen (negation preserved
  // only structurally; callers treat opaque conjuncts as unknown anyway,
  // they only need the fields involved).
  opaque.push_back(e);
}

}  // namespace

bool Atom::is_exact_mask() const noexcept {
  return util::truncate(mask, width) == util::mask_bits(width);
}

void decompose_conjunction(ir::ExprRef e, std::vector<Atom>& atoms,
                           std::vector<ir::ExprRef>& opaque) {
  if (e == nullptr) return;
  decompose(e, false, atoms, opaque);
}

Atom negate_atom(const Atom& a) {
  Atom n = a;
  n.op = flipped(a.op);
  return n;
}

bool atom_holds(uint64_t v, const Atom& a) noexcept {
  if (!a.set.empty()) {
    return std::binary_search(a.set.begin(), a.set.end(), v);
  }
  const bool eqish = a.op == CmpOp::kEq || a.op == CmpOp::kNe;
  return ir::apply_cmp(a.op, eqish ? (v & a.mask) : v, a.value);
}

// ---------------------------------------------------------------- ValueRange

ValueRange::ValueRange(int width) : width_(width) {
  if (small()) {
    bitmap_ = util::mask_bits(1 << width);
  } else {
    hi_ = util::mask_bits(width);
  }
}

ValueRange ValueRange::constant(uint64_t v, int width) {
  ValueRange r(width);
  v = util::truncate(v, width);
  if (r.small()) {
    r.bitmap_ = uint64_t{1} << v;
  } else {
    r.lo_ = r.hi_ = v;
    r.known_mask_ = r.full_mask();
    r.known_val_ = v;
  }
  return r;
}

uint64_t ValueRange::full_mask() const noexcept {
  return util::mask_bits(width_);
}

bool ValueRange::is_bottom() const noexcept {
  if (small()) return bitmap_ == 0;
  return lo_ > hi_;
}

bool ValueRange::is_top() const noexcept {
  if (small()) return bitmap_ == util::mask_bits(1 << width_);
  return lo_ == 0 && hi_ == full_mask() && known_mask_ == 0 &&
         excluded_.empty();
}

bool ValueRange::is_constant(uint64_t& v) const noexcept {
  if (small()) {
    if (bitmap_ != 0 && (bitmap_ & (bitmap_ - 1)) == 0) {
      v = static_cast<uint64_t>(__builtin_ctzll(bitmap_));
      return true;
    }
    return false;
  }
  if (is_bottom()) return false;
  if (lo_ == hi_) {
    v = lo_;
    return true;
  }
  if (known_mask_ == full_mask()) {
    v = known_val_;
    return true;
  }
  return false;
}

bool ValueRange::join(const ValueRange& o) {
  if (o.is_bottom()) return false;
  if (is_bottom()) {
    *this = o;
    return true;
  }
  if (small()) {
    const uint64_t merged = bitmap_ | o.bitmap_;
    const bool changed = merged != bitmap_;
    bitmap_ = merged;
    return changed;
  }
  bool changed = false;
  if (o.lo_ < lo_) { lo_ = o.lo_; changed = true; }
  if (o.hi_ > hi_) { hi_ = o.hi_; changed = true; }
  const uint64_t agree =
      known_mask_ & o.known_mask_ & ~(known_val_ ^ o.known_val_);
  if (agree != known_mask_) {
    known_mask_ = agree;
    known_val_ &= agree;
    changed = true;
  }
  if (!excluded_.empty()) {
    auto kept = excluded_;
    kept.erase(std::remove_if(kept.begin(), kept.end(),
                              [&](const std::pair<uint64_t, uint64_t>& p) {
                                return std::find(o.excluded_.begin(),
                                                 o.excluded_.end(),
                                                 p) == o.excluded_.end();
                              }),
               kept.end());
    if (kept.size() != excluded_.size()) {
      excluded_ = std::move(kept);
      changed = true;
    }
  }
  return changed;
}

void ValueRange::refine(const Atom& a) {
  if (small()) {
    uint64_t kept = 0;
    for (uint64_t v = 0; v < (uint64_t{1} << width_); ++v) {
      if ((bitmap_ >> v) & 1) {
        if (atom_holds(v, a)) kept |= uint64_t{1} << v;
      }
    }
    bitmap_ = kept;
    return;
  }
  if (!a.set.empty()) {
    // Interval hull of the membership set.
    lo_ = std::max(lo_, a.set.front());
    hi_ = std::min(hi_, a.set.back());
    return;
  }
  const bool exact = a.is_exact_mask();
  switch (a.op) {
    case CmpOp::kEq:
      if ((known_val_ ^ a.value) & a.mask & known_mask_) {
        lo_ = 1;
        hi_ = 0;  // bit conflict: empty
        return;
      }
      known_val_ = (known_val_ & ~a.mask) | a.value;
      known_mask_ |= a.mask;
      if (exact) {
        lo_ = std::max(lo_, a.value);
        hi_ = std::min(hi_, a.value);
      }
      break;
    case CmpOp::kNe:
      if (exact && lo_ == hi_ && lo_ == a.value) {
        lo_ = 1;
        hi_ = 0;
        return;
      }
      if (exact && a.value == lo_ && lo_ < hi_) {
        ++lo_;
      } else if (exact && a.value == hi_ && lo_ < hi_) {
        --hi_;
      } else if (excluded_.size() < kMaxExcluded) {
        const std::pair<uint64_t, uint64_t> p{a.mask, a.value};
        if (std::find(excluded_.begin(), excluded_.end(), p) ==
            excluded_.end()) {
          excluded_.push_back(p);
        }
      }
      break;
    case CmpOp::kLt:
      if (a.value == 0) {
        lo_ = 1;
        hi_ = 0;
      } else {
        hi_ = std::min(hi_, a.value - 1);
      }
      break;
    case CmpOp::kLe:
      hi_ = std::min(hi_, a.value);
      break;
    case CmpOp::kGt:
      if (a.value == full_mask()) {
        lo_ = 1;
        hi_ = 0;
      } else {
        lo_ = std::max(lo_, a.value + 1);
      }
      break;
    case CmpOp::kGe:
      lo_ = std::max(lo_, a.value);
      break;
  }
  if (lo_ > hi_) return;
  // Fully-known value: collapse the interval and check exclusions.
  if (known_mask_ == full_mask()) {
    if (known_val_ < lo_ || known_val_ > hi_) {
      lo_ = 1;
      hi_ = 0;
      return;
    }
    lo_ = hi_ = known_val_;
    for (const auto& [m, v] : excluded_) {
      if ((known_val_ & m) == v) {
        lo_ = 1;
        hi_ = 0;
        return;
      }
    }
  }
}

Ternary ValueRange::eval(const Atom& a) const {
  if (is_bottom()) return Ternary::kUnknown;  // unreachable state: no claim
  if (small()) {
    bool any = false;
    bool all = true;
    for (uint64_t v = 0; v < (uint64_t{1} << width_); ++v) {
      if ((bitmap_ >> v) & 1) {
        if (atom_holds(v, a)) {
          any = true;
        } else {
          all = false;
        }
      }
    }
    if (all) return Ternary::kTrue;
    if (!any) return Ternary::kFalse;
    return Ternary::kUnknown;
  }
  auto plausible = [&](uint64_t v) {
    if (v < lo_ || v > hi_) return false;
    if ((v & known_mask_) != known_val_) return false;
    for (const auto& [m, ev] : excluded_) {
      if ((v & m) == ev) return false;
    }
    return true;
  };
  uint64_t c = 0;
  if (is_constant(c)) {
    return atom_holds(c, a) ? Ternary::kTrue : Ternary::kFalse;
  }
  if (hi_ - lo_ < 256) {
    bool any = false;
    bool all = true;
    for (uint64_t v = lo_;; ++v) {
      if (plausible(v)) {
        if (atom_holds(v, a)) {
          any = true;
        } else {
          all = false;
        }
      }
      if (v == hi_) break;
    }
    if (any && all) return Ternary::kTrue;
    if (!any) return Ternary::kFalse;
    return Ternary::kUnknown;
  }
  if (!a.set.empty()) {
    for (uint64_t s : a.set) {
      if (plausible(s)) return Ternary::kUnknown;
    }
    return Ternary::kFalse;
  }
  switch (a.op) {
    case CmpOp::kEq: {
      if ((a.value ^ known_val_) & a.mask & known_mask_) return Ternary::kFalse;
      if ((a.mask & ~known_mask_) == 0) return Ternary::kTrue;
      if (a.is_exact_mask() && !plausible(a.value)) return Ternary::kFalse;
      return Ternary::kUnknown;
    }
    case CmpOp::kNe: {
      if ((a.value ^ known_val_) & a.mask & known_mask_) return Ternary::kTrue;
      if ((a.mask & ~known_mask_) == 0) return Ternary::kFalse;
      for (const auto& [m, v] : excluded_) {
        if (m == a.mask && v == a.value) return Ternary::kTrue;
      }
      return Ternary::kUnknown;
    }
    case CmpOp::kLt:
      if (hi_ < a.value) return Ternary::kTrue;
      if (lo_ >= a.value) return Ternary::kFalse;
      return Ternary::kUnknown;
    case CmpOp::kLe:
      if (hi_ <= a.value) return Ternary::kTrue;
      if (lo_ > a.value) return Ternary::kFalse;
      return Ternary::kUnknown;
    case CmpOp::kGt:
      if (lo_ > a.value) return Ternary::kTrue;
      if (hi_ <= a.value) return Ternary::kFalse;
      return Ternary::kUnknown;
    case CmpOp::kGe:
      if (lo_ >= a.value) return Ternary::kTrue;
      if (hi_ < a.value) return Ternary::kFalse;
      return Ternary::kUnknown;
  }
  return Ternary::kUnknown;
}

}  // namespace meissa::analysis
