// m4delta — incremental re-testing CLI: run a baseline generation for a
// built-in app, apply N single-table rule updates, and report *delta
// coverage* per update (templates added/removed/unchanged), the regions
// the change-impact analysis kept clean, and the solver work saved vs
// full regeneration.
//
//   m4delta --app NAME [options]
//
// Options:
//   --app NAME        router, mtag, acl, switchp4, gw-1..gw-4
//   --updates N       number of rule updates to apply (default 1); update
//                     k removes the target table's last remaining entry
//   --table NAME      table to update (default: the table of the rule
//                     set's last installed entry — a late-pipeline table,
//                     so upstream regions stay clean)
//   --json            machine-readable report
//   --threads N       worker threads (0 = hardware)
//   --no-verify       skip the byte-identity check against a from-scratch
//                     regeneration of each updated program (the check is
//                     also what measures the full-regen SMT cost)
//   --metrics FILE    enable the metrics registry; write snapshot to FILE
//   --trace FILE      enable span tracing; write Chrome trace JSON to FILE
//
// Exit status: 0 ok, 1 byte-identity mismatch, 2 usage or error.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "driver/incremental.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace {

using namespace meissa;

int usage() {
  std::fprintf(stderr,
               "usage: m4delta --app NAME [options]\n"
               "  --app: router, mtag, acl, switchp4, gw-1, gw-2, gw-3, gw-4\n"
               "  options: --updates N --table NAME --json --threads N\n"
               "           --no-verify --metrics FILE --trace FILE\n");
  return 2;
}

// Same demo configurations as m4test/m4lint (small, deterministic).
apps::AppBundle load_app(ir::Context& ctx, const std::string& name) {
  if (name == "router") return apps::make_router(ctx, 6);
  if (name == "mtag") return apps::make_mtag(ctx, 4);
  if (name == "acl") return apps::make_acl(ctx, 4, 4);
  if (name == "switchp4") {
    apps::SwitchP4Config cfg;
    cfg.l2_hosts = 4;
    cfg.routes = 4;
    cfg.ecmp_ways = 2;
    cfg.acls = 4;
    cfg.mpls_labels = 4;
    return apps::make_switchp4(ctx, cfg);
  }
  if (name.rfind("gw-", 0) == 0 && name.size() == 4 && name[3] >= '1' &&
      name[3] <= '4') {
    apps::GwConfig cfg;
    cfg.level = name[3] - '0';
    cfg.elastic_ips = 4;
    return apps::make_gateway(ctx, cfg);
  }
  throw util::ValidationError("unknown app '" + name + "'");
}

// Removes the target table's last remaining entry. False when none left.
bool remove_last_entry(p4::RuleSet& rules, const std::string& table) {
  for (auto it = rules.entries.rbegin(); it != rules.entries.rend(); ++it) {
    if (it->table == table) {
      rules.entries.erase(std::next(it).base());
      return true;
    }
  }
  return false;
}

std::string join(const std::vector<std::string>& v) {
  std::string s;
  for (const std::string& x : v) {
    if (!s.empty()) s += ",";
    s += x;
  }
  return s;
}

std::string json_list(const std::vector<std::string>& v) {
  std::string s = "[";
  for (const std::string& x : v) {
    if (s.size() > 1) s += ",";
    s += "\"" + x + "\"";
  }
  return s + "]";
}

struct UpdateRow {
  driver::UpdateReport rep;
  bool verified = false;
  bool byte_identical = false;
  uint64_t full_smt_checks = 0;
  double full_seconds = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string app;
  std::string table;
  int updates = 1;
  bool json = false;
  bool verify = true;
  int threads = 0;
  std::string metrics_file;
  std::string trace_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--app" && i + 1 < argc) {
      app = argv[++i];
    } else if (arg == "--table" && i + 1 < argc) {
      table = argv[++i];
    } else if (arg == "--updates" && i + 1 < argc) {
      updates = std::atoi(argv[++i]);
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--no-verify") {
      verify = false;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_file = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_file = argv[++i];
    } else {
      return usage();
    }
  }
  if (app.empty() || updates < 1) return usage();

  if (!metrics_file.empty()) obs::MetricsRegistry::set_enabled(true);
  if (!trace_file.empty()) obs::trace_start();

  int status = 0;
  try {
    ir::Context ctx;
    apps::AppBundle b = load_app(ctx, app);
    if (table.empty()) {
      if (b.rules.entries.empty()) {
        std::fprintf(stderr, "m4delta: app '%s' installs no rules\n",
                     app.c_str());
        return 2;
      }
      table = b.rules.entries.back().table;
    }

    driver::IncrementalOptions iopts;
    iopts.gen.threads = threads;
    driver::IncrementalSession session(ctx, b.dp, iopts);

    p4::RuleSet rules = b.rules;
    std::vector<UpdateRow> rows;
    rows.push_back({session.run(rules), false, false, 0, 0});
    int applied = 0;
    for (int u = 1; u <= updates; ++u) {
      if (!remove_last_entry(rules, table)) {
        std::fprintf(stderr,
                     "m4delta: table '%s' out of entries after %d update(s)\n",
                     table.c_str(), applied);
        break;
      }
      ++applied;
      UpdateRow row;
      row.rep = session.run(rules);
      if (verify) {
        // From-scratch regeneration of the updated program in a fresh
        // context: same app, same removals, no reused state. Byte-identity
        // compares the strict signatures (path condition, final values,
        // exact node path).
        ir::Context ctx2;
        apps::AppBundle b2 = load_app(ctx2, app);
        p4::RuleSet rules2 = b2.rules;
        for (int k = 0; k < applied; ++k) remove_last_entry(rules2, table);
        driver::GenOptions gopts;
        gopts.threads = threads;
        driver::Generator gen(ctx2, b2.dp, rules2, gopts);
        std::vector<sym::TestCaseTemplate> full = gen.generate();
        std::vector<std::string> c;
        for (const sym::TestCaseTemplate& t : full) {
          c.push_back(driver::IncrementalSession::full_signature(
              ctx2, gen.graph(), t));
        }
        std::sort(c.begin(), c.end());
        row.verified = true;
        row.byte_identical = row.rep.full_sigs == c;
        row.full_smt_checks = gen.stats().smt_checks;
        row.full_seconds = gen.stats().total_seconds;
        if (!row.byte_identical) status = 1;
      }
      rows.push_back(std::move(row));
    }

    if (json) {
      std::string out = "{\"app\":\"" + app + "\",\"table\":\"" + table +
                        "\",\"runs\":[";
      for (size_t i = 0; i < rows.size(); ++i) {
        const UpdateRow& r = rows[i];
        if (i > 0) out += ",";
        out += "{\"run\":" + std::to_string(r.rep.run);
        out += ",\"templates\":" + std::to_string(r.rep.templates.size());
        out += ",\"regions_dirty\":" + std::to_string(r.rep.impact.dirty.size());
        out += ",\"regions_clean\":" + std::to_string(r.rep.impact.clean.size());
        out += ",\"dirty\":" + json_list(r.rep.impact.dirty);
        out += ",\"tainted_fields\":" + json_list(r.rep.impact.tainted_fields);
        out += ",\"changed_tables\":" + json_list(r.rep.impact.changed_tables);
        out += ",\"summaries_reused\":" + std::to_string(r.rep.summaries_reused);
        out += ",\"added\":" + std::to_string(r.rep.added);
        out += ",\"removed\":" + std::to_string(r.rep.removed);
        out += ",\"unchanged\":" + std::to_string(r.rep.unchanged);
        out += ",\"smt_checks\":" + std::to_string(r.rep.smt_checks);
        out += ",\"pc_cache_hits\":" + std::to_string(r.rep.pc_cache_hits);
        if (r.verified) {
          out += std::string(",\"byte_identical\":") +
                 (r.byte_identical ? "true" : "false");
          out += ",\"full_smt_checks\":" + std::to_string(r.full_smt_checks);
          // 0 paid checks (everything cache-hit) counts as 1 so the ratio
          // stays finite and monotone in the savings.
          double ratio = double(r.full_smt_checks) /
                         double(r.rep.smt_checks > 0 ? r.rep.smt_checks : 1);
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%.2f", ratio);
          out += std::string(",\"check_ratio\":") + buf;
        }
        out += "}";
      }
      out += "]}";
      std::printf("%s\n", out.c_str());
    } else {
      std::printf("m4delta: app=%s table=%s\n", app.c_str(), table.c_str());
      for (const UpdateRow& r : rows) {
        if (r.rep.run == 0) {
          std::printf("baseline: %zu template(s), %llu SMT check(s)\n",
                      r.rep.templates.size(),
                      (unsigned long long)r.rep.smt_checks);
          continue;
        }
        std::printf(
            "update %d: tables[%s] dirty=%zu clean=%zu reused=%llu | "
            "templates %zu (+%llu -%llu =%llu) | %llu SMT check(s)",
            r.rep.run, join(r.rep.impact.changed_tables).c_str(),
            r.rep.impact.dirty.size(), r.rep.impact.clean.size(),
            (unsigned long long)r.rep.summaries_reused,
            r.rep.templates.size(), (unsigned long long)r.rep.added,
            (unsigned long long)r.rep.removed,
            (unsigned long long)r.rep.unchanged,
            (unsigned long long)r.rep.smt_checks);
        if (r.verified) {
          std::printf(" | full-regen %llu (%.1fx) %s",
                      (unsigned long long)r.full_smt_checks,
                      double(r.full_smt_checks) /
                          double(r.rep.smt_checks > 0 ? r.rep.smt_checks : 1),
                      r.byte_identical ? "byte-identical" : "MISMATCH");
        }
        std::printf("\n");
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "m4delta: %s\n", e.what());
    status = 2;
  }

  if (!trace_file.empty()) {
    obs::trace_stop();
    if (!obs::write_trace_file(trace_file)) {
      std::fprintf(stderr, "m4delta: cannot write trace to '%s'\n",
                   trace_file.c_str());
      if (status == 0) status = 2;
    }
  }
  if (!metrics_file.empty() && !obs::write_metrics_file(metrics_file)) {
    std::fprintf(stderr, "m4delta: cannot write metrics to '%s'\n",
                 metrics_file.c_str());
    if (status == 0) status = 2;
  }
  return status;
}
