// m4lint — static lint for M4 data planes and the built-in app corpus.
//
//   m4lint [--json] FILE.m4         lint an M4 unit (program + topology +
//                                   optional rules)
//   m4lint [--json] --app NAME      lint a built-in demo app
//                                   (router, mtag, acl, switchp4, gw-1..gw-4)
//   m4lint [--json] --bug N         lint bug-corpus scenario N (1..16)
//
// Exit status: 0 clean, 1 warnings only, 2 errors (or usage/load failure).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/lint.hpp"
#include "apps/apps.hpp"
#include "cfg/build.hpp"
#include "p4/dsl.hpp"
#include "util/error.hpp"

namespace {

using namespace meissa;

int usage() {
  std::fprintf(stderr,
               "usage: m4lint [--json] (FILE.m4 | --app NAME | --bug N)\n"
               "  --app: router, mtag, acl, switchp4, gw-1, gw-2, gw-3, gw-4\n"
               "  --bug: bug-corpus scenario 1..%d\n",
               apps::kNumBugs);
  return 2;
}

// The demo configurations the test suite exercises (small, deterministic).
apps::AppBundle load_app(ir::Context& ctx, const std::string& name) {
  if (name == "router") return apps::make_router(ctx, 6);
  if (name == "mtag") return apps::make_mtag(ctx, 4);
  if (name == "acl") return apps::make_acl(ctx, 4, 4);
  if (name == "switchp4") {
    apps::SwitchP4Config cfg;
    cfg.l2_hosts = 4;
    cfg.routes = 4;
    cfg.ecmp_ways = 2;
    cfg.acls = 4;
    cfg.mpls_labels = 4;
    return apps::make_switchp4(ctx, cfg);
  }
  if (name.rfind("gw-", 0) == 0 && name.size() == 4 && name[3] >= '1' &&
      name[3] <= '4') {
    apps::GwConfig cfg;
    cfg.level = name[3] - '0';
    cfg.elastic_ips = 4;
    return apps::make_gateway(ctx, cfg);
  }
  throw util::ValidationError("unknown app '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string app;
  int bug = 0;
  std::string file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--app" && i + 1 < argc) {
      app = argv[++i];
    } else if (arg == "--bug" && i + 1 < argc) {
      bug = std::atoi(argv[++i]);
      if (bug < 1 || bug > apps::kNumBugs) return usage();
    } else if (!arg.empty() && arg[0] != '-' && file.empty()) {
      file = arg;
    } else {
      return usage();
    }
  }
  if ((app.empty() ? 0 : 1) + (bug != 0 ? 1 : 0) + (file.empty() ? 0 : 1) !=
      1) {
    return usage();
  }

  try {
    ir::Context ctx;
    p4::DataPlane dp;
    p4::RuleSet rules;
    if (!file.empty()) {
      std::ifstream in(file);
      if (!in) {
        std::fprintf(stderr, "m4lint: cannot open '%s'\n", file.c_str());
        return 2;
      }
      std::ostringstream src;
      src << in.rdbuf();
      p4::ParsedUnit unit = p4::parse_m4(src.str(), ctx);
      dp = std::move(unit.dp);
      rules = std::move(unit.rules);
    } else if (!app.empty()) {
      apps::AppBundle b = load_app(ctx, app);
      dp = std::move(b.dp);
      rules = std::move(b.rules);
    } else {
      apps::BugScenario s = apps::make_bug(ctx, bug);
      dp = std::move(s.bundle.dp);
      rules = std::move(s.bundle.rules);
    }

    cfg::Cfg g = cfg::build_cfg(dp, rules, ctx);
    analysis::LintResult res = analysis::lint_cfg(ctx, g);
    const std::string out =
        json ? analysis::render_json(res) : analysis::render_text(res);
    std::fputs(out.c_str(), stdout);
    if (res.errors > 0) return 2;
    if (res.warnings > 0) return 1;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "m4lint: %s\n", e.what());
    return 2;
  }
}
