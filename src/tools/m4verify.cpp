// m4verify — summary translation validation for M4 data planes.
//
// Runs the code-summary transform (summary::summarize) and then proves it
// sound: per pipeline, every eliminated path-fragment is discharged UNSAT
// under the public pre-condition, and the surviving summary is checked to
// be a simulation of the original subgraph (guards both ways, effects).
//
//   m4verify [opts] FILE.m4      verify an M4 unit
//   m4verify [opts] --app NAME   verify a built-in demo app
//                                (router, mtag, acl, switchp4, gw-1..gw-4)
//   m4verify [opts] --bug N      verify bug-corpus scenario N (1..16)
//
// Options:
//   --json            machine-readable output
//   --obligations     dump every obligation, not just unproven/refuted
//   --inject KIND     miscompile the summary first (drop-branch,
//                     widen-guard, drop-effect) — the validator must refute
//   --budget-ms N     per-obligation solver wall-clock budget
//   --z3              use the Z3 backend when built in
//
// Exit status: 0 proven (all obligations unsat), 1 sound but with
// unproven obligations, 2 refuted (or usage/load failure).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/validate.hpp"
#include "apps/apps.hpp"
#include "cfg/build.hpp"
#include "p4/dsl.hpp"
#include "summary/summary.hpp"
#include "util/error.hpp"

namespace {

using namespace meissa;

int usage() {
  std::fprintf(
      stderr,
      "usage: m4verify [--json] [--obligations] [--inject KIND]\n"
      "                [--budget-ms N] [--z3] (FILE.m4 | --app NAME | "
      "--bug N)\n"
      "  --app:    router, mtag, acl, switchp4, gw-1, gw-2, gw-3, gw-4\n"
      "  --bug:    bug-corpus scenario 1..%d\n"
      "  --inject: drop-branch, widen-guard, drop-effect\n",
      apps::kNumBugs);
  return 2;
}

// Same demo configurations as m4lint / the test suite.
apps::AppBundle load_app(ir::Context& ctx, const std::string& name) {
  if (name == "router") return apps::make_router(ctx, 6);
  if (name == "mtag") return apps::make_mtag(ctx, 4);
  if (name == "acl") return apps::make_acl(ctx, 4, 4);
  if (name == "switchp4") {
    apps::SwitchP4Config cfg;
    cfg.l2_hosts = 4;
    cfg.routes = 4;
    cfg.ecmp_ways = 2;
    cfg.acls = 4;
    cfg.mpls_labels = 4;
    return apps::make_switchp4(ctx, cfg);
  }
  if (name.rfind("gw-", 0) == 0 && name.size() == 4 && name[3] >= '1' &&
      name[3] <= '4') {
    apps::GwConfig cfg;
    cfg.level = name[3] - '0';
    cfg.elastic_ips = 4;
    return apps::make_gateway(ctx, cfg);
  }
  throw util::ValidationError("unknown app '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool dump = false;
  bool use_z3 = false;
  uint64_t budget_ms = 0;
  std::string inject;
  std::string app;
  int bug = 0;
  std::string file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--obligations") {
      dump = true;
    } else if (arg == "--z3") {
      use_z3 = true;
    } else if (arg == "--inject" && i + 1 < argc) {
      inject = argv[++i];
      if (!analysis::parse_summary_fault(inject)) return usage();
    } else if (arg == "--budget-ms" && i + 1 < argc) {
      budget_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--app" && i + 1 < argc) {
      app = argv[++i];
    } else if (arg == "--bug" && i + 1 < argc) {
      bug = std::atoi(argv[++i]);
      if (bug < 1 || bug > apps::kNumBugs) return usage();
    } else if (!arg.empty() && arg[0] != '-' && file.empty()) {
      file = arg;
    } else {
      return usage();
    }
  }
  if ((app.empty() ? 0 : 1) + (bug != 0 ? 1 : 0) + (file.empty() ? 0 : 1) !=
      1) {
    return usage();
  }

  try {
    ir::Context ctx;
    p4::DataPlane dp;
    p4::RuleSet rules;
    if (!file.empty()) {
      std::ifstream in(file);
      if (!in) {
        std::fprintf(stderr, "m4verify: cannot open '%s'\n", file.c_str());
        return 2;
      }
      std::ostringstream src;
      src << in.rdbuf();
      p4::ParsedUnit unit = p4::parse_m4(src.str(), ctx);
      dp = std::move(unit.dp);
      rules = std::move(unit.rules);
    } else if (!app.empty()) {
      apps::AppBundle b = load_app(ctx, app);
      dp = std::move(b.dp);
      rules = std::move(b.rules);
    } else {
      apps::BugScenario s = apps::make_bug(ctx, bug);
      dp = std::move(s.bundle.dp);
      rules = std::move(s.bundle.rules);
    }

    const cfg::Cfg original = cfg::build_cfg(dp, rules, ctx);
    analysis::ValidateOptions vopts;
    vopts.use_z3 = use_z3;
    vopts.summary.use_z3 = use_z3;
    if (budget_ms > 0) vopts.budget.max_wall_ms = budget_ms;
    summary::SummaryResult sr =
        summary::summarize(ctx, original, vopts.summary);

    if (!inject.empty()) {
      std::optional<std::string> broke = analysis::inject_summary_fault(
          ctx, sr.graph, *analysis::parse_summary_fault(inject));
      if (!broke) {
        std::fprintf(stderr,
                     "m4verify: no applicable site for --inject %s\n",
                     inject.c_str());
        return 2;
      }
      std::fprintf(stderr, "m4verify: injected fault: %s\n", broke->c_str());
    }

    const analysis::ValidationResult res =
        analysis::validate_summary(ctx, original, sr.graph, vopts);
    const std::string out = json
                                ? analysis::validate_render_json(res, dump)
                                : analysis::validate_render_text(res, dump);
    std::fputs(out.c_str(), stdout);
    if (res.refuted > 0) return 2;
    if (res.unproven > 0) return 1;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "m4verify: %s\n", e.what());
    return 2;
  }
}
