// m4gauntlet — ground-truth bug corpus generation + survival analysis.
//
//   m4gauntlet [options] --app NAME   mutate a demo app at its live
//                                     injection sites and run the full
//                                     detection stack over every variant
//   m4gauntlet [options] --legacy     the 16 hand-written Table-2
//                                     scenarios, converted to the same
//                                     manifest format
//   m4gauntlet [options] --all        every demo app (router, mtag, acl,
//                                     switchp4, gw-1..gw-4), then the
//                                     legacy corpus
//
// Options:
//   --seed N             corpus + survival seed (default 1; deterministic)
//   --threads N          generation threads (same output at any value)
//   --max-variants N     cap generated variants per app (0 = unlimited)
//   --execs N            fuzz budget per variant (default 4096)
//   --keep-unconfirmed   keep variants without a replay witness
//   --lane-deadline-ms N wall-clock deadline per detection lane (0 =
//                        unlimited). A lane that hits it without detecting
//                        records a first-class "timeout" verdict (report
//                        lane_timeouts / per-outcome timeouts) instead of
//                        counting as a silent survival.
//   --no-lint --no-verify --no-engine --no-fuzz   disable a lane
//   --verify-all         run the verify lane on every variant (slow)
//   --json               machine-readable results on stdout
//   --manifest FILE      write the corpus manifest JSON (multi-target runs
//                        insert the target name before the extension)
//   --report FILE        write the survival report JSON (same naming)
//   --min-triggerable F  exit 1 when confirmed/variants < F (0..1)
//   --min-detection F    exit 1 when detected/variants < F (0..1)
//   --metrics FILE       enable the metrics registry; snapshot to FILE
//   --trace FILE         enable span tracing; Chrome trace JSON to FILE
//
// Exit status: 0 ok, 1 a gate failed, 2 usage or error.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "apps/corpus.hpp"
#include "apps/survival.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace {

using namespace meissa;

int usage() {
  std::fprintf(
      stderr,
      "usage: m4gauntlet [options] (--app NAME | --legacy | --all)\n"
      "  --app: router, mtag, acl, switchp4, gw-1, gw-2, gw-3, gw-4\n"
      "  options: --seed N --threads N --max-variants N --execs N\n"
      "           --lane-deadline-ms N\n"
      "           --keep-unconfirmed --verify-all --json\n"
      "           --no-lint --no-verify --no-engine --no-fuzz\n"
      "           --manifest FILE --report FILE\n"
      "           --min-triggerable F --min-detection F\n"
      "           --metrics FILE --trace FILE\n");
  return 2;
}

// The demo configurations the rest of the tool family uses (m4lint,
// m4fuzz): small and deterministic.
apps::AppBundle load_app(ir::Context& ctx, const std::string& name) {
  if (name == "router") return apps::make_router(ctx, 6);
  if (name == "mtag") return apps::make_mtag(ctx, 4);
  if (name == "acl") return apps::make_acl(ctx, 4, 4);
  if (name == "switchp4") {
    apps::SwitchP4Config cfg;
    cfg.l2_hosts = 4;
    cfg.routes = 4;
    cfg.ecmp_ways = 2;
    cfg.acls = 4;
    cfg.mpls_labels = 4;
    return apps::make_switchp4(ctx, cfg);
  }
  if (name.rfind("gw-", 0) == 0 && name.size() == 4 && name[3] >= '1' &&
      name[3] <= '4') {
    apps::GwConfig cfg;
    cfg.level = name[3] - '0';
    cfg.elastic_ips = 4;
    return apps::make_gateway(ctx, cfg);
  }
  throw util::ValidationError("unknown app '" + name + "'");
}

// "out.json" + "router" -> "out.router.json" (multi-target runs).
std::string target_path(const std::string& base, const std::string& target,
                        bool multi) {
  if (!multi || base.empty()) return base;
  const size_t dot = base.rfind('.');
  if (dot == std::string::npos || base.find('/', dot) != std::string::npos) {
    return base + "." + target;
  }
  return base.substr(0, dot) + "." + target + base.substr(dot);
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return out.good();
}

struct TargetResult {
  std::string name;
  uint64_t variants = 0;
  uint64_t confirmed = 0;
  uint64_t detected = 0;
  std::string manifest;
  std::string survival_json;
  std::string survival_text;
};

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool legacy = false;
  bool all = false;
  std::string app;
  std::string manifest_file;
  std::string report_file;
  std::string metrics_file;
  std::string trace_file;
  double min_triggerable = -1;
  double min_detection = -1;
  apps::corpus::CorpusOptions copts;
  apps::survival::SurvivalOptions sopts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--legacy") {
      legacy = true;
    } else if (arg == "--all") {
      all = true;
    } else if (arg == "--app" && i + 1 < argc) {
      app = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      copts.seed = std::strtoull(argv[++i], nullptr, 10);
      sopts.seed = copts.seed;
    } else if (arg == "--threads" && i + 1 < argc) {
      copts.threads = std::atoi(argv[++i]);
      sopts.threads = copts.threads;
    } else if (arg == "--max-variants" && i + 1 < argc) {
      copts.max_variants = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--execs" && i + 1 < argc) {
      sopts.fuzz_execs = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--lane-deadline-ms" && i + 1 < argc) {
      sopts.lane_deadline_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--keep-unconfirmed") {
      copts.keep_unconfirmed = true;
    } else if (arg == "--verify-all") {
      sopts.verify_all = true;
    } else if (arg == "--no-lint") {
      sopts.run_lint = false;
    } else if (arg == "--no-verify") {
      sopts.run_verify = false;
      copts.summary_variants = false;
    } else if (arg == "--no-engine") {
      sopts.run_engine = false;
    } else if (arg == "--no-fuzz") {
      sopts.run_fuzz = false;
    } else if (arg == "--manifest" && i + 1 < argc) {
      manifest_file = argv[++i];
    } else if (arg == "--report" && i + 1 < argc) {
      report_file = argv[++i];
    } else if (arg == "--min-triggerable" && i + 1 < argc) {
      min_triggerable = std::atof(argv[++i]);
    } else if (arg == "--min-detection" && i + 1 < argc) {
      min_detection = std::atof(argv[++i]);
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_file = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_file = argv[++i];
    } else {
      return usage();
    }
  }
  if ((app.empty() ? 0 : 1) + (legacy ? 1 : 0) + (all ? 1 : 0) != 1) {
    return usage();
  }

  if (!metrics_file.empty()) obs::MetricsRegistry::set_enabled(true);
  if (!trace_file.empty()) obs::trace_start();

  std::vector<std::string> targets;
  if (all) {
    targets = {"router", "mtag",  "acl",  "switchp4", "gw-1",
               "gw-2",   "gw-3",  "gw-4", "legacy"};
  } else if (legacy) {
    targets = {"legacy"};
  } else {
    targets = {app};
  }
  const bool multi = targets.size() > 1;

  int status = 0;
  std::vector<TargetResult> results;
  try {
    for (const std::string& target : targets) {
      TargetResult res;
      res.name = target;

      ir::Context ctx;
      apps::corpus::BugCorpus corpus;
      apps::AppBundle bundle;
      const apps::AppBundle* ref = nullptr;
      if (target == "legacy") {
        corpus = apps::corpus::build_legacy_corpus(copts);
      } else {
        bundle = load_app(ctx, target);
        corpus = apps::corpus::build_corpus(ctx, bundle, copts);
        ref = &bundle;
      }
      res.variants = corpus.variants.size();
      res.confirmed = corpus.confirmed;
      res.manifest = apps::corpus::manifest_json(corpus);
      if (!manifest_file.empty()) {
        const std::string path = target_path(manifest_file, target, multi);
        if (!write_file(path, res.manifest)) {
          std::fprintf(stderr, "m4gauntlet: cannot write manifest '%s'\n",
                       path.c_str());
          status = 2;
        }
      }

      apps::survival::SurvivalReport rep =
          apps::survival::run_survival(corpus, ref, sopts);
      res.detected = rep.detected;
      res.survival_json = rep.to_json();
      res.survival_text = rep.render_text();
      if (!report_file.empty()) {
        const std::string path = target_path(report_file, target, multi);
        if (!write_file(path, res.survival_json)) {
          std::fprintf(stderr, "m4gauntlet: cannot write report '%s'\n",
                       path.c_str());
          status = 2;
        }
      }

      const double triggerable =
          res.variants
              ? static_cast<double>(res.confirmed) /
                    static_cast<double>(res.variants)
              : 0.0;
      const double detection =
          res.variants
              ? static_cast<double>(res.detected) /
                    static_cast<double>(res.variants)
              : 0.0;
      if (!json) {
        std::printf("== %s: %llu variants (%llu confirmed, %.1f%% "
                    "triggerable)\n",
                    target.c_str(),
                    static_cast<unsigned long long>(res.variants),
                    static_cast<unsigned long long>(res.confirmed),
                    100.0 * triggerable);
        std::fputs(res.survival_text.c_str(), stdout);
      }
      if (min_triggerable >= 0 && triggerable < min_triggerable) {
        std::fprintf(stderr,
                     "m4gauntlet: %s triggerable %.3f below gate %.3f\n",
                     target.c_str(), triggerable, min_triggerable);
        if (status == 0) status = 1;
      }
      if (min_detection >= 0 && detection < min_detection) {
        std::fprintf(stderr,
                     "m4gauntlet: %s detection %.3f below gate %.3f\n",
                     target.c_str(), detection, min_detection);
        if (status == 0) status = 1;
      }
      results.push_back(std::move(res));
    }

    if (json) {
      std::string out = "{\"schema\":\"meissa-gauntlet-v1\",\"targets\":[";
      for (size_t i = 0; i < results.size(); ++i) {
        if (i) out += ",";
        out += "{\"target\":\"" + results[i].name + "\"";
        out += ",\"manifest\":" + results[i].manifest;
        out += ",\"survival\":" + results[i].survival_json + "}";
      }
      out += "]}";
      std::printf("%s\n", out.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "m4gauntlet: %s\n", e.what());
    status = 2;
  }

  if (!trace_file.empty()) {
    obs::trace_stop();
    if (!obs::write_trace_file(trace_file)) {
      std::fprintf(stderr, "m4gauntlet: cannot write trace to '%s'\n",
                   trace_file.c_str());
      if (status == 0) status = 2;
    }
  }
  if (!metrics_file.empty() && !obs::write_metrics_file(metrics_file)) {
    std::fprintf(stderr, "m4gauntlet: cannot write metrics to '%s'\n",
                 metrics_file.c_str());
    if (status == 0) status = 2;
  }
  return status;
}
