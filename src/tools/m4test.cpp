// m4test — the Meissa tester CLI: generate test cases for a data plane,
// inject them into the behavioral device, check, and report.
//
//   m4test [options] FILE.m4      test an M4 unit (program + topology +
//                                 optional rules; intents not supported
//                                 from files yet)
//   m4test [options] --app NAME   test a built-in demo app
//                                 (router, mtag, acl, switchp4, gw-1..gw-4)
//   m4test [options] --bug N      run bug-corpus scenario N (1..16) with
//                                 its fault injected — expect failures
//
// Options:
//   --json            machine-readable report (TestReport::to_json)
//   --templates       generation only: print each template, skip the device
//   --threads N       worker threads for summary + DFS (0 = hardware)
//   --seed N          concretization seed (default 1)
//   --metrics FILE    enable the metrics registry; write snapshot to FILE
//   --trace FILE      enable span tracing; write Chrome trace JSON to FILE
//   --validate-summary  prove the code-summary transform sound before
//                     testing; a refuted obligation aborts the run (exit 2)
//
// Crash safety & supervision:
//   --checkpoint DIR  write work-unit checkpoints (summary wave boundaries
//                     + DFS frontier snapshots) into DIR; crash-atomic
//   --resume          load DIR's newest valid checkpoint first; a killed
//                     run resumed this way emits templates byte-identical
//                     to an uninterrupted run
//   --checkpoint-every N  DFS snapshot cadence in emitted results per
//                     shard (default 8)
//   --stall-timeout-ms N  watchdog: cancel a shard whose heartbeat stalls
//                     this long; it is re-queued once, then degraded
//   --shard-deadline-ms N watchdog: per-shard-attempt wall-clock deadline
//   --inject SPEC     arm a runtime fault (repeatable). SPEC is
//                     site:kind[:after[:param[:times]]] with kind one of
//                     stall|abort|alloc-fail|truncate|corrupt; sites:
//                     shard.<i> (execution), checkpoint.serialize,
//                     checkpoint.write (data). E.g. shard.3:abort,
//                     checkpoint.write:corrupt:2:5
//
// Exit status: 0 all cases passed, 1 failures/quarantines, 2 usage or error.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "driver/tester.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "p4/dsl.hpp"
#include "sim/toolchain.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"

namespace {

using namespace meissa;

int usage() {
  std::fprintf(stderr,
               "usage: m4test [options] (FILE.m4 | --app NAME | --bug N)\n"
               "  --app: router, mtag, acl, switchp4, gw-1, gw-2, gw-3, gw-4\n"
               "  --bug: bug-corpus scenario 1..%d\n"
               "  options: --json --templates --threads N --seed N\n"
               "           --metrics FILE --trace FILE --validate-summary\n"
               "           --checkpoint DIR --resume --checkpoint-every N\n"
               "           --stall-timeout-ms N --shard-deadline-ms N\n"
               "           --inject site:kind[:after[:param[:times]]]\n",
               apps::kNumBugs);
  return 2;
}

// Same demo configurations as m4lint (small, deterministic).
apps::AppBundle load_app(ir::Context& ctx, const std::string& name) {
  if (name == "router") return apps::make_router(ctx, 6);
  if (name == "mtag") return apps::make_mtag(ctx, 4);
  if (name == "acl") return apps::make_acl(ctx, 4, 4);
  if (name == "switchp4") {
    apps::SwitchP4Config cfg;
    cfg.l2_hosts = 4;
    cfg.routes = 4;
    cfg.ecmp_ways = 2;
    cfg.acls = 4;
    cfg.mpls_labels = 4;
    return apps::make_switchp4(ctx, cfg);
  }
  if (name.rfind("gw-", 0) == 0 && name.size() == 4 && name[3] >= '1' &&
      name[3] <= '4') {
    apps::GwConfig cfg;
    cfg.level = name[3] - '0';
    cfg.elastic_ips = 4;
    return apps::make_gateway(ctx, cfg);
  }
  throw util::ValidationError("unknown app '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool templates_only = false;
  bool validate_summary = false;
  int threads = 0;
  uint64_t seed = 1;
  std::string metrics_file;
  std::string trace_file;
  std::string app;
  int bug = 0;
  std::string file;
  std::string checkpoint_dir;
  bool resume = false;
  uint64_t checkpoint_every = 8;
  uint64_t stall_timeout_ms = 0;
  uint64_t shard_deadline_ms = 0;
  std::vector<std::string> inject_specs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--templates") {
      templates_only = true;
    } else if (arg == "--validate-summary") {
      validate_summary = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_file = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_file = argv[++i];
    } else if (arg == "--checkpoint" && i + 1 < argc) {
      checkpoint_dir = argv[++i];
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--checkpoint-every" && i + 1 < argc) {
      checkpoint_every = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--stall-timeout-ms" && i + 1 < argc) {
      stall_timeout_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--shard-deadline-ms" && i + 1 < argc) {
      shard_deadline_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--inject" && i + 1 < argc) {
      inject_specs.emplace_back(argv[++i]);
    } else if (arg == "--app" && i + 1 < argc) {
      app = argv[++i];
    } else if (arg == "--bug" && i + 1 < argc) {
      bug = std::atoi(argv[++i]);
      if (bug < 1 || bug > apps::kNumBugs) return usage();
    } else if (!arg.empty() && arg[0] != '-' && file.empty()) {
      file = arg;
    } else {
      return usage();
    }
  }
  if ((app.empty() ? 0 : 1) + (bug != 0 ? 1 : 0) + (file.empty() ? 0 : 1) !=
      1) {
    return usage();
  }
  if (resume && checkpoint_dir.empty()) {
    std::fprintf(stderr, "m4test: --resume requires --checkpoint DIR\n");
    return 2;
  }

  if (!metrics_file.empty()) obs::MetricsRegistry::set_enabled(true);
  if (!trace_file.empty()) obs::trace_start();

  int status = 0;
  try {
    ir::Context ctx;
    p4::DataPlane dp;
    p4::RuleSet rules;
    std::vector<spec::Intent> intents;
    sim::FaultSpec fault;
    if (!file.empty()) {
      std::ifstream in(file);
      if (!in) {
        std::fprintf(stderr, "m4test: cannot open '%s'\n", file.c_str());
        return 2;
      }
      std::ostringstream src;
      src << in.rdbuf();
      p4::ParsedUnit unit = p4::parse_m4(src.str(), ctx);
      dp = std::move(unit.dp);
      rules = std::move(unit.rules);
    } else if (!app.empty()) {
      apps::AppBundle b = load_app(ctx, app);
      dp = std::move(b.dp);
      rules = std::move(b.rules);
      intents = std::move(b.intents);
    } else {
      apps::BugScenario s = apps::make_bug(ctx, bug);
      dp = std::move(s.bundle.dp);
      rules = std::move(s.bundle.rules);
      intents = std::move(s.bundle.intents);
      fault = s.fault;
    }

    driver::TestRunOptions opts;
    opts.gen.threads = threads;
    opts.gen.validate_summary = validate_summary;
    opts.seed = seed;
    opts.gen.checkpoint_dir = checkpoint_dir;
    opts.gen.resume = resume;
    opts.gen.checkpoint_every = checkpoint_every;
    opts.gen.supervise.stall_timeout_ms = stall_timeout_ms;
    opts.gen.supervise.deadline_ms = shard_deadline_ms;
    util::FaultInjector injector;
    for (const std::string& spec : inject_specs) {
      injector.add(util::parse_fault_spec(spec));
    }
    if (!inject_specs.empty()) opts.gen.fault = &injector;

    if (templates_only) {
      driver::Meissa meissa(ctx, dp, rules, opts);
      std::vector<sym::TestCaseTemplate> ts = meissa.generate();
      std::printf("%zu template(s)\n", ts.size());
      for (const sym::TestCaseTemplate& t : ts) {
        std::fputs(sym::describe(t, ctx, meissa.graph()).c_str(), stdout);
      }
    } else {
      sim::DeviceProgram compiled = sim::compile(dp, rules, ctx, fault);
      sim::Device device(compiled, ctx);
      driver::Meissa meissa(ctx, dp, rules, opts);
      driver::TestReport r = meissa.test(device, intents);
      if (json) {
        std::printf("%s\n", r.to_json().c_str());
      } else {
        std::fputs(r.str().c_str(), stdout);
      }
      if (!r.all_passed()) status = 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "m4test: %s\n", e.what());
    status = 2;
  }

  if (!trace_file.empty()) {
    obs::trace_stop();
    if (!obs::write_trace_file(trace_file)) {
      std::fprintf(stderr, "m4test: cannot write trace to '%s'\n",
                   trace_file.c_str());
      if (status == 0) status = 2;
    }
  }
  if (!metrics_file.empty() && !obs::write_metrics_file(metrics_file)) {
    std::fprintf(stderr, "m4test: cannot write metrics to '%s'\n",
                 metrics_file.c_str());
    if (status == 0) status = 2;
  }
  return status;
}
