// m4fuzz — the greybox fuzzing lane CLI: coverage-guided differential
// fuzzing of a compiled data plane over the batched execution core.
//
//   m4fuzz [options] --app NAME   fuzz a demo app against an identically
//                                 compiled reference (a determinism check:
//                                 divergences here mean simulator bugs)
//   m4fuzz [options] --bug N      fuzz bug-corpus scenario N (1..16): the
//                                 faulty compile runs against the intended
//                                 program — divergences are the bug
//
// Options:
//   --execs N            target executions (default 20000)
//   --seed N             RNG seed (default 1; same seed = same run)
//   --batch N            inputs per run_batch submission (default 64)
//   --json               machine-readable result (FuzzResult::to_json)
//   --no-template-seeds  skip Meissa path-template corpus seeding and
//                        start from synthesized random packets
//   --expect-divergence  exit 1 when no divergence was found
//   --metrics FILE       enable the metrics registry; snapshot to FILE
//   --trace FILE         enable span tracing; Chrome trace JSON to FILE
//
// Exit status: 0 ok, 1 expectation failed, 2 usage or error.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/apps.hpp"
#include "driver/sender.hpp"
#include "driver/tester.hpp"
#include "fuzz/fuzz.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/toolchain.hpp"
#include "util/error.hpp"

namespace {

using namespace meissa;

constexpr size_t kMaxTemplateSeeds = 256;

int usage() {
  std::fprintf(stderr,
               "usage: m4fuzz [options] (--app NAME | --bug N)\n"
               "  --app: router, mtag, acl, switchp4, gw-1, gw-2, gw-3, gw-4\n"
               "  --bug: bug-corpus scenario 1..%d\n"
               "  options: --execs N --seed N --batch N --json\n"
               "           --no-template-seeds --expect-divergence\n"
               "           --metrics FILE --trace FILE\n",
               apps::kNumBugs);
  return 2;
}

// Same demo configurations as m4test (small, deterministic).
apps::AppBundle load_app(ir::Context& ctx, const std::string& name) {
  if (name == "router") return apps::make_router(ctx, 6);
  if (name == "mtag") return apps::make_mtag(ctx, 4);
  if (name == "acl") return apps::make_acl(ctx, 4, 4);
  if (name == "switchp4") {
    apps::SwitchP4Config cfg;
    cfg.l2_hosts = 4;
    cfg.routes = 4;
    cfg.ecmp_ways = 2;
    cfg.acls = 4;
    cfg.mpls_labels = 4;
    return apps::make_switchp4(ctx, cfg);
  }
  if (name.rfind("gw-", 0) == 0 && name.size() == 4 && name[3] >= '1' &&
      name[3] <= '4') {
    apps::GwConfig cfg;
    cfg.level = name[3] - '0';
    cfg.elastic_ips = 4;
    return apps::make_gateway(ctx, cfg);
  }
  throw util::ValidationError("unknown app '" + name + "'");
}

// Seeds the corpus from Meissa's own path templates (the two lanes
// compose: symbolic enumeration contributes structurally-deep inputs the
// random walk may take long to find, mutation explores around them).
void seed_from_templates(fuzz::Fuzzer& fuzzer, ir::Context& ctx,
                         const p4::DataPlane& dp, const p4::RuleSet& rules,
                         uint64_t seed) {
  driver::TestRunOptions opts;
  opts.seed = seed;
  driver::Meissa meissa(ctx, dp, rules, opts);
  std::vector<sym::TestCaseTemplate> templates = meissa.generate();
  driver::Sender sender(ctx, dp, meissa.graph(), seed);
  size_t added = 0;
  for (const sym::TestCaseTemplate& t : templates) {
    if (added >= kMaxTemplateSeeds) break;
    std::optional<driver::TestCase> tc =
        sender.concretize(t, meissa.generator().engine());
    if (!tc) continue;
    fuzzer.add_seed(std::move(tc->input), tc->registers);
    ++added;
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool template_seeds = true;
  bool expect_divergence = false;
  fuzz::FuzzOptions fopts;
  std::string metrics_file;
  std::string trace_file;
  std::string app;
  int bug = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--no-template-seeds") {
      template_seeds = false;
    } else if (arg == "--expect-divergence") {
      expect_divergence = true;
    } else if (arg == "--execs" && i + 1 < argc) {
      fopts.execs = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--seed" && i + 1 < argc) {
      fopts.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--batch" && i + 1 < argc) {
      fopts.batch = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_file = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_file = argv[++i];
    } else if (arg == "--app" && i + 1 < argc) {
      app = argv[++i];
    } else if (arg == "--bug" && i + 1 < argc) {
      bug = std::atoi(argv[++i]);
      if (bug < 1 || bug > apps::kNumBugs) return usage();
    } else {
      return usage();
    }
  }
  if ((app.empty() ? 0 : 1) + (bug != 0 ? 1 : 0) != 1) return usage();

  if (!metrics_file.empty()) obs::MetricsRegistry::set_enabled(true);
  if (!trace_file.empty()) obs::trace_start();

  int status = 0;
  try {
    ir::Context ctx;
    p4::DataPlane dp;
    p4::RuleSet rules;
    sim::FaultSpec fault;
    p4::DataPlane ref_dp;
    p4::RuleSet ref_rules;
    if (!app.empty()) {
      apps::AppBundle b = load_app(ctx, app);
      dp = std::move(b.dp);
      rules = std::move(b.rules);
      ref_dp = dp;
      ref_rules = rules;
    } else {
      apps::BugScenario s = apps::make_bug(ctx, bug);
      dp = std::move(s.bundle.dp);
      rules = std::move(s.bundle.rules);
      fault = s.fault;
      apps::AppBundle intended = apps::make_bug_intended(ctx, bug);
      ref_dp = std::move(intended.dp);
      ref_rules = std::move(intended.rules);
    }

    sim::Device target(sim::compile(dp, rules, ctx, fault), ctx);
    sim::Device reference(sim::compile(ref_dp, ref_rules, ctx), ctx);
    fuzz::Fuzzer fuzzer(target, reference, dp, rules, fopts);
    if (template_seeds) {
      seed_from_templates(fuzzer, ctx, dp, rules, fopts.seed);
    }

    fuzz::FuzzResult r = fuzzer.run();
    if (json) {
      std::printf("%s\n", r.to_json().c_str());
    } else {
      std::printf(
          "execs %llu  seeds %zu  corpus %zu  edges %zu  "
          "divergences %llu  (%.0f execs/s)\n",
          static_cast<unsigned long long>(r.execs), r.seeds, r.corpus,
          r.coverage_edges, static_cast<unsigned long long>(r.divergences),
          r.execs_per_sec);
      for (const fuzz::Divergence& d : r.samples) {
        std::printf("  divergence @%llu [%s] port=%llu len=%zu\n",
                    static_cast<unsigned long long>(d.exec), d.kind.c_str(),
                    static_cast<unsigned long long>(d.input.port),
                    d.input.bytes.size());
      }
    }
    if (expect_divergence && !r.found()) status = 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "m4fuzz: %s\n", e.what());
    status = 2;
  }

  if (!trace_file.empty()) {
    obs::trace_stop();
    if (!obs::write_trace_file(trace_file)) {
      std::fprintf(stderr, "m4fuzz: cannot write trace to '%s'\n",
                   trace_file.c_str());
      if (status == 0) status = 2;
    }
  }
  if (!metrics_file.empty() && !obs::write_metrics_file(metrics_file)) {
    std::fprintf(stderr, "m4fuzz: cannot write metrics to '%s'\n",
                 metrics_file.c_str());
    if (status == 0) status = 2;
  }
  return status;
}
