#include "cfg/cfg.hpp"

#include <unordered_set>

#include "util/error.hpp"

namespace meissa::cfg {

namespace {

util::BigCount count_from(const Cfg& g, NodeId from, NodeId stop,
                          std::unordered_map<NodeId, util::BigCount>& memo) {
  if (from == stop || g.node(from).succ.empty()) return util::BigCount::one();
  auto it = memo.find(from);
  if (it != memo.end()) return it->second;
  util::BigCount total = util::BigCount::zero();
  for (NodeId s : g.node(from).succ) {
    total += count_from(g, s, stop, memo);
  }
  memo.emplace(from, total);
  return total;
}

}  // namespace

util::BigCount Cfg::count_paths(NodeId from) const {
  if (from == kNoNode) from = entry_;
  std::unordered_map<NodeId, util::BigCount> memo;
  return count_from(*this, from, kNoNode, memo);
}

util::BigCount Cfg::count_instance_paths(int instance) const {
  const InstanceInfo& info = instances_.at(static_cast<size_t>(instance));
  std::unordered_map<NodeId, util::BigCount> memo;
  return count_from(*this, info.entry, info.exit, memo);
}

void Cfg::check_well_formed() const {
  util::check(entry_ != kNoNode && entry_ < nodes_.size(), "cfg: bad entry");
  for (const Node& n : nodes_) {
    for (NodeId s : n.succ) {
      util::check(s < nodes_.size(), "cfg: successor out of range");
    }
    if (n.succ.empty()) {
      util::check(n.exit != ExitKind::kNone, "cfg: unmarked terminal node");
    }
  }
  // Acyclicity via iterative coloring.
  enum : uint8_t { kWhite, kGray, kBlack };
  std::vector<uint8_t> color(nodes_.size(), kWhite);
  std::vector<std::pair<NodeId, size_t>> stack;
  stack.emplace_back(entry_, 0);
  color[entry_] = kGray;
  while (!stack.empty()) {
    auto& [id, next] = stack.back();
    if (next < nodes_[id].succ.size()) {
      NodeId s = nodes_[id].succ[next++];
      util::check(color[s] != kGray, "cfg: cycle detected");
      if (color[s] == kWhite) {
        color[s] = kGray;
        stack.emplace_back(s, 0);
      }
    } else {
      color[id] = kBlack;
      stack.pop_back();
    }
  }
  for (const InstanceInfo& i : instances_) {
    util::check(i.entry < nodes_.size() && i.exit < nodes_.size(),
                "cfg: instance span out of range");
  }
}

std::vector<Path> enumerate_paths(const Cfg& g, size_t limit) {
  std::vector<Path> out;
  Path cur;
  auto dfs = [&](auto&& self, NodeId id) -> void {
    cur.push_back(id);
    if (g.node(id).succ.empty()) {
      if (out.size() >= limit) {
        throw util::InternalError("enumerate_paths: limit exceeded");
      }
      out.push_back(cur);
    } else {
      for (NodeId s : g.node(id).succ) self(self, s);
    }
    cur.pop_back();
  };
  dfs(dfs, g.entry());
  return out;
}

}  // namespace meissa::cfg
