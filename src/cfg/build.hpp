// CFG construction: encodes a DataPlane (program + topology) and a table
// rule set into the testing CFG (paper §3.1 and §4: "Meissa parses the
// specification, code and table entry sets of each pipeline, encodes them
// into a directed acyclic control flow graph").
#pragma once

#include "cfg/cfg.hpp"
#include "p4/rules.hpp"

namespace meissa::cfg {

struct BuildOptions {
  enum class TableMode {
    // One branch per installed rule plus the miss/default (Meissa's mode).
    kRules,
    // One branch per *declared action* with symbolic (unbound) action
    // parameters, plus the default — p4pktgen's action-coverage mode,
    // which synthesizes entries instead of reading the installed rules.
    kActionCover,
  };
  TableMode table_mode = TableMode::kRules;
  // The standard table encoding accumulates the negation of every higher-
  // priority entry on each branch (what p4pktgen and the paper's frontend
  // emit; set false for paper-faithful comparisons). By default this
  // implementation elides negations of entries that provably cannot
  // overlap the branch's own match — sound, and ablated in
  // bench/micro_smt.
  bool elide_disjoint_negations = true;
};

// Builds the CFG for `dp` under `rules`. All expressions are interned into
// `ctx`; per-instance validity fields ("hdr.h.$valid@inst") are created on
// demand. The result is acyclic and instance subgraphs are single-entry
// single-exit, as the code-summary pass requires.
Cfg build_cfg(const p4::DataPlane& dp, const p4::RuleSet& rules,
              ir::Context& ctx, const BuildOptions& opts = {});

}  // namespace meissa::cfg
