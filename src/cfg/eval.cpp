// Concrete execution along a CFG path — the evaluation relation of paper
// Fig. 4. Used by tests as the ground-truth oracle for path validity and
// by the bug-localization tracer.
#include "cfg/cfg.hpp"

namespace meissa::cfg {

std::optional<ir::ConcreteState> eval_path(const Cfg& g, const Path& path,
                                           ir::ConcreteState state,
                                           const ir::Context& ctx) {
  for (NodeId id : path) {
    const Node& n = g.node(id);
    if (n.is_hash) {
      std::vector<uint64_t> keys;
      std::vector<int> widths;
      if (!n.hash.key_exprs.empty()) {
        // Summarized hash: keys are expressions over entry snapshots.
        for (ir::ExprRef e : n.hash.key_exprs) {
          auto v = ir::eval(e, state);
          if (!v) return std::nullopt;  // unbound read
          keys.push_back(*v);
          widths.push_back(e->width);
        }
      } else {
        keys.reserve(n.hash.keys.size());
        for (ir::FieldId k : n.hash.keys) {
          auto it = state.find(k);
          if (it == state.end()) return std::nullopt;  // unbound read
          keys.push_back(it->second);
          widths.push_back(ctx.fields.width(k));
        }
      }
      state[n.hash.dest] = p4::compute_hash(n.hash.algo, keys, widths,
                                            ctx.fields.width(n.hash.dest));
      continue;
    }
    switch (n.stmt.kind) {
      case ir::StmtKind::kNop:
        break;
      case ir::StmtKind::kAssign: {
        auto v = ir::eval(n.stmt.expr, state);
        if (!v) return std::nullopt;
        state[n.stmt.target] = *v;
        break;
      }
      case ir::StmtKind::kAssume: {
        auto v = ir::eval(n.stmt.expr, state);
        // A false (or undecidable) predicate has no evaluation rule: the
        // state does not drive this path.
        if (!v || *v == 0) return std::nullopt;
        break;
      }
    }
  }
  return state;
}

}  // namespace meissa::cfg
