#include "cfg/build.hpp"

#include <unordered_map>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace meissa::cfg {

namespace {

using p4::ActionDef;
using p4::ActionOp;
using p4::ControlBlock;
using p4::ControlStmt;
using p4::ParserState;
using p4::ParserTransition;
using p4::PipelineDef;
using p4::TableDef;
using p4::TableEntry;

// A linear chain of nodes under construction.
struct Chain {
  NodeId head = kNoNode;
  NodeId tail = kNoNode;
};

class Builder {
 public:
  Builder(const p4::DataPlane& dp, const p4::RuleSet& rules, ir::Context& ctx,
          const BuildOptions& opts)
      : dp_(dp), rules_(rules), ctx_(ctx), opts_(opts) {}

  Cfg build();

 private:
  // ---- small helpers -----------------------------------------------------

  // All node creators tag the node with the instance being built
  // (inst_index_ is -1 while building glue).
  NodeId nop() { return tag(g_.add(ir::Stmt::nop())); }
  NodeId tag(NodeId n) {
    g_.node(n).instance = inst_index_;
    return n;
  }

  void append(Chain& c, NodeId n) {
    if (c.head == kNoNode) {
      c.head = c.tail = n;
    } else {
      g_.link(c.tail, n);
      c.tail = n;
    }
  }
  void append_stmt(Chain& c, ir::Stmt s) {
    append(c, tag(g_.add(std::move(s))));
  }
  void append_labeled(Chain& c, ir::Stmt s, const std::string& label) {
    append_stmt(c, std::move(s));
    g_.set_label(c.tail, label);
  }

  ir::FieldId fid(std::string_view name) {
    std::optional<int> w = dp_.program.field_width(name);
    util::check(w.has_value(), "builder: unknown field");
    return ctx_.fields.intern(name, *w);
  }

  ir::FieldId valid_fid(const InstanceInfo& inst, std::string_view header) {
    return inst.validity.at(std::string(header));
  }

  // Rewrites placeholder validity fields ("hdr.h.$valid") to this
  // instance's copies. Content/metadata/register fields pass through.
  ir::ExprRef localize(ir::ExprRef e, const InstanceInfo& inst) {
    if (e == nullptr) return nullptr;
    return ir::substitute(e, ctx_.arena, [&](ir::FieldId f, int w) -> ir::ExprRef {
      const std::string& name = ctx_.fields.name(f);
      if (util::ends_with(name, ".$valid")) {
        // name = "hdr.<h>.$valid"
        std::string h(name.substr(4, name.size() - 4 - 7));
        return ctx_.arena.field(valid_fid(inst, h), w);
      }
      return nullptr;
    });
  }

  // Substitutes action parameters with the entry's constant arguments and
  // localizes validity placeholders.
  ir::ExprRef bind_args(ir::ExprRef e, const InstanceInfo& inst,
                        const ActionDef& action,
                        const std::vector<uint64_t>& args) {
    if (e == nullptr) return nullptr;
    return ir::substitute(e, ctx_.arena, [&](ir::FieldId f, int w) -> ir::ExprRef {
      const std::string& name = ctx_.fields.name(f);
      std::string prefix = "$arg." + action.name + ".";
      if (util::starts_with(name, prefix)) {
        std::string pname(name.substr(prefix.size()));
        for (size_t i = 0; i < action.params.size(); ++i) {
          if (action.params[i].name == pname) {
            return ctx_.arena.constant(args.at(i), w);
          }
        }
        throw util::InternalError("bind_args: unknown parameter");
      }
      if (util::ends_with(name, ".$valid")) {
        std::string h(name.substr(4, name.size() - 4 - 7));
        return ctx_.arena.field(valid_fid(inst, h), w);
      }
      return nullptr;
    });
  }

  ir::ExprRef localized_var(std::string_view name, const InstanceInfo& inst) {
    ir::FieldId f = fid(name);
    return localize(ctx_.arena.field(f, ctx_.fields.width(f)), inst);
  }

  // ---- program pieces ----------------------------------------------------

  void expand_action_body(Chain& c, const InstanceInfo& inst,
                          const ActionDef& action,
                          const std::vector<uint64_t>& args) {
    for (size_t i = 0; i < action.ops.size(); ++i) {
      expand_op(c, inst, action.ops[i], &action, &args);
      g_.set_origin(c.tail, OriginKind::kActionOp, action.name,
                    static_cast<int32_t>(i));
    }
  }

  // Action body with *symbolic* parameters (action-cover mode): parameter
  // fields are left free, modeling "some entry with some arguments".
  void expand_action_body_symbolic(Chain& c, const InstanceInfo& inst,
                                   const ActionDef& action) {
    for (size_t i = 0; i < action.ops.size(); ++i) {
      expand_op(c, inst, action.ops[i], nullptr, nullptr);
      g_.set_origin(c.tail, OriginKind::kActionOp, action.name,
                    static_cast<int32_t>(i));
    }
  }

  void expand_op(Chain& c, const InstanceInfo& inst, const ActionOp& op,
                 const ActionDef* action, const std::vector<uint64_t>* args) {
    switch (op.kind) {
      case ActionOp::Kind::kAssign: {
        ir::ExprRef v = action != nullptr ? bind_args(op.value, inst, *action, *args)
                                          : localize(op.value, inst);
        append_stmt(c, ir::Stmt::assign(fid(op.dest), v));
        break;
      }
      case ActionOp::Kind::kSetValid:
        append_stmt(c, ir::Stmt::assign(valid_fid(inst, op.header),
                                        ctx_.arena.constant(1, 1)));
        break;
      case ActionOp::Kind::kSetInvalid:
        append_stmt(c, ir::Stmt::assign(valid_fid(inst, op.header),
                                        ctx_.arena.constant(0, 1)));
        break;
      case ActionOp::Kind::kHash: {
        HashStmt h;
        h.dest = fid(op.dest);
        h.algo = op.algo;
        for (const std::string& k : op.hash_keys) h.keys.push_back(fid(k));
        append(c, tag(g_.add_hash(std::move(h))));
        break;
      }
    }
  }

  // Expands one table application; returns a single-entry single-exit pair.
  Chain expand_table(const TableDef& table, const InstanceInfo& inst) {
    Chain outer;
    NodeId head = nop();
    NodeId tail = nop();
    outer.head = head;
    outer.tail = tail;

    if (opts_.table_mode == BuildOptions::TableMode::kActionCover) {
      // One branch per declared action (entry synthesized, args free),
      // plus the default-action (miss) branch.
      for (const std::string& aname : table.actions) {
        Chain b;
        append(b, nop());
        g_.set_label(b.head, inst.name + ": table " + table.name +
                                 " action " + aname);
        const ActionDef* a = dp_.program.find_action(aname);
        expand_action_body_symbolic(b, inst, *a);
        g_.link(head, b.head);
        g_.link(b.tail, tail);
      }
      Chain miss;
      append(miss, nop());
      g_.set_label(miss.head, inst.name + ": table " + table.name + " miss (" +
                                  table.default_action + ")");
      const ActionDef* da = dp_.program.find_action(table.default_action);
      expand_action_body(miss, inst, *da, table.default_args);
      g_.link(head, miss.head);
      g_.link(miss.tail, tail);
      return outer;
    }

    std::vector<const TableEntry*> entries = rules_.ordered_entries(table);
    std::vector<ir::ExprRef> match_preds;
    auto lookup = [&](std::string_view f) { return localized_var(f, inst); };
    for (const TableEntry* e : entries) {
      match_preds.push_back(
          p4::entry_predicate(ctx_, dp_.program, table, *e, lookup));
    }

    // One branch per entry: negations of overlapping higher-priority
    // entries, the entry's own match, then its action body.
    for (size_t i = 0; i < entries.size(); ++i) {
      Chain b;
      for (size_t j = 0; j < i; ++j) {
        if (!opts_.elide_disjoint_negations ||
            p4::may_overlap(table, *entries[j], *entries[i])) {
          append_stmt(b, ir::Stmt::assume(ctx_.arena.bnot(match_preds[j])));
        }
      }
      append_labeled(b, ir::Stmt::assume(match_preds[i]),
                     inst.name + ": table " + table.name + " entry #" +
                         std::to_string(i) + " (" + entries[i]->action + ")");
      g_.set_origin(b.tail, OriginKind::kTableEntry, table.name,
                    static_cast<int32_t>(i));
      const ActionDef* a = dp_.program.find_action(entries[i]->action);
      expand_action_body(b, inst, *a, entries[i]->args);
      g_.link(head, b.head);
      g_.link(b.tail, tail);
    }

    // Miss branch: no entry matched; run the default action.
    std::string def_action = table.default_action;
    std::vector<uint64_t> def_args = table.default_args;
    auto it = rules_.default_overrides.find(table.name);
    if (it != rules_.default_overrides.end()) {
      def_action = it->second.action;
      def_args = it->second.args;
    }
    Chain miss;
    for (size_t j = 0; j < entries.size(); ++j) {
      append_stmt(miss, ir::Stmt::assume(ctx_.arena.bnot(match_preds[j])));
    }
    const ActionDef* da = dp_.program.find_action(def_action);
    expand_action_body(miss, inst, *da, def_args);
    if (miss.head == kNoNode) append(miss, nop());
    g_.set_label(miss.head, inst.name + ": table " + table.name + " miss (" +
                                def_action + ")");
    if (g_.origin(miss.head).kind == OriginKind::kNone) {
      g_.set_origin(miss.head, OriginKind::kTableMiss, table.name, -1);
    }
    g_.link(head, miss.head);
    g_.link(miss.tail, tail);
    return outer;
  }

  Chain expand_control(const ControlBlock& block, const InstanceInfo& inst) {
    Chain c;
    for (const ControlStmt& s : block.stmts) {
      switch (s.kind) {
        case ControlStmt::Kind::kApply: {
          Chain t = expand_table(*dp_.program.find_table(s.table), inst);
          if (c.head == kNoNode) {
            c = t;
          } else {
            g_.link(c.tail, t.head);
            c.tail = t.tail;
          }
          break;
        }
        case ControlStmt::Kind::kIf: {
          ir::ExprRef cond = localize(s.cond, inst);
          const int32_t if_ord = if_count_++;
          const std::string where =
              inst.name + ": if #" + std::to_string(if_ord);
          NodeId fork = nop();
          NodeId join = nop();
          Chain then_c;
          append_labeled(then_c, ir::Stmt::assume(cond), where + " then");
          g_.set_origin(then_c.head, OriginKind::kIfGuard, inst.pipeline,
                        if_ord, 0);
          Chain then_body = expand_control(s.then_block, inst);
          if (then_body.head != kNoNode) {
            g_.link(then_c.tail, then_body.head);
            then_c.tail = then_body.tail;
          }
          Chain else_c;
          append_labeled(else_c, ir::Stmt::assume(ctx_.arena.bnot(cond)),
                         where + " else");
          g_.set_origin(else_c.head, OriginKind::kIfGuard, inst.pipeline,
                        if_ord, 1);
          Chain else_body = expand_control(s.else_block, inst);
          if (else_body.head != kNoNode) {
            g_.link(else_c.tail, else_body.head);
            else_c.tail = else_body.tail;
          }
          g_.link(fork, then_c.head);
          g_.link(fork, else_c.head);
          g_.link(then_c.tail, join);
          g_.link(else_c.tail, join);
          append(c, fork);
          c.tail = join;
          break;
        }
        case ControlStmt::Kind::kOp: {
          Chain oc;
          expand_op(oc, inst, s.op, nullptr, nullptr);
          if (c.head == kNoNode) {
            c = oc;
          } else {
            g_.link(c.tail, oc.head);
            c.tail = oc.tail;
          }
          break;
        }
      }
    }
    return c;
  }

  // Expands a parser state as a tree; every accept leaf links to `accept`,
  // every reject sets the drop flag and links to `exit_to` (the instance
  // exit) so the subgraph stays single-exit.
  NodeId expand_parser_state(const p4::Parser& parser, const std::string& name,
                             const InstanceInfo& inst, NodeId accept,
                             NodeId reject) {
    if (name == "accept") return accept;
    if (name == "reject") return reject;
    const ParserState* s = parser.find_state(name);
    Chain c;
    append(c, nop());
    g_.set_label(c.head, inst.name + ": parser state " + name);
    g_.set_origin(c.head, OriginKind::kParserState, name);
    for (const std::string& h : s->extracts) {
      append_stmt(c, ir::Stmt::assign(valid_fid(inst, h),
                                      ctx_.arena.constant(1, 1)));
    }
    if (s->select_field.empty()) {
      NodeId next =
          expand_parser_state(parser, s->default_next, inst, accept, reject);
      g_.link(c.tail, next);
      return c.head;
    }
    ir::ExprRef sel = localized_var(s->select_field, inst);
    NodeId fork = nop();
    g_.link(c.tail, fork);
    std::vector<ir::ExprRef> case_preds;
    for (const ParserTransition& t : s->cases) {
      case_preds.push_back(ctx_.arena.masked_eq(sel, t.mask, t.value & t.mask));
    }
    for (size_t i = 0; i < s->cases.size(); ++i) {
      Chain b;
      for (size_t j = 0; j < i; ++j) {
        // First matching case wins; negate overlapping earlier cases.
        uint64_t both = s->cases[i].mask & s->cases[j].mask;
        bool overlap = ((s->cases[i].value ^ s->cases[j].value) & both) == 0;
        if (overlap) {
          append_stmt(b, ir::Stmt::assume(ctx_.arena.bnot(case_preds[j])));
        }
      }
      append_labeled(b, ir::Stmt::assume(case_preds[i]),
                     inst.name + ": parser state " + name + " case -> " +
                         s->cases[i].next);
      g_.set_origin(b.tail, OriginKind::kParserCase, name,
                    static_cast<int32_t>(i));
      NodeId next = expand_parser_state(parser, s->cases[i].next, inst, accept,
                                        reject);
      g_.link(b.tail, next);
      g_.link(fork, b.head);
    }
    Chain d;
    for (size_t j = 0; j < s->cases.size(); ++j) {
      append_stmt(d, ir::Stmt::assume(ctx_.arena.bnot(case_preds[j])));
    }
    if (d.head == kNoNode) append(d, nop());
    g_.set_label(d.head, inst.name + ": parser state " + name +
                             " default -> " + s->default_next);
    g_.set_origin(d.head, OriginKind::kParserDefault, name, -1);
    NodeId next =
        expand_parser_state(parser, s->default_next, inst, accept, reject);
    g_.link(d.tail, next);
    g_.link(fork, d.head);
    return c.head;
  }

  // Builds one instance subgraph; fills the InstanceInfo entry/exit.
  void build_instance(InstanceInfo& inst) {
    const PipelineDef& def = *dp_.program.find_pipeline(inst.pipeline);
    if_count_ = 0;
    NodeId entry = nop();
    NodeId exit = nop();
    inst.entry = entry;
    inst.exit = exit;
    g_.set_label(entry, inst.name + ": entry");
    g_.set_label(exit, inst.name + ": exit");

    // Reset this instance's view of header validity, then parse.
    Chain init;
    append(init, entry);
    for (const p4::HeaderDef& h : dp_.program.headers) {
      append_stmt(init, ir::Stmt::assign(valid_fid(inst, h.name),
                                         ctx_.arena.constant(0, 1)));
    }

    // Parser reject: set the drop flag and bypass the pipeline body.
    Chain reject;
    append_stmt(reject, ir::Stmt::assign(fid(p4::kDropFlag),
                                         ctx_.arena.constant(1, 1)));
    g_.link(reject.tail, exit);

    NodeId accept = nop();
    NodeId parse_head = expand_parser_state(def.parser, def.parser.start, inst,
                                            accept, reject.head);
    g_.link(init.tail, parse_head);

    Chain body = expand_control(def.control, inst);
    NodeId after_control;
    if (body.head != kNoNode) {
      g_.link(accept, body.head);
      after_control = body.tail;
    } else {
      after_control = accept;
    }

    // Deparser checksum updates, each guarded by its header's validity.
    NodeId cur = after_control;
    int32_t cksum_idx = 0;
    for (const p4::ChecksumUpdate& u : def.deparser.checksum_updates) {
      NodeId fork = nop();
      NodeId join = nop();
      g_.link(cur, fork);
      ir::ExprRef valid = ctx_.arena.cmp(
          ir::CmpOp::kEq,
          ctx_.arena.field(valid_fid(inst, u.guard_header), 1),
          ctx_.arena.constant(1, 1));
      Chain yes;
      append_labeled(yes, ir::Stmt::assume(valid),
                     inst.name + ": deparser checksum " + u.dest + " (" +
                         u.guard_header + " valid)");
      g_.set_origin(yes.head, OriginKind::kChecksum, u.dest, cksum_idx, 0);
      HashStmt h;
      h.dest = fid(u.dest);
      h.algo = u.algo;
      for (const std::string& s : u.sources) h.keys.push_back(fid(s));
      append(yes, tag(g_.add_hash(std::move(h))));
      Chain no;
      append_labeled(no, ir::Stmt::assume(ctx_.arena.bnot(valid)),
                     inst.name + ": deparser checksum " + u.dest + " (" +
                         u.guard_header + " invalid)");
      g_.set_origin(no.head, OriginKind::kChecksum, u.dest, cksum_idx, 1);
      ++cksum_idx;
      g_.link(fork, yes.head);
      g_.link(fork, no.head);
      g_.link(yes.tail, join);
      g_.link(no.tail, join);
      cur = join;
    }
    g_.link(cur, exit);
  }

  const p4::DataPlane& dp_;
  const p4::RuleSet& rules_;
  ir::Context& ctx_;
  BuildOptions opts_;
  Cfg g_;
  int inst_index_ = -1;
  int if_count_ = 0;
};

Cfg Builder::build() {
  p4::validate(dp_, ctx_);
  p4::validate_rules(dp_.program, rules_);

  // Instance metadata first (validity fields for every header x instance).
  std::vector<std::string> order = dp_.topology.topo_order();
  std::unordered_map<std::string, int> index_of;
  for (const std::string& name : order) {
    const p4::PipeInstance* pi = dp_.topology.find_instance(name);
    const PipelineDef* def = dp_.program.find_pipeline(pi->pipeline);
    InstanceInfo info;
    info.name = name;
    info.pipeline = pi->pipeline;
    info.switch_id = pi->switch_id;
    info.emit_order = def->deparser.emit_order;
    for (const p4::HeaderDef& h : dp_.program.headers) {
      info.validity.emplace(
          h.name, ctx_.fields.intern(p4::validity_field_at(h.name, name), 1));
    }
    index_of.emplace(name, static_cast<int>(g_.instances().size()));
    g_.instances().push_back(std::move(info));
  }

  // Build each instance subgraph.
  for (const std::string& name : order) {
    inst_index_ = index_of[name];
    build_instance(g_.instances()[static_cast<size_t>(inst_index_)]);
  }
  inst_index_ = -1;

  // Program entry: zero metadata and intrinsics, then fan out to entries.
  Chain init;
  append(init, nop());
  for (const p4::FieldDef& m : dp_.program.metadata) {
    append_stmt(init, ir::Stmt::assign(fid(m.name),
                                       ctx_.arena.constant(0, m.width)));
    if (m.telemetry) g_.telemetry().push_back(m.name);
  }
  append_stmt(init, ir::Stmt::assign(fid(p4::kDropFlag),
                                     ctx_.arena.constant(0, 1)));
  append_stmt(init, ir::Stmt::assign(fid(p4::kEgressSpec),
                                     ctx_.arena.constant(0, p4::kPortWidth)));
  g_.set_entry(init.head);

  for (const p4::EntryPoint& e : dp_.topology.entries) {
    NodeId target = g_.instances()[static_cast<size_t>(index_of[e.instance])].entry;
    if (e.guard == nullptr) {
      g_.link(init.tail, target);
    } else {
      NodeId guard = g_.add(ir::Stmt::assume(e.guard));
      g_.link(init.tail, guard);
      g_.link(guard, target);
    }
  }

  // Routing glue after each instance exit.
  for (const std::string& name : order) {
    const InstanceInfo& info = g_.instances()[static_cast<size_t>(index_of[name])];
    NodeId exit = info.exit;

    // Drop check.
    NodeId drop_term = g_.add(ir::Stmt::assume(ctx_.arena.cmp(
        ir::CmpOp::kEq, ctx_.arena.field(fid(p4::kDropFlag), 1),
        ctx_.arena.constant(1, 1))));
    g_.node(drop_term).exit = ExitKind::kDrop;
    g_.set_label(drop_term, name + ": dropped");
    g_.link(exit, drop_term);

    NodeId alive = g_.add(ir::Stmt::assume(ctx_.arena.cmp(
        ir::CmpOp::kEq, ctx_.arena.field(fid(p4::kDropFlag), 1),
        ctx_.arena.constant(0, 1))));
    g_.set_label(alive, name + ": forwarded");
    g_.link(exit, alive);

    std::vector<const p4::TopoEdge*> outs = dp_.topology.edges_from(name);
    NodeId cur = alive;  // node whose "no earlier edge matched" branch hangs
    std::vector<ir::ExprRef> guards;
    bool unconditional = false;
    int32_t edge_idx = -1;
    for (const p4::TopoEdge* e : outs) {
      ++edge_idx;
      NodeId target = g_.instances()[static_cast<size_t>(index_of[e->to])].entry;
      if (e->guard == nullptr) {
        g_.link(cur, target);
        unconditional = true;
        break;
      }
      NodeId take = g_.add(ir::Stmt::assume(e->guard));
      g_.set_label(take, name + ": link to " + e->to);
      g_.set_origin(take, OriginKind::kTopoGuard, e->to, edge_idx);
      g_.link(cur, take);
      g_.link(take, target);
      NodeId skip = g_.add(ir::Stmt::assume(ctx_.arena.bnot(e->guard)));
      g_.set_label(skip, name + ": skip link to " + e->to);
      g_.node(skip).synthetic = true;
      g_.link(cur, skip);
      cur = skip;
      guards.push_back(e->guard);
    }
    if (!unconditional) {
      // No edge matched: the packet leaves the data plane here.
      NodeId emit = nop();
      g_.node(emit).exit = ExitKind::kEmit;
      g_.node(emit).emit_instance = index_of[name];
      g_.link(cur, emit);
    }
  }

  g_.check_well_formed();
  return std::move(g_);
}

}  // namespace

Cfg build_cfg(const p4::DataPlane& dp, const p4::RuleSet& rules,
              ir::Context& ctx, const BuildOptions& opts) {
  return Builder(dp, rules, ctx, opts).build();
}

}  // namespace meissa::cfg
