// The control-flow graph — Meissa's testing IR (paper §3.1, Fig. 3).
//
// Nodes carry either a predicate (`assume bexp`), an action
// (`field <- aexp`), a hash computation (handled specially per §4, since
// hashes are opaque to the solver), or a structural no-op. The graph is
// acyclic; pipeline instances appear as single-entry single-exit subgraphs
// recorded in `instances`, which is what the code-summary pass (§3.3)
// operates on.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/stmt.hpp"
#include "p4/program.hpp"
#include "util/big_count.hpp"

namespace meissa::cfg {

using NodeId = uint32_t;
inline constexpr NodeId kNoNode = ~NodeId{0};

// Hash statement: dest <- algo(keys...). Kept out of ir::Stmt because the
// solver cannot reason about it; the symbolic executor evaluates it
// concretely when all keys are pinned and otherwise leaves the destination
// unconstrained, recording an obligation checked after model generation.
struct HashStmt {
  ir::FieldId dest = ir::kInvalidField;
  p4::HashAlgo algo = p4::HashAlgo::kCrc16;
  std::vector<ir::FieldId> keys;
  // When non-empty, used instead of `keys`: key expressions in terms of
  // pipeline-entry snapshots (emitted by the code-summary encoder).
  std::vector<ir::ExprRef> key_exprs;
};

// How a path ends at a terminal (successor-less) node.
enum class ExitKind : uint8_t {
  kNone,  // not a terminal
  kEmit,  // packet leaves the data plane through a deparser
  kDrop,  // packet dropped (drop flag or parser reject)
};

// What program construct a node was expanded from. Labels are free-form
// diagnostics text; Origin is the machine-readable counterpart the
// injection-point analysis keys on, so it never has to parse labels.
enum class OriginKind : uint8_t {
  kNone = 0,
  kIfGuard,        // ref = pipeline, index = pre-order if ordinal, sub 0/1
                   // for then/else arm
  kTableEntry,     // ref = table name, index = entry index in RuleSet order
  kTableMiss,      // ref = table name, index = -1
  kParserState,    // ref = state name (structural head nop)
  kParserCase,     // ref = state name, index = transition case index
  kParserDefault,  // ref = state name, index = -1
  kTopoGuard,      // ref = destination instance, index = edge index
  kActionOp,       // ref = action name, index = op index within the action
  kChecksum,       // ref = dest field, index = update index, sub 0/1 for
                   // the guard-valid / guard-invalid arm
};

struct Origin {
  OriginKind kind = OriginKind::kNone;
  uint32_t ref = 0;  // interned string id (shares the Cfg label table)
  int32_t index = -1;
  int32_t sub = -1;
};

struct Node {
  ir::Stmt stmt;
  bool is_hash = false;
  HashStmt hash;
  std::vector<NodeId> succ;
  int instance = -1;  // index into Cfg::instances, -1 for glue nodes
  ExitKind exit = ExitKind::kNone;
  int emit_instance = -1;  // kEmit: whose deparser serializes the packet
  uint32_t label = 0;      // index into Cfg's label table, 0 = unlabeled
  // Builder-synthesized exhaustiveness arm (e.g. the "no topology edge
  // matched" skip chain): refuting one is by-construction, not a program
  // bug, so diagnostics skip it (the engine still prunes through it).
  bool synthetic = false;
  Origin origin;
};

// Per-pipeline-instance metadata the generator and driver need.
struct InstanceInfo {
  std::string name;
  std::string pipeline;  // definition name
  int switch_id = 0;
  NodeId entry = kNoNode;  // structural nop opening the subgraph
  NodeId exit = kNoNode;   // structural nop closing the subgraph
  // Deparser emit order (header names) and this instance's validity field
  // for each header.
  std::vector<std::string> emit_order;
  std::unordered_map<std::string, ir::FieldId> validity;
};

class Cfg {
 public:
  NodeId add(ir::Stmt stmt) {
    Node n;
    n.stmt = std::move(stmt);
    nodes_.push_back(std::move(n));
    return static_cast<NodeId>(nodes_.size() - 1);
  }
  NodeId add_hash(HashStmt h) {
    Node n;
    n.stmt = ir::Stmt::nop();
    n.is_hash = true;
    n.hash = std::move(h);
    nodes_.push_back(std::move(n));
    return static_cast<NodeId>(nodes_.size() - 1);
  }
  void link(NodeId from, NodeId to) { nodes_[from].succ.push_back(to); }

  Node& node(NodeId id) { return nodes_[id]; }
  const Node& node(NodeId id) const { return nodes_[id]; }
  size_t size() const noexcept { return nodes_.size(); }

  NodeId entry() const noexcept { return entry_; }
  void set_entry(NodeId id) { entry_ = id; }

  std::vector<InstanceInfo>& instances() { return instances_; }
  const std::vector<InstanceInfo>& instances() const { return instances_; }

  // Names of metadata fields the program declared write-only telemetry
  // (mirrored to the control plane; never read in the pipeline). Carried
  // from p4::FieldDef so diagnostics like lint's unused-write can tell an
  // annotated counter from a genuinely dead store.
  std::vector<std::string>& telemetry() { return telemetry_; }
  const std::vector<std::string>& telemetry() const { return telemetry_; }

  // Source-location labels for diagnostics ("table acl entry #2 (deny)").
  // Interned so identical labels (shared across expanded branches) cost one
  // string; label 0 is the empty string.
  void set_label(NodeId id, const std::string& text) {
    auto [it, fresh] =
        label_index_.emplace(text, static_cast<uint32_t>(labels_.size()));
    if (fresh) labels_.push_back(text);
    nodes_[id].label = it->second;
  }
  const std::string& label(NodeId id) const {
    return labels_[nodes_[id].label];
  }

  // Machine-readable provenance; `ref` is interned in the label table.
  void set_origin(NodeId id, OriginKind kind, const std::string& ref,
                  int32_t index = -1, int32_t sub = -1) {
    auto [it, fresh] =
        label_index_.emplace(ref, static_cast<uint32_t>(labels_.size()));
    if (fresh) labels_.push_back(ref);
    nodes_[id].origin = Origin{kind, it->second, index, sub};
  }
  const Origin& origin(NodeId id) const { return nodes_[id].origin; }
  const std::string& origin_ref(NodeId id) const {
    return labels_[nodes_[id].origin.ref];
  }

  // Number of possible paths (Def. 1) from `from` to any terminal;
  // memoized DFS over the DAG. With kNoNode, counts from the entry.
  util::BigCount count_paths(NodeId from = kNoNode) const;

  // Number of possible paths within one instance subgraph (entry..exit).
  util::BigCount count_instance_paths(int instance) const;

  // Validates structural invariants (acyclic, links in range, instances
  // single-entry single-exit); throws util::InternalError on violation.
  void check_well_formed() const;

 private:
  std::vector<Node> nodes_;
  NodeId entry_ = kNoNode;
  std::vector<InstanceInfo> instances_;
  std::vector<std::string> telemetry_;
  std::vector<std::string> labels_{std::string()};
  std::unordered_map<std::string, uint32_t> label_index_{{std::string(), 0}};
};

// A possible path: node ids from the entry to a terminal.
using Path = std::vector<NodeId>;

// Concrete evaluation along a path (paper Fig. 4). Returns the final state
// when every predicate holds and every read is bound; nullopt otherwise
// (i.e. the state does not drive this path). Hash nodes are computed
// concretely.
std::optional<ir::ConcreteState> eval_path(const Cfg& g, const Path& path,
                                           ir::ConcreteState initial,
                                           const ir::Context& ctx);

// Enumerates every possible path (for tests and brute-force oracles only —
// exponential!). Throws if more than `limit` paths exist.
std::vector<Path> enumerate_paths(const Cfg& g, size_t limit);

}  // namespace meissa::cfg
