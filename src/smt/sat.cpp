#include "smt/sat.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace meissa::smt {

namespace {

// Luby restart sequence (unit = kRestartUnit conflicts).
constexpr uint64_t kRestartUnit = 128;

double luby(uint64_t i) {
  // Find the finite subsequence containing index i and its position.
  uint64_t size = 1, seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return std::pow(2.0, static_cast<double>(seq));
}

}  // namespace

SatSolver::SatSolver() {
  // Variable 0 is the distinguished "true" constant.
  uint32_t t = new_var();
  (void)t;
  add_unit(true_lit());
}

uint32_t SatSolver::new_var() {
  uint32_t v = static_cast<uint32_t>(assign_.size());
  assign_.push_back(LBool::kUndef);
  level_.push_back(0);
  reason_.push_back(kNoReason);
  activity_.push_back(0.0);
  phase_.push_back(false);
  seen_.push_back(false);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_pos_.push_back(-1);
  heap_insert(v);
  return v;
}

void SatSolver::heap_insert(uint32_t v) {
  if (heap_pos_[v] >= 0) return;
  heap_pos_[v] = static_cast<int32_t>(heap_.size());
  heap_.push_back(v);
  heap_sift_up(heap_.size() - 1);
}

void SatSolver::heap_sift_up(size_t i) {
  uint32_t v = heap_[i];
  while (i > 0) {
    size_t parent = (i - 1) / 2;
    if (!heap_less(heap_[parent], v)) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = static_cast<int32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<int32_t>(i);
}

void SatSolver::heap_sift_down(size_t i) {
  uint32_t v = heap_[i];
  while (true) {
    size_t child = 2 * i + 1;
    if (child >= heap_.size()) break;
    if (child + 1 < heap_.size() && heap_less(heap_[child], heap_[child + 1])) {
      ++child;
    }
    if (!heap_less(v, heap_[child])) break;
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = static_cast<int32_t>(i);
    i = child;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<int32_t>(i);
}

bool SatSolver::add_clause(std::vector<Lit> lits) {
  if (unsat_) return false;
  backtrack(0);  // clauses are always added at the root level
  last_assumptions_.clear();
  // Simplify: drop false/duplicate literals, detect tautology/satisfied.
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) { return a.x < b.x; });
  std::vector<Lit> out;
  Lit prev{~uint32_t{0}};
  for (Lit l : lits) {
    if (l == prev) continue;
    if (l == ~prev) return true;  // tautology
    LBool v = value(l);
    if (v == LBool::kTrue) return true;  // already satisfied at level 0
    if (v == LBool::kFalse) continue;    // cannot contribute
    out.push_back(l);
    prev = l;
  }
  if (out.empty()) {
    unsat_ = true;
    return false;
  }
  if (out.size() == 1) {
    enqueue(out[0], kNoReason);
    if (propagate() != kNoReason) {
      unsat_ = true;
      return false;
    }
    return true;
  }
  ClauseRef cr = static_cast<ClauseRef>(clauses_.size());
  clauses_.push_back({static_cast<uint32_t>(pool_.size()),
                      static_cast<uint32_t>(out.size()), false, 0.0});
  pool_.insert(pool_.end(), out.begin(), out.end());
  attach_clause(cr);
  return true;
}

void SatSolver::attach_clause(ClauseRef cr) {
  const Lit* ls = clause_lits(cr);
  watches_[(~ls[0]).x].push_back({cr, ls[1]});
  watches_[(~ls[1]).x].push_back({cr, ls[0]});
}

void SatSolver::enqueue(Lit l, ClauseRef reason) {
  assign_[l.var()] = l.sign() ? LBool::kFalse : LBool::kTrue;
  level_[l.var()] = static_cast<int>(trail_lim_.size());
  reason_[l.var()] = reason;
  trail_.push_back(l);
}

SatSolver::ClauseRef SatSolver::propagate() {
  while (qhead_ < trail_.size()) {
    Lit p = trail_[qhead_++];
    ++stats_.propagations;
    auto& ws = watches_[p.x];
    size_t i = 0, j = 0;
    ClauseRef confl = kNoReason;
    while (i < ws.size()) {
      Watcher w = ws[i];
      if (value(w.blocker) == LBool::kTrue) {
        ws[j++] = ws[i++];
        continue;
      }
      Clause& c = clauses_[w.clause];
      Lit* ls = pool_.data() + c.start;
      // Ensure the false literal (~p) sits at position 1.
      Lit false_lit = ~p;
      if (ls[0] == false_lit) std::swap(ls[0], ls[1]);
      // If first literal is true, clause is satisfied.
      if (value(ls[0]) == LBool::kTrue) {
        ws[j++] = {w.clause, ls[0]};
        ++i;
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for (uint32_t k = 2; k < c.size; ++k) {
        if (value(ls[k]) != LBool::kFalse) {
          std::swap(ls[1], ls[k]);
          watches_[(~ls[1]).x].push_back({w.clause, ls[0]});
          moved = true;
          break;
        }
      }
      if (moved) {
        ++i;
        continue;
      }
      // Clause is unit or conflicting.
      ws[j++] = ws[i++];
      if (value(ls[0]) == LBool::kFalse) {
        confl = w.clause;
        qhead_ = static_cast<uint32_t>(trail_.size());
        // Copy remaining watchers and bail out.
        while (i < ws.size()) ws[j++] = ws[i++];
        break;
      }
      enqueue(ls[0], w.clause);
    }
    ws.resize(j);
    if (confl != kNoReason) return confl;
  }
  return kNoReason;
}

void SatSolver::bump_var(uint32_t v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
    // Rescaling preserves the ordering; the heap stays valid.
  }
  if (heap_pos_[v] >= 0) heap_sift_up(static_cast<size_t>(heap_pos_[v]));
}

void SatSolver::decay_activities() { var_inc_ /= 0.95; }

void SatSolver::analyze(ClauseRef conflict, std::vector<Lit>& learnt,
                        int& bt_level) {
  learnt.clear();
  learnt.push_back(Lit{0});  // placeholder for the asserting literal
  int counter = 0;
  Lit p{~uint32_t{0}};
  size_t index = trail_.size();
  ClauseRef reason = conflict;
  const int current_level = static_cast<int>(trail_lim_.size());

  do {
    util::check(reason != kNoReason, "analyze: missing reason clause");
    Clause& c = clauses_[reason];
    if (c.learned) c.activity += 1.0;
    Lit* ls = pool_.data() + c.start;
    // Skip ls[0] on the first iteration only when resolving on p.
    for (uint32_t k = (p.x == ~uint32_t{0}) ? 0 : 1; k < c.size; ++k) {
      Lit q = ls[k];
      if (seen_[q.var()] || level_[q.var()] == 0) continue;
      seen_[q.var()] = true;
      bump_var(q.var());
      if (level_[q.var()] == current_level) {
        ++counter;
      } else {
        learnt.push_back(q);
      }
    }
    // Walk the trail back to the next marked literal.
    while (!seen_[trail_[--index].var()]) {
    }
    p = trail_[index];
    seen_[p.var()] = false;
    reason = reason_[p.var()];
    --counter;
  } while (counter > 0);
  learnt[0] = ~p;

  // Compute backtrack level: max level among the other literals.
  bt_level = 0;
  size_t max_i = 1;
  for (size_t k = 1; k < learnt.size(); ++k) {
    if (level_[learnt[k].var()] > bt_level) {
      bt_level = level_[learnt[k].var()];
      max_i = k;
    }
  }
  if (learnt.size() > 1) std::swap(learnt[1], learnt[max_i]);
  for (size_t k = 1; k < learnt.size(); ++k) seen_[learnt[k].var()] = false;
}

void SatSolver::backtrack(int target) {
  if (static_cast<int>(trail_lim_.size()) <= target) return;
  uint32_t lim = trail_lim_[target];
  for (size_t k = trail_.size(); k > lim; --k) {
    uint32_t v = trail_[k - 1].var();
    phase_[v] = assign_[v] == LBool::kTrue;
    assign_[v] = LBool::kUndef;
    reason_[v] = kNoReason;
    heap_insert(v);
  }
  trail_.resize(lim);
  trail_lim_.resize(target);
  qhead_ = lim;
}

uint32_t SatSolver::pick_branch_var() {
  while (!heap_.empty()) {
    uint32_t v = heap_[0];
    uint32_t last = heap_.back();
    heap_.pop_back();
    heap_pos_[v] = -1;
    if (!heap_.empty()) {
      heap_[0] = last;
      heap_pos_[last] = 0;
      heap_sift_down(0);
    }
    if (assign_[v] == LBool::kUndef) return v;
  }
  return ~uint32_t{0};
}

void SatSolver::reduce_learnts() {
  // Compact the clause database, then rebuild the pool and watcher lists.
  // Two classes of clause go: (1) the lower-activity half of the learned
  // clauses (binary learnts are exempt — they are cheap to keep and the
  // usual carriers of reusable cross-query implications), and (2) any
  // clause — learned or original — permanently satisfied at level 0.
  // Level-0 assignments are never undone, so such clauses can no longer
  // propagate; they are exactly the garbage a retired push/pop selector
  // leaves behind (pop() posts ~selector as a unit, vacuously satisfying
  // every clause of that scope), and collecting them is what keeps a
  // long-lived incremental shard's database bounded by *useful* clauses.
  // Clauses currently acting as reasons are kept either way (identified by
  // scanning the trail's reason references).
  ++stats_.reduces;
  std::vector<bool> is_reason(clauses_.size(), false);
  for (Lit l : trail_) {
    ClauseRef r = reason_[l.var()];
    if (r != kNoReason && r != kAssumptionReason) is_reason[r] = true;
  }
  auto satisfied_at_root = [this](ClauseRef i) {
    const Lit* ls = clause_lits(i);
    for (uint32_t k = 0; k < clauses_[i].size; ++k) {
      if (value(ls[k]) == LBool::kTrue && level_[ls[k].var()] == 0) {
        return true;
      }
    }
    return false;
  };
  std::vector<bool> remove(clauses_.size(), false);
  std::vector<ClauseRef> learned;
  for (ClauseRef i = 0; i < clauses_.size(); ++i) {
    if (is_reason[i]) continue;
    if (satisfied_at_root(i)) {
      remove[i] = true;
      ++stats_.removed_satisfied;
      continue;
    }
    if (clauses_[i].learned && clauses_[i].size > 2) learned.push_back(i);
  }
  std::sort(learned.begin(), learned.end(), [this](ClauseRef a, ClauseRef b) {
    return clauses_[a].activity < clauses_[b].activity;
  });
  for (size_t k = 0; k < learned.size() / 2; ++k) {
    remove[learned[k]] = true;
    ++stats_.removed_low_activity;
  }

  std::vector<Lit> new_pool;
  std::vector<Clause> new_clauses;
  std::vector<ClauseRef> remap(clauses_.size(), kNoReason);
  new_pool.reserve(pool_.size());
  uint32_t removed_learned = 0;
  for (ClauseRef i = 0; i < clauses_.size(); ++i) {
    if (remove[i]) {
      removed_learned += clauses_[i].learned ? 1u : 0u;
      continue;
    }
    Clause c = clauses_[i];
    uint32_t new_start = static_cast<uint32_t>(new_pool.size());
    new_pool.insert(new_pool.end(), pool_.begin() + c.start,
                    pool_.begin() + c.start + c.size);
    c.start = new_start;
    remap[i] = static_cast<ClauseRef>(new_clauses.size());
    new_clauses.push_back(c);
  }
  pool_ = std::move(new_pool);
  clauses_ = std::move(new_clauses);
  // Decrement by the count actually dropped. Halving the counter here
  // would drift it low over a long shard: `learned` excludes reason-pinned
  // and binary clauses, so learned.size()/2 is less than num_learned_/2 —
  // and a drifted-low counter stretches the reduction cadence until the
  // database has ballooned far past the threshold.
  num_learned_ -= removed_learned;
  for (Lit l : trail_) {
    ClauseRef& r = reason_[l.var()];
    if (r != kNoReason && r != kAssumptionReason) r = remap[r];
  }
  for (auto& ws : watches_) ws.clear();
  for (ClauseRef i = 0; i < clauses_.size(); ++i) attach_clause(i);
  // Cache-aware cadence: grow the threshold by half after every reduction
  // so surviving (high-activity, cross-query) clauses stay warm instead of
  // being churned at a fixed cap as the shard's incremental history grows.
  reduce_threshold_ += reduce_threshold_ / 2;
}

bool SatSolver::solve(const std::vector<Lit>& assumptions) {
  // Unlimited limits can never yield kUnknown, so the mapping is total.
  return solve_limited(assumptions, ResourceLimits{}) == SolveStatus::kSat;
}

SolveStatus SatSolver::solve_limited(const std::vector<Lit>& assumptions,
                                     const ResourceLimits& limits) {
  ++stats_.solves;
  if (unsat_) return SolveStatus::kUnsat;
  // Incremental trail reuse: keep decision levels corresponding to the
  // longest shared assumption prefix (the dominant pattern under DFS
  // push/pop is extending the previous assumption list by one).
  size_t shared = 0;
  while (shared < assumptions.size() && shared < last_assumptions_.size() &&
         assumptions[shared] == last_assumptions_[shared]) {
    ++shared;
  }
  backtrack(static_cast<int>(std::min(shared, trail_lim_.size())));
  last_assumptions_ = assumptions;
  if (propagate() != kNoReason) {
    if (trail_lim_.empty()) {
      unsat_ = true;
      return SolveStatus::kUnsat;
    }
    backtrack(0);
    if (propagate() != kNoReason) {
      unsat_ = true;
      return SolveStatus::kUnsat;
    }
  }

  uint64_t conflicts_this_solve = 0;
  uint64_t restart_idx = 0;
  uint64_t restart_budget =
      static_cast<uint64_t>(luby(restart_idx) * kRestartUnit);
  std::vector<Lit> learnt;

  // Resource governance: all checks are gated on `limited` so that the
  // default (unlimited) path executes exactly the historical algorithm.
  const bool limited = !limits.unlimited();
  const uint64_t prop_start = stats_.propagations;
  uint64_t decisions_since_poll = 0;
  auto exhausted = [&]() -> bool {
    if (limits.max_conflicts != 0 &&
        conflicts_this_solve >= limits.max_conflicts) {
      return true;
    }
    if (limits.max_propagations != 0 &&
        stats_.propagations - prop_start >= limits.max_propagations) {
      return true;
    }
    if (limits.has_deadline &&
        std::chrono::steady_clock::now() >= limits.deadline) {
      return true;
    }
    return false;
  };
  // Giving up must leave the solver consistent for later solves: unwind to
  // the root and forget the assumption prefix so the next solve starts from
  // a clean trail (learned clauses and phases are kept — they stay sound).
  auto give_up = [&]() -> SolveStatus {
    backtrack(0);
    last_assumptions_.clear();
    return SolveStatus::kUnknown;
  };

  while (true) {
    ClauseRef confl = propagate();
    if (confl != kNoReason) {
      ++stats_.conflicts;
      ++conflicts_this_solve;
      if (trail_lim_.empty()) {
        unsat_ = true;
        return SolveStatus::kUnsat;
      }
      if (limited && exhausted()) return give_up();
      // A conflict while only assumption decisions are on the trail means
      // the assumptions themselves are inconsistent with the clauses.
      int bt_level = 0;
      analyze(confl, learnt, bt_level);
      // Never backtrack into the middle of the assumption prefix without
      // re-deciding: backtrack() removes those levels and the decision loop
      // below re-asserts assumptions, detecting falsified ones.
      backtrack(bt_level);
      if (learnt.size() == 1) {
        enqueue(learnt[0], kNoReason);
      } else {
        ClauseRef cr = static_cast<ClauseRef>(clauses_.size());
        clauses_.push_back({static_cast<uint32_t>(pool_.size()),
                            static_cast<uint32_t>(learnt.size()), true, 1.0});
        pool_.insert(pool_.end(), learnt.begin(), learnt.end());
        attach_clause(cr);
        enqueue(learnt[0], cr);
        ++num_learned_;
        ++stats_.learned;
      }
      decay_activities();
      if (num_learned_ > reduce_threshold_ &&
          trail_lim_.size() <= assumptions.size()) {
        reduce_learnts();
      }
      if (conflicts_this_solve > restart_budget) {
        ++stats_.restarts;
        ++restart_idx;
        restart_budget += static_cast<uint64_t>(luby(restart_idx) * kRestartUnit);
        backtrack(0);
      }
      continue;
    }
    // Decision: first re-assert pending assumptions, then branch.
    if (trail_lim_.size() < assumptions.size()) {
      Lit a = assumptions[trail_lim_.size()];
      LBool v = value(a);
      if (v == LBool::kFalse) {
        return SolveStatus::kUnsat;  // assumption falsified
      }
      trail_lim_.push_back(static_cast<uint32_t>(trail_.size()));
      if (v == LBool::kUndef) enqueue(a, kNoReason);
      continue;
    }
    // Conflict-free runs still burn propagations and wall-clock; poll the
    // limits every 256 decisions so they bite without a conflict stream.
    if (limited && (++decisions_since_poll & 255u) == 0 && exhausted()) {
      return give_up();
    }
    uint32_t v = pick_branch_var();
    if (v == ~uint32_t{0}) return SolveStatus::kSat;  // model found
    ++stats_.decisions;
    trail_lim_.push_back(static_cast<uint32_t>(trail_.size()));
    enqueue(Lit::make(v, !phase_[v]), kNoReason);
  }
}

bool SatSolver::model_value(uint32_t var) const {
  return assign_.at(var) == LBool::kTrue;
}

}  // namespace meissa::smt
