// Tseitin bit-blasting of bit-vector expressions into the SAT core.
//
// Every expression node is translated once and memoized: the produced
// clauses are *definitional* (they constrain fresh variables to equal the
// expression's value), so they remain valid across incremental push/pop
// scopes and the translation cache never needs invalidation.
#pragma once

#include <unordered_map>
#include <vector>

#include "ir/expr.hpp"
#include "smt/sat.hpp"

namespace meissa::smt {

class BitBlaster {
 public:
  explicit BitBlaster(SatSolver& sat) : sat_(sat) {}
  BitBlaster(const BitBlaster&) = delete;
  BitBlaster& operator=(const BitBlaster&) = delete;

  // Literal equivalent to the boolean expression `e`.
  Lit blast_bool(ir::ExprRef e);

  // LSB-first literals of the arithmetic expression `e` (width() of them).
  std::vector<Lit> blast_vec(ir::ExprRef e);

  // Bit variables of a field (allocated on first use).
  const std::vector<Lit>& field_bits(ir::FieldId f, int width);

  // True when the field has been mentioned in some blasted expression.
  bool knows_field(ir::FieldId f) const { return fields_.count(f) != 0; }

  // Calls `fn(field)` for every field the blaster knows. Model extraction
  // iterates this instead of probing the context-global field table,
  // whose size grows with the whole program rather than this solver's
  // constraint footprint.
  template <typename Fn>
  void for_each_known_field(Fn&& fn) const {
    for (const auto& [f, bits] : fields_) fn(f);
  }

  // Reads a field's value out of the SAT model after a satisfiable solve.
  uint64_t model_value(ir::FieldId f) const;

  // Memoized translations currently held (bool + vec caches). The field
  // map is excluded: it is identity state, not a cache (see below).
  size_t cache_entries() const { return bool_cache_.size() + vec_cache_.size(); }

  // Epoch-clears the translation caches once they exceed `max_entries`
  // (0 = unbounded). Must only be called between blasts, never
  // mid-recursion. Dropping a memoized translation is sound — the old
  // definitional clauses stay in the SAT core and a re-blast just defines
  // fresh equivalent literals — but `fields_` must NEVER be cleared: field
  // bits are *identity*, and fresh ones would be unconstrained by every
  // clause already referencing the old ones.
  void maybe_epoch_clear(size_t max_entries);

  // Times maybe_epoch_clear actually cleared.
  uint64_t epochs() const { return epochs_; }

 private:
  Lit lit_true() const { return sat_.true_lit(); }
  Lit lit_false() const { return ~sat_.true_lit(); }
  Lit fresh() { return Lit::make(sat_.new_var(), false); }

  // Gates with constant short-circuiting. Each returns a literal whose
  // value is defined (via clauses) to equal the gate output.
  Lit gate_and(Lit a, Lit b);
  Lit gate_or(Lit a, Lit b);
  Lit gate_xor(Lit a, Lit b);
  Lit gate_iff(Lit a, Lit b) { return ~gate_xor(a, b); }
  Lit gate_mux(Lit sel, Lit t, Lit f);  // sel ? t : f
  Lit gate_big_and(const std::vector<Lit>& xs);
  Lit gate_big_or(const std::vector<Lit>& xs);

  std::vector<Lit> add_vec(const std::vector<Lit>& a, const std::vector<Lit>& b,
                           Lit carry_in);
  std::vector<Lit> negate_vec(const std::vector<Lit>& a);
  std::vector<Lit> mul_vec(const std::vector<Lit>& a,
                           const std::vector<Lit>& b);
  std::vector<Lit> shift_vec(const std::vector<Lit>& a,
                             const std::vector<Lit>& amount, bool left);
  Lit ult(const std::vector<Lit>& a, const std::vector<Lit>& b);
  Lit veq(const std::vector<Lit>& a, const std::vector<Lit>& b);

  SatSolver& sat_;
  std::unordered_map<ir::ExprRef, Lit> bool_cache_;
  std::unordered_map<ir::ExprRef, std::vector<Lit>> vec_cache_;
  std::unordered_map<ir::FieldId, std::vector<Lit>> fields_;
  uint64_t epochs_ = 0;
};

}  // namespace meissa::smt
