// Optional Z3 backend. Compiled in only when libz3 is available; the
// factory returns nullptr otherwise. Used to cross-validate Meissa's own
// BvSolver in tests and as an alternative engine in benchmarks.
#include "smt/solver.hpp"

#ifdef MEISSA_HAVE_Z3

#include <z3++.h>

#include <algorithm>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace meissa::smt {

namespace {

class Z3Solver final : public Solver {
 public:
  explicit Z3Solver(ir::Context& ctx) : ctx_(ctx), solver_(z3_) {}

  void push() override {
    ++stats_.pushes;
    ++depth_;
    if (obs::metrics_enabled()) {
      obs::metrics().gauge("smt.push_depth_max").record_max(depth_);
    }
    solver_.push();
  }
  void pop() override {
    ++stats_.pops;
    // Z3 itself treats an unmatched pop as UB / a hard abort; mirror
    // BvSolver and fail with a catchable invariant violation instead.
    util::check(depth_ > 0, "pop: no scope to pop");
    --depth_;
    solver_.pop();
  }
  void add(ir::ExprRef bexp) override { solver_.add(translate(bexp)); }

  CheckResult check() override {
    ++stats_.checks;
    ++stats_.sat_calls;
    switch (solver_.check()) {
      case z3::sat: return CheckResult::kSat;
      case z3::unsat: return CheckResult::kUnsat;
      default:
        ++stats_.unknowns;
        return CheckResult::kUnknown;
    }
  }

  // Z3 has no direct conflict/propagation knobs; the wall-clock component
  // maps onto its per-check timeout (a timed-out check reports kUnknown,
  // same as BvSolver's exhausted budget).
  void set_budget(const Budget& budget) override {
    z3::params p(z3_);
    if (budget.max_wall_ms > 0) {
      // Z3's knob is a 32-bit ms count where UINT32_MAX means "none";
      // saturate just below it so a huge budget stays a (huge) timeout.
      auto ms = static_cast<unsigned>(
          std::min<uint64_t>(budget.max_wall_ms, 4294967294u));
      p.set("timeout", ms);
    } else {
      p.set("timeout", 4294967295u);  // Z3's "no timeout" sentinel
    }
    solver_.set(p);
  }

  Model model() override {
    z3::model m = solver_.get_model();
    Model out;
    for (const auto& [fid, var] : vars_) {
      z3::expr v = m.eval(var, /*model_completion=*/true);
      out.emplace(fid, v.get_numeral_uint64());
    }
    return out;
  }

  const SolverStats& stats() const override { return stats_; }

 private:
  z3::expr var_for(ir::FieldId f, int width) {
    auto it = vars_.find(f);
    if (it != vars_.end()) return it->second;
    z3::expr v = z3_.bv_const(ctx_.fields.name(f).c_str(), width);
    vars_.emplace(f, v);
    return v;
  }

  z3::expr translate(ir::ExprRef e) {
    auto it = cache_.find(e);
    if (it != cache_.end()) return it->second;
    z3::expr out(z3_);
    switch (e->kind) {
      case ir::ExprKind::kConst:
        out = z3_.bv_val(e->value, static_cast<unsigned>(e->width));
        break;
      case ir::ExprKind::kBoolConst:
        out = z3_.bool_val(e->value != 0);
        break;
      case ir::ExprKind::kField:
        out = var_for(e->field, e->width);
        break;
      case ir::ExprKind::kArith: {
        z3::expr a = translate(e->lhs);
        z3::expr b = translate(e->rhs);
        switch (e->arith_op()) {
          case ir::ArithOp::kAdd: out = a + b; break;
          case ir::ArithOp::kSub: out = a - b; break;
          case ir::ArithOp::kMul: out = a * b; break;
          case ir::ArithOp::kAnd: out = a & b; break;
          case ir::ArithOp::kOr:  out = a | b; break;
          case ir::ArithOp::kXor: out = a ^ b; break;
          case ir::ArithOp::kShl: out = z3::shl(a, b); break;
          case ir::ArithOp::kShr: out = z3::lshr(a, b); break;
        }
        break;
      }
      case ir::ExprKind::kCmp: {
        z3::expr a = translate(e->lhs);
        z3::expr b = translate(e->rhs);
        switch (e->cmp_op()) {
          case ir::CmpOp::kEq: out = a == b; break;
          case ir::CmpOp::kNe: out = a != b; break;
          case ir::CmpOp::kLt: out = z3::ult(a, b); break;
          case ir::CmpOp::kLe: out = z3::ule(a, b); break;
          case ir::CmpOp::kGt: out = z3::ugt(a, b); break;
          case ir::CmpOp::kGe: out = z3::uge(a, b); break;
        }
        break;
      }
      case ir::ExprKind::kBool: {
        z3::expr a = translate(e->lhs);
        z3::expr b = translate(e->rhs);
        out = e->bool_op() == ir::BoolOp::kAnd ? (a && b) : (a || b);
        break;
      }
      case ir::ExprKind::kNot:
        out = !translate(e->lhs);
        break;
    }
    cache_.emplace(e, out);
    return out;
  }

  ir::Context& ctx_;
  z3::context z3_;
  z3::solver solver_;
  std::unordered_map<ir::FieldId, z3::expr> vars_;
  std::unordered_map<ir::ExprRef, z3::expr> cache_;
  SolverStats stats_;
  uint64_t depth_ = 0;  // open scopes, for pop-underflow detection
};

}  // namespace

std::unique_ptr<Solver> make_z3_solver(ir::Context& ctx) {
  return std::make_unique<Z3Solver>(ctx);
}

bool have_z3() { return true; }

}  // namespace meissa::smt

#else  // !MEISSA_HAVE_Z3

namespace meissa::smt {

std::unique_ptr<Solver> make_z3_solver(ir::Context&) { return nullptr; }

bool have_z3() { return false; }

}  // namespace meissa::smt

#endif
