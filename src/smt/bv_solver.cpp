#include "smt/bv_solver.hpp"

#include <chrono>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace meissa::smt {

using ir::ExprKind;

BvSolver::BvSolver(ir::Context& ctx) : ctx_(ctx), blaster_(sat_) {
  scopes_.emplace_back();  // base scope
}

void BvSolver::push() {
  ++stats_.pushes;
  scopes_.emplace_back();
  if (obs::metrics_enabled()) {
    // High-water mark of the incremental assertion stack (the DFS depth as
    // the solver sees it). Base scope excluded.
    obs::metrics().gauge("smt.push_depth_max").record_max(scopes_.size() - 1);
  }
}

void BvSolver::pop() {
  ++stats_.pops;
  util::check(scopes_.size() > 1, "pop: no scope to pop");
  Scope& top = scopes_.back();
  if (top.has_selector) {
    // Permanently retire this scope's selector; its guarded clauses become
    // vacuously satisfied and any clauses learned from them stay sound.
    sat_.add_unit(~top.selector);
  }
  scopes_.pop_back();
}

void BvSolver::add(ir::ExprRef bexp) {
  util::check(bexp != nullptr && bexp->is_bool(), "add: boolean required");
  scopes_.back().asserts.push_back(bexp);
}

bool BvSolver::as_value_set(ir::ExprRef e, ir::FieldId& field, int& width,
                            std::vector<uint64_t>& values) {
  switch (e->kind) {
    case ExprKind::kBool:
      if (e->bool_op() != ir::BoolOp::kOr) return false;
      return as_value_set(e->lhs, field, width, values) &&
             as_value_set(e->rhs, field, width, values);
    case ExprKind::kCmp: {
      if (e->cmp_op() != ir::CmpOp::kEq ||
          e->lhs->kind != ExprKind::kField ||
          e->rhs->kind != ExprKind::kConst) {
        return false;
      }
      if (field == ir::kInvalidField) {
        field = e->lhs->field;
        width = e->lhs->width;
      } else if (field != e->lhs->field) {
        return false;  // mixed fields: not a single-field set
      }
      values.push_back(e->rhs->value);
      return true;
    }
    default:
      return false;
  }
}

bool BvSolver::decompose(ir::ExprRef e, std::vector<Atom>& atoms) const {
  switch (e->kind) {
    case ExprKind::kBoolConst:
      if (e->is_true()) return true;
      // `false` as an atom: an unsatisfiable constraint on a dummy field.
      atoms.push_back({ir::kInvalidField, 1, ir::CmpOp::kEq, 0, 0, {}});
      return true;
    case ExprKind::kBool:
      if (e->bool_op() == ir::BoolOp::kAnd) {
        bool a = decompose(e->lhs, atoms);
        bool b = decompose(e->rhs, atoms);
        return a && b;
      }
      {
        // Same-field value-set disjunction (the merged per-packet-type
        // pre-condition shape, paper §7).
        ir::FieldId f = ir::kInvalidField;
        int w = 0;
        std::vector<uint64_t> values;
        if (as_value_set(e, f, w, values)) {
          Atom a{f, w, ir::CmpOp::kEq, 0, 0, std::move(values)};
          atoms.push_back(std::move(a));
          return true;
        }
      }
      return false;  // general disjunction: not a conjunction of atoms
    case ExprKind::kCmp: {
      ir::ExprRef lhs = e->lhs;
      ir::ExprRef rhs = e->rhs;
      if (rhs->kind != ExprKind::kConst) return false;
      uint64_t mask = util::mask_bits(lhs->width == 0 ? 1 : lhs->width);
      ir::ExprRef base = lhs;
      if (lhs->kind == ExprKind::kArith &&
          lhs->arith_op() == ir::ArithOp::kAnd &&
          lhs->rhs->kind == ExprKind::kConst) {
        // Masked comparisons are only decidable by the Domain for ==/!=.
        if (e->cmp_op() != ir::CmpOp::kEq && e->cmp_op() != ir::CmpOp::kNe) {
          return false;
        }
        mask = lhs->rhs->value;
        base = lhs->lhs;
      }
      if (base->kind != ExprKind::kField) return false;
      atoms.push_back(
          {base->field, base->width, e->cmp_op(), mask, rhs->value, {}});
      return true;
    }
    default:
      return false;
  }
}

CheckResult BvSolver::try_fast_path() {
  std::vector<Atom> atoms;
  bool complete = true;
  for (const Scope& s : scopes_) {
    for (ir::ExprRef a : s.asserts) {
      if (!decompose(a, atoms)) complete = false;
    }
  }
  const uint64_t full = ~uint64_t{0};
  std::unordered_map<ir::FieldId, Domain> domains;
  for (const Atom& at : atoms) {
    if (at.field == ir::kInvalidField) return CheckResult::kUnsat;
    auto [it, fresh] = domains.try_emplace(at.field, Domain(at.width));
    (void)fresh;
    Domain& d = it->second;
    if (!at.set.empty()) {
      d.require_value_set(at.set);
      continue;
    }
    const bool exact = util::truncate(at.mask, at.width) ==
                       util::mask_bits(at.width);
    switch (at.op) {
      case ir::CmpOp::kEq: d.require_masked_eq(at.mask, at.value); break;
      case ir::CmpOp::kNe: d.require_masked_ne(at.mask, at.value); break;
      case ir::CmpOp::kLt:
        if (!exact) return CheckResult::kUnknown;
        d.require_lt(at.value);
        break;
      case ir::CmpOp::kLe:
        if (!exact) return CheckResult::kUnknown;
        d.require_le(at.value);
        break;
      case ir::CmpOp::kGt:
        if (!exact) return CheckResult::kUnknown;
        d.require_gt(at.value);
        break;
      case ir::CmpOp::kGe:
        if (!exact) return CheckResult::kUnknown;
        d.require_ge(at.value);
        break;
    }
    (void)full;
  }
  Model candidate;
  for (auto& [fid, d] : domains) {
    bool decided = true;
    std::optional<uint64_t> v = d.pick_value(decided);
    if (!decided) return CheckResult::kUnknown;
    if (!v) return CheckResult::kUnsat;  // sound even for partial decompose
    candidate.emplace(fid, *v);
  }
  if (!complete) return CheckResult::kUnknown;
  model_ = std::move(candidate);
  model_from_fast_path_ = true;
  return CheckResult::kSat;
}

bool BvSolver::should_try_fast_path() {
  if (force_blast_) return false;
  if (!portfolio_) return true;
  // Under a limited budget the fast path is always attempted: skipping it
  // could turn a cheap definite verdict into a budget-dependent kUnknown
  // and grow the degraded-coverage set relative to a portfolio-off run.
  if (!budget_.unlimited()) return true;
  RegionArm& arm = arms_[region_];
  // Warm-up: measure before judging the region.
  if (arm.tries < 16) return true;
  // Skip once the fast path wins less than 1 in 8 of its attempts here,
  // but probe on every 32nd skip so a region whose constraint mix drifts
  // back into the decidable fragment can re-earn its fast path.
  if (arm.wins * 8 < arm.tries) {
    if (arm.skips % 32 == 31) return true;
    return false;
  }
  return true;
}

uint64_t BvSolver::portfolio_fast_wins() const {
  uint64_t n = 0;
  for (const auto& [r, a] : arms_) n += a.wins;
  return n;
}

uint64_t BvSolver::portfolio_sat_wins() const {
  uint64_t n = 0;
  for (const auto& [r, a] : arms_) n += a.tries - a.wins;
  return n;
}

void BvSolver::blast_pending() {
  // Between-blast boundary: safe point to epoch-clear the memoization
  // caches (never mid-recursion — see BitBlaster::maybe_epoch_clear).
  blaster_.maybe_epoch_clear(blast_cache_cap_);
  for (size_t i = 0; i < scopes_.size(); ++i) {
    Scope& s = scopes_[i];
    if (s.next_unblasted < s.asserts.size() && i > 0 && !s.has_selector) {
      s.selector = Lit::make(sat_.new_var(), false);
      s.has_selector = true;
    }
    for (; s.next_unblasted < s.asserts.size(); ++s.next_unblasted) {
      Lit l = blaster_.blast_bool(s.asserts[s.next_unblasted]);
      if (i == 0) {
        sat_.add_unit(l);
      } else {
        sat_.add_binary(~s.selector, l);
      }
    }
  }
}

CheckResult BvSolver::check() {
  if (!obs::metrics_enabled()) return check_impl();
  // Per-check CDCL effort: delta of the cumulative SAT-core counters
  // around one check. Fast-path checks record zeros, which keeps the
  // histogram an honest per-check distribution.
  const SatSolver::Stats before = sat_.stats();
  CheckResult r = check_impl();
  const SatSolver::Stats& after = sat_.stats();
  obs::metrics()
      .histogram("smt.conflicts_per_check")
      .observe(after.conflicts - before.conflicts);
  obs::metrics()
      .histogram("smt.propagations_per_check")
      .observe(after.propagations - before.propagations);
  // Memory-shape gauges: translation-cache population (bounded by
  // set_blast_cache_cap) and the learned-clause database high-water mark.
  obs::metrics()
      .gauge("smt.bitblast.cache_entries")
      .record_max(blaster_.cache_entries());
  obs::metrics().gauge("smt.sat.learned_db").record_max(sat_.num_learned());
  return r;
}

CheckResult BvSolver::check_impl() {
  ++stats_.checks;
  model_.clear();
  model_from_fast_path_ = false;

  // Race the two backends bandit-style: attempt the interval/equality fast
  // path unless this CFG region has taught us it rarely decides here. The
  // verdict is backend-independent, so routing only moves *time*, never
  // results (templates stay byte-identical with the portfolio on or off).
  if (should_try_fast_path()) {
    CheckResult fp = try_fast_path();
    if (portfolio_ && budget_.unlimited() && !force_blast_) {
      RegionArm& arm = arms_[region_];
      ++arm.tries;
      if (fp != CheckResult::kUnknown) ++arm.wins;
    }
    if (fp != CheckResult::kUnknown) {
      ++stats_.fast_path_hits;
      if (obs::metrics_enabled()) {
        obs::metrics().counter("smt.portfolio.fast_wins").add(1);
      }
      return fp;
    }
    if (obs::metrics_enabled()) {
      obs::metrics().counter("smt.portfolio.sat_wins").add(1);
    }
  } else {
    ++stats_.fast_path_skipped;
    if (portfolio_) ++arms_[region_].skips;
    if (obs::metrics_enabled()) {
      obs::metrics().counter("smt.portfolio.fast_skips").add(1);
    }
  }

  ++stats_.sat_calls;
  blast_pending();
  std::vector<Lit> assumptions;
  for (size_t i = 1; i < scopes_.size(); ++i) {
    if (scopes_[i].has_selector) assumptions.push_back(scopes_[i].selector);
  }
  if (budget_.unlimited()) {
    bool sat = sat_.solve(assumptions);
    return sat ? CheckResult::kSat : CheckResult::kUnsat;
  }
  ResourceLimits limits;
  limits.max_conflicts = budget_.max_conflicts;
  limits.max_propagations = budget_.max_propagations;
  if (budget_.max_wall_ms > 0) {
    limits.has_deadline = true;
    limits.deadline = budget_.deadline_after(std::chrono::steady_clock::now());
  }
  switch (sat_.solve_limited(assumptions, limits)) {
    case SolveStatus::kSat:
      return CheckResult::kSat;
    case SolveStatus::kUnsat:
      return CheckResult::kUnsat;
    case SolveStatus::kUnknown:
      ++stats_.unknowns;
      return CheckResult::kUnknown;
  }
  util::check(false, "solve_limited: bad status");
  return CheckResult::kUnknown;
}

Model BvSolver::model() {
  if (model_from_fast_path_) return model_;
  // SAT-core model: read back every field the blaster knows about.
  // Iterate the blaster's own field map — scanning the context-global
  // field table here cost ~5ms per call on gw-4 (the table holds every
  // field of every pipeline; the blaster knows a few dozen).
  Model m;
  blaster_.for_each_known_field(
      [&](ir::FieldId f) { m.emplace(f, blaster_.model_value(f)); });
  return m;
}

std::unique_ptr<Solver> make_bv_solver(ir::Context& ctx) {
  return std::make_unique<BvSolver>(ctx);
}

}  // namespace meissa::smt
