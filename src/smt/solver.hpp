// Incremental SMT solving over Meissa's bit-vector expressions.
//
// The symbolic executor (paper §3.2) pushes one constraint per predicate
// node and pops on DFS backtrack; the solver is expected to reuse work
// across checks. Two interchangeable backends implement this interface:
//
//   * BvSolver  — Meissa's own: algebraic simplification, a single-field
//                 interval/bit-domain fast path, and bit-blasting into an
//                 incremental CDCL SAT core (src/smt/sat.hpp).
//   * Z3Solver  — a thin adapter over libz3, built when available; used to
//                 cross-check BvSolver in tests and benchmarks.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "ir/stmt.hpp"

namespace meissa::smt {

enum class CheckResult { kSat, kUnsat, kUnknown };

// Resource budget for one check() call. A check that exhausts its budget
// returns kUnknown instead of diverging; the caller decides what a
// non-verdict means (the engine records the branch as *degraded* rather
// than dropping it silently). Default-constructed = unlimited, in which
// case solving behaves exactly as if no budget machinery existed.
struct Budget {
  // CDCL conflicts a single check may spend (0 = unlimited).
  uint64_t max_conflicts = 0;
  // Unit propagations a single check may spend (0 = unlimited).
  uint64_t max_propagations = 0;
  // Wall-clock milliseconds for a single check (0 = unlimited). Deadlines
  // derived from this value must come from deadline_after(): a monotonic
  // (steady_clock) base plus *saturating* addition, so max_wall_ms up to
  // UINT64_MAX means "roomy" rather than overflowing into a deadline in
  // the past.
  uint64_t max_wall_ms = 0;

  bool unlimited() const noexcept {
    return max_conflicts == 0 && max_propagations == 0 && max_wall_ms == 0;
  }

  // `now + max_wall_ms`, clamped to time_point::max() when the addition
  // would overflow the clock's representation.
  std::chrono::steady_clock::time_point deadline_after(
      std::chrono::steady_clock::time_point now) const noexcept {
    using clock = std::chrono::steady_clock;
    using std::chrono::milliseconds;
    const auto headroom = std::chrono::duration_cast<milliseconds>(
        clock::time_point::max() - now);
    if (max_wall_ms >= static_cast<uint64_t>(headroom.count())) {
      return clock::time_point::max();
    }
    return now + milliseconds(max_wall_ms);
  }
};

// A satisfying assignment: values for every field the solver saw.
// Fields never mentioned in any assertion are unconstrained and absent.
using Model = std::unordered_map<ir::FieldId, uint64_t>;

struct SolverStats {
  // check() invocations — the paper's "# of SMT calls" (Fig. 11b/12b).
  uint64_t checks = 0;
  // checks decided by the single-field domain fast path.
  uint64_t fast_path_hits = 0;
  // checks that reached the SAT core (or Z3).
  uint64_t sat_calls = 0;
  // checks where the adaptive portfolio went straight to the SAT core
  // because the fast path kept losing in this CFG region (BvSolver only).
  uint64_t fast_path_skipped = 0;
  // checks that exhausted their Budget and returned kUnknown.
  uint64_t unknowns = 0;
  uint64_t pushes = 0;
  uint64_t pops = 0;

  // Accumulate counters from another solver (e.g. per-worker solvers in a
  // parallel exploration).
  SolverStats& operator+=(const SolverStats& o) {
    checks += o.checks;
    fast_path_hits += o.fast_path_hits;
    sat_calls += o.sat_calls;
    fast_path_skipped += o.fast_path_skipped;
    unknowns += o.unknowns;
    pushes += o.pushes;
    pops += o.pops;
    return *this;
  }
};

// Field-wise wrapping subtraction `a - b` for the cumulative counters.
// Used by the engine to rebase a resumed shard's incremental-solver stats:
// the checkpoint holds counters *at the frontier*, the fresh solver
// restarts at zero and spends a few pushes on the check-free replay;
// (saved - at_replay_end) may wrap field-wise, and the later `+=` of the
// solver's cumulative counters un-wraps it to the uninterrupted values.
inline SolverStats stats_minus(SolverStats a, const SolverStats& b) {
  a.checks -= b.checks;
  a.fast_path_hits -= b.fast_path_hits;
  a.sat_calls -= b.sat_calls;
  a.fast_path_skipped -= b.fast_path_skipped;
  a.unknowns -= b.unknowns;
  a.pushes -= b.pushes;
  a.pops -= b.pops;
  return a;
}

class Solver {
 public:
  virtual ~Solver() = default;

  // Opens a new assertion scope (incremental solving).
  virtual void push() = 0;
  // Discards the most recent scope and its assertions.
  virtual void pop() = 0;
  // Asserts a boolean expression in the current scope.
  virtual void add(ir::ExprRef bexp) = 0;
  // Decides satisfiability of the conjunction of all active assertions.
  virtual CheckResult check() = 0;
  // Model of the last kSat check. Invalidated by the next add/pop/check.
  virtual Model model() = 0;

  // Installs a per-check resource budget (applies to subsequent checks).
  // The default-constructed Budget restores unlimited solving.
  virtual void set_budget(const Budget& budget) { (void)budget; }

  // Tags subsequent checks with the CFG region (predicate node) they
  // decide. Purely advisory: backends with an adaptive portfolio key their
  // per-region win counters on it; others ignore it.
  virtual void set_region(uint64_t region) { (void)region; }

  // Enables the adaptive per-check backend portfolio (backends without one
  // ignore this). Off by default: behavior identical to a build without
  // portfolio support.
  virtual void set_portfolio(bool on) { (void)on; }

  virtual const SolverStats& stats() const = 0;
};

// Creates Meissa's own bit-vector solver. `ctx` must outlive the solver.
std::unique_ptr<Solver> make_bv_solver(ir::Context& ctx);

// Creates the Z3-backed solver; returns nullptr when built without Z3.
std::unique_ptr<Solver> make_z3_solver(ir::Context& ctx);

// True when this build has the Z3 backend.
bool have_z3();

}  // namespace meissa::smt
