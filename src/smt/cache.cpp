#include "smt/cache.hpp"

namespace meissa::smt {

namespace {

// splitmix64 finalizer: spreads pointer values (which share alignment and
// arena-locality structure) over the full 64-bit space so the signature
// sums behave like sums of independent uniform variables.
uint64_t mix(uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// The two signature lanes must be independent: if hi were a function of
// lo, the 128-bit signature would only carry 64 bits of collision
// resistance. Tweaking the input before the second mix decorrelates them.
uint64_t mix2(uint64_t x) noexcept {
  return mix(x ^ 0x6a09e667f3bcc908ULL);
}

}  // namespace

PathSig PathCondCache::extend(PathSig s, ir::ExprRef cond) noexcept {
  const auto p = reinterpret_cast<uintptr_t>(cond);
  s.lo += mix(p);
  s.hi += mix2(p);
  return s;
}

PathSig PathCondCache::retract(PathSig s, ir::ExprRef cond) noexcept {
  const auto p = reinterpret_cast<uintptr_t>(cond);
  s.lo -= mix(p);
  s.hi -= mix2(p);
  return s;
}

size_t PathCondCache::SigHash::operator()(const PathSig& s) const noexcept {
  // The lanes are already mixed sums; folding them with one more mix keeps
  // shard/bucket selection uniform even for single-conjunct sets.
  return mix(s.lo ^ mix2(s.hi));
}

bool PathCondCache::lookup(const PathSig& key, CheckResult* out) const {
  const Shard& s = shards_[SigHash{}(key) % kShards];
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(key);
  if (it == s.map.end()) return false;
  *out = it->second;
  return true;
}

void PathCondCache::insert(const PathSig& key, CheckResult verdict) {
  if (verdict == CheckResult::kUnknown) return;
  Shard& s = shards_[SigHash{}(key) % kShards];
  std::lock_guard<std::mutex> lock(s.mu);
  if (per_shard_cap() != 0 && s.map.size() >= per_shard_cap()) return;
  // emplace is a no-op if another worker already recorded this key; both
  // workers decided the same formula, so the verdicts agree.
  s.map.emplace(key, verdict);
}

size_t PathCondCache::size() const {
  size_t n = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    n += s.map.size();
  }
  return n;
}

}  // namespace meissa::smt
