// Canonicalized path-condition result cache (ROADMAP "solver throughput").
//
// The final DFS checks thousands of path-condition sets that are
// structurally repeated: shards re-check their forced prefixes, sibling
// paths re-assert the same guard the parent already proved, and — in the
// planned incremental re-testing service — whole runs replay near-identical
// constraint sets. Hash-consed ExprRefs make canonicalization cheap:
// within one ir::Context, structural equality is pointer equality, so a
// path condition canonicalizes to its *set* of conjunct pointers
// (conjunction is commutative, associative, and idempotent — order and
// duplicates on the conds stack don't change the formula).
//
// Key representation: a 128-bit commutative signature — the component-wise
// sum (mod 2^64) of two independent mixes of each distinct conjunct
// pointer. Sums commute, so the signature is order-insensitive, and it
// extends/retracts in O(1) as the DFS pushes and pops conjuncts (the
// engine tracks distinctness with a multiset count; see
// Engine::ExplorationContext). Two earlier designs lost to this one: a
// sorted-pointer-vector key paid a sort + copy of the whole condition
// vector per check, and a hash-consed (parent, cond) prefix chain was
// O(1) but order-sensitive, which turned out to miss every real
// duplicate — the repeats in practice are *permutations with re-asserted
// conjuncts* (shards re-checking shared forced prefixes, sibling paths
// re-asserting a guard the parent already carries), not literal sequence
// replays.
//
// Collisions: two different conjunct sets colliding in all 128 bits would
// return a wrong verdict, so the signature is treated as exact. With
// splitmix64-mixed summands the collision probability over a cache of
// 2^20 entries is ~2^-89 — far below, say, the probability of corrupted
// RAM flipping the verdict bit.
//
// Soundness:
//   * A verdict is a semantic property of the conjunct set — independent
//     of scope nesting, solver backend, and which thread ran the deciding
//     check. Returning a cached kSat/kUnsat therefore never changes the
//     engine's branch decisions relative to a cache-off run, which is
//     what keeps templates byte-identical with the cache on/off and
//     across thread counts.
//   * kUnknown (budget exhaustion) is never cached: it is a property of
//     the *run*, not the formula. Callers must also not consult the cache
//     under a limited per-check budget — a cached definite verdict could
//     mask a budget-dependent kUnknown and make the degraded-coverage
//     split scheduling-dependent (see Engine::ExplorationContext).
//   * Keys cover the engine's preconditions too: every exploration's
//     signature starts from the precondition signature base, so a verdict
//     is a property of the *full* asserted formula — portable across
//     engines with different preconditions and across runs, as long as
//     they share one ir::Context (pointer identity is the canonical form).
//
// Thread safety: lock-sharded by signature hash, like ir::ExprArena.
// Workers of one parallel exploration share a cache; which shard warms an
// entry first is scheduling-dependent, but by the argument above only the
// hit/miss *counters* vary — never a verdict.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "ir/expr.hpp"
#include "smt/solver.hpp"

namespace meissa::smt {

// Commutative 128-bit signature of a set of conjunct pointers. The
// default-constructed value is the signature of the empty set (a check
// with no path conditions yet, e.g. the precondition precheck).
struct PathSig {
  uint64_t lo = 0;
  uint64_t hi = 0;
  bool operator==(const PathSig& o) const noexcept {
    return lo == o.lo && hi == o.hi;
  }
};

class PathCondCache {
 public:
  // `max_entries` bounds memory: once full, new results are no longer
  // recorded (lookups still hit; nothing is evicted). 0 = unbounded.
  explicit PathCondCache(size_t max_entries = size_t{1} << 20)
      : max_entries_(max_entries) {}
  PathCondCache(const PathCondCache&) = delete;
  PathCondCache& operator=(const PathCondCache&) = delete;

  // Signature of `s`'s set extended by / shrunk by `cond`. Callers own the
  // distinctness contract: extend() when `cond` *enters* the set (was not
  // on the stack), retract() when it *leaves* (last occurrence popped).
  // retract(extend(s, c), c) == s, and extension order never matters.
  static PathSig extend(PathSig s, ir::ExprRef cond) noexcept;
  static PathSig retract(PathSig s, ir::ExprRef cond) noexcept;

  // True on hit; `*out` then holds the cached verdict (kSat or kUnsat).
  bool lookup(const PathSig& key, CheckResult* out) const;

  // Records a definite verdict. kUnknown is ignored (see header comment).
  void insert(const PathSig& key, CheckResult verdict);

  // Cached verdicts (O(#shards) mutex hops; for stats and tests, not hot
  // paths).
  size_t size() const;

 private:
  struct SigHash {
    size_t operator()(const PathSig& s) const noexcept;
  };
  static constexpr size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<PathSig, CheckResult, SigHash> map;
  };

  size_t per_shard_cap() const noexcept {
    return max_entries_ == 0 ? 0 : max_entries_ / kShards + 1;
  }

  std::array<Shard, kShards> shards_;
  size_t max_entries_;
};

}  // namespace meissa::smt
