#include "smt/domain.hpp"

#include <algorithm>

namespace meissa::smt {

namespace {
constexpr int kPickAttempts = 128;

// Mask covering bit positions [0, h] inclusive.
constexpr uint64_t mask_upto(int h) noexcept {
  return h >= 63 ? ~uint64_t{0} : ((uint64_t{1} << (h + 1)) - 1);
}
}  // namespace

void Domain::require_masked_eq(uint64_t mask, uint64_t value) {
  mask = util::truncate(mask, width_);
  value = util::truncate(value, width_);
  if ((value & ~mask) != 0) {
    // (f & m) always has zero bits outside m; equality is impossible.
    contradictory_ = true;
    return;
  }
  // Bits forced by both the existing pattern and the new one must agree.
  uint64_t both = forced_mask_ & mask;
  if ((forced_val_ & both) != (value & both)) {
    contradictory_ = true;
    return;
  }
  forced_mask_ |= mask;
  forced_val_ |= value;
}

void Domain::require_masked_ne(uint64_t mask, uint64_t value) {
  mask = util::truncate(mask, width_);
  value = util::truncate(value, width_);
  if ((value & ~mask) != 0) return;  // trivially true: f&m never equals value
  if (mask == 0) {
    // (f & 0) != 0 is unsatisfiable.
    contradictory_ = true;
    return;
  }
  if ((forced_mask_ & mask) == mask && (forced_val_ & mask) == value) {
    // Every bit of `mask` is already forced to match `value`: the
    // exclusion empties the domain. Detecting this here (rather than in
    // pick_value's search) lets implication queries conclude without a
    // witness hunt.
    contradictory_ = true;
    return;
  }
  excluded_.push_back({mask, value});
}

void Domain::require_value_set(const std::vector<uint64_t>& values) {
  std::vector<uint64_t> v;
  for (uint64_t x : values) v.push_back(util::truncate(x, width_));
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  if (!has_allowed_) {
    has_allowed_ = true;
    allowed_ = std::move(v);
  } else {
    std::vector<uint64_t> inter;
    std::set_intersection(allowed_.begin(), allowed_.end(), v.begin(), v.end(),
                          std::back_inserter(inter));
    allowed_ = std::move(inter);
  }
  if (allowed_.empty()) contradictory_ = true;
}

void Domain::require_ge(uint64_t lo) {
  lo = util::truncate(lo, width_);
  if (lo > lo_) lo_ = lo;
  if (lo_ > hi_) contradictory_ = true;
}

void Domain::require_le(uint64_t hi) {
  hi = util::truncate(hi, width_);
  if (hi < hi_) hi_ = hi;
  if (lo_ > hi_) contradictory_ = true;
}

void Domain::require_gt(uint64_t v) {
  v = util::truncate(v, width_);
  if (v == util::mask_bits(width_)) {
    contradictory_ = true;
    return;
  }
  require_ge(v + 1);
}

void Domain::require_lt(uint64_t v) {
  v = util::truncate(v, width_);
  if (v == 0) {
    contradictory_ = true;
    return;
  }
  require_le(v - 1);
}

std::optional<uint64_t> Domain::next_forced_match(uint64_t from) const {
  if (from > util::mask_bits(width_)) return std::nullopt;
  if ((from & forced_mask_) == forced_val_) return from;
  // Highest bit where `from` disagrees with the forced pattern.
  uint64_t diff = (from & forced_mask_) ^ forced_val_;
  int h = 63;
  while (!util::bit_at(diff, h)) --h;
  if (util::bit_at(forced_val_, h)) {
    // The forced bit raises the value at h: adopt the pattern at h and
    // below (free bits cleared), keep the agreeing bits above h.
    uint64_t v = (from & ~mask_upto(h)) | (forced_val_ & mask_upto(h));
    return v;
  }
  // The forced bit lowers the value at h: must strictly increase some free
  // bit above h that is currently 0, then minimize everything below it.
  for (int j = h + 1; j < width_; ++j) {
    if (!util::bit_at(forced_mask_, j) && !util::bit_at(from, j)) {
      uint64_t v = (from & ~mask_upto(j)) | (uint64_t{1} << j) |
                   (forced_val_ & mask_upto(j));
      return v;
    }
  }
  return std::nullopt;  // no matching value above `from`
}

std::optional<uint64_t> Domain::pick_value(bool& decided) const {
  decided = true;
  if (contradictory_) return std::nullopt;
  auto satisfies_rest = [&](uint64_t v) {
    if (v < lo_ || v > hi_) return false;
    if ((v & forced_mask_) != forced_val_) return false;
    for (const MaskedNe& ne : excluded_) {
      if ((v & ne.mask) == ne.value) return false;
    }
    return true;
  };
  if (has_allowed_) {
    for (uint64_t v : allowed_) {
      if (satisfies_rest(v)) return v;
    }
    return std::nullopt;
  }
  std::optional<uint64_t> v = next_forced_match(lo_);
  for (int attempt = 0; attempt < kPickAttempts; ++attempt) {
    if (!v || *v > hi_) return std::nullopt;
    bool ok = true;
    for (const MaskedNe& ne : excluded_) {
      if ((*v & ne.mask) == ne.value) {
        ok = false;
        break;
      }
    }
    if (ok) return v;
    if (*v == util::mask_bits(width_)) return std::nullopt;
    v = next_forced_match(*v + 1);
  }
  decided = false;  // budget exhausted; caller must use the SAT core
  return std::nullopt;
}

}  // namespace meissa::smt
