#include "smt/bitblast.hpp"

#include "util/error.hpp"

namespace meissa::smt {

using ir::ExprKind;

Lit BitBlaster::gate_and(Lit a, Lit b) {
  if (a == lit_false() || b == lit_false()) return lit_false();
  if (a == lit_true()) return b;
  if (b == lit_true()) return a;
  if (a == b) return a;
  if (a == ~b) return lit_false();
  Lit r = fresh();
  sat_.add_binary(~r, a);
  sat_.add_binary(~r, b);
  sat_.add_ternary(r, ~a, ~b);
  return r;
}

Lit BitBlaster::gate_or(Lit a, Lit b) { return ~gate_and(~a, ~b); }

Lit BitBlaster::gate_xor(Lit a, Lit b) {
  if (a == lit_false()) return b;
  if (b == lit_false()) return a;
  if (a == lit_true()) return ~b;
  if (b == lit_true()) return ~a;
  if (a == b) return lit_false();
  if (a == ~b) return lit_true();
  Lit r = fresh();
  sat_.add_ternary(~r, a, b);
  sat_.add_ternary(~r, ~a, ~b);
  sat_.add_ternary(r, ~a, b);
  sat_.add_ternary(r, a, ~b);
  return r;
}

Lit BitBlaster::gate_mux(Lit sel, Lit t, Lit f) {
  if (sel == lit_true()) return t;
  if (sel == lit_false()) return f;
  if (t == f) return t;
  Lit r = fresh();
  sat_.add_ternary(~sel, ~t, r);
  sat_.add_ternary(~sel, t, ~r);
  sat_.add_ternary(sel, ~f, r);
  sat_.add_ternary(sel, f, ~r);
  return r;
}

Lit BitBlaster::gate_big_and(const std::vector<Lit>& xs) {
  Lit acc = lit_true();
  for (Lit x : xs) acc = gate_and(acc, x);
  return acc;
}

Lit BitBlaster::gate_big_or(const std::vector<Lit>& xs) {
  Lit acc = lit_false();
  for (Lit x : xs) acc = gate_or(acc, x);
  return acc;
}

const std::vector<Lit>& BitBlaster::field_bits(ir::FieldId f, int width) {
  auto it = fields_.find(f);
  if (it != fields_.end()) return it->second;
  std::vector<Lit> bits;
  bits.reserve(static_cast<size_t>(width));
  for (int i = 0; i < width; ++i) bits.push_back(fresh());
  return fields_.emplace(f, std::move(bits)).first->second;
}

uint64_t BitBlaster::model_value(ir::FieldId f) const {
  auto it = fields_.find(f);
  util::check(it != fields_.end(), "model_value: unknown field");
  uint64_t v = 0;
  for (size_t i = 0; i < it->second.size(); ++i) {
    Lit l = it->second[i];
    bool bit = sat_.model_value(l.var()) != l.sign();
    if (bit) v |= uint64_t{1} << i;
  }
  return v;
}

std::vector<Lit> BitBlaster::add_vec(const std::vector<Lit>& a,
                                     const std::vector<Lit>& b, Lit carry_in) {
  util::check(a.size() == b.size(), "add_vec: width mismatch");
  std::vector<Lit> sum(a.size());
  Lit carry = carry_in;
  for (size_t i = 0; i < a.size(); ++i) {
    Lit axb = gate_xor(a[i], b[i]);
    sum[i] = gate_xor(axb, carry);
    // carry' = (a & b) | (carry & (a ^ b))
    carry = gate_or(gate_and(a[i], b[i]), gate_and(carry, axb));
  }
  return sum;
}

std::vector<Lit> BitBlaster::negate_vec(const std::vector<Lit>& a) {
  std::vector<Lit> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = ~a[i];
  return out;
}

std::vector<Lit> BitBlaster::mul_vec(const std::vector<Lit>& a,
                                     const std::vector<Lit>& b) {
  const size_t w = a.size();
  std::vector<Lit> acc(w, lit_false());
  for (size_t i = 0; i < w; ++i) {
    // acc += (b << i) & replicate(a[i])
    std::vector<Lit> addend(w, lit_false());
    for (size_t j = i; j < w; ++j) addend[j] = gate_and(a[i], b[j - i]);
    acc = add_vec(acc, addend, lit_false());
  }
  return acc;
}

std::vector<Lit> BitBlaster::shift_vec(const std::vector<Lit>& a,
                                       const std::vector<Lit>& amount,
                                       bool left) {
  const size_t w = a.size();
  std::vector<Lit> cur = a;
  // Barrel shifter over the low log2(w) amount bits.
  size_t stages = 0;
  while ((size_t{1} << stages) < w) ++stages;
  for (size_t s = 0; s < stages && s < amount.size(); ++s) {
    const size_t k = size_t{1} << s;
    std::vector<Lit> next(w);
    for (size_t i = 0; i < w; ++i) {
      Lit shifted;
      if (left) {
        shifted = i >= k ? cur[i - k] : lit_false();
      } else {
        shifted = i + k < w ? cur[i + k] : lit_false();
      }
      next[i] = gate_mux(amount[s], shifted, cur[i]);
    }
    cur = std::move(next);
  }
  // Any higher amount bit set => shift >= width => zero result.
  Lit overflow = lit_false();
  for (size_t s = stages; s < amount.size(); ++s) {
    overflow = gate_or(overflow, amount[s]);
  }
  if (!(overflow == lit_false())) {
    for (size_t i = 0; i < w; ++i) {
      cur[i] = gate_and(cur[i], ~overflow);
    }
  }
  return cur;
}

Lit BitBlaster::ult(const std::vector<Lit>& a, const std::vector<Lit>& b) {
  util::check(a.size() == b.size(), "ult: width mismatch");
  Lit lt = lit_false();
  for (size_t i = 0; i < a.size(); ++i) {
    // From LSB to MSB: lt = (¬a_i & b_i) | ((a_i == b_i) & lt)
    Lit bit_lt = gate_and(~a[i], b[i]);
    Lit bit_eq = gate_iff(a[i], b[i]);
    lt = gate_or(bit_lt, gate_and(bit_eq, lt));
  }
  return lt;
}

Lit BitBlaster::veq(const std::vector<Lit>& a, const std::vector<Lit>& b) {
  util::check(a.size() == b.size(), "veq: width mismatch");
  Lit acc = lit_true();
  for (size_t i = 0; i < a.size(); ++i) {
    acc = gate_and(acc, gate_iff(a[i], b[i]));
  }
  return acc;
}

std::vector<Lit> BitBlaster::blast_vec(ir::ExprRef e) {
  util::check(!e->is_bool(), "blast_vec: arithmetic expression required");
  auto it = vec_cache_.find(e);
  if (it != vec_cache_.end()) return it->second;

  std::vector<Lit> out;
  switch (e->kind) {
    case ExprKind::kConst: {
      out.resize(static_cast<size_t>(e->width));
      for (int i = 0; i < e->width; ++i) {
        out[static_cast<size_t>(i)] =
            util::bit_at(e->value, i) ? lit_true() : lit_false();
      }
      break;
    }
    case ExprKind::kField:
      out = field_bits(e->field, e->width);
      break;
    case ExprKind::kArith: {
      std::vector<Lit> a = blast_vec(e->lhs);
      std::vector<Lit> b = blast_vec(e->rhs);
      switch (e->arith_op()) {
        case ir::ArithOp::kAdd:
          out = add_vec(a, b, lit_false());
          break;
        case ir::ArithOp::kSub:
          out = add_vec(a, negate_vec(b), lit_true());
          break;
        case ir::ArithOp::kMul:
          out = mul_vec(a, b);
          break;
        case ir::ArithOp::kAnd:
          out.resize(a.size());
          for (size_t i = 0; i < a.size(); ++i) out[i] = gate_and(a[i], b[i]);
          break;
        case ir::ArithOp::kOr:
          out.resize(a.size());
          for (size_t i = 0; i < a.size(); ++i) out[i] = gate_or(a[i], b[i]);
          break;
        case ir::ArithOp::kXor:
          out.resize(a.size());
          for (size_t i = 0; i < a.size(); ++i) out[i] = gate_xor(a[i], b[i]);
          break;
        case ir::ArithOp::kShl:
          out = shift_vec(a, b, /*left=*/true);
          break;
        case ir::ArithOp::kShr:
          out = shift_vec(a, b, /*left=*/false);
          break;
      }
      break;
    }
    default:
      throw util::InternalError("blast_vec: unexpected expression kind");
  }
  vec_cache_.emplace(e, out);
  return out;
}

Lit BitBlaster::blast_bool(ir::ExprRef e) {
  util::check(e->is_bool(), "blast_bool: boolean expression required");
  auto it = bool_cache_.find(e);
  if (it != bool_cache_.end()) return it->second;

  Lit out = lit_false();
  switch (e->kind) {
    case ExprKind::kBoolConst:
      out = e->value ? lit_true() : lit_false();
      break;
    case ExprKind::kCmp: {
      std::vector<Lit> a = blast_vec(e->lhs);
      std::vector<Lit> b = blast_vec(e->rhs);
      switch (e->cmp_op()) {
        case ir::CmpOp::kEq: out = veq(a, b); break;
        case ir::CmpOp::kNe: out = ~veq(a, b); break;
        case ir::CmpOp::kLt: out = ult(a, b); break;
        case ir::CmpOp::kGt: out = ult(b, a); break;
        case ir::CmpOp::kLe: out = ~ult(b, a); break;
        case ir::CmpOp::kGe: out = ~ult(a, b); break;
      }
      break;
    }
    case ExprKind::kBool: {
      Lit a = blast_bool(e->lhs);
      Lit b = blast_bool(e->rhs);
      out = e->bool_op() == ir::BoolOp::kAnd ? gate_and(a, b) : gate_or(a, b);
      break;
    }
    case ExprKind::kNot:
      out = ~blast_bool(e->lhs);
      break;
    default:
      throw util::InternalError("blast_bool: unexpected expression kind");
  }
  bool_cache_.emplace(e, out);
  return out;
}

void BitBlaster::maybe_epoch_clear(size_t max_entries) {
  if (max_entries == 0 || cache_entries() <= max_entries) return;
  bool_cache_.clear();
  vec_cache_.clear();
  ++epochs_;
}

}  // namespace meissa::smt
