// A CDCL SAT solver — the propositional core of Meissa's bit-vector solver.
//
// Classic MiniSat-style architecture: two-watched-literal propagation,
// first-UIP conflict analysis with clause learning, VSIDS-style activity
// decision heuristic with phase saving, and Luby restarts. Solving under
// assumptions provides the incremental push/pop interface the symbolic
// executor needs (paper §3.2: the solver "reuses intermediate results from
// previous invocations since most constraints stay the same" — here the
// reused state is the learned-clause database and saved phases).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace meissa::smt {

// A literal is a variable index with a sign bit: lit = 2*var + (negated?1:0).
struct Lit {
  uint32_t x = 0;

  static Lit make(uint32_t var, bool negated) noexcept {
    return Lit{(var << 1) | (negated ? 1u : 0u)};
  }
  uint32_t var() const noexcept { return x >> 1; }
  bool sign() const noexcept { return x & 1u; }  // true == negated
  Lit operator~() const noexcept { return Lit{x ^ 1u}; }
  bool operator==(const Lit& o) const noexcept { return x == o.x; }
  bool operator!=(const Lit& o) const noexcept { return x != o.x; }
};

enum class LBool : uint8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

// Verdict of a resource-limited solve: kUnknown means the limits were
// exhausted before a decision; the solver backtracks to the root and stays
// fully usable (later solves may still answer).
enum class SolveStatus : uint8_t { kSat, kUnsat, kUnknown };

// Per-solve resource limits (all zero / unset = unlimited). Conflicts and
// propagations are counted within the one solve call; the deadline is an
// absolute point checked at conflict boundaries and periodically during
// long propagation runs.
struct ResourceLimits {
  uint64_t max_conflicts = 0;
  uint64_t max_propagations = 0;
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};

  bool unlimited() const noexcept {
    return max_conflicts == 0 && max_propagations == 0 && !has_deadline;
  }
};

class SatSolver {
 public:
  SatSolver();

  // Allocates a fresh variable and returns its index.
  uint32_t new_var();
  uint32_t num_vars() const noexcept { return static_cast<uint32_t>(assign_.size()); }

  // A literal that is always true (variable 0, fixed by construction).
  Lit true_lit() const noexcept { return Lit::make(0, false); }

  // Adds a clause (permanently). Returns false when the solver becomes
  // trivially unsatisfiable (empty clause / conflicting units at level 0).
  bool add_clause(std::vector<Lit> lits);
  bool add_unit(Lit a) { return add_clause({a}); }
  bool add_binary(Lit a, Lit b) { return add_clause({a, b}); }
  bool add_ternary(Lit a, Lit b, Lit c) { return add_clause({a, b, c}); }

  // Solves under the given assumptions. Returns true iff satisfiable.
  bool solve(const std::vector<Lit>& assumptions);

  // Solves under the given assumptions and resource limits. With default
  // limits this is exactly solve(). On kUnknown the solver has backtracked
  // to the root level and remains consistent for further use.
  SolveStatus solve_limited(const std::vector<Lit>& assumptions,
                            const ResourceLimits& limits);

  // Value of `var` in the model found by the last successful solve().
  bool model_value(uint32_t var) const;

  // Cumulative statistics (monotonically increasing across solve calls).
  struct Stats {
    uint64_t solves = 0;
    uint64_t conflicts = 0;
    uint64_t decisions = 0;
    uint64_t propagations = 0;
    uint64_t learned = 0;
    uint64_t restarts = 0;
    // reduce_learnts invocations, and the clauses they dropped split by
    // why: low activity vs. permanently satisfied at level 0 (the garbage
    // a retired push/pop selector leaves behind).
    uint64_t reduces = 0;
    uint64_t removed_low_activity = 0;
    uint64_t removed_satisfied = 0;
  };
  const Stats& stats() const noexcept { return stats_; }

  // Learned clauses currently in the database (not cumulative). Drives the
  // reduce_learnts cadence; exposed so tests can pin it to the real count.
  uint32_t num_learned() const noexcept { return num_learned_; }
  // Learned clauses actually present in the clause database — O(clauses).
  // Test-only invariant probe for the num_learned() bookkeeping.
  size_t learned_in_db() const noexcept {
    size_t n = 0;
    for (const Clause& c : clauses_) n += c.learned ? 1 : 0;
    return n;
  }

  // Learned-clause reduction cadence: a reduction is considered once the
  // database holds more than `threshold` learned clauses (default 8192).
  // After each reduction the threshold grows by half, so clauses learned
  // early in a long incremental shard stay warm instead of being churned
  // at a fixed cap. Tests use a tiny threshold to force reductions.
  void set_reduce_threshold(uint32_t threshold) noexcept {
    reduce_threshold_ = threshold;
  }
  uint32_t reduce_threshold() const noexcept { return reduce_threshold_; }

 private:
  struct Clause {
    uint32_t start;  // index into literal pool
    uint32_t size;
    bool learned;
    double activity;
  };
  using ClauseRef = uint32_t;
  static constexpr ClauseRef kNoReason = ~ClauseRef{0};
  static constexpr ClauseRef kAssumptionReason = kNoReason - 1;

  struct Watcher {
    ClauseRef clause;
    Lit blocker;
  };

  LBool value(Lit l) const noexcept {
    LBool v = assign_[l.var()];
    if (v == LBool::kUndef) return LBool::kUndef;
    return (v == LBool::kTrue) != l.sign() ? LBool::kTrue : LBool::kFalse;
  }

  void enqueue(Lit l, ClauseRef reason);
  ClauseRef propagate();
  // Indexed max-heap over variable activity (the VSIDS order).
  void heap_insert(uint32_t v);
  void heap_sift_up(size_t i);
  void heap_sift_down(size_t i);
  bool heap_less(uint32_t a, uint32_t b) const {
    return activity_[a] < activity_[b];
  }
  void analyze(ClauseRef conflict, std::vector<Lit>& learnt, int& bt_level);
  void backtrack(int level);
  void bump_var(uint32_t v);
  void decay_activities();
  uint32_t pick_branch_var();
  void attach_clause(ClauseRef cr);
  void reduce_learnts();
  Lit* clause_lits(ClauseRef cr) { return pool_.data() + clauses_[cr].start; }
  const Lit* clause_lits(ClauseRef cr) const {
    return pool_.data() + clauses_[cr].start;
  }

  // Assignment state.
  std::vector<LBool> assign_;
  std::vector<int> level_;
  std::vector<ClauseRef> reason_;
  std::vector<Lit> trail_;
  std::vector<uint32_t> trail_lim_;  // decision-level boundaries in trail_
  uint32_t qhead_ = 0;

  // Clause database.
  std::vector<Lit> pool_;
  std::vector<Clause> clauses_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by literal
  uint32_t num_learned_ = 0;
  uint32_t reduce_threshold_ = 8192;

  // Heuristics.
  std::vector<double> activity_;
  std::vector<bool> phase_;
  std::vector<uint32_t> heap_;      // variable order heap (max-activity)
  std::vector<int32_t> heap_pos_;   // position in heap_, -1 if absent
  double var_inc_ = 1.0;
  std::vector<bool> seen_;  // scratch for analyze()

  bool unsat_ = false;  // level-0 contradiction discovered
  std::vector<Lit> last_assumptions_;  // for trail reuse across solves
  Stats stats_;
};

}  // namespace meissa::smt
