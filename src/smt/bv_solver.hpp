// Meissa's own incremental bit-vector solver (see solver.hpp).
#pragma once

#include <memory>
#include <vector>

#include "smt/bitblast.hpp"
#include "smt/domain.hpp"
#include "smt/sat.hpp"
#include "smt/solver.hpp"

namespace meissa::smt {

class BvSolver final : public Solver {
 public:
  explicit BvSolver(ir::Context& ctx);

  void push() override;
  void pop() override;
  void add(ir::ExprRef bexp) override;
  CheckResult check() override;
  Model model() override;
  void set_budget(const Budget& budget) override { budget_ = budget; }
  const SolverStats& stats() const override { return stats_; }

  // Underlying SAT statistics (exposed for the micro benchmarks).
  const SatSolver::Stats& sat_stats() const { return sat_.stats(); }

 private:
  // One decomposed per-field atom: (field & mask) op constant (mask is
  // all-ones for pure comparisons), or — when `set` is non-empty — a
  // same-field value-set disjunction (f == v1 || f == v2 || ...).
  struct Atom {
    ir::FieldId field;
    int width;
    ir::CmpOp op;
    uint64_t mask;
    uint64_t value;
    std::vector<uint64_t> set;
  };

  // Recognizes Or-trees whose leaves are `field == const` on one field.
  static bool as_value_set(ir::ExprRef e, ir::FieldId& field, int& width,
                           std::vector<uint64_t>& values);

  // Walks the conjunction structure of `e`, extracting single-field atoms.
  // Returns false when parts of `e` do not fit the atom shape (the
  // extracted atoms are still sound conjuncts).
  bool decompose(ir::ExprRef e, std::vector<Atom>& atoms) const;

  // Attempts the pure-domain decision procedure.
  CheckResult try_fast_path();

  // check() minus the observability wrapper.
  CheckResult check_impl();

  void blast_pending();

  struct Scope {
    std::vector<ir::ExprRef> asserts;
    size_t next_unblasted = 0;
    Lit selector{0};
    bool has_selector = false;
  };

  ir::Context& ctx_;
  SatSolver sat_;
  BitBlaster blaster_;
  std::vector<Scope> scopes_;
  SolverStats stats_;
  Budget budget_;
  Model model_;
  bool model_from_fast_path_ = false;
};

}  // namespace meissa::smt
