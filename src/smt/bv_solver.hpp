// Meissa's own incremental bit-vector solver (see solver.hpp).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "smt/bitblast.hpp"
#include "smt/domain.hpp"
#include "smt/sat.hpp"
#include "smt/solver.hpp"

namespace meissa::smt {

class BvSolver final : public Solver {
 public:
  explicit BvSolver(ir::Context& ctx);

  void push() override;
  void pop() override;
  void add(ir::ExprRef bexp) override;
  CheckResult check() override;
  Model model() override;
  void set_budget(const Budget& budget) override { budget_ = budget; }
  void set_region(uint64_t region) override { region_ = region; }
  void set_portfolio(bool on) override { portfolio_ = on; }
  const SolverStats& stats() const override { return stats_; }

  // Underlying SAT statistics (exposed for the micro benchmarks).
  const SatSolver::Stats& sat_stats() const { return sat_.stats(); }

  // Caps the bit-blaster's memoization caches (0 = unbounded); they are
  // epoch-cleared between blasts once past the cap. Tests use tiny caps.
  void set_blast_cache_cap(size_t cap) { blast_cache_cap_ = cap; }
  size_t blast_cache_entries() const { return blaster_.cache_entries(); }

  // Forces every check through bit-blasting (fast path never consulted).
  // Differential-testing hook; not part of the Solver interface.
  void set_force_blast(bool on) { force_blast_ = on; }

  // Per-region portfolio win counters, summed over regions (tests/report).
  uint64_t portfolio_fast_wins() const;
  uint64_t portfolio_sat_wins() const;

 private:
  // One decomposed per-field atom: (field & mask) op constant (mask is
  // all-ones for pure comparisons), or — when `set` is non-empty — a
  // same-field value-set disjunction (f == v1 || f == v2 || ...).
  struct Atom {
    ir::FieldId field;
    int width;
    ir::CmpOp op;
    uint64_t mask;
    uint64_t value;
    std::vector<uint64_t> set;
  };

  // Recognizes Or-trees whose leaves are `field == const` on one field.
  static bool as_value_set(ir::ExprRef e, ir::FieldId& field, int& width,
                           std::vector<uint64_t>& values);

  // Walks the conjunction structure of `e`, extracting single-field atoms.
  // Returns false when parts of `e` do not fit the atom shape (the
  // extracted atoms are still sound conjuncts).
  bool decompose(ir::ExprRef e, std::vector<Atom>& atoms) const;

  // Attempts the pure-domain decision procedure.
  CheckResult try_fast_path();

  // Bandit decision: should this check attempt the fast path first?
  bool should_try_fast_path();

  // check() minus the observability wrapper.
  CheckResult check_impl();

  void blast_pending();

  struct Scope {
    std::vector<ir::ExprRef> asserts;
    size_t next_unblasted = 0;
    Lit selector{0};
    bool has_selector = false;
  };

  ir::Context& ctx_;
  SatSolver sat_;
  BitBlaster blaster_;
  std::vector<Scope> scopes_;
  SolverStats stats_;
  Budget budget_;
  Model model_;
  bool model_from_fast_path_ = false;

  // Adaptive per-check portfolio (see check_impl). Counters live in the
  // solver instance — one solver per exploration shard — so the learned
  // policy is a pure function of that shard's own check sequence and the
  // outcome is identical across thread counts.
  struct RegionArm {
    uint32_t tries = 0;   // checks that attempted the fast path
    uint32_t wins = 0;    // ... that it decided (kSat/kUnsat)
    uint32_t skips = 0;   // checks routed straight to the SAT core
  };
  bool portfolio_ = false;
  bool force_blast_ = false;
  uint64_t region_ = 0;
  std::unordered_map<uint64_t, RegionArm> arms_;
  size_t blast_cache_cap_ = size_t{1} << 20;
};

}  // namespace meissa::smt
