// Single-field value domains — the solver's theory-level fast path.
//
// Path conditions produced by data-plane programs are overwhelmingly
// conjunctions of per-field atoms: exact matches (f == c), ternary matches
// ((f & m) == v), LPM prefixes, range checks (lo <= f <= hi) and negations
// of higher-priority entries (f != c). A Domain tracks, per field, the
// forced bit pattern, an unsigned interval, and small exclusion lists, and
// can decide emptiness and produce a witness without touching the SAT core.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/bits.hpp"

namespace meissa::smt {

class Domain {
 public:
  explicit Domain(int width)
      : width_(width), hi_(util::mask_bits(width)) {}

  int width() const noexcept { return width_; }
  bool contradictory() const noexcept { return contradictory_; }

  // Conjoins (f & mask) == value. An exact match is mask == all-ones.
  void require_masked_eq(uint64_t mask, uint64_t value);
  // Conjoins (f & mask) != value.
  void require_masked_ne(uint64_t mask, uint64_t value);
  // Conjoins f IN {values} (e.g. a merged per-packet-type pre-condition).
  void require_value_set(const std::vector<uint64_t>& values);
  // Conjoins f >= lo / f <= hi.
  void require_ge(uint64_t lo);
  void require_le(uint64_t hi);
  void require_gt(uint64_t v);
  void require_lt(uint64_t v);

  // Finds the smallest value satisfying every recorded constraint, or
  // nullopt when the domain is empty or the search exceeded its attempt
  // budget (callers must then fall back to the SAT core).
  //
  // `decided` is set to false only in the budget-exceeded case.
  std::optional<uint64_t> pick_value(bool& decided) const;

 private:
  // Smallest v >= from with (v & forced_mask_) == forced_val_, or nullopt.
  std::optional<uint64_t> next_forced_match(uint64_t from) const;

  int width_;
  bool contradictory_ = false;
  uint64_t forced_mask_ = 0;
  uint64_t forced_val_ = 0;
  uint64_t lo_ = 0;
  uint64_t hi_;
  bool has_allowed_ = false;
  std::vector<uint64_t> allowed_;  // sorted, deduped
  struct MaskedNe {
    uint64_t mask;
    uint64_t value;
  };
  std::vector<MaskedNe> excluded_;
};

}  // namespace meissa::smt
