// Gauntlet-style survival analysis over a ground-truth bug corpus
// (DESIGN.md "Bug injection & survival analysis"): every variant is run
// through the full detection stack, lane by lane, and the report records
// which lane saw it first, how much work that took, and which variants
// survived everything.
//
// Lanes, in first-detector precedence order (cheapest evidence first):
//
//   lint    analysis/lint over the *mutated* program's CFG, diffed against
//           the clean baseline — a detection is a diagnostic the original
//           program does not produce. Blind to toolchain faults (the
//           source program is unchanged) by design.
//   verify  summary translation validation (analysis/validate): the only
//           lane that can see kSummary variants — a refuted obligation is
//           the detection. Optionally run on every variant (verify_all),
//           where it documents that program bugs summarize soundly.
//   engine  the Meissa symbolic lane: the *intended* program is the model,
//           the buggy compile is the device, and any failed case is a
//           detection — the paper's headline pipeline.
//   fuzz    the greybox differential lane: buggy device vs clean
//           reference, corpus seeded from the engine's templates; a
//           divergence is a detection and its execution index the latency.
//
// Determinism: lanes run sequentially per variant in corpus order, all
// randomness flows from SurvivalOptions::seed, and to_json contains no
// wall-clock values.
#pragma once

#include "apps/corpus.hpp"

namespace meissa::apps::survival {

enum class Detector : uint8_t { kLint, kVerify, kEngine, kFuzz, kNone };
inline constexpr int kNumDetectors = 4;  // excluding kNone

const char* detector_name(Detector d) noexcept;

struct VariantOutcome {
  uint32_t variant = 0;  // BugVariant::id
  std::string vid;
  corpus::MutationKind kind = corpus::MutationKind::kGuardOffByOne;
  bool code_bug = true;
  bool confirmed = false;  // had a replayable witness in the corpus
  // Per-lane verdicts; false also covers "lane not run for this variant".
  bool lint = false;
  bool verify = false;
  bool engine = false;
  bool fuzz = false;
  Detector first = Detector::kNone;
  // First-class timeout verdict, per lane: the lane hit its deadline
  // (SurvivalOptions::lane_deadline_ms) before reaching a detection. A
  // lane that detected *before* the deadline tripped keeps its detection;
  // a timed-out non-detection is distinguishable from a genuine miss.
  bool timeout[kNumDetectors] = {};
  // Deterministic latency proxies: the engine's first failing case id
  // (cases run when it never failed) and the fuzz lane's execution index
  // of the first divergence (total execs when none).
  uint64_t engine_cases = 0;
  uint64_t fuzz_execs = 0;
  std::string detail;  // one-line evidence from the first detector
};

struct SurvivalOptions {
  uint64_t seed = 1;
  int threads = 0;  // engine generation threads (deterministic at any value)
  bool run_lint = true;
  bool run_verify = true;
  bool run_engine = true;
  bool run_fuzz = true;
  // Run the verify lane on non-summary variants too (slow; documents that
  // program-level bugs pass translation validation).
  bool verify_all = false;
  uint64_t fuzz_execs = 4096;  // fuzz budget per variant
  size_t fuzz_seeds = 64;      // template seeds handed to the fuzzer
  // Cap on the engine lane's generated templates (0 = unlimited). The
  // lane re-concretizes its whole case set against every buggy device,
  // so at evaluation sizes an uncapped run is quadratic-feeling; the
  // bench bounds this.
  size_t engine_max_templates = 0;
  // Per-lane wall-clock deadline in milliseconds (0 = unlimited). The
  // engine and fuzz lanes run under a watchdog whose trip cancels them
  // cooperatively; lint and verify (single monolithic calls) are
  // classified post hoc. A lane that times out without detecting records
  // a "timeout" verdict instead of counting as a survival-by-silence.
  uint64_t lane_deadline_ms = 0;
};

struct SurvivalReport {
  std::string app;
  uint64_t seed = 1;
  std::vector<VariantOutcome> outcomes;
  uint64_t total = 0;
  uint64_t detected = 0;  // by at least one lane
  uint64_t survived = 0;
  uint64_t first_by[kNumDetectors] = {};  // first-detector counts
  uint64_t lane_detected[kNumDetectors] = {};  // per-lane totals
  uint64_t lane_timeouts[kNumDetectors] = {};  // deadline trips per lane

  double detection_rate() const noexcept {
    return total ? static_cast<double>(detected) / static_cast<double>(total)
                 : 0.0;
  }
  // Human-readable report: aggregate block, first-detector breakdown,
  // per-mutation-kind detection table, fuzz-latency survival curve, and
  // the surviving variants by vid.
  std::string render_text() const;
  // Deterministic JSON (stable key order, no wall-clock).
  std::string to_json() const;
};

// Runs the stack over `c`. `app` is the bundle the corpus was generated
// from (model + reference + intents for variants without their own
// reference); pass nullptr for the legacy corpus, whose variants carry
// their intended bundles. Also feeds the `gauntlet.*` metrics.
SurvivalReport run_survival(const corpus::BugCorpus& c, const AppBundle* app,
                            const SurvivalOptions& opts = {});

}  // namespace meissa::apps::survival
