// Shared helpers for generating random-but-reproducible rule sets
// (the paper's "We generate random table rule sets for Router, mTag, ACL
// and switch.p4", §5.1).
#pragma once

#include "p4/rules.hpp"
#include "util/rng.hpp"

namespace meissa::apps {

// Random values shaped like real identifiers.
uint64_t random_ipv4(util::Rng& rng);
uint64_t random_mac(util::Rng& rng);
// A /len prefix value whose host bits are zero.
uint64_t random_prefix(util::Rng& rng, int len);

}  // namespace meissa::apps
