#include "apps/table2.hpp"

#include <array>

#include "sim/toolchain.hpp"

namespace meissa::apps {

namespace {

bool frontend_fault(const sim::FaultSpec& f) {
  return f.kind == sim::FaultKind::kParserSkipSelect ||
         f.kind == sim::FaultKind::kMaskFoldBug;
}

}  // namespace

Table2Row evaluate_bug(ir::Context& ctx, const BugScenario& bug,
                       double budget_seconds) {
  Table2Row row;
  row.index = bug.index;
  row.name = bug.name;
  row.code_bug = bug.code_bug;

  const p4::DataPlane& dp = bug.bundle.dp;

  // ---------------- Meissa: per-sub-case testing (paper §6 workflow) -----
  {
    sim::DeviceProgram compiled =
        sim::compile(dp, bug.bundle.rules, ctx, bug.fault);
    sim::Device device(compiled, ctx);
    // One run without assumptions (full coverage)...
    driver::TestRunOptions opts;
    driver::Meissa meissa(ctx, dp, bug.bundle.rules, opts);
    driver::TestReport report = meissa.test(device, bug.bundle.intents);
    bool detected = report.failed > 0;
    // ...plus one run per intent with its assumes as base constraints
    // (the NAT sub-case workflow), catching rule-coverage bugs.
    for (const spec::Intent& intent : bug.bundle.intents) {
      if (detected) break;
      driver::TestRunOptions sub;
      sub.gen.assumes = intent.assumes;
      driver::Meissa scoped(ctx, dp, bug.bundle.rules, sub);
      driver::TestReport r = scoped.test(device, {intent});
      detected |= r.failed > 0;
    }
    row.meissa = detected;
  }

  // ---------------- p4pktgen: bmv2-style testbed ------------------------
  {
    sim::FaultSpec f = frontend_fault(bug.fault) ? bug.fault : sim::FaultSpec{};
    p4::RuleSet empty;
    empty.name = "testbed-default";
    baselines::BaselineResult r;
    try {
      sim::DeviceProgram compiled = sim::compile(dp, empty, ctx, f);
      sim::Device device(compiled, ctx);
      baselines::P4pktgenOptions opts;
      opts.time_budget_seconds = budget_seconds;
      r = baselines::run_p4pktgen(ctx, dp, empty, &device, opts);
    } catch (const util::Error&) {
      r.supported = false;
    }
    row.p4pktgen = r.bug_detected();
    if (!r.supported) row.notes += "p4pktgen: " + r.unsupported_reason + "; ";
  }

  // ---------------- PTA: handwritten unit tests -------------------------
  {
    sim::DeviceProgram compiled =
        sim::compile(dp, bug.bundle.rules, ctx, bug.fault);
    sim::Device device(compiled, ctx);
    std::vector<baselines::PtaCase> cases;
    for (size_t i = 0; i < bug.pta_inputs.size(); ++i) {
      baselines::PtaCase c;
      c.input = bug.pta_inputs[i].first;
      c.expect_drop = bug.pta_inputs[i].second;
      c.expect_port = bug.pta_expect[i].first;
      c.expect_bytes = bug.pta_expect[i].second;
      cases.push_back(std::move(c));
    }
    baselines::BaselineResult r =
        baselines::run_pta(cases, bug.bundle.p4_14, &device);
    row.pta = r.bug_detected();
    if (!r.supported) row.notes += "PTA: " + r.unsupported_reason + "; ";
  }

  // ---------------- Gauntlet: model-based differential ------------------
  {
    baselines::BaselineResult r;
    try {
      sim::DeviceProgram compiled =
          sim::compile(dp, bug.bundle.rules, ctx, bug.fault);
      sim::Device device(compiled, ctx);
      baselines::GauntletOptions opts;
      opts.time_budget_seconds = budget_seconds;
      r = baselines::run_gauntlet(ctx, dp, bug.bundle.rules, &device, opts);
    } catch (const util::Error&) {
      r.supported = false;
    }
    row.gauntlet = r.bug_detected();
    if (!r.supported) row.notes += "Gauntlet: " + r.unsupported_reason + "; ";
  }

  // ---------------- Aquila: verification --------------------------------
  {
    baselines::AquilaOptions opts;
    opts.time_budget_seconds = budget_seconds;
    baselines::BaselineResult r = baselines::run_aquila(
        ctx, dp, bug.bundle.rules, bug.bundle.intents, opts);
    row.aquila = r.bug_detected();
  }
  return row;
}

std::array<bool, 5> paper_matrix(int index) {
  // Columns: Meissa, p4pktgen, PTA, Gauntlet, Aquila (paper Table 2).
  switch (index) {
    case 1:  return {true, false, false, false, true};
    case 2:  return {true, false, false, false, true};
    case 3:  return {true, true, true, true, true};
    case 4:  return {true, true, true, true, true};
    case 5:  return {true, false, true, false, true};
    case 6:  return {true, false, false, false, false};
    case 7:  return {true, true, false, true, false};
    case 8:  return {true, true, false, true, false};
    case 9:  return {true, false, false, true, false};
    case 10: return {true, false, false, true, false};
    case 11: return {true, false, false, true, false};
    default: return {true, false, false, false, false};  // 12-16
  }
}

}  // namespace meissa::apps
