#include "apps/protocols.hpp"

namespace meissa::apps {

p4::HeaderDef eth_header() {
  return {"eth", {{"dst", 48}, {"src", 48}, {"type", 16}}};
}

p4::HeaderDef ipv4_header(std::string name) {
  return {std::move(name),
          {{"ver_ihl", 8},
           {"dscp", 6},
           {"ecn", 2},
           {"len", 16},
           {"id", 16},
           {"frag", 16},
           {"ttl", 8},
           {"proto", 8},
           {"csum", 16},
           {"src", 32},
           {"dst", 32}}};
}

p4::HeaderDef tcp_header(std::string name) {
  return {std::move(name),
          {{"sport", 16},
           {"dport", 16},
           {"seqno", 32},
           {"ackno", 32},
           {"flags", 16},
           {"window", 16},
           {"csum", 16},
           {"urgent", 16}}};
}

p4::HeaderDef udp_header(std::string name) {
  return {std::move(name),
          {{"sport", 16}, {"dport", 16}, {"len", 16}, {"csum", 16}}};
}

p4::HeaderDef vxlan_header() {
  return {"vxlan", {{"flags", 8}, {"rsvd1", 24}, {"vni", 24}, {"rsvd2", 8}}};
}

p4::HeaderDef mtag_header() {
  return {"mtag",
          {{"up1", 8}, {"up2", 8}, {"down1", 8}, {"down2", 8}, {"type", 16}}};
}

p4::HeaderDef mpls_header() {
  return {"mpls", {{"label", 20}, {"tc", 3}, {"bos", 1}, {"ttl", 8}}};
}

p4::HeaderDef prop_header() {
  // Proprietary gateway metadata header (flow class, tenant, sequence).
  return {"prop",
          {{"magic", 16}, {"flow_class", 8}, {"tenant", 24}, {"seq", 16}}};
}

std::vector<p4::ParserState> l3l4_parser(const std::string& on_other) {
  p4::ParserState start;
  start.name = "start";
  start.extracts = {"eth"};
  start.select_field = "hdr.eth.type";
  start.cases = {{kEthIpv4, 0xffff, "parse_ipv4"}};
  start.default_next = on_other;

  p4::ParserState ipv4;
  ipv4.name = "parse_ipv4";
  ipv4.extracts = {"ipv4"};
  ipv4.select_field = "hdr.ipv4.proto";
  ipv4.cases = {{kProtoTcp, 0xff, "parse_tcp"},
                {kProtoUdp, 0xff, "parse_udp"}};
  ipv4.default_next = "accept";

  p4::ParserState tcp;
  tcp.name = "parse_tcp";
  tcp.extracts = {"tcp"};
  tcp.default_next = "accept";

  p4::ParserState udp;
  udp.name = "parse_udp";
  udp.extracts = {"udp"};
  udp.default_next = "accept";

  return {start, ipv4, tcp, udp};
}

std::vector<p4::ParserState> tunnel_parser(bool parse_inner_tcp,
                                           bool with_prop) {
  p4::ParserState start;
  start.name = "start";
  start.extracts = {"eth"};
  start.select_field = "hdr.eth.type";
  start.cases = {{kEthIpv4, 0xffff, "parse_ipv4"}};
  if (with_prop) start.cases.push_back({kEthProp, 0xffff, "parse_prop"});
  start.default_next = "reject";

  p4::ParserState ipv4;
  ipv4.name = "parse_ipv4";
  ipv4.extracts = {"ipv4"};
  ipv4.select_field = "hdr.ipv4.proto";
  ipv4.cases = {{kProtoUdp, 0xff, "parse_udp"},
                {kProtoTcp, 0xff, "parse_tcp"}};
  ipv4.default_next = "accept";

  p4::ParserState tcp;
  tcp.name = "parse_tcp";
  tcp.extracts = {"tcp"};
  tcp.default_next = "accept";

  p4::ParserState udp;
  udp.name = "parse_udp";
  udp.extracts = {"udp"};
  udp.select_field = "hdr.udp.dport";
  udp.cases = {{kUdpVxlan, 0xffff, "parse_vxlan"}};
  udp.default_next = "accept";

  p4::ParserState vxlan;
  vxlan.name = "parse_vxlan";
  vxlan.extracts = {"vxlan"};
  vxlan.default_next = "parse_inner_ipv4";

  p4::ParserState inner_ipv4;
  inner_ipv4.name = "parse_inner_ipv4";
  inner_ipv4.extracts = {"inner_ipv4"};
  if (parse_inner_tcp) {
    inner_ipv4.select_field = "hdr.inner_ipv4.proto";
    inner_ipv4.cases = {{kProtoTcp, 0xff, "parse_inner_tcp"}};
  }
  inner_ipv4.default_next = "accept";

  std::vector<p4::ParserState> states = {start, ipv4, tcp, udp, vxlan,
                                         inner_ipv4};
  if (with_prop) {
    // prop.magic carries the original ethertype (an ethertype chain). A
    // transit header wrapping anything but IPv4 is malformed: reject it
    // rather than accept with no L3 header (downstream pipes match on
    // ipv4 fields unconditionally).
    p4::ParserState prop;
    prop.name = "parse_prop";
    prop.extracts = {"prop"};
    prop.select_field = "hdr.prop.magic";
    prop.cases = {{kEthIpv4, 0xffff, "parse_ipv4"}};
    prop.default_next = "reject";
    states.push_back(prop);
  }
  if (parse_inner_tcp) {
    p4::ParserState inner_tcp;
    inner_tcp.name = "parse_inner_tcp";
    inner_tcp.extracts = {"inner_tcp"};
    inner_tcp.default_next = "accept";
    states.push_back(inner_tcp);
  }
  return states;
}

p4::ChecksumUpdate ipv4_checksum(std::string header) {
  p4::ChecksumUpdate u;
  u.dest = p4::content_field(header, "csum");
  u.guard_header = header;
  u.algo = p4::HashAlgo::kCsum16;
  for (const char* f : {"ver_ihl", "dscp", "ecn", "len", "id", "frag", "ttl",
                        "proto", "src", "dst"}) {
    u.sources.push_back(p4::content_field(header, f));
  }
  return u;
}

p4::ChecksumUpdate l4_checksum(const std::string& ip, const std::string& l4) {
  p4::ChecksumUpdate u;
  u.dest = p4::content_field(l4, "csum");
  u.guard_header = l4;
  u.algo = p4::HashAlgo::kCsum16;
  u.sources = {p4::content_field(ip, "src"), p4::content_field(ip, "dst"),
               p4::content_field(ip, "proto"), p4::content_field(l4, "sport"),
               p4::content_field(l4, "dport")};
  return u;
}

}  // namespace meissa::apps
