// The Table 2 harness: runs Meissa and the four baselines against each
// bug scenario, reproducing the detection matrix.
#pragma once

#include "apps/apps.hpp"
#include "baselines/baseline.hpp"

namespace meissa::apps {

struct Table2Row {
  int index = 0;
  std::string name;
  bool code_bug = true;
  bool meissa = false;
  bool p4pktgen = false;
  bool pta = false;
  bool gauntlet = false;
  bool aquila = false;
  std::string notes;
};

// Evaluates one scenario with all five tools. Each tool tests the
// artifact its real counterpart would see:
//   * Meissa, Gauntlet, PTA — the production compile (rule set + fault);
//   * p4pktgen — its own bmv2-style testbed: default rules, and only
//     frontend (p4c) faults, since it cannot target the vendor backend;
//   * Aquila — the source program + rules (verification; no device).
Table2Row evaluate_bug(ir::Context& ctx, const BugScenario& bug,
                       double budget_seconds = 60);

// The paper's expected matrix for row `index` (Meissa, p4pktgen, PTA,
// Gauntlet, Aquila) — used by tests and the bench printout.
std::array<bool, 5> paper_matrix(int index);

}  // namespace meissa::apps
