// Demo data planes (paper Fig. 7 / Fig. 8) shared by examples, benches
// and tests.
#pragma once

#include "p4/rules.hpp"

namespace meissa::apps::demos {

// Fig. 7: table ipv4_host (dstIP -> egressPort) chained into mac_agent
// (egressPort -> dstMAC); single pipeline.
p4::DataPlane make_fig7_plane(ir::Context& ctx);
p4::RuleSet fig7_rules(int n_hosts);

// Fig. 8: ingress routes TCP to the egress pipeline, whose TCP/UDP branch
// is filtered by the public pre-condition proto == TCP.
p4::DataPlane make_fig8_plane(ir::Context& ctx);
p4::RuleSet fig8_rules();

}  // namespace meissa::apps::demos
