// The program corpus of the evaluation (paper Table 1): open-source-style
// programs (Router, mTag, ACL, switch.p4) and production-style gateway
// programs (gw-1..gw-4), plus rule-set generators (random sets and the
// set-1..4 scaling family) and the 16-bug corpus of Table 2.
#pragma once

#include "driver/tester.hpp"
#include "p4/rules.hpp"
#include "sim/fault.hpp"
#include "spec/intent.hpp"
#include "util/rng.hpp"

namespace meissa::apps {

// A complete unit of evaluation: program + layout + rules + intents.
struct AppBundle {
  std::string name;
  p4::DataPlane dp;
  p4::RuleSet rules;
  std::vector<spec::Intent> intents;
  bool p4_14 = false;  // PTA supports only P4-14-era programs
};

// ----------------------------------------------------------- open source

// "A simple router based on switch.p4 that only contains layer-3 routing."
AppBundle make_router(ir::Context& ctx, int n_routes, uint64_t seed = 1);

// "mTag-edge that inserts and removes tags in switches attached to hosts."
AppBundle make_mtag(ir::Context& ctx, int n_hosts, uint64_t seed = 2);

// "ACL filtering on dst_addr, src_addr and ECN, based on Router."
AppBundle make_acl(ir::Context& ctx, int n_routes, int n_acls,
                   uint64_t seed = 3);

// "Multifunctional data plane program, including L2 switching, L3 routing,
// ECMP, tunnel, ACLs, MPLS, etc."
struct SwitchP4Config {
  int l2_hosts = 16;
  int routes = 16;
  int ecmp_ways = 4;
  int acls = 8;
  int mpls_labels = 8;
  uint64_t seed = 4;
};
AppBundle make_switchp4(ir::Context& ctx, const SwitchP4Config& cfg = {});

// ------------------------------------------------------------ production

// Production-style gateway family. `level` selects the Table 1 row:
//   1: single-pipe VXLAN gateway          (gw-1)
//   2: ingress+egress, VXLAN+ACL+routing  (gw-2)
//   3: 4 pipes, proprietary proto + switch pipes (gw-3)
//   4: 8 pipes across 2 switches (Fig. 1) (gw-4)
// `elastic_ips` scales the rule sets: the paper's set-k family doubles it
// per step (set-1 = base, set-4 = 8x).
struct GwConfig {
  int level = 1;
  int elastic_ips = 8;
  uint64_t seed = 5;
};
AppBundle make_gateway(ir::Context& ctx, const GwConfig& cfg);

// Rule-set scaling family for Figures 10/12: set-1..set-4.
int elastic_ips_for_set(int set_index, int base = 8);  // set_index 1..4

// ------------------------------------------------------------ bug corpus

// One Table 2 scenario: a (possibly misprogrammed) bundle plus a
// (possibly non-trivial) toolchain fault, with the handwritten PTA unit
// tests an engineer would have had for it.
struct BugScenario {
  int index = 0;  // Table 2 row
  std::string name;
  bool code_bug = true;
  AppBundle bundle;
  sim::FaultSpec fault;  // kNone for code bugs
  // Handwritten unit tests (PTA input): built against the *intended*
  // behaviour; empty when engineers had no suite (or PTA is unsupported).
  std::vector<std::pair<sim::DeviceInput, bool /*expect_drop*/>> pta_inputs;
  // Expected outputs for those inputs, computed against the intended
  // (bug-free) variant of the program.
  std::vector<std::pair<uint64_t /*port*/, std::vector<uint8_t>>> pta_expect;
};

// Builds scenario `index` in 1..16 (Table 2 rows).
BugScenario make_bug(ir::Context& ctx, int index);
inline constexpr int kNumBugs = 16;

// The *intended* (bug-free) variant of scenario `index`: for code bugs the
// corrected program/rules, for toolchain bugs the same bundle (compiled
// without the fault). The fuzz lane's divergence oracle runs this as the
// reference device.
AppBundle make_bug_intended(ir::Context& ctx, int index);

}  // namespace meissa::apps
