// Demonstration data planes used by examples, micro benches, and tests:
// the paper's Fig. 7 workload (chained tables) and Fig. 8 shape (two
// pipelines with a public pre-condition between them).
#include "apps/demos.hpp"

#include "apps/protocols.hpp"

namespace meissa::apps::demos {

using p4::ActionDef;
using p4::ActionOp;
using p4::ControlStmt;
using p4::KeyMatch;
using p4::MatchKind;
using p4::ParserState;
using p4::PipelineDef;
using p4::TableDef;
using p4::TableEntry;



namespace {

std::vector<p4::FieldDef> eth_fields() {
  return {{"dst", 48}, {"src", 48}, {"type", 16}};
}

std::vector<p4::FieldDef> ipv4_fields() {
  return {{"ver_ihl", 8}, {"tos", 8},   {"len", 16},  {"id", 16},
          {"frag", 16},   {"ttl", 8},   {"proto", 8}, {"csum", 16},
          {"src", 32},    {"dst", 32}};
}



}  // namespace

p4::DataPlane make_fig7_plane(ir::Context& ctx) {
  p4::ProgramBuilder b(ctx, "fig7");
  b.header("eth", eth_fields());
  b.header("ipv4", ipv4_fields());

  ActionDef set_port;
  set_port.name = "set_port";
  set_port.params = {{"port", p4::kPortWidth}};
  set_port.ops = {ActionOp::assign(
      std::string(p4::kEgressSpec), b.arg("set_port", "port", p4::kPortWidth))};
  b.action(set_port);

  ActionDef set_dmac;
  set_dmac.name = "set_dmac";
  set_dmac.params = {{"mac", 48}};
  set_dmac.ops = {
      ActionOp::assign("hdr.eth.dst", b.arg("set_dmac", "mac", 48))};
  b.action(set_dmac);

  ActionDef drop;
  drop.name = "drop";
  drop.ops = {ActionOp::assign(std::string(p4::kDropFlag), b.num(1, 1))};
  b.action(drop);

  ActionDef nop;
  nop.name = "nop";
  b.action(nop);

  TableDef ipv4_host;
  ipv4_host.name = "ipv4_host";
  ipv4_host.keys = {{"hdr.ipv4.dst", MatchKind::kExact}};
  ipv4_host.actions = {"set_port", "drop"};
  ipv4_host.default_action = "drop";
  b.table(ipv4_host);

  TableDef mac_agent;
  mac_agent.name = "mac_agent";
  mac_agent.keys = {{std::string(p4::kEgressSpec), MatchKind::kExact}};
  mac_agent.actions = {"set_dmac", "nop"};
  mac_agent.default_action = "nop";
  b.table(mac_agent);

  PipelineDef p;
  p.name = "pipe";
  p.parser.start = "start";
  ParserState start;
  start.name = "start";
  start.extracts = {"eth"};
  start.select_field = "hdr.eth.type";
  start.cases = {{0x0800, 0xffff, "parse_ipv4"}};
  start.default_next = "accept";
  ParserState parse_ipv4;
  parse_ipv4.name = "parse_ipv4";
  parse_ipv4.extracts = {"ipv4"};
  parse_ipv4.default_next = "accept";
  p.parser.states = {start, parse_ipv4};
  p.control.stmts = {ControlStmt::if_else(
      b.is_valid("ipv4"),
      {{ControlStmt::apply("ipv4_host"), ControlStmt::apply("mac_agent")}})};
  p.deparser.emit_order = {"eth", "ipv4"};
  b.pipeline(p);

  p4::DataPlane dp;
  dp.program = b.build();
  dp.topology.instances = {{"sw0.p0", "pipe", 0}};
  dp.topology.entries = {{"sw0.p0", nullptr}};
  return dp;
}

p4::RuleSet fig7_rules(int n_hosts) {
  p4::RuleSet rules;
  rules.name = "fig7-" + std::to_string(n_hosts);
  for (int i = 0; i < n_hosts; ++i) {
    TableEntry host;
    host.table = "ipv4_host";
    host.matches = {KeyMatch::exact(0x0a000000u + static_cast<uint64_t>(i))};
    host.action = "set_port";
    host.args = {static_cast<uint64_t>(i + 1)};
    rules.add(host);
    TableEntry mac;
    mac.table = "mac_agent";
    mac.matches = {KeyMatch::exact(static_cast<uint64_t>(i + 1))};
    mac.action = "set_dmac";
    mac.args = {0xaa0000000000ull + static_cast<uint64_t>(i)};
    rules.add(mac);
  }
  return rules;
}

p4::DataPlane make_fig8_plane(ir::Context& ctx) {
  p4::ProgramBuilder b(ctx, "fig8");
  b.header("eth", eth_fields());
  b.header("ipv4", ipv4_fields());
  b.header("tcp", {{"sport", 16}, {"dport", 16}, {"rest", 32}});
  b.header("udp", {{"sport", 16}, {"dport", 16}, {"len", 16}, {"csum", 16}});
  b.metadata_field("meta.l4_kind", 8);

  ActionDef set_port;
  set_port.name = "set_port";
  set_port.params = {{"port", p4::kPortWidth}};
  set_port.ops = {ActionOp::assign(
      std::string(p4::kEgressSpec), b.arg("set_port", "port", p4::kPortWidth))};
  b.action(set_port);

  ActionDef drop;
  drop.name = "drop";
  drop.ops = {ActionOp::assign(std::string(p4::kDropFlag), b.num(1, 1))};
  b.action(drop);

  ActionDef mark_tcp;
  mark_tcp.name = "mark_tcp";
  mark_tcp.ops = {ActionOp::assign("meta.l4_kind", b.num(6, 8))};
  b.action(mark_tcp);

  ActionDef mark_udp;
  mark_udp.name = "mark_udp";
  mark_udp.ops = {ActionOp::assign("meta.l4_kind", b.num(17, 8))};
  b.action(mark_udp);

  TableDef l4_route;
  l4_route.name = "l4_route";
  l4_route.keys = {{"hdr.ipv4.proto", MatchKind::kExact}};
  l4_route.actions = {"set_port", "drop"};
  l4_route.default_action = "drop";
  b.table(l4_route);

  auto make_parser = [&]() {
    p4::Parser parser;
    parser.start = "start";
    ParserState start;
    start.name = "start";
    start.extracts = {"eth"};
    start.select_field = "hdr.eth.type";
    start.cases = {{0x0800, 0xffff, "parse_ipv4"}};
    start.default_next = "reject";
    ParserState parse_ipv4;
    parse_ipv4.name = "parse_ipv4";
    parse_ipv4.extracts = {"ipv4"};
    parse_ipv4.select_field = "hdr.ipv4.proto";
    parse_ipv4.cases = {{6, 0xff, "parse_tcp"}, {17, 0xff, "parse_udp"}};
    parse_ipv4.default_next = "accept";
    ParserState parse_tcp;
    parse_tcp.name = "parse_tcp";
    parse_tcp.extracts = {"tcp"};
    parse_tcp.default_next = "accept";
    ParserState parse_udp;
    parse_udp.name = "parse_udp";
    parse_udp.extracts = {"udp"};
    parse_udp.default_next = "accept";
    parser.states = {start, parse_ipv4, parse_tcp, parse_udp};
    return parser;
  };

  PipelineDef ig;
  ig.name = "ingress";
  ig.parser = make_parser();
  ig.control.stmts = {ControlStmt::apply("l4_route")};
  ig.deparser.emit_order = {"eth", "ipv4", "tcp", "udp"};
  b.pipeline(ig);

  PipelineDef eg;
  eg.name = "egress";
  eg.parser = make_parser();
  eg.control.stmts = {ControlStmt::if_else(
      b.is_valid("tcp"), {{ControlStmt::apply("tcp_or_udp_mark")}},
      {{ControlStmt::if_else(b.is_valid("udp"),
                             {{ControlStmt::apply("udp_mark")}})}})};
  eg.deparser.emit_order = {"eth", "ipv4", "tcp", "udp"};

  TableDef tcp_mark;
  tcp_mark.name = "tcp_or_udp_mark";
  tcp_mark.keys = {{"hdr.tcp.dport", MatchKind::kExact}};
  tcp_mark.actions = {"mark_tcp"};
  tcp_mark.default_action = "mark_tcp";
  b.table(tcp_mark);

  TableDef udp_mark;
  udp_mark.name = "udp_mark";
  udp_mark.keys = {{"hdr.udp.dport", MatchKind::kExact}};
  udp_mark.actions = {"mark_udp"};
  udp_mark.default_action = "mark_udp";
  b.table(udp_mark);

  b.pipeline(eg);

  p4::DataPlane dp;
  dp.program = b.build();
  dp.topology.instances = {{"sw0.ig", "ingress", 0}, {"sw0.eg", "egress", 0}};
  // TCP traffic (eg_spec == 1) continues to the egress pipeline.
  dp.topology.edges = {{"sw0.ig", "sw0.eg",
                        ctx.arena.cmp(ir::CmpOp::kEq,
                                      ctx.field_var(p4::kEgressSpec, 9),
                                      ctx.arena.constant(1, 9))}};
  dp.topology.entries = {{"sw0.ig", nullptr}};
  return dp;
}

p4::RuleSet fig8_rules() {
  p4::RuleSet rules;
  rules.name = "fig8";
  TableEntry tcp;
  tcp.table = "l4_route";
  tcp.matches = {KeyMatch::exact(6)};
  tcp.action = "set_port";
  tcp.args = {1};
  rules.add(tcp);
  // Port 443 marked specially (one concrete entry in the egress table).
  TableEntry mark;
  mark.table = "tcp_or_udp_mark";
  mark.matches = {KeyMatch::exact(443)};
  mark.action = "mark_tcp";
  mark.args = {};
  rules.add(mark);
  TableEntry umark;
  umark.table = "udp_mark";
  umark.matches = {KeyMatch::exact(53)};
  umark.action = "mark_udp";
  umark.args = {};
  rules.add(umark);
  return rules;
}


}  // namespace meissa::apps::demos
