// Standard protocol building blocks shared by the app corpus: header
// layouts (wire-accurate field widths) and parser-state templates.
#pragma once

#include "p4/program.hpp"

namespace meissa::apps {

// Ether types / protocol numbers used across the corpus.
inline constexpr uint64_t kEthIpv4 = 0x0800;
inline constexpr uint64_t kEthMtag = 0xaaaa;
inline constexpr uint64_t kEthMpls = 0x8847;
inline constexpr uint64_t kProtoTcp = 6;
inline constexpr uint64_t kProtoUdp = 17;
inline constexpr uint64_t kUdpVxlan = 4789;
inline constexpr uint64_t kEthProp = 0xa99a;  // proprietary transit header

// Header layouts. IPv4 splits tos into dscp/ecn so ACLs can match ECN.
p4::HeaderDef eth_header();
p4::HeaderDef ipv4_header(std::string name = "ipv4");
p4::HeaderDef tcp_header(std::string name = "tcp");
p4::HeaderDef udp_header(std::string name = "udp");
p4::HeaderDef vxlan_header();
p4::HeaderDef mtag_header();
p4::HeaderDef mpls_header();
// Proprietary gateway header (gw-3/gw-4 "proprietary protocols").
p4::HeaderDef prop_header();

// Parser fragments. Each returns states to append; the caller wires start.
// eth -> (ipv4 -> (tcp|udp)) with everything else going to `on_other`
// ("accept" or "reject").
std::vector<p4::ParserState> l3l4_parser(const std::string& on_other);

// Full tunnel parser: eth/ipv4/udp -> vxlan -> inner_ipv4 -> inner_tcp.
// `parse_inner_tcp` = false reproduces the bug-6 egress parser.
// `with_prop` adds the proprietary transit header (ethertype kEthProp,
// carrying the original ethertype in prop.magic).
std::vector<p4::ParserState> tunnel_parser(bool parse_inner_tcp,
                                           bool with_prop = false);

// The IPv4 header-checksum update (sources = all fields except csum).
p4::ChecksumUpdate ipv4_checksum(std::string header = "ipv4");

// An L4-over-IPv4 checksum update for `l4`.csum over addresses and ports
// (a simplified pseudo-header: enough to regress stale-checksum bugs).
p4::ChecksumUpdate l4_checksum(const std::string& ip, const std::string& l4);

}  // namespace meissa::apps
