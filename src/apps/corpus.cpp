#include "apps/corpus.hpp"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>

#include "analysis/validate.hpp"
#include "driver/sender.hpp"
#include "driver/tester.hpp"
#include "sim/toolchain.hpp"
#include "summary/summary.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace meissa::apps::corpus {

using analysis::InjectionSite;
using analysis::SiteKind;

const char* mutation_kind_name(MutationKind k) noexcept {
  switch (k) {
    case MutationKind::kGuardOffByOne: return "guard-off-by-one";
    case MutationKind::kGuardDropValidity: return "guard-drop-validity";
    case MutationKind::kParserValueBump: return "parser-value-bump";
    case MutationKind::kParserMaskTruncate: return "parser-mask-truncate";
    case MutationKind::kEntryMaskTruncate: return "entry-mask-truncate";
    case MutationKind::kEntryWrongAction: return "entry-wrong-action";
    case MutationKind::kRankInversion: return "rank-inversion";
    case MutationKind::kChecksumDropSource: return "checksum-drop-source";
    case MutationKind::kEmitSwap: return "emit-swap";
    case MutationKind::kRegisterSkew: return "register-skew";
    case MutationKind::kToolchain: return "toolchain";
    case MutationKind::kSummary: return "summary";
    case MutationKind::kLegacy: return "legacy";
  }
  return "?";
}

namespace {

// ------------------------------------------------- expression mutation

int count_constants(ir::ExprRef e) {
  if (!e) return 0;
  if (e->kind == ir::ExprKind::kConst) return 1;
  return count_constants(e->lhs) + count_constants(e->rhs);
}

// Rebuilds `e` with its n-th (pre-order) constant bumped by +1, width-
// truncated. `n` counts down; the result may equal `e` when the arena's
// folding cancels the change.
ir::ExprRef bump_nth_constant(ir::ExprArena& a, ir::ExprRef e, int& n) {
  if (!e) return e;
  switch (e->kind) {
    case ir::ExprKind::kConst:
      if (n-- == 0) {
        return a.constant(util::truncate(e->value + 1, e->width), e->width);
      }
      return e;
    case ir::ExprKind::kField:
    case ir::ExprKind::kBoolConst:
      return e;
    case ir::ExprKind::kArith: {
      ir::ExprRef l = bump_nth_constant(a, e->lhs, n);
      ir::ExprRef r = bump_nth_constant(a, e->rhs, n);
      return (l == e->lhs && r == e->rhs) ? e : a.arith(e->arith_op(), l, r);
    }
    case ir::ExprKind::kCmp: {
      ir::ExprRef l = bump_nth_constant(a, e->lhs, n);
      ir::ExprRef r = bump_nth_constant(a, e->rhs, n);
      return (l == e->lhs && r == e->rhs) ? e : a.cmp(e->cmp_op(), l, r);
    }
    case ir::ExprKind::kBool: {
      ir::ExprRef l = bump_nth_constant(a, e->lhs, n);
      ir::ExprRef r = bump_nth_constant(a, e->rhs, n);
      if (l == e->lhs && r == e->rhs) return e;
      return e->bool_op() == ir::BoolOp::kAnd ? a.band(l, r) : a.bor(l, r);
    }
    case ir::ExprKind::kNot: {
      ir::ExprRef l = bump_nth_constant(a, e->lhs, n);
      return l == e->lhs ? e : a.bnot(l);
    }
  }
  return e;
}

void collect_conjuncts(ir::ExprRef e, std::vector<ir::ExprRef>& out) {
  if (e->kind == ir::ExprKind::kBool &&
      e->bool_op() == ir::BoolOp::kAnd) {
    collect_conjuncts(e->lhs, out);
    collect_conjuncts(e->rhs, out);
    return;
  }
  out.push_back(e);
}

// `hdr.X.$valid == c` (either operand order) — the shape
// ProgramBuilder::is_valid produces at the program level.
bool is_validity_test(const ir::Context& ctx, ir::ExprRef e) {
  if (e->kind != ir::ExprKind::kCmp || e->cmp_op() != ir::CmpOp::kEq) {
    return false;
  }
  for (ir::ExprRef side : {e->lhs, e->rhs}) {
    if (side && side->kind == ir::ExprKind::kField &&
        util::ends_with(ctx.fields.name(side->field), ".$valid")) {
      return true;
    }
  }
  return false;
}

// ------------------------------------------------- program-IR locators

// The if-statement with pre-order ordinal `ord` — the same walk order the
// CFG builder assigns kIfGuard origins in (the if itself, then its then
// block, then its else block).
p4::ControlStmt* nth_if(p4::ControlBlock& b, int& ord) {
  for (p4::ControlStmt& s : b.stmts) {
    if (s.kind != p4::ControlStmt::Kind::kIf) continue;
    if (ord == 0) return &s;
    --ord;
    if (p4::ControlStmt* r = nth_if(s.then_block, ord)) return r;
    if (p4::ControlStmt* r = nth_if(s.else_block, ord)) return r;
  }
  return nullptr;
}

p4::PipelineDef* find_pipeline(p4::DataPlane& dp, const std::string& name) {
  for (p4::PipelineDef& p : dp.program.pipelines) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

p4::ActionDef* find_action(p4::DataPlane& dp, const std::string& name) {
  for (p4::ActionDef& a : dp.program.actions) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

// Raw RuleSet::entries index of the entry at `ordered_pos` in the match
// order of `table`, or -1.
int raw_entry_index(const p4::RuleSet& rules, const p4::TableDef& table,
                    int32_t ordered_pos) {
  std::vector<const p4::TableEntry*> ordered = rules.ordered_entries(table);
  if (ordered_pos < 0 || static_cast<size_t>(ordered_pos) >= ordered.size()) {
    return -1;
  }
  return static_cast<int>(ordered[ordered_pos] - rules.entries.data());
}

// ------------------------------------------------- candidate mutations

// One materialized mutation: the rewritten program (or the original plus a
// toolchain fault) and a description of what changed.
struct Candidate {
  MutationKind kind = MutationKind::kGuardOffByOne;
  int k = 0;  // sub-index within (site, kind), for the vid suffix
  p4::DataPlane dp;
  p4::RuleSet rules;
  sim::FaultSpec fault;
  std::string summary_fault;
  std::string description;
  bool code_bug = true;
};

void guard_candidates(ir::Context& ctx, const AppBundle& app,
                      const InjectionSite& site, size_t max_per_site,
                      std::vector<Candidate>& out) {
  const p4::PipelineDef* def_src =
      app.dp.program.find_pipeline(site.ref);
  if (!def_src) return;
  // Locate the guard once on the original to plan, then re-locate on each
  // candidate's copy to apply.
  int ord = site.index;
  p4::ControlStmt* probe =
      nth_if(const_cast<p4::PipelineDef*>(def_src)->control, ord);
  if (!probe || !probe->cond) return;
  ir::ExprRef guard = probe->cond;

  const int n_consts = count_constants(guard);
  const int bumps =
      std::min<int>(n_consts, static_cast<int>(max_per_site));
  for (int k = 0; k < bumps; ++k) {
    int n = k;
    ir::ExprRef mutated = bump_nth_constant(ctx.arena, guard, n);
    if (mutated == guard) continue;
    Candidate c;
    c.kind = MutationKind::kGuardOffByOne;
    c.k = k;
    c.dp = app.dp;
    c.rules = app.rules;
    p4::PipelineDef* def = find_pipeline(c.dp, site.ref);
    int o = site.index;
    p4::ControlStmt* s = nth_if(def->control, o);
    s->cond = mutated;
    c.description = "if #" + std::to_string(site.index) + " of pipeline '" +
                    site.ref + "': constant #" + std::to_string(k) +
                    " bumped by one";
    out.push_back(std::move(c));
  }

  std::vector<ir::ExprRef> conj;
  collect_conjuncts(guard, conj);
  for (size_t i = 0; i < conj.size(); ++i) {
    if (!is_validity_test(ctx, conj[i])) continue;
    std::vector<ir::ExprRef> rest;
    for (size_t j = 0; j < conj.size(); ++j) {
      if (j != i) rest.push_back(conj[j]);
    }
    Candidate c;
    c.kind = MutationKind::kGuardDropValidity;
    c.dp = app.dp;
    c.rules = app.rules;
    p4::PipelineDef* def = find_pipeline(c.dp, site.ref);
    int o = site.index;
    p4::ControlStmt* s = nth_if(def->control, o);
    s->cond = rest.empty() ? ctx.arena.bool_const(true)
                           : ctx.arena.all_of(rest);
    c.description = "if #" + std::to_string(site.index) + " of pipeline '" +
                    site.ref + "': validity conjunct dropped";
    out.push_back(std::move(c));
    break;  // one dropped-validity variant per guard
  }
}

void parser_candidates(const AppBundle& app, const InjectionSite& site,
                       std::vector<Candidate>& out) {
  const p4::PipelineDef* def = app.dp.program.find_pipeline(site.pipeline);
  if (!def) return;
  const p4::ParserState* st = def->parser.find_state(site.ref);
  if (!st || site.index < 0 ||
      static_cast<size_t>(site.index) >= st->cases.size()) {
    return;
  }
  const p4::ParserTransition& tr = st->cases[site.index];

  auto locate = [&](Candidate& c) -> p4::ParserTransition* {
    p4::PipelineDef* d = find_pipeline(c.dp, site.pipeline);
    for (p4::ParserState& s : d->parser.states) {
      if (s.name == site.ref) return &s.cases[site.index];
    }
    return nullptr;
  };

  if (tr.mask != 0) {
    const uint64_t low_bit = tr.mask & (~tr.mask + 1);
    Candidate c;
    c.kind = MutationKind::kParserValueBump;
    c.dp = app.dp;
    c.rules = app.rules;
    locate(c)->value = tr.value ^ low_bit;
    c.description = "parser state '" + site.ref + "' case #" +
                    std::to_string(site.index) + ": select value bit " +
                    util::hex(low_bit) + " flipped";
    out.push_back(std::move(c));

    Candidate m;
    m.kind = MutationKind::kParserMaskTruncate;
    m.dp = app.dp;
    m.rules = app.rules;
    locate(m)->mask = tr.mask & (tr.mask - 1);
    m.description = "parser state '" + site.ref + "' case #" +
                    std::to_string(site.index) + ": select mask bit " +
                    util::hex(low_bit) + " cleared";
    out.push_back(std::move(m));
  }
}

void entry_candidates(const AppBundle& app, const InjectionSite& site,
                      size_t max_per_site, std::vector<Candidate>& out) {
  const p4::TableDef* td = app.dp.program.find_table(site.ref);
  if (!td) return;
  const int raw = raw_entry_index(app.rules, *td, site.index);
  if (raw < 0) return;
  const p4::TableEntry& entry = app.rules.entries[raw];

  // Per-key match-space mutations, at most max_per_site.
  size_t emitted = 0;
  for (size_t j = 0; j < td->keys.size() && emitted < max_per_site; ++j) {
    if (j >= entry.matches.size()) break;
    const p4::KeyMatch& km = entry.matches[j];
    const int width =
        app.dp.program.field_width(td->keys[j].field).value_or(64);
    Candidate c;
    c.kind = MutationKind::kEntryMaskTruncate;
    c.k = static_cast<int>(emitted);
    std::string what;
    p4::KeyMatch nm = km;
    switch (td->keys[j].kind) {
      case p4::MatchKind::kLpm:
        if (km.prefix_len <= 0) continue;
        nm.prefix_len = km.prefix_len - 1;
        what = "lpm prefix shortened to /" + std::to_string(nm.prefix_len);
        break;
      case p4::MatchKind::kTernary:
        if (km.mask == 0) continue;
        nm.mask = km.mask & (km.mask - 1);
        what = "ternary mask truncated to " + util::hex(nm.mask);
        break;
      case p4::MatchKind::kExact:
        nm.value = util::truncate(km.value + 1, width);
        what = "exact value bumped to " + util::hex(nm.value);
        break;
      case p4::MatchKind::kRange:
        if (!util::truncate(km.hi + 1, width)) continue;  // already max
        nm.hi = km.hi + 1;
        what = "range widened to hi=" + util::hex(nm.hi);
        break;
    }
    c.dp = app.dp;
    c.rules = app.rules;
    c.rules.entries[raw].matches[j] = nm;
    c.description = "table '" + site.ref + "' entry #" +
                    std::to_string(site.index) + " key '" +
                    td->keys[j].field + "': " + what;
    out.push_back(std::move(c));
    ++emitted;
  }

  // Wrong-action substitution: the first permitted action whose parameter
  // list can take the entry's existing arguments (or none at all).
  const p4::ActionDef* cur = app.dp.program.find_action(entry.action);
  for (const std::string& name : td->actions) {
    if (name == entry.action) continue;
    const p4::ActionDef* ad = app.dp.program.find_action(name);
    if (!ad) continue;
    bool args_fit = cur && ad->params.size() == entry.args.size();
    if (args_fit) {
      for (size_t i = 0; i < entry.args.size(); ++i) {
        if (util::truncate(entry.args[i], ad->params[i].width) !=
            entry.args[i]) {
          args_fit = false;
          break;
        }
      }
    }
    if (!args_fit && !ad->params.empty()) continue;
    Candidate c;
    c.kind = MutationKind::kEntryWrongAction;
    c.dp = app.dp;
    c.rules = app.rules;
    c.rules.entries[raw].action = name;
    if (!args_fit) c.rules.entries[raw].args.clear();
    c.description = "table '" + site.ref + "' entry #" +
                    std::to_string(site.index) + ": action '" +
                    entry.action + "' replaced with '" + name + "'";
    out.push_back(std::move(c));
    break;
  }
}

void rank_candidates(const AppBundle& app, const InjectionSite& site,
                     std::vector<Candidate>& out) {
  const p4::TableDef* td = app.dp.program.find_table(site.ref);
  if (!td) return;
  const int raw_a = raw_entry_index(app.rules, *td, site.index);
  const int raw_b = raw_entry_index(app.rules, *td, site.entry_b);
  if (raw_a < 0 || raw_b < 0 || raw_a == raw_b) return;
  Candidate c;
  c.kind = MutationKind::kRankInversion;
  c.dp = app.dp;
  c.rules = app.rules;
  if (site.sub == 0) {
    std::swap(c.rules.entries[raw_a].priority,
              c.rules.entries[raw_b].priority);
    c.description = "table '" + site.ref + "' entries #" +
                    std::to_string(site.index) + "/#" +
                    std::to_string(site.entry_b) + ": priorities swapped";
  } else {
    std::swap(c.rules.entries[raw_a], c.rules.entries[raw_b]);
    c.description = "table '" + site.ref + "' entries #" +
                    std::to_string(site.index) + "/#" +
                    std::to_string(site.entry_b) + ": install order swapped";
  }
  out.push_back(std::move(c));
}

void checksum_candidates(const AppBundle& app, const InjectionSite& site,
                         std::vector<Candidate>& out) {
  const p4::PipelineDef* def = app.dp.program.find_pipeline(site.pipeline);
  if (!def || site.index < 0 ||
      static_cast<size_t>(site.index) >=
          def->deparser.checksum_updates.size()) {
    return;
  }
  const p4::ChecksumUpdate& u = def->deparser.checksum_updates[site.index];
  if (u.dest != site.ref || u.sources.size() < 2) return;
  Candidate c;
  c.kind = MutationKind::kChecksumDropSource;
  c.dp = app.dp;
  c.rules = app.rules;
  p4::PipelineDef* d = find_pipeline(c.dp, site.pipeline);
  d->deparser.checksum_updates[site.index].sources.pop_back();
  c.description = "checksum update #" + std::to_string(site.index) +
                  " of pipeline '" + site.pipeline + "' (dest '" + site.ref +
                  "'): source '" + u.sources.back() + "' dropped";
  out.push_back(std::move(c));
}

void emit_candidates(const AppBundle& app, const InjectionSite& site,
                     std::vector<Candidate>& out) {
  const p4::PipelineDef* def = app.dp.program.find_pipeline(site.ref);
  if (!def || site.index < 0 ||
      static_cast<size_t>(site.index) + 1 >=
          def->deparser.emit_order.size()) {
    return;
  }
  Candidate c;
  c.kind = MutationKind::kEmitSwap;
  c.dp = app.dp;
  c.rules = app.rules;
  p4::PipelineDef* d = find_pipeline(c.dp, site.ref);
  std::swap(d->deparser.emit_order[site.index],
            d->deparser.emit_order[site.index + 1]);
  c.description = "pipeline '" + site.ref + "' deparser: emit slots #" +
                  std::to_string(site.index) + " ('" +
                  def->deparser.emit_order[site.index] + "') and #" +
                  std::to_string(site.index + 1) + " ('" +
                  def->deparser.emit_order[site.index + 1] + "') swapped";
  out.push_back(std::move(c));
}

void register_candidates(ir::Context& ctx, const AppBundle& app,
                         const InjectionSite& site,
                         std::vector<Candidate>& out) {
  const std::string& cell = site.field;
  const size_t pos_at = cell.rfind("-POS:");
  if (!util::starts_with(cell, "REG:") || pos_at == std::string::npos) return;
  const std::string reg = cell.substr(4, pos_at - 4);
  const uint64_t idx =
      std::strtoull(cell.c_str() + pos_at + 5, nullptr, 10);
  auto declared = [&](const std::string& name) {
    for (const p4::FieldDef& r : app.dp.program.registers) {
      if (r.name == name) return true;
    }
    return false;
  };
  std::string skewed = p4::register_field(reg, idx + 1);
  if (!declared(skewed)) {
    if (idx == 0) return;
    skewed = p4::register_field(reg, idx - 1);
    if (!declared(skewed)) return;
  }

  const ir::FieldId old_fid = ctx.fields.find(cell);
  if (old_fid == ir::kInvalidField) return;
  const int width = ctx.fields.width(old_fid);
  const ir::ExprRef skewed_var = ctx.field_var(skewed, width);

  Candidate c;
  c.kind = MutationKind::kRegisterSkew;
  c.dp = app.dp;
  c.rules = app.rules;
  p4::ActionDef* ad = find_action(c.dp, site.ref);
  if (!ad || site.index < 0 ||
      static_cast<size_t>(site.index) >= ad->ops.size()) {
    return;
  }
  p4::ActionOp& op = ad->ops[site.index];
  bool changed = false;
  if (op.dest == cell) {
    op.dest = skewed;
    changed = true;
  }
  if (op.value) {
    ir::ExprRef nv = ir::substitute(
        op.value, ctx.arena, [&](ir::FieldId f, int) -> ir::ExprRef {
          return f == old_fid ? skewed_var : nullptr;
        });
    if (nv != op.value) {
      op.value = nv;
      changed = true;
    }
  }
  for (std::string& k : op.hash_keys) {
    if (k == cell) {
      k = skewed;
      changed = true;
    }
  }
  if (!changed) return;
  c.description = "action '" + site.ref + "' op #" +
                  std::to_string(site.index) + ": register cell '" + cell +
                  "' skewed to '" + skewed + "'";
  out.push_back(std::move(c));
}

void toolchain_candidates(const AppBundle& app, const InjectionSite& site,
                          std::vector<Candidate>& out) {
  Candidate c;
  c.kind = MutationKind::kToolchain;
  c.dp = app.dp;
  c.rules = app.rules;
  c.fault = site.fault;
  c.code_bug = false;
  c.description = std::string("toolchain fault '") +
                  sim::fault_kind_name(site.fault.kind) + "'";
  if (!site.fault.instance.empty()) {
    c.description += " in instance '" + site.fault.instance + "'";
  }
  out.push_back(std::move(c));
}

std::vector<Candidate> make_candidates(ir::Context& ctx, const AppBundle& app,
                                       const InjectionSite& site,
                                       const CorpusOptions& opts) {
  std::vector<Candidate> out;
  switch (site.kind) {
    case SiteKind::kGuard:
      guard_candidates(ctx, app, site, opts.max_per_site, out);
      break;
    case SiteKind::kParserTransition:
      parser_candidates(app, site, out);
      break;
    case SiteKind::kTableEntry:
      entry_candidates(app, site, opts.max_per_site, out);
      break;
    case SiteKind::kEntryRank:
      rank_candidates(app, site, out);
      break;
    case SiteKind::kChecksum:
      checksum_candidates(app, site, out);
      break;
    case SiteKind::kEmit:
      emit_candidates(app, site, out);
      break;
    case SiteKind::kRegisterIndex:
      register_candidates(ctx, app, site, out);
      break;
    case SiteKind::kToolchain:
      toolchain_candidates(app, site, out);
      break;
    case SiteKind::kSummary:
      break;  // handled by the verify-lane path in build_corpus
  }
  return out;
}

// ------------------------------------------------- witness confirmation

struct WitnessPool {
  std::vector<driver::TestCase> cases;
  // node -> pool indices whose template path visits it (pool order).
  std::unordered_map<cfg::NodeId, std::vector<uint32_t>> covering;
};

WitnessPool concretize_pool(ir::Context& ctx, const p4::DataPlane& dp,
                            driver::Meissa& meissa,
                            const std::vector<sym::TestCaseTemplate>& ts,
                            const CorpusOptions& opts) {
  WitnessPool pool;
  driver::Sender sender(ctx, dp, meissa.graph(), opts.seed);
  for (const sym::TestCaseTemplate& t : ts) {
    if (pool.cases.size() >= opts.witness_templates) break;
    std::optional<driver::TestCase> tc =
        sender.concretize(t, meissa.generator().engine());
    if (!tc) continue;
    const uint32_t at = static_cast<uint32_t>(pool.cases.size());
    for (cfg::NodeId n : t.path) pool.covering[n].push_back(at);
    pool.cases.push_back(std::move(*tc));
  }
  return pool;
}

// Probe order for one site: covering templates of the anchor first, then
// the pool prefix, capped at opts.witness_probes.
std::vector<uint32_t> probe_order(const WitnessPool& pool, cfg::NodeId anchor,
                                  size_t cap) {
  std::vector<uint32_t> order;
  std::vector<char> taken(pool.cases.size(), 0);
  auto it = pool.covering.find(anchor);
  if (it != pool.covering.end()) {
    for (uint32_t p : it->second) {
      if (order.size() >= cap) break;
      order.push_back(p);
      taken[p] = 1;
    }
  }
  for (uint32_t p = 0; p < pool.cases.size() && order.size() < cap; ++p) {
    if (!taken[p]) order.push_back(p);
  }
  return order;
}

const char* diverges(const sim::DeviceOutput& t, const sim::DeviceOutput& r) {
  if (t.accepted != r.accepted) return "accepted";
  if (t.dropped != r.dropped) return "dropped";
  if (t.dropped) return nullptr;
  if (t.port != r.port) return "port";
  if (t.bytes != r.bytes) return "bytes";
  return nullptr;
}

// Replays probe cases through the candidate's compile against the clean
// reference; fills the variant's witness on the first divergence.
bool confirm(ir::Context& ctx, const Candidate& c,
             const sim::DeviceProgram& ref_prog, const WitnessPool& pool,
             const std::vector<uint32_t>& probes, BugVariant& v) {
  sim::DeviceProgram tgt_prog;
  try {
    tgt_prog = sim::compile(c.dp, c.rules, ctx, c.fault);
  } catch (const util::Error&) {
    return false;  // mutation produced an uncompilable program
  }
  sim::Device target(std::move(tgt_prog), ctx);
  sim::Device reference(ref_prog, ctx);
  for (uint32_t p : probes) {
    const driver::TestCase& tc = pool.cases[p];
    target.set_registers(tc.registers);
    reference.set_registers(tc.registers);
    sim::DeviceOutput to = target.inject(tc.input);
    sim::DeviceOutput ro = reference.inject(tc.input);
    if (const char* kind = diverges(to, ro)) {
      v.confirmed = true;
      v.witness = tc.input;
      v.witness_registers = tc.registers;
      v.witness_template = tc.template_id;
      v.witness_divergence = kind;
      return true;
    }
  }
  return false;
}

// ------------------------------------------------- manifest rendering

void append_hex_bytes(std::string& out, const std::vector<uint8_t>& bytes) {
  static const char* kHex = "0123456789abcdef";
  for (uint8_t b : bytes) {
    out += kHex[b >> 4];
    out += kHex[b & 0xf];
  }
}

void append_variant_json(std::string& out, const BugVariant& v) {
  out += "{\"id\":" + std::to_string(v.id);
  out += ",\"vid\":\"" + util::json_escape(v.vid) + "\"";
  out += ",\"kind\":\"";
  out += mutation_kind_name(v.kind);
  out += "\"";
  if (v.kind == MutationKind::kLegacy) {
    out += ",\"site\":null,\"site_kind\":null";
  } else {
    out += ",\"site\":" + std::to_string(v.site);
    out += ",\"site_kind\":\"";
    out += analysis::site_kind_name(v.site_kind);
    out += "\"";
  }
  out += ",\"code_bug\":";
  out += v.code_bug ? "true" : "false";
  out += ",\"fault\":";
  if (v.fault.none()) {
    out += "null";
  } else {
    out += "\"";
    out += sim::fault_kind_name(v.fault.kind);
    out += "\"";
  }
  out += ",\"summary_fault\":";
  if (v.summary_fault.empty()) {
    out += "null";
  } else {
    out += "\"" + util::json_escape(v.summary_fault) + "\"";
  }
  out += ",\"description\":\"" + util::json_escape(v.description) + "\"";
  out += ",\"liveness\":\"" + util::json_escape(v.liveness) + "\"";
  out += ",\"confirmed\":";
  out += v.confirmed ? "true" : "false";
  out += ",\"witness\":";
  if (!v.confirmed || v.kind == MutationKind::kSummary) {
    out += "null";
  } else {
    out += "{\"template\":" + std::to_string(v.witness_template);
    out += ",\"divergence\":\"" + util::json_escape(v.witness_divergence) +
           "\"";
    out += ",\"port\":" + std::to_string(v.witness.port);
    out += ",\"bytes\":\"";
    append_hex_bytes(out, v.witness.bytes);
    out += "\",\"registers\":{";
    std::vector<std::pair<std::string, uint64_t>> regs;
    for (const auto& [f, val] : v.witness_registers) {
      regs.emplace_back(v.ctx ? v.ctx->fields.name(f)
                              : std::to_string(f),
                        val);
    }
    std::sort(regs.begin(), regs.end());
    for (size_t i = 0; i < regs.size(); ++i) {
      if (i) out += ",";
      out += "\"" + util::json_escape(regs[i].first) +
             "\":" + std::to_string(regs[i].second);
    }
    out += "}}";
  }
  out += "}";
}

}  // namespace

BugCorpus build_corpus(ir::Context& ctx, const AppBundle& app,
                       const CorpusOptions& opts) {
  BugCorpus out;
  out.app = app.name;
  out.seed = opts.seed;

  // One generation without code summary: template paths then share node
  // ids with the injection analysis graph, so anchor coverage is a direct
  // path-membership test.
  driver::TestRunOptions topts;
  topts.seed = opts.seed;
  topts.gen.code_summary = false;
  topts.gen.threads = opts.threads;
  topts.gen.max_templates = opts.witness_templates;
  driver::Meissa meissa(ctx, app.dp, app.rules, topts);
  std::vector<sym::TestCaseTemplate> templates = meissa.generate();
  const cfg::Cfg& graph = meissa.graph();

  out.sites = analysis::find_injection_sites(ctx, app.dp, app.rules, graph,
                                             opts.inject);
  WitnessPool pool = concretize_pool(ctx, app.dp, meissa, templates, opts);
  out.witness_pool = pool.cases.size();
  const sim::DeviceProgram ref_prog =
      sim::compile(app.dp, app.rules, ctx);

  // Summary-transform machinery, materialized lazily (solver-backed).
  std::optional<summary::SummaryResult> summarized;

  for (const InjectionSite& site : out.sites.sites) {
    if (opts.max_variants && out.variants.size() >= opts.max_variants) break;

    if (site.kind == SiteKind::kSummary) {
      if (!opts.summary_variants) continue;
      std::optional<analysis::SummaryFaultKind> fk =
          analysis::parse_summary_fault(site.ref);
      if (!fk) continue;
      if (!summarized) {
        summarized = summary::summarize(ctx, graph, topts.gen.summary);
      }
      ++out.candidates;
      cfg::Cfg broken = summarized->graph;
      std::optional<std::string> what =
          analysis::inject_summary_fault(ctx, broken, *fk);
      if (!what) {
        ++out.discarded_unconfirmed;
        continue;
      }
      analysis::ValidationResult vr =
          analysis::validate_summary(ctx, graph, broken);
      BugVariant v;
      v.id = static_cast<uint32_t>(out.variants.size());
      v.vid = out.app + ":s" + std::to_string(site.id) + ":summary";
      v.kind = MutationKind::kSummary;
      v.site = site.id;
      v.site_kind = site.kind;
      v.summary_fault = site.ref;
      v.code_bug = false;
      v.description = "summary transform fault: " + *what;
      v.liveness = site.liveness;
      v.ctx = &ctx;
      v.confirmed = !vr.sound();
      v.witness_divergence = v.confirmed ? "refuted-obligation" : "";
      if (!v.confirmed && !opts.keep_unconfirmed) {
        ++out.discarded_unconfirmed;
        continue;
      }
      if (v.confirmed) ++out.confirmed;
      ++out.by_kind[static_cast<int>(v.kind)];
      out.variants.push_back(std::move(v));
      continue;
    }

    std::vector<uint32_t> probes =
        probe_order(pool, site.node, opts.witness_probes);
    for (Candidate& c : make_candidates(ctx, app, site, opts)) {
      if (opts.max_variants && out.variants.size() >= opts.max_variants) {
        break;
      }
      ++out.candidates;
      BugVariant v;
      v.id = static_cast<uint32_t>(out.variants.size());
      v.vid = out.app + ":s" + std::to_string(site.id) + ":" +
              mutation_kind_name(c.kind);
      if (c.k > 0) v.vid += ":" + std::to_string(c.k);
      v.kind = c.kind;
      v.site = site.id;
      v.site_kind = site.kind;
      v.description = std::move(c.description);
      v.liveness = site.liveness;
      v.fault = c.fault;
      v.code_bug = c.code_bug;
      v.ctx = &ctx;
      const bool hit = confirm(ctx, c, ref_prog, pool, probes, v);
      if (!hit && !opts.keep_unconfirmed) {
        ++out.discarded_unconfirmed;
        continue;
      }
      v.dp = std::move(c.dp);
      v.rules = std::move(c.rules);
      if (hit) ++out.confirmed;
      ++out.by_kind[static_cast<int>(v.kind)];
      out.variants.push_back(std::move(v));
    }
  }
  return out;
}

BugCorpus build_legacy_corpus(const CorpusOptions& opts,
                              const std::vector<int>& indices) {
  BugCorpus out;
  out.app = "legacy-table2";
  out.seed = opts.seed;
  std::vector<int> rows = indices;
  if (rows.empty()) {
    for (int i = 1; i <= kNumBugs; ++i) rows.push_back(i);
  }
  for (int idx : rows) {
    auto ctx = std::make_shared<ir::Context>();
    BugScenario s = make_bug(*ctx, idx);
    AppBundle intended = make_bug_intended(*ctx, idx);
    ++out.candidates;

    BugVariant v;
    v.id = static_cast<uint32_t>(out.variants.size());
    v.vid = "legacy:b" + std::to_string(idx);
    v.kind = MutationKind::kLegacy;
    v.description = "Table 2 #" + std::to_string(idx) + ": " + s.name;
    v.code_bug = s.code_bug;
    v.fault = s.fault;
    v.dp = s.bundle.dp;
    v.rules = s.bundle.rules;
    v.ctx = ctx.get();
    v.has_reference = true;
    v.ref_dp = intended.dp;
    v.ref_rules = intended.rules;
    v.ref_intents = intended.intents;
    v.liveness = "hand-written Table 2 scenario (ground truth by "
                 "construction)";

    // Witness search: the production compile against the intended one,
    // probed with the scenario's own unit-test inputs first, then the
    // intended program's concretized templates.
    try {
      sim::Device target(sim::compile(s.bundle.dp, s.bundle.rules, *ctx,
                                      s.fault),
                         *ctx);
      sim::Device reference(sim::compile(intended.dp, intended.rules, *ctx),
                            *ctx);
      auto probe = [&](const sim::DeviceInput& in,
                       const ir::ConcreteState& regs, uint64_t tmpl) {
        if (v.confirmed) return;
        target.set_registers(regs);
        reference.set_registers(regs);
        sim::DeviceOutput to = target.inject(in);
        sim::DeviceOutput ro = reference.inject(in);
        if (const char* kind = diverges(to, ro)) {
          v.confirmed = true;
          v.witness = in;
          v.witness_registers = regs;
          v.witness_template = tmpl;
          v.witness_divergence = kind;
        }
      };
      for (const auto& [in, expect_drop] : s.pta_inputs) {
        (void)expect_drop;
        probe(in, {}, 0);
      }
      if (!v.confirmed) {
        driver::TestRunOptions topts;
        topts.seed = opts.seed;
        topts.gen.code_summary = false;
        topts.gen.threads = opts.threads;
        topts.gen.max_templates = opts.witness_templates;
        driver::Meissa meissa(*ctx, intended.dp, intended.rules, topts);
        std::vector<sym::TestCaseTemplate> templates = meissa.generate();
        WitnessPool pool =
            concretize_pool(*ctx, intended.dp, meissa, templates, opts);
        for (const driver::TestCase& tc : pool.cases) {
          probe(tc.input, tc.registers, tc.template_id);
          if (v.confirmed) break;
        }
      }
    } catch (const util::Error&) {
      // A scenario whose production compile cannot even be probed stays
      // unconfirmed; it is still ground truth and is kept below.
    }

    if (v.confirmed) ++out.confirmed;
    ++out.by_kind[static_cast<int>(MutationKind::kLegacy)];
    out.variants.push_back(std::move(v));
    out.owned_contexts.push_back(std::move(ctx));
  }
  return out;
}

std::string manifest_json(const BugCorpus& c) {
  std::string out = "{\"schema\":\"meissa-bug-corpus-v1\"";
  out += ",\"app\":\"" + util::json_escape(c.app) + "\"";
  out += ",\"seed\":" + std::to_string(c.seed);
  out += ",\"sites\":{\"total\":" + std::to_string(c.sites.sites.size());
  out += ",\"considered\":" + std::to_string(c.sites.considered);
  out += ",\"dead\":" + std::to_string(c.sites.dead);
  out += ",\"by_kind\":{";
  for (int k = 0; k < analysis::kNumSiteKinds; ++k) {
    if (k) out += ",";
    out += "\"";
    out += analysis::site_kind_name(static_cast<SiteKind>(k));
    out += "\":" + std::to_string(c.sites.by_kind[k]);
  }
  out += "}}";
  out += ",\"witness_pool\":" + std::to_string(c.witness_pool);
  out += ",\"candidates\":" + std::to_string(c.candidates);
  out += ",\"confirmed\":" + std::to_string(c.confirmed);
  out += ",\"discarded_unconfirmed\":" +
         std::to_string(c.discarded_unconfirmed);
  out += ",\"by_kind\":{";
  for (int k = 0; k < kNumMutationKinds; ++k) {
    if (k) out += ",";
    out += "\"";
    out += mutation_kind_name(static_cast<MutationKind>(k));
    out += "\":" + std::to_string(c.by_kind[k]);
  }
  out += "},\"variants\":[";
  for (size_t i = 0; i < c.variants.size(); ++i) {
    if (i) out += ",";
    append_variant_json(out, c.variants[i]);
  }
  out += "]}";
  return out;
}

}  // namespace meissa::apps::corpus
