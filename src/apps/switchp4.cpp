// switch.p4-style multifunctional program (Table 1 row 4): L2 switching
// (SMAC check + DMAC forwarding), L3 routing with ECMP over a 5-tuple
// hash, MPLS, VXLAN tunnel termination, ingress/egress ACLs, and a stats
// stage. Single pipeline, like the original.
#include "apps/apps.hpp"
#include "apps/protocols.hpp"
#include "apps/rulegen.hpp"

namespace meissa::apps {

using p4::ActionDef;
using p4::ActionOp;
using p4::ControlStmt;
using p4::KeyMatch;
using p4::MatchKind;
using p4::ParserState;
using p4::TableDef;
using p4::TableEntry;

AppBundle make_switchp4(ir::Context& ctx, const SwitchP4Config& cfg) {
  p4::ProgramBuilder b(ctx, "switchp4");
  b.header("eth", eth_header().fields);
  b.header("mpls", mpls_header().fields);
  b.header("ipv4", ipv4_header().fields);
  b.header("tcp", tcp_header().fields);
  b.header("udp", udp_header().fields);
  b.header("vxlan", vxlan_header().fields);
  b.header("inner_ipv4", ipv4_header("inner_ipv4").fields);
  // l2_ok and pkt_count are telemetry: the source-MAC learning marker and
  // the per-port packet counter feed the control plane, not the pipeline.
  b.metadata_field("meta.l2_ok", 1, /*telemetry=*/true);
  b.metadata_field("meta.nexthop", 16);
  b.metadata_field("meta.ecmp_hash", 16);
  b.metadata_field("meta.tunnel_terminated", 1);
  b.metadata_field("meta.pkt_count", 32, /*telemetry=*/true);

  // ---- actions -----------------------------------------------------------
  ActionDef smac_ok;
  smac_ok.name = "smac_ok";
  smac_ok.ops = {ActionOp::assign("meta.l2_ok", b.num(1, 1))};
  b.action(smac_ok);

  ActionDef l2_forward;
  l2_forward.name = "l2_forward";
  l2_forward.params = {{"port", p4::kPortWidth}};
  l2_forward.ops = {ActionOp::assign(
      std::string(p4::kEgressSpec), b.arg("l2_forward", "port", p4::kPortWidth))};
  b.action(l2_forward);

  ActionDef set_nexthop;
  set_nexthop.name = "set_nexthop";
  set_nexthop.params = {{"nh", 16}};
  set_nexthop.ops = {
      ActionOp::assign("meta.nexthop", b.arg("set_nexthop", "nh", 16)),
      ActionOp::assign("hdr.ipv4.ttl",
                       ctx.arena.arith(ir::ArithOp::kSub,
                                       b.var("hdr.ipv4.ttl"), b.num(1, 8))),
  };
  b.action(set_nexthop);

  ActionDef ecmp_select;
  ecmp_select.name = "ecmp_select";
  ecmp_select.ops = {ActionOp::hash(
      "meta.ecmp_hash", p4::HashAlgo::kCrc16,
      {"hdr.ipv4.src", "hdr.ipv4.dst", "hdr.ipv4.proto"})};
  b.action(ecmp_select);

  ActionDef nexthop_out;
  nexthop_out.name = "nexthop_out";
  nexthop_out.params = {{"dmac", 48}, {"port", p4::kPortWidth}};
  nexthop_out.ops = {
      ActionOp::assign("hdr.eth.dst", b.arg("nexthop_out", "dmac", 48)),
      ActionOp::assign(std::string(p4::kEgressSpec),
                       b.arg("nexthop_out", "port", p4::kPortWidth)),
  };
  b.action(nexthop_out);

  ActionDef mpls_pop;
  mpls_pop.name = "mpls_pop";
  mpls_pop.ops = {
      ActionOp::set_invalid("mpls"),
      ActionOp::assign("hdr.eth.type", b.num(kEthIpv4, 16)),
  };
  b.action(mpls_pop);

  ActionDef mpls_swap;
  mpls_swap.name = "mpls_swap";
  mpls_swap.params = {{"label", 20}, {"port", p4::kPortWidth}};
  mpls_swap.ops = {
      ActionOp::assign("hdr.mpls.label", b.arg("mpls_swap", "label", 20)),
      ActionOp::assign("hdr.mpls.ttl",
                       ctx.arena.arith(ir::ArithOp::kSub,
                                       b.var("hdr.mpls.ttl"), b.num(1, 8))),
      ActionOp::assign(std::string(p4::kEgressSpec),
                       b.arg("mpls_swap", "port", p4::kPortWidth)),
  };
  b.action(mpls_swap);

  ActionDef tunnel_term;
  tunnel_term.name = "tunnel_term";
  tunnel_term.ops = {
      ActionOp::assign("meta.tunnel_terminated", b.num(1, 1)),
      // Decap: the inner packet becomes the packet.
      ActionOp::assign("hdr.ipv4.src", b.var("hdr.inner_ipv4.src")),
      ActionOp::assign("hdr.ipv4.dst", b.var("hdr.inner_ipv4.dst")),
      ActionOp::assign("hdr.ipv4.proto", b.var("hdr.inner_ipv4.proto")),
      ActionOp::set_invalid("vxlan"),
      ActionOp::set_invalid("udp"),
      ActionOp::set_invalid("inner_ipv4"),
  };
  b.action(tunnel_term);

  ActionDef count_pkt;
  count_pkt.name = "count_pkt";
  count_pkt.ops = {ActionOp::assign(
      "meta.pkt_count",
      ctx.arena.arith(ir::ArithOp::kAdd, b.var("meta.pkt_count"),
                      b.num(1, 32)))};
  b.action(count_pkt);

  ActionDef acl_deny;
  acl_deny.name = "acl_deny";
  acl_deny.ops = {ActionOp::assign(std::string(p4::kDropFlag), b.num(1, 1))};
  b.action(acl_deny);

  ActionDef drop;
  drop.name = "drop";
  drop.ops = {ActionOp::assign(std::string(p4::kDropFlag), b.num(1, 1))};
  b.action(drop);

  ActionDef nop;
  nop.name = "nop";
  b.action(nop);

  // ---- tables ------------------------------------------------------------
  TableDef smac;
  smac.name = "smac";
  smac.keys = {{"hdr.eth.src", MatchKind::kExact}};
  smac.actions = {"smac_ok", "nop"};
  smac.default_action = "nop";
  b.table(smac);

  TableDef dmac;
  dmac.name = "dmac";
  dmac.keys = {{"hdr.eth.dst", MatchKind::kExact}};
  dmac.actions = {"l2_forward", "nop"};
  dmac.default_action = "nop";
  b.table(dmac);

  TableDef ipv4_lpm;
  ipv4_lpm.name = "ipv4_lpm";
  ipv4_lpm.keys = {{"hdr.ipv4.dst", MatchKind::kLpm}};
  ipv4_lpm.actions = {"set_nexthop", "drop"};
  ipv4_lpm.default_action = "drop";
  b.table(ipv4_lpm);

  TableDef ecmp;
  ecmp.name = "ecmp_group";
  ecmp.keys = {{"meta.nexthop", MatchKind::kExact},
               {"meta.ecmp_hash", MatchKind::kRange}};
  ecmp.actions = {"nexthop_out", "nop"};
  ecmp.default_action = "nop";
  b.table(ecmp);

  TableDef mpls;
  mpls.name = "mpls_fib";
  mpls.keys = {{"hdr.mpls.label", MatchKind::kExact}};
  mpls.actions = {"mpls_pop", "mpls_swap", "drop"};
  mpls.default_action = "drop";
  b.table(mpls);

  TableDef tunnel;
  tunnel.name = "tunnel_decap";
  tunnel.keys = {{"hdr.vxlan.vni", MatchKind::kExact}};
  tunnel.actions = {"tunnel_term", "nop"};
  tunnel.default_action = "nop";
  b.table(tunnel);

  TableDef iacl;
  iacl.name = "ingress_acl";
  iacl.keys = {{"hdr.ipv4.src", MatchKind::kTernary},
               {"hdr.ipv4.dst", MatchKind::kTernary}};
  iacl.actions = {"acl_deny", "nop"};
  iacl.default_action = "nop";
  b.table(iacl);

  TableDef stats;
  stats.name = "stats";
  stats.keys = {{std::string(p4::kEgressSpec), MatchKind::kTernary}};
  stats.actions = {"count_pkt", "nop"};
  stats.default_action = "nop";
  b.table(stats);

  // ---- parser & control ----------------------------------------------------
  p4::PipelineDef p;
  p.name = "pipe";
  p.parser.start = "start";
  {
    ParserState start;
    start.name = "start";
    start.extracts = {"eth"};
    start.select_field = "hdr.eth.type";
    start.cases = {{kEthIpv4, 0xffff, "parse_ipv4"},
                   {kEthMpls, 0xffff, "parse_mpls"}};
    start.default_next = "accept";
    ParserState pmpls;
    pmpls.name = "parse_mpls";
    pmpls.extracts = {"mpls"};
    pmpls.default_next = "accept";
    ParserState pipv4;
    pipv4.name = "parse_ipv4";
    pipv4.extracts = {"ipv4"};
    pipv4.select_field = "hdr.ipv4.proto";
    pipv4.cases = {{kProtoTcp, 0xff, "parse_tcp"},
                   {kProtoUdp, 0xff, "parse_udp"}};
    pipv4.default_next = "accept";
    ParserState ptcp;
    ptcp.name = "parse_tcp";
    ptcp.extracts = {"tcp"};
    ptcp.default_next = "accept";
    ParserState pudp;
    pudp.name = "parse_udp";
    pudp.extracts = {"udp"};
    pudp.select_field = "hdr.udp.dport";
    pudp.cases = {{kUdpVxlan, 0xffff, "parse_vxlan"}};
    pudp.default_next = "accept";
    ParserState pvxlan;
    pvxlan.name = "parse_vxlan";
    pvxlan.extracts = {"vxlan"};
    pvxlan.default_next = "parse_inner";
    ParserState pinner;
    pinner.name = "parse_inner";
    pinner.extracts = {"inner_ipv4"};
    pinner.default_next = "accept";
    p.parser.states = {start, pmpls, pipv4, ptcp, pudp, pvxlan, pinner};
  }

  p4::ControlBlock mpls_path;
  mpls_path.stmts = {ControlStmt::apply("mpls_fib")};
  p4::ControlBlock l3_path;
  l3_path.stmts = {
      ControlStmt::if_else(b.is_valid("vxlan"),
                           {{ControlStmt::apply("tunnel_decap")}}),
      ControlStmt::apply("ingress_acl"),
      ControlStmt::apply("ipv4_lpm"),
      ControlStmt::inline_op(ActionOp::hash(
          "meta.ecmp_hash", p4::HashAlgo::kCrc16,
          {"hdr.ipv4.src", "hdr.ipv4.dst", "hdr.ipv4.proto"})),
      ControlStmt::apply("ecmp_group"),
  };
  p4::ControlBlock l2_path;
  l2_path.stmts = {ControlStmt::apply("smac"), ControlStmt::apply("dmac")};

  p.control.stmts = {
      ControlStmt::if_else(b.is_valid("mpls"), mpls_path,
                           {{ControlStmt::if_else(
                               ctx.arena.band(
                                   b.is_valid("ipv4"),
                                   ctx.arena.cmp(ir::CmpOp::kGt,
                                                 b.var("hdr.ipv4.ttl"),
                                                 b.num(1, 8))),
                               l3_path, l2_path)}}),
      ControlStmt::apply("stats"),
  };
  p.deparser.emit_order = {"eth",   "mpls",  "ipv4",       "tcp",
                           "udp",   "vxlan", "inner_ipv4"};
  p.deparser.checksum_updates = {ipv4_checksum()};
  b.pipeline(p);

  AppBundle app;
  app.name = "switch.p4";
  app.p4_14 = false;
  app.dp.program = b.build();
  app.dp.topology.instances = {{"sw0.pipe", "pipe", 0}};
  app.dp.topology.entries = {{"sw0.pipe", nullptr}};

  // ---- rules ---------------------------------------------------------------
  util::Rng rng(cfg.seed);
  app.rules.name = "switchp4-rules";
  for (int i = 0; i < cfg.l2_hosts; ++i) {
    TableEntry s;
    s.table = "smac";
    s.matches = {KeyMatch::exact(random_mac(rng))};
    s.action = "smac_ok";
    app.rules.add(s);
    TableEntry d;
    d.table = "dmac";
    d.matches = {KeyMatch::exact(random_mac(rng))};
    d.action = "l2_forward";
    d.args = {rng.range(1, 60)};
    app.rules.add(d);
  }
  const uint64_t kSpan = 0x10000 / static_cast<uint64_t>(cfg.ecmp_ways);
  for (int i = 0; i < cfg.routes; ++i) {
    int len = static_cast<int>(rng.range(12, 30));
    TableEntry route;
    route.table = "ipv4_lpm";
    route.matches = {KeyMatch::lpm(random_prefix(rng, len), len)};
    route.action = "set_nexthop";
    route.args = {static_cast<uint64_t>(i + 1)};
    app.rules.add(route);
    for (int w = 0; w < cfg.ecmp_ways; ++w) {
      TableEntry way;
      way.table = "ecmp_group";
      way.matches = {
          KeyMatch::exact(static_cast<uint64_t>(i + 1)),
          KeyMatch::range(static_cast<uint64_t>(w) * kSpan,
                          (static_cast<uint64_t>(w) + 1) * kSpan - 1)};
      way.action = "nexthop_out";
      way.args = {random_mac(rng), rng.range(1, 60)};
      app.rules.add(way);
    }
  }
  for (int i = 0; i < cfg.mpls_labels; ++i) {
    TableEntry m;
    m.table = "mpls_fib";
    m.matches = {KeyMatch::exact(rng.bits(20))};
    if (rng.chance(1, 3)) {
      m.action = "mpls_pop";
      m.args = {};
    } else {
      m.action = "mpls_swap";
      m.args = {rng.bits(20), rng.range(1, 60)};
    }
    app.rules.add(m);
  }
  for (int i = 0; i < cfg.acls; ++i) {
    TableEntry a;
    a.table = "ingress_acl";
    int len = static_cast<int>(rng.range(8, 24));
    uint64_t mask = (util::mask_bits(32) << (32 - len)) & util::mask_bits(32);
    a.matches = {KeyMatch::ternary(random_prefix(rng, len), mask),
                 KeyMatch::wildcard()};
    a.action = "acl_deny";
    a.priority = i;
    app.rules.add(a);
  }
  {
    TableEntry s;
    s.table = "stats";
    s.matches = {KeyMatch::wildcard()};
    s.action = "count_pkt";
    app.rules.add(s);
  }

  // Intent: routed IPv4 decrements TTL.
  spec::IntentBuilder ttl(ctx, app.dp.program, "switchp4-ttl");
  ttl.assume(ctx.arena.cmp(ir::CmpOp::kEq, ttl.in("hdr.eth.type"),
                           ttl.num(kEthIpv4, 16)));
  ttl.expect(ctx.arena.bor(
      ctx.arena.cmp(ir::CmpOp::kEq, ttl.out("hdr.ipv4.ttl"),
                    ctx.arena.arith(ir::ArithOp::kSub, ttl.in("hdr.ipv4.ttl"),
                                    ttl.num(1, 8))),
      ctx.arena.cmp(ir::CmpOp::kEq, ttl.out("hdr.ipv4.ttl"),
                    ttl.in("hdr.ipv4.ttl"))));
  app.intents.push_back(ttl.build());
  return app;
}

}  // namespace meissa::apps
