// The ground-truth bug corpus (DESIGN.md "Bug injection & survival
// analysis"): seeded mutation of a data plane at the injection sites the
// static analysis (analysis/inject.hpp) proved live, producing labeled
// buggy variants with concrete trigger witnesses.
//
// Each variant is one mutation applied to one site:
//
//   program-level   the DataPlane/RuleSet itself is rewritten (guard
//                   constants bumped, validity conjuncts dropped, parser
//                   masks truncated, entry ranks inverted, actions
//                   substituted, register indices skewed, ...); the buggy
//                   device is the clean compile of the mutated program,
//                   while the tester keeps modeling the original
//   toolchain       the original program compiled with a sim::FaultSpec
//                   (the site's validated Table-2-style transform)
//   summary         a summary-transform fault (analysis/validate's
//                   SummaryFaultKind); no device exists — the m4verify
//                   lane is the only detector that can see it
//
// Every variant is *confirmed* before it enters the corpus: the covering
// test-case templates of the site's anchor node (generated once, without
// code summary, so template paths share node ids with the analysis graph)
// are concretized and replayed through the buggy device against the clean
// reference; the first diverging input is recorded as the variant's
// trigger witness. Unconfirmed candidates are dropped (and counted) by
// default, so witness replay re-triggers the corpus by construction.
// Summary variants are confirmed by validate_summary refuting the
// transform instead.
//
// Everything is deterministic for a fixed seed: mutation enumeration
// follows the (stable) site ids, witness search follows template order,
// and the manifest ("meissa-bug-corpus-v1") contains no wall-clock
// values — the same seed yields a byte-identical manifest at any thread
// count.
#pragma once

#include <memory>

#include "analysis/inject.hpp"
#include "apps/apps.hpp"

namespace meissa::apps::corpus {

enum class MutationKind : uint8_t {
  kGuardOffByOne,       // bump a constant inside an if guard by +1
  kGuardDropValidity,   // remove a `hdr.X.$valid == 1` conjunct of a guard
  kParserValueBump,     // flip a masked bit of a select case value
  kParserMaskTruncate,  // clear the lowest set bit of a select case mask
  kEntryMaskTruncate,   // shorten an lpm prefix / clear a ternary mask bit /
                        // bump an exact value / widen a range bound
  kEntryWrongAction,    // substitute another permitted table action
  kRankInversion,       // invert the rank of an overlapping entry pair
  kChecksumDropSource,  // drop the last source of a checksum update
  kEmitSwap,            // swap two adjacent deparser emit slots
  kRegisterSkew,        // skew a register cell index to a neighbouring cell
  kToolchain,           // compile with the site's sim::FaultSpec
  kSummary,             // summary-transform fault (verify-lane only)
  kLegacy,              // a hand-written Table-2 scenario, converted
};
inline constexpr int kNumMutationKinds = 13;

const char* mutation_kind_name(MutationKind k) noexcept;

// One labeled buggy variant. `dp`/`rules` are what the *device* is built
// from (for kToolchain they equal the original and `fault` carries the
// bug; for kSummary they are unused).
struct BugVariant {
  uint32_t id = 0;    // corpus-wide ordinal (manifest key)
  std::string vid;    // stable string id, "<app>:s<site>:<kind>[:k]"
  MutationKind kind = MutationKind::kGuardOffByOne;
  uint32_t site = 0;  // InjectionSite::id this mutation was applied at
  analysis::SiteKind site_kind = analysis::SiteKind::kGuard;
  std::string description;  // what was mutated, human-readable
  std::string liveness;     // the site's liveness proof
  p4::DataPlane dp;
  p4::RuleSet rules;
  sim::FaultSpec fault;       // kToolchain / kLegacy (may be kNone)
  std::string summary_fault;  // kSummary: validate's fault slug
  bool code_bug = true;       // false: toolchain/summary-transform bug
  // The expression universe `dp`/`rules`/`witness_registers` live in: the
  // caller's context for build_corpus variants, a corpus-owned one (see
  // BugCorpus::owned_contexts) for legacy scenarios.
  ir::Context* ctx = nullptr;
  // Reference (intended) program for the differential lanes. build_corpus
  // variants share the app bundle's original program, so this stays unset;
  // legacy scenarios carry their own corrected bundle.
  bool has_reference = false;
  p4::DataPlane ref_dp;
  p4::RuleSet ref_rules;
  std::vector<spec::Intent> ref_intents;

  // Trigger witness (set when confirmed): replaying `witness` with
  // `witness_registers` installed makes the buggy device diverge from the
  // clean reference in observable output.
  bool confirmed = false;
  sim::DeviceInput witness;
  ir::ConcreteState witness_registers;
  uint64_t witness_template = 0;    // template id the witness came from
  std::string witness_divergence;   // "accepted"|"dropped"|"port"|"bytes"
};

struct CorpusOptions {
  uint64_t seed = 1;
  // Worker threads for the one-off template generation (0 = hardware
  // concurrency). Deterministic: any value yields the same corpus.
  int threads = 0;
  size_t max_variants = 0;       // 0 = unlimited
  size_t max_per_site = 2;       // variants per (site, kind) pair
  size_t witness_templates = 512;  // concretized witness pool cap
  size_t witness_probes = 6;     // covering candidates replayed per variant
  // Keep candidates whose mutation no replayed input could trigger
  // (confirmed stays false). Off by default: the corpus then only holds
  // variants with a working witness.
  bool keep_unconfirmed = false;
  // Skip the (solver-heavy) summary-transform variants.
  bool summary_variants = true;
  analysis::InjectOptions inject;
};

struct BugCorpus {
  std::string app;
  uint64_t seed = 1;
  std::vector<BugVariant> variants;
  analysis::InjectResult sites;   // the underlying site analysis
  uint64_t candidates = 0;        // mutations attempted
  uint64_t confirmed = 0;         // variants with a trigger witness
  uint64_t discarded_unconfirmed = 0;
  uint64_t witness_pool = 0;      // concretized templates available
  uint64_t by_kind[kNumMutationKinds] = {};
  // Keeps legacy scenarios' per-scenario expression universes alive for
  // as long as their variants are (BugVariant::ctx points in here).
  std::vector<std::shared_ptr<ir::Context>> owned_contexts;
};

// Builds the corpus for one app bundle. `ctx` must be the context the
// bundle was built against.
BugCorpus build_corpus(ir::Context& ctx, const AppBundle& app,
                       const CorpusOptions& opts = {});

// Converts the 16 hand-written Table-2 scenarios into the same corpus
// format (kind = kLegacy, app = "legacy-table2"). Witness confirmation
// replays the *intended* program's templates through the production
// compile; scenarios whose bug needs fuzzing to surface stay unconfirmed
// but are always kept (they are ground truth by construction).
// `indices` selects rows (empty = all 1..16); each scenario gets its own
// ir::Context, owned by the returned corpus.
BugCorpus build_legacy_corpus(const CorpusOptions& opts = {},
                              const std::vector<int>& indices = {});

// Deterministic "meissa-bug-corpus-v1" manifest (sorted keys, no
// wall-clock, byte-identical across thread counts for one seed).
std::string manifest_json(const BugCorpus& c);

}  // namespace meissa::apps::corpus
