// mTag edge switch (Bosshart et al. 2014, the paper's open-source row 2):
// host-facing ports add a two-level routing tag; core-facing ports strip
// it and forward by the tag.
#include "apps/apps.hpp"
#include "apps/protocols.hpp"
#include "apps/rulegen.hpp"

namespace meissa::apps {

using p4::ActionDef;
using p4::ActionOp;
using p4::ControlStmt;
using p4::KeyMatch;
using p4::MatchKind;
using p4::ParserState;
using p4::TableDef;
using p4::TableEntry;

AppBundle make_mtag(ir::Context& ctx, int n_hosts, uint64_t seed) {
  p4::ProgramBuilder b(ctx, "mtag");
  b.header("eth", eth_header().fields);
  b.header("mtag", mtag_header().fields);
  b.header("ipv4", ipv4_header().fields);

  // Host->core: insert the tag and send out the core uplink.
  ActionDef add_mtag;
  add_mtag.name = "add_mtag";
  add_mtag.params = {{"up1", 8}, {"up2", 8}, {"down1", 8}, {"down2", 8},
                     {"port", p4::kPortWidth}};
  add_mtag.ops = {
      ActionOp::set_valid("mtag"),
      ActionOp::assign("hdr.mtag.up1", b.arg("add_mtag", "up1", 8)),
      ActionOp::assign("hdr.mtag.up2", b.arg("add_mtag", "up2", 8)),
      ActionOp::assign("hdr.mtag.down1", b.arg("add_mtag", "down1", 8)),
      ActionOp::assign("hdr.mtag.down2", b.arg("add_mtag", "down2", 8)),
      // The tag carries the original ethertype; eth.type becomes mtag.
      ActionOp::assign("hdr.mtag.type", b.var("hdr.eth.type")),
      ActionOp::assign("hdr.eth.type", b.num(kEthMtag, 16)),
      ActionOp::assign(std::string(p4::kEgressSpec),
                       b.arg("add_mtag", "port", p4::kPortWidth)),
  };
  b.action(add_mtag);

  // Core->host: strip the tag and deliver on the downstream port.
  ActionDef remove_mtag;
  remove_mtag.name = "remove_mtag";
  remove_mtag.params = {{"port", p4::kPortWidth}};
  remove_mtag.ops = {
      ActionOp::assign("hdr.eth.type", b.var("hdr.mtag.type")),
      ActionOp::set_invalid("mtag"),
      ActionOp::assign(std::string(p4::kEgressSpec),
                       b.arg("remove_mtag", "port", p4::kPortWidth)),
  };
  b.action(remove_mtag);

  ActionDef drop;
  drop.name = "drop";
  drop.ops = {ActionOp::assign(std::string(p4::kDropFlag), b.num(1, 1))};
  b.action(drop);

  TableDef up;
  up.name = "mtag_up";
  up.keys = {{"hdr.eth.dst", MatchKind::kExact}};
  up.actions = {"add_mtag", "drop"};
  up.default_action = "drop";
  b.table(up);

  TableDef down;
  down.name = "mtag_down";
  down.keys = {{"hdr.mtag.down1", MatchKind::kExact},
               {"hdr.mtag.down2", MatchKind::kExact}};
  down.actions = {"remove_mtag", "drop"};
  down.default_action = "drop";
  b.table(down);

  p4::PipelineDef p;
  p.name = "edge";
  p.parser.start = "start";
  ParserState start;
  start.name = "start";
  start.extracts = {"eth"};
  start.select_field = "hdr.eth.type";
  start.cases = {{kEthMtag, 0xffff, "parse_mtag"},
                 {kEthIpv4, 0xffff, "parse_ipv4"}};
  start.default_next = "accept";
  ParserState mtag;
  mtag.name = "parse_mtag";
  mtag.extracts = {"mtag"};
  mtag.select_field = "hdr.mtag.type";
  mtag.cases = {{kEthIpv4, 0xffff, "parse_ipv4"}};
  mtag.default_next = "accept";
  ParserState ipv4;
  ipv4.name = "parse_ipv4";
  ipv4.extracts = {"ipv4"};
  ipv4.default_next = "accept";
  p.parser.states = {start, mtag, ipv4};

  // Ports 0..7 face hosts (add tags), the rest face the core (strip).
  p4::ControlBlock upward;
  upward.stmts = {ControlStmt::apply("mtag_up")};
  p4::ControlBlock downward;
  p4::ControlBlock dead;
  dead.stmts = {ControlStmt::inline_op(
      ActionOp::assign(std::string(p4::kDropFlag), b.num(1, 1)))};
  downward.stmts = {ControlStmt::if_else(b.is_valid("mtag"),
                                         {{ControlStmt::apply("mtag_down")}},
                                         dead)};
  p.control.stmts = {ControlStmt::if_else(
      ctx.arena.cmp(ir::CmpOp::kLt, b.var(p4::kIngressPort), b.num(8, 9)),
      upward, downward)};
  p.deparser.emit_order = {"eth", "mtag", "ipv4"};
  b.pipeline(p);

  AppBundle app;
  app.name = "mTag";
  app.p4_14 = true;
  app.dp.program = b.build();
  app.dp.topology.instances = {{"sw0.edge", "edge", 0}};
  app.dp.topology.entries = {{"sw0.edge", nullptr}};

  util::Rng rng(seed);
  app.rules.name = "mtag-rules";
  for (int i = 0; i < n_hosts; ++i) {
    uint64_t up1 = rng.bits(8), up2 = rng.bits(8);
    uint64_t down1 = rng.bits(8), down2 = rng.bits(8);
    TableEntry to_core;
    to_core.table = "mtag_up";
    to_core.matches = {KeyMatch::exact(random_mac(rng))};
    to_core.action = "add_mtag";
    to_core.args = {up1, up2, down1, down2, rng.range(8, 15)};
    app.rules.add(to_core);

    TableEntry to_host;
    to_host.table = "mtag_down";
    to_host.matches = {KeyMatch::exact(down1), KeyMatch::exact(down2)};
    to_host.action = "remove_mtag";
    to_host.args = {rng.range(0, 7)};
    app.rules.add(to_host);
  }

  // Intent: whatever leaves this edge switch toward a host carries no tag.
  spec::IntentBuilder no_tag(ctx, app.dp.program, "mtag-stripped-downstream");
  no_tag.assume(ctx.arena.cmp(ir::CmpOp::kGe, no_tag.in_port(),
                              no_tag.num(8, 9)));
  no_tag.expect_header("mtag", /*present=*/false);
  app.intents.push_back(no_tag.build());

  // Intent: upstream packets get tagged.
  spec::IntentBuilder tagged(ctx, app.dp.program, "mtag-added-upstream");
  tagged.assume(ctx.arena.cmp(ir::CmpOp::kLt, tagged.in_port(),
                              tagged.num(8, 9)));
  tagged.expect_header("mtag", /*present=*/true);
  app.intents.push_back(tagged.build());
  return app;
}

}  // namespace meissa::apps
