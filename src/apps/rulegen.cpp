#include "apps/rulegen.hpp"

#include "apps/apps.hpp"

namespace meissa::apps {

uint64_t random_ipv4(util::Rng& rng) { return rng.bits(32); }

uint64_t random_mac(util::Rng& rng) { return rng.bits(48); }

uint64_t random_prefix(util::Rng& rng, int len) {
  uint64_t v = rng.bits(32);
  uint64_t mask = len == 0 ? 0 : (util::mask_bits(32) << (32 - len)) & util::mask_bits(32);
  return v & mask;
}

int elastic_ips_for_set(int set_index, int base) {
  int e = base;
  for (int i = 1; i < set_index; ++i) e *= 2;
  return e;
}

}  // namespace meissa::apps
