// Router: layer-3 routing only (Table 1 row 1). IPv4 LPM -> nexthop MAC
// rewrite, TTL decrement, header-checksum update.
#include "apps/apps.hpp"
#include "apps/protocols.hpp"
#include "apps/rulegen.hpp"

namespace meissa::apps {

using p4::ActionDef;
using p4::ActionOp;
using p4::ControlStmt;
using p4::KeyMatch;
using p4::MatchKind;
using p4::TableDef;
using p4::TableEntry;

AppBundle make_router(ir::Context& ctx, int n_routes, uint64_t seed) {
  p4::ProgramBuilder b(ctx, "router");
  b.header("eth", eth_header().fields);
  b.header("ipv4", ipv4_header().fields);
  b.header("tcp", tcp_header().fields);
  b.header("udp", udp_header().fields);
  b.metadata_field("meta.nexthop", 16);

  ActionDef set_nexthop;
  set_nexthop.name = "set_nexthop";
  set_nexthop.params = {{"nh", 16}, {"port", p4::kPortWidth}};
  set_nexthop.ops = {
      ActionOp::assign("meta.nexthop", b.arg("set_nexthop", "nh", 16)),
      ActionOp::assign(std::string(p4::kEgressSpec),
                       b.arg("set_nexthop", "port", p4::kPortWidth)),
      // TTL decrement happens on the routed path.
      ActionOp::assign("hdr.ipv4.ttl",
                       ctx.arena.arith(ir::ArithOp::kSub,
                                       b.var("hdr.ipv4.ttl"), b.num(1, 8))),
  };
  b.action(set_nexthop);

  ActionDef rewrite_macs;
  rewrite_macs.name = "rewrite_macs";
  rewrite_macs.params = {{"dmac", 48}, {"smac", 48}};
  rewrite_macs.ops = {
      ActionOp::assign("hdr.eth.dst", b.arg("rewrite_macs", "dmac", 48)),
      ActionOp::assign("hdr.eth.src", b.arg("rewrite_macs", "smac", 48)),
  };
  b.action(rewrite_macs);

  ActionDef drop;
  drop.name = "drop";
  drop.ops = {ActionOp::assign(std::string(p4::kDropFlag), b.num(1, 1))};
  b.action(drop);

  ActionDef nop;
  nop.name = "nop";
  b.action(nop);

  TableDef lpm;
  lpm.name = "ipv4_lpm";
  lpm.keys = {{"hdr.ipv4.dst", MatchKind::kLpm}};
  lpm.actions = {"set_nexthop", "drop"};
  lpm.default_action = "drop";
  b.table(lpm);

  TableDef nexthop;
  nexthop.name = "nexthop";
  nexthop.keys = {{"meta.nexthop", MatchKind::kExact}};
  nexthop.actions = {"rewrite_macs", "nop"};
  nexthop.default_action = "nop";
  b.table(nexthop);

  p4::PipelineDef p;
  p.name = "ingress";
  p.parser.start = "start";
  p.parser.states = l3l4_parser("accept");
  p4::ControlBlock routed;
  routed.stmts = {ControlStmt::apply("ipv4_lpm"), ControlStmt::apply("nexthop")};
  p4::ControlBlock dropped;
  dropped.stmts = {ControlStmt::inline_op(
      ActionOp::assign(std::string(p4::kDropFlag), b.num(1, 1)))};
  // Route IPv4 with TTL > 1; everything else is dropped by this router.
  p.control.stmts = {ControlStmt::if_else(
      ctx.arena.band(b.is_valid("ipv4"),
                     ctx.arena.cmp(ir::CmpOp::kGt, b.var("hdr.ipv4.ttl"),
                                   b.num(1, 8))),
      routed, dropped)};
  p.deparser.emit_order = {"eth", "ipv4", "tcp", "udp"};
  p.deparser.checksum_updates = {ipv4_checksum()};
  b.pipeline(p);

  AppBundle app;
  app.name = "Router";
  app.p4_14 = true;
  app.dp.program = b.build();
  app.dp.topology.instances = {{"sw0.ig", "ingress", 0}};
  app.dp.topology.entries = {{"sw0.ig", nullptr}};

  // Random routes: /16../28 prefixes with distinct nexthops.
  util::Rng rng(seed);
  app.rules.name = "router-rules";
  for (int i = 0; i < n_routes; ++i) {
    int len = static_cast<int>(rng.range(16, 28));
    TableEntry route;
    route.table = "ipv4_lpm";
    route.matches = {KeyMatch::lpm(random_prefix(rng, len), len)};
    route.action = "set_nexthop";
    route.args = {static_cast<uint64_t>(i + 1),
                  rng.range(1, 48)};
    app.rules.add(route);

    TableEntry nh;
    nh.table = "nexthop";
    nh.matches = {KeyMatch::exact(static_cast<uint64_t>(i + 1))};
    nh.action = "rewrite_macs";
    nh.args = {random_mac(rng), random_mac(rng)};
    app.rules.add(nh);
  }

  // Intents: routed IPv4 must have its TTL decremented and keep addresses.
  spec::IntentBuilder ttl(ctx, app.dp.program, "router-ttl-decrement");
  ttl.assume(ctx.arena.cmp(ir::CmpOp::kEq, ttl.in("hdr.eth.type"),
                           ttl.num(kEthIpv4, 16)));
  ttl.assume(ctx.arena.cmp(ir::CmpOp::kGt, ttl.in("hdr.ipv4.ttl"),
                           ttl.num(1, 8)));
  ttl.expect(ctx.arena.bor(
      // either dropped (no route) — vacuous here — or TTL decremented:
      ctx.arena.cmp(ir::CmpOp::kEq, ttl.out("hdr.ipv4.ttl"),
                    ctx.arena.arith(ir::ArithOp::kSub,
                                    ttl.in("hdr.ipv4.ttl"), ttl.num(1, 8))),
      ctx.arena.cmp(ir::CmpOp::kEq, ttl.out("hdr.ipv4.ttl"),
                    ttl.in("hdr.ipv4.ttl"))));
  ttl.expect(ctx.arena.cmp(ir::CmpOp::kEq, ttl.out("hdr.ipv4.dst"),
                           ttl.in("hdr.ipv4.dst")));
  app.intents.push_back(ttl.build());

  spec::IntentBuilder expire(ctx, app.dp.program, "router-ttl-expiry");
  expire.assume(ctx.arena.cmp(ir::CmpOp::kEq, expire.in("hdr.eth.type"),
                              expire.num(kEthIpv4, 16)));
  expire.assume(ctx.arena.cmp(ir::CmpOp::kLe, expire.in("hdr.ipv4.ttl"),
                              expire.num(1, 8)));
  expire.expect_dropped();
  app.intents.push_back(expire.build());
  return app;
}

}  // namespace meissa::apps
