// The Table 2 bug corpus: six code bugs (1-6) in source programs and ten
// non-code bugs (7-16) injected by the toolchain. Each scenario carries
// the intents an operator would have written for that feature and the
// handwritten PTA unit tests engineers maintained for the P4-14 programs.
#include "apps/apps.hpp"
#include "apps/protocols.hpp"
#include "sim/toolchain.hpp"

namespace meissa::apps {

using p4::ActionDef;
using p4::ActionOp;
using p4::ControlStmt;
using p4::KeyMatch;
using p4::MatchKind;
using p4::ParserState;
using p4::TableDef;
using p4::TableEntry;

namespace {

// ------------------------- mini programs for compiler-bug scenarios -----
//
// Small, single-pipeline P4-16 programs in the style of the Gauntlet bug
// corpus: each makes one construct observable on the wire so a toolchain
// mutation of that construct diverges from the source semantics.

// Bug 7 substrate: forwarding decided by a parser select.
AppBundle mini_classifier(ir::Context& ctx) {
  p4::ProgramBuilder b(ctx, "mini-classifier");
  b.header("eth", eth_header().fields);
  b.header("ipv4", ipv4_header().fields);
  p4::PipelineDef p;
  p.name = "pipe";
  ParserState start;
  start.name = "start";
  start.extracts = {"eth"};
  start.select_field = "hdr.eth.type";
  start.cases = {{kEthIpv4, 0xffff, "parse_ipv4"}};
  start.default_next = "accept";
  ParserState ipv4;
  ipv4.name = "parse_ipv4";
  ipv4.extracts = {"ipv4"};
  ipv4.default_next = "accept";
  p.parser.states = {start, ipv4};
  p4::ControlBlock ip_out, other_out;
  ip_out.stmts = {ControlStmt::inline_op(ActionOp::assign(
      std::string(p4::kEgressSpec), ctx.arena.constant(7, 9)))};
  other_out.stmts = {ControlStmt::inline_op(ActionOp::assign(
      std::string(p4::kEgressSpec), ctx.arena.constant(9, 9)))};
  p.control.stmts = {ControlStmt::if_else(
      ctx.arena.cmp(ir::CmpOp::kEq,
                    ctx.field_var(p4::validity_field("ipv4"), 1),
                    ctx.arena.constant(1, 1)),
      ip_out, other_out)};
  p.deparser.emit_order = {"eth", "ipv4"};
  b.pipeline(p);
  AppBundle app;
  app.name = "mini-classifier";
  app.dp.program = b.build();
  app.dp.topology.instances = {{"sw0.p", "pipe", 0}};
  app.dp.topology.entries = {{"sw0.p", nullptr}};
  return app;
}

// Bug 8 substrate: a ternary table whose mask matters.
AppBundle mini_ternary(ir::Context& ctx) {
  p4::ProgramBuilder b(ctx, "mini-ternary");
  b.header("eth", eth_header().fields);
  b.header("ipv4", ipv4_header().fields);
  b.header("tcp", tcp_header().fields);
  b.header("udp", udp_header().fields);
  ActionDef mark;
  mark.name = "mark";
  mark.ops = {ActionOp::assign(std::string(p4::kEgressSpec),
                               ctx.arena.constant(5, 9))};
  b.action(mark);
  ActionDef nop;
  nop.name = "nop";
  b.action(nop);
  TableDef t;
  t.name = "classify";
  t.keys = {{"hdr.ipv4.dst", MatchKind::kTernary}};
  t.actions = {"mark", "nop"};
  t.default_action = "nop";
  b.table(t);
  p4::PipelineDef p;
  p.name = "pipe";
  // A masked select case: any 0x08xx ethertype is treated as IPv4-like
  // (the written value carries bits outside the mask).
  ParserState start;
  start.name = "start";
  start.extracts = {"eth"};
  start.select_field = "hdr.eth.type";
  start.cases = {{0x08aa, 0xff00, "parse_ipv4"}};
  start.default_next = "accept";
  ParserState pipv4;
  pipv4.name = "parse_ipv4";
  pipv4.extracts = {"ipv4"};
  pipv4.default_next = "accept";
  p.parser.states = {start, pipv4};
  p4::ControlBlock as_ip, as_other;
  as_ip.stmts = {ControlStmt::apply("classify"),
                 ControlStmt::inline_op(ActionOp::assign(
                     std::string(p4::kEgressSpec), ctx.arena.constant(7, 9)))};
  as_other.stmts = {ControlStmt::inline_op(ActionOp::assign(
      std::string(p4::kEgressSpec), ctx.arena.constant(9, 9)))};
  p.control.stmts = {ControlStmt::if_else(
      ctx.arena.cmp(ir::CmpOp::kEq,
                    ctx.field_var(p4::validity_field("ipv4"), 1),
                    ctx.arena.constant(1, 1)),
      as_ip, as_other)};
  p.deparser.emit_order = {"eth", "ipv4", "tcp", "udp"};
  b.pipeline(p);
  AppBundle app;
  app.name = "mini-ternary";
  app.dp.program = b.build();
  app.dp.topology.instances = {{"sw0.p", "pipe", 0}};
  app.dp.topology.entries = {{"sw0.p", nullptr}};
  TableEntry e;
  e.table = "classify";
  // Value has bits outside the mask: the mask-fold miscompile makes the
  // device require them while the source matches on the prefix only.
  e.matches = {KeyMatch::ternary(0x12345678u, 0xffff0000u)};
  e.action = "mark";
  app.rules.add(e);
  return app;
}

// Bug 9/10 substrate: a table whose hit action rewrites two fields and
// whose default action sets a known port.
AppBundle mini_rewrite(ir::Context& ctx) {
  p4::ProgramBuilder b(ctx, "mini-rewrite");
  b.header("eth", eth_header().fields);
  b.header("ipv4", ipv4_header().fields);
  b.header("tcp", tcp_header().fields);
  b.header("udp", udp_header().fields);
  ActionDef rewrite;
  rewrite.name = "rewrite";
  rewrite.params = {{"mac", 48}, {"port", p4::kPortWidth}};
  rewrite.ops = {
      ActionOp::assign("hdr.eth.dst", b.arg("rewrite", "mac", 48)),
      ActionOp::assign(std::string(p4::kEgressSpec),
                       b.arg("rewrite", "port", p4::kPortWidth)),
  };
  b.action(rewrite);
  ActionDef to_cpu;
  to_cpu.name = "to_cpu";
  to_cpu.ops = {ActionOp::assign(std::string(p4::kEgressSpec),
                                 ctx.arena.constant(63, 9))};
  b.action(to_cpu);
  TableDef t;
  t.name = "rw";
  t.keys = {{"hdr.ipv4.dst", MatchKind::kExact}};
  t.actions = {"rewrite", "to_cpu"};
  t.default_action = "to_cpu";
  b.table(t);
  p4::PipelineDef p;
  p.name = "pipe";
  p.parser.states = l3l4_parser("reject");
  p.control.stmts = {ControlStmt::apply("rw")};
  p.deparser.emit_order = {"eth", "ipv4", "tcp", "udp"};
  b.pipeline(p);
  AppBundle app;
  app.name = "mini-rewrite";
  app.dp.program = b.build();
  app.dp.topology.instances = {{"sw0.p", "pipe", 0}};
  app.dp.topology.entries = {{"sw0.p", nullptr}};
  TableEntry e;
  e.table = "rw";
  e.matches = {KeyMatch::exact(0x0a0a0a0au)};
  e.action = "rewrite";
  e.args = {0x02aabbccddeeull, 17};
  app.rules.add(e);
  return app;
}

// Bug 11 substrate: an 8-bit addition that provably carries (the table
// entry pins the operand), next to a sibling field in the same container.
AppBundle mini_adder(ir::Context& ctx) {
  p4::ProgramBuilder b(ctx, "mini-adder");
  b.header("eth", eth_header().fields);
  b.header("pair", {{"a", 8}, {"b", 8}});
  ActionDef bump;
  bump.name = "bump";
  bump.ops = {ActionOp::assign(
      "hdr.pair.a", ctx.arena.arith(ir::ArithOp::kAdd,
                                    ctx.field_var("hdr.pair.a", 8),
                                    ctx.arena.constant(200, 8)))};
  b.action(bump);
  ActionDef nop;
  nop.name = "nop";
  b.action(nop);
  TableDef t;
  t.name = "bump_tbl";
  t.keys = {{"hdr.pair.a", MatchKind::kExact}};
  t.actions = {"bump", "nop"};
  t.default_action = "nop";
  b.table(t);
  p4::PipelineDef p;
  p.name = "pipe";
  ParserState start;
  start.name = "start";
  start.extracts = {"eth", "pair"};
  start.default_next = "accept";
  p.parser.states = {start};
  p.control.stmts = {ControlStmt::apply("bump_tbl")};
  p.deparser.emit_order = {"eth", "pair"};
  b.pipeline(p);
  AppBundle app;
  app.name = "mini-adder";
  app.dp.program = b.build();
  app.dp.topology.instances = {{"sw0.p", "pipe", 0}};
  app.dp.topology.entries = {{"sw0.p", nullptr}};
  TableEntry e;
  e.table = "bump_tbl";
  e.matches = {KeyMatch::exact(100)};  // 100 + 200 carries in 8 bits
  e.action = "bump";
  app.rules.add(e);
  return app;
}

// Bug 12 helper: add a 32-bit blocklist comparison to the gateway ingress.
void add_blocklist_guard(ir::Context& ctx, AppBundle& app) {
  p4::Program& prog = app.dp.program;
  for (p4::PipelineDef& p : prog.pipelines) {
    if (p.name != "gw_ingress") continue;
    p4::ControlBlock blocked;
    blocked.stmts = {ControlStmt::inline_op(ActionOp::assign(
        std::string(p4::kDropFlag), ctx.arena.constant(1, 1)))};
    p4::ControlBlock guarded;
    guarded.stmts.push_back(ControlStmt::if_else(
        ctx.arena.cmp(ir::CmpOp::kEq, ctx.field_var("hdr.ipv4.dst", 32),
                      ctx.arena.constant(0xdead0000u, 32)),
        blocked));
    for (ControlStmt& s : p.control.stmts) guarded.stmts.push_back(s);
    p.control = guarded;
  }
  p4::validate(prog, ctx);
}

// Bug 13 helper: a two-constant-assignment action applied on every packet
// (via an empty table's default action).
void add_tos_stamp(ir::Context& ctx, AppBundle& app) {
  p4::Program& prog = app.dp.program;
  ActionDef stamp;
  stamp.name = "tos_stamp";
  stamp.ops = {
      ActionOp::assign("hdr.ipv4.dscp", ctx.arena.constant(46, 6)),
      ActionOp::assign("hdr.ipv4.ecn", ctx.arena.constant(1, 2)),
  };
  prog.actions.push_back(stamp);
  TableDef t;
  t.name = "tos_tbl";
  t.keys = {{"hdr.ipv4.dscp", MatchKind::kExact}};
  t.actions = {"tos_stamp"};
  t.default_action = "tos_stamp";
  prog.tables.push_back(t);
  for (p4::PipelineDef& p : prog.pipelines) {
    if (p.name == "gw_ingress") {
      p.control.stmts.push_back(ControlStmt::apply("tos_tbl"));
    }
  }
  p4::validate(prog, ctx);
}

// Bug 16 helper: the switch-ingress pipe branches on metadata it assumes
// the toolchain zero-initialized.
void add_tenant_guard(ir::Context& ctx, AppBundle& app) {
  p4::Program& prog = app.dp.program;
  for (p4::PipelineDef& p : prog.pipelines) {
    if (p.name != "sw_ingress") continue;
    p4::ControlBlock spill;
    spill.stmts = {ControlStmt::inline_op(ActionOp::assign(
        std::string(p4::kDropFlag), ctx.arena.constant(1, 1)))};
    p4::ControlBlock guarded;
    guarded.stmts.push_back(ControlStmt::if_else(
        ctx.arena.cmp(ir::CmpOp::kGt, ctx.field_var("meta.tenant", 24),
                      ctx.arena.constant(500000, 24)),
        spill));
    for (ControlStmt& s : p.control.stmts) guarded.stmts.push_back(s);
    p.control = guarded;
  }
  p4::validate(prog, ctx);
}


// Deterministic router rules for the code-bug scenarios: /16 routes with
// known nexthops, so intents can name concrete destinations.
p4::RuleSet fixed_router_rules() {
  p4::RuleSet rules;
  rules.name = "router-fixed";
  for (int i = 0; i < 4; ++i) {
    TableEntry route;
    route.table = "ipv4_lpm";
    route.matches = {
        KeyMatch::lpm(0x0a000000u + (static_cast<uint64_t>(i + 1) << 16), 16)};
    route.action = "set_nexthop";
    route.args = {static_cast<uint64_t>(i + 1),
                  static_cast<uint64_t>(10 + i)};
    rules.add(route);
    TableEntry nh;
    nh.table = "nexthop";
    nh.matches = {KeyMatch::exact(static_cast<uint64_t>(i + 1))};
    nh.action = "rewrite_macs";
    nh.args = {0x020000000000ull + static_cast<uint64_t>(i),
               0x040000000000ull + static_cast<uint64_t>(i)};
    rules.add(nh);
  }
  return rules;
}

// A minimal IPv4 packet for the handwritten PTA suites.
packet::Packet pta_ipv4_packet(const p4::Program& prog, uint64_t eth_type,
                               uint64_t dst, uint64_t ttl, uint64_t src) {
  packet::Packet p;
  packet::HeaderValues eth;
  eth.header = "eth";
  eth.values = {0x0200000000ffull, 0x0400000000ffull, eth_type};
  p.headers.push_back(eth);
  if (eth_type == kEthIpv4) {
    const p4::HeaderDef* def = prog.find_header("ipv4");
    packet::HeaderValues ipv4;
    ipv4.header = "ipv4";
    ipv4.values.assign(def->fields.size(), 0);
    ipv4.set_field(*def, "ver_ihl", 0x45);
    ipv4.set_field(*def, "ttl", ttl);
    ipv4.set_field(*def, "src", src);
    ipv4.set_field(*def, "dst", dst);
    p.headers.push_back(ipv4);
  }
  for (int i = 0; i < 16; ++i) p.payload.push_back(static_cast<uint8_t>(i));
  return p;
}

// Builds the handwritten suite: injects each input into a device compiled
// from the *intended* (bug-free) bundle and records expectations.
void fill_pta_expectations(BugScenario& bug, ir::Context& ctx,
                           const AppBundle& intended,
                           const std::vector<sim::DeviceInput>& inputs) {
  sim::DeviceProgram clean = sim::compile(intended.dp, intended.rules, ctx);
  sim::Device device(clean, ctx);
  for (const sim::DeviceInput& in : inputs) {
    sim::DeviceOutput out = device.inject(in);
    bug.pta_inputs.push_back({in, out.dropped});
    bug.pta_expect.push_back({out.port, out.bytes});
  }
}

// Intent: IPv4 to 10.<k>.x.x with ttl > 1 leaves on the route's port with
// rewritten MACs.
spec::Intent route_intent(ir::Context& ctx, const p4::Program& prog, int k,
                          uint64_t port) {
  spec::IntentBuilder ib(ctx, prog, "route-10." + std::to_string(k));
  ib.assume(ctx.arena.cmp(ir::CmpOp::kEq, ib.in("hdr.eth.type"),
                          ib.num(kEthIpv4, 16)));
  ib.assume(ctx.arena.masked_eq(ib.in("hdr.ipv4.dst"), 0xffff0000u,
                                0x0a000000u + (static_cast<uint64_t>(k) << 16)));
  ib.assume(ctx.arena.cmp(ir::CmpOp::kGt, ib.in("hdr.ipv4.ttl"),
                          ib.num(1, 8)));
  ib.expect_delivered();
  ib.expect(ctx.arena.cmp(ir::CmpOp::kEq, ib.out_port(),
                          ib.num(port, p4::kPortWidth)));
  return ib.build();
}

}  // namespace

BugScenario make_bug(ir::Context& ctx, int index) {
  BugScenario bug;
  bug.index = index;
  switch (index) {
    // =================================================== code bugs (1-6)
    case 1: {
      // Routing misconfiguration: route 10.1/16 installed with the wrong
      // egress port (11 instead of 10).
      bug.name = "routing misconfiguration";
      bug.bundle = make_router(ctx, 0);
      bug.bundle.rules = fixed_router_rules();
      bug.bundle.rules.entries[0].args[1] = 11;  // wrong port
      bug.bundle.intents = {route_intent(ctx, bug.bundle.dp.program, 1, 10),
                            route_intent(ctx, bug.bundle.dp.program, 2, 11)};
      // Handwritten suite only covers route 2 (incomplete, as in practice).
      std::vector<sim::DeviceInput> inputs = {
          {0, packet::serialize(bug.bundle.dp.program,
                                pta_ipv4_packet(bug.bundle.dp.program,
                                                kEthIpv4, 0x0a020101, 64,
                                                0x0b000001))}};
      AppBundle intended = bug.bundle;
      intended.rules = fixed_router_rules();  // correct rules
      fill_pta_expectations(bug, ctx, intended, inputs);
      break;
    }
    case 2: {
      // Unrestricted ACL: the deny rule for 203.0.113/24 is shadowed by a
      // catch-all permit installed at higher priority.
      bug.name = "unrestricted ACL rules";
      bug.bundle = make_acl(ctx, 0, 0);
      bug.bundle.rules = fixed_router_rules();
      TableEntry permit;
      permit.table = "acl";
      permit.matches = {KeyMatch::wildcard(), KeyMatch::wildcard(),
                        KeyMatch::exact(0)};
      permit.action = "acl_permit";
      permit.priority = 0;  // shadows the deny below
      bug.bundle.rules.add(permit);
      TableEntry deny;
      deny.table = "acl";
      deny.matches = {KeyMatch::ternary(0xcb007100u, 0xffffff00u),
                      KeyMatch::wildcard(), KeyMatch::exact(0)};
      deny.action = "acl_deny";
      deny.priority = 1;
      bug.bundle.rules.add(deny);
      spec::IntentBuilder ib(ctx, bug.bundle.dp.program, "acl-deny-203");
      ib.assume(ctx.arena.cmp(ir::CmpOp::kEq, ib.in("hdr.eth.type"),
                              ib.num(kEthIpv4, 16)));
      ib.assume(ctx.arena.masked_eq(ib.in("hdr.ipv4.src"), 0xffffff00u,
                                    0xcb007100u));
      ib.assume(ctx.arena.cmp(ir::CmpOp::kEq, ib.in("hdr.ipv4.ecn"),
                              ib.num(0, 2)));
      ib.expect_dropped();
      bug.bundle.intents = {ib.build()};
      // Handwritten suite checks permitted traffic only.
      std::vector<sim::DeviceInput> inputs = {
          {0, packet::serialize(bug.bundle.dp.program,
                                pta_ipv4_packet(bug.bundle.dp.program,
                                                kEthIpv4, 0x0a010101, 64,
                                                0x0b000001))}};
      fill_pta_expectations(bug, ctx, bug.bundle, inputs);
      break;
    }
    case 3: {
      // Parser wrong logic: the IPv4 select case is typo'd (0x0080), so
      // IPv4 is never parsed — yet the control reads ipv4.ttl untguarded.
      bug.name = "parser wrong logic";
      bug.bundle = make_router(ctx, 0);
      bug.bundle.rules = fixed_router_rules();
      p4::Program& prog = bug.bundle.dp.program;
      prog.pipelines[0].parser.states[0].cases[0].value = 0x0080;  // typo
      // The (sloppy) control relied on the parser: guard only on TTL.
      p4::ControlBlock& c = prog.pipelines[0].control;
      c.stmts[0].cond = ctx.arena.cmp(
          ir::CmpOp::kGt, ctx.field_var("hdr.ipv4.ttl", 8),
          ctx.arena.constant(1, 8));
      p4::validate(prog, ctx);
      bug.bundle.intents = {route_intent(ctx, prog, 1, 10)};
      std::vector<sim::DeviceInput> inputs = {
          {0, packet::serialize(prog, pta_ipv4_packet(prog, kEthIpv4,
                                                      0x0a010101, 64,
                                                      0x0b000001))}};
      AppBundle intended = make_router(ctx, 0, /*seed=*/99);
      intended.rules = fixed_router_rules();
      fill_pta_expectations(bug, ctx, intended, inputs);
      break;
    }
    case 4: {
      // Ingress wrong logic: the validity test is inverted, routing
      // non-IPv4 packets (invalid-header reads) and dropping IPv4.
      bug.name = "ingress wrong logic";
      bug.bundle = make_router(ctx, 0);
      bug.bundle.rules = fixed_router_rules();
      p4::Program& prog = bug.bundle.dp.program;
      // The then/else blocks were swapped during a refactor: routing now
      // runs exactly when the packet is NOT routable (reading invalid
      // IPv4 fields), and good traffic is dropped.
      p4::ControlBlock& c = prog.pipelines[0].control;
      std::swap(c.stmts[0].then_block, c.stmts[0].else_block);
      // The routed (now else) branch decrements TTL inline, unguarded.
      c.stmts[0].else_block.stmts.push_back(ControlStmt::inline_op(
          ActionOp::assign("hdr.ipv4.ttl",
                           ctx.arena.arith(ir::ArithOp::kSub,
                                           ctx.field_var("hdr.ipv4.ttl", 8),
                                           ctx.arena.constant(1, 8)))));
      p4::validate(prog, ctx);
      bug.bundle.intents = {route_intent(ctx, prog, 1, 10)};
      std::vector<sim::DeviceInput> inputs = {
          {0, packet::serialize(prog, pta_ipv4_packet(prog, kEthIpv4,
                                                      0x0a010101, 64,
                                                      0x0b000001))}};
      AppBundle intended = make_router(ctx, 0, /*seed=*/98);
      intended.rules = fixed_router_rules();
      fill_pta_expectations(bug, ctx, intended, inputs);
      break;
    }
    case 5: {
      // Wrong deparser emit: the mTag edge forgets to emit the tag, so
      // upstream packets leave untagged.
      bug.name = "wrong deparser emit";
      bug.bundle = make_mtag(ctx, 3);
      p4::Program& prog = bug.bundle.dp.program;
      auto& emit = prog.pipelines[0].deparser.emit_order;
      emit.erase(std::remove(emit.begin(), emit.end(), "mtag"), emit.end());
      p4::validate(prog, ctx);
      // The bundle's default intents already require the tag upstream.
      // Handwritten suite: a host-side packet to a known MAC must come out
      // tagged (computed against the intended program).
      AppBundle intended = make_mtag(ctx, 3, /*seed=*/2);
      packet::Packet in;
      packet::HeaderValues eth;
      eth.header = "eth";
      eth.values = {intended.rules.entries[0].matches[0].value,
                    0x0400000000ffull, 0x1234};
      in.headers.push_back(eth);
      for (int i = 0; i < 16; ++i) in.payload.push_back(0x55);
      std::vector<sim::DeviceInput> inputs = {
          {0, packet::serialize(prog, in)}};
      fill_pta_expectations(bug, ctx, intended, inputs);
      break;
    }
    case 6: {
      // Checksum fail-to-update: the gateway egress parser forgot the
      // inner-TCP state, so the inner L4 checksum is never finalized.
      bug.name = "checksum fail-to-update";
      GwConfig cfg;
      cfg.level = 2;
      cfg.elastic_ips = 4;
      bug.bundle = make_gateway(ctx, cfg);
      p4::Program& prog = bug.bundle.dp.program;
      for (p4::PipelineDef& p : prog.pipelines) {
        if (p.name == "gw_egress") {
          p.parser.states = tunnel_parser(/*parse_inner_tcp=*/false);
        }
      }
      p4::validate(prog, ctx);
      // Operator spec for this sub-case: outbound NAT'd TCP must leave
      // with a correct inner checksum (nothing about header layout).
      spec::IntentBuilder ib(ctx, prog, "gw-inner-csum");
      ib.assume(ctx.arena.cmp(ir::CmpOp::kLt, ib.in_port(), ib.num(32, 9)));
      ib.assume(ctx.arena.cmp(ir::CmpOp::kEq, ib.in("hdr.eth.type"),
                              ib.num(kEthIpv4, 16)));
      ib.assume(ctx.arena.cmp(ir::CmpOp::kEq, ib.in("hdr.ipv4.proto"),
                              ib.num(kProtoTcp, 8)));
      ib.assume(ctx.arena.cmp(ir::CmpOp::kEq, ib.in("hdr.ipv4.src"),
                              ib.num(0x0a000000, 32)));
      ib.expect_delivered();
      ib.expect_checksum("hdr.inner_tcp.csum",
                         {"hdr.inner_ipv4.src", "hdr.inner_ipv4.dst",
                          "hdr.inner_ipv4.proto", "hdr.inner_tcp.sport",
                          "hdr.inner_tcp.dport"});
      bug.bundle.intents = {ib.build()};
      break;
    }
    // ============================================ non-code bugs (7-16)
    case 7: {
      // p4c frontend bug 2147 analog: a parser select compiled away.
      bug.name = "p4c frontend bug 2147 (parser select dropped)";
      bug.code_bug = false;
      bug.bundle = mini_classifier(ctx);
      bug.fault.kind = sim::FaultKind::kParserSkipSelect;
      bug.fault.parser_state = "start";
      break;
    }
    case 8: {
      // p4c frontend bug 2343 analog: ternary masks folded out.
      bug.name = "p4c frontend bug 2343 (mask folded)";
      bug.code_bug = false;
      bug.bundle = mini_ternary(ctx);
      bug.fault.kind = sim::FaultKind::kMaskFoldBug;
      break;
    }
    case 9: {
      // bf-p4c backend bug 1 analog: assignment dropped from an action.
      bug.name = "bf-p4c backend bug 1 (dropped assignment)";
      bug.code_bug = false;
      bug.bundle = mini_rewrite(ctx);
      bug.fault.kind = sim::FaultKind::kDropAssignment;
      bug.fault.action = "rewrite";
      break;
    }
    case 10: {
      // bf-p4c backend bug 3 analog: default action not applied on miss.
      bug.name = "bf-p4c backend bug 3 (wrong default action)";
      bug.code_bug = false;
      bug.bundle = mini_rewrite(ctx);
      bug.fault.kind = sim::FaultKind::kWrongDefaultAction;
      bug.fault.table = "rw";
      break;
    }
    case 11: {
      // bf-p4c backend bug 6 analog: additions leak their carry bit.
      bug.name = "bf-p4c backend bug 6 (carry leak)";
      bug.code_bug = false;
      bug.bundle = mini_adder(ctx);
      bug.fault.kind = sim::FaultKind::kAddCarryLeak;
      bug.fault.field_b = "hdr.pair.b";
      break;
    }
    case 12: {
      // bf-p4c backend bug A: 32-bit comparison lowered to 16 bits.
      bug.name = "bf-p4c backend bug A (incorrect arithmetic comparison)";
      bug.code_bug = false;
      GwConfig cfg;
      cfg.level = 1;
      cfg.elastic_ips = 4;
      bug.bundle = make_gateway(ctx, cfg);
      add_blocklist_guard(ctx, bug.bundle);
      // The operator's sub-cases exclude the (documented) blocked address.
      for (spec::Intent& intent : bug.bundle.intents) {
        intent.assumes.push_back(
            ctx.arena.cmp(ir::CmpOp::kNe, ctx.field_var("in.hdr.ipv4.dst", 32),
                          ctx.arena.constant(0xdead0000u, 32)));
      }
      bug.fault.kind = sim::FaultKind::kWrongCompareWidth;
      bug.fault.field = "hdr.ipv4.dst";
      break;
    }
    case 13: {
      // bf-p4c backend bug B: swapped assignment destinations.
      bug.name = "bf-p4c backend bug B (incorrect assignment)";
      bug.code_bug = false;
      GwConfig cfg;
      cfg.level = 1;
      cfg.elastic_ips = 4;
      bug.bundle = make_gateway(ctx, cfg);
      add_tos_stamp(ctx, bug.bundle);
      bug.fault.kind = sim::FaultKind::kSwappedAssignments;
      bug.fault.action = "tos_stamp";
      break;
    }
    case 14: {
      // bf-p4c backend bug C: setValid(vxlan) does not take effect.
      bug.name = "bf-p4c backend bug C (setValid)";
      bug.code_bug = false;
      GwConfig cfg;
      cfg.level = 1;
      cfg.elastic_ips = 4;
      bug.bundle = make_gateway(ctx, cfg);
      bug.fault.kind = sim::FaultKind::kDropSetValid;
      bug.fault.header = "vxlan";
      break;
    }
    case 15: {
      // Misuse of optimization pragmas: inner_ipv4.src and tcp.ackno share
      // a PHV container; nat_encap then propagates the clobbered ackno.
      bug.name = "misuse of optimization pragmas";
      bug.code_bug = false;
      GwConfig cfg;
      cfg.level = 2;
      cfg.elastic_ips = 4;
      bug.bundle = make_gateway(ctx, cfg);
      bug.fault.kind = sim::FaultKind::kFieldOverlap;
      bug.fault.field_a = "hdr.inner_ipv4.src";
      bug.fault.field_b = "hdr.tcp.ackno";
      break;
    }
    case 16: {
      // Missing compilation flags: metadata is not zero-initialized.
      bug.name = "missing compilation flags";
      bug.code_bug = false;
      GwConfig cfg;
      cfg.level = 3;
      cfg.elastic_ips = 4;
      bug.bundle = make_gateway(ctx, cfg);
      add_tenant_guard(ctx, bug.bundle);
      bug.fault.kind = sim::FaultKind::kSkipMetadataZero;
      break;
    }
    default:
      throw util::ValidationError("make_bug: index out of range");
  }
  return bug;
}

AppBundle make_bug_intended(ir::Context& ctx, int index) {
  switch (index) {
    case 1: {
      // Correct rules: route 1 leaves on port 10.
      AppBundle app = make_router(ctx, 0);
      app.rules = fixed_router_rules();
      return app;
    }
    case 2: {
      // Correct priorities: the deny outranks the catch-all permit.
      AppBundle app = make_acl(ctx, 0, 0);
      app.rules = fixed_router_rules();
      TableEntry permit;
      permit.table = "acl";
      permit.matches = {KeyMatch::wildcard(), KeyMatch::wildcard(),
                        KeyMatch::exact(0)};
      permit.action = "acl_permit";
      permit.priority = 2;
      app.rules.add(permit);
      TableEntry deny;
      deny.table = "acl";
      deny.matches = {KeyMatch::ternary(0xcb007100u, 0xffffff00u),
                      KeyMatch::wildcard(), KeyMatch::exact(0)};
      deny.action = "acl_deny";
      deny.priority = 1;
      app.rules.add(deny);
      return app;
    }
    case 3: {
      AppBundle app = make_router(ctx, 0, /*seed=*/99);
      app.rules = fixed_router_rules();
      return app;
    }
    case 4: {
      AppBundle app = make_router(ctx, 0, /*seed=*/98);
      app.rules = fixed_router_rules();
      return app;
    }
    case 5:
      return make_mtag(ctx, 3, /*seed=*/2);
    case 6: {
      GwConfig cfg;
      cfg.level = 2;
      cfg.elastic_ips = 4;
      return make_gateway(ctx, cfg);
    }
    // Toolchain bugs: the source bundle itself is the intended program —
    // compiling it without the FaultSpec yields the reference behaviour.
    case 7:
      return mini_classifier(ctx);
    case 8:
      return mini_ternary(ctx);
    case 9:
    case 10:
      return mini_rewrite(ctx);
    case 11:
      return mini_adder(ctx);
    case 12: {
      GwConfig cfg;
      cfg.level = 1;
      cfg.elastic_ips = 4;
      AppBundle app = make_gateway(ctx, cfg);
      add_blocklist_guard(ctx, app);
      return app;
    }
    case 13: {
      GwConfig cfg;
      cfg.level = 1;
      cfg.elastic_ips = 4;
      AppBundle app = make_gateway(ctx, cfg);
      add_tos_stamp(ctx, app);
      return app;
    }
    case 14: {
      GwConfig cfg;
      cfg.level = 1;
      cfg.elastic_ips = 4;
      return make_gateway(ctx, cfg);
    }
    case 15: {
      GwConfig cfg;
      cfg.level = 2;
      cfg.elastic_ips = 4;
      return make_gateway(ctx, cfg);
    }
    case 16: {
      GwConfig cfg;
      cfg.level = 3;
      cfg.elastic_ips = 4;
      AppBundle app = make_gateway(ctx, cfg);
      add_tenant_guard(ctx, app);
      return app;
    }
    default:
      throw util::ValidationError("make_bug_intended: index out of range");
  }
}

}  // namespace meissa::apps
