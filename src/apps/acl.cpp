// ACL: Router plus an access-control table matching src/dst (ternary) and
// ECN (exact) ahead of routing (paper Table 1 row 3).
#include "apps/apps.hpp"
#include "apps/protocols.hpp"
#include "apps/rulegen.hpp"

namespace meissa::apps {

using p4::ActionDef;
using p4::ActionOp;
using p4::ControlStmt;
using p4::KeyMatch;
using p4::MatchKind;
using p4::TableDef;
using p4::TableEntry;

AppBundle make_acl(ir::Context& ctx, int n_routes, int n_acls, uint64_t seed) {
  // Start from the Router program and add the ACL stage.
  AppBundle app = make_router(ctx, n_routes, seed);
  app.name = "ACL";
  p4::Program& prog = app.dp.program;

  // Telemetry: records which verdict matched (1 permit / 2 deny) for the
  // control plane; no pipeline stage reads it back.
  prog.metadata.push_back({"meta.acl_hit", 8, /*telemetry=*/true});
  ctx.fields.intern("meta.acl_hit", 8);

  ActionDef permit;
  permit.name = "acl_permit";
  permit.ops = {ActionOp::assign("meta.acl_hit", ctx.arena.constant(1, 8))};
  ActionDef deny;
  deny.name = "acl_deny";
  deny.ops = {
      ActionOp::assign("meta.acl_hit", ctx.arena.constant(2, 8)),
      ActionOp::assign(std::string(p4::kDropFlag), ctx.arena.constant(1, 1)),
  };
  prog.actions.push_back(permit);
  prog.actions.push_back(deny);

  TableDef acl;
  acl.name = "acl";
  acl.keys = {{"hdr.ipv4.src", MatchKind::kTernary},
              {"hdr.ipv4.dst", MatchKind::kTernary},
              {"hdr.ipv4.ecn", MatchKind::kExact}};
  acl.actions = {"acl_permit", "acl_deny"};
  acl.default_action = "acl_permit";
  prog.tables.push_back(acl);

  // Prepend the ACL to the routed (validity-guarded) branch.
  p4::ControlBlock& routed = prog.pipelines[0].control.stmts[0].then_block;
  p4::ControlBlock with_acl;
  with_acl.stmts.push_back(ControlStmt::apply("acl"));
  for (ControlStmt& s : routed.stmts) with_acl.stmts.push_back(s);
  routed = with_acl;
  p4::validate(prog, ctx);

  util::Rng rng(seed * 31 + 7);
  for (int i = 0; i < n_acls; ++i) {
    TableEntry e;
    e.table = "acl";
    int src_len = static_cast<int>(rng.range(8, 24));
    int dst_len = static_cast<int>(rng.range(8, 24));
    uint64_t src_mask =
        (util::mask_bits(32) << (32 - src_len)) & util::mask_bits(32);
    uint64_t dst_mask =
        (util::mask_bits(32) << (32 - dst_len)) & util::mask_bits(32);
    e.matches = {
        KeyMatch::ternary(random_prefix(rng, src_len), src_mask),
        KeyMatch::ternary(random_prefix(rng, dst_len), dst_mask),
        KeyMatch::exact(rng.bits(2)),
    };
    e.action = rng.chance(1, 2) ? "acl_deny" : "acl_permit";
    e.args = {};
    e.priority = i;
    app.rules.add(e);
  }
  app.rules.name = "acl-rules";
  return app;
}

}  // namespace meissa::apps
