// Production-style elastic-IP gateway family (paper Table 1 rows 5-8 and
// the Fig. 1 deployment): VXLAN encap/decap with elastic-IP NAT, ACLs,
// statistics, a proprietary transit header, and switch-style L2/L3 pipes,
// instantiated as 1, 2, 4 or 8 pipelines across 1 or 2 switches.
#include <algorithm>

#include "apps/apps.hpp"
#include "apps/protocols.hpp"
#include "apps/rulegen.hpp"

namespace meissa::apps {

using p4::ActionDef;
using p4::ActionOp;
using p4::ControlStmt;
using p4::KeyMatch;
using p4::MatchKind;
using p4::TableDef;
using p4::TableEntry;

namespace {

// Deterministic address plan for the elastic-IP rule sets (set-k scaling).
uint64_t vm_private_ip(int i) { return 0x0a000000u + static_cast<uint64_t>(i); }
uint64_t elastic_ip(int i) { return 0xcb007100u + static_cast<uint64_t>(i); }
uint64_t remote_vtep_ip(int i) { return 0xc6336400u + static_cast<uint64_t>(i % 64); }
uint64_t vni_of(int i) { return 100000u + static_cast<uint64_t>(i); }
constexpr uint64_t kGatewayIp = 0xc0a80001;

}  // namespace

AppBundle make_gateway(ir::Context& ctx, const GwConfig& cfg) {
  p4::ProgramBuilder b(ctx, "gw-" + std::to_string(cfg.level));
  b.header("eth", eth_header().fields);
  b.header("ipv4", ipv4_header().fields);
  b.header("tcp", tcp_header().fields);
  b.header("udp", udp_header().fields);
  b.header("vxlan", vxlan_header().fields);
  b.header("inner_ipv4", ipv4_header("inner_ipv4").fields);
  b.header("inner_tcp", tcp_header("inner_tcp").fields);
  if (cfg.level >= 3) b.header("prop", prop_header().fields);
  b.metadata_field("meta.direction", 2);  // 1 = outbound, 2 = inbound
  // Telemetry markers: the classifier/policer/decap stages record what they
  // decided for the control plane; the pipeline's own matching deliberately
  // re-keys on packet fields (the Fig. 7 constraint chain), so nothing
  // downstream reads these. The bug corpus's injected guards do read
  // meta.tenant, which is why it exists at every level.
  b.metadata_field("meta.tenant", 24, /*telemetry=*/true);
  b.metadata_field("meta.flow_class", 8, /*telemetry=*/true);
  b.metadata_field("meta.policed", 2, /*telemetry=*/true);
  b.register_array("gw_stats", 32, 4);

  // ------------------------------------------------------------- actions
  ActionDef drop;
  drop.name = "drop";
  drop.ops = {ActionOp::assign(std::string(p4::kDropFlag), b.num(1, 1))};
  b.action(drop);

  ActionDef nop;
  nop.name = "nop";
  b.action(nop);

  // Outbound: VM traffic <eth ipv4 tcp> -> NAT to the elastic IP and wrap
  // in <eth ipv4(outer) udp vxlan inner_ipv4 inner_tcp>.
  ActionDef encap;
  encap.name = "eip_encap";
  encap.params = {{"eip", 32},
                  {"vni", 24},
                  {"vtep", 32},
                  {"port", p4::kPortWidth}};
  encap.ops = {
      // Inner copies (NAT source to the elastic IP).
      ActionOp::set_valid("inner_ipv4"),
      ActionOp::assign("hdr.inner_ipv4.ver_ihl", b.var("hdr.ipv4.ver_ihl")),
      ActionOp::assign("hdr.inner_ipv4.dscp", b.var("hdr.ipv4.dscp")),
      ActionOp::assign("hdr.inner_ipv4.ecn", b.var("hdr.ipv4.ecn")),
      ActionOp::assign("hdr.inner_ipv4.len", b.var("hdr.ipv4.len")),
      ActionOp::assign("hdr.inner_ipv4.id", b.var("hdr.ipv4.id")),
      ActionOp::assign("hdr.inner_ipv4.frag", b.var("hdr.ipv4.frag")),
      ActionOp::assign("hdr.inner_ipv4.ttl", b.var("hdr.ipv4.ttl")),
      ActionOp::assign("hdr.inner_ipv4.proto", b.var("hdr.ipv4.proto")),
      ActionOp::assign("hdr.inner_ipv4.csum", b.var("hdr.ipv4.csum")),
      ActionOp::assign("hdr.inner_ipv4.src", b.arg("eip_encap", "eip", 32)),
      ActionOp::assign("hdr.inner_ipv4.dst", b.var("hdr.ipv4.dst")),
      ActionOp::set_valid("inner_tcp"),
      ActionOp::assign("hdr.inner_tcp.sport", b.var("hdr.tcp.sport")),
      ActionOp::assign("hdr.inner_tcp.dport", b.var("hdr.tcp.dport")),
      ActionOp::assign("hdr.inner_tcp.seqno", b.var("hdr.tcp.seqno")),
      ActionOp::assign("hdr.inner_tcp.ackno", b.var("hdr.tcp.ackno")),
      ActionOp::assign("hdr.inner_tcp.flags", b.var("hdr.tcp.flags")),
      ActionOp::assign("hdr.inner_tcp.window", b.var("hdr.tcp.window")),
      ActionOp::assign("hdr.inner_tcp.csum", b.var("hdr.tcp.csum")),
      ActionOp::assign("hdr.inner_tcp.urgent", b.var("hdr.tcp.urgent")),
      ActionOp::set_invalid("tcp"),
      // Outer headers.
      ActionOp::assign("hdr.ipv4.src", b.num(kGatewayIp, 32)),
      ActionOp::assign("hdr.ipv4.dst", b.arg("eip_encap", "vtep", 32)),
      ActionOp::assign("hdr.ipv4.proto", b.num(kProtoUdp, 8)),
      ActionOp::set_valid("udp"),
      ActionOp::assign("hdr.udp.sport", b.num(49152, 16)),
      ActionOp::assign("hdr.udp.dport", b.num(kUdpVxlan, 16)),
      ActionOp::set_valid("vxlan"),
      ActionOp::assign("hdr.vxlan.flags", b.num(0x08, 8)),
      ActionOp::assign("hdr.vxlan.vni", b.arg("eip_encap", "vni", 24)),
      ActionOp::assign(std::string(p4::kEgressSpec),
                       b.arg("eip_encap", "port", p4::kPortWidth)),
  };
  b.action(encap);

  // Inbound: tunneled traffic -> strip the tunnel, NAT the elastic IP back
  // to the VM-private address.
  ActionDef decap;
  decap.name = "eip_decap";
  decap.params = {{"private_ip", 32}, {"port", p4::kPortWidth}};
  decap.ops = {
      ActionOp::assign("hdr.ipv4.ver_ihl", b.var("hdr.inner_ipv4.ver_ihl")),
      ActionOp::assign("hdr.ipv4.dscp", b.var("hdr.inner_ipv4.dscp")),
      ActionOp::assign("hdr.ipv4.ecn", b.var("hdr.inner_ipv4.ecn")),
      ActionOp::assign("hdr.ipv4.len", b.var("hdr.inner_ipv4.len")),
      ActionOp::assign("hdr.ipv4.id", b.var("hdr.inner_ipv4.id")),
      ActionOp::assign("hdr.ipv4.frag", b.var("hdr.inner_ipv4.frag")),
      ActionOp::assign("hdr.ipv4.ttl", b.var("hdr.inner_ipv4.ttl")),
      ActionOp::assign("hdr.ipv4.proto", b.var("hdr.inner_ipv4.proto")),
      ActionOp::assign("hdr.ipv4.csum", b.var("hdr.inner_ipv4.csum")),
      ActionOp::assign("hdr.ipv4.src", b.var("hdr.inner_ipv4.src")),
      ActionOp::assign("hdr.ipv4.dst", b.arg("eip_decap", "private_ip", 32)),
      ActionOp::set_valid("tcp"),
      ActionOp::assign("hdr.tcp.sport", b.var("hdr.inner_tcp.sport")),
      ActionOp::assign("hdr.tcp.dport", b.var("hdr.inner_tcp.dport")),
      ActionOp::assign("hdr.tcp.seqno", b.var("hdr.inner_tcp.seqno")),
      ActionOp::assign("hdr.tcp.ackno", b.var("hdr.inner_tcp.ackno")),
      ActionOp::assign("hdr.tcp.flags", b.var("hdr.inner_tcp.flags")),
      ActionOp::assign("hdr.tcp.window", b.var("hdr.inner_tcp.window")),
      ActionOp::assign("hdr.tcp.csum", b.var("hdr.inner_tcp.csum")),
      ActionOp::assign("hdr.tcp.urgent", b.var("hdr.inner_tcp.urgent")),
      ActionOp::set_invalid("udp"),
      ActionOp::set_invalid("vxlan"),
      ActionOp::set_invalid("inner_ipv4"),
      ActionOp::set_invalid("inner_tcp"),
      ActionOp::assign(std::string(p4::kEgressSpec),
                       b.arg("eip_decap", "port", p4::kPortWidth)),
  };
  b.action(decap);

  ActionDef acl_deny;
  acl_deny.name = "acl_deny";
  acl_deny.ops = {ActionOp::assign(std::string(p4::kDropFlag), b.num(1, 1))};
  b.action(acl_deny);

  ActionDef count_gw;
  count_gw.name = "count_gw";
  count_gw.ops = {ActionOp::assign(
      p4::register_field("gw_stats", 0),
      ctx.arena.arith(ir::ArithOp::kAdd,
                      b.var(p4::register_field("gw_stats", 0)),
                      b.num(1, 32)))};
  b.action(count_gw);

  // Flow classification + policing (levels 2+): a constraint chain — the
  // policer matches on the same field the classifier constrained, so most
  // classifier x policer combinations are invalid (Fig. 7-style intra-
  // pipeline redundancy that code summary eliminates once instead of once
  // per upstream path).
  ActionDef set_fc;
  set_fc.name = "set_flow_class";
  set_fc.params = {{"fc", 8}};
  set_fc.ops = {ActionOp::assign("meta.flow_class",
                                 b.arg("set_flow_class", "fc", 8))};
  b.action(set_fc);

  ActionDef police;
  police.name = "police_mark";
  police.ops = {ActionOp::assign("meta.policed", b.num(1, 2))};
  b.action(police);

  ActionDef remark;
  remark.name = "qos_remark";
  remark.params = {{"dscp", 6}};
  remark.ops = {
      ActionOp::assign("hdr.ipv4.dscp", b.arg("qos_remark", "dscp", 6))};
  b.action(remark);

  // Proprietary transit header (gw-3/gw-4): tagged at the gateway ingress,
  // consumed and removed at the gateway egress.
  if (cfg.level >= 3) {
    ActionDef tag;
    tag.name = "prop_tag";
    tag.params = {{"tenant", 24}, {"flow_class", 8}};
    tag.ops = {
        ActionOp::set_valid("prop"),
        // Ethertype chain: prop.magic carries the original ethertype.
        ActionOp::assign("hdr.prop.magic", b.var("hdr.eth.type")),
        ActionOp::assign("hdr.eth.type", b.num(kEthProp, 16)),
        ActionOp::assign("hdr.prop.flow_class",
                         b.arg("prop_tag", "flow_class", 8)),
        ActionOp::assign("hdr.prop.tenant", b.arg("prop_tag", "tenant", 24)),
        ActionOp::assign("hdr.prop.seq", b.num(0, 16)),
        ActionOp::assign("meta.tenant", b.arg("prop_tag", "tenant", 24)),
    };
    b.action(tag);
    ActionDef untag;
    untag.name = "prop_untag";
    untag.ops = {
        ActionOp::assign("hdr.eth.type", b.var("hdr.prop.magic")),
        ActionOp::set_invalid("prop"),
    };
    b.action(untag);
  }

  // Switch-pipe actions (levels 3-4).
  ActionDef sw_route;
  sw_route.name = "sw_route";
  sw_route.params = {{"port", p4::kPortWidth}};
  sw_route.ops = {ActionOp::assign(
      std::string(p4::kEgressSpec), b.arg("sw_route", "port", p4::kPortWidth))};
  b.action(sw_route);

  ActionDef sw_set_dmac;
  sw_set_dmac.name = "sw_set_dmac";
  sw_set_dmac.params = {{"dmac", 48}};
  sw_set_dmac.ops = {
      ActionOp::assign("hdr.eth.dst", b.arg("sw_set_dmac", "dmac", 48))};
  b.action(sw_set_dmac);

  // -------------------------------------------------------------- tables
  TableDef eip;
  eip.name = "elastic_ip";
  eip.keys = {{"hdr.ipv4.src", MatchKind::kExact}};
  eip.actions = {"eip_encap", "drop"};
  eip.default_action = "drop";
  b.table(eip);

  TableDef eip_in;
  eip_in.name = "eip_decap_tbl";
  eip_in.keys = {{"hdr.vxlan.vni", MatchKind::kExact}};
  eip_in.actions = {"eip_decap", "drop"};
  eip_in.default_action = "drop";
  b.table(eip_in);

  TableDef acl;
  acl.name = "gw_acl";
  acl.keys = {{"hdr.ipv4.src", MatchKind::kTernary},
              {"hdr.ipv4.dst", MatchKind::kTernary}};
  acl.actions = {"acl_deny", "nop"};
  acl.default_action = "nop";
  b.table(acl);

  TableDef stats;
  stats.name = "gw_stats_tbl";
  stats.keys = {{"meta.direction", MatchKind::kExact}};
  stats.actions = {"count_gw", "nop"};
  stats.default_action = "nop";
  b.table(stats);

  TableDef fc_tbl;
  fc_tbl.name = "flow_class";
  fc_tbl.keys = {{"hdr.ipv4.id", MatchKind::kRange}};
  fc_tbl.actions = {"set_flow_class", "nop"};
  fc_tbl.default_action = "nop";
  b.table(fc_tbl);

  TableDef pol_tbl;
  pol_tbl.name = "policer";
  pol_tbl.keys = {{"hdr.ipv4.id", MatchKind::kExact}};
  pol_tbl.actions = {"police_mark", "nop"};
  pol_tbl.default_action = "nop";
  b.table(pol_tbl);

  TableDef qos;
  qos.name = "qos";
  qos.keys = {{"hdr.ipv4.dscp", MatchKind::kExact}};
  qos.actions = {"qos_remark", "nop"};
  qos.default_action = "nop";
  b.table(qos);

  if (cfg.level >= 3) {
    TableDef ptag;
    ptag.name = "prop_tag_tbl";
    // Keyed on the (pre-NAT) VM source address: applied before encap.
    ptag.keys = {{"hdr.ipv4.src", MatchKind::kExact}};
    ptag.actions = {"prop_tag", "nop"};
    ptag.default_action = "nop";
    b.table(ptag);
  }

  TableDef sw_l3;
  sw_l3.name = "sw_l3";
  sw_l3.keys = {{"hdr.ipv4.dst", MatchKind::kLpm}};
  sw_l3.actions = {"sw_route", "nop"};
  sw_l3.default_action = "nop";
  b.table(sw_l3);

  TableDef sw_dmac;
  sw_dmac.name = "sw_dmac";
  sw_dmac.keys = {{std::string(p4::kEgressSpec), MatchKind::kExact}};
  sw_dmac.actions = {"sw_set_dmac", "nop"};
  sw_dmac.default_action = "nop";
  b.table(sw_dmac);

  // ----------------------------------------------------------- pipelines
  // Gateway ingress: classify direction, ACL, encap or decap, stats.
  {
    p4::PipelineDef gig;
    gig.name = "gw_ingress";
    gig.parser.start = "start";
    // The transit header is internal: the gateway ingress never accepts
    // it from the outside world.
    gig.parser.states = tunnel_parser(/*parse_inner_tcp=*/true,
                                      /*with_prop=*/false);

    p4::ControlBlock outbound;
    outbound.stmts = {
        ControlStmt::inline_op(
            ActionOp::assign("meta.direction", b.num(1, 2))),
        ControlStmt::apply("elastic_ip"),
    };
    p4::ControlBlock inbound;
    inbound.stmts = {
        ControlStmt::inline_op(
            ActionOp::assign("meta.direction", b.num(2, 2))),
        ControlStmt::apply("eip_decap_tbl"),
    };
    if (cfg.level >= 3) {
      outbound.stmts.insert(outbound.stmts.begin() + 1,
                            ControlStmt::apply("prop_tag_tbl"));
    }
    p4::ControlBlock reject;
    reject.stmts = {ControlStmt::inline_op(
        ActionOp::assign(std::string(p4::kDropFlag), b.num(1, 1)))};

    p4::ControlBlock body;
    body.stmts.push_back(ControlStmt::apply("gw_acl"));
    // Outbound traffic is plain TCP from VMs; inbound is VXLAN from VTEPs.
    body.stmts.push_back(ControlStmt::if_else(
        ctx.arena.band(b.is_valid("tcp"),
                       ctx.arena.cmp(ir::CmpOp::kLt, b.var(p4::kIngressPort),
                                     b.num(32, 9))),
        outbound,
        {{ControlStmt::if_else(b.is_valid("inner_tcp"), inbound, reject)}}));
    if (cfg.level == 1) {
      // The single-pipe gateway carries the QoS chain itself.
      body.stmts.push_back(ControlStmt::apply("flow_class"));
      body.stmts.push_back(ControlStmt::apply("policer"));
    }
    body.stmts.push_back(ControlStmt::apply("gw_stats_tbl"));
    gig.control = body;
    gig.deparser.emit_order = {"eth",  "ipv4",       "udp",       "vxlan",
                               "inner_ipv4", "inner_tcp", "tcp"};
    if (cfg.level >= 3) {
      gig.deparser.emit_order.insert(gig.deparser.emit_order.begin() + 1,
                                     "prop");
    }
    gig.deparser.checksum_updates = {ipv4_checksum()};
    b.pipeline(gig);
  }

  // Gateway egress: QoS remark and checksum finalization.
  if (cfg.level >= 2) {
    p4::PipelineDef geg;
    geg.name = "gw_egress";
    geg.parser.start = "start";
    geg.parser.states =
        tunnel_parser(/*parse_inner_tcp=*/true, /*with_prop=*/cfg.level >= 3);
    geg.control.stmts = {ControlStmt::apply("flow_class"),
                         ControlStmt::apply("policer"),
                         ControlStmt::apply("qos")};
    if (cfg.level >= 3) {
      p4::ControlBlock strip;
      strip.stmts = {
          ControlStmt::inline_op(
              ActionOp::assign("hdr.eth.type", b.var("hdr.prop.magic"))),
          ControlStmt::inline_op(ActionOp::set_invalid("prop")),
      };
      geg.control.stmts.push_back(
          ControlStmt::if_else(b.is_valid("prop"), strip));
    }
    geg.deparser.emit_order = {"eth",  "ipv4",       "udp",       "vxlan",
                               "inner_ipv4", "inner_tcp", "tcp"};
    if (cfg.level >= 3) {
      geg.deparser.emit_order.insert(geg.deparser.emit_order.begin() + 1,
                                     "prop");
    }
    geg.deparser.checksum_updates = {
        ipv4_checksum(), l4_checksum("inner_ipv4", "inner_tcp")};
    b.pipeline(geg);
  }

  // Switch pipes (levels 3-4): standard L3 + MAC rewrite.
  if (cfg.level >= 3) {
    p4::PipelineDef sig;
    sig.name = "sw_ingress";
    sig.parser.start = "start";
    sig.parser.states =
        tunnel_parser(/*parse_inner_tcp=*/true, /*with_prop=*/true);
    sig.control.stmts = {ControlStmt::apply("sw_l3")};
    sig.deparser.emit_order = {"eth", "prop", "ipv4",      "udp",
                               "vxlan",      "inner_ipv4", "inner_tcp", "tcp"};
    b.pipeline(sig);

    p4::PipelineDef seg;
    seg.name = "sw_egress";
    seg.parser.start = "start";
    seg.parser.states =
        tunnel_parser(/*parse_inner_tcp=*/true, /*with_prop=*/true);
    seg.control.stmts = {ControlStmt::apply("sw_dmac")};
    seg.deparser.emit_order = {"eth", "prop", "ipv4",      "udp",
                               "vxlan",      "inner_ipv4", "inner_tcp", "tcp"};
    b.pipeline(seg);
  }

  AppBundle app;
  app.name = "gw-" + std::to_string(cfg.level);
  app.p4_14 = false;
  app.dp.program = b.build();

  // ------------------------------------------------------------ topology
  auto guard_lt = [&](uint64_t v) {
    return ctx.arena.cmp(ir::CmpOp::kLt, ctx.field_var(p4::kEgressSpec, 9),
                         ctx.arena.constant(v, 9));
  };
  auto guard_ge = [&](uint64_t v) {
    return ctx.arena.cmp(ir::CmpOp::kGe, ctx.field_var(p4::kEgressSpec, 9),
                         ctx.arena.constant(v, 9));
  };
  switch (cfg.level) {
    case 1:
      app.dp.topology.instances = {{"sw0.gig", "gw_ingress", 0}};
      app.dp.topology.entries = {{"sw0.gig", nullptr}};
      break;
    case 2:
      app.dp.topology.instances = {{"sw0.gig", "gw_ingress", 0},
                                   {"sw0.geg", "gw_egress", 0}};
      app.dp.topology.edges = {{"sw0.gig", "sw0.geg", nullptr}};
      app.dp.topology.entries = {{"sw0.gig", nullptr}};
      break;
    case 3:
      app.dp.topology.instances = {{"sw0.gig", "gw_ingress", 0},
                                   {"sw0.seg", "sw_egress", 0},
                                   {"sw0.sig", "sw_ingress", 0},
                                   {"sw0.geg", "gw_egress", 0}};
      // Fig. 1 flow A: ingress 0 -> egress 1 -> ingress 1 -> egress 0.
      app.dp.topology.edges = {{"sw0.gig", "sw0.seg", nullptr},
                               {"sw0.seg", "sw0.sig", nullptr},
                               {"sw0.sig", "sw0.geg", nullptr}};
      app.dp.topology.entries = {{"sw0.gig", nullptr}};
      break;
    case 4:
    default:
      app.dp.topology.instances = {
          {"sw0.gig", "gw_ingress", 0}, {"sw0.seg", "sw_egress", 0},
          {"sw0.sig", "sw_ingress", 0}, {"sw0.geg", "gw_egress", 0},
          {"sw1.gig", "gw_ingress", 1}, {"sw1.seg", "sw_egress", 1},
          {"sw1.sig", "sw_ingress", 1}, {"sw1.geg", "gw_egress", 1},
      };
      // Flow A (eg_spec < 64): processed entirely in switch 0.
      // Flow B (eg_spec >= 64): egress 0 of switch 0 hands over the wire
      // to switch 1, which runs the full four-pipe path (Fig. 1).
      app.dp.topology.edges = {
          {"sw0.gig", "sw0.seg", guard_lt(64)},
          {"sw0.gig", "sw0.geg", guard_ge(64)},
          {"sw0.seg", "sw0.sig", nullptr},
          {"sw0.sig", "sw0.geg", nullptr},
          {"sw0.geg", "sw1.gig", guard_ge(64)},
          {"sw1.gig", "sw1.seg", guard_lt(64)},
          {"sw1.seg", "sw1.sig", nullptr},
          {"sw1.sig", "sw1.geg", nullptr},
      };
      app.dp.topology.entries = {{"sw0.gig", nullptr}};
      break;
  }
  p4::validate(app.dp, ctx);

  // --------------------------------------------------------------- rules
  util::Rng rng(cfg.seed);
  app.rules.name = "set-" + std::to_string(cfg.level);
  const int E = cfg.elastic_ips;
  for (int i = 0; i < E; ++i) {
    TableEntry out;
    out.table = "elastic_ip";
    out.matches = {KeyMatch::exact(vm_private_ip(i))};
    out.action = "eip_encap";
    // Half the flows stay local (ports < 64), half cross switches (>= 64):
    // the Fig. 1 flow A / flow B split.
    uint64_t port = (i % 2 == 0) ? 8 + static_cast<uint64_t>(i % 48)
                                 : 64 + static_cast<uint64_t>(i % 48);
    out.args = {elastic_ip(i), vni_of(i), remote_vtep_ip(i), port};
    app.rules.add(out);

    TableEntry in;
    in.table = "eip_decap_tbl";
    in.matches = {KeyMatch::exact(vni_of(i))};
    in.action = "eip_decap";
    in.args = {vm_private_ip(i), 1 + static_cast<uint64_t>(i % 31)};
    app.rules.add(in);

    if (cfg.level >= 3) {
      TableEntry tag;
      tag.table = "prop_tag_tbl";
      tag.matches = {KeyMatch::exact(vm_private_ip(i))};
      tag.action = "prop_tag";
      tag.args = {static_cast<uint64_t>(1000 + i), static_cast<uint64_t>(i % 4)};
      app.rules.add(tag);

      TableEntry l3;
      l3.table = "sw_l3";
      // Host routes, one per VTEP: a shared /24 would shadow every entry
      // after the first and pin all flows to one port, collapsing the
      // Fig. 1 flow A / flow B split.
      l3.matches = {KeyMatch::lpm(remote_vtep_ip(i), 32)};
      l3.action = "sw_route";
      l3.args = {out.args[3]};  // keep the chosen port (chain consistency)
      app.rules.add(l3);

      TableEntry dm;
      dm.table = "sw_dmac";
      // Key on the port the packet carries when it reaches a switch
      // egress: flow A keeps its local port, but flow B is re-classified
      // and decapped at the remote switch before its seg pipe, so there
      // it carries the decap port, not the uplink port.
      dm.matches = {KeyMatch::exact(i % 2 == 0 ? out.args[3] : in.args[1])};
      dm.action = "sw_set_dmac";
      dm.args = {0x02aa00000000ull + static_cast<uint64_t>(i)};
      app.rules.add(dm);
    }
  }
  {
    // A few deny rules on reserved source ranges.
    for (int i = 0; i < std::max(2, E / 4); ++i) {
      TableEntry a;
      a.table = "gw_acl";
      a.matches = {KeyMatch::ternary(0xe0000000u + (static_cast<uint64_t>(i) << 20),
                                     0xfff00000u),
                   KeyMatch::wildcard()};
      a.action = "acl_deny";
      a.priority = i;
      app.rules.add(a);
    }
  }
  {
    const int F = std::max(4, E / 4);
    for (int i = 0; i < F; ++i) {
      TableEntry fc;
      fc.table = "flow_class";
      fc.matches = {KeyMatch::range(static_cast<uint64_t>(i) * 4096,
                                    static_cast<uint64_t>(i + 1) * 4096 - 1)};
      fc.action = "set_flow_class";
      fc.args = {static_cast<uint64_t>(i)};
      app.rules.add(fc);
      TableEntry pol;
      pol.table = "policer";
      pol.matches = {KeyMatch::exact(static_cast<uint64_t>(i) * 4096 + 7)};
      pol.action = "police_mark";
      app.rules.add(pol);
    }
  }
  {
    TableEntry s1;
    s1.table = "gw_stats_tbl";
    s1.matches = {KeyMatch::exact(1)};
    s1.action = "count_gw";
    app.rules.add(s1);
    TableEntry q;
    q.table = "qos";
    q.matches = {KeyMatch::exact(0)};
    q.action = "qos_remark";
    q.args = {46};  // EF
    if (cfg.level >= 2) app.rules.add(q);
  }

  // -------------------------------------------------------------- intents
  // The paper's §6 NAT sub-case workflow, pinned to elastic-IP entry 0.
  spec::IntentBuilder enc(ctx, app.dp.program, "gw-outbound-encap");
  enc.assume(ctx.arena.cmp(ir::CmpOp::kLt, enc.in_port(), enc.num(32, 9)));
  enc.assume(ctx.arena.cmp(ir::CmpOp::kEq, enc.in("hdr.eth.type"),
                           enc.num(kEthIpv4, 16)));
  enc.assume(ctx.arena.cmp(ir::CmpOp::kEq, enc.in("hdr.ipv4.proto"),
                           enc.num(kProtoTcp, 8)));
  enc.assume(ctx.arena.cmp(ir::CmpOp::kEq, enc.in("hdr.ipv4.src"),
                           enc.num(vm_private_ip(0), 32)));
  enc.expect_delivered();
  enc.expect_header("vxlan", true);
  enc.expect_header("inner_tcp", true);
  enc.expect(ctx.arena.cmp(ir::CmpOp::kEq, enc.out("hdr.inner_ipv4.src"),
                           enc.num(elastic_ip(0), 32)));
  enc.expect(ctx.arena.cmp(ir::CmpOp::kEq, enc.out("hdr.inner_tcp.ackno"),
                           enc.in("hdr.tcp.ackno")));
  if (cfg.level >= 2) {
    // The egress pipeline must leave a correct inner L4 checksum.
    enc.expect_checksum("hdr.inner_tcp.csum",
                        {"hdr.inner_ipv4.src", "hdr.inner_ipv4.dst",
                         "hdr.inner_ipv4.proto", "hdr.inner_tcp.sport",
                         "hdr.inner_tcp.dport"});
  }
  app.intents.push_back(enc.build());

  spec::IntentBuilder dec(ctx, app.dp.program, "gw-inbound-decap");
  dec.assume(ctx.arena.cmp(ir::CmpOp::kGe, dec.in_port(), dec.num(32, 9)));
  dec.assume(ctx.arena.cmp(ir::CmpOp::kEq, dec.in("hdr.eth.type"),
                           dec.num(kEthIpv4, 16)));
  dec.assume(ctx.arena.cmp(ir::CmpOp::kEq, dec.in("hdr.vxlan.vni"),
                           dec.num(vni_of(0), 24)));
  dec.assume(ctx.arena.cmp(ir::CmpOp::kEq, dec.in("hdr.inner_ipv4.proto"),
                           dec.num(kProtoTcp, 8)));
  // Tunnels come from unicast VTEPs; the ACL's denied ranges (multicast
  // and reserved space) are out of scope for this sub-case.
  dec.assume(ctx.arena.cmp(ir::CmpOp::kLt, dec.in("hdr.ipv4.src"),
                           dec.num(0xe0000000u, 32)));
  dec.expect_delivered();
  dec.expect_header("vxlan", false);
  dec.expect(ctx.arena.cmp(ir::CmpOp::kEq, dec.out("hdr.ipv4.dst"),
                           dec.num(vm_private_ip(0), 32)));
  app.intents.push_back(dec.build());

  return app;
}

}  // namespace meissa::apps
