#include "apps/survival.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <set>

#include "analysis/lint.hpp"
#include "analysis/validate.hpp"
#include "cfg/build.hpp"
#include "driver/sender.hpp"
#include "driver/tester.hpp"
#include "fuzz/fuzz.hpp"
#include "obs/metrics.hpp"
#include "sim/toolchain.hpp"
#include "summary/summary.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/supervise.hpp"

namespace meissa::apps::survival {

using corpus::BugVariant;
using corpus::MutationKind;

const char* detector_name(Detector d) noexcept {
  switch (d) {
    case Detector::kLint: return "lint";
    case Detector::kVerify: return "verify";
    case Detector::kEngine: return "engine";
    case Detector::kFuzz: return "fuzz";
    case Detector::kNone: return "none";
  }
  return "?";
}

namespace {

// Canonical diagnostic key for the lint diff (node ids shift between the
// baseline and the mutated graph, so they are excluded).
std::set<std::string> lint_keys(const analysis::LintResult& r) {
  std::set<std::string> keys;
  for (const analysis::Diagnostic& d : r.diagnostics) {
    keys.insert(d.code + "\x1f" + d.instance + "\x1f" + d.field + "\x1f" +
                d.message);
  }
  return keys;
}

// Everything the differential lanes need about one reference program:
// lint baseline, engine model (cached generation), and the fuzz seed pool.
// Built once for the app bundle and shared by every variant without its
// own reference; built per variant for legacy scenarios.
struct ReferenceState {
  ir::Context& ctx;
  const p4::DataPlane& dp;
  const p4::RuleSet& rules;
  const std::vector<spec::Intent>& intents;
  std::optional<std::set<std::string>> lint_baseline;
  std::unique_ptr<driver::Meissa> meissa;
  sim::DeviceProgram ref_prog;
  bool compiled = false;
  std::vector<driver::TestCase> seeds;
  bool seeded = false;
  std::optional<summary::SummaryResult> summarized;
  std::optional<cfg::Cfg> lint_graph;  // unsummarized graph (verify lane)

  ReferenceState(ir::Context& c, const p4::DataPlane& d,
                 const p4::RuleSet& r, const std::vector<spec::Intent>& in)
      : ctx(c), dp(d), rules(r), intents(in) {}

  const std::set<std::string>& baseline() {
    if (!lint_baseline) {
      cfg::Cfg g = cfg::build_cfg(dp, rules, ctx);
      lint_baseline = lint_keys(analysis::lint_cfg(ctx, g));
    }
    return *lint_baseline;
  }

  driver::Meissa& engine(const SurvivalOptions& opts) {
    if (!meissa) {
      driver::TestRunOptions topts;
      topts.seed = opts.seed;
      topts.gen.threads = opts.threads;
      if (opts.engine_max_templates) {
        topts.gen.max_templates = opts.engine_max_templates;
      }
      meissa = std::make_unique<driver::Meissa>(ctx, dp, rules, topts);
      meissa->generate();
    }
    return *meissa;
  }

  const sim::DeviceProgram& reference_program() {
    if (!compiled) {
      ref_prog = sim::compile(dp, rules, ctx);
      compiled = true;
    }
    return ref_prog;
  }

  const std::vector<driver::TestCase>& fuzz_seeds(const SurvivalOptions& o) {
    if (!seeded) {
      seeded = true;
      driver::Meissa& m = engine(o);
      driver::Sender sender(ctx, dp, m.graph(), o.seed);
      for (const sym::TestCaseTemplate& t : m.generate()) {
        if (seeds.size() >= o.fuzz_seeds) break;
        std::optional<driver::TestCase> tc =
            sender.concretize(t, m.generator().engine());
        if (tc) seeds.push_back(std::move(*tc));
      }
    }
    return seeds;
  }

  const cfg::Cfg& original_graph() {
    if (!lint_graph) lint_graph = cfg::build_cfg(dp, rules, ctx);
    return *lint_graph;
  }

  const summary::SummaryResult& summary() {
    if (!summarized) {
      summarized = summary::summarize(ctx, original_graph(), {});
    }
    return *summarized;
  }
};

bool lint_lane(ReferenceState& ref, const BugVariant& v,
               VariantOutcome& o) {
  if (!v.code_bug) return false;  // source program unchanged by definition
  try {
    cfg::Cfg g = cfg::build_cfg(v.dp, v.rules, *v.ctx);
    std::set<std::string> keys = lint_keys(analysis::lint_cfg(*v.ctx, g));
    const std::set<std::string>& base = ref.baseline();
    for (const std::string& k : keys) {
      if (base.count(k)) continue;
      const size_t cut = k.find('\x1f');
      o.detail = "new diagnostic: " + k.substr(0, cut);
      return true;
    }
  } catch (const util::Error&) {
    // An unlintable mutant is itself a loud detection.
    o.detail = "mutated program failed to build a CFG";
    return true;
  }
  return false;
}

bool verify_lane(ReferenceState& ref, const BugVariant& v,
                 VariantOutcome& o) {
  try {
    if (v.kind == MutationKind::kSummary) {
      std::optional<analysis::SummaryFaultKind> fk =
          analysis::parse_summary_fault(v.summary_fault);
      if (!fk) return false;
      cfg::Cfg broken = ref.summary().graph;
      if (!analysis::inject_summary_fault(*v.ctx, broken, *fk)) return false;
      analysis::ValidationResult vr =
          analysis::validate_summary(*v.ctx, ref.original_graph(), broken);
      if (!vr.sound()) {
        const analysis::Obligation* ob = vr.first_refuted();
        o.detail = "refuted obligation";
        if (ob) {
          o.detail += std::string(": ") +
                      analysis::obligation_kind_name(ob->kind) + " in '" +
                      ob->pipeline + "'";
        }
        return true;
      }
      return false;
    }
    // Non-summary variants: summarize the mutated program and validate the
    // transform against the mutated original — sound summaries mean the
    // bug is invisible to translation validation (the expected outcome).
    cfg::Cfg g = cfg::build_cfg(v.dp, v.rules, *v.ctx);
    summary::SummaryResult s = summary::summarize(*v.ctx, g, {});
    analysis::ValidationResult vr =
        analysis::validate_summary(*v.ctx, g, s.graph);
    if (!vr.sound()) {
      o.detail = "refuted obligation on the mutated program's own summary";
      return true;
    }
  } catch (const util::Error&) {
    return false;
  }
  return false;
}

bool engine_lane(ReferenceState& ref, const BugVariant& v,
                 const SurvivalOptions& opts, VariantOutcome& o,
                 const util::CancelToken* cancel) {
  try {
    sim::Device device(sim::compile(v.dp, v.rules, *v.ctx, v.fault),
                       *v.ctx);
    driver::TestReport r =
        ref.engine(opts).test(device, ref.intents, cancel);
    if (r.failed > 0) {
      const driver::CaseRecord& f = r.failures.front();
      o.engine_cases = f.case_id;
      o.detail = !f.model_problems.empty()    ? f.model_problems.front()
                 : !f.intent_problems.empty() ? f.intent_problems.front()
                                              : "case failed";
      return true;
    }
    o.engine_cases = r.cases;
  } catch (const util::Error& e) {
    o.engine_cases = 0;
    o.detail = std::string("engine lane error: ") + e.what();
    return true;  // an uncompilable/untestable device is a detection
  }
  return false;
}

bool fuzz_lane(ReferenceState& ref, const BugVariant& v,
               const SurvivalOptions& opts, VariantOutcome& o,
               const util::CancelToken* cancel) {
  try {
    sim::Device target(sim::compile(v.dp, v.rules, *v.ctx, v.fault),
                       *v.ctx);
    sim::Device reference(ref.reference_program(), *v.ctx);
    fuzz::FuzzOptions fo;
    fo.execs = opts.fuzz_execs;
    fo.seed = opts.seed;
    fo.cancel = cancel;
    fuzz::Fuzzer fuzzer(target, reference, v.dp, v.rules, fo);
    for (const driver::TestCase& tc : ref.fuzz_seeds(opts)) {
      fuzzer.add_seed(tc.input, tc.registers);
    }
    fuzz::FuzzResult r = fuzzer.run();
    o.fuzz_execs = r.samples.empty() ? r.execs : r.samples.front().exec;
    if (r.found()) {
      o.detail = "divergence [" + r.samples.front().kind + "] after " +
                 std::to_string(o.fuzz_execs) + " execs";
      return true;
    }
  } catch (const util::Error&) {
    return false;
  }
  return false;
}

}  // namespace

SurvivalReport run_survival(const corpus::BugCorpus& c, const AppBundle* app,
                            const SurvivalOptions& opts) {
  SurvivalReport rep;
  rep.app = c.app;
  rep.seed = opts.seed;

  // Variants from build_corpus all share one context (the caller's); the
  // shared reference state lives in it.
  std::optional<ReferenceState> shared;
  if (app && !c.variants.empty() && c.variants.front().ctx) {
    shared.emplace(*c.variants.front().ctx, app->dp, app->rules,
                   app->intents);
  }

  // Lane watchdog: the engine and fuzz lanes run as supervised tasks whose
  // token they poll; lint and verify are single monolithic calls and are
  // classified post hoc. A detection that lands before the trip is kept —
  // timeout only replaces silence, never evidence.
  util::SuperviseOptions so;
  so.deadline_ms = opts.lane_deadline_ms;
  util::Supervisor lane_watch(so);
  auto supervised = [&](Detector d, VariantOutcome& o, auto&& lane) {
    if (!so.enabled()) return lane(static_cast<const util::CancelToken*>(nullptr));
    util::Supervisor::Task* task =
        lane_watch.begin(std::string("lane.") + detector_name(d));
    const bool hit = lane(&task->token());
    const bool tripped = lane_watch.end(task);
    if (tripped && !hit) o.timeout[static_cast<int>(d)] = true;
    return hit;
  };
  auto post_hoc = [&](Detector d, VariantOutcome& o, auto&& lane) {
    const auto t0 = std::chrono::steady_clock::now();
    const bool hit = lane();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (so.enabled() && !hit &&
        ms >= static_cast<double>(opts.lane_deadline_ms)) {
      o.timeout[static_cast<int>(d)] = true;
    }
    return hit;
  };

  for (const BugVariant& v : c.variants) {
    VariantOutcome o;
    o.variant = v.id;
    o.vid = v.vid;
    o.kind = v.kind;
    o.code_bug = v.code_bug;
    o.confirmed = v.confirmed;

    // Resolve this variant's reference state.
    std::optional<ReferenceState> own;
    ReferenceState* ref = nullptr;
    if (v.has_reference) {
      own.emplace(*v.ctx, v.ref_dp, v.ref_rules, v.ref_intents);
      ref = &*own;
    } else if (shared) {
      ref = &*shared;
    }
    if (!ref || !v.ctx) continue;

    const bool device_lanes = v.kind != MutationKind::kSummary;
    if (opts.run_lint && device_lanes) {
      o.lint = post_hoc(Detector::kLint, o,
                        [&] { return lint_lane(*ref, v, o); });
    }
    std::string lint_detail = o.lint ? o.detail : "";
    if (opts.run_verify &&
        (v.kind == MutationKind::kSummary || opts.verify_all)) {
      o.verify = post_hoc(Detector::kVerify, o,
                          [&] { return verify_lane(*ref, v, o); });
    }
    std::string verify_detail = o.verify ? o.detail : "";
    if (opts.run_engine && device_lanes) {
      o.engine = supervised(Detector::kEngine, o,
                            [&](const util::CancelToken* cancel) {
                              return engine_lane(*ref, v, opts, o, cancel);
                            });
    }
    std::string engine_detail = o.engine ? o.detail : "";
    if (opts.run_fuzz && device_lanes) {
      o.fuzz = supervised(Detector::kFuzz, o,
                          [&](const util::CancelToken* cancel) {
                            return fuzz_lane(*ref, v, opts, o, cancel);
                          });
    }

    if (o.lint) {
      o.first = Detector::kLint;
      o.detail = lint_detail;
    } else if (o.verify) {
      o.first = Detector::kVerify;
      o.detail = verify_detail;
    } else if (o.engine) {
      o.first = Detector::kEngine;
      o.detail = engine_detail;
    } else if (o.fuzz) {
      o.first = Detector::kFuzz;
    } else {
      o.first = Detector::kNone;
      o.detail.clear();
    }

    ++rep.total;
    if (o.first != Detector::kNone) {
      ++rep.detected;
      ++rep.first_by[static_cast<int>(o.first)];
    } else {
      ++rep.survived;
    }
    if (o.lint) ++rep.lane_detected[static_cast<int>(Detector::kLint)];
    if (o.verify) ++rep.lane_detected[static_cast<int>(Detector::kVerify)];
    if (o.engine) ++rep.lane_detected[static_cast<int>(Detector::kEngine)];
    if (o.fuzz) ++rep.lane_detected[static_cast<int>(Detector::kFuzz)];
    for (int d = 0; d < kNumDetectors; ++d) {
      if (o.timeout[d]) ++rep.lane_timeouts[d];
    }
    rep.outcomes.push_back(std::move(o));
  }

  obs::metrics().counter("gauntlet.variants").add(rep.total);
  obs::metrics().counter("gauntlet.detected").add(rep.detected);
  obs::metrics().counter("gauntlet.survived").add(rep.survived);
  for (int d = 0; d < kNumDetectors; ++d) {
    obs::metrics()
        .counter(std::string("gauntlet.first.") +
                 detector_name(static_cast<Detector>(d)))
        .add(rep.first_by[d]);
    obs::metrics()
        .counter(std::string("gauntlet.lane.") +
                 detector_name(static_cast<Detector>(d)))
        .add(rep.lane_detected[d]);
    obs::metrics()
        .counter(std::string("gauntlet.timeout.") +
                 detector_name(static_cast<Detector>(d)))
        .add(rep.lane_timeouts[d]);
  }
  return rep;
}

std::string SurvivalReport::render_text() const {
  std::string out;
  out += "survival analysis: " + app + "\n";
  out += util::format("  variants %llu  detected %llu (%.1f%%)  survived "
                      "%llu\n",
                      static_cast<unsigned long long>(total),
                      static_cast<unsigned long long>(detected),
                      100.0 * detection_rate(),
                      static_cast<unsigned long long>(survived));
  out += "  first detector:";
  for (int d = 0; d < kNumDetectors; ++d) {
    out += util::format(" %s %llu", detector_name(static_cast<Detector>(d)),
                        static_cast<unsigned long long>(first_by[d]));
  }
  out += util::format(" none %llu\n",
                      static_cast<unsigned long long>(survived));
  out += "  lane totals:  ";
  for (int d = 0; d < kNumDetectors; ++d) {
    out += util::format(" %s %llu", detector_name(static_cast<Detector>(d)),
                        static_cast<unsigned long long>(lane_detected[d]));
  }
  out += "\n";
  uint64_t any_timeouts = 0;
  for (int d = 0; d < kNumDetectors; ++d) any_timeouts += lane_timeouts[d];
  if (any_timeouts > 0) {
    out += "  lane timeouts:";
    for (int d = 0; d < kNumDetectors; ++d) {
      out += util::format(" %s %llu", detector_name(static_cast<Detector>(d)),
                          static_cast<unsigned long long>(lane_timeouts[d]));
    }
    out += "\n";
  }

  // Detection by mutation kind.
  std::map<std::string, std::pair<uint64_t, uint64_t>> by_kind;  // det, tot
  for (const VariantOutcome& o : outcomes) {
    auto& [det, tot] = by_kind[corpus::mutation_kind_name(o.kind)];
    ++tot;
    if (o.first != Detector::kNone) ++det;
  }
  out += "  by mutation kind:\n";
  for (const auto& [kind, dt] : by_kind) {
    out += util::format("    %-22s %llu/%llu\n", kind.c_str(),
                        static_cast<unsigned long long>(dt.first),
                        static_cast<unsigned long long>(dt.second));
  }

  // Fuzz-latency survival curve: of the variants only the fuzz lane saw,
  // how many needed more than 2^k executions.
  std::vector<uint64_t> fuzz_lat;
  for (const VariantOutcome& o : outcomes) {
    if (o.first == Detector::kFuzz) fuzz_lat.push_back(o.fuzz_execs);
  }
  if (!fuzz_lat.empty()) {
    std::sort(fuzz_lat.begin(), fuzz_lat.end());
    out += "  fuzz-only latency (execs to first divergence):\n";
    for (uint64_t budget = 64; ; budget *= 4) {
      const size_t within = static_cast<size_t>(
          std::upper_bound(fuzz_lat.begin(), fuzz_lat.end(), budget) -
          fuzz_lat.begin());
      out += util::format("    <=%-8llu %zu/%zu\n",
                          static_cast<unsigned long long>(budget), within,
                          fuzz_lat.size());
      if (within == fuzz_lat.size()) break;
      if (budget > (1ull << 40)) break;
    }
  }

  bool any_survivor = false;
  for (const VariantOutcome& o : outcomes) {
    if (o.first != Detector::kNone) continue;
    if (!any_survivor) {
      out += "  survivors:\n";
      any_survivor = true;
    }
    out += "    " + o.vid + "\n";
  }
  return out;
}

std::string SurvivalReport::to_json() const {
  std::string out = "{\"schema\":\"meissa-bug-survival-v1\"";
  out += ",\"app\":\"" + util::json_escape(app) + "\"";
  out += ",\"seed\":" + std::to_string(seed);
  out += ",\"total\":" + std::to_string(total);
  out += ",\"detected\":" + std::to_string(detected);
  out += ",\"survived\":" + std::to_string(survived);
  out += util::format(",\"detection_rate\":%.4f", detection_rate());
  out += ",\"first_by\":{";
  for (int d = 0; d < kNumDetectors; ++d) {
    if (d) out += ",";
    out += std::string("\"") + detector_name(static_cast<Detector>(d)) +
           "\":" + std::to_string(first_by[d]);
  }
  out += "},\"lane_detected\":{";
  for (int d = 0; d < kNumDetectors; ++d) {
    if (d) out += ",";
    out += std::string("\"") + detector_name(static_cast<Detector>(d)) +
           "\":" + std::to_string(lane_detected[d]);
  }
  out += "},\"lane_timeouts\":{";
  for (int d = 0; d < kNumDetectors; ++d) {
    if (d) out += ",";
    out += std::string("\"") + detector_name(static_cast<Detector>(d)) +
           "\":" + std::to_string(lane_timeouts[d]);
  }
  out += "},\"outcomes\":[";
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const VariantOutcome& o = outcomes[i];
    if (i) out += ",";
    out += "{\"variant\":" + std::to_string(o.variant);
    out += ",\"vid\":\"" + util::json_escape(o.vid) + "\"";
    out += ",\"kind\":\"";
    out += corpus::mutation_kind_name(o.kind);
    out += "\",\"code_bug\":";
    out += o.code_bug ? "true" : "false";
    out += ",\"confirmed\":";
    out += o.confirmed ? "true" : "false";
    out += ",\"lint\":";
    out += o.lint ? "true" : "false";
    out += ",\"verify\":";
    out += o.verify ? "true" : "false";
    out += ",\"engine\":";
    out += o.engine ? "true" : "false";
    out += ",\"fuzz\":";
    out += o.fuzz ? "true" : "false";
    out += ",\"first\":\"";
    out += detector_name(o.first);
    out += "\",\"timeouts\":{";
    for (int d = 0; d < kNumDetectors; ++d) {
      if (d) out += ",";
      out += std::string("\"") + detector_name(static_cast<Detector>(d)) +
             "\":" + (o.timeout[d] ? "true" : "false");
    }
    out += "},\"engine_cases\":" + std::to_string(o.engine_cases);
    out += ",\"fuzz_execs\":" + std::to_string(o.fuzz_execs);
    out += ",\"detail\":\"" + util::json_escape(o.detail) + "\"}";
  }
  out += "]}";
  return out;
}

}  // namespace meissa::apps::survival
