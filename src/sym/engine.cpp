#include "sym/engine.hpp"

#include "util/error.hpp"

namespace meissa::sym {

namespace {

// Collects `expr == const` conjuncts: the "constrained with one value"
// test of paper §4 that lets hash results be computed concretely even
// when the keys were pinned by match conditions rather than assignments.
void collect_eq_pins(ir::ExprRef c,
                     std::unordered_map<ir::ExprRef, uint64_t>& pins) {
  if (c->kind == ir::ExprKind::kBool &&
      c->bool_op() == ir::BoolOp::kAnd) {
    collect_eq_pins(c->lhs, pins);
    collect_eq_pins(c->rhs, pins);
    return;
  }
  if (c->kind == ir::ExprKind::kCmp && c->cmp_op() == ir::CmpOp::kEq &&
      c->rhs->kind == ir::ExprKind::kConst) {
    pins.emplace(c->lhs, c->rhs->value);
  }
}

}  // namespace

Engine::Engine(ir::Context& ctx, const cfg::Cfg& g, EngineOptions opts)
    : ctx_(ctx), g_(g), opts_(opts), state_(ctx) {
  if (opts_.incremental) solver_ = make_solver();
  if (opts_.stop != cfg::kNoNode) {
    // Stop-mode exploration never needs nodes from which the stop node is
    // unreachable; precompute the reverse-reachable region.
    reaches_stop_.assign(g_.size(), false);
    std::vector<std::vector<cfg::NodeId>> preds(g_.size());
    for (cfg::NodeId id = 0; id < g_.size(); ++id) {
      for (cfg::NodeId s : g_.node(id).succ) preds[s].push_back(id);
    }
    std::vector<cfg::NodeId> work{opts_.stop};
    reaches_stop_[opts_.stop] = true;
    while (!work.empty()) {
      cfg::NodeId cur = work.back();
      work.pop_back();
      for (cfg::NodeId p : preds[cur]) {
        if (!reaches_stop_[p]) {
          reaches_stop_[p] = true;
          work.push_back(p);
        }
      }
    }
  }
}

std::unique_ptr<smt::Solver> Engine::make_solver() const {
  if (opts_.use_z3) {
    auto s = smt::make_z3_solver(ctx_);
    util::check(s != nullptr, "engine: Z3 backend requested but unavailable");
    return s;
  }
  return smt::make_bv_solver(ctx_);
}

void Engine::add_precondition(ir::ExprRef c) {
  util::check(c != nullptr && c->is_bool(), "precondition must be boolean");
  preconds_.push_back(c);
  if (solver_) solver_->add(c);
}

void Engine::seed_value(ir::FieldId f, ir::ExprRef value) {
  state_.assign(f, value);
}

smt::CheckResult Engine::check_current() {
  if (opts_.incremental) {
    smt::CheckResult r = solver_->check();
    stats_.solver = solver_->stats();
    return r;
  }
  // Non-incremental: fresh solver, re-assert everything (p4pktgen-style).
  auto s = make_solver();
  for (ir::ExprRef c : preconds_) s->add(c);
  for (ir::ExprRef c : state_.conds()) s->add(c);
  smt::CheckResult r = s->check();
  stats_.solver.checks += s->stats().checks;
  stats_.solver.fast_path_hits += s->stats().fast_path_hits;
  stats_.solver.sat_calls += s->stats().sat_calls;
  return r;
}

void Engine::run(const Sink& sink) {
  // An unsatisfiable precondition set prunes the whole exploration; check
  // it once up front (otherwise predicate-free paths would never be
  // validated against it in incremental mode).
  if (!preconds_.empty() && opts_.incremental) {
    if (check_current() == smt::CheckResult::kUnsat) {
      ++stats_.pruned_paths;
      return;
    }
  }
  if (opts_.time_budget_seconds > 0) {
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(opts_.time_budget_seconds));
  }
  cfg::NodeId start = opts_.start == cfg::kNoNode ? g_.entry() : opts_.start;
  dfs(start, sink);
  if (opts_.incremental) stats_.solver = solver_->stats();
}

void Engine::dfs(cfg::NodeId id, const Sink& sink) {
  if (aborted_) return;
  if (!reaches_stop_.empty() && !reaches_stop_[id]) return;
  ++stats_.nodes_visited;
  if (has_deadline_ && (stats_.nodes_visited & 0xff) == 0 &&
      std::chrono::steady_clock::now() > deadline_) {
    stats_.timed_out = true;
    aborted_ = true;
    return;
  }
  const cfg::Node& n = g_.node(id);
  const SymState::Mark mark = state_.mark();
  bool pushed = false;

  // Leaves: the stop node (summary mode) or a successor-less terminal.
  const bool is_leaf =
      (opts_.stop != cfg::kNoNode && id == opts_.stop) || n.succ.empty();

  // --- Execute the node's statement (skipped for the stop node). ---------
  bool feasible = true;
  if (!(opts_.stop != cfg::kNoNode && id == opts_.stop)) {
    if (n.is_hash) {
      // Paper §4: compute the hash when every key is pinned to a constant;
      // otherwise leave the destination unconstrained and record an
      // obligation for the driver.
      std::vector<ir::ExprRef> keys;
      bool all_const = true;
      for (ir::FieldId k : n.hash.keys) {
        keys.push_back(state_.value_of(k));
        all_const &= keys.back()->is_const();
      }
      if (!n.hash.key_exprs.empty()) {
        keys.clear();
        all_const = true;
        for (ir::ExprRef e : n.hash.key_exprs) {
          keys.push_back(state_.subst(e));
          all_const &= keys.back()->is_const();
        }
      }
      if (!all_const) {
        // Keys not pinned by assignment may still be pinned by equality
        // conditions on the path (e.g. exact table matches).
        std::unordered_map<ir::ExprRef, uint64_t> pins;
        for (ir::ExprRef c : state_.conds()) collect_eq_pins(c, pins);
        for (ir::ExprRef c : preconds_) collect_eq_pins(c, pins);
        all_const = true;
        for (ir::ExprRef& k : keys) {
          if (k->is_const()) continue;
          auto it = pins.find(k);
          if (it != pins.end()) {
            k = ctx_.arena.constant(it->second, k->width);
          } else {
            all_const = false;
          }
        }
      }
      const int dest_w = ctx_.fields.width(n.hash.dest);
      if (all_const) {
        std::vector<uint64_t> kv;
        std::vector<int> kw;
        for (ir::ExprRef e : keys) {
          kv.push_back(e->value);
          kw.push_back(e->width);
        }
        uint64_t h = p4::compute_hash(n.hash.algo, kv, kw, dest_w);
        state_.assign(n.hash.dest, ctx_.arena.constant(h, dest_w));
      } else {
        ir::FieldId fresh = state_.fresh_symbol(dest_w);
        state_.assign(n.hash.dest, ctx_.var(fresh));
        HashObligation o;
        o.placeholder = fresh;
        o.algo = n.hash.algo;
        o.key_exprs = keys;
        for (ir::ExprRef e : keys) o.key_widths.push_back(e->width);
        state_.add_obligation(std::move(o));
      }
    } else {
      switch (n.stmt.kind) {
        case ir::StmtKind::kNop:
          break;
        case ir::StmtKind::kAssign:
          state_.assign(n.stmt.target, state_.subst(n.stmt.expr));
          break;
        case ir::StmtKind::kAssume: {
          ir::ExprRef c = state_.subst(n.stmt.expr);
          if (!opts_.check_every_predicate && c->is_true()) {
            ++stats_.folded_checks;
          } else if (!opts_.check_every_predicate && c->is_false()) {
            ++stats_.folded_checks;
            feasible = false;
          } else {
            state_.add_cond(c);
            if (opts_.incremental) {
              solver_->push();
              solver_->add(c);
            }
            pushed = true;
            if (opts_.early_termination) {
              if (check_current() == smt::CheckResult::kUnsat) feasible = false;
            }
          }
          break;
        }
      }
    }
  }

  if (feasible) {
    if (is_leaf && opts_.stop != cfg::kNoNode && id != opts_.stop) {
      // A terminal that is not the requested stop node: the path never
      // reaches the target and is not a result (it is not pruned either -
      // it simply lies outside the exploration's scope).
      ++stats_.offtarget_paths;
    } else if (is_leaf) {
      // Without early termination nothing has been checked yet; validate
      // the whole path condition once at the leaf.
      bool valid = true;
      if (!opts_.early_termination || !opts_.incremental) {
        valid = check_current() == smt::CheckResult::kSat;
      }
      if (valid) {
        ++stats_.valid_paths;
        PathResult r;
        r.path = cur_path_;
        r.path.push_back(id);
        r.conds = state_.conds();
        r.values = state_.values();
        r.obligations = state_.obligations();
        r.exit = n.exit;
        r.emit_instance = n.emit_instance;
        sink(r);
        if (opts_.max_results != 0 && stats_.valid_paths >= opts_.max_results) {
          aborted_ = true;
        }
      } else {
        ++stats_.pruned_paths;
      }
    } else {
      cur_path_.push_back(id);
      for (cfg::NodeId s : n.succ) {
        dfs(s, sink);
        if (aborted_) break;
      }
      cur_path_.pop_back();
    }
  } else {
    ++stats_.pruned_paths;
  }

  if (pushed && opts_.incremental) solver_->pop();
  state_.rollback(mark);
}

std::optional<smt::Model> Engine::solve_for_model(const PathResult& r) {
  auto s = make_solver();
  for (ir::ExprRef c : preconds_) s->add(c);
  for (ir::ExprRef c : r.conds) s->add(c);
  if (s->check() != smt::CheckResult::kSat) return std::nullopt;
  return s->model();
}

}  // namespace meissa::sym
