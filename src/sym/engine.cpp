#include "sym/engine.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace meissa::sym {

namespace {

// Collects `expr == const` conjuncts: the "constrained with one value"
// test of paper §4 that lets hash results be computed concretely even
// when the keys were pinned by match conditions rather than assignments.
void collect_eq_pins(ir::ExprRef c,
                     std::unordered_map<ir::ExprRef, uint64_t>& pins) {
  if (c->kind == ir::ExprKind::kBool &&
      c->bool_op() == ir::BoolOp::kAnd) {
    collect_eq_pins(c->lhs, pins);
    collect_eq_pins(c->rhs, pins);
    return;
  }
  if (c->kind == ir::ExprKind::kCmp && c->cmp_op() == ir::CmpOp::kEq &&
      c->rhs->kind == ir::ExprKind::kConst) {
    pins.emplace(c->lhs, c->rhs->value);
  }
}

// How many prefix shards run_parallel aims for. Fixed (not derived from the
// thread count) so the shard decomposition — and with it every fresh-symbol
// namespace and the merge order — is identical for any number of workers.
constexpr size_t kTargetShards = 32;

}  // namespace

// One exploration's mutable state: the paper's V and C stacks, the
// incremental solver, the node path, and counters. The owning Engine holds
// only immutable configuration (graph, options, preconditions, seeds), so
// several contexts can explore concurrently.
struct Engine::ExplorationContext {
  Engine& eng;
  SymState state;
  std::unique_ptr<smt::Solver> solver;  // incremental mode
  // Static-pruning gate: per-path abstract environment (solver-equivalent
  // verdicts only, so the emitted path set matches the ungated run).
  std::optional<analysis::PathEnv> env;
  cfg::Path cur_path;
  EngineStats stats;
  bool aborted = false;
  std::chrono::steady_clock::time_point deadline{};
  bool has_deadline = false;
  // Supervision (run_parallel): heartbeat sink + per-shard cancel token.
  util::Supervisor::Task* watch = nullptr;
  // Resume replay (run_parallel with ParallelHooks::resume): while
  // `replaying`, dfs() re-executes the checkpointed frontier path —
  // rebuilding V/C, the solver stack, the abstract env and the minted
  // fresh symbols — without satisfiability checks, stat counts, or
  // re-emission (the path is a known-feasible, already-emitted result).
  // Exploration resumes with the frontier's unvisited siblings at depths
  // >= replay_fanout_from (the shard prefix length; earlier siblings
  // belong to other shards).
  const cfg::Path* replay = nullptr;
  size_t replay_fanout_from = 0;
  bool replaying = false;
  uint64_t saved_fresh = 0;         // frontier fresh-symbol counter
  smt::SolverStats saved_solver;    // frontier cumulative solver counters
  smt::SolverStats solver_base;     // rebasing offset (see stats_minus)
  // Sat-model reuse (pc_cache on, incremental mode): the model of this
  // shard's last SAT-core-reaching kSat check, verified against
  // conds[0..last_model_conds). The DFS conds form a stack, so after a
  // rollback the verified prefix shrinks but never changes content —
  // dfs() clamps last_model_conds to the stack size — and a later check
  // only needs the model evaluated on its *new* conjuncts to conclude
  // kSat without any backend call.
  smt::Model last_model;
  size_t last_model_conds = 0;
  // The reuse tier is not free: every cache miss with a model in hand
  // pays an eval() tree walk per new conjunct, and each capture pays a
  // model() walk over every blaster-known field — together those cost
  // about as much per event as the SAT-core check a reuse win saves (on
  // gw-4, keeping the model armed unconditionally cost ~0.5s to save 32
  // of 1824 checks). Mirror the portfolio's arm policy: attempt freely
  // during warmup, then keep the model armed only while wins keep pace
  // with attempts — a losing arm *drops* the model, which stops both the
  // per-miss evals and the per-kSat captures — and periodically probe so
  // a shard whose tail turns reuse-friendly recovers. Counters are
  // per-shard, so the policy is deterministic for a given shard
  // decomposition.
  uint64_t model_attempts = 0;
  uint64_t model_capture_skips = 0;
  static constexpr uint64_t kModelWarmup = 16;
  static constexpr uint64_t kModelPayoff = 2;
  static constexpr uint64_t kModelCaptureProbe = 32;

  bool model_arm_losing() const {
    return model_attempts >= kModelWarmup &&
           stats.pc_model_reuse * kModelPayoff < model_attempts;
  }
  // Cache key of the conds stack, maintained incrementally (pc_cache on):
  // folded mirrors the conds prefix already folded into sig, and on_stack
  // counts occurrences so sig tracks the *distinct* conjunct set (a
  // re-asserted conjunct doesn't change the formula). Lazily extended at
  // each check, unwound at rollback (same discipline as last_model_conds).
  std::vector<ir::ExprRef> folded;
  std::unordered_map<ir::ExprRef, uint32_t> on_stack;
  smt::PathSig sig;

  ExplorationContext(Engine& e, const std::string& fresh_ns)
      : eng(e), state(e.ctx_) {
    // Start from the precondition signature: keys then cover the full
    // asserted formula, making verdicts portable across engines and runs
    // (retracts only ever unwind conds folded on top of this base).
    sig = e.precond_sig_;
    if (!fresh_ns.empty()) state.set_fresh_ns(fresh_ns);
    for (const auto& [f, v] : e.seeds_) state.assign(f, v);
    if (e.opts_.incremental) {
      solver = e.make_solver();
      solver->set_budget(e.opts_.budget);
      if (e.opts_.solver_portfolio) solver->set_portfolio(true);
      for (ir::ExprRef c : e.preconds_) solver->add(c);
    }
    if (e.gates_) {
      env.emplace(e.ctx_);
      for (ir::ExprRef c : e.preconds_) env->add_precondition(c);
    }
  }

  void set_deadline(double budget_seconds) {
    if (budget_seconds <= 0) return;
    has_deadline = true;
    deadline = util::steady_deadline_after(std::chrono::steady_clock::now(),
                                           budget_seconds);
  }

  // Arms the context to resume from `prior` (a mid-flight snapshot with a
  // non-empty frontier). The frontier's minted fresh symbols are pinned to
  // their original names: mints happen only at unpinned-hash nodes and
  // each pushes one HashObligation, so the last result's obligation stack
  // is exactly the current path's mint sequence, in order.
  void arm_resume(const ShardProgress& prior, size_t prefix_len) {
    stats = prior.stats;
    saved_fresh = prior.fresh_counter;
    saved_solver = prior.stats.solver;
    replay = &prior.frontier;
    replay_fanout_from = prefix_len;
    replaying = true;
    std::vector<std::pair<std::string, int>> pins;
    for (const HashObligation& o : prior.results.back().obligations) {
      pins.emplace_back(eng.ctx_.fields.name(o.placeholder),
                        eng.ctx_.fields.width(o.placeholder));
    }
    state.pin_fresh(std::move(pins));
  }

  // Closes the replay at the frontier leaf: restore the fresh-symbol
  // cursor and rebase the fresh solver's cumulative counters onto the
  // snapshot's, so every later fold reports uninterrupted-run values.
  void end_replay() {
    replaying = false;
    state.set_fresh_counter(saved_fresh);
    if (eng.opts_.incremental) {
      solver_base = smt::stats_minus(saved_solver, solver->stats());
    }
  }

  // The incremental solver's cumulative counters, rebased for resume.
  smt::SolverStats folded_solver() const {
    smt::SolverStats s = solver_base;
    s += solver->stats();
    return s;
  }

  // Folds the incremental solver's counters into `stats` (done once, at the
  // end, because Solver::stats() is cumulative).
  void finish() {
    if (eng.opts_.incremental) stats.solver = folded_solver();
  }

  // A consistent mid-flight snapshot, taken right after emitting the
  // result whose full path is `frontier`.
  ShardProgress snapshot(const std::vector<PathResult>& buffered,
                         const cfg::Path& frontier) const {
    ShardProgress p;
    p.results = buffered;
    p.frontier = frontier;
    p.fresh_counter = state.fresh_counter();
    p.stats = stats;
    if (eng.opts_.incremental) p.stats.solver = folded_solver();
    return p;
  }

  smt::CheckResult check_current();
  smt::CheckResult check_current_impl();
  // DFS from `id`. While `force` is set and `depth + 1 < force->size()`,
  // recursion is pinned to the forced prefix instead of fanning out over
  // all successors — this replays a shard's prefix, rebuilding V/C and the
  // solver stack exactly as the sequential DFS would have them on arrival.
  void dfs(cfg::NodeId id, const Sink& sink, const cfg::Path* force,
           size_t depth);
};

Engine::Engine(ir::Context& ctx, const cfg::Cfg& g, EngineOptions opts)
    : ctx_(ctx), g_(g), opts_(std::move(opts)) {
  gates_ = opts_.static_pruning && !opts_.check_every_predicate;
  // The cache is only sound to consult under an unlimited per-check budget
  // (a cached definite verdict would otherwise mask a budget-dependent
  // kUnknown and make the degraded split scheduling-dependent).
  if (opts_.pc_cache && opts_.budget.unlimited()) {
    if (opts_.shared_pc_cache == nullptr) {
      pc_cache_ = std::make_unique<smt::PathCondCache>();
    }
  } else {
    // Gating failed: a caller-provided shared cache may not be consulted
    // either (same budget-soundness argument).
    opts_.shared_pc_cache = nullptr;
  }
  use_facts_ = gates_ && opts_.facts != nullptr &&
               opts_.facts->refuted.size() == g_.size();
  if (opts_.stop != cfg::kNoNode) {
    // Stop-mode exploration never needs nodes from which the stop node is
    // unreachable; precompute the reverse-reachable region.
    reaches_stop_.assign(g_.size(), false);
    std::vector<std::vector<cfg::NodeId>> preds(g_.size());
    for (cfg::NodeId id = 0; id < g_.size(); ++id) {
      for (cfg::NodeId s : g_.node(id).succ) preds[s].push_back(id);
    }
    std::vector<cfg::NodeId> work{opts_.stop};
    reaches_stop_[opts_.stop] = true;
    while (!work.empty()) {
      cfg::NodeId cur = work.back();
      work.pop_back();
      for (cfg::NodeId p : preds[cur]) {
        if (!reaches_stop_[p]) {
          reaches_stop_[p] = true;
          work.push_back(p);
        }
      }
    }
  }
}

std::unique_ptr<smt::Solver> Engine::make_solver() const {
  if (opts_.use_z3) {
    auto s = smt::make_z3_solver(ctx_);
    util::check(s != nullptr, "engine: Z3 backend requested but unavailable");
    return s;
  }
  return smt::make_bv_solver(ctx_);
}

void Engine::add_precondition(ir::ExprRef c) {
  util::check(c != nullptr && c->is_bool(), "precondition must be boolean");
  preconds_.push_back(c);
  // Fold the precondition into the signature base: cache keys cover the
  // full asserted conjunct set, so entries recorded under the old
  // precondition set stay valid (their keys are simply never produced
  // again) and nothing needs to be discarded — not even a cache shared
  // with engines holding different preconditions.
  precond_sig_ = smt::PathCondCache::extend(precond_sig_, c);
}

void Engine::seed_value(ir::FieldId f, ir::ExprRef value) {
  seeds_.emplace_back(f, value);
}

smt::CheckResult Engine::ExplorationContext::check_current() {
  // Observability wrapper: per-check latency histograms keyed by verdict,
  // and a budget-exhaustion marker on kUnknown. Clocks are read only when
  // metrics are on; the disabled path is one relaxed load plus the check.
  if (!obs::metrics_enabled()) {
    smt::CheckResult r = check_current_impl();
    if (r == smt::CheckResult::kUnknown) {
      obs::instant("solver budget exhausted", "dfs");
    }
    return r;
  }
  auto t0 = std::chrono::steady_clock::now();
  smt::CheckResult r = check_current_impl();
  const uint64_t us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  switch (r) {
    case smt::CheckResult::kSat:
      obs::metrics().histogram("dfs.check_us.sat").observe(us);
      break;
    case smt::CheckResult::kUnsat:
      obs::metrics().histogram("dfs.check_us.unsat").observe(us);
      break;
    case smt::CheckResult::kUnknown:
      obs::metrics().histogram("dfs.check_us.unknown").observe(us);
      obs::metrics().counter("dfs.budget_exhausted").add();
      obs::instant("solver budget exhausted", "dfs");
      break;
  }
  return r;
}

smt::CheckResult Engine::ExplorationContext::check_current_impl() {
  // Path-condition cache (created only under an unlimited budget — see
  // EngineOptions::pc_cache). Consulted before any backend runs: the
  // verdict is a semantic property of the conjunct set, so a hit returns
  // exactly what the backend would have concluded. The signature extends
  // in O(1) per conjunct pushed since the last check — no copy or sort of
  // the condition vector — and only over conjuncts *entering* the set:
  // re-asserting a guard the path already carries leaves the formula (and
  // therefore the key) unchanged, which is where most repeats come from.
  smt::PathCondCache* cache = eng.opts_.shared_pc_cache != nullptr
                                  ? eng.opts_.shared_pc_cache
                                  : eng.pc_cache_.get();
  if (cache != nullptr) {
    const std::vector<ir::ExprRef>& conds = state.conds();
    while (folded.size() < conds.size()) {
      ir::ExprRef c = conds[folded.size()];
      if (++on_stack[c] == 1) sig = smt::PathCondCache::extend(sig, c);
      folded.push_back(c);
    }
    smt::CheckResult cached = smt::CheckResult::kUnknown;
    if (cache->lookup(sig, &cached)) {
      ++stats.pc_cache_hits;
      if (obs::metrics_enabled()) obs::metrics().counter("smt.cache.hits").add();
      return cached;
    }
    ++stats.pc_cache_misses;
    if (obs::metrics_enabled()) obs::metrics().counter("smt.cache.misses").add();
    // Second tier: this shard's last sat model, already verified against
    // conds[0..last_model_conds), witnesses kSat if it also satisfies the
    // new conjuncts — a handful of concrete evaluations vs. a solver call.
    // eval() returning nullopt (model misses a field) falls to the backend.
    if (!last_model.empty() && last_model_conds < state.conds().size()) {
      ++model_attempts;
      bool sat = true;
      for (size_t i = last_model_conds; sat && i < state.conds().size(); ++i) {
        std::optional<uint64_t> v = ir::eval(state.conds()[i], last_model);
        sat = v.has_value() && *v != 0;
      }
      if (!sat && model_arm_losing()) last_model.clear();
      if (sat) {
        ++stats.pc_model_reuse;
        last_model_conds = state.conds().size();
        cache->insert(sig, smt::CheckResult::kSat);
        if (obs::metrics_enabled()) {
          obs::metrics().counter("smt.cache.model_reuse").add();
        }
        return smt::CheckResult::kSat;
      }
    }
  }
  smt::CheckResult r;
  if (eng.opts_.incremental) {
    // Capture a reusable model only when the verdict was kSat and the
    // check reached the SAT core — model() walks every blaster-known
    // field, which is worth paying to amortize an expensive check but not
    // after every cheap fast-path hit — and only while the adaptive
    // policy says the reuse tier is earning its keep (see the
    // kModelCapture* constants).
    const uint64_t sat_calls_before = solver->stats().sat_calls;
    r = solver->check();
    stats.solver = folded_solver();
    if (cache != nullptr && r == smt::CheckResult::kSat &&
        solver->stats().sat_calls != sat_calls_before) {
      bool capture = !model_arm_losing();
      if (!capture && ++model_capture_skips % kModelCaptureProbe == 0) {
        capture = true;  // probe: re-arm a dropped model to re-sample
      }
      if (capture) {
        last_model = solver->model();
        last_model_conds = state.conds().size();
      }
    }
  } else {
    // Non-incremental: fresh solver, re-assert everything (p4pktgen-style).
    auto s = eng.make_solver();
    s->set_budget(eng.opts_.budget);
    for (ir::ExprRef c : eng.preconds_) s->add(c);
    for (ir::ExprRef c : state.conds()) s->add(c);
    r = s->check();
    stats.solver.checks += s->stats().checks;
    stats.solver.fast_path_hits += s->stats().fast_path_hits;
    stats.solver.sat_calls += s->stats().sat_calls;
    stats.solver.unknowns += s->stats().unknowns;
  }
  if (cache != nullptr) cache->insert(sig, r);  // kUnknown is ignored
  return r;
}

void Engine::run(const Sink& sink) {
  ExplorationContext ec(*this, opts_.fresh_ns);
  // An unsatisfiable precondition set prunes the whole exploration; check
  // it once up front (otherwise predicate-free paths would never be
  // validated against it in incremental mode).
  if (!preconds_.empty() && opts_.incremental) {
    if (ec.check_current() == smt::CheckResult::kUnsat) {
      ++ec.stats.pruned_paths;
      ec.finish();
      stats_ = ec.stats;
      return;
    }
  }
  ec.set_deadline(opts_.time_budget_seconds);
  cfg::NodeId start = opts_.start == cfg::kNoNode ? g_.entry() : opts_.start;
  ec.dfs(start, sink, nullptr, 0);
  ec.finish();
  stats_ = ec.stats;
}

std::vector<cfg::Path> Engine::compute_shards(size_t target) const {
  cfg::NodeId start = opts_.start == cfg::kNoNode ? g_.entry() : opts_.start;
  if (!reaches_stop_.empty() && !reaches_stop_[start]) return {};
  std::vector<cfg::Path> shards{{start}};
  bool grew = true;
  while (shards.size() < target && grew) {
    grew = false;
    std::vector<cfg::Path> next;
    next.reserve(shards.size() * 2);
    for (cfg::Path& p : shards) {
      const cfg::Node& n = g_.node(p.back());
      const bool at_stop = opts_.stop != cfg::kNoNode && p.back() == opts_.stop;
      if (at_stop || n.succ.empty()) {
        next.push_back(std::move(p));  // complete path: a closed shard
        continue;
      }
      for (cfg::NodeId s : n.succ) {
        // Off-target successors (stop mode) contribute no results; the
        // sequential DFS abandons them on entry, so skip them here too.
        if (!reaches_stop_.empty() && !reaches_stop_[s]) continue;
        cfg::Path q = p;
        q.push_back(s);
        next.push_back(std::move(q));
        grew = true;
      }
    }
    shards = std::move(next);
  }
  return shards;
}

void Engine::run_parallel(const Sink& sink, int threads) {
  run_parallel(sink, threads, ParallelHooks{});
}

void Engine::run_parallel(const Sink& sink, int threads,
                          const ParallelHooks& hooks) {
  threads = util::resolve_threads(threads);
  // Precondition precheck, as in run(). kUnknown (budget exhausted) simply
  // proceeds: only a proven-unsat precondition prunes the exploration.
  if (!preconds_.empty() && opts_.incremental) {
    auto s = make_solver();
    s->set_budget(opts_.budget);
    for (ir::ExprRef c : preconds_) s->add(c);
    if (s->check() == smt::CheckResult::kUnsat) {
      stats_ = EngineStats{};
      ++stats_.pruned_paths;
      stats_.solver = s->stats();
      return;
    }
  }

  const std::vector<cfg::Path> shards = compute_shards(kTargetShards);
  if (hooks.on_shards) hooks.on_shards(shards.size());
  std::vector<std::vector<PathResult>> buffered(shards.size());
  std::vector<EngineStats> shard_stats(shards.size());
  // Resume data is honored only when it matches this graph's shard
  // decomposition (a checkpoint from another program/options combination
  // is already rejected by its content key; this is belt-and-braces).
  const std::vector<ShardProgress>* resume =
      (hooks.resume != nullptr && hooks.resume->size() == shards.size())
          ? hooks.resume
          : nullptr;
  const int max_attempts = std::max(1, hooks.max_attempts);

  std::chrono::steady_clock::time_point deadline{};
  bool has_deadline = false;
  if (opts_.time_budget_seconds > 0) {
    has_deadline = true;
    deadline = util::steady_deadline_after(std::chrono::steady_clock::now(),
                                           opts_.time_budget_seconds);
  }

  const std::string ns_base =
      opts_.fresh_ns.empty() ? std::string() : opts_.fresh_ns + ".";
  util::ThreadPool pool(threads);
  pool.run(shards.size(), [&](size_t i) {
    obs::Span span("shard " + std::to_string(i), "dfs");
    const ShardProgress* prior = resume != nullptr ? &(*resume)[i] : nullptr;
    if (prior != nullptr && prior->done) {
      // Completed before the snapshot: restore, never re-explore.
      buffered[i] = prior->results;
      shard_stats[i] = prior->stats;
      ++shard_stats[i].resumed_shards;
      if (hooks.progress) hooks.progress(i, *prior);
      span.arg("paths", buffered[i].size());
      span.arg("resumed", uint64_t{1});
      return;
    }
    const bool mid_flight = prior != nullptr && !prior->frontier.empty() &&
                            !prior->results.empty();
    const std::string site = "shard." + std::to_string(i);
    uint64_t requeues = 0;
    for (int attempt = 1;; ++attempt) {
      util::Supervisor::Task* task =
          hooks.supervisor != nullptr ? hooks.supervisor->begin(site) : nullptr;
      bool failed = false;
      buffered[i] = mid_flight ? prior->results : std::vector<PathResult>{};
      try {
        if (hooks.fault != nullptr) {
          hooks.fault->hit(site,
                           task != nullptr ? &task->token() : opts_.cancel);
        }
        ExplorationContext ec(*this, ns_base + "s" + std::to_string(i));
        ec.has_deadline = has_deadline;
        ec.deadline = deadline;
        ec.watch = task;
        const cfg::Path* force = &shards[i];
        if (mid_flight) {
          ec.arm_resume(*prior, shards[i].size());
          force = &prior->frontier;
        }
        uint64_t since_snapshot = 0;
        ec.dfs(force->front(), [&](const PathResult& r) {
          buffered[i].push_back(r);
          if (hooks.progress && hooks.checkpoint_every != 0 &&
              ++since_snapshot >= hooks.checkpoint_every) {
            since_snapshot = 0;
            hooks.progress(i, ec.snapshot(buffered[i], r.path));
          }
        }, force, 0);
        ec.finish();
        if (task != nullptr && task->tripped()) {
          failed = true;  // watchdog broke this attempt: partials are junk
        } else {
          shard_stats[i] = ec.stats;
          if (mid_flight) ++shard_stats[i].resumed_shards;
        }
      } catch (const util::InjectedFaultError&) {
        failed = true;  // an injected crash; anything else propagates
      }
      if (hooks.supervisor != nullptr) hooks.supervisor->end(task);
      if (!failed) {
        shard_stats[i].requeued_shards += requeues;
        // A shard is checkpointed as *done* only when its subtree is
        // actually exhausted. A run-cancel or time-budget abort leaves the
        // last cadence snapshot (a mid-flight frontier) as the resume
        // point; marking it done would persist the partial result list as
        // the shard's final truth and break resume's byte-identity.
        if (hooks.progress && !shard_stats[i].cancelled &&
            !shard_stats[i].timed_out) {
          ShardProgress done_p;
          done_p.done = true;
          done_p.results = buffered[i];
          done_p.stats = shard_stats[i];
          hooks.progress(i, done_p);
        }
        break;
      }
      buffered[i].clear();
      if (attempt >= max_attempts) {
        // Re-queue exhausted: the shard's subtree stays unexplored. That
        // is *degraded* coverage — counted, like budget-degraded paths,
        // never silently dropped (and never marked run-cancelled).
        shard_stats[i] = EngineStats{};
        shard_stats[i].requeued_shards = requeues;
        shard_stats[i].degraded_shards = 1;
        if (obs::metrics_enabled()) {
          obs::metrics().counter("supervise.shard_degraded").add();
        }
        obs::instant("shard degraded", "supervise");
        if (hooks.progress) {
          ShardProgress done_p;
          done_p.done = true;
          done_p.stats = shard_stats[i];
          hooks.progress(i, done_p);
        }
        break;
      }
      // One more chance on a fresh context ("fresh shard"): injected
      // faults are consumed per firing, so a healed environment retries
      // to the exact result set an unfaulted run produces.
      ++requeues;
      if (obs::metrics_enabled()) {
        obs::metrics().counter("supervise.shard_requeues").add();
      }
      obs::instant("shard requeued", "supervise");
    }
    span.arg("paths", buffered[i].size());
    span.arg("nodes_visited", shard_stats[i].nodes_visited);
  });

  // Merge in shard order = sequential DFS pre-order. valid_paths counts
  // what the sink actually saw after the global max_results cut; the other
  // counters sum over shards (prefix replay revisits shared nodes, so
  // nodes_visited/pruned_paths exceed a single sequential run's — but are
  // identical for every thread count).
  EngineStats total;
  for (const EngineStats& s : shard_stats) total += s;
  total.valid_paths = 0;
  auto publish = [this](const EngineStats& st) {
    stats_ = st;
    if (obs::metrics_enabled()) {
      obs::metrics().counter("dfs.nodes_visited").add(st.nodes_visited);
      obs::metrics().counter("dfs.valid_paths").add(st.valid_paths);
      obs::metrics().counter("dfs.pruned_paths").add(st.pruned_paths);
      obs::metrics().counter("dfs.degraded_paths").add(st.degraded_paths);
      obs::metrics().counter("dfs.static_prunes").add(st.static_prunes);
    }
  };
  for (const std::vector<PathResult>& buf : buffered) {
    for (const PathResult& r : buf) {
      if (opts_.max_results != 0 && total.valid_paths >= opts_.max_results) {
        publish(total);
        return;
      }
      sink(r);
      ++total.valid_paths;
    }
  }
  publish(total);
}

void Engine::ExplorationContext::dfs(cfg::NodeId id, const Sink& sink,
                                     const cfg::Path* force, size_t depth) {
  if (aborted) return;
  const cfg::Cfg& g = eng.g_;
  const EngineOptions& opts = eng.opts_;
  if (!eng.reaches_stop_.empty() && !eng.reaches_stop_[id]) return;
  // During resume replay the counters are frozen: the snapshot's stats
  // already cover this re-executed prefix, and counting it again would
  // make a resumed run's stats diverge from an uninterrupted run's.
  if (!replaying) ++stats.nodes_visited;
  if (watch != nullptr) watch->heartbeat();
  if (eng.opts_.cancel != nullptr && eng.opts_.cancel->cancelled()) {
    stats.cancelled = true;
    aborted = true;
    return;
  }
  // Per-shard watchdog token: unwind without marking the *run* cancelled —
  // the supervisor decides whether this attempt is retried or degraded.
  if (watch != nullptr && watch->token().cancelled()) {
    aborted = true;
    return;
  }
  if (has_deadline && (stats.nodes_visited & 0xff) == 0 &&
      std::chrono::steady_clock::now() > deadline) {
    stats.timed_out = true;
    aborted = true;
    return;
  }
  const cfg::Node& n = g.node(id);
  const SymState::Mark mark = state.mark();
  const analysis::PathEnv::Mark env_mark = env ? env->mark() : 0;
  bool pushed = false;

  // Leaves: the stop node (summary mode) or a successor-less terminal.
  const bool is_leaf =
      (opts.stop != cfg::kNoNode && id == opts.stop) || n.succ.empty();

  // --- Execute the node's statement (skipped for the stop node). ---------
  bool feasible = true;
  // Set when a budgeted check answered kUnknown: the branch is abandoned
  // as *degraded* (solver could not decide it), not as proven-infeasible.
  bool degraded = false;
  if (!(opts.stop != cfg::kNoNode && id == opts.stop)) {
    if (n.is_hash) {
      // Paper §4: compute the hash when every key is pinned to a constant;
      // otherwise leave the destination unconstrained and record an
      // obligation for the driver.
      std::vector<ir::ExprRef> keys;
      bool all_const = true;
      for (ir::FieldId k : n.hash.keys) {
        keys.push_back(state.value_of(k));
        all_const &= keys.back()->is_const();
      }
      if (!n.hash.key_exprs.empty()) {
        keys.clear();
        all_const = true;
        for (ir::ExprRef e : n.hash.key_exprs) {
          keys.push_back(state.subst(e));
          all_const &= keys.back()->is_const();
        }
      }
      if (!all_const) {
        // Keys not pinned by assignment may still be pinned by equality
        // conditions on the path (e.g. exact table matches).
        std::unordered_map<ir::ExprRef, uint64_t> pins;
        for (ir::ExprRef c : state.conds()) collect_eq_pins(c, pins);
        for (ir::ExprRef c : eng.preconds_) collect_eq_pins(c, pins);
        all_const = true;
        for (ir::ExprRef& k : keys) {
          if (k->is_const()) continue;
          auto it = pins.find(k);
          if (it != pins.end()) {
            k = eng.ctx_.arena.constant(it->second, k->width);
          } else {
            all_const = false;
          }
        }
      }
      const int dest_w = eng.ctx_.fields.width(n.hash.dest);
      if (all_const) {
        std::vector<uint64_t> kv;
        std::vector<int> kw;
        for (ir::ExprRef e : keys) {
          kv.push_back(e->value);
          kw.push_back(e->width);
        }
        uint64_t h = p4::compute_hash(n.hash.algo, kv, kw, dest_w);
        state.assign(n.hash.dest, eng.ctx_.arena.constant(h, dest_w));
      } else {
        ir::FieldId fresh = state.fresh_symbol(dest_w);
        state.assign(n.hash.dest, eng.ctx_.var(fresh));
        HashObligation o;
        o.placeholder = fresh;
        o.algo = n.hash.algo;
        o.key_exprs = keys;
        for (ir::ExprRef e : keys) o.key_widths.push_back(e->width);
        state.add_obligation(std::move(o));
      }
    } else {
      switch (n.stmt.kind) {
        case ir::StmtKind::kNop:
          break;
        case ir::StmtKind::kAssign:
          state.assign(n.stmt.target, state.subst(n.stmt.expr));
          break;
        case ir::StmtKind::kAssume: {
          // Dataflow facts: a predicate refuted from the start node with a
          // TOP boundary is unsat under every path condition rooted there.
          // (Never taken during replay: the frontier path was feasible.)
          if (!replaying && eng.use_facts_ && eng.opts_.facts->refuted[id]) {
            ++stats.static_prunes;
            feasible = false;
            break;
          }
          ir::ExprRef c = state.subst(n.stmt.expr);
          if (!opts.check_every_predicate && c->is_true()) {
            if (!replaying) ++stats.folded_checks;
          } else if (!opts.check_every_predicate && c->is_false()) {
            ++stats.folded_checks;
            feasible = false;
          } else {
            // Replay still feeds the abstract env and the solver stack —
            // post-frontier siblings depend on both — but takes no
            // verdicts and spends no checks on the known-feasible path.
            analysis::Verdict verdict = analysis::Verdict::kUnknown;
            if (env) verdict = env->assume(c);
            if (!replaying && verdict == analysis::Verdict::kRefuted) {
              ++stats.static_prunes;
              feasible = false;
              break;
            }
            state.add_cond(c);
            if (opts.incremental) {
              solver->push();
              solver->add(c);
              // Key the adaptive portfolio's win counters on the predicate
              // node deciding this region of the CFG (advisory; see
              // Solver::set_region).
              solver->set_region(id);
            }
            pushed = true;
            if (opts.early_termination && !replaying) {
              if (verdict != analysis::Verdict::kUnknown) {
                // Statically certain (implied or field-wise satisfiable):
                // the check's result is known, skip the call.
                ++stats.skipped_checks;
              } else {
                switch (check_current()) {
                  case smt::CheckResult::kSat:
                    break;
                  case smt::CheckResult::kUnsat:
                    feasible = false;
                    break;
                  case smt::CheckResult::kUnknown:
                    feasible = false;
                    degraded = true;
                    break;
                }
              }
            }
          }
          break;
        }
      }
    }
  }

  if (feasible) {
    if (is_leaf && opts.stop != cfg::kNoNode && id != opts.stop) {
      // A terminal that is not the requested stop node: the path never
      // reaches the target and is not a result (it is not pruned either -
      // it simply lies outside the exploration's scope).
      ++stats.offtarget_paths;
    } else if (is_leaf && replaying) {
      // The frontier leaf: this result was emitted (and buffered) before
      // the snapshot was taken. Close the replay without re-checking or
      // re-emitting; exploration continues with the unvisited siblings as
      // the forced recursion unwinds.
      end_replay();
    } else if (is_leaf) {
      // Without early termination nothing has been checked yet; validate
      // the whole path condition once at the leaf.
      bool valid = true;
      if (!opts.early_termination || !opts.incremental) {
        if (opts.incremental) solver->set_region(id);
        smt::CheckResult cr = check_current();
        valid = cr == smt::CheckResult::kSat;
        if (cr == smt::CheckResult::kUnknown) degraded = true;
      }
      if (valid) {
        ++stats.valid_paths;
        PathResult r;
        r.path = cur_path;
        r.path.push_back(id);
        r.conds = state.conds();
        r.values = state.values();
        r.obligations = state.obligations();
        r.exit = n.exit;
        r.emit_instance = n.emit_instance;
        sink(r);
        if (opts.max_results != 0 && stats.valid_paths >= opts.max_results) {
          aborted = true;
        }
      } else if (degraded) {
        ++stats.degraded_paths;
      } else {
        ++stats.pruned_paths;
      }
    } else {
      cur_path.push_back(id);
      if (force != nullptr && depth + 1 < force->size()) {
        dfs((*force)[depth + 1], sink, force, depth + 1);
        // Resume: at fan-out depths (beyond the shard prefix) the forced
        // frontier child is the one the interrupted run visited *last*;
        // its later siblings, in successor order, are exactly the work
        // that run had not reached. (At prefix depths the siblings belong
        // to other shards and stay untouched.)
        if (force == replay && depth + 1 >= replay_fanout_from && !aborted) {
          bool after = false;
          for (cfg::NodeId s : n.succ) {
            if (after) {
              dfs(s, sink, nullptr, 0);
              if (aborted) break;
            } else if (s == (*force)[depth + 1]) {
              after = true;
            }
          }
        }
      } else {
        for (cfg::NodeId s : n.succ) {
          dfs(s, sink, nullptr, 0);
          if (aborted) break;
        }
      }
      cur_path.pop_back();
    }
  } else if (degraded) {
    ++stats.degraded_paths;
  } else {
    ++stats.pruned_paths;
  }

  if (pushed && opts.incremental) solver->pop();
  if (env) env->rollback(env_mark);
  state.rollback(mark);
  // The conds stack just shrank; the last-model verified prefix and the
  // folded signature prefix unwind with it (their surviving entries are
  // untouched by the rollback). A conjunct leaves the signature only when
  // its last stack occurrence pops — the mirror image of the fold in
  // check_current_impl.
  last_model_conds = std::min(last_model_conds, state.conds().size());
  while (folded.size() > state.conds().size()) {
    ir::ExprRef c = folded.back();
    auto it = on_stack.find(c);
    if (--it->second == 0) {
      sig = smt::PathCondCache::retract(sig, c);
      on_stack.erase(it);
    }
    folded.pop_back();
  }
}

std::optional<smt::Model> Engine::solve_for_model(const PathResult& r) {
  auto s = make_solver();
  for (ir::ExprRef c : preconds_) s->add(c);
  for (ir::ExprRef c : r.conds) s->add(c);
  if (s->check() != smt::CheckResult::kSat) return std::nullopt;
  return s->model();
}

}  // namespace meissa::sym
