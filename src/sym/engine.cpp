#include "sym/engine.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace meissa::sym {

namespace {

// Collects `expr == const` conjuncts: the "constrained with one value"
// test of paper §4 that lets hash results be computed concretely even
// when the keys were pinned by match conditions rather than assignments.
void collect_eq_pins(ir::ExprRef c,
                     std::unordered_map<ir::ExprRef, uint64_t>& pins) {
  if (c->kind == ir::ExprKind::kBool &&
      c->bool_op() == ir::BoolOp::kAnd) {
    collect_eq_pins(c->lhs, pins);
    collect_eq_pins(c->rhs, pins);
    return;
  }
  if (c->kind == ir::ExprKind::kCmp && c->cmp_op() == ir::CmpOp::kEq &&
      c->rhs->kind == ir::ExprKind::kConst) {
    pins.emplace(c->lhs, c->rhs->value);
  }
}

// How many prefix shards run_parallel aims for. Fixed (not derived from the
// thread count) so the shard decomposition — and with it every fresh-symbol
// namespace and the merge order — is identical for any number of workers.
constexpr size_t kTargetShards = 32;

}  // namespace

// One exploration's mutable state: the paper's V and C stacks, the
// incremental solver, the node path, and counters. The owning Engine holds
// only immutable configuration (graph, options, preconditions, seeds), so
// several contexts can explore concurrently.
struct Engine::ExplorationContext {
  Engine& eng;
  SymState state;
  std::unique_ptr<smt::Solver> solver;  // incremental mode
  // Static-pruning gate: per-path abstract environment (solver-equivalent
  // verdicts only, so the emitted path set matches the ungated run).
  std::optional<analysis::PathEnv> env;
  cfg::Path cur_path;
  EngineStats stats;
  bool aborted = false;
  std::chrono::steady_clock::time_point deadline{};
  bool has_deadline = false;

  ExplorationContext(Engine& e, const std::string& fresh_ns)
      : eng(e), state(e.ctx_) {
    if (!fresh_ns.empty()) state.set_fresh_ns(fresh_ns);
    for (const auto& [f, v] : e.seeds_) state.assign(f, v);
    if (e.opts_.incremental) {
      solver = e.make_solver();
      solver->set_budget(e.opts_.budget);
      for (ir::ExprRef c : e.preconds_) solver->add(c);
    }
    if (e.gates_) {
      env.emplace(e.ctx_);
      for (ir::ExprRef c : e.preconds_) env->add_precondition(c);
    }
  }

  void set_deadline(double budget_seconds) {
    if (budget_seconds <= 0) return;
    has_deadline = true;
    deadline = util::steady_deadline_after(std::chrono::steady_clock::now(),
                                           budget_seconds);
  }

  // Folds the incremental solver's counters into `stats` (done once, at the
  // end, because Solver::stats() is cumulative).
  void finish() {
    if (eng.opts_.incremental) stats.solver = solver->stats();
  }

  smt::CheckResult check_current();
  smt::CheckResult check_current_impl();
  // DFS from `id`. While `force` is set and `depth + 1 < force->size()`,
  // recursion is pinned to the forced prefix instead of fanning out over
  // all successors — this replays a shard's prefix, rebuilding V/C and the
  // solver stack exactly as the sequential DFS would have them on arrival.
  void dfs(cfg::NodeId id, const Sink& sink, const cfg::Path* force,
           size_t depth);
};

Engine::Engine(ir::Context& ctx, const cfg::Cfg& g, EngineOptions opts)
    : ctx_(ctx), g_(g), opts_(std::move(opts)) {
  gates_ = opts_.static_pruning && !opts_.check_every_predicate;
  use_facts_ = gates_ && opts_.facts != nullptr &&
               opts_.facts->refuted.size() == g_.size();
  if (opts_.stop != cfg::kNoNode) {
    // Stop-mode exploration never needs nodes from which the stop node is
    // unreachable; precompute the reverse-reachable region.
    reaches_stop_.assign(g_.size(), false);
    std::vector<std::vector<cfg::NodeId>> preds(g_.size());
    for (cfg::NodeId id = 0; id < g_.size(); ++id) {
      for (cfg::NodeId s : g_.node(id).succ) preds[s].push_back(id);
    }
    std::vector<cfg::NodeId> work{opts_.stop};
    reaches_stop_[opts_.stop] = true;
    while (!work.empty()) {
      cfg::NodeId cur = work.back();
      work.pop_back();
      for (cfg::NodeId p : preds[cur]) {
        if (!reaches_stop_[p]) {
          reaches_stop_[p] = true;
          work.push_back(p);
        }
      }
    }
  }
}

std::unique_ptr<smt::Solver> Engine::make_solver() const {
  if (opts_.use_z3) {
    auto s = smt::make_z3_solver(ctx_);
    util::check(s != nullptr, "engine: Z3 backend requested but unavailable");
    return s;
  }
  return smt::make_bv_solver(ctx_);
}

void Engine::add_precondition(ir::ExprRef c) {
  util::check(c != nullptr && c->is_bool(), "precondition must be boolean");
  preconds_.push_back(c);
}

void Engine::seed_value(ir::FieldId f, ir::ExprRef value) {
  seeds_.emplace_back(f, value);
}

smt::CheckResult Engine::ExplorationContext::check_current() {
  // Observability wrapper: per-check latency histograms keyed by verdict,
  // and a budget-exhaustion marker on kUnknown. Clocks are read only when
  // metrics are on; the disabled path is one relaxed load plus the check.
  if (!obs::metrics_enabled()) {
    smt::CheckResult r = check_current_impl();
    if (r == smt::CheckResult::kUnknown) {
      obs::instant("solver budget exhausted", "dfs");
    }
    return r;
  }
  auto t0 = std::chrono::steady_clock::now();
  smt::CheckResult r = check_current_impl();
  const uint64_t us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  switch (r) {
    case smt::CheckResult::kSat:
      obs::metrics().histogram("dfs.check_us.sat").observe(us);
      break;
    case smt::CheckResult::kUnsat:
      obs::metrics().histogram("dfs.check_us.unsat").observe(us);
      break;
    case smt::CheckResult::kUnknown:
      obs::metrics().histogram("dfs.check_us.unknown").observe(us);
      obs::metrics().counter("dfs.budget_exhausted").add();
      obs::instant("solver budget exhausted", "dfs");
      break;
  }
  return r;
}

smt::CheckResult Engine::ExplorationContext::check_current_impl() {
  if (eng.opts_.incremental) {
    smt::CheckResult r = solver->check();
    stats.solver = solver->stats();
    return r;
  }
  // Non-incremental: fresh solver, re-assert everything (p4pktgen-style).
  auto s = eng.make_solver();
  s->set_budget(eng.opts_.budget);
  for (ir::ExprRef c : eng.preconds_) s->add(c);
  for (ir::ExprRef c : state.conds()) s->add(c);
  smt::CheckResult r = s->check();
  stats.solver.checks += s->stats().checks;
  stats.solver.fast_path_hits += s->stats().fast_path_hits;
  stats.solver.sat_calls += s->stats().sat_calls;
  stats.solver.unknowns += s->stats().unknowns;
  return r;
}

void Engine::run(const Sink& sink) {
  ExplorationContext ec(*this, opts_.fresh_ns);
  // An unsatisfiable precondition set prunes the whole exploration; check
  // it once up front (otherwise predicate-free paths would never be
  // validated against it in incremental mode).
  if (!preconds_.empty() && opts_.incremental) {
    if (ec.check_current() == smt::CheckResult::kUnsat) {
      ++ec.stats.pruned_paths;
      ec.finish();
      stats_ = ec.stats;
      return;
    }
  }
  ec.set_deadline(opts_.time_budget_seconds);
  cfg::NodeId start = opts_.start == cfg::kNoNode ? g_.entry() : opts_.start;
  ec.dfs(start, sink, nullptr, 0);
  ec.finish();
  stats_ = ec.stats;
}

std::vector<cfg::Path> Engine::compute_shards(size_t target) const {
  cfg::NodeId start = opts_.start == cfg::kNoNode ? g_.entry() : opts_.start;
  if (!reaches_stop_.empty() && !reaches_stop_[start]) return {};
  std::vector<cfg::Path> shards{{start}};
  bool grew = true;
  while (shards.size() < target && grew) {
    grew = false;
    std::vector<cfg::Path> next;
    next.reserve(shards.size() * 2);
    for (cfg::Path& p : shards) {
      const cfg::Node& n = g_.node(p.back());
      const bool at_stop = opts_.stop != cfg::kNoNode && p.back() == opts_.stop;
      if (at_stop || n.succ.empty()) {
        next.push_back(std::move(p));  // complete path: a closed shard
        continue;
      }
      for (cfg::NodeId s : n.succ) {
        // Off-target successors (stop mode) contribute no results; the
        // sequential DFS abandons them on entry, so skip them here too.
        if (!reaches_stop_.empty() && !reaches_stop_[s]) continue;
        cfg::Path q = p;
        q.push_back(s);
        next.push_back(std::move(q));
        grew = true;
      }
    }
    shards = std::move(next);
  }
  return shards;
}

void Engine::run_parallel(const Sink& sink, int threads) {
  threads = util::resolve_threads(threads);
  // Precondition precheck, as in run(). kUnknown (budget exhausted) simply
  // proceeds: only a proven-unsat precondition prunes the exploration.
  if (!preconds_.empty() && opts_.incremental) {
    auto s = make_solver();
    s->set_budget(opts_.budget);
    for (ir::ExprRef c : preconds_) s->add(c);
    if (s->check() == smt::CheckResult::kUnsat) {
      stats_ = EngineStats{};
      ++stats_.pruned_paths;
      stats_.solver = s->stats();
      return;
    }
  }

  const std::vector<cfg::Path> shards = compute_shards(kTargetShards);
  std::vector<std::vector<PathResult>> buffered(shards.size());
  std::vector<EngineStats> shard_stats(shards.size());

  std::chrono::steady_clock::time_point deadline{};
  bool has_deadline = false;
  if (opts_.time_budget_seconds > 0) {
    has_deadline = true;
    deadline = util::steady_deadline_after(std::chrono::steady_clock::now(),
                                           opts_.time_budget_seconds);
  }

  const std::string ns_base =
      opts_.fresh_ns.empty() ? std::string() : opts_.fresh_ns + ".";
  util::ThreadPool pool(threads);
  pool.run(shards.size(), [&](size_t i) {
    obs::Span span("shard " + std::to_string(i), "dfs");
    ExplorationContext ec(*this, ns_base + "s" + std::to_string(i));
    ec.has_deadline = has_deadline;
    ec.deadline = deadline;
    ec.dfs(shards[i].front(), [&](const PathResult& r) {
      buffered[i].push_back(r);
    }, &shards[i], 0);
    ec.finish();
    shard_stats[i] = ec.stats;
    span.arg("paths", buffered[i].size());
    span.arg("nodes_visited", ec.stats.nodes_visited);
  });

  // Merge in shard order = sequential DFS pre-order. valid_paths counts
  // what the sink actually saw after the global max_results cut; the other
  // counters sum over shards (prefix replay revisits shared nodes, so
  // nodes_visited/pruned_paths exceed a single sequential run's — but are
  // identical for every thread count).
  EngineStats total;
  for (const EngineStats& s : shard_stats) total += s;
  total.valid_paths = 0;
  auto publish = [this](const EngineStats& st) {
    stats_ = st;
    if (obs::metrics_enabled()) {
      obs::metrics().counter("dfs.nodes_visited").add(st.nodes_visited);
      obs::metrics().counter("dfs.valid_paths").add(st.valid_paths);
      obs::metrics().counter("dfs.pruned_paths").add(st.pruned_paths);
      obs::metrics().counter("dfs.degraded_paths").add(st.degraded_paths);
      obs::metrics().counter("dfs.static_prunes").add(st.static_prunes);
    }
  };
  for (const std::vector<PathResult>& buf : buffered) {
    for (const PathResult& r : buf) {
      if (opts_.max_results != 0 && total.valid_paths >= opts_.max_results) {
        publish(total);
        return;
      }
      sink(r);
      ++total.valid_paths;
    }
  }
  publish(total);
}

void Engine::ExplorationContext::dfs(cfg::NodeId id, const Sink& sink,
                                     const cfg::Path* force, size_t depth) {
  if (aborted) return;
  const cfg::Cfg& g = eng.g_;
  const EngineOptions& opts = eng.opts_;
  if (!eng.reaches_stop_.empty() && !eng.reaches_stop_[id]) return;
  ++stats.nodes_visited;
  if (eng.opts_.cancel != nullptr && eng.opts_.cancel->cancelled()) {
    stats.cancelled = true;
    aborted = true;
    return;
  }
  if (has_deadline && (stats.nodes_visited & 0xff) == 0 &&
      std::chrono::steady_clock::now() > deadline) {
    stats.timed_out = true;
    aborted = true;
    return;
  }
  const cfg::Node& n = g.node(id);
  const SymState::Mark mark = state.mark();
  const analysis::PathEnv::Mark env_mark = env ? env->mark() : 0;
  bool pushed = false;

  // Leaves: the stop node (summary mode) or a successor-less terminal.
  const bool is_leaf =
      (opts.stop != cfg::kNoNode && id == opts.stop) || n.succ.empty();

  // --- Execute the node's statement (skipped for the stop node). ---------
  bool feasible = true;
  // Set when a budgeted check answered kUnknown: the branch is abandoned
  // as *degraded* (solver could not decide it), not as proven-infeasible.
  bool degraded = false;
  if (!(opts.stop != cfg::kNoNode && id == opts.stop)) {
    if (n.is_hash) {
      // Paper §4: compute the hash when every key is pinned to a constant;
      // otherwise leave the destination unconstrained and record an
      // obligation for the driver.
      std::vector<ir::ExprRef> keys;
      bool all_const = true;
      for (ir::FieldId k : n.hash.keys) {
        keys.push_back(state.value_of(k));
        all_const &= keys.back()->is_const();
      }
      if (!n.hash.key_exprs.empty()) {
        keys.clear();
        all_const = true;
        for (ir::ExprRef e : n.hash.key_exprs) {
          keys.push_back(state.subst(e));
          all_const &= keys.back()->is_const();
        }
      }
      if (!all_const) {
        // Keys not pinned by assignment may still be pinned by equality
        // conditions on the path (e.g. exact table matches).
        std::unordered_map<ir::ExprRef, uint64_t> pins;
        for (ir::ExprRef c : state.conds()) collect_eq_pins(c, pins);
        for (ir::ExprRef c : eng.preconds_) collect_eq_pins(c, pins);
        all_const = true;
        for (ir::ExprRef& k : keys) {
          if (k->is_const()) continue;
          auto it = pins.find(k);
          if (it != pins.end()) {
            k = eng.ctx_.arena.constant(it->second, k->width);
          } else {
            all_const = false;
          }
        }
      }
      const int dest_w = eng.ctx_.fields.width(n.hash.dest);
      if (all_const) {
        std::vector<uint64_t> kv;
        std::vector<int> kw;
        for (ir::ExprRef e : keys) {
          kv.push_back(e->value);
          kw.push_back(e->width);
        }
        uint64_t h = p4::compute_hash(n.hash.algo, kv, kw, dest_w);
        state.assign(n.hash.dest, eng.ctx_.arena.constant(h, dest_w));
      } else {
        ir::FieldId fresh = state.fresh_symbol(dest_w);
        state.assign(n.hash.dest, eng.ctx_.var(fresh));
        HashObligation o;
        o.placeholder = fresh;
        o.algo = n.hash.algo;
        o.key_exprs = keys;
        for (ir::ExprRef e : keys) o.key_widths.push_back(e->width);
        state.add_obligation(std::move(o));
      }
    } else {
      switch (n.stmt.kind) {
        case ir::StmtKind::kNop:
          break;
        case ir::StmtKind::kAssign:
          state.assign(n.stmt.target, state.subst(n.stmt.expr));
          break;
        case ir::StmtKind::kAssume: {
          // Dataflow facts: a predicate refuted from the start node with a
          // TOP boundary is unsat under every path condition rooted there.
          if (eng.use_facts_ && eng.opts_.facts->refuted[id]) {
            ++stats.static_prunes;
            feasible = false;
            break;
          }
          ir::ExprRef c = state.subst(n.stmt.expr);
          if (!opts.check_every_predicate && c->is_true()) {
            ++stats.folded_checks;
          } else if (!opts.check_every_predicate && c->is_false()) {
            ++stats.folded_checks;
            feasible = false;
          } else {
            analysis::Verdict verdict = analysis::Verdict::kUnknown;
            if (env) verdict = env->assume(c);
            if (verdict == analysis::Verdict::kRefuted) {
              ++stats.static_prunes;
              feasible = false;
              break;
            }
            state.add_cond(c);
            if (opts.incremental) {
              solver->push();
              solver->add(c);
            }
            pushed = true;
            if (opts.early_termination) {
              if (verdict != analysis::Verdict::kUnknown) {
                // Statically certain (implied or field-wise satisfiable):
                // the check's result is known, skip the call.
                ++stats.skipped_checks;
              } else {
                switch (check_current()) {
                  case smt::CheckResult::kSat:
                    break;
                  case smt::CheckResult::kUnsat:
                    feasible = false;
                    break;
                  case smt::CheckResult::kUnknown:
                    feasible = false;
                    degraded = true;
                    break;
                }
              }
            }
          }
          break;
        }
      }
    }
  }

  if (feasible) {
    if (is_leaf && opts.stop != cfg::kNoNode && id != opts.stop) {
      // A terminal that is not the requested stop node: the path never
      // reaches the target and is not a result (it is not pruned either -
      // it simply lies outside the exploration's scope).
      ++stats.offtarget_paths;
    } else if (is_leaf) {
      // Without early termination nothing has been checked yet; validate
      // the whole path condition once at the leaf.
      bool valid = true;
      if (!opts.early_termination || !opts.incremental) {
        smt::CheckResult cr = check_current();
        valid = cr == smt::CheckResult::kSat;
        if (cr == smt::CheckResult::kUnknown) degraded = true;
      }
      if (valid) {
        ++stats.valid_paths;
        PathResult r;
        r.path = cur_path;
        r.path.push_back(id);
        r.conds = state.conds();
        r.values = state.values();
        r.obligations = state.obligations();
        r.exit = n.exit;
        r.emit_instance = n.emit_instance;
        sink(r);
        if (opts.max_results != 0 && stats.valid_paths >= opts.max_results) {
          aborted = true;
        }
      } else if (degraded) {
        ++stats.degraded_paths;
      } else {
        ++stats.pruned_paths;
      }
    } else {
      cur_path.push_back(id);
      if (force != nullptr && depth + 1 < force->size()) {
        dfs((*force)[depth + 1], sink, force, depth + 1);
      } else {
        for (cfg::NodeId s : n.succ) {
          dfs(s, sink, nullptr, 0);
          if (aborted) break;
        }
      }
      cur_path.pop_back();
    }
  } else if (degraded) {
    ++stats.degraded_paths;
  } else {
    ++stats.pruned_paths;
  }

  if (pushed && opts.incremental) solver->pop();
  if (env) env->rollback(env_mark);
  state.rollback(mark);
}

std::optional<smt::Model> Engine::solve_for_model(const PathResult& r) {
  auto s = make_solver();
  for (ir::ExprRef c : preconds_) s->add(c);
  for (ir::ExprRef c : r.conds) s->add(c);
  if (s->check() != smt::CheckResult::kSat) return std::nullopt;
  return s->model();
}

}  // namespace meissa::sym
