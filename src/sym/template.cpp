#include "sym/template.hpp"

#include <sstream>
#include <unordered_set>

#include "util/strings.hpp"

namespace meissa::sym {

std::vector<std::string> find_invalid_header_reads(const ir::Context& ctx,
                                                   const cfg::Cfg& g,
                                                   const cfg::Path& path) {
  std::vector<std::string> out;
  // Concrete validity tracking: validity fields are only ever assigned
  // constants, so a linear scan decides every read.
  std::unordered_map<ir::FieldId, uint64_t> validity;
  std::unordered_set<std::string> reported;
  auto header_of = [](const std::string& name) -> std::string {
    // "hdr.<h>.<field>" -> "<h>"; validity and non-hdr fields -> "".
    if (!util::starts_with(name, "hdr.")) return "";
    size_t dot = name.find('.', 4);
    if (dot == std::string::npos) return "";
    if (name.find(".$valid") != std::string::npos) return "";
    return name.substr(4, dot - 4);
  };
  for (cfg::NodeId id : path) {
    const cfg::Node& n = g.node(id);
    std::unordered_set<ir::FieldId> reads;
    if (n.is_hash) {
      for (ir::FieldId k : n.hash.keys) reads.insert(k);
      for (ir::ExprRef e : n.hash.key_exprs) ir::collect_fields(e, reads);
    } else if (n.stmt.kind != ir::StmtKind::kNop && n.stmt.expr != nullptr) {
      ir::collect_fields(n.stmt.expr, reads);
    }
    // Short-circuit idiom: an expression that itself tests a header's
    // validity (hdr.h.isValid() && hdr.h.f ...) guards its own reads.
    std::unordered_set<std::string> self_guarded;
    for (ir::FieldId f : reads) {
      const std::string& name = ctx.fields.name(f);
      size_t pos = name.find(".$valid");
      if (util::starts_with(name, "hdr.") && pos != std::string::npos) {
        self_guarded.insert(name.substr(4, pos - 4));
      }
    }
    if (n.instance >= 0) {
      const cfg::InstanceInfo& inst =
          g.instances()[static_cast<size_t>(n.instance)];
      for (ir::FieldId f : reads) {
        std::string h = header_of(ctx.fields.name(f));
        if (h.empty()) continue;
        if (self_guarded.count(h)) continue;
        auto vit = inst.validity.find(h);
        if (vit == inst.validity.end()) continue;
        auto cur = validity.find(vit->second);
        uint64_t valid = cur == validity.end() ? 0 : cur->second;
        if (valid == 0) {
          std::string key = inst.name + "/" + h;
          if (reported.insert(key).second) {
            out.push_back("read of invalid header '" + h + "' in " +
                          inst.name + " (field " + ctx.fields.name(f) + ")");
          }
        }
      }
    }
    if (!n.is_hash && n.stmt.kind == ir::StmtKind::kAssign &&
        n.stmt.expr->is_const()) {
      const std::string& tname = ctx.fields.name(n.stmt.target);
      if (tname.find(".$valid") != std::string::npos) {
        validity[n.stmt.target] = n.stmt.expr->value;
      }
    }
  }
  return out;
}

TestCaseTemplate make_template(ir::Context& ctx, const cfg::Cfg& g,
                               const PathResult& r, uint64_t id) {
  TestCaseTemplate t;
  t.id = id;
  t.path = r.path;
  t.conds = r.conds;
  t.path_condition = ctx.arena.all_of(r.conds);
  t.final_values = r.values;
  t.obligations = r.obligations;
  t.exit = r.exit;
  t.emit_instance = r.emit_instance;
  for (cfg::NodeId n : r.path) {
    if (g.node(n).instance >= 0) {
      t.entry_instance = g.node(n).instance;
      break;
    }
  }
  return t;
}

std::string describe(const TestCaseTemplate& t, const ir::Context& ctx,
                     const cfg::Cfg& g) {
  std::ostringstream os;
  os << "template #" << t.id << ": "
     << (t.exit == cfg::ExitKind::kEmit ? "emit" : "drop") << ", "
     << t.path.size() << " nodes";
  if (t.entry_instance >= 0) {
    os << ", enters " << g.instances()[static_cast<size_t>(t.entry_instance)].name;
  }
  if (t.exit == cfg::ExitKind::kEmit && t.emit_instance >= 0) {
    os << ", leaves " << g.instances()[static_cast<size_t>(t.emit_instance)].name;
  }
  os << "\n  condition: " << ir::to_string(t.path_condition, ctx.fields);
  return os.str();
}

}  // namespace meissa::sym
