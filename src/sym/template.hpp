// Test case templates (paper §2.1/§3.2): the per-path artifact handed to
// the test driver. A template fixes the execution path, the input-pattern
// constraint (path condition), and the symbolic output (final V), from
// which the driver derives concrete input packets and expected outputs.
#pragma once

#include <string>

#include "sym/engine.hpp"

namespace meissa::sym {

struct TestCaseTemplate {
  uint64_t id = 0;
  cfg::Path path;
  std::vector<ir::ExprRef> conds;  // path condition conjuncts (input terms)
  ir::ExprRef path_condition = nullptr;  // their conjunction
  std::unordered_map<ir::FieldId, ir::ExprRef> final_values;
  std::vector<HashObligation> obligations;
  cfg::ExitKind exit = cfg::ExitKind::kNone;
  int emit_instance = -1;   // deparser that serializes the output (kEmit)
  int entry_instance = -1;  // pipeline instance whose parser sees the input
  // Static diagnostics found on this path (e.g. reads of invalid-header
  // fields — the class of problem p4pktgen-style tools flag).
  std::vector<std::string> diagnostics;
};

// Scans a path for reads of content fields whose header is invalid at the
// reading instance (validity is tracked concretely along the path, which
// is exact on unsummarized CFGs). Returns human-readable findings.
std::vector<std::string> find_invalid_header_reads(const ir::Context& ctx,
                                                   const cfg::Cfg& g,
                                                   const cfg::Path& path);

// Converts an engine result into a template (resolving entry instance).
TestCaseTemplate make_template(ir::Context& ctx, const cfg::Cfg& g,
                               const PathResult& r, uint64_t id);

// Human-readable rendering (for reports and the bug-localization trace).
std::string describe(const TestCaseTemplate& t, const ir::Context& ctx,
                     const cfg::Cfg& g);

}  // namespace meissa::sym
