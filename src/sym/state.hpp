// Symbolic state for DFS path exploration: the paper's value stack V and
// condition stack C (§3.2, Fig. 6), with O(1) undo for backtracking.
#pragma once

#include <deque>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cfg/cfg.hpp"
#include "ir/stmt.hpp"

namespace meissa::sym {

// A hash whose keys were not pinned to constants at execution time: the
// destination was left as the fresh symbol `placeholder`, and the test
// driver must later verify hash(keys...) == model(placeholder) (paper §4).
struct HashObligation {
  ir::FieldId placeholder = ir::kInvalidField;
  p4::HashAlgo algo = p4::HashAlgo::kCrc16;
  std::vector<ir::ExprRef> key_exprs;  // input-terms at execution time
  std::vector<int> key_widths;
};

// The mutable symbolic state of one DFS exploration. All three stacks
// (values, conditions, hash obligations) support mark/rollback.
class SymState {
 public:
  explicit SymState(ir::Context& ctx) : ctx_(ctx) {}

  // Namespaces this exploration's fresh symbols: "$free.<ns>.<k>" with a
  // local counter, instead of "$free.<N>" from the shared Context counter.
  // A deterministic ns makes fresh-symbol names (and thus every expression
  // built from them) independent of thread scheduling.
  void set_fresh_ns(std::string ns) {
    fresh_ns_ = std::move(ns);
    fresh_local_ = 0;
  }

  // Current symbolic value of a field: its assigned expression, or the
  // field variable itself when never assigned (the input symbol).
  ir::ExprRef value_of(ir::FieldId f) {
    auto it = values_.find(f);
    if (it != values_.end()) return it->second;
    return ctx_.var(f);
  }

  // ⟦V⟧e — substitutes current values into `e` (re-simplifying).
  ir::ExprRef subst(ir::ExprRef e) {
    return ir::substitute(e, ctx_.arena, [this](ir::FieldId f, int) {
      auto it = values_.find(f);
      return it != values_.end() ? it->second : nullptr;
    });
  }

  void assign(ir::FieldId f, ir::ExprRef value) {
    auto it = values_.find(f);
    undo_.push_back({f, it != values_.end() ? it->second : nullptr});
    values_[f] = value;
  }

  void add_cond(ir::ExprRef c) { conds_.push_back(c); }
  void add_obligation(HashObligation o) { obligations_.push_back(std::move(o)); }

  const std::vector<ir::ExprRef>& conds() const { return conds_; }
  const std::vector<HashObligation>& obligations() const {
    return obligations_;
  }
  const std::unordered_map<ir::FieldId, ir::ExprRef>& values() const {
    return values_;
  }

  struct Mark {
    size_t undo;
    size_t conds;
    size_t obligations;
  };
  Mark mark() const { return {undo_.size(), conds_.size(), obligations_.size()}; }

  void rollback(const Mark& m) {
    while (undo_.size() > m.undo) {
      auto& [f, prev] = undo_.back();
      if (prev == nullptr) {
        values_.erase(f);
      } else {
        values_[f] = prev;
      }
      undo_.pop_back();
    }
    conds_.resize(m.conds);
    obligations_.resize(m.obligations);
  }

  // Allocates a fresh, never-constrained symbol of the given width
  // (used for unpinned hash results). While pinned names are queued (see
  // pin_fresh), those are consumed first — without advancing the counter —
  // so a resumed exploration re-mints the exact names its checkpointed
  // prefix minted, then continues numbering where the original left off.
  ir::FieldId fresh_symbol(int width) {
    if (!pinned_.empty()) {
      std::pair<std::string, int> p = std::move(pinned_.front());
      pinned_.pop_front();
      return ctx_.fields.intern(p.first, p.second);
    }
    std::string name =
        fresh_ns_.empty()
            ? "$free." + std::to_string(ctx_.fresh_counter++)
            : "$free." + fresh_ns_ + "." + std::to_string(fresh_local_++);
    return ctx_.fields.intern(name, width);
  }

  // Checkpoint/resume support. The local counter is monotonic across one
  // exploration (abandoned branches bump it and never give indices back),
  // so a work-unit snapshot must carry it; pin_fresh queues the (name,
  // width) pairs the frontier path minted, in mint order.
  uint64_t fresh_counter() const { return fresh_local_; }
  void set_fresh_counter(uint64_t c) { fresh_local_ = c; }
  void pin_fresh(std::vector<std::pair<std::string, int>> names) {
    pinned_.assign(std::make_move_iterator(names.begin()),
                   std::make_move_iterator(names.end()));
  }
  bool has_pinned_fresh() const { return !pinned_.empty(); }

  ir::Context& ctx() { return ctx_; }

 private:
  ir::Context& ctx_;
  std::string fresh_ns_;
  uint64_t fresh_local_ = 0;
  std::deque<std::pair<std::string, int>> pinned_;
  std::unordered_map<ir::FieldId, ir::ExprRef> values_;
  std::vector<std::pair<ir::FieldId, ir::ExprRef>> undo_;
  std::vector<ir::ExprRef> conds_;
  std::vector<HashObligation> obligations_;
};

}  // namespace meissa::sym
