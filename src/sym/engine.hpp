// The symbolic-execution engine — Algorithm 1 of the paper: DFS over the
// CFG maintaining the value stack V and condition stack C, with early
// termination (a satisfiability check at every predicate node) backed by
// an incremental solver (push on descend, pop on backtrack).
//
// The engine is reused by three callers:
//   * test-case generation over the whole (or summarized) CFG,
//   * the code-summary pass, which runs it *within* one pipeline subgraph
//     (custom start/stop nodes, seeded state and preconditions),
//   * baselines, which disable early termination and/or incrementality.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <string>

#include "analysis/dataflow.hpp"
#include "analysis/env.hpp"
#include "cfg/cfg.hpp"
#include "smt/cache.hpp"
#include "smt/solver.hpp"
#include "sym/state.hpp"
#include "util/cancel.hpp"
#include "util/faultinject.hpp"
#include "util/supervise.hpp"

namespace meissa::sym {

struct EngineOptions {
  // Prune at every predicate node (paper §3.2). Off = check only at leaves
  // (the Gauntlet-style model-based mode).
  bool early_termination = true;
  // Paper-faithful Algorithm 1: a solver call at EVERY predicate node
  // (Fig. 6's Sym.Predicate rule). Off (default) enables this
  // implementation's optimization of deciding constant-folded predicates
  // without touching the solver.
  bool check_every_predicate = false;
  // Reuse one incremental solver with push/pop. Off = build a fresh solver
  // and re-assert the whole condition stack at every check (p4pktgen-style).
  bool incremental = true;
  // Use the Z3 backend instead of Meissa's own solver.
  bool use_z3 = false;
  // Exploration starts here (kNoNode: the CFG entry)...
  cfg::NodeId start = cfg::kNoNode;
  // ...and treats this node as a leaf without executing it (kNoNode: run to
  // terminals). Used by code summary to stop at a pipeline's entry/exit.
  cfg::NodeId stop = cfg::kNoNode;
  // Safety cap on emitted results; 0 = unlimited.
  uint64_t max_results = 0;
  // Wall-clock budget in seconds; 0 = unlimited. Exceeding it aborts the
  // exploration and sets EngineStats::timed_out (used to reproduce the
  // paper's one-hour-budget timeouts, Fig. 9).
  double time_budget_seconds = 0;
  // Namespace for fresh "$free" symbols. Empty: draw from the shared
  // Context counter (scheduling-dependent under concurrency). Non-empty:
  // names become "$free.<ns>.<k>" with a per-exploration counter, so every
  // symbol this exploration mints is deterministic. run_parallel() extends
  // the namespace per shard ("<ns>.s<i>").
  std::string fresh_ns;
  // Decide predicates statically before the solver sees them: prune
  // branches refuted by the per-path abstract environment (and by `facts`,
  // when provided), and skip checks whose outcome the environment implies.
  // Every decision matches what the solver would conclude, so the emitted
  // path set is identical with this on or off. Disabled automatically in
  // check_every_predicate mode (the paper-faithful ablation).
  bool static_pruning = true;
  // Optional precomputed dataflow facts for this graph (refuted assume
  // nodes). Must be computed from the same start node with a TOP boundary
  // (analysis::compute_facts) and outlive the engine.
  const analysis::Facts* facts = nullptr;
  // Per-check solver resource budget. A check that exhausts it yields
  // kUnknown and the affected branch is recorded as *degraded* (counted in
  // EngineStats::degraded_paths) instead of being silently dropped or
  // aborting the run. Default = unlimited: behavior (and output) identical
  // to a build without budget support.
  smt::Budget budget;
  // Optional cooperative cancellation: polled at DFS safe points; when set
  // and fired, the exploration unwinds cleanly with partial results and
  // EngineStats::cancelled = true. Must outlive the run.
  const util::CancelToken* cancel = nullptr;
  // Canonicalized path-condition result cache (smt/cache.hpp), consulted
  // before any backend runs and shared by all shards of a parallel
  // exploration. Only takes effect under an unlimited per-check budget —
  // with a limited budget a cached definite verdict could mask a budget-
  // dependent kUnknown and make the degraded-coverage split scheduling-
  // dependent. Off by default so ablations/baselines measure raw solving.
  bool pc_cache = false;
  // Adaptive fast-path-vs-bit-blasting portfolio in the BvSolver, keyed by
  // CFG region (predicate node). Off by default for the same reason.
  bool solver_portfolio = false;
  // Externally-owned verdict cache shared ACROSS engine instances (the
  // incremental re-testing session warms it on the baseline run and reuses
  // it for every update). Same gating as pc_cache (which must also be on);
  // when set, the engine creates no cache of its own. Sharing across
  // engines with different preconditions — and across runs — is sound
  // because cache keys cover the *full* asserted conjunct set: every
  // exploration's signature starts from the engine's precondition
  // signature, so a verdict is a pure semantic property of the formula,
  // valid for any engine over the same ir::Context. Must outlive every
  // sharing engine.
  smt::PathCondCache* shared_pc_cache = nullptr;
};

struct EngineStats {
  uint64_t valid_paths = 0;     // results emitted
  uint64_t pruned_paths = 0;    // DFS branches cut (early termination/leaf)
  uint64_t folded_checks = 0;   // predicates decided by substitution alone
  uint64_t nodes_visited = 0;
  // Terminals reached that were not the requested stop node (stop mode).
  uint64_t offtarget_paths = 0;
  // Static pruning: branches refuted without a solver call...
  uint64_t static_prunes = 0;
  // ...and solver checks skipped because the predicate's outcome was
  // statically certain (implied by, or field-wise satisfiable under, the
  // recorded path constraints).
  uint64_t skipped_checks = 0;
  // Branches abandoned because a budgeted check returned kUnknown: the
  // solver could not decide them within its Budget. Disjoint from
  // pruned_paths (those are *proven* infeasible); exact coverage is
  // valid_paths, degraded_paths bounds what the budget may have cost.
  uint64_t degraded_paths = 0;
  bool timed_out = false;
  // The run's CancelToken fired and the exploration unwound early.
  bool cancelled = false;
  // run_parallel shard supervision/resume accounting: shards retried after
  // a watchdog trip or injected fault, shards abandoned after the retry
  // failed too (their subtree's coverage is unknown — degraded, like
  // degraded_paths, not proven empty), and shards restored or replayed
  // from a ParallelHooks::resume snapshot.
  uint64_t requeued_shards = 0;
  uint64_t degraded_shards = 0;
  uint64_t resumed_shards = 0;
  // Path-condition cache traffic (pc_cache on): checks answered from the
  // cache vs. sent to a backend, and backend-reaching sat checks whose
  // verdict was instead confirmed by re-evaluating the shard's last model
  // against the (few) new conjuncts.
  uint64_t pc_cache_hits = 0;
  uint64_t pc_cache_misses = 0;
  uint64_t pc_model_reuse = 0;
  smt::SolverStats solver;      // checks = the paper's "# of SMT calls"

  // Accumulate counters from another exploration (per-shard workers).
  EngineStats& operator+=(const EngineStats& o) {
    valid_paths += o.valid_paths;
    pruned_paths += o.pruned_paths;
    folded_checks += o.folded_checks;
    nodes_visited += o.nodes_visited;
    offtarget_paths += o.offtarget_paths;
    static_prunes += o.static_prunes;
    skipped_checks += o.skipped_checks;
    degraded_paths += o.degraded_paths;
    timed_out = timed_out || o.timed_out;
    cancelled = cancelled || o.cancelled;
    requeued_shards += o.requeued_shards;
    degraded_shards += o.degraded_shards;
    resumed_shards += o.resumed_shards;
    pc_cache_hits += o.pc_cache_hits;
    pc_cache_misses += o.pc_cache_misses;
    pc_model_reuse += o.pc_model_reuse;
    solver += o.solver;
    return *this;
  }
};

// One explored valid path, in input terms.
struct PathResult {
  cfg::Path path;
  std::vector<ir::ExprRef> conds;  // path condition conjuncts
  std::unordered_map<ir::FieldId, ir::ExprRef> values;  // final V
  std::vector<HashObligation> obligations;
  cfg::ExitKind exit = cfg::ExitKind::kNone;
  int emit_instance = -1;
};

// Externally serializable progress of one prefix shard in run_parallel:
// the results buffered so far, the *frontier* (the full node path of the
// last emitted result, shard start to leaf — the DFS work-unit cursor),
// and the fresh-symbol counter at that point. A ShardProgress round-
// tripped through the checkpoint format and fed back via
// ParallelHooks::resume continues the shard to the exact result set an
// uninterrupted run produces: the frontier is replayed check-free (every
// prefix mint pinned to its original name), then exploration proceeds
// with the siblings the original run had not yet visited.
struct ShardProgress {
  bool done = false;
  std::vector<PathResult> results;
  cfg::Path frontier;          // empty until the first result is emitted
  uint64_t fresh_counter = 0;  // SymState counter at the frontier
  EngineStats stats;           // shard stats at the frontier (final if done)
};

// Optional supervision / checkpointing hooks for run_parallel.
struct ParallelHooks {
  // Snapshot cadence: fire `progress` after every N emitted results per
  // shard (0 = only at shard completion, when `progress` is set).
  uint64_t checkpoint_every = 0;
  // Fired once, before any worker starts, with the shard count of this
  // graph's decomposition (so a checkpoint can pre-size its shard table —
  // every index passed to `progress` is below this count).
  std::function<void(size_t)> on_shards;
  // Consistent snapshot of shard `i`'s progress. Called from worker
  // threads — the receiver synchronizes.
  std::function<void(size_t, const ShardProgress&)> progress;
  // Per-shard prior progress to resume from. Ignored (fresh run) unless
  // its size matches this graph's shard decomposition.
  const std::vector<ShardProgress>* resume = nullptr;
  // Watchdog: every shard attempt runs as a supervised task whose token
  // the DFS polls; a tripped attempt discards its partials and is re-run
  // on a fresh context (max_attempts total), after which the shard is
  // marked degraded (EngineStats::degraded_shards) and contributes no
  // results — accounted, never silently dropped.
  util::Supervisor* supervisor = nullptr;
  int max_attempts = 2;
  // Fault injection: execution sites "shard.<i>" fire at attempt start.
  util::FaultInjector* fault = nullptr;
};

class Engine {
 public:
  using Sink = std::function<void(const PathResult&)>;

  Engine(ir::Context& ctx, const cfg::Cfg& g, EngineOptions opts = {});

  // Asserted before exploration; constrains every path (used for public
  // pre-conditions and LPI assumes).
  void add_precondition(ir::ExprRef c);
  // Seeds the value stack (used by code summary: entry snapshots / V_pub).
  void seed_value(ir::FieldId f, ir::ExprRef value);

  // Runs the DFS; invokes `sink` for every valid path found.
  void run(const Sink& sink);

  // Parallel DFS: decomposes the exploration into a fixed, thread-count-
  // independent set of prefix shards, explores them on `threads` workers
  // (0 = hardware concurrency), each with its own SymState and incremental
  // solver, then replays buffered results to `sink` in shard order — i.e.
  // sequential-DFS pre-order. The emitted result set is identical for every
  // thread count (fresh symbols are namespaced per shard, so set fresh_ns
  // for fully deterministic names). Requires a time budget of 0 or generous
  // enough not to trigger; on timeout the result set is scheduling-
  // dependent, exactly as a timed-out sequential run is input-dependent.
  void run_parallel(const Sink& sink, int threads);
  // As above, with checkpoint/resume snapshots, watchdog supervision and
  // fault injection (see ParallelHooks). The emitted result set stays
  // byte-identical across thread counts, across checkpoint cadences, and
  // across kill/resume cycles; only degraded shards (supervision gave up)
  // subtract from it, and those are counted.
  void run_parallel(const Sink& sink, int threads, const ParallelHooks& hooks);

  const EngineStats& stats() const { return stats_; }

  // Solves this result's path condition (plus preconditions) and returns a
  // satisfying input assignment; nullopt if (unexpectedly) unsat. The model
  // covers every field mentioned; unmentioned inputs are free.
  // Thread-safe: builds a fresh solver per call.
  std::optional<smt::Model> solve_for_model(const PathResult& r);

 private:
  // All per-exploration mutable state (value/condition stacks, incremental
  // solver, current path, stats, deadline). run() uses one; run_parallel()
  // one per shard.
  struct ExplorationContext;

  // Expands the DFS tree from the start node, in successor order, into at
  // least `target` prefix paths (fewer when the tree is smaller). Pure
  // function of the graph — independent of thread count.
  std::vector<cfg::Path> compute_shards(size_t target) const;
  std::unique_ptr<smt::Solver> make_solver() const;

  ir::Context& ctx_;
  const cfg::Cfg& g_;
  EngineOptions opts_;
  std::vector<ir::ExprRef> preconds_;
  // Commutative signature of the asserted preconditions (multiset — a
  // re-added conjunct shifts the key but never the verdict). Every
  // exploration's path signature starts here, so cache keys cover the full
  // formula and verdicts transfer across engines and runs.
  smt::PathSig precond_sig_;
  std::vector<std::pair<ir::FieldId, ir::ExprRef>> seeds_;
  std::vector<bool> reaches_stop_;  // stop mode: region that reaches stop
  // Static gates active: pruning on, not in the paper-faithful ablation,
  // and the facts (if any) cover this graph.
  bool gates_ = false;
  bool use_facts_ = false;
  // Shared verdict cache (pc_cache on AND budget unlimited — see
  // EngineOptions::pc_cache). One instance serves run() and every shard of
  // run_parallel(); null when disabled.
  std::unique_ptr<smt::PathCondCache> pc_cache_;
  EngineStats stats_;
};

}  // namespace meissa::sym
