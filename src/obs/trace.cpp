#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <fstream>
#include <mutex>

#include "util/strings.hpp"

namespace meissa::obs {

namespace {

using Clock = std::chrono::steady_clock;

std::atomic<bool> g_enabled{false};
std::mutex g_mu;                     // guards g_events and g_base
std::vector<TraceEvent> g_events;    // the session buffer
Clock::time_point g_base{};          // timestamps are relative to this

// Small, human-readable thread ids: assigned once per OS thread, reused
// for every event that thread records. (Real pthread ids make the Chrome
// viewer's track names unreadable.)
std::atomic<uint32_t> g_next_tid{0};
uint32_t this_tid() {
  thread_local uint32_t tid = g_next_tid.fetch_add(1) + 1;
  return tid;
}

uint64_t micros_since_base(Clock::time_point t) {
  // The base is only re-set under g_mu in trace_start, before collection is
  // enabled, so reading it unlocked from live spans is race-free in any run
  // that calls trace_start before spawning instrumented work.
  if (t < g_base) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t - g_base)
          .count());
}

void record(TraceEvent ev) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_events.push_back(std::move(ev));
}

}  // namespace

void trace_start() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_events.clear();
  g_base = Clock::now();
  g_enabled.store(true, std::memory_order_relaxed);
}

void trace_stop() { g_enabled.store(false, std::memory_order_relaxed); }

bool trace_enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

void instant(const char* name, const char* category) {
  if (!trace_enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.category = category;
  ev.phase = 'i';
  ev.ts_us = micros_since_base(Clock::now());
  ev.tid = this_tid();
  record(std::move(ev));
}

Span::Span(const char* name, const char* category) {
  if (!trace_enabled()) return;
  live_ = true;
  ev_.name = name;
  ev_.category = category;
  ev_.tid = this_tid();
  ev_.ts_us = micros_since_base(Clock::now());
}

Span::Span(const std::string& name, const char* category) {
  if (!trace_enabled()) return;
  live_ = true;
  ev_.name = name;
  ev_.category = category;
  ev_.tid = this_tid();
  ev_.ts_us = micros_since_base(Clock::now());
}

Span::~Span() {
  if (!live_) return;
  uint64_t end = micros_since_base(Clock::now());
  ev_.dur_us = end > ev_.ts_us ? end - ev_.ts_us : 0;
  record(std::move(ev_));
}

void Span::arg(const char* key, uint64_t value) {
  if (!live_) return;
  ev_.args.emplace_back(key, std::to_string(value));
}

void Span::arg(const char* key, const std::string& value) {
  if (!live_) return;
  // Quoted marker so rendering knows to emit a JSON string, not a number.
  ev_.args.emplace_back(key, "\"" + value + "\"");
}

std::vector<TraceEvent> trace_events() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_events;
}

std::string trace_to_json() {
  const std::vector<TraceEvent> events = trace_events();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    out += util::json_escape(ev.name);
    out += "\",\"cat\":\"";
    out += util::json_escape(ev.category);
    out += "\",\"ph\":\"";
    out += ev.phase;
    out += "\",\"pid\":1,\"tid\":" + std::to_string(ev.tid);
    out += ",\"ts\":" + std::to_string(ev.ts_us);
    if (ev.phase == 'X') out += ",\"dur\":" + std::to_string(ev.dur_us);
    if (ev.phase == 'i') out += ",\"s\":\"t\"";
    if (!ev.args.empty()) {
      out += ",\"args\":{";
      for (size_t i = 0; i < ev.args.size(); ++i) {
        if (i > 0) out += ",";
        out += "\"";
        out += util::json_escape(ev.args[i].first);
        out += "\":";
        const std::string& v = ev.args[i].second;
        if (!v.empty() && v.front() == '"') {
          // String value: re-escape the payload between the quote markers.
          out += "\"";
          out += util::json_escape(v.substr(1, v.size() - 2));
          out += "\"";
        } else {
          out += v;
        }
      }
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

bool write_trace_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << trace_to_json() << "\n";
  return static_cast<bool>(out);
}

}  // namespace meissa::obs
