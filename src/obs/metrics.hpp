// Process-wide metrics: counters, gauges, and log-scale histograms for the
// generation hot paths (summary waves, sharded DFS, solver backends, driver
// retry protocol).
//
// Design constraints, in priority order:
//   1. Disabled by default, and near-free when disabled: every instrument
//      site is gated on one relaxed atomic load (`metrics_enabled()`), so a
//      build without --metrics takes no locks, allocates nothing, and reads
//      no clocks — generation output stays byte-identical.
//   2. Thread-safe under the PR-1 thread pool: instrument updates are plain
//      relaxed atomics (no mutex on the hot path); only first-time
//      registration of a metric name takes a lock.
//   3. Deterministic snapshots: snapshot()/to_json() emit metrics sorted by
//      name, independent of registration (i.e. scheduling) order, so two
//      runs of the same workload produce diffable output.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace meissa::obs {

// A monotonically increasing event count.
class Counter {
 public:
  void add(uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

// A last-write-wins level, with a lock-free high-water-mark helper (used
// for e.g. solver push/pop depth).
class Gauge {
 public:
  void set(uint64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  // Raises the gauge to `v` if it is below it (monotone high-water mark).
  void record_max(uint64_t v) noexcept {
    uint64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  uint64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

// A log-scale (power-of-two bucketed) histogram of non-negative samples:
// bucket 0 holds the value 0, bucket i (i >= 1) holds [2^(i-1), 2^i).
// Latencies are recorded in microseconds, so 64 buckets span sub-µs to
// centuries with ~2x resolution — enough for the "where does SMT effort
// go" question without per-sample storage.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  void observe(uint64_t v) noexcept {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }
  uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(int i) const noexcept {
    return buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

  static int bucket_of(uint64_t v) noexcept {
    if (v == 0) return 0;
    return 64 - __builtin_clzll(v);
  }
  // Inclusive upper bound of bucket i (the largest value it can hold).
  static uint64_t bucket_limit(int i) noexcept {
    if (i <= 0) return 0;
    if (i >= 64) return ~uint64_t{0};
    return (uint64_t{1} << i) - 1;
  }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// One metric's state at snapshot time.
struct MetricValue {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  uint64_t value = 0;  // counter/gauge value; histogram count
  uint64_t sum = 0;    // histogram only
  // Histogram only: non-empty buckets as (inclusive upper bound, count),
  // in ascending bound order.
  std::vector<std::pair<uint64_t, uint64_t>> buckets;
};

class MetricsRegistry {
 public:
  // The process-wide registry every instrument site reports into.
  static MetricsRegistry& global();

  // The hot-path gate. Relaxed: an instrument site that races with
  // set_enabled merely misses (or records) one sample.
  static bool enabled() noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Finds or creates a metric. Returned references are stable for the
  // registry's lifetime (node-based storage), so call sites may cache them.
  // A name keeps its first kind; re-requesting it with another kind is a
  // programming error (checked).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // All metrics, sorted by name (deterministic across thread counts and
  // registration orders).
  std::vector<MetricValue> snapshot() const;

  // One JSON object, stable key order: {"metrics":[{...},...]}. Strings go
  // through util::json_escape.
  std::string to_json() const;

  // Zeroes every metric (the names stay registered). Test/bench helper so
  // consecutive runs in one process don't accumulate.
  void reset_values();

 private:
  struct Slot {
    MetricValue::Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Slot& slot(std::string_view name, MetricValue::Kind kind);

  static std::atomic<bool> enabled_;
  mutable std::mutex mu_;  // guards the map shape, not the atomic cells
  std::map<std::string, Slot, std::less<>> slots_;
};

// Shorthand for the global registry.
inline MetricsRegistry& metrics() { return MetricsRegistry::global(); }
inline bool metrics_enabled() noexcept { return MetricsRegistry::enabled(); }

// Writes metrics().to_json() to `path` (+ trailing newline). Returns false
// (and leaves no partial file behind on open failure) when unwritable.
bool write_metrics_file(const std::string& path);

}  // namespace meissa::obs
