#include "obs/metrics.hpp"

#include <fstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace meissa::obs {

std::atomic<bool> MetricsRegistry::enabled_{false};

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* reg = new MetricsRegistry();  // never destroyed:
  return *reg;  // instrument sites may fire from static destructors
}

MetricsRegistry::Slot& MetricsRegistry::slot(std::string_view name,
                                             MetricValue::Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(name);
  if (it == slots_.end()) {
    Slot s;
    s.kind = kind;
    switch (kind) {
      case MetricValue::Kind::kCounter:
        s.counter = std::make_unique<Counter>();
        break;
      case MetricValue::Kind::kGauge:
        s.gauge = std::make_unique<Gauge>();
        break;
      case MetricValue::Kind::kHistogram:
        s.histogram = std::make_unique<Histogram>();
        break;
    }
    it = slots_.emplace(std::string(name), std::move(s)).first;
  }
  util::check(it->second.kind == kind,
              "metrics: one name registered with two kinds");
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return *slot(name, MetricValue::Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return *slot(name, MetricValue::Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return *slot(name, MetricValue::Kind::kHistogram).histogram;
}

std::vector<MetricValue> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricValue> out;
  out.reserve(slots_.size());
  // std::map iterates in name order — the deterministic snapshot contract.
  for (const auto& [name, s] : slots_) {
    MetricValue v;
    v.name = name;
    v.kind = s.kind;
    switch (s.kind) {
      case MetricValue::Kind::kCounter:
        v.value = s.counter->value();
        break;
      case MetricValue::Kind::kGauge:
        v.value = s.gauge->value();
        break;
      case MetricValue::Kind::kHistogram:
        v.value = s.histogram->count();
        v.sum = s.histogram->sum();
        for (int i = 0; i < Histogram::kBuckets; ++i) {
          uint64_t c = s.histogram->bucket(i);
          if (c != 0) v.buckets.emplace_back(Histogram::bucket_limit(i), c);
        }
        break;
    }
    out.push_back(std::move(v));
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  const std::vector<MetricValue> snap = snapshot();
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricValue& m : snap) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    out += util::json_escape(m.name);
    out += "\",\"kind\":\"";
    switch (m.kind) {
      case MetricValue::Kind::kCounter: out += "counter"; break;
      case MetricValue::Kind::kGauge: out += "gauge"; break;
      case MetricValue::Kind::kHistogram: out += "histogram"; break;
    }
    out += "\"";
    if (m.kind == MetricValue::Kind::kHistogram) {
      out += ",\"count\":" + std::to_string(m.value);
      out += ",\"sum\":" + std::to_string(m.sum);
      out += ",\"buckets\":[";
      for (size_t i = 0; i < m.buckets.size(); ++i) {
        if (i > 0) out += ",";
        out += "{\"le\":" + std::to_string(m.buckets[i].first) +
               ",\"count\":" + std::to_string(m.buckets[i].second) + "}";
      }
      out += "]";
    } else {
      out += ",\"value\":" + std::to_string(m.value);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, s] : slots_) {
    (void)name;
    switch (s.kind) {
      case MetricValue::Kind::kCounter: s.counter->reset(); break;
      case MetricValue::Kind::kGauge: s.gauge->reset(); break;
      case MetricValue::Kind::kHistogram: s.histogram->reset(); break;
    }
  }
}

bool write_metrics_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << metrics().to_json() << "\n";
  return static_cast<bool>(out);
}

}  // namespace meissa::obs
