// Span-based tracing with Chrome trace-event export.
//
// A Span is an RAII scope marker: construction stamps the start time,
// destruction records one complete ("ph":"X") event into the process-wide
// trace buffer. instant() records point events ("ph":"i") for things with
// no duration (budget exhaustion, quarantine). The buffer renders to the
// Chrome trace-event JSON format, loadable in chrome://tracing and Perfetto.
//
// Cost model mirrors obs/metrics.hpp: everything is gated on one relaxed
// atomic load, so when tracing is off (the default) a Span is two branches
// and no clock reads, and generation output stays byte-identical. When on,
// span end takes a short mutex-protected append; spans mark coarse units
// (a phase, a pipeline, a shard, a test case) — never per-solver-check —
// so the lock is far off the hot path.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace meissa::obs {

// Starts a fresh trace session: clears the buffer, re-bases timestamps at
// "now", and enables collection.
void trace_start();
// Stops collection (buffered events stay until the next trace_start).
void trace_stop();
bool trace_enabled() noexcept;

// Records a point event ("ph":"i", thread scope) if tracing is enabled.
void instant(const char* name, const char* category = "meissa");

// One recorded event, in trace_start-relative microseconds.
struct TraceEvent {
  std::string name;
  const char* category = "meissa";
  char phase = 'X';  // 'X' complete span, 'i' instant
  uint64_t ts_us = 0;
  uint64_t dur_us = 0;
  uint32_t tid = 0;  // small per-thread id, assigned on first use
  std::vector<std::pair<std::string, std::string>> args;
};

class Span {
 public:
  explicit Span(const char* name, const char* category = "meissa");
  // Dynamic names (e.g. "summary " + instance). The string is copied only
  // when tracing is enabled.
  explicit Span(const std::string& name, const char* category = "meissa");
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Attaches a key/value to the event (shown in the trace viewer's detail
  // pane). No-op when the span is not live.
  void arg(const char* key, uint64_t value);
  void arg(const char* key, const std::string& value);

 private:
  bool live_ = false;  // tracing was on at construction
  TraceEvent ev_;
};

// The buffered events of the current session, in record order.
std::vector<TraceEvent> trace_events();

// Renders the session as one Chrome trace JSON object:
// {"traceEvents":[...],"displayTimeUnit":"ms"}.
std::string trace_to_json();

// Writes trace_to_json() to `path` (+ newline); false when unwritable.
bool write_trace_file(const std::string& path);

}  // namespace meissa::obs
