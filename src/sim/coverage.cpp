#include "sim/coverage.hpp"

#include <algorithm>

namespace meissa::sim {

uint8_t bucket_bits(uint8_t count) noexcept {
  if (count == 0) return 0;
  if (count == 1) return 1;
  if (count == 2) return 2;
  if (count == 3) return 4;
  if (count <= 7) return 8;
  if (count <= 15) return 16;
  if (count <= 31) return 32;
  if (count <= 127) return 64;
  return 128;
}

void CoverageMap::reset() {
  std::fill(map_.begin(), map_.end(), 0);
  prev_ = 0;
}

size_t CoverageMap::nonzero() const noexcept {
  size_t n = 0;
  for (uint8_t b : map_) n += b != 0;
  return n;
}

bool merge_new_coverage(const CoverageMap& cur, std::vector<uint8_t>& virgin,
                        bool commit) {
  if (virgin.size() != CoverageMap::kSize) {
    virgin.assign(CoverageMap::kSize, 0);
  }
  const std::vector<uint8_t>& map = cur.bytes();
  bool fresh = false;
  for (size_t i = 0; i < CoverageMap::kSize; ++i) {
    if (map[i] == 0) continue;
    uint8_t bits = bucket_bits(map[i]);
    if ((bits & ~virgin[i]) != 0) {
      fresh = true;
      if (!commit) return true;
      virgin[i] |= bits;
    }
  }
  return fresh;
}

}  // namespace meissa::sim
