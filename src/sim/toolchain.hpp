// The toolchain: compiles a DataPlane + RuleSet into a DeviceProgram,
// optionally injecting a fault (sim/fault.hpp). This is the layer where
// the paper's non-code bugs live: the source program stays correct, the
// compiled artifact misbehaves.
#pragma once

#include "sim/device.hpp"

namespace meissa::sim {

DeviceProgram compile(const p4::DataPlane& dp, const p4::RuleSet& rules,
                      ir::Context& ctx, const FaultSpec& fault = {});

}  // namespace meissa::sim
