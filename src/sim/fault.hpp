// Toolchain fault injection — Meissa's stand-in for real compiler/backend
// bugs (paper Table 2, #7–#16).
//
// Each fault is a deterministic mutation applied between the program IR
// and the device program, so the *source* semantics (what the tester
// models) stay correct while the *device* misbehaves — the defining shape
// of a non-code bug. See DESIGN.md for the mapping to the paper's bugs.
#pragma once

#include <string>

namespace meissa::sim {

enum class FaultKind {
  kNone,
  // p4c frontend bug (paper #7, issue 2147 analog): a parser state's
  // select cases are compiled away; every packet takes the default branch.
  kParserSkipSelect,
  // p4c frontend bug (paper #8, issue 2343 analog): ternary masks are
  // folded out of match conditions ((f & m) == v miscompiled to f == v).
  kMaskFoldBug,
  // bf-p4c backend bug (paper #9 analog): the first assignment of an
  // action is silently dropped.
  kDropAssignment,
  // bf-p4c backend bug (paper #10 analog): a table's miss path runs no
  // action instead of the configured default.
  kWrongDefaultAction,
  // bf-p4c backend bug (paper #11 analog): additions leak their carry-out
  // into the low bit of a neighbouring PHV container (field `field_b`).
  kAddCarryLeak,
  // bf-p4c backend bug A (paper #12): comparisons on `field` are lowered
  // to 16-bit compares, ignoring the upper bits.
  kWrongCompareWidth,
  // bf-p4c backend bug B (paper #13): the first two assignments of action
  // `action` write each other's destinations.
  kSwappedAssignments,
  // bf-p4c backend bug C (paper #14): setValid of `header` in `instance`
  // does not take effect.
  kDropSetValid,
  // Misuse of optimization pragmas (paper #15): fields `field_a` and
  // `field_b` share a PHV container; writes to one clobber the other.
  kFieldOverlap,
  // Missing compilation flags (paper #16): metadata is not zero-
  // initialized; it starts with a garbage pattern.
  kSkipMetadataZero,
};

struct FaultSpec {
  FaultKind kind = FaultKind::kNone;
  std::string instance;      // restrict to one pipeline instance ("" = all)
  std::string header;        // kDropSetValid
  std::string field;         // kWrongCompareWidth
  std::string field_a;       // kFieldOverlap (clobbering writer)
  std::string field_b;       // kFieldOverlap / kAddCarryLeak (victim)
  std::string action;        // kDropAssignment / kSwappedAssignments
  std::string table;         // kWrongDefaultAction
  std::string parser_state;  // kParserSkipSelect

  bool none() const noexcept { return kind == FaultKind::kNone; }
};

// Human-readable name for reports.
const char* fault_kind_name(FaultKind kind) noexcept;

}  // namespace meissa::sim
