// A flaky tester<->device link — the transport-fault half of the fault
// model (the FaultKind mutations in fault.hpp model *compiler* bugs; this
// models the harness itself misbehaving, as real injection/capture paths
// do: FP4-style hardware loops drop, duplicate, reorder and corrupt).
//
// The link sits between the driver and the Device. Faults are seeded and
// probabilistic, applied per frame:
//   * drop       — the injected frame vanishes before the device sees it;
//                  the driver observes silence and must retry.
//   * duplicate  — the device processes the frame twice (two verdicts).
//   * reorder    — the verdict is held back and released at the *next*
//                  collect() call, arriving late and out of order.
//   * corrupt    — one payload bit of the emitted verdict flips. Only
//                  payload bits (the frame tail) are touched, so a robust
//                  driver can always detect corruption via its case-id +
//                  filler stamp.
//   * install    — a register install silently no-ops once (transient
//                  table/register write failure); install_registers()
//                  reports it so the caller can retry.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/device.hpp"
#include "util/rng.hpp"

namespace meissa::sim {

// Probabilities in [0, 1]; all zero (the default) = a perfect link.
struct LinkFaultSpec {
  double drop_rate = 0;
  double duplicate_rate = 0;
  double reorder_rate = 0;
  double corrupt_rate = 0;
  double install_fail_rate = 0;
  uint64_t seed = 1;

  bool none() const noexcept {
    return drop_rate <= 0 && duplicate_rate <= 0 && reorder_rate <= 0 &&
           corrupt_rate <= 0 && install_fail_rate <= 0;
  }
};

// What the link actually did (ground truth for tests and reports).
struct LinkStats {
  uint64_t frames_sent = 0;
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t reordered = 0;
  uint64_t corrupted = 0;
  uint64_t install_failures = 0;
};

class FlakyLink {
 public:
  // `device` must outlive the link.
  FlakyLink(Device& device, const LinkFaultSpec& spec);

  // Installs register state on the device. Returns false when the
  // transient install fault fired (nothing was installed; retry).
  bool install_registers(const ir::ConcreteState& regs);

  // Injects one frame through the link's recycled arena. Its verdict(s) —
  // zero on drop, two on duplication — arrive at collect(), possibly a
  // collect() late when reordered.
  void send(const DeviceInput& in);

  // Returns every verdict that has "arrived": results of sends since the
  // last collect, plus reordered stragglers delayed at the collect before.
  // Two back-to-back calls with no intervening send drain the link.
  std::vector<DeviceOutput> collect();

  const LinkStats& stats() const noexcept { return stats_; }

 private:
  bool hit(double rate);
  void deliver(DeviceOutput out);

  DeviceOutput run_one(const DeviceInput& in);

  Device& device_;
  LinkFaultSpec spec_;
  ExecArena arena_;  // recycled across every frame this link carries
  util::Rng rng_;
  std::vector<DeviceOutput> arrived_;     // on time, this round
  std::vector<DeviceOutput> delayed_;     // reordered, held one more round
  std::vector<DeviceOutput> stragglers_;  // release at the next collect()
  LinkStats stats_;
};

}  // namespace meissa::sim
