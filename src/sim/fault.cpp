#include "sim/fault.hpp"

namespace meissa::sim {

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kParserSkipSelect: return "p4c-frontend-parser-select";
    case FaultKind::kMaskFoldBug: return "p4c-frontend-mask-fold";
    case FaultKind::kDropAssignment: return "bf-p4c-drop-assignment";
    case FaultKind::kWrongDefaultAction: return "bf-p4c-wrong-default";
    case FaultKind::kAddCarryLeak: return "bf-p4c-add-carry-leak";
    case FaultKind::kWrongCompareWidth: return "bf-p4c-bug-A-compare-width";
    case FaultKind::kSwappedAssignments: return "bf-p4c-bug-B-swapped-assign";
    case FaultKind::kDropSetValid: return "bf-p4c-bug-C-setvalid";
    case FaultKind::kFieldOverlap: return "pragma-field-overlap";
    case FaultKind::kSkipMetadataZero: return "missing-flag-metadata-zero";
  }
  return "?";
}

}  // namespace meissa::sim
