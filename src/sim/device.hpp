// The behavioral switch simulator — Meissa's hardware target.
//
// A DeviceProgram is the *compiled* form of a data plane (produced by the
// toolchain in toolchain.hpp, possibly with injected faults); a Device
// executes it on concrete wire packets: per-pipeline byte-level parsing,
// match-action processing, deparsing with checksum updates, traffic-
// manager routing between pipeline instances and across switches.
//
// The device deliberately shares no code with the CFG/symbolic-execution
// side: it is a second, independent interpretation of the program, playing
// the role bmv2/Tofino play for the real system — which is what makes
// end-to-end testing able to catch toolchain bugs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/stmt.hpp"
#include "p4/program.hpp"
#include "p4/rules.hpp"
#include "packet/packet.hpp"
#include "sim/fault.hpp"

namespace meissa::sim {

// One primitive operation with action arguments already bound.
struct DevOp {
  enum class Kind : uint8_t { kAssign, kHash };
  enum class Origin : uint8_t { kGeneric, kSetValid, kSetInvalid };
  Kind kind = Kind::kAssign;
  Origin origin = Origin::kGeneric;
  std::string header;  // for kSetValid/kSetInvalid origins
  ir::FieldId dest = ir::kInvalidField;
  ir::ExprRef value = nullptr;        // kAssign
  p4::HashAlgo algo = p4::HashAlgo::kCrc16;  // kHash
  std::vector<ir::FieldId> keys;             // kHash
};

struct DevKey {
  ir::FieldId field = ir::kInvalidField;
  int width = 0;
  p4::MatchKind kind = p4::MatchKind::kExact;
};

struct DevEntry {
  p4::TableEntry source;  // original entry (for traces)
  std::vector<p4::KeyMatch> matches;
  std::vector<DevOp> ops;
};

struct DevTable {
  std::string name;
  std::vector<DevKey> keys;
  std::vector<DevEntry> entries;  // in match order
  std::vector<DevOp> default_ops;
  std::string default_action;
};

struct DevControlStmt;
struct DevControlBlock {
  std::vector<DevControlStmt> stmts;
};
struct DevControlStmt {
  enum class Kind : uint8_t { kApply, kIf, kOp };
  Kind kind = Kind::kOp;
  size_t table = 0;           // kApply: index into DevInstance::tables
  ir::ExprRef cond = nullptr;  // kIf
  DevControlBlock then_block;
  DevControlBlock else_block;
  DevOp op;  // kOp
};

struct DevTransition {
  uint64_t value = 0;
  uint64_t mask = 0;
  int next = -1;  // state index; kAccept/kReject below
};

struct DevParserState {
  std::string name;
  std::vector<size_t> extracts;  // header indices
  ir::FieldId select = ir::kInvalidField;
  int select_width = 0;
  std::vector<DevTransition> cases;
  int default_next = -2;
};
inline constexpr int kAccept = -1;
inline constexpr int kReject = -2;

struct DevChecksum {
  ir::FieldId dest = ir::kInvalidField;
  std::string guard_header;
  std::vector<ir::FieldId> sources;
  p4::HashAlgo algo = p4::HashAlgo::kCsum16;
};

struct DevInstance {
  std::string name;
  int switch_id = 0;
  int start_state = 0;
  std::vector<DevParserState> parser;
  DevControlBlock control;
  std::vector<DevTable> tables;
  std::vector<std::string> emit_order;
  std::vector<DevChecksum> checksums;
};

struct DevEdge {
  int from = 0;
  int to = 0;
  ir::ExprRef guard = nullptr;
};

struct DevEntryPoint {
  int instance = 0;
  ir::ExprRef guard = nullptr;
};

struct DeviceProgram {
  p4::Program program;  // header/field declarations (for wire layout)
  std::vector<DevInstance> instances;
  std::vector<DevEdge> edges;
  std::vector<DevEntryPoint> entries;
  // Runtime-behavior flags set by fault injection.
  bool zero_metadata = true;
  ir::FieldId overlap_writer = ir::kInvalidField;  // kFieldOverlap
  ir::FieldId overlap_victim = ir::kInvalidField;
  ir::FieldId carry_victim = ir::kInvalidField;    // kAddCarryLeak
  std::string carry_instance;
};

struct DeviceInput {
  uint64_t port = 0;
  std::vector<uint8_t> bytes;
};

struct DeviceOutput {
  bool accepted = true;  // false: no entry point matched the ingress port
  bool dropped = false;
  uint64_t port = 0;
  std::vector<uint8_t> bytes;
  // Physical trace: one line per parse/table/action event (paper §7 bug
  // localization compares this against the symbolic trace).
  std::vector<std::string> trace;
};

class Device {
 public:
  // Takes ownership of the compiled program (it is immutable once loaded,
  // like firmware). `ctx` must be the context it was compiled against.
  Device(DeviceProgram prog, ir::Context& ctx);

  // Sets a register cell ("REG:<name>-POS:<i>") for subsequent packets.
  void set_register(std::string_view reg, uint64_t index, uint64_t value);
  // Installs a full register state (e.g. from a test template's model).
  void set_registers(const ir::ConcreteState& regs);

  // Injects one packet and runs it to completion (drop or emit).
  DeviceOutput inject(const DeviceInput& in);

 private:
  struct ExecState;
  void run_instance(const DevInstance& inst, ExecState& st) const;
  bool parse(const DevInstance& inst, ExecState& st) const;
  void run_block(const DevInstance& inst, const DevControlBlock& b,
                 ExecState& st) const;
  void run_op(const DevOp& op, ExecState& st) const;
  void apply_table(const DevInstance& inst, const DevTable& t,
                   ExecState& st) const;
  void deparse(const DevInstance& inst, ExecState& st) const;
  uint64_t eval_or_zero(ir::ExprRef e, const ir::ConcreteState& s) const;
  void store(ir::FieldId f, uint64_t v, ExecState& st) const;

  DeviceProgram prog_;
  ir::Context& ctx_;
  ir::ConcreteState registers_;
};

}  // namespace meissa::sim
