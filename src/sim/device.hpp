// The behavioral switch simulator — Meissa's hardware target.
//
// A DeviceProgram is the *compiled* form of a data plane (produced by the
// toolchain in toolchain.hpp, possibly with injected faults); a Device
// executes it on concrete wire packets: per-pipeline byte-level parsing,
// match-action processing, deparsing with checksum updates, traffic-
// manager routing between pipeline instances and across switches.
//
// The device deliberately shares no code with the CFG/symbolic-execution
// side: it is a second, independent interpretation of the program, playing
// the role bmv2/Tofino play for the real system — which is what makes
// end-to-end testing able to catch toolchain bugs.
//
// Execution is batched and allocation-free: all per-packet scratch state
// (a dense epoch-stamped field store, wire/payload buffers, the trace)
// lives in an ExecArena recycled across packets, and run_batch() drives
// any number of packets through one arena. inject() remains as the
// single-packet compatibility path (a fresh arena per call — the baseline
// bench/fuzz_throughput measures the batched path against). The trace is
// a compact typed TraceEvent stream; render_trace() reproduces the legacy
// string lines lazily for bug localization.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ir/stmt.hpp"
#include "p4/program.hpp"
#include "p4/rules.hpp"
#include "packet/packet.hpp"
#include "sim/fault.hpp"

namespace meissa::sim {

// One primitive operation with action arguments already bound.
struct DevOp {
  enum class Kind : uint8_t { kAssign, kHash };
  enum class Origin : uint8_t { kGeneric, kSetValid, kSetInvalid };
  Kind kind = Kind::kAssign;
  Origin origin = Origin::kGeneric;
  std::string header;  // for kSetValid/kSetInvalid origins
  ir::FieldId dest = ir::kInvalidField;
  ir::ExprRef value = nullptr;        // kAssign
  p4::HashAlgo algo = p4::HashAlgo::kCrc16;  // kHash
  std::vector<ir::FieldId> keys;             // kHash
};

struct DevKey {
  ir::FieldId field = ir::kInvalidField;
  int width = 0;
  p4::MatchKind kind = p4::MatchKind::kExact;
};

struct DevEntry {
  p4::TableEntry source;  // original entry (for traces)
  std::vector<p4::KeyMatch> matches;
  std::vector<DevOp> ops;
};

struct DevTable {
  std::string name;
  std::vector<DevKey> keys;
  std::vector<DevEntry> entries;  // in match order
  std::vector<DevOp> default_ops;
  std::string default_action;
};

struct DevControlStmt;
struct DevControlBlock {
  std::vector<DevControlStmt> stmts;
};
struct DevControlStmt {
  enum class Kind : uint8_t { kApply, kIf, kOp };
  Kind kind = Kind::kOp;
  size_t table = 0;           // kApply: index into DevInstance::tables
  ir::ExprRef cond = nullptr;  // kIf
  DevControlBlock then_block;
  DevControlBlock else_block;
  DevOp op;  // kOp
};

struct DevTransition {
  uint64_t value = 0;
  uint64_t mask = 0;
  int next = -1;  // state index; kAccept/kReject below
};

struct DevParserState {
  std::string name;
  std::vector<size_t> extracts;  // header indices
  ir::FieldId select = ir::kInvalidField;
  int select_width = 0;
  std::vector<DevTransition> cases;
  int default_next = -2;
};
inline constexpr int kAccept = -1;
inline constexpr int kReject = -2;

struct DevChecksum {
  ir::FieldId dest = ir::kInvalidField;
  std::string guard_header;
  std::vector<ir::FieldId> sources;
  p4::HashAlgo algo = p4::HashAlgo::kCsum16;
};

struct DevInstance {
  std::string name;
  int switch_id = 0;
  int start_state = 0;
  std::vector<DevParserState> parser;
  DevControlBlock control;
  std::vector<DevTable> tables;
  std::vector<std::string> emit_order;
  std::vector<DevChecksum> checksums;
};

struct DevEdge {
  int from = 0;
  int to = 0;
  ir::ExprRef guard = nullptr;
};

struct DevEntryPoint {
  int instance = 0;
  ir::ExprRef guard = nullptr;
};

struct DeviceProgram {
  p4::Program program;  // header/field declarations (for wire layout)
  std::vector<DevInstance> instances;
  std::vector<DevEdge> edges;
  std::vector<DevEntryPoint> entries;
  // Runtime-behavior flags set by fault injection.
  bool zero_metadata = true;
  ir::FieldId overlap_writer = ir::kInvalidField;  // kFieldOverlap
  ir::FieldId overlap_victim = ir::kInvalidField;
  ir::FieldId carry_victim = ir::kInvalidField;    // kAddCarryLeak
  std::string carry_instance;
};

struct DeviceInput {
  uint64_t port = 0;
  std::vector<uint8_t> bytes;
};

// One compact trace event (8 bytes). Rendering to the legacy string lines
// is deferred to Device::render_trace, so the hot path never builds
// strings; what each field means depends on `kind`:
//   kParseHeader  aux = program header index
//   kParserShort  aux = parser state index (within the instance)
//   kTableHit     table = table index, aux = entry index
//   kTableMiss    table = table index
//   kChecksum     aux = checksum index (within the instance)
//   kEmitHeader   aux = emit_order index (within the instance)
//   kEvalFallback aux = FieldId of the first missing field (or -1)
enum class TraceEventKind : uint8_t {
  kParseHeader,
  kParserShort,
  kParserReject,
  kTableHit,
  kTableMiss,
  kChecksum,
  kEmitHeader,
  kDropped,
  kEvalFallback,
};

struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kDropped;
  int16_t instance = -1;  // index into DeviceProgram::instances; -1 = none
  int16_t table = -1;
  int32_t aux = -1;
};

struct DeviceOutput {
  bool accepted = true;  // false: no entry point matched the ingress port
  bool dropped = false;
  uint64_t port = 0;
  std::vector<uint8_t> bytes;
  // Physical trace: one event per parse/table/action step (paper §7 bug
  // localization renders this against the symbolic trace).
  std::vector<TraceEvent> trace;
};

class CoverageMap;

// Per-packet scratch state, recycled across packets so the steady-state
// execution path performs no heap allocation. One arena serves one Device
// at a time (run_batch resizes it to the device's field universe); reuse
// across batches and across devices of the same context is fine.
class ExecArena {
 public:
  // Localization data is recorded only when set (the driver's checker
  // path); the fuzz hot loop runs with it off and discards nothing.
  bool collect_trace = true;
  // Optional coverage sink, fed from the same event stream independently
  // of collect_trace (the fuzz lane wants edges, not strings).
  CoverageMap* coverage = nullptr;

 private:
  friend class Device;

  // Dense epoch-stamped field store: cells_[f].value is live iff
  // cells_[f].stamp == epoch_, so per-packet reset is one counter bump.
  // Value and stamp share a cell so a field access touches one cache line.
  struct Cell {
    uint64_t value = 0;
    uint32_t stamp = 0;
  };
  std::vector<Cell> cells_;
  uint32_t epoch_ = 0;

  std::vector<uint8_t> wire_;      // current wire bytes (re-written per pipe)
  size_t payload_off_ = 0;         // unparsed tail of the current pipe
                                   // starts at wire_[payload_off_]
  std::vector<uint8_t> emit_buf_;  // recycled deparser output buffer
  std::vector<TraceEvent> trace_;
  std::vector<uint64_t> hash_vals_;  // scratch for hash/checksum keys
  std::vector<int> hash_widths_;
  std::vector<uint64_t> key_vals_;  // scratch for a table's key values
  int16_t cur_instance_ = -1;
  bool dropped_ = false;

  void begin_packet(size_t nfields);

  bool has(ir::FieldId f) const noexcept {
    return f < cells_.size() && cells_[f].stamp == epoch_;
  }
  uint64_t get_or_zero(ir::FieldId f) const noexcept {
    return has(f) ? cells_[f].value : 0;
  }
  void set(ir::FieldId f, uint64_t v) noexcept {
    cells_[f].value = v;
    cells_[f].stamp = epoch_;
  }
};

class Device {
 public:
  // Takes ownership of the compiled program (it is immutable once loaded,
  // like firmware). `ctx` must be the context it was compiled against.
  Device(DeviceProgram prog, ir::Context& ctx);

  // Sets a register cell ("REG:<name>-POS:<i>") for subsequent packets.
  void set_register(std::string_view reg, uint64_t index, uint64_t value);
  // Installs a full register state (e.g. from a test template's model).
  // Merges: cells not mentioned keep their current value.
  void set_registers(const ir::ConcreteState& regs);
  // Reads back an installed cell; nullopt when never installed.
  std::optional<uint64_t> get_register(std::string_view reg,
                                       uint64_t index) const;

  // Runs each input to completion (drop or emit) through one recycled
  // arena. `in` and `out` must have equal extent; outputs are overwritten
  // in place (their buffers are reused). Register writes performed by a
  // packet do NOT persist — every packet starts from the installed
  // register snapshot, exactly as inject() always behaved.
  void run_batch(std::span<const DeviceInput> in, std::span<DeviceOutput> out,
                 ExecArena& arena);

  // Injects one packet: the per-packet compatibility path (a fresh arena
  // per call). Equivalent to a run_batch of one.
  DeviceOutput inject(const DeviceInput& in);

  // Lazy trace rendering: the exact legacy one-line-per-event strings.
  std::string event_to_string(const TraceEvent& ev) const;
  std::vector<std::string> render_trace(
      const std::vector<TraceEvent>& trace) const;

 private:
  // Precomputed wire layout of one program header: interned content-field
  // ids and widths in declaration order, plus the validity placeholder.
  struct HeaderLayout {
    ir::FieldId validity = ir::kInvalidField;
    std::vector<ir::FieldId> fields;
    std::vector<int> widths;
    size_t total_bits = 0;  // sum of widths: one bounds check per header
  };
  struct EmitSlot {
    ir::FieldId validity = ir::kInvalidField;
    int header = -1;  // index into prog_.program.headers
  };

  void run_one(const DeviceInput& in, DeviceOutput& out, ExecArena& a);
  void run_instance(const DevInstance& inst, ExecArena& a) const;
  bool parse(const DevInstance& inst, ExecArena& a) const;
  void run_block(const DevInstance& inst, const DevControlBlock& b,
                 ExecArena& a) const;
  void run_op(const DevOp& op, ExecArena& a) const;
  void apply_table(const DevInstance& inst, size_t table_idx,
                   ExecArena& a) const;
  void deparse(const DevInstance& inst, ExecArena& a) const;

  // Mirrors ir::eval over the arena's dense state (including the boolean
  // short-circuit rules), without building a ConcreteState.
  std::optional<uint64_t> eval_expr(ir::ExprRef e, const ExecArena& a) const;
  // Unevaluable expressions coerce to 0 (the deterministic stand-in for
  // whatever the PHV container holds); the coercion is counted in the
  // `sim.eval_fallbacks` metric and leaves a kEvalFallback trace event
  // naming the missing field, so checker divergences it causes are
  // attributable instead of mysterious.
  uint64_t eval_or_zero(ir::ExprRef e, ExecArena& a) const;
  int32_t first_missing(ir::ExprRef e, const ExecArena& a) const;

  void store(ir::FieldId f, uint64_t v, ExecArena& a) const;
  void note(ExecArena& a, TraceEventKind kind, int16_t table = -1,
            int32_t aux = -1) const;
  int width_of(ir::FieldId f) const {
    return f < widths_.size() ? widths_[f] : ctx_.fields.width(f);
  }

  DeviceProgram prog_;
  ir::Context& ctx_;
  ir::ConcreteState registers_;
  // Flat mirror of registers_, rebuilt on install (rare) and iterated per
  // packet (hot): cache-friendly where the map is pointer-chasing.
  std::vector<std::pair<ir::FieldId, uint64_t>> registers_flat_;

  // Ctor-time layout caches: every field the program can touch is interned
  // once here, so the execution path never builds a name string or takes
  // the field-table lock.
  std::vector<HeaderLayout> headers_;             // parallel to program.headers
  std::vector<std::vector<EmitSlot>> emits_;      // per instance, emit order
  std::vector<std::vector<ir::FieldId>> csum_guards_;  // per instance
  std::vector<std::vector<std::vector<p4::MatchKind>>> key_kinds_;  // [i][t]
  // Precompiled entry matchers, one row of `keys` PreMatch per entry, rows
  // in entry_rank order so the scan exits on first hit. For mask kinds
  // (exact/ternary/lpm) hit is (v & mask) == value with value pre-masked
  // and lpm prefixes expanded; for range, value/mask hold lo/hi.
  struct PreMatch {
    uint64_t mask = 0;
    uint64_t value = 0;
  };
  std::vector<std::vector<std::vector<PreMatch>>> pre_matches_;  // [i][t]
  // Row index -> original entry index (trace aux, action lookup).
  std::vector<std::vector<std::vector<int32_t>>> entry_order_;  // [i][t]
  std::vector<std::pair<ir::FieldId, uint64_t>> metadata_init_;
  ir::FieldId port_fid_ = ir::kInvalidField;
  ir::FieldId drop_fid_ = ir::kInvalidField;
  ir::FieldId egspec_fid_ = ir::kInvalidField;
  std::vector<int> widths_;  // FieldId -> width (ctor-time snapshot)
};

}  // namespace meissa::sim
