#include "sim/toolchain.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace meissa::sim {

namespace {

class Compiler {
 public:
  Compiler(const p4::DataPlane& dp, const p4::RuleSet& rules, ir::Context& ctx,
           const FaultSpec& fault)
      : dp_(dp), rules_(rules), ctx_(ctx), fault_(fault) {}

  DeviceProgram compile() {
    p4::validate(dp_, ctx_);
    p4::validate_rules(dp_.program, rules_);
    out_.program = dp_.program;

    std::unordered_map<std::string, int> index_of;
    for (const p4::PipeInstance& pi : dp_.topology.instances) {
      index_of.emplace(pi.name, static_cast<int>(out_.instances.size()));
      out_.instances.push_back(compile_instance(pi));
    }
    for (const p4::TopoEdge& e : dp_.topology.edges) {
      out_.edges.push_back({index_of.at(e.from), index_of.at(e.to),
                            mutate_cond(e.guard, "")});
    }
    for (const p4::EntryPoint& e : dp_.topology.entries) {
      out_.entries.push_back({index_of.at(e.instance), e.guard});
    }
    apply_global_faults();
    return std::move(out_);
  }

 private:
  bool fault_applies(const std::string& instance) const {
    return fault_.instance.empty() || fault_.instance == instance;
  }

  ir::FieldId fid(std::string_view name) {
    std::optional<int> w = dp_.program.field_width(name);
    util::check(w.has_value(), "toolchain: unknown field");
    return ctx_.fields.intern(name, *w);
  }

  // Compile-time expression mutations (fault #8 / #12 analogs). These act
  // on every condition the device evaluates for the faulted instance.
  ir::ExprRef mutate_cond(ir::ExprRef e, const std::string& instance) {
    if (e == nullptr) return nullptr;
    if (fault_.kind == FaultKind::kMaskFoldBug && fault_applies(instance)) {
      // (f & m) == v miscompiled to f == v: strip the mask.
      e = strip_masks(e);
    }
    if (fault_.kind == FaultKind::kWrongCompareWidth &&
        fault_applies(instance)) {
      ir::FieldId f = fid(fault_.field);
      int w = ctx_.fields.width(f);
      if (w > 16) {
        e = ir::substitute(e, ctx_.arena, [&](ir::FieldId id, int width) -> ir::ExprRef {
          if (id != f) return nullptr;
          // The comparison only sees the low 16 bits of the container.
          return ctx_.arena.arith(ir::ArithOp::kAnd,
                                  ctx_.arena.field(id, width),
                                  ctx_.arena.constant(0xffff, width));
        });
      }
    }
    return e;
  }

  ir::ExprRef strip_masks(ir::ExprRef e) {
    switch (e->kind) {
      case ir::ExprKind::kCmp: {
        ir::ExprRef lhs = e->lhs;
        if (lhs->kind == ir::ExprKind::kArith &&
            lhs->arith_op() == ir::ArithOp::kAnd &&
            lhs->rhs->kind == ir::ExprKind::kConst &&
            lhs->lhs->kind == ir::ExprKind::kField) {
          return ctx_.arena.cmp(e->cmp_op(), lhs->lhs, e->rhs);
        }
        return e;
      }
      case ir::ExprKind::kBool: {
        ir::ExprRef a = strip_masks(e->lhs);
        ir::ExprRef b = strip_masks(e->rhs);
        return e->bool_op() == ir::BoolOp::kAnd ? ctx_.arena.band(a, b)
                                                : ctx_.arena.bor(a, b);
      }
      case ir::ExprKind::kNot:
        return ctx_.arena.bnot(strip_masks(e->lhs));
      default:
        return e;
    }
  }

  std::vector<DevOp> compile_ops(const p4::ActionDef& action,
                                 const std::vector<uint64_t>& args,
                                 const std::string& instance) {
    std::vector<DevOp> ops;
    for (const p4::ActionOp& op : action.ops) {
      DevOp d;
      switch (op.kind) {
        case p4::ActionOp::Kind::kAssign: {
          d.kind = DevOp::Kind::kAssign;
          d.dest = fid(op.dest);
          d.value = bind_args(op.value, action, args);
          break;
        }
        case p4::ActionOp::Kind::kSetValid:
          d.kind = DevOp::Kind::kAssign;
          d.origin = DevOp::Origin::kSetValid;
          d.header = op.header;
          d.dest = fid(p4::validity_field(op.header));
          d.value = ctx_.arena.constant(1, 1);
          break;
        case p4::ActionOp::Kind::kSetInvalid:
          d.kind = DevOp::Kind::kAssign;
          d.origin = DevOp::Origin::kSetInvalid;
          d.header = op.header;
          d.dest = fid(p4::validity_field(op.header));
          d.value = ctx_.arena.constant(0, 1);
          break;
        case p4::ActionOp::Kind::kHash: {
          d.kind = DevOp::Kind::kHash;
          d.dest = fid(op.dest);
          d.algo = op.algo;
          for (const std::string& k : op.hash_keys) d.keys.push_back(fid(k));
          break;
        }
      }
      ops.push_back(std::move(d));
    }
    // --- per-action faults ------------------------------------------------
    if (fault_applies(instance) && fault_.action == action.name &&
        !fault_.action.empty()) {
      if (fault_.kind == FaultKind::kDropAssignment && !ops.empty()) {
        for (size_t i = 0; i < ops.size(); ++i) {
          if (ops[i].kind == DevOp::Kind::kAssign &&
              ops[i].origin == DevOp::Origin::kGeneric) {
            ops.erase(ops.begin() + static_cast<long>(i));
            break;
          }
        }
      }
      if (fault_.kind == FaultKind::kSwappedAssignments) {
        // The first two generic assignments write each other's dests.
        std::vector<size_t> idx;
        for (size_t i = 0; i < ops.size() && idx.size() < 2; ++i) {
          if (ops[i].kind == DevOp::Kind::kAssign &&
              ops[i].origin == DevOp::Origin::kGeneric) {
            idx.push_back(i);
          }
        }
        if (idx.size() == 2) std::swap(ops[idx[0]].dest, ops[idx[1]].dest);
      }
    }
    if (fault_.kind == FaultKind::kDropSetValid && fault_applies(instance)) {
      ops.erase(std::remove_if(ops.begin(), ops.end(),
                               [&](const DevOp& d) {
                                 return d.origin == DevOp::Origin::kSetValid &&
                                        d.header == fault_.header;
                               }),
                ops.end());
    }
    return ops;
  }

  ir::ExprRef bind_args(ir::ExprRef e, const p4::ActionDef& action,
                        const std::vector<uint64_t>& args) {
    return ir::substitute(e, ctx_.arena, [&](ir::FieldId f, int w) -> ir::ExprRef {
      const std::string& name = ctx_.fields.name(f);
      std::string prefix = "$arg." + action.name + ".";
      if (!util::starts_with(name, prefix)) return nullptr;
      std::string pname(name.substr(prefix.size()));
      for (size_t i = 0; i < action.params.size(); ++i) {
        if (action.params[i].name == pname) {
          return ctx_.arena.constant(args.at(i), w);
        }
      }
      throw util::InternalError("toolchain: unknown action parameter");
    });
  }

  DevTable compile_table(const p4::TableDef& t, const std::string& instance) {
    DevTable out;
    out.name = t.name;
    for (const p4::TableKey& k : t.keys) {
      DevKey dk;
      dk.field = fid(k.field);
      dk.width = ctx_.fields.width(dk.field);
      dk.kind = k.kind;
      if (fault_.kind == FaultKind::kMaskFoldBug && fault_applies(instance) &&
          dk.kind == p4::MatchKind::kTernary) {
        // The miscompiled ternary behaves as an exact match on value.
        dk.kind = p4::MatchKind::kExact;
      }
      out.keys.push_back(dk);
    }
    for (const p4::TableEntry* e : rules_.ordered_entries(t)) {
      DevEntry de;
      de.source = *e;
      de.matches = e->matches;
      de.ops = compile_ops(*dp_.program.find_action(e->action), e->args,
                           instance);
      out.entries.push_back(std::move(de));
    }
    std::string def_action = t.default_action;
    std::vector<uint64_t> def_args = t.default_args;
    auto it = rules_.default_overrides.find(t.name);
    if (it != rules_.default_overrides.end()) {
      def_action = it->second.action;
      def_args = it->second.args;
    }
    out.default_action = def_action;
    out.default_ops =
        compile_ops(*dp_.program.find_action(def_action), def_args, instance);
    if (fault_.kind == FaultKind::kWrongDefaultAction &&
        fault_applies(instance) && fault_.table == t.name) {
      out.default_ops.clear();  // miss silently does nothing
    }
    return out;
  }

  DevControlBlock compile_block(const p4::ControlBlock& b,
                                DevInstance& inst,
                                const std::string& instance) {
    DevControlBlock out;
    for (const p4::ControlStmt& s : b.stmts) {
      DevControlStmt d;
      switch (s.kind) {
        case p4::ControlStmt::Kind::kApply: {
          d.kind = DevControlStmt::Kind::kApply;
          d.table = inst.tables.size();
          inst.tables.push_back(
              compile_table(*dp_.program.find_table(s.table), instance));
          break;
        }
        case p4::ControlStmt::Kind::kIf:
          d.kind = DevControlStmt::Kind::kIf;
          d.cond = mutate_cond(s.cond, instance);
          d.then_block = compile_block(s.then_block, inst, instance);
          d.else_block = compile_block(s.else_block, inst, instance);
          break;
        case p4::ControlStmt::Kind::kOp: {
          d.kind = DevControlStmt::Kind::kOp;
          p4::ActionDef tmp;
          tmp.name = "$inline";
          tmp.ops = {s.op};
          std::vector<DevOp> ops = compile_ops(tmp, {}, instance);
          util::check(ops.size() == 1, "toolchain: inline op count");
          d.op = ops[0];
          break;
        }
      }
      out.stmts.push_back(std::move(d));
    }
    return out;
  }

  DevInstance compile_instance(const p4::PipeInstance& pi) {
    const p4::PipelineDef& def = *dp_.program.find_pipeline(pi.pipeline);
    DevInstance inst;
    inst.name = pi.name;
    inst.switch_id = pi.switch_id;

    // Parser: states by index.
    std::unordered_map<std::string, int> state_idx;
    for (const p4::ParserState& s : def.parser.states) {
      state_idx.emplace(s.name, static_cast<int>(state_idx.size()));
    }
    auto next_of = [&](const std::string& n) {
      if (n == "accept") return kAccept;
      if (n == "reject") return kReject;
      return state_idx.at(n);
    };
    std::unordered_map<std::string, size_t> header_idx;
    for (size_t i = 0; i < dp_.program.headers.size(); ++i) {
      header_idx.emplace(dp_.program.headers[i].name, i);
    }
    for (const p4::ParserState& s : def.parser.states) {
      DevParserState ds;
      ds.name = s.name;
      for (const std::string& h : s.extracts) {
        ds.extracts.push_back(header_idx.at(h));
      }
      if (!s.select_field.empty()) {
        ds.select = fid(s.select_field);
        ds.select_width = ctx_.fields.width(ds.select);
      }
      const bool skip_cases = fault_.kind == FaultKind::kParserSkipSelect &&
                              fault_applies(pi.name) &&
                              fault_.parser_state == s.name;
      if (!skip_cases) {
        for (const p4::ParserTransition& t : s.cases) {
          uint64_t mask = t.mask;
          if (fault_.kind == FaultKind::kMaskFoldBug && fault_applies(pi.name)) {
            // The frontend folds the mask away: the case matches the raw
            // value exactly.
            mask = util::mask_bits(ds.select_width == 0 ? 64
                                                        : ds.select_width);
          }
          ds.cases.push_back({t.value, mask, next_of(t.next)});
        }
      }
      ds.default_next = next_of(s.default_next);
      inst.parser.push_back(std::move(ds));
    }
    inst.start_state = state_idx.at(def.parser.start);

    inst.control = compile_block(def.control, inst, pi.name);

    inst.emit_order = def.deparser.emit_order;
    for (const p4::ChecksumUpdate& u : def.deparser.checksum_updates) {
      DevChecksum c;
      c.dest = fid(u.dest);
      c.guard_header = u.guard_header;
      c.algo = u.algo;
      for (const std::string& s : u.sources) c.sources.push_back(fid(s));
      inst.checksums.push_back(std::move(c));
    }
    return inst;
  }

  void apply_global_faults() {
    switch (fault_.kind) {
      case FaultKind::kSkipMetadataZero:
        out_.zero_metadata = false;
        break;
      case FaultKind::kFieldOverlap:
        out_.overlap_writer = fid(fault_.field_a);
        out_.overlap_victim = fid(fault_.field_b);
        break;
      case FaultKind::kAddCarryLeak:
        out_.carry_victim = fid(fault_.field_b);
        out_.carry_instance = fault_.instance;
        break;
      default:
        break;
    }
  }

  const p4::DataPlane& dp_;
  const p4::RuleSet& rules_;
  ir::Context& ctx_;
  FaultSpec fault_;
  DeviceProgram out_;
};

}  // namespace

DeviceProgram compile(const p4::DataPlane& dp, const p4::RuleSet& rules,
                      ir::Context& ctx, const FaultSpec& fault) {
  return Compiler(dp, rules, ctx, fault).compile();
}

}  // namespace meissa::sim
