#include "sim/link.hpp"

#include <algorithm>
#include <iterator>

namespace meissa::sim {

namespace {
// How deep into the frame tail a corruption bit-flip may land. Matches the
// driver's payload stamp (8-byte case id + 8 filler bytes): flips stay
// inside the payload, never in header bytes, so corrupted frames remain
// *detectable* rather than silently changing the packet's semantics.
constexpr size_t kCorruptTailBytes = 16;
}  // namespace

FlakyLink::FlakyLink(Device& device, const LinkFaultSpec& spec)
    : device_(device), spec_(spec), rng_(spec.seed) {}

bool FlakyLink::hit(double rate) {
  if (rate <= 0) return false;
  if (rate >= 1) return true;
  return rng_.below(1000000) < static_cast<uint64_t>(rate * 1000000.0);
}

bool FlakyLink::install_registers(const ir::ConcreteState& regs) {
  if (hit(spec_.install_fail_rate)) {
    ++stats_.install_failures;
    return false;  // transient write failure: nothing reached the device
  }
  device_.set_registers(regs);
  return true;
}

void FlakyLink::deliver(DeviceOutput out) {
  if (!out.bytes.empty() && hit(spec_.corrupt_rate)) {
    ++stats_.corrupted;
    size_t window = std::min(out.bytes.size(), kCorruptTailBytes);
    size_t byte = out.bytes.size() - 1 - rng_.below(window);
    out.bytes[byte] ^= static_cast<uint8_t>(1u << rng_.below(8));
  }
  if (hit(spec_.reorder_rate)) {
    ++stats_.reordered;
    delayed_.push_back(std::move(out));
  } else {
    arrived_.push_back(std::move(out));
  }
}

DeviceOutput FlakyLink::run_one(const DeviceInput& in) {
  DeviceOutput out;
  device_.run_batch({&in, 1}, {&out, 1}, arena_);
  return out;
}

void FlakyLink::send(const DeviceInput& in) {
  ++stats_.frames_sent;
  if (hit(spec_.drop_rate)) {
    ++stats_.dropped;
    return;  // lost on the way to the device: pure silence
  }
  deliver(run_one(in));
  if (hit(spec_.duplicate_rate)) {
    ++stats_.duplicated;
    deliver(run_one(in));
  }
}

std::vector<DeviceOutput> FlakyLink::collect() {
  // This round's on-time frames, then the stragglers delayed in the
  // *previous* round: a reordered verdict surfaces one collect() late,
  // after the frames that overtook it. Frames delayed this round move into
  // the straggler stage and will surface at the next collect(), so two
  // back-to-back collect() calls always drain the link completely.
  std::vector<DeviceOutput> out = std::move(arrived_);
  arrived_.clear();
  out.insert(out.end(), std::make_move_iterator(stragglers_.begin()),
             std::make_move_iterator(stragglers_.end()));
  stragglers_ = std::move(delayed_);
  delayed_.clear();
  return out;
}

}  // namespace meissa::sim
