// AFL-style edge coverage over the device's typed trace events.
//
// The greybox lane (src/fuzz) steers mutation by behavioral novelty: each
// TraceEvent the device would record is hashed to a key, and the *pair*
// (previous key, current key) — an edge in the packet's event sequence —
// indexes a byte map of saturating hit counters. A CoverageMap can be
// attached to an ExecArena independently of trace recording, so the fuzz
// hot loop observes coverage without paying for localization data.
//
// Counts are compared through the classic AFL bucketing (1, 2, 3, 4-7,
// 8-15, 16-31, 32-127, 128+): an input is "new" when some edge reaches a
// bucket never seen before, which keeps loop-iteration noise from flooding
// the corpus while still rewarding order-of-magnitude hit-count changes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace meissa::sim {

// Mixes one trace event's identity into a 32-bit key. The inputs are the
// raw TraceEvent components (kind, instance, table, aux); multiplicative
// mixing spreads near-identical events across the map.
inline uint32_t coverage_key(uint8_t kind, int16_t instance, int16_t table,
                             int32_t aux) noexcept {
  uint32_t h = 0x9e3779b9u ^ kind;
  h = (h ^ static_cast<uint16_t>(instance)) * 0x85ebca6bu;
  h = (h ^ static_cast<uint16_t>(table)) * 0xc2b2ae35u;
  h = (h ^ static_cast<uint32_t>(aux)) * 0x27d4eb2fu;
  h ^= h >> 15;
  return h;
}

// Maps a hit count to its AFL bucket bit; 0 stays 0.
uint8_t bucket_bits(uint8_t count) noexcept;

class CoverageMap {
 public:
  static constexpr size_t kSize = 1u << 16;

  CoverageMap() : map_(kSize, 0) {}

  // Clears all counters and the edge chain.
  void reset();

  // Breaks the edge chain (call between packets so the last event of one
  // packet and the first of the next never form a phantom edge).
  void boundary() noexcept { prev_ = 0; }

  // Records one event key, forming an edge with the previous one.
  void hit(uint32_t key) noexcept {
    size_t idx = (key ^ prev_) & (kSize - 1);
    if (map_[idx] != 0xff) ++map_[idx];
    prev_ = (key >> 1) & (kSize - 1);
  }

  // Number of edges with a nonzero count.
  size_t nonzero() const noexcept;

  const std::vector<uint8_t>& bytes() const noexcept { return map_; }

 private:
  std::vector<uint8_t> map_;
  uint32_t prev_ = 0;
};

// Compares `cur` (bucketed) against a `virgin` map of already-seen bucket
// bits. Returns true when `cur` contains a bucket bit absent from
// `virgin`; with `commit`, the new bits are merged in. `virgin` must be
// CoverageMap::kSize bytes (it is resized if not).
bool merge_new_coverage(const CoverageMap& cur, std::vector<uint8_t>& virgin,
                        bool commit);

}  // namespace meissa::sim
