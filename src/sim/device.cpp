#include "sim/device.hpp"

#include <algorithm>

#include "packet/wire.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace meissa::sim {

namespace {
// Garbage pattern left in metadata when the zeroing flag is missing
// (fault #16): deterministic, nonzero, width-truncated.
constexpr uint64_t kGarbage = 0xdeadbeefcafef00dull;
}  // namespace

struct Device::ExecState {
  ir::ConcreteState fields;
  std::vector<uint8_t> wire;     // current wire bytes (re-written per pipe)
  std::vector<uint8_t> payload;  // unparsed tail of the current pipe
  bool dropped = false;
  std::vector<std::string> trace;
};

Device::Device(DeviceProgram prog, ir::Context& ctx)
    : prog_(std::move(prog)), ctx_(ctx) {}

void Device::set_register(std::string_view reg, uint64_t index,
                          uint64_t value) {
  std::string name = p4::register_field(reg, index);
  std::optional<int> w = prog_.program.field_width(name);
  util::check(w.has_value(), "set_register: unknown register cell");
  registers_[ctx_.fields.intern(name, *w)] = util::truncate(value, *w);
}

void Device::set_registers(const ir::ConcreteState& regs) {
  for (auto& [f, v] : regs) registers_[f] = v;
}

uint64_t Device::eval_or_zero(ir::ExprRef e, const ir::ConcreteState& s) const {
  auto v = ir::eval(e, s);
  // Reading an uninitialized field on hardware yields whatever the PHV
  // container holds; zero is the deterministic simulator choice.
  return v.value_or(0);
}

void Device::store(ir::FieldId f, uint64_t v, ExecState& st) const {
  v = util::truncate(v, ctx_.fields.width(f));
  st.fields[f] = v;
  if (f == prog_.overlap_writer && prog_.overlap_victim != ir::kInvalidField) {
    // Pragma-misuse fault (#15): the two fields share a container.
    st.fields[prog_.overlap_victim] =
        util::truncate(v, ctx_.fields.width(prog_.overlap_victim));
  }
}

bool Device::parse(const DevInstance& inst, ExecState& st) const {
  packet::BitReader r(st.wire);
  int state = inst.start_state;
  while (state >= 0) {
    const DevParserState& s = inst.parser[static_cast<size_t>(state)];
    for (size_t hidx : s.extracts) {
      const p4::HeaderDef& def = prog_.program.headers[hidx];
      for (const p4::FieldDef& f : def.fields) {
        auto v = r.get(f.width);
        if (!v) {
          st.trace.push_back(inst.name + ": parser ran out of packet in " +
                             s.name);
          return false;
        }
        ir::FieldId fid =
            ctx_.fields.intern(p4::content_field(def.name, f.name), f.width);
        st.fields[fid] = *v;
      }
      ir::FieldId vf = ctx_.fields.intern(p4::validity_field(def.name), 1);
      st.fields[vf] = 1;
      st.trace.push_back(inst.name + ": parsed " + def.name);
    }
    int next = s.default_next;
    if (s.select != ir::kInvalidField) {
      auto sel = st.fields.find(s.select);
      uint64_t sval = sel == st.fields.end() ? 0 : sel->second;
      for (const DevTransition& t : s.cases) {
        if ((sval & t.mask) == (t.value & t.mask)) {
          next = t.next;
          break;
        }
      }
    }
    if (next == kReject) {
      st.trace.push_back(inst.name + ": parser reject");
      return false;
    }
    state = next;
  }
  // Payload: bytes not consumed by the accepted parse.
  size_t consumed_bits = r.bit_position();
  util::check(consumed_bits % 8 == 0, "parser left unaligned position");
  st.payload.assign(st.wire.begin() + static_cast<long>(consumed_bits / 8),
                    st.wire.end());
  return true;
}

void Device::run_op(const DevOp& op, ExecState& st) const {
  switch (op.kind) {
    case DevOp::Kind::kAssign: {
      uint64_t v = eval_or_zero(op.value, st.fields);
      // Carry-leak fault (#11 analog): additions leak their carry into a
      // neighbouring container's low bit.
      if (prog_.carry_victim != ir::kInvalidField &&
          op.value != nullptr && op.value->kind == ir::ExprKind::kArith &&
          op.value->arith_op() == ir::ArithOp::kAdd) {
        uint64_t a = eval_or_zero(op.value->lhs, st.fields);
        uint64_t b = eval_or_zero(op.value->rhs, st.fields);
        int w = op.value->width;
        if (w < 64 && ((a + b) >> w) != 0) {
          ir::FieldId victim = prog_.carry_victim;
          uint64_t old = st.fields.count(victim) ? st.fields[victim] : 0;
          st.fields[victim] = old ^ 1u;
        }
      }
      store(op.dest, v, st);
      break;
    }
    case DevOp::Kind::kHash: {
      std::vector<uint64_t> kv;
      std::vector<int> kw;
      for (ir::FieldId k : op.keys) {
        kv.push_back(st.fields.count(k) ? st.fields.at(k) : 0);
        kw.push_back(ctx_.fields.width(k));
      }
      store(op.dest,
            p4::compute_hash(op.algo, kv, kw, ctx_.fields.width(op.dest)), st);
      break;
    }
  }
}

void Device::apply_table(const DevInstance& inst, const DevTable& t,
                         ExecState& st) const {
  std::vector<p4::MatchKind> kinds;
  kinds.reserve(t.keys.size());
  for (const DevKey& k : t.keys) kinds.push_back(k.kind);

  // Scan every entry and pick the winner by the explicit rule — longest
  // prefix, then priority, then install order (p4::entry_rank, the same
  // rule that fixes the symbolic engine's branch order). First-hit-in-
  // compiled-order used to stand in for this; that made overlapping lpm /
  // ternary entries resolve by whatever order the toolchain happened to
  // install, and any divergence from the engine's semantics surfaced as a
  // phantom test failure.
  const DevEntry* best = nullptr;
  for (const DevEntry& e : t.entries) {
    bool hit = true;
    for (size_t i = 0; i < t.keys.size() && hit; ++i) {
      const DevKey& k = t.keys[i];
      uint64_t v = st.fields.count(k.field) ? st.fields.at(k.field) : 0;
      const p4::KeyMatch& m = e.matches[i];
      switch (k.kind) {
        case p4::MatchKind::kExact:
          hit = v == m.value;
          break;
        case p4::MatchKind::kTernary:
          hit = (v & m.mask) == (m.value & m.mask);
          break;
        case p4::MatchKind::kLpm: {
          uint64_t mask =
              m.prefix_len <= 0
                  ? 0
                  : util::mask_bits(k.width) ^
                        util::mask_bits(std::max(0, k.width - m.prefix_len));
          hit = (v & mask) == (m.value & mask);
          break;
        }
        case p4::MatchKind::kRange:
          hit = v >= m.lo && v <= m.hi;
          break;
      }
    }
    // Strictly-better only: a full rank tie keeps the earlier entry, which
    // is install order (entries preserve it among rank ties).
    if (hit &&
        (best == nullptr || p4::entry_rank(kinds, e.source, best->source) < 0)) {
      best = &e;
    }
  }
  if (best != nullptr) {
    st.trace.push_back(inst.name + ": table " + t.name + " hit -> " +
                       best->source.action);
    for (const DevOp& op : best->ops) run_op(op, st);
    return;
  }
  st.trace.push_back(inst.name + ": table " + t.name + " miss -> " +
                     t.default_action);
  for (const DevOp& op : t.default_ops) run_op(op, st);
}

void Device::run_block(const DevInstance& inst, const DevControlBlock& b,
                       ExecState& st) const {
  for (const DevControlStmt& s : b.stmts) {
    switch (s.kind) {
      case DevControlStmt::Kind::kApply:
        apply_table(inst, inst.tables[s.table], st);
        break;
      case DevControlStmt::Kind::kIf:
        if (eval_or_zero(s.cond, st.fields) != 0) {
          run_block(inst, s.then_block, st);
        } else {
          run_block(inst, s.else_block, st);
        }
        break;
      case DevControlStmt::Kind::kOp:
        run_op(s.op, st);
        break;
    }
  }
}

void Device::deparse(const DevInstance& inst, ExecState& st) const {
  for (const DevChecksum& c : inst.checksums) {
    ir::FieldId guard =
        ctx_.fields.intern(p4::validity_field(c.guard_header), 1);
    if (!st.fields.count(guard) || st.fields.at(guard) == 0) continue;
    std::vector<uint64_t> kv;
    std::vector<int> kw;
    for (ir::FieldId f : c.sources) {
      kv.push_back(st.fields.count(f) ? st.fields.at(f) : 0);
      kw.push_back(ctx_.fields.width(f));
    }
    store(c.dest, p4::compute_hash(c.algo, kv, kw, ctx_.fields.width(c.dest)),
          st);
    st.trace.push_back(inst.name + ": checksum update into " +
                       ctx_.fields.name(c.dest));
  }
  packet::BitWriter w;
  for (const std::string& hname : inst.emit_order) {
    ir::FieldId vf = ctx_.fields.intern(p4::validity_field(hname), 1);
    if (!st.fields.count(vf) || st.fields.at(vf) == 0) continue;
    const p4::HeaderDef* def = prog_.program.find_header(hname);
    for (const p4::FieldDef& f : def->fields) {
      ir::FieldId fid =
          ctx_.fields.intern(p4::content_field(hname, f.name), f.width);
      w.put(st.fields.count(fid) ? st.fields.at(fid) : 0, f.width);
    }
    st.trace.push_back(inst.name + ": emitted " + hname);
  }
  w.put_bytes(st.payload);
  st.wire = std::move(w).take();
}

void Device::run_instance(const DevInstance& inst, ExecState& st) const {
  // Fresh per-pipe view of header validity.
  for (const p4::HeaderDef& h : prog_.program.headers) {
    st.fields[ctx_.fields.intern(p4::validity_field(h.name), 1)] = 0;
  }
  if (!parse(inst, st)) {
    st.dropped = true;
    return;
  }
  run_block(inst, inst.control, st);
  ir::FieldId drop = ctx_.fields.intern(std::string(p4::kDropFlag), 1);
  if (st.fields.count(drop) && st.fields.at(drop) != 0) {
    st.trace.push_back(inst.name + ": dropped");
    st.dropped = true;
    return;
  }
  deparse(inst, st);
}

DeviceOutput Device::inject(const DeviceInput& in) {
  ExecState st;
  st.wire = in.bytes;
  st.fields = registers_;

  // Intrinsics & metadata initialization.
  st.fields[ctx_.fields.intern(std::string(p4::kIngressPort), p4::kPortWidth)] =
      util::truncate(in.port, p4::kPortWidth);
  for (const p4::FieldDef& m : prog_.program.metadata) {
    uint64_t v = prog_.zero_metadata ? 0 : util::truncate(kGarbage, m.width);
    st.fields[ctx_.fields.intern(m.name, m.width)] = v;
  }
  st.fields[ctx_.fields.intern(std::string(p4::kDropFlag), 1)] = 0;
  st.fields[ctx_.fields.intern(std::string(p4::kEgressSpec), p4::kPortWidth)] =
      0;

  DeviceOutput out;
  // Pick the entry point.
  int cur = -1;
  for (const DevEntryPoint& e : prog_.entries) {
    if (e.guard == nullptr || eval_or_zero(e.guard, st.fields) != 0) {
      cur = e.instance;
      break;
    }
  }
  if (cur < 0) {
    out.accepted = false;
    return out;
  }

  size_t hops = 0;
  while (cur >= 0) {
    util::check(++hops <= prog_.instances.size() + 1,
                "device: pipeline loop (unrolled topologies are acyclic)");
    const DevInstance& inst = prog_.instances[static_cast<size_t>(cur)];
    run_instance(inst, st);
    if (st.dropped) {
      out.dropped = true;
      out.trace = std::move(st.trace);
      return out;
    }
    int next = -1;
    for (const DevEdge& e : prog_.edges) {
      if (e.from != cur) continue;
      if (e.guard == nullptr || eval_or_zero(e.guard, st.fields) != 0) {
        next = e.to;
        break;
      }
    }
    cur = next;
  }
  out.dropped = false;
  out.port = st.fields.at(
      ctx_.fields.intern(std::string(p4::kEgressSpec), p4::kPortWidth));
  out.bytes = std::move(st.wire);
  out.trace = std::move(st.trace);
  return out;
}

}  // namespace meissa::sim
