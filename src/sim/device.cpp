#include "sim/device.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "packet/wire.hpp"
#include "sim/coverage.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace meissa::sim {

namespace {
// Garbage pattern left in metadata when the zeroing flag is missing
// (fault #16): deterministic, nonzero, width-truncated.
constexpr uint64_t kGarbage = 0xdeadbeefcafef00dull;
}  // namespace

void ExecArena::begin_packet(size_t nfields) {
  if (++epoch_ == 0) {
    // Epoch wrap: stamps written 2^32 packets ago could alias the fresh
    // epoch, so refill once and restart from 1.
    for (Cell& c : cells_) c.stamp = 0;
    epoch_ = 1;
  }
  if (nfields > cells_.size()) {
    cells_.resize(nfields);
  }
  trace_.clear();
  payload_off_ = 0;
  cur_instance_ = -1;
  dropped_ = false;
}

Device::Device(DeviceProgram prog, ir::Context& ctx)
    : prog_(std::move(prog)), ctx_(ctx) {
  // Intern the full field universe up front: the execution path indexes
  // these caches and never builds a name or takes the field-table lock.
  port_fid_ =
      ctx_.fields.intern(std::string(p4::kIngressPort), p4::kPortWidth);
  drop_fid_ = ctx_.fields.intern(std::string(p4::kDropFlag), 1);
  egspec_fid_ =
      ctx_.fields.intern(std::string(p4::kEgressSpec), p4::kPortWidth);

  headers_.reserve(prog_.program.headers.size());
  for (const p4::HeaderDef& def : prog_.program.headers) {
    HeaderLayout lay;
    lay.validity = ctx_.fields.intern(p4::validity_field(def.name), 1);
    for (const p4::FieldDef& f : def.fields) {
      lay.fields.push_back(
          ctx_.fields.intern(p4::content_field(def.name, f.name), f.width));
      lay.widths.push_back(f.width);
      lay.total_bits += static_cast<size_t>(f.width);
    }
    headers_.push_back(std::move(lay));
  }

  for (const p4::FieldDef& m : prog_.program.metadata) {
    uint64_t v = prog_.zero_metadata ? 0 : util::truncate(kGarbage, m.width);
    metadata_init_.emplace_back(ctx_.fields.intern(m.name, m.width), v);
  }

  auto header_index = [this](const std::string& name) {
    for (size_t i = 0; i < prog_.program.headers.size(); ++i) {
      if (prog_.program.headers[i].name == name) return static_cast<int>(i);
    }
    return -1;
  };

  emits_.resize(prog_.instances.size());
  csum_guards_.resize(prog_.instances.size());
  key_kinds_.resize(prog_.instances.size());
  pre_matches_.resize(prog_.instances.size());
  entry_order_.resize(prog_.instances.size());
  for (size_t i = 0; i < prog_.instances.size(); ++i) {
    const DevInstance& inst = prog_.instances[i];
    for (const std::string& hname : inst.emit_order) {
      EmitSlot slot;
      slot.validity = ctx_.fields.intern(p4::validity_field(hname), 1);
      slot.header = header_index(hname);
      util::check(slot.header >= 0, "device: emit of undeclared header");
      emits_[i].push_back(slot);
    }
    for (const DevChecksum& c : inst.checksums) {
      csum_guards_[i].push_back(
          ctx_.fields.intern(p4::validity_field(c.guard_header), 1));
    }
    key_kinds_[i].resize(inst.tables.size());
    pre_matches_[i].resize(inst.tables.size());
    entry_order_[i].resize(inst.tables.size());
    for (size_t t = 0; t < inst.tables.size(); ++t) {
      const DevTable& tab = inst.tables[t];
      std::vector<p4::MatchKind>& kinds = key_kinds_[i][t];
      for (const DevKey& k : tab.keys) kinds.push_back(k.kind);

      // Rank the entries once (entry_rank is a strict weak order; the
      // stable sort keeps install order on full ties), so the per-packet
      // scan takes the first hit instead of rank-comparing every hit.
      std::vector<int32_t>& order = entry_order_[i][t];
      order.resize(tab.entries.size());
      for (size_t ei = 0; ei < order.size(); ++ei) {
        order[ei] = static_cast<int32_t>(ei);
      }
      std::stable_sort(order.begin(), order.end(),
                       [&](int32_t x, int32_t y) {
                         return p4::entry_rank(
                                    kinds,
                                    tab.entries[static_cast<size_t>(x)].source,
                                    tab.entries[static_cast<size_t>(y)]
                                        .source) < 0;
                       });

      std::vector<PreMatch>& pre = pre_matches_[i][t];
      pre.reserve(tab.entries.size() * tab.keys.size());
      for (int32_t oi : order) {
        const DevEntry& e = tab.entries[static_cast<size_t>(oi)];
        for (size_t ki = 0; ki < tab.keys.size(); ++ki) {
          const DevKey& k = tab.keys[ki];
          const p4::KeyMatch& m = e.matches[ki];
          PreMatch pm;
          switch (k.kind) {
            case p4::MatchKind::kExact:
              pm.mask = ~uint64_t{0};
              pm.value = m.value;
              break;
            case p4::MatchKind::kTernary:
              pm.mask = m.mask;
              pm.value = m.value & m.mask;
              break;
            case p4::MatchKind::kLpm:
              pm.mask = m.prefix_len <= 0
                            ? 0
                            : util::mask_bits(k.width) ^
                                  util::mask_bits(
                                      std::max(0, k.width - m.prefix_len));
              pm.value = m.value & pm.mask;
              break;
            case p4::MatchKind::kRange:
              pm.value = m.lo;
              pm.mask = m.hi;
              break;
          }
          pre.push_back(pm);
        }
      }
    }
  }

  widths_.resize(ctx_.fields.size());
  for (ir::FieldId f = 0; f < widths_.size(); ++f) {
    widths_[f] = ctx_.fields.width(f);
  }
}

void Device::set_register(std::string_view reg, uint64_t index,
                          uint64_t value) {
  std::string name = p4::register_field(reg, index);
  std::optional<int> w = prog_.program.field_width(name);
  util::check(w.has_value(), "set_register: unknown register cell");
  registers_[ctx_.fields.intern(name, *w)] = util::truncate(value, *w);
  registers_flat_.assign(registers_.begin(), registers_.end());
}

void Device::set_registers(const ir::ConcreteState& regs) {
  for (auto& [f, v] : regs) registers_[f] = v;
  registers_flat_.assign(registers_.begin(), registers_.end());
}

std::optional<uint64_t> Device::get_register(std::string_view reg,
                                             uint64_t index) const {
  ir::FieldId f = ctx_.fields.find(p4::register_field(reg, index));
  if (f == ir::kInvalidField) return std::nullopt;
  auto it = registers_.find(f);
  if (it == registers_.end()) return std::nullopt;
  return it->second;
}

void Device::note(ExecArena& a, TraceEventKind kind, int16_t table,
                  int32_t aux) const {
  if (a.coverage != nullptr) {
    a.coverage->hit(coverage_key(static_cast<uint8_t>(kind), a.cur_instance_,
                                 table, aux));
  }
  if (a.collect_trace) {
    a.trace_.push_back({kind, a.cur_instance_, table, aux});
  }
}

std::optional<uint64_t> Device::eval_expr(ir::ExprRef e,
                                          const ExecArena& a) const {
  switch (e->kind) {
    case ir::ExprKind::kConst:
    case ir::ExprKind::kBoolConst:
      return e->value;
    case ir::ExprKind::kField: {
      if (!a.has(e->field)) return std::nullopt;
      return util::truncate(a.cells_[e->field].value, e->width);
    }
    case ir::ExprKind::kArith: {
      auto x = eval_expr(e->lhs, a);
      auto y = eval_expr(e->rhs, a);
      if (!x || !y) return std::nullopt;
      return ir::apply_arith(e->arith_op(), *x, *y, e->width);
    }
    case ir::ExprKind::kCmp: {
      // Fast path for the dominant guard shape, `field <op> const`
      // (entry/edge guards, if-conditions): skip two recursion levels.
      if (e->lhs->kind == ir::ExprKind::kField &&
          e->rhs->kind == ir::ExprKind::kConst) {
        if (!a.has(e->lhs->field)) return std::nullopt;
        uint64_t x = util::truncate(a.cells_[e->lhs->field].value,
                                    e->lhs->width);
        return ir::apply_cmp(e->cmp_op(), x, e->rhs->value) ? 1 : 0;
      }
      auto x = eval_expr(e->lhs, a);
      auto y = eval_expr(e->rhs, a);
      if (!x || !y) return std::nullopt;
      return ir::apply_cmp(e->cmp_op(), *x, *y) ? 1 : 0;
    }
    case ir::ExprKind::kBool: {
      // Short-circuit exactly like ir::eval: partially-bound states still
      // decide when possible.
      auto x = eval_expr(e->lhs, a);
      if (e->bool_op() == ir::BoolOp::kAnd) {
        if (x && *x == 0) return 0;
        auto y = eval_expr(e->rhs, a);
        if (y && *y == 0) return 0;
        if (x && y) return 1;
        return std::nullopt;
      }
      if (x && *x == 1) return 1;
      auto y = eval_expr(e->rhs, a);
      if (y && *y == 1) return 1;
      if (x && y) return 0;
      return std::nullopt;
    }
    case ir::ExprKind::kNot: {
      auto x = eval_expr(e->lhs, a);
      if (!x) return std::nullopt;
      return *x ? 0 : 1;
    }
  }
  return std::nullopt;
}

int32_t Device::first_missing(ir::ExprRef e, const ExecArena& a) const {
  switch (e->kind) {
    case ir::ExprKind::kConst:
    case ir::ExprKind::kBoolConst:
      return -1;
    case ir::ExprKind::kField:
      return a.has(e->field) ? -1 : static_cast<int32_t>(e->field);
    case ir::ExprKind::kNot:
      return first_missing(e->lhs, a);
    default: {
      int32_t m = first_missing(e->lhs, a);
      if (m >= 0) return m;
      return e->rhs != nullptr ? first_missing(e->rhs, a) : -1;
    }
  }
}

uint64_t Device::eval_or_zero(ir::ExprRef e, ExecArena& a) const {
  auto v = eval_expr(e, a);
  if (v) return *v;
  // Reading an uninitialized field on hardware yields whatever the PHV
  // container holds; zero is the deterministic simulator choice. The
  // coercion is counted and traced so divergences it causes are
  // attributable (not silent).
  if (obs::metrics_enabled()) {
    obs::metrics().counter("sim.eval_fallbacks").add();
  }
  note(a, TraceEventKind::kEvalFallback, -1, first_missing(e, a));
  return 0;
}

void Device::store(ir::FieldId f, uint64_t v, ExecArena& a) const {
  v = util::truncate(v, width_of(f));
  a.set(f, v);
  if (f == prog_.overlap_writer && prog_.overlap_victim != ir::kInvalidField) {
    // Pragma-misuse fault (#15): the two fields share a container.
    a.set(prog_.overlap_victim,
          util::truncate(v, width_of(prog_.overlap_victim)));
  }
}

bool Device::parse(const DevInstance& inst, ExecArena& a) const {
  const uint8_t* data = a.wire_.data();
  const size_t nbits = a.wire_.size() * 8;
  size_t pos = 0;
  // Unchecked MSB-first extraction: bounds are validated once per header
  // (total_bits), not once per field.
  auto get_bits = [&](int width) noexcept {
    uint64_t v = 0;
    int left = width;
    int bit = static_cast<int>(pos % 8);
    if (bit != 0) {
      int take = 8 - bit < left ? 8 - bit : left;
      v = (data[pos / 8] >> (8 - bit - take)) & util::mask_bits(take);
      pos += static_cast<size_t>(take);
      left -= take;
    }
    while (left >= 8) {
      v = (v << 8) | data[pos / 8];
      pos += 8;
      left -= 8;
    }
    if (left > 0) {
      v = (v << left) | (data[pos / 8] >> (8 - left));
      pos += static_cast<size_t>(left);
    }
    return v;
  };
  int state = inst.start_state;
  while (state >= 0) {
    const DevParserState& s = inst.parser[static_cast<size_t>(state)];
    for (size_t hidx : s.extracts) {
      const HeaderLayout& lay = headers_[hidx];
      if (pos + lay.total_bits > nbits) {
        note(a, TraceEventKind::kParserShort, -1, state);
        return false;
      }
      for (size_t i = 0; i < lay.fields.size(); ++i) {
        a.set(lay.fields[i], get_bits(lay.widths[i]));
      }
      a.set(lay.validity, 1);
      note(a, TraceEventKind::kParseHeader, -1, static_cast<int32_t>(hidx));
    }
    int next = s.default_next;
    if (s.select != ir::kInvalidField) {
      uint64_t sval = a.get_or_zero(s.select);
      for (const DevTransition& t : s.cases) {
        if ((sval & t.mask) == (t.value & t.mask)) {
          next = t.next;
          break;
        }
      }
    }
    if (next == kReject) {
      note(a, TraceEventKind::kParserReject);
      return false;
    }
    state = next;
  }
  // Payload: bytes not consumed by the accepted parse. Kept as an offset
  // into wire_ (deparse appends it before recycling the buffer).
  util::check(pos % 8 == 0, "parser left unaligned position");
  a.payload_off_ = pos / 8;
  return true;
}

void Device::run_op(const DevOp& op, ExecArena& a) const {
  switch (op.kind) {
    case DevOp::Kind::kAssign: {
      uint64_t v = eval_or_zero(op.value, a);
      // Carry-leak fault (#11 analog): additions leak their carry into a
      // neighbouring container's low bit.
      if (prog_.carry_victim != ir::kInvalidField &&
          op.value != nullptr && op.value->kind == ir::ExprKind::kArith &&
          op.value->arith_op() == ir::ArithOp::kAdd) {
        uint64_t x = eval_or_zero(op.value->lhs, a);
        uint64_t y = eval_or_zero(op.value->rhs, a);
        int w = op.value->width;
        if (w < 64 && ((x + y) >> w) != 0) {
          ir::FieldId victim = prog_.carry_victim;
          a.set(victim, a.get_or_zero(victim) ^ 1u);
        }
      }
      store(op.dest, v, a);
      break;
    }
    case DevOp::Kind::kHash: {
      a.hash_vals_.clear();
      a.hash_widths_.clear();
      for (ir::FieldId k : op.keys) {
        a.hash_vals_.push_back(a.get_or_zero(k));
        a.hash_widths_.push_back(width_of(k));
      }
      store(op.dest,
            p4::compute_hash(op.algo, a.hash_vals_, a.hash_widths_,
                             width_of(op.dest)),
            a);
      break;
    }
  }
}

void Device::apply_table(const DevInstance& inst, size_t table_idx,
                         ExecArena& a) const {
  const DevTable& t = inst.tables[table_idx];
  const std::vector<p4::MatchKind>& kinds =
      key_kinds_[static_cast<size_t>(a.cur_instance_)][table_idx];

  // The winner is picked by the explicit rule — longest prefix, then
  // priority, then install order (p4::entry_rank, the same rule that fixes
  // the symbolic engine's branch order).
  // Key fields are read once per table, not once per entry; the entries
  // were precompiled into PreMatch rows in entry_rank order at load, so
  // the scan is mask-compare only and the first hit IS the winner (a full
  // rank tie kept install order via the stable sort).
  const size_t nkeys = t.keys.size();
  a.key_vals_.clear();
  for (const DevKey& k : t.keys) a.key_vals_.push_back(a.get_or_zero(k.field));
  const size_t ii = static_cast<size_t>(a.cur_instance_);
  const std::vector<int32_t>& order = entry_order_[ii][table_idx];
  const PreMatch* pre = pre_matches_[ii][table_idx].data();

  const DevEntry* best = nullptr;
  int32_t best_idx = -1;
  for (size_t row = 0; row < order.size(); ++row, pre += nkeys) {
    bool hit = true;
    for (size_t i = 0; i < nkeys && hit; ++i) {
      const uint64_t v = a.key_vals_[i];
      if (kinds[i] == p4::MatchKind::kRange) {
        hit = v >= pre[i].value && v <= pre[i].mask;  // value/mask = lo/hi
      } else {
        hit = (v & pre[i].mask) == pre[i].value;
      }
    }
    if (hit) {
      best_idx = order[row];
      best = &t.entries[static_cast<size_t>(best_idx)];
      break;
    }
  }
  if (best != nullptr) {
    note(a, TraceEventKind::kTableHit, static_cast<int16_t>(table_idx),
         best_idx);
    for (const DevOp& op : best->ops) run_op(op, a);
    return;
  }
  note(a, TraceEventKind::kTableMiss, static_cast<int16_t>(table_idx));
  for (const DevOp& op : t.default_ops) run_op(op, a);
}

void Device::run_block(const DevInstance& inst, const DevControlBlock& b,
                       ExecArena& a) const {
  for (const DevControlStmt& s : b.stmts) {
    switch (s.kind) {
      case DevControlStmt::Kind::kApply:
        apply_table(inst, s.table, a);
        break;
      case DevControlStmt::Kind::kIf:
        if (eval_or_zero(s.cond, a) != 0) {
          run_block(inst, s.then_block, a);
        } else {
          run_block(inst, s.else_block, a);
        }
        break;
      case DevControlStmt::Kind::kOp:
        run_op(s.op, a);
        break;
    }
  }
}

void Device::deparse(const DevInstance& inst, ExecArena& a) const {
  const size_t ii = static_cast<size_t>(a.cur_instance_);
  for (size_t ci = 0; ci < inst.checksums.size(); ++ci) {
    const DevChecksum& c = inst.checksums[ci];
    if (a.get_or_zero(csum_guards_[ii][ci]) == 0) continue;
    a.hash_vals_.clear();
    a.hash_widths_.clear();
    for (ir::FieldId f : c.sources) {
      a.hash_vals_.push_back(a.get_or_zero(f));
      a.hash_widths_.push_back(width_of(f));
    }
    store(c.dest,
          p4::compute_hash(c.algo, a.hash_vals_, a.hash_widths_,
                           width_of(c.dest)),
          a);
    note(a, TraceEventKind::kChecksum, -1, static_cast<int32_t>(ci));
  }
  packet::BitWriter w;
  w.reset(std::move(a.emit_buf_));
  const std::vector<EmitSlot>& slots = emits_[ii];
  for (size_t si = 0; si < slots.size(); ++si) {
    if (a.get_or_zero(slots[si].validity) == 0) continue;
    const HeaderLayout& lay = headers_[static_cast<size_t>(slots[si].header)];
    for (size_t i = 0; i < lay.fields.size(); ++i) {
      w.put(a.get_or_zero(lay.fields[i]), lay.widths[i]);
    }
    note(a, TraceEventKind::kEmitHeader, -1, static_cast<int32_t>(si));
  }
  w.put_bytes(a.wire_.data() + a.payload_off_,
              a.wire_.size() - a.payload_off_);
  a.emit_buf_ = std::move(a.wire_);  // recycle the old wire capacity
  a.wire_ = std::move(w).take();
}

void Device::run_instance(const DevInstance& inst, ExecArena& a) const {
  // Fresh per-pipe view of header validity.
  for (const HeaderLayout& h : headers_) a.set(h.validity, 0);
  if (!parse(inst, a)) {
    a.dropped_ = true;
    return;
  }
  run_block(inst, inst.control, a);
  if (a.get_or_zero(drop_fid_) != 0) {
    note(a, TraceEventKind::kDropped);
    a.dropped_ = true;
    return;
  }
  deparse(inst, a);
}

void Device::run_one(const DeviceInput& in, DeviceOutput& out, ExecArena& a) {
  a.begin_packet(ctx_.fields.size());
  if (a.coverage != nullptr) a.coverage->boundary();
  a.wire_.assign(in.bytes.begin(), in.bytes.end());
  // Installed register snapshot, then intrinsics & metadata.
  for (auto& [f, v] : registers_flat_) a.set(f, v);
  a.set(port_fid_, util::truncate(in.port, p4::kPortWidth));
  for (auto& [f, v] : metadata_init_) a.set(f, v);
  a.set(drop_fid_, 0);
  a.set(egspec_fid_, 0);

  out.accepted = true;
  out.dropped = false;
  out.port = 0;
  out.bytes.clear();

  // Pick the entry point.
  int cur = -1;
  for (const DevEntryPoint& e : prog_.entries) {
    if (e.guard == nullptr || eval_or_zero(e.guard, a) != 0) {
      cur = e.instance;
      break;
    }
  }
  if (cur < 0) {
    out.accepted = false;
    out.trace.assign(a.trace_.begin(), a.trace_.end());
    return;
  }

  size_t hops = 0;
  while (cur >= 0) {
    util::check(++hops <= prog_.instances.size() + 1,
                "device: pipeline loop (unrolled topologies are acyclic)");
    a.cur_instance_ = static_cast<int16_t>(cur);
    run_instance(prog_.instances[static_cast<size_t>(cur)], a);
    if (a.dropped_) {
      out.dropped = true;
      out.trace.assign(a.trace_.begin(), a.trace_.end());
      return;
    }
    int next = -1;
    for (const DevEdge& e : prog_.edges) {
      if (e.from != cur) continue;
      if (e.guard == nullptr || eval_or_zero(e.guard, a) != 0) {
        next = e.to;
        break;
      }
    }
    cur = next;
  }
  out.dropped = false;
  out.port = a.get_or_zero(egspec_fid_);
  out.bytes.assign(a.wire_.begin(), a.wire_.end());
  out.trace.assign(a.trace_.begin(), a.trace_.end());
}

void Device::run_batch(std::span<const DeviceInput> in,
                       std::span<DeviceOutput> out, ExecArena& arena) {
  util::check(in.size() == out.size(), "run_batch: input/output size mismatch");
  for (size_t i = 0; i < in.size(); ++i) run_one(in[i], out[i], arena);
}

DeviceOutput Device::inject(const DeviceInput& in) {
  ExecArena arena;  // fresh per call: the per-packet baseline path
  DeviceOutput out;
  run_batch({&in, 1}, {&out, 1}, arena);
  return out;
}

std::string Device::event_to_string(const TraceEvent& ev) const {
  const DevInstance* inst =
      ev.instance >= 0 &&
              static_cast<size_t>(ev.instance) < prog_.instances.size()
          ? &prog_.instances[static_cast<size_t>(ev.instance)]
          : nullptr;
  const std::string who = inst != nullptr ? inst->name : "device";
  switch (ev.kind) {
    case TraceEventKind::kParseHeader:
      return who + ": parsed " +
             prog_.program.headers[static_cast<size_t>(ev.aux)].name;
    case TraceEventKind::kParserShort:
      return who + ": parser ran out of packet in " +
             inst->parser[static_cast<size_t>(ev.aux)].name;
    case TraceEventKind::kParserReject:
      return who + ": parser reject";
    case TraceEventKind::kTableHit: {
      const DevTable& t = inst->tables[static_cast<size_t>(ev.table)];
      return who + ": table " + t.name + " hit -> " +
             t.entries[static_cast<size_t>(ev.aux)].source.action;
    }
    case TraceEventKind::kTableMiss: {
      const DevTable& t = inst->tables[static_cast<size_t>(ev.table)];
      return who + ": table " + t.name + " miss -> " + t.default_action;
    }
    case TraceEventKind::kChecksum:
      return who + ": checksum update into " +
             ctx_.fields.name(
                 inst->checksums[static_cast<size_t>(ev.aux)].dest);
    case TraceEventKind::kEmitHeader:
      return who + ": emitted " + inst->emit_order[static_cast<size_t>(ev.aux)];
    case TraceEventKind::kDropped:
      return who + ": dropped";
    case TraceEventKind::kEvalFallback:
      return who + ": eval fallback -> 0 (" +
             (ev.aux >= 0 ? ctx_.fields.name(static_cast<ir::FieldId>(ev.aux))
                          : std::string("?")) +
             ")";
  }
  return who + ": ?";
}

std::vector<std::string> Device::render_trace(
    const std::vector<TraceEvent>& trace) const {
  std::vector<std::string> lines;
  lines.reserve(trace.size());
  for (const TraceEvent& ev : trace) lines.push_back(event_to_string(ev));
  return lines;
}

}  // namespace meissa::sim
