// The Meissa facade: end-to-end testing of a data plane against a device.
// Wires together generation (CFG, code summary, DFS), the sender, the
// device under test, and the checker, producing a TestReport (Fig. 2).
#pragma once

#include "driver/report.hpp"

namespace meissa::driver {

struct TestRunOptions {
  GenOptions gen;
  uint64_t seed = 1;
  size_t max_recorded_failures = 25;
  bool collect_traces = true;  // symbolic + physical traces on failure

  // Transport faults on the tester<->device link. Default = perfect link,
  // in which case the driver takes the exact direct injection path (one
  // install + one inject per case, no retry machinery on the wire).
  sim::LinkFaultSpec link;
  // Cases per run_batch submission on the perfect-link path (batches also
  // flush at register-install boundaries, so verdicts are byte-identical
  // to per-case injection). 0 behaves like 1.
  size_t batch = 64;
  // Per-case resends after silence or a damaged verdict before the case is
  // quarantined. With the default 8 retries a 5%-lossy link quarantines
  // with probability ~5e-12 per case.
  int max_send_retries = 8;
  // Retries for transient register-install failures, per install.
  int max_install_retries = 8;
  // Cap on the exponent of the simulated exponential backoff between
  // resends (backoff is accounted in TestReport::backoff_units, not slept).
  int max_backoff_exponent = 6;
};

class Meissa {
 public:
  Meissa(ir::Context& ctx, const p4::DataPlane& dp, const p4::RuleSet& rules,
         TestRunOptions opts = {});

  // Generation only (no device): the paper's scalability experiments.
  std::vector<sym::TestCaseTemplate> generate();

  // Full run: generate, inject into `device`, check against `intents`.
  // `cancel`, when set, is polled between cases: a fired token stops the
  // run cleanly with the verdicts settled so far (TestReport::cancelled).
  TestReport test(sim::Device& device, const std::vector<spec::Intent>& intents,
                  const util::CancelToken* cancel = nullptr);

  const GenStats& gen_stats() const { return gen_.stats(); }
  const cfg::Cfg& graph() const { return gen_.graph(); }
  Generator& generator() { return gen_; }

 private:
  ir::Context& ctx_;
  const p4::DataPlane& dp_;
  TestRunOptions opts_;
  Generator gen_;
  std::vector<sym::TestCaseTemplate> templates_;
  bool generated_ = false;
};

}  // namespace meissa::driver
