// The Meissa facade: end-to-end testing of a data plane against a device.
// Wires together generation (CFG, code summary, DFS), the sender, the
// device under test, and the checker, producing a TestReport (Fig. 2).
#pragma once

#include "driver/report.hpp"

namespace meissa::driver {

struct TestRunOptions {
  GenOptions gen;
  uint64_t seed = 1;
  size_t max_recorded_failures = 25;
  bool collect_traces = true;  // symbolic + physical traces on failure
};

class Meissa {
 public:
  Meissa(ir::Context& ctx, const p4::DataPlane& dp, const p4::RuleSet& rules,
         TestRunOptions opts = {});

  // Generation only (no device): the paper's scalability experiments.
  std::vector<sym::TestCaseTemplate> generate();

  // Full run: generate, inject into `device`, check against `intents`.
  TestReport test(sim::Device& device, const std::vector<spec::Intent>& intents);

  const GenStats& gen_stats() const { return gen_.stats(); }
  const cfg::Cfg& graph() const { return gen_.graph(); }
  Generator& generator() { return gen_; }

 private:
  ir::Context& ctx_;
  const p4::DataPlane& dp_;
  TestRunOptions opts_;
  Generator gen_;
  std::vector<sym::TestCaseTemplate> templates_;
  bool generated_ = false;
};

}  // namespace meissa::driver
