// The sender half of the test driver (paper §4): turns a test-case
// template into a concrete injectable packet (via an SMT model of the path
// condition), computes the expected output by concrete execution of the
// template's path, validates hash obligations (dropping unsatisfiable
// cases, §4), and stamps a unique id into the payload so the checker can
// relate sent and received packets.
#pragma once

#include <optional>
#include <unordered_set>

#include "driver/generator.hpp"
#include "sim/device.hpp"
#include "util/rng.hpp"

namespace meissa::driver {

// Payload stamp protocol (paper §4): the sender appends an 8-byte
// big-endian case id followed by 8 fixed filler bytes (0xA0..0xA7) to
// every frame tail. Everything that relates captured frames back to cases
// — the tester's flaky-link retry loop, the fuzz lane's seeds — shares
// this one definition.
inline constexpr size_t kStampBytes = 16;

// Appends the stamp for `case_id` to `payload`.
void stamp_payload(std::vector<uint8_t>& payload, uint64_t case_id);

// Classification of a captured frame against the stamp.
enum class FrameClass {
  kOurs,     // intact stamp carrying the awaited case id
  kStale,    // intact stamp of an already-settled case (late duplicate)
  kCorrupt,  // stamp damaged or unknown id (payload bit flip on the link)
};

FrameClass classify_frame(const std::vector<uint8_t>& bytes, uint64_t want,
                          const std::unordered_set<uint64_t>& settled);

struct TestCase {
  uint64_t template_id = 0;
  uint64_t case_id = 0;
  sim::DeviceInput input;
  packet::Packet input_packet;
  ir::ConcreteState input_state;  // complete initial state (model + defaults)
  ir::ConcreteState registers;    // REG:* cells to install on the device
  bool expect_drop = false;
  uint64_t expect_port = 0;
  packet::Packet expect_packet;
  std::vector<uint8_t> expect_bytes;
};

class Sender {
 public:
  Sender(ir::Context& ctx, const p4::DataPlane& dp, const cfg::Cfg& graph,
         uint64_t seed = 1);

  // Concretizes a template. Returns nullopt when the case must be removed
  // (hash obligations cannot be satisfied after repair attempts).
  std::optional<TestCase> concretize(const sym::TestCaseTemplate& t,
                                     sym::Engine& engine);

  // Number of cases removed because of hash mismatches (paper §4).
  uint64_t removed_by_hash() const noexcept { return removed_by_hash_; }
  // Number of hash-repair re-solves performed (bounded per case by
  // kMaxHashRepairRounds; reported alongside removed_by_hash).
  uint64_t hash_repair_attempts() const noexcept {
    return hash_repair_attempts_;
  }

  // Explicit bound on the per-case hash-repair loop: a case whose
  // obligations are still inconsistent after this many re-solves is
  // removed (paper §4's "remove the test case" fallback).
  static constexpr int kMaxHashRepairRounds = 3;

 private:
  // Walks the entry pipeline's parser FSM over concrete field values to
  // derive the input packet's header sequence.
  std::vector<std::string> simulate_parse(const std::string& instance,
                                          const ir::ConcreteState& s) const;

  ir::Context& ctx_;
  const p4::DataPlane& dp_;
  const cfg::Cfg& graph_;
  util::Rng rng_;
  uint64_t next_case_id_ = 1;
  uint64_t removed_by_hash_ = 0;
  uint64_t hash_repair_attempts_ = 0;
};

}  // namespace meissa::driver
