#include "driver/sender.hpp"

#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace meissa::driver {

void stamp_payload(std::vector<uint8_t>& payload, uint64_t case_id) {
  for (int i = 7; i >= 0; --i) {
    payload.push_back(static_cast<uint8_t>(case_id >> (8 * i)));
  }
  for (int i = 0; i < 8; ++i) {
    payload.push_back(static_cast<uint8_t>(0xA0 + i));
  }
}

FrameClass classify_frame(const std::vector<uint8_t>& bytes, uint64_t want,
                          const std::unordered_set<uint64_t>& settled) {
  if (bytes.size() < kStampBytes) return FrameClass::kCorrupt;
  const size_t base = bytes.size() - kStampBytes;
  uint64_t id = 0;
  for (int i = 0; i < 8; ++i) id = (id << 8) | bytes[base + i];
  for (int i = 0; i < 8; ++i) {
    if (bytes[base + 8 + i] != static_cast<uint8_t>(0xA0 + i)) {
      return FrameClass::kCorrupt;
    }
  }
  if (id == want) return FrameClass::kOurs;
  if (settled.count(id) != 0) return FrameClass::kStale;
  return FrameClass::kCorrupt;
}

Sender::Sender(ir::Context& ctx, const p4::DataPlane& dp,
               const cfg::Cfg& graph, uint64_t seed)
    : ctx_(ctx), dp_(dp), graph_(graph), rng_(seed) {}

std::vector<std::string> Sender::simulate_parse(
    const std::string& instance, const ir::ConcreteState& s) const {
  const p4::PipeInstance* pi = dp_.topology.find_instance(instance);
  util::check(pi != nullptr, "sender: unknown entry instance");
  const p4::Parser& parser = dp_.program.find_pipeline(pi->pipeline)->parser;

  std::vector<std::string> seq;
  const p4::ParserState* state = parser.find_state(parser.start);
  while (state != nullptr) {
    for (const std::string& h : state->extracts) {
      seq.push_back(h);
    }
    std::string next = state->default_next;
    if (!state->select_field.empty()) {
      ir::FieldId f = ctx_.fields.require(state->select_field);
      auto it = s.find(f);
      uint64_t v = it == s.end() ? 0 : it->second;
      for (const p4::ParserTransition& t : state->cases) {
        if ((v & t.mask) == (t.value & t.mask)) {
          next = t.next;
          break;
        }
      }
    }
    if (next == "accept" || next == "reject") break;
    state = parser.find_state(next);
  }
  return seq;
}

std::optional<TestCase> Sender::concretize(const sym::TestCaseTemplate& t,
                                           sym::Engine& engine) {
  // 1. A model of the path condition — with hash-obligation repair: if the
  // model's placeholder value disagrees with the recomputed hash, pin the
  // placeholder and re-solve; give up (remove the case) after a few rounds.
  std::vector<ir::ExprRef> extra;
  std::optional<smt::Model> model;
  {
    obs::Span span("solve", "sender");
    span.arg("template", t.id);
    for (int round = 0; round <= kMaxHashRepairRounds; ++round) {
      sym::PathResult pr;
      pr.conds = t.conds;
      for (ir::ExprRef e : extra) pr.conds.push_back(e);
      model = engine.solve_for_model(pr);
      if (!model) {
        ++removed_by_hash_;
        return std::nullopt;  // over-constrained by repair: remove (§4)
      }
      bool consistent = true;
      extra.clear();
      for (const sym::HashObligation& o : t.obligations) {
        std::vector<uint64_t> kv;
        std::vector<int> kw;
        ir::ConcreteState ms(model->begin(), model->end());
        bool known = true;
        for (size_t i = 0; i < o.key_exprs.size(); ++i) {
          auto v = ir::eval(o.key_exprs[i], ms);
          if (!v) {
            // Key depends on an unconstrained input: default it to zero,
            // consistent with the state completion below.
            ir::ConcreteState padded = ms;
            std::unordered_set<ir::FieldId> fs;
            ir::collect_fields(o.key_exprs[i], fs);
            for (ir::FieldId f : fs) padded.try_emplace(f, 0);
            v = ir::eval(o.key_exprs[i], padded);
            known = v.has_value();
          }
          if (!known) break;
          kv.push_back(*v);
          kw.push_back(o.key_widths[i]);
        }
        if (!known) continue;
        int w = ctx_.fields.width(o.placeholder);
        uint64_t want = p4::compute_hash(o.algo, kv, kw, w);
        auto got = model->find(o.placeholder);
        if (got == model->end() || got->second != want) {
          consistent = false;
        }
        extra.push_back(ctx_.arena.cmp(ir::CmpOp::kEq,
                                       ctx_.arena.field(o.placeholder, w),
                                       ctx_.arena.constant(want, w)));
      }
      if (consistent) break;
      if (round == kMaxHashRepairRounds) {
        ++removed_by_hash_;
        return std::nullopt;
      }
      ++hash_repair_attempts_;  // another pinned re-solve round follows
    }
  }  // solve span ends before the concrete replay

  // 2. Complete the input state: model values, zero defaults elsewhere.
  TestCase tc;
  tc.template_id = t.id;
  tc.case_id = next_case_id_++;
  ir::ConcreteState s;
  for (auto& [f, v] : *model) s[f] = v;
  for (ir::FieldId f = 0; f < ctx_.fields.size(); ++f) s.try_emplace(f, 0);

  // 3. Replay the path concretely: yields the exact final state (including
  // real hash results) or rejects a model that does not drive the path.
  auto final_state = cfg::eval_path(graph_, t.path, s, ctx_);
  if (!final_state) {
    ++removed_by_hash_;
    return std::nullopt;
  }

  // 4. Build the input packet via parser simulation at the entry instance.
  util::check(t.entry_instance >= 0, "template without entry instance");
  const cfg::InstanceInfo& entry =
      graph_.instances()[static_cast<size_t>(t.entry_instance)];
  std::vector<std::string> in_headers = simulate_parse(entry.name, s);
  for (const std::string& h : in_headers) {
    const p4::HeaderDef* def = dp_.program.find_header(h);
    packet::HeaderValues hv;
    hv.header = h;
    for (const p4::FieldDef& f : def->fields) {
      hv.values.push_back(
          s.at(ctx_.fields.require(p4::content_field(h, f.name))));
    }
    tc.input_packet.headers.push_back(std::move(hv));
  }
  // Unique id payload (paper §4): 8-byte case id + fixed filler.
  stamp_payload(tc.input_packet.payload, tc.case_id);

  tc.input.port = s.at(ctx_.fields.require(std::string(p4::kIngressPort)));
  tc.input.bytes = packet::serialize(dp_.program, tc.input_packet);
  tc.input_state = s;

  // 5. Register cells referenced by the model must be installed.
  for (auto& [f, v] : *model) {
    if (util::starts_with(ctx_.fields.name(f), "REG:")) {
      tc.registers[f] = v;
    }
  }

  // 6. Expected output from the final state.
  if (t.exit == cfg::ExitKind::kDrop) {
    tc.expect_drop = true;
    return tc;
  }
  util::check(t.emit_instance >= 0, "emit template without instance");
  const cfg::InstanceInfo& emit =
      graph_.instances()[static_cast<size_t>(t.emit_instance)];
  tc.expect_port =
      final_state->at(ctx_.fields.require(std::string(p4::kEgressSpec)));
  for (const std::string& h : emit.emit_order) {
    auto vit = final_state->find(emit.validity.at(h));
    if (vit == final_state->end() || vit->second == 0) continue;
    const p4::HeaderDef* def = dp_.program.find_header(h);
    packet::HeaderValues hv;
    hv.header = h;
    for (const p4::FieldDef& f : def->fields) {
      hv.values.push_back(
          final_state->at(ctx_.fields.require(p4::content_field(h, f.name))));
    }
    tc.expect_packet.headers.push_back(std::move(hv));
  }
  tc.expect_packet.payload = tc.input_packet.payload;
  tc.expect_bytes = packet::serialize(dp_.program, tc.expect_packet);
  return tc;
}

}  // namespace meissa::driver
