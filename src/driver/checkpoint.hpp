// Crash-safe work-unit checkpointing for generation runs.
//
// A checkpoint is the *process-split unit* of a generation run: the code-
// summary region (one SummaryUnit per encoded pipeline) plus the final-DFS
// frontier slice (one ShardProgress per prefix shard, carrying buffered
// results, the DFS cursor path, and the shard's fresh-symbol counter).
// Everything is serialized by *name* — FieldId numbering is interning-order
// (i.e. scheduling) dependent — and expressions round-trip through the
// arena's hash-consing make-functions, so a deserialized snapshot is
// structurally identical to the live one. The same format is deliberately
// what a future distributed mode would ship between processes (ROADMAP
// "distributed generation": a shard's WorkUnit is already self-contained).
//
// File format (little-endian):
//   magic "M4CKPT01" | version u32 | content_key u64 | payload_len u64 |
//   payload_crc32 u32 | payload
// Writes are atomic (tmp + rename) and rotate the previous file to
// `<name>.prev`; loads validate magic/version/key/CRC and fall back to
// `.prev`, so a write truncated or corrupted mid-crash costs at most one
// checkpoint interval, never the run.
//
// Program identity is two-tier. The content key fingerprints every
// output-affecting *option* (plus the instance inventory): a checkpoint
// from a different configuration is rejected wholesale, not misapplied.
// Program *content* is tracked per region (analysis/impact fingerprints,
// stored in the payload): on load, a summary unit survives only if its
// region, every upstream region, and the glue hash-match the current
// build, and DFS shard frontiers survive only under an identical whole-
// graph hash (frontiers embed absolute node ids). A localized edit
// therefore invalidates just the mismatched regions' work units instead of
// the entire checkpoint.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/impact.hpp"
#include "summary/summary.hpp"
#include "sym/engine.hpp"
#include "util/faultinject.hpp"

namespace meissa::driver {

// CRC-32 (reflected, poly 0xEDB88320) — the file-integrity check.
uint32_t crc32(const uint8_t* data, size_t n);

// FNV-1a 64 — the content-key hash.
inline constexpr uint64_t kFnvOffset = 1469598103934665603ull;
inline constexpr uint64_t kFnvPrime = 1099511628211ull;
inline uint64_t fnv1a(uint64_t h, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) h = (h ^ p[i]) * kFnvPrime;
  return h;
}

// Everything a killed run needs to continue where it stopped.
struct CheckpointData {
  // Encoded pipelines, keyed by instance name (summary resume skips their
  // explore phase entirely).
  std::unordered_map<std::string, summary::SummaryUnit> units;
  // Final-DFS shard progress, indexed by shard. Empty until the DFS starts.
  std::vector<sym::ShardProgress> shards;
  // Region fingerprints of the program this checkpoint was written for
  // (analysis/impact): whole-graph hash gating shard frontiers, glue hash,
  // and one content hash per region keyed by instance name. All zero/empty
  // when the writer had no fingerprints (legacy callers).
  uint64_t graph_fp = 0;
  uint64_t glue_fp = 0;
  std::unordered_map<std::string, uint64_t> region_fps;
};

// Serialized payload (no file header) — exposed for tests.
std::vector<uint8_t> serialize_checkpoint(const ir::Context& ctx,
                                          const CheckpointData& data);
CheckpointData deserialize_checkpoint(ir::Context& ctx,
                                      const std::vector<uint8_t>& payload);

// Full file image: header + CRC + payload.
std::vector<uint8_t> encode_checkpoint_file(const ir::Context& ctx,
                                            uint64_t content_key,
                                            const CheckpointData& data);
// Validates magic/version/content-key/CRC and deserializes; nullopt on any
// mismatch (the caller falls back to the previous file).
std::optional<CheckpointData> decode_checkpoint_file(
    ir::Context& ctx, uint64_t content_key, const std::vector<uint8_t>& bytes);

struct GenOptions;  // driver/generator.hpp

// Fingerprint of every output-affecting generation option plus the
// instance inventory. Thread count, checkpoint cadence and static pruning
// are deliberately excluded: they never change the emitted templates, and
// a checkpoint must be resumable under a different thread count. Program
// *content* is intentionally absent — it is tracked per region by the
// payload fingerprints so a localized edit degrades, not discards, the
// checkpoint.
uint64_t checkpoint_content_key(const ir::Context& ctx, const cfg::Cfg& g,
                                const GenOptions& opts);

// Owns one checkpoint directory for one generation run. All mutators are
// thread-safe (engine progress snapshots arrive from worker threads) and
// persist the full state on every call — a wave boundary or a frontier-pop
// interval, by construction of the hook cadence. Write failures (including
// injected ones) are counted, never thrown: a failing checkpoint must not
// fail the generation it protects.
class CheckpointManager {
 public:
  // Creates `dir` if missing. `fault`, when set, is consulted at the
  // "checkpoint.serialize" (execution) and "checkpoint.write" (data)
  // sites. `fps`, when non-empty, are the current build's region
  // fingerprints: they are stamped into every write and used by load() to
  // filter stale work units (empty = accept whole checkpoints, the
  // pre-impact behavior).
  CheckpointManager(ir::Context& ctx, std::string dir, uint64_t content_key,
                    util::FaultInjector* fault = nullptr,
                    analysis::RegionFingerprints fps = {});

  // Loads the newest valid checkpoint (current file, else `.prev`) into
  // `out`, dropping work units whose region fingerprints (or whose
  // upstream regions' fingerprints) no longer match the current build.
  // False when neither file validates or nothing survives filtering.
  bool load(CheckpointData& out);

  // Records one encoded pipeline (summary wave boundary) and persists.
  void add_unit(const summary::SummaryUnit& u);
  // Pre-sizes the shard table (ParallelHooks::on_shards).
  void begin_shards(size_t n);
  // Records one shard snapshot (ParallelHooks::progress) and persists.
  void update_shard(size_t i, const sym::ShardProgress& p);

  uint64_t writes() const;    // successful persists
  uint64_t failures() const;  // failed persists (run continued regardless)

  const std::string& path() const { return path_; }

 private:
  void persist_locked();
  // Copies fps_ into data_'s fingerprint fields (writes always carry the
  // current build's fingerprints).
  void stamp_fps_locked();

  ir::Context& ctx_;
  std::string dir_;
  std::string path_;  // dir_ + "/checkpoint.bin"
  uint64_t key_;
  util::FaultInjector* fault_;
  analysis::RegionFingerprints fps_;
  mutable std::mutex mu_;
  CheckpointData data_;
  uint64_t writes_ = 0;
  uint64_t failures_ = 0;
};

}  // namespace meissa::driver
