#include "driver/incremental.hpp"

#include <algorithm>
#include <unordered_set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace meissa::driver {

namespace {

const std::string& instance_name(const cfg::Cfg& g, int idx,
                                 const std::string& fallback) {
  if (idx < 0 || static_cast<size_t>(idx) >= g.instances().size()) {
    return fallback;
  }
  return g.instances()[idx].name;
}

}  // namespace

std::string IncrementalSession::coverage_signature(
    const ir::Context& ctx, const cfg::Cfg& g,
    const sym::TestCaseTemplate& t) {
  static const std::string kNone = "-";
  std::string s;
  s += t.exit == cfg::ExitKind::kEmit   ? "emit"
       : t.exit == cfg::ExitKind::kDrop ? "drop"
                                        : "none";
  s += '|';
  s += instance_name(g, t.entry_instance, kNone);
  s += '|';
  s += instance_name(g, t.emit_instance, kNone);
  s += '|';
  if (t.path_condition != nullptr) {
    s += ir::to_string(t.path_condition, ctx.fields);
  }
  std::vector<std::pair<std::string, ir::ExprRef>> values;
  values.reserve(t.final_values.size());
  for (const auto& [f, v] : t.final_values) {
    values.emplace_back(ctx.fields.name(f), v);
  }
  std::sort(values.begin(), values.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [name, v] : values) {
    s += '|';
    s += name;
    s += '=';
    s += ir::to_string(v, ctx.fields);
  }
  for (const sym::HashObligation& o : t.obligations) {
    s += "|#";
    if (o.placeholder != ir::kInvalidField) {
      s += ctx.fields.name(o.placeholder);
    }
    for (ir::ExprRef k : o.key_exprs) {
      s += ',';
      s += ir::to_string(k, ctx.fields);
    }
  }
  return s;
}

std::string IncrementalSession::full_signature(const ir::Context& ctx,
                                               const cfg::Cfg& g,
                                               const sym::TestCaseTemplate& t) {
  std::string s = coverage_signature(ctx, g, t);
  s += "|path:";
  for (cfg::NodeId n : t.path) {
    s += util::format("%u,", n);
  }
  return s;
}

IncrementalSession::IncrementalSession(ir::Context& ctx,
                                       const p4::DataPlane& dp,
                                       IncrementalOptions opts)
    : ctx_(ctx), dp_(dp), opts_(std::move(opts)) {
  util::check(opts_.gen.code_summary,
              "incremental: code_summary is the reuse grain and must be on");
  util::check(opts_.gen.checkpoint_dir.empty(),
              "incremental: checkpoint_dir displaces the session's summary "
              "hooks; use one or the other");
}

UpdateReport IncrementalSession::run(const p4::RuleSet& rules) {
  UpdateReport report;
  report.run = runs_;
  obs::Span span("incremental.update", "incremental");
  span.arg("run", runs_);

  // The session's own summary hooks: capture every unit (for the next
  // run's replay) and hand the previous run's clean units back as resume
  // input. Valid only because checkpoint_dir is empty — the generator
  // installs its own hooks otherwise.
  std::unordered_map<std::string, summary::SummaryUnit> captured;
  summary::SummaryHooks hooks;
  hooks.on_unit = [&](size_t, const summary::SummaryUnit& u) {
    captured[u.instance] = u;
  };
  GenOptions gopts = opts_.gen;
  gopts.summary.hooks = &hooks;
  gopts.shared_pc_cache = &cache_;

  Generator gen(ctx_, dp_, rules, gopts);

  // Change impact: fingerprint + def-use model of the current build,
  // diffed against the previous run's.
  analysis::ImpactModel model =
      analysis::build_impact_model(ctx_, gen.original_graph(), rules);
  if (opts_.mutate_model) opts_.mutate_model(model);
  std::unordered_map<std::string, summary::SummaryUnit> resume_units;
  if (model_.has_value()) {
    report.impact = analysis::compute_impact(*model_, model);
    for (const std::string& name : report.impact.clean) {
      auto it = units_.find(name);
      if (it != units_.end()) resume_units.emplace(name, it->second);
    }
  } else {
    // Baseline: everything dirty, nothing to reuse.
    report.impact.full = true;
    report.impact.dirty = model.fps.instances;
  }
  if (!resume_units.empty()) hooks.resume = &resume_units;

  report.templates = gen.generate();
  report.stats = gen.stats();
  report.summaries_reused = report.stats.resumed_pipelines;
  // The summary reports a replayed unit's *stored* solver counts (so the
  // per-pipeline table stays meaningful); those checks were never paid
  // this run and must not count against the update.
  uint64_t replayed_checks = 0;
  {
    std::unordered_set<std::string> reused;
    for (const auto& [name, u] : resume_units) reused.insert(name);
    for (const summary::PipelineSummary& p : report.stats.pipelines) {
      if (reused.count(p.instance) != 0) replayed_checks += p.smt_checks;
    }
  }
  report.smt_checks = report.stats.smt_checks >= replayed_checks
                          ? report.stats.smt_checks - replayed_checks
                          : 0;
  report.pc_cache_hits = report.stats.pc_cache_hits;
  report.seconds = report.stats.total_seconds;

  // Delta coverage: sorted-multiset diff of semantic signatures against
  // the previous run.
  std::vector<std::string> sigs;
  sigs.reserve(report.templates.size());
  for (const sym::TestCaseTemplate& t : report.templates) {
    sigs.push_back(coverage_signature(ctx_, gen.graph(), t));
    report.full_sigs.push_back(full_signature(ctx_, gen.graph(), t));
  }
  std::sort(sigs.begin(), sigs.end());
  std::sort(report.full_sigs.begin(), report.full_sigs.end());
  {
    size_t i = 0;
    size_t j = 0;
    while (i < sigs.size() && j < prev_sigs_.size()) {
      if (sigs[i] == prev_sigs_[j]) {
        ++report.unchanged;
        ++i;
        ++j;
      } else if (sigs[i] < prev_sigs_[j]) {
        ++report.added;
        ++i;
      } else {
        ++report.removed;
        ++j;
      }
    }
    report.added += sigs.size() - i;
    report.removed += prev_sigs_.size() - j;
  }

  // Per-region path counts, replay-flagged. Clean regions' counts come
  // from the replayed unit — the summary reports them either way.
  {
    std::unordered_set<std::string> reused;
    for (const auto& [name, u] : resume_units) reused.insert(name);
    for (const summary::PipelineSummary& p : report.stats.pipelines) {
      report.regions.push_back(
          {p.instance, p.paths_after, reused.count(p.instance) != 0});
    }
  }

  if (obs::metrics_enabled()) {
    obs::metrics()
        .counter("impact.regions_dirty")
        .add(report.impact.dirty.size());
    obs::metrics()
        .counter("impact.regions_clean")
        .add(report.impact.clean.size());
    obs::metrics()
        .counter("impact.summaries_reused")
        .add(report.summaries_reused);
  }
  span.arg("dirty", report.impact.dirty.size());
  span.arg("clean", report.impact.clean.size());
  span.arg("reused", report.summaries_reused);
  span.arg("added", report.added);
  span.arg("removed", report.removed);

  units_ = std::move(captured);
  model_ = std::move(model);
  report.coverage_sigs = sigs;
  prev_sigs_ = std::move(sigs);
  ++runs_;
  return report;
}

}  // namespace meissa::driver
