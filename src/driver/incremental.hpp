// Incremental re-testing session (ROADMAP "incremental re-testing").
//
// Production rule sets churn continuously; a from-scratch generation per
// update re-pays nearly all of its solver work on regions the change
// cannot influence. IncrementalSession holds the reusable state across
// runs of the *same data plane* under evolving rules:
//
//   * the per-region SummaryUnits of the last run — replayed verbatim
//     (summary resume) for every region the change-impact analysis
//     (analysis/impact) proves clean, so only dirty regions re-explore;
//   * a shared path-condition verdict cache (smt/cache.hpp) warmed by the
//     baseline — the final DFS of an update answers repeated checks from
//     the cache instead of the backend (hash-consing keeps unchanged
//     conjuncts pointer-identical across runs within one ir::Context);
//   * the previous run's coverage signatures, diffed per update into
//     added/removed/unchanged template counts (*delta coverage*).
//
// Soundness bar (enforced by the determinism suite and the
// incremental-smoke CI job): templates after an incremental update are
// byte-identical to a from-scratch regeneration of the updated program.
// That holds because (a) a clean region's replayed unit is exactly what
// re-exploring it would produce — its fingerprint, its upstream regions'
// fingerprints, and the glue are unchanged, and the summary encodes a
// unit from its own paths alone; and (b) cached verdicts are semantic
// properties of their conjunct sets (see smt/cache.hpp), so cache hits
// never change branch decisions. Everything reused is keyed by content,
// never by "the rules looked similar".
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/impact.hpp"
#include "driver/generator.hpp"

namespace meissa::driver {

struct IncrementalOptions {
  // Baseline generation configuration, reused for every update. Must have
  // code_summary on (the summary units are the reuse grain) and no
  // checkpoint_dir (the session holds state in memory; the generator's
  // checkpoint hooks would displace the session's summary hooks).
  GenOptions gen;
  // Test hook: mutates the freshly-built impact model before it is diffed
  // and stored. The conservative-edge soundness tests delete dependency
  // edges here to prove the edges are load-bearing — with an edge removed,
  // incremental output must *differ* from full regeneration.
  std::function<void(analysis::ImpactModel&)> mutate_model;
};

// What one run (baseline or update) produced.
struct UpdateReport {
  int run = 0;  // 0 = baseline, then 1, 2, ... per update
  // The invalidation verdict vs the previous run (baseline: full, all
  // regions dirty).
  analysis::ImpactDiff impact;
  // Regions whose summary explore phase was skipped by unit replay.
  uint64_t summaries_reused = 0;
  // Delta coverage vs the previous run, over semantic template signatures
  // (exit, entry/emit instance, path condition, final values — template
  // ids and node numbering excluded).
  uint64_t added = 0;
  uint64_t removed = 0;
  uint64_t unchanged = 0;
  struct RegionPaths {
    std::string region;
    uint64_t paths = 0;   // summarized paths in this region
    bool reused = false;  // replayed from the previous run's unit
  };
  std::vector<RegionPaths> regions;  // instance order
  uint64_t smt_checks = 0;     // backend checks this run actually paid
  uint64_t pc_cache_hits = 0;  // checks answered by the shared cache
  double seconds = 0;
  GenStats stats;
  std::vector<sym::TestCaseTemplate> templates;  // this run's full output
  // Sorted signatures of `templates` (the generator's graph does not
  // outlive run(), so they are computed eagerly): semantic coverage
  // signatures, and strict full signatures for byte-identity checks.
  std::vector<std::string> coverage_sigs;
  std::vector<std::string> full_sigs;
};

class IncrementalSession {
 public:
  // `dp` must outlive the session; all runs share `ctx` (pointer-stable
  // hash-consing is what makes the verdict cache valid across runs).
  IncrementalSession(ir::Context& ctx, const p4::DataPlane& dp,
                     IncrementalOptions opts = {});

  // Generates for `rules`: the first call is the baseline (everything
  // dirty), each later call an incremental update reusing clean-region
  // summaries and cached verdicts.
  UpdateReport run(const p4::RuleSet& rules);

  int runs() const { return runs_; }

  // Semantic coverage signature of one template: stable across runs and
  // thread counts (no template id, no node numbering) — the delta-coverage
  // unit of account.
  static std::string coverage_signature(const ir::Context& ctx,
                                        const cfg::Cfg& g,
                                        const sym::TestCaseTemplate& t);
  // Strict signature: coverage_signature plus the exact node path — what
  // the byte-identity checks (vs from-scratch regeneration) compare.
  static std::string full_signature(const ir::Context& ctx, const cfg::Cfg& g,
                                    const sym::TestCaseTemplate& t);

 private:
  ir::Context& ctx_;
  const p4::DataPlane& dp_;
  IncrementalOptions opts_;
  // Shared across all runs; see EngineOptions::shared_pc_cache for the
  // precondition contract (all runs assert the same GenOptions::assumes).
  smt::PathCondCache cache_;
  std::unordered_map<std::string, summary::SummaryUnit> units_;
  std::optional<analysis::ImpactModel> model_;
  std::vector<std::string> prev_sigs_;  // sorted coverage signatures
  int runs_ = 0;
};

}  // namespace meissa::driver
