// The checker half of the test driver (paper §4): relates captured output
// to the expected one (field-level comparison), validates intent
// expectations, and renders diagnostics.
//
// Output bytes are compared by parsing them with the expected header
// sequence — the header/payload boundary is not observable on the wire,
// so byte-identical packets always compare equal regardless of how the
// emitting pipeline classified the tail.
#pragma once

#include "driver/sender.hpp"
#include "spec/intent.hpp"

namespace meissa::driver {

struct CheckResult {
  bool pass = true;
  // "model" problems: device disagrees with the symbolic expectation
  // (signals non-code bugs); "intent" problems: spec violations (signals
  // code bugs). Both paper §6 diagnosis categories.
  std::vector<std::string> model_problems;
  std::vector<std::string> intent_problems;
};

CheckResult check_case(ir::Context& ctx, const p4::Program& prog,
                       const TestCase& tc, const sim::DeviceOutput& out,
                       const std::vector<spec::Intent>& intents);

}  // namespace meissa::driver
