#include "driver/report.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace meissa::driver {

std::string TestReport::str() const {
  std::ostringstream os;
  os << "test report: " << passed << "/" << cases << " cases passed ("
     << templates << " templates";
  if (removed_by_hash > 0) {
    os << ", " << removed_by_hash << " removed by hash filtering";
  }
  os << ")\n";
  os << "  generation: " << util::format("%.3fs", gen.total_seconds) << " ("
     << gen.smt_checks << " SMT calls";
  if (gen.smt_calls_skipped > 0) {
    os << ", " << gen.smt_calls_skipped << " skipped by static analysis";
  }
  os << ")\n";
  if (gen.diagnostics > 0) {
    os << "  static analysis: " << gen.diagnostics << " diagnostic(s)\n";
  }
  for (const CaseRecord& f : failures) {
    os << "  FAIL template #" << f.template_id << " case #" << f.case_id
       << "\n";
    for (const std::string& p : f.model_problems) {
      os << "    [model] " << p << "\n";
    }
    for (const std::string& p : f.intent_problems) {
      os << "    [intent] " << p << "\n";
    }
  }
  return os.str();
}

std::string symbolic_trace(const ir::Context& ctx, const cfg::Cfg& g,
                           const cfg::Path& path,
                           const ir::ConcreteState& input, size_t max_lines) {
  std::ostringstream os;
  ir::ConcreteState s = input;
  size_t lines = 0;
  for (cfg::NodeId id : path) {
    if (lines >= max_lines) {
      os << "  ... (truncated)\n";
      break;
    }
    const cfg::Node& n = g.node(id);
    if (n.is_hash) {
      cfg::Path one{id};
      auto after = cfg::eval_path(g, one, s, ctx);
      os << "  hash -> " << ctx.fields.name(n.hash.dest);
      if (after) {
        os << " = " << util::hex((*after).at(n.hash.dest));
        s = std::move(*after);
      } else {
        os << " (unevaluable)";
      }
      os << "\n";
      ++lines;
      continue;
    }
    switch (n.stmt.kind) {
      case ir::StmtKind::kNop:
        break;
      case ir::StmtKind::kAssign: {
        auto v = ir::eval(n.stmt.expr, s);
        os << "  " << ctx.fields.name(n.stmt.target) << " <- "
           << ir::to_string(n.stmt.expr, ctx.fields);
        if (v) {
          os << "  [= " << util::hex(*v) << "]";
          s[n.stmt.target] = *v;
        }
        os << "\n";
        ++lines;
        break;
      }
      case ir::StmtKind::kAssume: {
        auto v = ir::eval(n.stmt.expr, s);
        os << "  assume " << ir::to_string(n.stmt.expr, ctx.fields) << "  [=> "
           << (v ? (*v ? "true" : "FALSE") : "?") << "]\n";
        ++lines;
        break;
      }
    }
  }
  return os.str();
}

}  // namespace meissa::driver
