#include "driver/report.hpp"

#include <sstream>

#include "obs/metrics.hpp"
#include "util/strings.hpp"

namespace meissa::driver {

std::string TestReport::str() const {
  std::ostringstream os;
  os << "test report: " << passed << "/" << cases << " cases passed ("
     << templates << " templates";
  if (removed_by_hash > 0) {
    os << ", " << removed_by_hash << " removed by hash filtering";
  }
  os << ")\n";
  os << "  generation: " << util::format("%.3fs", gen.total_seconds) << " ("
     << gen.smt_checks << " SMT calls";
  if (gen.smt_calls_skipped > 0) {
    os << ", " << gen.smt_calls_skipped << " skipped by static analysis";
  }
  os << ")\n";
  if (gen.pc_cache_hits > 0 || gen.pc_cache_misses > 0) {
    os << "  solver cache: " << gen.pc_cache_hits << " hit(s), "
       << gen.pc_cache_misses << " miss(es)";
    if (gen.pc_model_reuse > 0) {
      os << ", " << gen.pc_model_reuse << " model reuse(s)";
    }
    if (gen.fast_path_skipped > 0) {
      os << ", " << gen.fast_path_skipped << " fast-path skip(s) (portfolio)";
    }
    os << "\n";
  }
  if (gen.degraded_paths > 0) {
    os << "  coverage: " << gen.exact_paths << " exact + "
       << gen.degraded_paths << " degraded path(s) (" << gen.smt_unknowns
       << " budget-exhausted SMT check(s))\n";
  }
  if (gen.engine.requeued_shards > 0 || gen.engine.degraded_shards > 0) {
    os << "  supervision: " << gen.engine.requeued_shards
       << " shard(s) re-queued, " << gen.engine.degraded_shards
       << " degraded (subtree coverage unknown)\n";
  }
  if (gen.resumed || gen.checkpoint_writes > 0 ||
      gen.checkpoint_failures > 0) {
    os << "  crash safety: " << gen.checkpoint_writes
       << " checkpoint(s) written, " << gen.checkpoint_failures
       << " failed";
    if (gen.resumed) {
      os << "; resumed (" << gen.resumed_pipelines << " pipeline(s), "
         << gen.engine.resumed_shards << " shard(s) restored)";
    }
    os << "\n";
  }
  if (gen.diagnostics > 0) {
    os << "  static analysis: " << gen.diagnostics << " diagnostic(s)\n";
  }
  if (gen.validate_obligations > 0) {
    os << "  summary validation: " << gen.validate_obligations
       << " obligation(s): " << gen.validate_unsat << " unsat, "
       << gen.validate_unproven << " unproven, " << gen.validate_refuted
       << " refuted ("
       << util::format("%.3fs", gen.validate_seconds) << ")\n";
  }
  if (send_retries > 0 || install_retries > 0 || !quarantined.empty()) {
    os << "  link robustness: " << send_retries << " resend(s), "
       << install_retries << " install retry(ies), " << dedup_dropped
       << " deduped, " << corruption_detected << " corrupted, "
       << quarantined.size() << " quarantined\n";
  }
  for (const CaseRecord& f : failures) {
    os << "  FAIL template #" << f.template_id << " case #" << f.case_id
       << "\n";
    for (const std::string& p : f.model_problems) {
      os << "    [model] " << p << "\n";
    }
    for (const std::string& p : f.intent_problems) {
      os << "    [intent] " << p << "\n";
    }
  }
  return os.str();
}

std::string TestReport::to_json() const {
  std::ostringstream os;
  os << "{";
  os << "\"templates\":" << templates;
  os << ",\"cases\":" << cases;
  os << ",\"passed\":" << passed;
  os << ",\"failed\":" << failed;
  os << ",\"removed_by_hash\":" << removed_by_hash;
  os << ",\"hash_repair_attempts\":" << hash_repair_attempts;
  os << ",\"exact_paths\":" << gen.exact_paths;
  os << ",\"degraded_paths\":" << gen.degraded_paths;
  os << ",\"smt_unknowns\":" << gen.smt_unknowns;
  os << ",\"pc_cache_hits\":" << gen.pc_cache_hits;
  os << ",\"pc_cache_misses\":" << gen.pc_cache_misses;
  os << ",\"pc_model_reuse\":" << gen.pc_model_reuse;
  os << ",\"fast_path_skipped\":" << gen.fast_path_skipped;
  os << ",\"validate_obligations\":" << gen.validate_obligations;
  os << ",\"validate_unsat\":" << gen.validate_unsat;
  os << ",\"validate_unproven\":" << gen.validate_unproven;
  os << ",\"validate_refuted\":" << gen.validate_refuted;
  os << ",\"requeued_shards\":" << gen.engine.requeued_shards;
  os << ",\"degraded_shards\":" << gen.engine.degraded_shards;
  os << ",\"resumed_shards\":" << gen.engine.resumed_shards;
  os << ",\"resumed\":" << (gen.resumed ? "true" : "false");
  os << ",\"resumed_pipelines\":" << gen.resumed_pipelines;
  os << ",\"checkpoint_writes\":" << gen.checkpoint_writes;
  os << ",\"checkpoint_failures\":" << gen.checkpoint_failures;
  os << ",\"send_retries\":" << send_retries;
  os << ",\"install_retries\":" << install_retries;
  os << ",\"dedup_dropped\":" << dedup_dropped;
  os << ",\"corruption_detected\":" << corruption_detected;
  os << ",\"backoff_units\":" << backoff_units;
  os << ",\"quarantined\":[";
  for (size_t i = 0; i < quarantined.size(); ++i) {
    if (i > 0) os << ",";
    os << quarantined[i];
  }
  os << "]";
  os << ",\"link\":{";
  os << "\"frames_sent\":" << link.frames_sent;
  os << ",\"dropped\":" << link.dropped;
  os << ",\"duplicated\":" << link.duplicated;
  os << ",\"reordered\":" << link.reordered;
  os << ",\"corrupted\":" << link.corrupted;
  os << ",\"install_failures\":" << link.install_failures;
  os << "}";
  // Failure details carry arbitrary strings (trace lines include action and
  // field names from the program under test), so every one goes through
  // json_escape — a table named `a"b` must not produce invalid JSON.
  os << ",\"failures\":[";
  for (size_t i = 0; i < failures.size(); ++i) {
    const CaseRecord& f = failures[i];
    if (i > 0) os << ",";
    os << "{\"template_id\":" << f.template_id;
    os << ",\"case_id\":" << f.case_id;
    os << ",\"pass\":" << (f.pass ? "true" : "false");
    os << ",\"model_problems\":[";
    for (size_t j = 0; j < f.model_problems.size(); ++j) {
      if (j > 0) os << ",";
      os << "\"" << util::json_escape(f.model_problems[j]) << "\"";
    }
    os << "],\"intent_problems\":[";
    for (size_t j = 0; j < f.intent_problems.size(); ++j) {
      if (j > 0) os << ",";
      os << "\"" << util::json_escape(f.intent_problems[j]) << "\"";
    }
    os << "],\"symbolic_trace\":\"" << util::json_escape(f.symbolic_trace)
       << "\"";
    os << ",\"physical_trace\":[";
    for (size_t j = 0; j < f.physical_trace.size(); ++j) {
      if (j > 0) os << ",";
      os << "\"" << util::json_escape(f.physical_trace[j]) << "\"";
    }
    os << "]}";
  }
  os << "]";
  if (obs::metrics_enabled()) {
    // Fold the metrics snapshot in so one file answers "what happened and
    // where did the time go". Key order stays stable: the registry sorts
    // by metric name. The snapshot renders as {"metrics":[...]}.
    os << ",\"observability\":" << obs::metrics().to_json();
  }
  os << "}";
  return os.str();
}

std::string symbolic_trace(const ir::Context& ctx, const cfg::Cfg& g,
                           const cfg::Path& path,
                           const ir::ConcreteState& input, size_t max_lines) {
  std::ostringstream os;
  ir::ConcreteState s = input;
  size_t lines = 0;
  for (cfg::NodeId id : path) {
    if (lines >= max_lines) {
      os << "  ... (truncated)\n";
      break;
    }
    const cfg::Node& n = g.node(id);
    if (n.is_hash) {
      cfg::Path one{id};
      auto after = cfg::eval_path(g, one, s, ctx);
      os << "  hash -> " << ctx.fields.name(n.hash.dest);
      if (after) {
        os << " = " << util::hex((*after).at(n.hash.dest));
        s = std::move(*after);
      } else {
        os << " (unevaluable)";
      }
      os << "\n";
      ++lines;
      continue;
    }
    switch (n.stmt.kind) {
      case ir::StmtKind::kNop:
        break;
      case ir::StmtKind::kAssign: {
        auto v = ir::eval(n.stmt.expr, s);
        os << "  " << ctx.fields.name(n.stmt.target) << " <- "
           << ir::to_string(n.stmt.expr, ctx.fields);
        if (v) {
          os << "  [= " << util::hex(*v) << "]";
          s[n.stmt.target] = *v;
        }
        os << "\n";
        ++lines;
        break;
      }
      case ir::StmtKind::kAssume: {
        auto v = ir::eval(n.stmt.expr, s);
        os << "  assume " << ir::to_string(n.stmt.expr, ctx.fields) << "  [=> "
           << (v ? (*v ? "true" : "FALSE") : "?") << "]\n";
        ++lines;
        break;
      }
    }
  }
  return os.str();
}

}  // namespace meissa::driver
